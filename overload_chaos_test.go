package wspeer_test

// Chaos tests for the cooperative overload-control layer (DESIGN.md §14):
// retry budgets bounding a retry storm against a faulty endpoint, and
// cross-wire deadline propagation dropping caller-expired requests before
// dispatch. Run them in isolation with `make chaos`.

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"wspeer"
	"wspeer/internal/engine"
	"wspeer/internal/telemetry"
	"wspeer/internal/transport"
)

// stormCalls is the offered load of one retry-storm round.
const stormCalls = 100

// runRetryStorm drives stormCalls logical invocations against an HTTP
// endpoint failing 30% of calls (seeded injector), with an
// always-retryable Retry installed, and reports how many attempts
// actually hit the wire. With budgeted=true the client carries a retry
// budget; without, retries are unbounded by anything but Attempts.
func runRetryStorm(t *testing.T, budgeted bool) (attempts int64, failures int) {
	t.Helper()
	ctx := context.Background()

	provider := wspeer.NewPeer()
	hb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hb.Attach(provider)
	defer hb.Close()
	dep, err := provider.Server().Deploy(wspeer.ServiceDef{
		Name: "Echo",
		Operations: []wspeer.OperationDef{{
			Name:       "echo",
			Func:       func(s string) string { return s },
			ParamNames: []string{"msg"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	injector := wspeer.NewFaultInjector(chaosSeed)
	injector.SetPlans(wspeer.FaultPlan{Endpoint: dep.Endpoint, ErrorRate: 0.3})
	reg := transport.NewRegistry()
	reg.Register(injector.Transport(transport.NewHTTPTransport()))

	consumer := wspeer.NewPeer()
	chb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	chb.Attach(consumer)
	defer chb.Close()

	if budgeted {
		consumer.Client().ConfigureRetryBudget(wspeer.RetryBudgetOptions{
			Floor: 3, Cap: 10, Ratio: 0.1,
		})
	}
	consumer.Client().Use(wspeer.Retry(wspeer.RetryOptions{
		Attempts:  4,
		BaseDelay: time.Millisecond,
		Retryable: func(c *wspeer.PipelineCall, err error) bool { return true },
	}))

	inv, err := consumer.Client().NewInvocation(&wspeer.ServiceInfo{
		Name: "Echo", Endpoint: dep.Endpoint, Definitions: dep.Definitions,
	})
	if err != nil {
		t.Fatal(err)
	}

	mAttempts := telemetry.Default().Meter.Counter("pipeline.retry.attempts")
	before := mAttempts.Value()
	for i := 0; i < stormCalls; i++ {
		if _, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "m")); err != nil {
			failures++
		}
	}
	return mAttempts.Value() - before, failures
}

// TestChaosRetryStorm is the acceptance check for retry budgets: under
// 30% faults, a budgeted client keeps wire attempts within ~1.2× the
// offered load while the unbudgeted client multiplies it well beyond.
func TestChaosRetryStorm(t *testing.T) {
	unbounded, _ := runRetryStorm(t, false)
	budgeted, _ := runRetryStorm(t, true)

	// Unbudgeted, 30% faults and 4 attempts multiply ~100 calls into
	// ~140 attempts (1 + 0.3 + 0.09 + 0.027 per call).
	if unbounded < 125 {
		t.Fatalf("unbudgeted storm sent %d attempts for %d calls; expected amplification ≥ 125", unbounded, stormCalls)
	}
	// Budgeted: floor 3 + 0.1 credit per success bounds total retries to
	// ~13, so attempts stay within ~1.2× the offered load.
	limit := int64(float64(stormCalls) * 1.2)
	if budgeted > limit {
		t.Fatalf("budgeted storm sent %d attempts for %d calls; budget should bound it to ≤ %d", budgeted, stormCalls, limit)
	}
	if budgeted >= unbounded {
		t.Fatalf("budget did not reduce attempts: %d budgeted vs %d unbudgeted", budgeted, unbounded)
	}
	t.Logf("offered=%d attempts: unbudgeted=%d budgeted=%d", stormCalls, unbounded, budgeted)
}

// TestChaosDeadlinePropagation is the acceptance check for cross-wire
// deadline propagation: a request whose caller deadline has already
// expired is dropped by the engine before dispatch (the handler never
// runs), while a live deadline is carried into the handler's context.
func TestChaosDeadlinePropagation(t *testing.T) {
	provider := wspeer.NewPeer()
	hb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hb.Attach(provider)
	defer hb.Close()

	var dispatched atomic.Int64
	dep, err := provider.Server().Deploy(wspeer.ServiceDef{
		Name: "Echo",
		Operations: []wspeer.OperationDef{{
			Name: "echo",
			Func: func(s string) string {
				dispatched.Add(1)
				return s
			},
			ParamNames: []string{"msg"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	stub := engine.NewStub(dep.Definitions, nil)
	req, _, err := stub.BuildRequest("echo", engine.P("msg", "m"))
	if err != nil {
		t.Fatal(err)
	}
	post := func(deadline time.Time) *http.Response {
		t.Helper()
		hr, err := http.NewRequest(http.MethodPost, dep.Endpoint, bytes.NewReader(req.Body))
		if err != nil {
			t.Fatal(err)
		}
		hr.Header.Set("Content-Type", req.ContentType)
		hr.Header.Set("SOAPAction", `"`+req.Action+`"`)
		hr.Header.Set(transport.DeadlineHeader, transport.FormatDeadline(deadline))
		resp, err := http.DefaultClient.Do(hr)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	mCarried := telemetry.Default().Meter.Counter("engine.deadline.carried")
	mDropped := telemetry.Default().Meter.Counter("engine.deadline.dropped")
	carried0, dropped0 := mCarried.Value(), mDropped.Value()

	// A request whose caller already gave up: dropped before dispatch.
	resp := post(time.Now().Add(-time.Second))
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("expired-deadline request answered %d, want a fault status", resp.StatusCode)
	}
	if got := dispatched.Load(); got != 0 {
		t.Fatalf("caller-expired request reached the handler %d time(s); want zero dispatches", got)
	}
	if got := mDropped.Value() - dropped0; got != 1 {
		t.Fatalf("engine.deadline.dropped delta = %d, want 1", got)
	}

	// A live deadline: carried into dispatch, the handler runs.
	resp = post(time.Now().Add(30 * time.Second))
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live-deadline request answered %d: %s", resp.StatusCode, body)
	}
	if got := dispatched.Load(); got != 1 {
		t.Fatalf("live-deadline request dispatched %d time(s), want 1", got)
	}
	if got := mCarried.Value() - carried0; got != 2 {
		t.Fatalf("engine.deadline.carried delta = %d, want 2 (both requests carried deadlines)", got)
	}

	// The client invoke path stamps the header from its context deadline:
	// an end-to-end call with a live ctx deadline also counts as carried.
	consumer := wspeer.NewPeer()
	chb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	chb.Attach(consumer)
	defer chb.Close()
	inv, err := consumer.Client().NewInvocation(&wspeer.ServiceInfo{
		Name: "Echo", Endpoint: dep.Endpoint, Definitions: dep.Definitions,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "m")); err != nil {
		t.Fatalf("end-to-end deadline-carrying invoke: %v", err)
	}
	if got := mCarried.Value() - carried0; got != 3 {
		t.Fatalf("engine.deadline.carried delta after client invoke = %d, want 3", got)
	}
}
