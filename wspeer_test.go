package wspeer_test

import (
	"context"
	"sort"
	"strings"
	"testing"
	"time"

	"wspeer"
	"wspeer/internal/engine"
	"wspeer/internal/httpd"
	"wspeer/internal/p2ps"
)

// startRegistry hosts a UDDI registry over real HTTP.
func startRegistry(t *testing.T) string {
	t.Helper()
	host := httpd.New(engine.New(), httpd.Options{})
	t.Cleanup(func() { host.Close() })
	endpoint, err := host.Deploy(wspeer.UDDIServiceDef(wspeer.NewUDDIRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	return endpoint
}

func echoDef(name, tag string) wspeer.ServiceDef {
	return wspeer.ServiceDef{
		Name: name,
		Operations: []wspeer.OperationDef{{
			Name:       "echo",
			Func:       func(s string) string { return tag + ":" + s },
			ParamNames: []string{"msg"},
		}},
	}
}

// TestCrossFertilisation is the paper's thesis as a test: one consumer
// peer, with both bindings attached, locates services hosted on the
// client/server substrate (HTTP + UDDI) and on the P2P substrate (P2PS
// pipes) with the same query, and invokes both through the same API.
func TestCrossFertilisation(t *testing.T) {
	ctx := context.Background()
	registryURL := startRegistry(t)
	overlay := p2ps.NewLocalNetwork()
	rdv, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Rendezvous: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rdv.Close() })

	// Provider 1: standard implementation.
	httpProvider := wspeer.NewPeer()
	hb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hb.Close() })
	hb.Attach(httpProvider)
	if _, err := httpProvider.Server().DeployAndPublish(ctx, echoDef("EchoHTTP", "http")); err != nil {
		t.Fatal(err)
	}

	// Provider 2: P2PS implementation.
	p2pProviderNode, err := wspeer.NewP2PSPeer(wspeer.P2PSConfig{
		Transport: overlay.NewEndpoint(), Seeds: []string{rdv.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p2pProviderNode.Close() })
	p2pProvider := wspeer.NewPeer()
	pb, err := wspeer.NewP2PSBinding(wspeer.P2PSOptions{Peer: p2pProviderNode})
	if err != nil {
		t.Fatal(err)
	}
	pb.Attach(p2pProvider)
	if _, err := p2pProvider.Server().DeployAndPublish(ctx, echoDef("EchoP2PS", "p2ps")); err != nil {
		t.Fatal(err)
	}

	// Consumer: BOTH bindings on one peer — UDDI locator + p2ps locator,
	// HTTP invoker + pipe invoker.
	consumerNode, err := wspeer.NewP2PSPeer(wspeer.P2PSConfig{
		Transport: overlay.NewEndpoint(), Seeds: []string{rdv.Addr()},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { consumerNode.Close() })
	consumer := wspeer.NewPeer()
	chb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { chb.Close() })
	chb.Attach(consumer)
	cpb, err := wspeer.NewP2PSBinding(wspeer.P2PSOptions{
		Peer: consumerNode, DiscoveryTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	cpb.Attach(consumer)

	// One wildcard query spans both worlds.
	var infos []*wspeer.ServiceInfo
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		infos, err = consumer.Client().Locate(ctx, wspeer.NameQuery{Name: "Echo*"})
		if err == nil && len(infos) >= 2 {
			break
		}
	}
	if len(infos) < 2 {
		t.Fatalf("expected both providers, got %d (%v)", len(infos), err)
	}
	var locators []string
	for _, info := range infos {
		locators = append(locators, info.Locator)
	}
	sort.Strings(locators)
	if locators[0] != "p2ps" || locators[len(locators)-1] != "uddi" {
		t.Fatalf("locators = %v", locators)
	}

	// Invoke each through the identical API; the scheme routes the
	// invoker.
	for _, info := range infos {
		inv, err := consumer.Client().NewInvocation(info)
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		res, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "x"))
		if err != nil {
			t.Fatalf("%s: %v", info.Name, err)
		}
		got, err := res.String("return")
		if err != nil {
			t.Fatal(err)
		}
		wantTag := "http"
		if strings.HasPrefix(info.Endpoint, "p2ps://") {
			wantTag = "p2ps"
		}
		if got != wantTag+":x" {
			t.Fatalf("%s returned %q", info.Name, got)
		}
	}
}

func TestStatefulObjectAsService(t *testing.T) {
	ctx := context.Background()
	peer := wspeer.NewPeer()
	b, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	b.Attach(peer)

	acc := &Accumulator{}
	def, err := wspeer.ServiceFromObject("Accumulator", acc)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := peer.Server().Deploy(def)
	if err != nil {
		t.Fatal(err)
	}
	info := &wspeer.ServiceInfo{Name: "Accumulator", Endpoint: dep.Endpoint, Definitions: dep.Definitions}
	inv, err := peer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := inv.Invoke(ctx, "Add", wspeer.P("in0", int64(5))); err != nil {
			t.Fatal(err)
		}
	}
	res, err := inv.Invoke(ctx, "Total")
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	if err := res.Decode("return", &total); err != nil || total != 15 {
		t.Fatalf("total = %d, %v", total, err)
	}
	// The live object shares the state.
	if acc.Total() != 15 {
		t.Fatalf("object state = %d", acc.Total())
	}
}

// Accumulator is a stateful object exposed as a service.
type Accumulator struct{ sum int64 }

// Add adds to the accumulator and returns the new total.
func (a *Accumulator) Add(v int64) int64 { a.sum += v; return a.sum }

// Total returns the current total.
func (a *Accumulator) Total() int64 { return a.sum }

func TestParseP2PSURIFacade(t *testing.T) {
	u, err := wspeer.ParseP2PSURI("p2ps://p1/Echo#requests")
	if err != nil || u.Peer != "p1" || u.Service != "Echo" || u.Pipe != "requests" {
		t.Fatalf("%+v, %v", u, err)
	}
}
