// Command uddid runs a standalone UDDI-style registry node: the
// centralized discovery substrate of WSPeer's standard binding. The
// registry itself is hosted as a WSPeer service, so any WSPeer client can
// publish to it and query it over SOAP.
//
//	uddid -listen 127.0.0.1:8900
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"wspeer"
	"wspeer/internal/engine"
	"wspeer/internal/httpd"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP address to listen on")
	flag.Parse()

	registry := wspeer.NewUDDIRegistry()
	host := httpd.New(engine.New(), httpd.Options{ListenAddr: *listen})
	defer host.Close()
	endpoint, err := host.Deploy(wspeer.UDDIServiceDef(registry))
	if err != nil {
		log.Fatalf("uddid: %v", err)
	}
	fmt.Println("uddid: registry listening at", endpoint)
	fmt.Println("uddid: point WSPeer peers at it with -uddi", endpoint)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("uddid: shutting down")
}
