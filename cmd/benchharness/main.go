// Command benchharness regenerates every experiment indexed in DESIGN.md
// (E1-E10, E13): the measured reproductions of the WSPeer paper's process
// figures and qualitative performance claims. Run everything:
//
//	benchharness
//
// or individual experiments at custom scales:
//
//	benchharness -experiments E5,E6 -peers 64,256,1024 -queries 200
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"
	"time"

	"wspeer/internal/experiments"
	"wspeer/internal/telemetry"
)

func main() {
	which := flag.String("experiments", "all", "comma-separated experiment IDs (E1..E10, E13, A1..A4, R1, R2) or 'all'")
	seed := flag.Int64("seed", 42, "deterministic seed for simulated experiments")
	peersFlag := flag.String("peers", "32,128,512", "network sizes for E5 (comma-separated)")
	queries := flag.Int("queries", 100, "queries per configuration for E5/E6")
	churnPeers := flag.Int("churn-peers", 128, "network size for E6")
	churnReps := flag.Int("churn-reps", 3, "repetitions averaged for E6")
	services := flag.Int("services", 64, "service population for E7")
	iters := flag.Int("iters", 2000, "iterations for microbenchmark experiments")
	benchJSON := flag.String("benchjson", "", "write A3 fast-path benchmark results (allocs/op, ns/op) to this JSON file")
	benchCompare := flag.String("bench-compare", "", "compare A3 results against this baseline JSON; exit non-zero on >20% regression")
	snapshotJSON := flag.String("snapshot", "", "after the run, write the telemetry snapshot (counters, call table, flight-recorder stats) to this JSON file")
	flag.Parse()

	wanted := map[string]bool{}
	if *which == "all" {
		for i := 1; i <= 10; i++ {
			wanted[fmt.Sprintf("E%d", i)] = true
		}
		wanted["E13"] = true
		wanted["A1"] = true
		wanted["A2"] = true
		wanted["A3"] = true
		wanted["A4"] = true
		wanted["R1"] = true
		wanted["R2"] = true
	} else {
		for _, id := range strings.Split(*which, ",") {
			wanted[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}
	var sizes []int
	for _, s := range strings.Split(*peersFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 4 {
			log.Fatalf("benchharness: bad -peers entry %q", s)
		}
		sizes = append(sizes, n)
	}

	fmt.Printf("WSPeer experiment harness (seed %d)\n", *seed)
	start := time.Now()

	if wanted["E1"] {
		r, err := experiments.RunEvents(*iters * 10)
		check(err)
		experiments.EventsTable(r).Print(os.Stdout)
	}
	if wanted["E2"] {
		r, err := experiments.RunHTTPLifecycle([]int{1, 8, 32}, 400)
		check(err)
		experiments.LifecycleTable("E2", r).Print(os.Stdout)
	}
	if wanted["E3"] {
		r, err := experiments.RunP2PSLifecycle([]int{1, 8, 32}, 400)
		check(err)
		experiments.LifecycleTable("E3", r).Print(os.Stdout)
	}
	if wanted["E4"] {
		r, err := experiments.RunPipeSteps(1000)
		check(err)
		experiments.PipeStepsTable(r).Print(os.Stdout)
	}
	if wanted["E5"] {
		rows, err := experiments.RunDiscoveryScaling(*seed, sizes)
		check(err)
		experiments.DiscoveryScalingTable(rows).Print(os.Stdout)
	}
	if wanted["E6"] {
		rows, err := experiments.RunChurn(*seed, *churnPeers, []float64{0, 0.1, 0.25, 0.5, 0.75}, *queries, *churnReps)
		check(err)
		experiments.ChurnTable(rows).Print(os.Stdout)
	}
	if wanted["E7"] {
		r, err := experiments.RunSyncVsAsync(*seed, *services, 20*time.Millisecond)
		check(err)
		experiments.SyncAsyncTable(r).Print(os.Stdout)
	}
	if wanted["E8"] {
		r, err := experiments.RunStubComparison(*iters)
		check(err)
		experiments.StubTable(r).Print(os.Stdout)
	}
	if wanted["E9"] {
		r, err := experiments.RunDeploy(256)
		check(err)
		experiments.DeployTable(r).Print(os.Stdout)
	}
	if wanted["E10"] {
		r, err := experiments.RunStateful(*iters)
		check(err)
		experiments.StatefulTable(r).Print(os.Stdout)
	}
	if wanted["A1"] {
		rows, err := experiments.RunTTLSweep(*seed, 6, []int{1, 2, 3, 4, 5, 6, 8})
		check(err)
		experiments.TTLTable(rows).Print(os.Stdout)
	}
	if wanted["A2"] {
		rows, err := experiments.RunChainDepth([]int{0, 4, 16, 64}, *iters)
		check(err)
		experiments.ChainDepthTable(rows).Print(os.Stdout)
	}
	if wanted["R1"] {
		rows, err := experiments.RunResilienceSweep(*seed, 300, []float64{0, 0.1, 0.3})
		check(err)
		experiments.ResilienceTable(rows).Print(os.Stdout)
	}
	if wanted["R2"] {
		rows, err := experiments.RunHedgeSweep(*seed, 200)
		check(err)
		experiments.HedgeTable(rows).Print(os.Stdout)
	}
	var throughput []experiments.ThroughputResult
	if wanted["A4"] {
		rs, err := experiments.RunThroughput()
		check(err)
		experiments.ThroughputTable(rs).Print(os.Stdout)
		throughput = rs
	}
	if wanted["E13"] {
		rs, err := experiments.RunExchangePatterns()
		check(err)
		experiments.ExchangePatternsTable(rs).Print(os.Stdout)
		throughput = append(throughput, rs...)
	}
	if wanted["A3"] || *benchJSON != "" || *benchCompare != "" {
		rs, err := experiments.RunAllocBenches()
		check(err)
		experiments.AllocBenchTable(rs).Print(os.Stdout)
		if *benchJSON != "" {
			check(experiments.WriteAllocBenchJSON(*benchJSON, rs, throughput, experiments.CollectBenchTelemetry()))
			fmt.Printf("wrote %s\n", *benchJSON)
		}
		if *benchCompare != "" {
			baseline, err := experiments.ReadAllocBenchJSON(*benchCompare)
			check(err)
			if errs := experiments.CompareAllocBenches(baseline, rs, 0.20); len(errs) > 0 {
				for _, e := range errs {
					fmt.Fprintf(os.Stderr, "REGRESSION: %v\n", e)
				}
				log.Fatalf("benchharness: %d fast-path regression(s) against %s", len(errs), *benchCompare)
			}
			fmt.Printf("fast path within 20%% of baseline %s\n", *benchCompare)
		}
	}

	if *snapshotJSON != "" {
		doc := struct {
			Telemetry telemetry.Snapshot      `json:"telemetry"`
			Flight    telemetry.RecorderStats `json:"flight"`
		}{telemetry.Default().Snapshot(), telemetry.Default().Flight.Stats()}
		raw, err := json.MarshalIndent(doc, "", "  ")
		check(err)
		check(os.WriteFile(*snapshotJSON, append(raw, '\n'), 0o644))
		fmt.Printf("wrote %s\n", *snapshotJSON)
	}

	fmt.Printf("\nharness completed in %s\n", time.Since(start).Round(time.Millisecond))
}

func check(err error) {
	if err != nil {
		log.Fatalf("benchharness: %v", err)
	}
}
