package main

import (
	"testing"
	"time"

	"wspeer"
)

func TestParseCLI(t *testing.T) {
	a, err := parseCLI([]string{
		"invoke", "-uddi", "http://r/services/UDDIRegistry",
		"-name", "Echo", "-op", "echo", "-timeout", "3s",
		"msg=hello", "n=5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if a.cmd != "invoke" || a.uddiURL == "" || a.name != "Echo" || a.op != "echo" {
		t.Fatalf("parsed: %+v", a)
	}
	if a.timeout != 3*time.Second {
		t.Fatalf("timeout = %v", a.timeout)
	}
	if len(a.params) != 2 || a.params[0].Name != "msg" || a.params[1].Value != "5" {
		t.Fatalf("params: %+v", a.params)
	}
	if _, ok := a.query().(wspeer.NameQuery); !ok {
		t.Fatalf("query type: %T", a.query())
	}
}

func TestParseCLIDefaultsAndExpr(t *testing.T) {
	a, err := parseCLI([]string{"find", "-seed", "tcp://h:1", "-expr", "attr(kind) = 'echo'"})
	if err != nil {
		t.Fatal(err)
	}
	if a.name != "*" {
		t.Fatalf("default name = %q", a.name)
	}
	if a.timeout != 15*time.Second {
		t.Fatalf("default timeout = %v", a.timeout)
	}
	q, ok := a.query().(wspeer.ExprQuery)
	if !ok || q.Expr == "" {
		t.Fatalf("query: %#v", a.query())
	}
}

func TestParseCLIErrors(t *testing.T) {
	bad := [][]string{
		{},
		{"find"},                           // no -uddi/-seed
		{"explode", "-uddi", "u"},          // unknown command
		{"invoke", "-uddi", "u"},           // invoke without -op
		{"find", "-uddi"},                  // flag without value
		{"find", "-uddi", "u", "-timeout"}, // flag without value
		{"find", "-uddi", "u", "-timeout", "soon"}, // bad duration
		{"find", "-uddi", "u", "dangling"},         // non key=value positional
	}
	for _, args := range bad {
		if _, err := parseCLI(args); err == nil {
			t.Errorf("parseCLI(%v): expected error", args)
		}
	}
}
