// Command wspeer is the client-side CLI: it locates services through a
// UDDI registry or a P2PS overlay, describes their interfaces, and invokes
// operations with key=value parameters.
//
//	wspeer find    -uddi <registry-url> [-name 'Echo*']
//	wspeer find    -seed tcp://host:port [-name 'Echo*']
//	wspeer describe -uddi <registry-url> -name Echo
//	wspeer invoke  -uddi <registry-url> -name Echo -op echo msg=hello
//	wspeer invoke  -seed tcp://host:port -name Echo -op echo msg=hello
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"wspeer"
	"wspeer/internal/xmlutil"
)

func usage() {
	fmt.Fprintln(os.Stderr, `usage: wspeer <find|describe|invoke> [flags] [param=value ...]
  -uddi URL     locate through a UDDI registry (standard binding)
  -seed ADDR    locate through a P2PS overlay seeded at ADDR
  -name NAME    service name or pattern (default '*')
  -expr EXPR    rich query, e.g. "attr(kind) = 'echo' and attr(price) < 1"
  -op NAME      operation to invoke (invoke only)
  -timeout DUR  overall timeout (default 15s)`)
	os.Exit(2)
}

// cliArgs is the parsed command line.
type cliArgs struct {
	cmd     string
	uddiURL string
	seed    string
	name    string
	expr    string
	op      string
	timeout time.Duration
	params  []wspeer.Param
}

// query builds the ServiceQuery the arguments describe.
func (a *cliArgs) query() wspeer.ServiceQuery {
	if a.expr != "" {
		return wspeer.ExprQuery{Name: a.name, Expr: a.expr}
	}
	return wspeer.NameQuery{Name: a.name}
}

// parseCLI interprets the command line (excluding the program name).
func parseCLI(argv []string) (*cliArgs, error) {
	if len(argv) < 1 {
		return nil, fmt.Errorf("missing command")
	}
	a := &cliArgs{cmd: argv[0], timeout: 15 * time.Second}
	args := argv[1:]
	take := func(i int, flag string) (string, error) {
		if i >= len(args) {
			return "", fmt.Errorf("%s needs a value", flag)
		}
		return args[i], nil
	}
	var err error
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-uddi":
			i++
			if a.uddiURL, err = take(i, "-uddi"); err != nil {
				return nil, err
			}
		case "-seed":
			i++
			if a.seed, err = take(i, "-seed"); err != nil {
				return nil, err
			}
		case "-name":
			i++
			if a.name, err = take(i, "-name"); err != nil {
				return nil, err
			}
		case "-expr":
			i++
			if a.expr, err = take(i, "-expr"); err != nil {
				return nil, err
			}
		case "-op":
			i++
			if a.op, err = take(i, "-op"); err != nil {
				return nil, err
			}
		case "-timeout":
			i++
			v, err := take(i, "-timeout")
			if err != nil {
				return nil, err
			}
			if a.timeout, err = time.ParseDuration(v); err != nil {
				return nil, fmt.Errorf("bad -timeout: %v", err)
			}
		default:
			k, v, ok := strings.Cut(args[i], "=")
			if !ok {
				return nil, fmt.Errorf("unexpected argument %q", args[i])
			}
			a.params = append(a.params, wspeer.P(k, v))
		}
	}
	if a.name == "" {
		a.name = "*"
	}
	if a.uddiURL == "" && a.seed == "" {
		return nil, fmt.Errorf("one of -uddi or -seed is required")
	}
	switch a.cmd {
	case "find", "describe", "invoke":
	default:
		return nil, fmt.Errorf("unknown command %q", a.cmd)
	}
	if a.cmd == "invoke" && a.op == "" {
		return nil, fmt.Errorf("invoke needs -op")
	}
	return a, nil
}

func main() {
	a, err := parseCLI(os.Args[1:])
	if err != nil {
		fmt.Fprintf(os.Stderr, "wspeer: %v\n", err)
		usage()
	}
	cmd, op, params := a.cmd, a.op, a.params

	ctx, cancel := context.WithTimeout(context.Background(), a.timeout)
	defer cancel()
	peer, cleanup := buildPeer(a.uddiURL, a.seed)
	defer cleanup()

	q := a.query()

	switch cmd {
	case "find":
		infos, err := peer.Client().Locate(ctx, q)
		if err != nil && len(infos) == 0 {
			log.Fatalf("wspeer: %v", err)
		}
		for _, info := range infos {
			fmt.Printf("%-24s %-8s %s\n", info.Name, info.Locator, info.Endpoint)
		}
		if len(infos) == 0 {
			fmt.Println("no services found")
		}
	case "describe":
		info := locate(ctx, peer, q)
		fmt.Printf("service %s\n  endpoint  %s\n  located via %s\n  operations:\n", info.Name, info.Endpoint, info.Locator)
		for _, pt := range info.Definitions.PortTypes {
			for _, o := range pt.Operations {
				kind := "request/response"
				if o.OneWay() {
					kind = "one-way"
				}
				fmt.Printf("    %-20s %-18s %s\n", o.Name, kind, o.Doc)
			}
		}
	case "invoke":
		info := locate(ctx, peer, q)
		inv, err := peer.Client().NewInvocation(info)
		if err != nil {
			log.Fatalf("wspeer: %v", err)
		}
		res, err := inv.Invoke(ctx, op, params...)
		if err != nil {
			log.Fatalf("wspeer: invoke: %v", err)
		}
		if res == nil {
			fmt.Println("(one-way request accepted)")
			return
		}
		os.Stdout.Write(xmlutil.MarshalIndent(res.Wrapper))
		fmt.Println()
	default:
		usage()
	}
}

func locate(ctx context.Context, peer *wspeer.Peer, q wspeer.ServiceQuery) *wspeer.ServiceInfo {
	info, err := peer.Client().LocateOne(ctx, q)
	if err != nil {
		log.Fatalf("wspeer: locating %q: %v", q.QueryName(), err)
	}
	return info
}

func buildPeer(uddiURL, seed string) (*wspeer.Peer, func()) {
	peer := wspeer.NewPeer()
	var cleanups []func()
	if uddiURL != "" {
		b, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: uddiURL})
		if err != nil {
			log.Fatalf("wspeer: %v", err)
		}
		b.Attach(peer)
		cleanups = append(cleanups, func() { b.Close() })
	}
	if seed != "" {
		node, err := wspeer.NewTCPP2PSPeer("127.0.0.1:0", false, strings.Split(seed, ",")...)
		if err != nil {
			log.Fatalf("wspeer: %v", err)
		}
		b, err := wspeer.NewP2PSBinding(wspeer.P2PSOptions{Peer: node})
		if err != nil {
			log.Fatalf("wspeer: %v", err)
		}
		b.Attach(peer)
		cleanups = append(cleanups, func() { node.Close() })
	}
	return peer, func() {
		for _, c := range cleanups {
			c()
		}
	}
}
