// Command wspeerd hosts WSPeer's built-in demonstration services over
// either binding. It is the "provider peer in a box" for trying the stack
// from the command line against uddid and rendezvousd.
//
// Standard binding (HTTP hosting + UDDI publication):
//
//	wspeerd -binding http -uddi http://127.0.0.1:8900/services/UDDIRegistry -services echo,calc
//
// P2PS binding (pipes + advert publication over TCP):
//
//	wspeerd -binding p2ps -seed tcp://127.0.0.1:9700 -services echo,counter
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"wspeer"
)

func main() {
	binding := flag.String("binding", "http", `binding to host with: "http" or "p2ps"`)
	listen := flag.String("listen", "127.0.0.1:0", "TCP address to listen on")
	uddiURL := flag.String("uddi", "", "UDDI registry endpoint (http binding)")
	seeds := flag.String("seed", "", "comma-separated rendezvous addresses (p2ps binding)")
	services := flag.String("services", "echo", "comma-separated services to host: echo, calc, counter")
	flag.Parse()

	peer := wspeer.NewPeer()
	peer.AddListener(wspeer.ListenerFuncs{
		Deployment: func(e wspeer.DeploymentMessageEvent) {
			if e.Err == nil && !e.Undeployed {
				fmt.Printf("wspeerd: deployed %s at %s\n", e.Service, e.Endpoint)
			}
		},
		Publish: func(e wspeer.PublishEvent) {
			if e.Err == nil {
				fmt.Printf("wspeerd: published %s via %s (%s)\n", e.Service, e.Publisher, e.Location)
			}
		},
		Server: func(e wspeer.ServerMessageEvent) {
			fmt.Printf("wspeerd: served %s (%dB in, %dB out)\n", e.Service, len(e.Request.Body), len(e.Response.Body))
		},
	})

	var closer func()
	switch *binding {
	case "http":
		b, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{ListenAddr: *listen, UDDIEndpoint: *uddiURL})
		if err != nil {
			log.Fatalf("wspeerd: %v", err)
		}
		b.Attach(peer)
		closer = func() { b.Close() }
	case "p2ps":
		var seedList []string
		if *seeds != "" {
			seedList = strings.Split(*seeds, ",")
		}
		node, err := wspeer.NewTCPP2PSPeer(*listen, false, seedList...)
		if err != nil {
			log.Fatalf("wspeerd: %v", err)
		}
		b, err := wspeer.NewP2PSBinding(wspeer.P2PSOptions{Peer: node})
		if err != nil {
			log.Fatalf("wspeerd: %v", err)
		}
		b.Attach(peer)
		fmt.Println("wspeerd: p2ps peer", node.ID(), "at", node.Addr())
		closer = func() { node.Close() }
	default:
		log.Fatalf("wspeerd: unknown binding %q", *binding)
	}
	defer closer()

	ctx := context.Background()
	for _, name := range strings.Split(*services, ",") {
		def, err := builtinService(strings.TrimSpace(name))
		if err != nil {
			log.Fatalf("wspeerd: %v", err)
		}
		if *binding == "http" && *uddiURL == "" {
			// Hosting only: no registry to publish to.
			if _, err := peer.Server().Deploy(def); err != nil {
				log.Fatalf("wspeerd: deploying %s: %v", def.Name, err)
			}
			continue
		}
		if _, err := peer.Server().DeployAndPublish(ctx, def); err != nil {
			log.Fatalf("wspeerd: hosting %s: %v", def.Name, err)
		}
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("wspeerd: shutting down")
}

// builtinService returns one of the demo service definitions.
func builtinService(name string) (wspeer.ServiceDef, error) {
	switch name {
	case "echo":
		return wspeer.ServiceDef{
			Name: "Echo",
			Operations: []wspeer.OperationDef{
				{
					Name:       "echo",
					Func:       func(msg string) string { return msg },
					ParamNames: []string{"msg"},
					Doc:        "returns its input unchanged",
				},
				{
					Name:       "reverse",
					Func:       reverse,
					ParamNames: []string{"msg"},
					Doc:        "returns its input reversed",
				},
			},
		}, nil
	case "calc":
		return wspeer.ServiceDef{
			Name: "Calculator",
			Operations: []wspeer.OperationDef{
				{Name: "add", Func: func(a, b float64) float64 { return a + b }, ParamNames: []string{"a", "b"}},
				{Name: "sub", Func: func(a, b float64) float64 { return a - b }, ParamNames: []string{"a", "b"}},
				{Name: "mul", Func: func(a, b float64) float64 { return a * b }, ParamNames: []string{"a", "b"}},
				{Name: "div", Func: func(a, b float64) (float64, error) {
					if b == 0 {
						return 0, errors.New("division by zero")
					}
					return a / b, nil
				}, ParamNames: []string{"a", "b"}},
			},
		}, nil
	case "counter":
		c := &counter{}
		return wspeer.ServiceFromObject("Counter", c)
	default:
		return wspeer.ServiceDef{}, fmt.Errorf("unknown service %q (have echo, calc, counter)", name)
	}
}

func reverse(s string) string {
	r := []rune(s)
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
	return string(r)
}

// counter is the stateful demo object.
type counter struct {
	mu sync.Mutex
	n  int64
}

// Increment adds delta and returns the new value.
func (c *counter) Increment(delta int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += delta
	return c.n
}

// Value returns the current value.
func (c *counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
