// Command rendezvousd runs a standalone P2PS rendezvous peer over TCP: it
// caches service advertisements published by attached peers and propagates
// queries to other rendezvous it knows about, stitching peer groups into a
// searchable overlay.
//
//	rendezvousd -listen 127.0.0.1:9700
//	rendezvousd -listen 127.0.0.1:9701 -seed tcp://127.0.0.1:9700
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"wspeer"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "TCP address to listen on")
	seeds := flag.String("seed", "", "comma-separated addresses of other rendezvous peers")
	group := flag.String("group", "default", "peer group name")
	stats := flag.Duration("stats", 30*time.Second, "interval between stats lines (0 disables)")
	flag.Parse()

	var seedList []string
	if *seeds != "" {
		seedList = strings.Split(*seeds, ",")
	}
	tr, err := wspeer.NewTCPTransport(*listen)
	if err != nil {
		log.Fatalf("rendezvousd: %v", err)
	}
	peer, err := wspeer.NewP2PSPeer(wspeer.P2PSConfig{
		Transport:  tr,
		Rendezvous: true,
		Seeds:      seedList,
		Group:      *group,
		Name:       "rendezvousd",
	})
	if err != nil {
		log.Fatalf("rendezvousd: %v", err)
	}
	defer peer.Close()
	fmt.Println("rendezvousd: peer", peer.ID())
	fmt.Println("rendezvousd: listening at", peer.Addr())
	fmt.Println("rendezvousd: seed peers with -seed", peer.Addr())

	if *stats > 0 {
		go func() {
			for range time.Tick(*stats) {
				s := peer.Stats()
				fmt.Printf("rendezvousd: cache=%d msgs in/out=%d/%d queries served/forwarded=%d/%d\n",
					peer.CacheLen(), s.MessagesReceived, s.MessagesSent, s.QueriesServed, s.QueriesForwarded)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("rendezvousd: shutting down")
}
