module wspeer

go 1.22
