package wspeer_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"wspeer"
)

// TestFaultCorrelation proves the diagnostics egress joins up: one
// injected fault, invoked over the real HTTP binding with tracing
// enabled, must be findable afterwards as (1) a client and a server
// flight record, (2) a warn-level log line, and (3) exported spans — all
// sharing one trace ID.
func TestFaultCorrelation(t *testing.T) {
	ctx := context.Background()
	registryURL := startRegistry(t)

	ring := wspeer.EnableTracing(256)
	t.Cleanup(func() { wspeer.Telemetry().Tracer.SetSink(nil) })

	peer := wspeer.NewPeer()
	hb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hb.Close() })
	if err := peer.AttachBinding(hb); err != nil {
		t.Fatal(err)
	}
	if _, err := peer.Server().DeployAndPublish(ctx, wspeer.ServiceDef{
		Name: "CorrelatedFault",
		Operations: []wspeer.OperationDef{{
			Name:       "explode",
			Func:       func(s string) (string, error) { return "", errors.New("injected failure") },
			ParamNames: []string{"msg"},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	info, err := peer.Client().LocateOne(ctx, wspeer.NameQuery{Name: "CorrelatedFault"})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := peer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Invoke(ctx, "explode", wspeer.P("msg", "x")); err == nil {
		t.Fatal("explode should fault")
	}

	// (1) The flight recorder kept both sides of the failed call — errors
	// are never sampled out — and both carry the same trace.
	flight := wspeer.Telemetry().Flight
	cli := flight.Query(wspeer.FlightFilter{Service: "CorrelatedFault", Dir: "client", ErrorsOnly: true})
	if len(cli) != 1 {
		t.Fatalf("client flight records = %d, want 1: %+v", len(cli), cli)
	}
	traceID := cli[0].TraceID
	if traceID == 0 {
		t.Fatal("client flight record has no trace ID with tracing enabled")
	}
	if cli[0].ErrClass != "fault" {
		t.Fatalf("client record class = %q, want fault", cli[0].ErrClass)
	}
	srv := flight.Query(wspeer.FlightFilter{Service: "CorrelatedFault", Dir: "server", TraceID: traceID})
	if len(srv) != 1 || srv[0].ErrClass != "fault" {
		t.Fatalf("server flight record for trace %x: %+v", traceID, srv)
	}

	// (2) The engine's warn log line for the faulted dispatch carries the
	// same trace ID, stamped from the dispatch context.
	var logged *wspeer.LogEntry
	for _, e := range wspeer.Telemetry().Log.Recent(0) {
		if e.TraceID == traceID && strings.Contains(e.Msg, "fault") {
			logged = &e
			break
		}
	}
	if logged == nil {
		t.Fatalf("no log line for trace %016x in %d recent entries", traceID, len(wspeer.Telemetry().Log.Recent(0)))
	}
	if !strings.Contains(logged.Format(), "service=CorrelatedFault") {
		t.Fatalf("log line lacks the service: %s", logged.Format())
	}

	// (3) The exported trace has both spans of that trace, and the Chrome
	// dump renders them as events tagged with the same trace id.
	var spanCount int
	for _, d := range ring.Spans() {
		if d.TraceID == traceID {
			spanCount++
		}
	}
	if spanCount < 2 {
		t.Fatalf("exported spans in trace %016x = %d, want client + server", traceID, spanCount)
	}
	var buf bytes.Buffer
	if err := wspeer.WriteChromeTrace(&buf, ring.Spans()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Phase string `json:"ph"`
			Args  struct {
				TraceID string `json:"trace_id"`
				Service string `json:"service"`
			} `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not parseable: %v", err)
	}
	var exported int
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" && ev.Args.Service == "CorrelatedFault" {
			exported++
		}
	}
	if exported < 2 {
		t.Fatalf("chrome trace events for the faulted call = %d, want >= 2", exported)
	}

	// And the Prometheus exposition reflects the failure.
	buf.Reset()
	if err := wspeer.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `wspeer_call_failures_total{service="CorrelatedFault",dir="server"} 1`) {
		t.Fatal("failure not visible in Prometheus exposition")
	}
}
