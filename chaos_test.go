package wspeer_test

// Chaos test for the resilience layer (DESIGN.md §10): a real HTTP-binding
// invoke path with seeded fault injection on the primary endpoint, a
// healthy P2PS fallback, and retry+breaker+failover installed. Run it in
// isolation with `make chaos`.

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"wspeer"
	"wspeer/internal/p2ps"
	"wspeer/internal/transport"
)

// chaosSeed fixes the injector's fault schedule; the test (and `make
// chaos`) must reproduce bit-for-bit from it.
const chaosSeed = 42

// chaosClock drives the breaker's open-timeout deterministically: time
// only moves when the test advances it.
type chaosClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *chaosClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *chaosClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// chaosRun is the reproducible trace of one chaos round: which endpoint
// class ("http"/"p2ps") served each of the 100 calls, and the primary
// breaker's state transitions in order.
type chaosRun struct {
	served      []string
	transitions []string
}

func runChaos(t *testing.T, seed int64) chaosRun {
	t.Helper()
	ctx := context.Background()

	taggedEcho := func(name, tag string) wspeer.ServiceDef {
		return wspeer.ServiceDef{
			Name: name,
			Operations: []wspeer.OperationDef{{
				Name:       "echo",
				Func:       func(s string) string { return tag + ":" + s },
				ParamNames: []string{"msg"},
			}},
		}
	}

	// Primary provider: a real HTTP-hosted service.
	httpProvider := wspeer.NewPeer()
	hb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	hb.Attach(httpProvider)
	defer hb.Close()
	httpDep, err := httpProvider.Server().Deploy(taggedEcho("Echo", "http"))
	if err != nil {
		t.Fatal(err)
	}

	// Fallback provider: the same service over P2PS pipes on an
	// in-process overlay.
	overlay := p2ps.NewLocalNetwork()
	rdv, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Rendezvous: true})
	if err != nil {
		t.Fatal(err)
	}
	defer rdv.Close()
	mkNode := func() *p2ps.Peer {
		n, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Seeds: []string{rdv.Addr()}})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	provNode, consNode := mkNode(), mkNode()
	defer provNode.Close()
	defer consNode.Close()
	p2psProvider := wspeer.NewPeer()
	pb, err := wspeer.NewP2PSBinding(wspeer.P2PSOptions{Peer: provNode, DiscoveryTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	pb.Attach(p2psProvider)
	if _, err := p2psProvider.Server().DeployAndPublish(ctx, taggedEcho("Echo", "p2ps")); err != nil {
		t.Fatal(err)
	}

	// Consumer: both bindings attached; the HTTP transport goes through
	// the fault injector, which fails 30% of calls to the primary.
	injector := wspeer.NewFaultInjector(seed)
	injector.SetPlans(wspeer.FaultPlan{Endpoint: httpDep.Endpoint, ErrorRate: 0.3})
	reg := transport.NewRegistry()
	reg.Register(injector.Transport(transport.NewHTTPTransport()))

	consumer := wspeer.NewPeer()
	chb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	chb.Attach(consumer)
	defer chb.Close()
	cpb, err := wspeer.NewP2PSBinding(wspeer.P2PSOptions{Peer: consNode, DiscoveryTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cpb.Attach(consumer)

	// Breakers on a virtual clock advanced 10ms per call: the 50ms open
	// timeout elapses after five refused-primary calls, forcing observable
	// open → half-open → (closed | open) traffic within the run.
	clock := &chaosClock{t: time.Unix(0, 0)}
	var mu sync.Mutex
	var transitions []string
	consumer.Client().ConfigureBreakers(wspeer.BreakerOptions{
		Window:           8,
		FailureThreshold: 0.5,
		MinSamples:       4,
		OpenTimeout:      50 * time.Millisecond,
		Now:              clock.Now,
		OnChange: func(ep string, from, to wspeer.BreakerState) {
			mu.Lock()
			transitions = append(transitions, from.String()+"->"+to.String())
			mu.Unlock()
		},
	})
	var healthEvents int
	consumer.AddListener(wspeer.ListenerFuncs{Health: func(e wspeer.HealthEvent) {
		mu.Lock()
		healthEvents++
		mu.Unlock()
	}})

	// Retry rides above failover: a walk that exhausts every endpoint is
	// retried as a whole.
	consumer.Client().Use(wspeer.Retry(wspeer.RetryOptions{
		Attempts:  2,
		BaseDelay: time.Millisecond,
		Retryable: func(c *wspeer.PipelineCall, err error) bool { return true },
	}))

	// Locate the fallback through real P2PS discovery; the primary's
	// coordinates came from its deployment.
	httpInfo := &wspeer.ServiceInfo{Name: "Echo", Endpoint: httpDep.Endpoint, Definitions: httpDep.Definitions}
	var p2psInfo *wspeer.ServiceInfo
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		p2psInfo, err = consumer.Client().LocateOne(ctx, wspeer.NameQuery{Name: "Echo"})
		if err == nil {
			break
		}
	}
	if p2psInfo == nil {
		t.Fatal("P2PS fallback never became locatable")
	}

	inv, err := consumer.Client().NewFailoverInvocation(httpInfo, p2psInfo)
	if err != nil {
		t.Fatal(err)
	}
	if eps := inv.Endpoints(); len(eps) != 2 || eps[0] != httpDep.Endpoint {
		t.Fatalf("failover endpoints = %v", eps)
	}

	served := make([]string, 0, 100)
	for i := 0; i < 100; i++ {
		clock.Advance(10 * time.Millisecond)
		res, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "m"))
		if err != nil {
			t.Fatalf("call %d surfaced an error despite a healthy fallback: %v", i, err)
		}
		got, err := res.String("return")
		if err != nil {
			t.Fatal(err)
		}
		tag, _, ok := strings.Cut(got, ":")
		if !ok {
			t.Fatalf("call %d: unexpected result %q", i, got)
		}
		served = append(served, tag)
	}

	mu.Lock()
	defer mu.Unlock()
	if healthEvents != len(transitions) {
		t.Fatalf("event tree saw %d health events, breaker fired %d transitions", healthEvents, len(transitions))
	}
	return chaosRun{served: served, transitions: transitions}
}

func TestChaosFailover(t *testing.T) {
	run := runChaos(t, chaosSeed)

	counts := map[string]int{}
	for _, tag := range run.served {
		counts[tag]++
	}
	if counts["http"] == 0 || counts["p2ps"] == 0 {
		t.Fatalf("served = %v: want both the primary and the fallback to carry traffic", counts)
	}
	trace := strings.Join(run.transitions, ",")
	if !strings.Contains(trace, "closed->open") {
		t.Fatalf("breaker never opened: %s", trace)
	}
	if !strings.Contains(trace, "open->half-open") {
		t.Fatalf("breaker never probed: %s", trace)
	}
	if !strings.Contains(trace, "half-open->closed") {
		t.Fatalf("breaker never re-closed: %s", trace)
	}
	t.Logf("served: http=%d p2ps=%d; transitions: %s", counts["http"], counts["p2ps"], trace)
}

func TestChaosDeterministic(t *testing.T) {
	a := runChaos(t, chaosSeed)
	b := runChaos(t, chaosSeed)
	if strings.Join(a.served, ",") != strings.Join(b.served, ",") {
		t.Fatalf("same seed served different endpoints:\n  %v\n  %v", a.served, b.served)
	}
	if strings.Join(a.transitions, ",") != strings.Join(b.transitions, ",") {
		t.Fatalf("same seed walked different breaker states:\n  %v\n  %v", a.transitions, b.transitions)
	}
}
