package wspeer_test

// Message-exchange-layer end-to-end tests (DESIGN.md §15): the one-way and
// callback patterns exercised over every binding, and the decoupled reply
// crossing bindings — an HTTP request whose wsa:ReplyTo names a P2PS pipe,
// and the reverse. Callback replies must travel as separate outbound
// messages (a second connection for HTTP, a second pipe for P2PS), which
// the tests pin down with the engine's exchange.reply.out counter and the
// client correlation-table stats.

import (
	"context"
	"testing"
	"time"

	"wspeer"
	"wspeer/internal/binding/httpbind"
	"wspeer/internal/binding/p2psbind"
	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/exchange"
	"wspeer/internal/p2ps"
	"wspeer/internal/pipeline"
	"wspeer/internal/soap"
	"wspeer/internal/wsaddr"
)

// exchangeEchoDef is a service with a request/response echo and a true
// one-way notification whose execution is observable through ping.
func exchangeEchoDef(name string, ping chan<- string) wspeer.ServiceDef {
	return wspeer.ServiceDef{
		Name: name,
		Operations: []wspeer.OperationDef{
			{Name: "echoString", Func: func(s string) string { return "async:" + s }, ParamNames: []string{"msg"}},
			{Name: "notify", Func: func(s string) error { ping <- s; return nil }, ParamNames: []string{"msg"}, OneWay: true},
		},
	}
}

// awaitPing fails the test unless a notification arrives promptly.
func awaitPing(t *testing.T, ping <-chan string, want string) {
	t.Helper()
	select {
	case got := <-ping:
		if got != want {
			t.Fatalf("notify delivered %q, want %q", got, want)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("one-way notification never reached the service")
	}
}

// exerciseExchange runs the one-way and callback patterns over an already
// bound invocation and asserts the wire behaviour: the one-way send has an
// observable effect with no decoded reply, and the callback reply arrives
// as a separate outbound message correlated by the client's table.
func exerciseExchange(t *testing.T, client *wspeer.Client, inv *wspeer.Invocation, ping <-chan string) {
	t.Helper()
	ctx := context.Background()
	before := wspeer.Snapshot()

	if err := inv.InvokeOneWay(ctx, "notify", wspeer.P("msg", "tick")); err != nil {
		t.Fatalf("InvokeOneWay: %v", err)
	}
	awaitPing(t, ping, "tick")

	pending, err := inv.InvokeCallback(ctx, "echoString", wspeer.P("msg", "cb"))
	if err != nil {
		t.Fatalf("InvokeCallback: %v", err)
	}
	if pending.MessageID() == "" {
		t.Fatal("pending reply has no MessageID")
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	res, err := pending.Wait(wctx)
	if err != nil {
		t.Fatalf("callback reply: %v", err)
	}
	if got, err := res.String("return"); err != nil || got != "async:cb" {
		t.Fatalf("callback result = %q, %v", got, err)
	}

	stats := client.ExchangeStats()
	if stats.Resolved < 1 {
		t.Fatalf("correlation table resolved %d exchanges, want >= 1", stats.Resolved)
	}
	after := wspeer.Snapshot()
	if d := after.Counters["exchange.oneway.sent"] - before.Counters["exchange.oneway.sent"]; d < 1 {
		t.Fatalf("exchange.oneway.sent grew by %d", d)
	}
	if d := after.Counters["exchange.callback.sent"] - before.Counters["exchange.callback.sent"]; d < 1 {
		t.Fatalf("exchange.callback.sent grew by %d", d)
	}
	// The reply left the provider as a separate outbound message through
	// the engine's decoupled-reply path, not on the request back channel.
	if d := after.Counters["exchange.reply.out"] - before.Counters["exchange.reply.out"]; d < 1 {
		t.Fatalf("exchange.reply.out grew by %d: reply did not use the decoupled path", d)
	}
}

func TestExchangePatternsInMem(t *testing.T) {
	ctx := context.Background()
	net := wspeer.NewInMemNetwork()
	dir := wspeer.NewInMemDirectory()
	ping := make(chan string, 8)

	provider := wspeer.NewPeer()
	pb, err := wspeer.NewInMemBinding(wspeer.InMemOptions{Network: net, Directory: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pb.Close() })
	if err := provider.AttachBinding(pb); err != nil {
		t.Fatal(err)
	}
	if _, err := provider.Server().DeployAndPublish(ctx, exchangeEchoDef("AsyncEchoMem", ping)); err != nil {
		t.Fatal(err)
	}

	consumer := wspeer.NewPeer()
	cb, err := wspeer.NewInMemBinding(wspeer.InMemOptions{Network: net, Directory: dir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cb.Close() })
	if err := consumer.AttachBinding(cb); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { consumer.Client().CloseExchange() })
	info, err := consumer.Client().LocateOne(ctx, wspeer.NameQuery{Name: "AsyncEchoMem"})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	exerciseExchange(t, consumer.Client(), inv, ping)
}

func TestExchangePatternsHTTP(t *testing.T) {
	ping := make(chan string, 8)

	provider := wspeer.NewPeer()
	hb, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { hb.Close() })
	if err := provider.AttachBinding(hb); err != nil {
		t.Fatal(err)
	}
	dep, err := provider.Server().Deploy(exchangeEchoDef("AsyncEchoHTTP", ping))
	if err != nil {
		t.Fatal(err)
	}

	consumer := wspeer.NewPeer()
	cbind, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cbind.Close() })
	if err := consumer.AttachBinding(cbind); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { consumer.Client().CloseExchange() })
	inv, err := consumer.Client().NewInvocation(&wspeer.ServiceInfo{
		Name: "AsyncEchoHTTP", Endpoint: dep.Endpoint, Definitions: dep.Definitions,
	})
	if err != nil {
		t.Fatal(err)
	}
	exerciseExchange(t, consumer.Client(), inv, ping)
}

func TestExchangePatternsP2PS(t *testing.T) {
	ctx := context.Background()
	overlay := p2ps.NewLocalNetwork()
	rdv, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Rendezvous: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rdv.Close() })
	newBinding := func() *p2psbind.Binding {
		t.Helper()
		pp, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Seeds: []string{rdv.Addr()}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pp.Close() })
		b, err := p2psbind.New(p2psbind.Options{Peer: pp, DiscoveryTimeout: 300 * time.Millisecond, ReplyTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	}

	ping := make(chan string, 8)
	provider := core.NewPeer()
	if err := provider.AttachBinding(newBinding()); err != nil {
		t.Fatal(err)
	}
	def := exchangeEchoDef("AsyncEchoP2PS", ping)
	if _, err := provider.Server().DeployAndPublish(ctx, def); err != nil {
		t.Fatal(err)
	}

	consumer := core.NewPeer()
	if err := consumer.AttachBinding(newBinding()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { consumer.Client().CloseExchange() })
	var info *core.ServiceInfo
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err = consumer.Client().LocateOne(ctx, core.NameQuery{Name: "AsyncEchoP2PS"})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("locate never succeeded: %v", err)
		}
	}
	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	exerciseExchange(t, consumer.Client(), inv, ping)
}

// TestCallbackReplyHTTPToP2PS sends a request over HTTP whose wsa:ReplyTo
// names a consumer-hosted P2PS callback pipe: the provider's engine honours
// the non-anonymous ReplyTo by routing the response through the p2ps reply
// sender, off the HTTP back channel entirely (the consumer-is-an-endpoint
// claim of paper §IV-B, across substrates).
func TestCallbackReplyHTTPToP2PS(t *testing.T) {
	ctx := context.Background()
	overlay := p2ps.NewLocalNetwork()
	rdv, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Rendezvous: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rdv.Close() })
	newP2PS := func() *p2psbind.Binding {
		t.Helper()
		pp, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Seeds: []string{rdv.Addr()}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pp.Close() })
		b, err := p2psbind.New(p2psbind.Options{Peer: pp, DiscoveryTimeout: 300 * time.Millisecond, ReplyTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	}

	// Provider: service hosted over HTTP; a colocated P2PS binding donates
	// its reply sender so the engine can deliver replies onto pipes.
	providerHTTP, err := httpbind.New(httpbind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { providerHTTP.Close() })
	providerP2PS := newP2PS()
	providerHTTP.Engine().RegisterReplySender(core.P2PSScheme, providerP2PS.ReplySender())
	provider := core.NewPeer()
	if err := provider.AttachBinding(providerHTTP); err != nil {
		t.Fatal(err)
	}
	ping := make(chan string, 1)
	dep, err := provider.Server().Deploy(exchangeEchoDef("CrossCallbackA", ping))
	if err != nil {
		t.Fatal(err)
	}

	// Consumer: hosts the reply endpoint on its own P2PS substrate.
	consumerP2PS := newP2PS()
	hoster, ok := consumerP2PS.Invoker().(core.CallbackHoster)
	if !ok {
		t.Fatal("p2ps invoker does not host reply endpoints")
	}
	replies := make(chan []byte, 1)
	ep, err := hoster.HostReplyEndpoint(func(body []byte) {
		select {
		case replies <- body:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })

	// Send the callback request over HTTP through the exchange layer, with
	// the pipe EPR as ReplyTo.
	consumerHTTP, err := httpbind.New(httpbind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { consumerHTTP.Close() })
	ci, ok := consumerHTTP.Invoker().(core.CallInvoker)
	if !ok {
		t.Fatal("http invoker is not a CallInvoker")
	}
	msgID := wsaddr.NewMessageID()
	call := &pipeline.Call{Dir: pipeline.ClientCall, Service: "CrossCallbackA", Op: "echoString", Ctx: ctx}
	call.SetMeta(exchange.MetaPattern, exchange.Callback)
	call.SetMeta(exchange.MetaHeaders, &wsaddr.MessageHeaders{MessageID: msgID, ReplyTo: ep.EPR()})
	info := &core.ServiceInfo{Name: "CrossCallbackA", Endpoint: dep.Endpoint, Definitions: dep.Definitions}
	if _, err := ci.InvokeCall(call, info, "echoString", []engine.Param{engine.P("msg", "h2p")}); err != nil {
		t.Fatalf("callback send: %v", err)
	}

	var body []byte
	select {
	case body = <-replies:
	case <-time.After(10 * time.Second):
		t.Fatal("reply never arrived on the P2PS callback pipe")
	}
	env, err := soap.Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := wsaddr.FromEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.RelatesTo != msgID {
		t.Fatalf("reply RelatesTo = %q, want %q", hdr.RelatesTo, msgID)
	}
	det, err := dep.Definitions.Detail("echoString")
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.DecodeResponseEnvelope(env, det)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := res.String("return"); err != nil || got != "async:h2p" {
		t.Fatalf("reply result = %q, %v", got, err)
	}
}

// TestCallbackReplyP2PSToHTTP is the reverse crossing: the request travels
// down a P2PS request pipe with a wsa:ReplyTo naming a consumer-hosted HTTP
// callback route, and the provider's engine posts the response there over
// HTTP.
func TestCallbackReplyP2PSToHTTP(t *testing.T) {
	ctx := context.Background()
	overlay := p2ps.NewLocalNetwork()
	rdv, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Rendezvous: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rdv.Close() })
	newP2PS := func() *p2psbind.Binding {
		t.Helper()
		pp, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Seeds: []string{rdv.Addr()}})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { pp.Close() })
		b, err := p2psbind.New(p2psbind.Options{Peer: pp, DiscoveryTimeout: 300 * time.Millisecond, ReplyTimeout: 5 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		return b
	}

	// Provider: service hosted over P2PS; a colocated HTTP binding donates
	// its reply sender so the engine can post replies to http:// EPRs.
	providerP2PS := newP2PS()
	bridgeHTTP, err := httpbind.New(httpbind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bridgeHTTP.Close() })
	providerP2PS.Engine().RegisterReplySender("http", bridgeHTTP.ReplySender())
	provider := core.NewPeer()
	if err := provider.AttachBinding(providerP2PS); err != nil {
		t.Fatal(err)
	}
	ping := make(chan string, 1)
	if _, err := provider.Server().DeployAndPublish(ctx, exchangeEchoDef("CrossCallbackB", ping)); err != nil {
		t.Fatal(err)
	}

	// Consumer: hosts the reply endpoint on its own HTTP substrate.
	consumerHTTP, err := httpbind.New(httpbind.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { consumerHTTP.Close() })
	hoster, ok := consumerHTTP.Invoker().(core.CallbackHoster)
	if !ok {
		t.Fatal("http invoker does not host reply endpoints")
	}
	replies := make(chan []byte, 1)
	ep, err := hoster.HostReplyEndpoint(func(body []byte) {
		select {
		case replies <- body:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ep.Close() })

	// Locate the service over P2PS discovery, then send the callback
	// request down its request pipe with the HTTP EPR as ReplyTo.
	consumerP2PS := newP2PS()
	consumer := core.NewPeer()
	if err := consumer.AttachBinding(consumerP2PS); err != nil {
		t.Fatal(err)
	}
	var info *core.ServiceInfo
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err = consumer.Client().LocateOne(ctx, core.NameQuery{Name: "CrossCallbackB"})
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("locate never succeeded: %v", err)
		}
	}
	ci, ok := consumerP2PS.Invoker().(core.CallInvoker)
	if !ok {
		t.Fatal("p2ps invoker is not a CallInvoker")
	}
	msgID := wsaddr.NewMessageID()
	call := &pipeline.Call{Dir: pipeline.ClientCall, Service: info.Name, Op: "echoString", Ctx: ctx}
	call.SetMeta(exchange.MetaPattern, exchange.Callback)
	call.SetMeta(exchange.MetaHeaders, &wsaddr.MessageHeaders{MessageID: msgID, ReplyTo: ep.EPR()})
	if _, err := ci.InvokeCall(call, info, "echoString", []engine.Param{engine.P("msg", "p2h")}); err != nil {
		t.Fatalf("callback send: %v", err)
	}

	var body []byte
	select {
	case body = <-replies:
	case <-time.After(10 * time.Second):
		t.Fatal("reply never arrived on the HTTP callback route")
	}
	env, err := soap.Parse(body)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := wsaddr.FromEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.RelatesTo != msgID {
		t.Fatalf("reply RelatesTo = %q, want %q", hdr.RelatesTo, msgID)
	}
	det, err := info.Definitions.Detail("echoString")
	if err != nil {
		t.Fatal(err)
	}
	res, err := engine.DecodeResponseEnvelope(env, det)
	if err != nil {
		t.Fatal(err)
	}
	if got, err := res.String("return"); err != nil || got != "async:p2h" {
		t.Fatalf("reply result = %q, %v", got, err)
	}
}
