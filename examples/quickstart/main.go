// Command quickstart walks through WSPeer's full standard-binding
// lifecycle in one process: it starts a UDDI registry (itself a
// WSPeer-hosted service), deploys an Echo service from a provider peer,
// publishes it, then — as a separate consumer peer — locates it by name
// and invokes it over real HTTP.
//
// Run it with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"wspeer"
	"wspeer/internal/engine"
	"wspeer/internal/httpd"
)

func main() {
	ctx := context.Background()

	// 1. A registry node: the UDDI registry is just another WSPeer
	//    service.
	registryHost := httpd.New(engine.New(), httpd.Options{})
	defer registryHost.Close()
	registryURL, err := registryHost.Deploy(wspeer.UDDIServiceDef(wspeer.NewUDDIRegistry()))
	if err != nil {
		log.Fatalf("starting registry: %v", err)
	}
	fmt.Println("registry:", registryURL)

	// 2. The provider peer: deploy + publish. No container — the HTTP
	//    server launches lazily with this first deployment.
	provider := wspeer.NewPeer()
	providerBinding, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
	if err != nil {
		log.Fatal(err)
	}
	defer providerBinding.Close()
	if err := provider.AttachBinding(providerBinding); err != nil {
		log.Fatal(err)
	}

	// Watch the provider's events: everything the interface tree does is
	// observable through one listener (paper §III).
	provider.AddListener(wspeer.ListenerFuncs{
		Deployment: func(e wspeer.DeploymentMessageEvent) {
			fmt.Printf("event: deployed %s at %s\n", e.Service, e.Endpoint)
		},
		Publish: func(e wspeer.PublishEvent) {
			fmt.Printf("event: published %s via %s (%s)\n", e.Service, e.Publisher, e.Location)
		},
		Server: func(e wspeer.ServerMessageEvent) {
			fmt.Printf("event: served a %d-byte request for %s\n", len(e.Request.Body), e.Service)
		},
	})

	_, err = provider.Server().DeployAndPublish(ctx, wspeer.ServiceDef{
		Name: "Echo",
		Operations: []wspeer.OperationDef{
			{
				Name:       "echo",
				Func:       func(msg string) string { return "echo: " + msg },
				ParamNames: []string{"msg"},
				Doc:        "returns its input prefixed with 'echo: '",
			},
			{
				Name: "shout",
				Func: func(msg string, times int64) []string {
					out := make([]string, times)
					for i := range out {
						out[i] = msg + "!"
					}
					return out
				},
				ParamNames: []string{"msg", "times"},
			},
		},
	})
	if err != nil {
		log.Fatalf("deploy+publish: %v", err)
	}

	// 3. The consumer peer: locate by name, invoke over HTTP.
	consumer := wspeer.NewPeer()
	consumerBinding, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
	if err != nil {
		log.Fatal(err)
	}
	defer consumerBinding.Close()
	if err := consumer.AttachBinding(consumerBinding); err != nil {
		log.Fatal(err)
	}

	info, err := consumer.Client().LocateOne(ctx, wspeer.NameQuery{Name: "Echo"})
	if err != nil {
		log.Fatalf("locate: %v", err)
	}
	fmt.Printf("located %q at %s (via %s)\n", info.Name, info.Endpoint, info.Locator)

	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		log.Fatal(err)
	}
	res, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "hello wspeer"))
	if err != nil {
		log.Fatalf("invoke: %v", err)
	}
	reply, err := res.String("return")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("echo returned:", reply)

	res, err = inv.Invoke(ctx, "shout", wspeer.P("msg", "soa"), wspeer.P("times", int64(3)))
	if err != nil {
		log.Fatal(err)
	}
	var shouts []string
	if err := res.Decode("return", &shouts); err != nil {
		log.Fatal(err)
	}
	fmt.Println("shout returned:", shouts)
}
