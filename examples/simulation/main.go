// Command simulation recreates the paper's NS2 scenario (§IV): "simulate
// large networks of peers publishing, discovering and invoking Web
// services in a distributed topology." The same P2PS protocol code that
// runs over TCP runs here over the discrete-event simulator with virtual
// time, so a thousand-peer overlay builds, publishes and resolves queries
// in milliseconds of wall-clock — deterministically for a given seed.
//
// Run it with:
//
//	go run ./examples/simulation [-peers 1000] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"wspeer/internal/experiments"
	"wspeer/internal/p2ps"
)

func main() {
	peers := flag.Int("peers", 1000, "number of provider peers")
	seed := flag.Int64("seed", 42, "simulation seed")
	queries := flag.Int("queries", 200, "queries to run")
	flag.Parse()

	fmt.Printf("building a %d-peer overlay (seed %d)...\n", *peers, *seed)
	start := time.Now()
	overlay, err := experiments.BuildOverlay(experiments.OverlayConfig{
		Seed:       *seed,
		Providers:  *peers,
		Rendezvous: *peers / 32,
		Mode:       experiments.ModeMesh,
		Homes:      2,
	})
	if err != nil {
		log.Fatal(err)
	}
	built := time.Since(start)
	stats := overlay.Sim.Stats()
	fmt.Printf("built in %s wall-clock; virtual time %s; %d messages to attach and publish\n",
		built.Round(time.Millisecond), overlay.Sim.Now().Round(time.Millisecond), stats.Sent)

	// Every provider published one service; run a query workload.
	fmt.Printf("\nrunning %d discovery queries...\n", *queries)
	start = time.Now()
	ok, hops := overlay.RunQueries(*queries, nil)
	fmt.Printf("success %d/%d, mean hops %.2f, wall-clock %s\n",
		ok, *queries, hops, time.Since(start).Round(time.Millisecond))
	hottestName, hottestLoad := overlay.Sim.Hottest()
	fmt.Printf("hottest node: %s with %d messages\n", hottestName, hottestLoad)

	// A named lookup straight through the protocol API.
	target := experiments.ServiceName(*peers / 2)
	d := overlay.Providers[0].Discover(p2ps.Query{Name: target}, 2*time.Second)
	overlay.Sim.Run(0)
	if len(d.Matches()) == 0 {
		log.Fatalf("lookup of %s failed", target)
	}
	fmt.Printf("\nlookup %q: advert %s owned by peer %s\n",
		target, d.Matches()[0].ID, d.Matches()[0].Peer)

	// Kill a third of the network and watch discovery degrade gracefully.
	fmt.Println("\nkilling 33% of all nodes (providers and rendezvous alike)...")
	rows, err := experiments.RunChurn(*seed, *peers/4, []float64{0.33}, *queries/2, 1)
	if err != nil {
		log.Fatal(err)
	}
	experiments.ChurnTable(rows).Print(os.Stdout)
}
