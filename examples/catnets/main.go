// Command catnets recreates the Catnets evaluation scenario (paper §V):
// "economy driven services interact[ing] in a decentralised topology". A
// set of resource-provider peers publish ComputeMarket services into a
// P2PS overlay, each advertising a price. Buyer peers discover the
// providers through in-network queries — no registry anywhere — request
// quotes, buy from the cheapest seller, and capacity is consumed until the
// market dries up.
//
// Run it with:
//
//	go run ./examples/catnets
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"wspeer"
	"wspeer/internal/p2ps"
)

// Market is a provider's stateful order book.
type Market struct {
	mu       sync.Mutex
	name     string
	price    float64
	capacity int64
	sold     int64
}

// Quote is a provider's current offer.
type Quote struct {
	Provider  string
	PriceCPU  float64
	Available int64
}

// Trade records a completed purchase.
type Trade struct {
	Provider string
	Units    int64
	Cost     float64
}

func main() {
	ctx := context.Background()

	// A decentralised overlay: one rendezvous, N providers, one buyer.
	overlay := p2ps.NewLocalNetwork()
	rdv, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Rendezvous: true})
	if err != nil {
		log.Fatal(err)
	}
	defer rdv.Close()

	providers := []struct {
		name     string
		price    float64
		capacity int64
	}{
		{"cardiff-cluster", 0.90, 40},
		{"lsu-testbed", 0.60, 25},
		{"bargain-basement", 0.35, 10},
	}
	for _, pv := range providers {
		if err := hostProvider(ctx, overlay, rdv.Addr(), pv.name, pv.price, pv.capacity); err != nil {
			log.Fatalf("hosting %s: %v", pv.name, err)
		}
		fmt.Printf("provider %-17s price %.2f  capacity %d\n", pv.name, pv.price, pv.capacity)
	}

	// The buyer joins the overlay and shops for 60 units.
	buyerNode, err := wspeer.NewP2PSPeer(wspeer.P2PSConfig{
		Transport: overlay.NewEndpoint(), Seeds: []string{rdv.Addr()},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer buyerNode.Close()
	buyer := wspeer.NewPeer()
	buyerBinding, err := wspeer.NewP2PSBinding(wspeer.P2PSOptions{
		Peer: buyerNode, DiscoveryTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	buyerBinding.Attach(buyer)

	var markets []*wspeer.Invocation
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && len(markets) < len(providers) {
		infos, _ := buyer.Client().Locate(ctx, wspeer.NameQuery{
			Name:  "ComputeMarket*",
			Attrs: map[string]string{"kind": "compute-market"},
		})
		markets = markets[:0]
		for _, info := range infos {
			inv, err := buyer.Client().NewInvocation(info)
			if err == nil {
				markets = append(markets, inv)
			}
		}
	}
	fmt.Printf("\nbuyer discovered %d markets via in-network query\n", len(markets))
	if len(markets) == 0 {
		log.Fatal("no markets found")
	}

	want := int64(60)
	var trades []Trade
	total := 0.0
	for want > 0 {
		// Gather quotes from every discovered market.
		var quotes []Quote
		for _, m := range markets {
			res, err := m.Invoke(ctx, "quote")
			if err != nil {
				continue // provider gone: the economy shrugs
			}
			var q Quote
			if err := res.Decode("return", &q); err == nil && q.Available > 0 {
				quotes = append(quotes, q)
			}
		}
		if len(quotes) == 0 {
			fmt.Println("market exhausted with demand remaining:", want)
			break
		}
		sort.Slice(quotes, func(i, j int) bool { return quotes[i].PriceCPU < quotes[j].PriceCPU })
		best := quotes[0]
		units := want
		if units > best.Available {
			units = best.Available
		}
		// Buy from the cheapest provider.
		var trade Trade
		for _, m := range markets {
			res, err := m.Invoke(ctx, "buy", wspeer.P("provider", best.Provider), wspeer.P("units", units))
			if err != nil {
				continue
			}
			if err := res.Decode("return", &trade); err == nil && trade.Units > 0 {
				break
			}
		}
		if trade.Units == 0 {
			fmt.Printf("purchase from %s failed; retrying\n", best.Provider)
			continue
		}
		want -= trade.Units
		total += trade.Cost
		trades = append(trades, trade)
		fmt.Printf("bought %2d units from %-17s for %6.2f (remaining demand %d)\n",
			trade.Units, trade.Provider, trade.Cost, want)
	}

	fmt.Printf("\n%d trades, total spend %.2f\n", len(trades), total)
}

// hostProvider stands up one provider peer with a ComputeMarket service.
func hostProvider(ctx context.Context, overlay *p2ps.LocalNetwork, seed, name string, price float64, capacity int64) error {
	node, err := wspeer.NewP2PSPeer(wspeer.P2PSConfig{
		Transport: overlay.NewEndpoint(), Seeds: []string{seed},
	})
	if err != nil {
		return err
	}
	peer := wspeer.NewPeer()
	binding, err := wspeer.NewP2PSBinding(wspeer.P2PSOptions{Peer: node})
	if err != nil {
		return err
	}
	binding.Attach(peer)

	m := &Market{name: name, price: price, capacity: capacity}
	def := wspeer.ServiceDef{
		Name: "ComputeMarket-" + name,
		Operations: []wspeer.OperationDef{
			{
				Name: "quote",
				Func: m.Quote,
				Doc:  "current price and availability",
			},
			{
				Name:       "buy",
				Func:       m.Buy,
				ParamNames: []string{"provider", "units"},
				Doc:        "purchase units if addressed to this provider",
			},
		},
	}
	// Tag the advert with the economic attributes buyers filter on
	// (P2PS attribute-based search), then deploy and publish.
	binding.SetAdvertAttrs(def.Name, map[string]string{
		"kind":  "compute-market",
		"owner": name,
	})
	dep, err := peer.Server().Deploy(def)
	if err != nil {
		return err
	}
	return peer.Server().Publish(ctx, dep)
}

// Quote returns the market's current offer.
func (m *Market) Quote() Quote {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Quote{Provider: m.name, PriceCPU: m.price, Available: m.capacity - m.sold}
}

// Buy purchases units if the request is addressed to this provider.
func (m *Market) Buy(provider string, units int64) Trade {
	m.mu.Lock()
	defer m.mu.Unlock()
	if provider != m.name {
		return Trade{}
	}
	avail := m.capacity - m.sold
	if units > avail {
		units = avail
	}
	if units <= 0 {
		return Trade{}
	}
	m.sold += units
	return Trade{Provider: m.name, Units: units, Cost: float64(units) * m.price}
}
