// Command cactusmon recreates the Supercomputing 2004 Grid scenario (paper
// §V): an application launches a long-running simulation, then uses
// WSPeer's dynamic deployment to stand up a Web service *at run time* that
// receives the simulation's output frames as they are produced, passing
// them back to the monitoring application "in real-time as the simulation
// iterated through its time steps".
//
// The Cactus solver (a proprietary toolkit run on remote resources in the
// paper) is substituted by an in-process explicit finite-difference solver
// for the 1-D wave equation — the same class of hyperbolic PDE the
// original demo visualized — which posts a rendered frame to the
// dynamically deployed service after every few time steps.
//
// Run it with:
//
//	go run ./examples/cactusmon
package main

import (
	"context"
	"fmt"
	"log"
	"math"
	"strings"
	"sync"

	"wspeer"
)

// FrameSink is the stateful object exposed as the monitoring service: the
// simulation invokes postFrame on it; the application owns and reads it
// directly (paper §III point 3: the service is an interface to an object
// the application already holds).
type FrameSink struct {
	mu     sync.Mutex
	frames []Frame
	done   chan struct{}
	expect int
}

// Frame is one rendered simulation snapshot.
type Frame struct {
	Step   int64
	Time   float64
	Render string
	Energy float64
}

// NewFrameSink expects n frames before Done fires.
func NewFrameSink(n int) *FrameSink {
	return &FrameSink{done: make(chan struct{}), expect: n}
}

// Post receives a frame from the simulation.
func (s *FrameSink) Post(f Frame) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frames = append(s.frames, f)
	if len(s.frames) == s.expect {
		close(s.done)
	}
	return int64(len(s.frames))
}

// Frames returns the frames received so far.
func (s *FrameSink) Frames() []Frame {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Frame(nil), s.frames...)
}

func main() {
	ctx := context.Background()
	const frames = 8

	// The monitoring application: deploy the sink service dynamically.
	app := wspeer.NewPeer()
	binding, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer binding.Close()
	binding.Attach(app)

	sink := NewFrameSink(frames)
	def := wspeer.ServiceDef{
		Name: "CactusMonitor",
		Operations: []wspeer.OperationDef{{
			Name:       "postFrame",
			Func:       sink.Post,
			ParamNames: []string{"frame"},
			Doc:        "receives one rendered simulation frame",
		}},
	}
	dep, err := app.Server().Deploy(def)
	if err != nil {
		log.Fatalf("dynamic deployment: %v", err)
	}
	fmt.Println("monitor service deployed at", dep.Endpoint)

	// The "remote resource": a peer that knows only the service endpoint
	// and WSDL, exactly what the Triana unit handed to Cactus.
	simPeer := wspeer.NewPeer()
	simBinding, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer simBinding.Close()
	simBinding.Attach(simPeer)
	info := &wspeer.ServiceInfo{Name: "CactusMonitor", Endpoint: dep.Endpoint, Definitions: dep.Definitions}
	inv, err := simPeer.Client().NewInvocation(info)
	if err != nil {
		log.Fatal(err)
	}

	// Run the solver; it posts a frame back through the Web service after
	// every output interval.
	go runWaveSimulation(ctx, inv, frames)

	<-sink.Done()
	fmt.Printf("\nreceived all %d frames through the dynamically deployed service:\n\n", frames)
	for _, f := range sink.Frames() {
		fmt.Printf("step %4d  t=%5.2f  E=%6.3f  |%s|\n", f.Step, f.Time, f.Energy, f.Render)
	}
}

// Done is closed when all expected frames have arrived.
func (s *FrameSink) Done() <-chan struct{} { return s.done }

// runWaveSimulation solves u_tt = c^2 u_xx with fixed ends using explicit
// finite differences, posting a rendered frame every stepsPerFrame steps.
func runWaveSimulation(ctx context.Context, inv *wspeer.Invocation, frames int) {
	const (
		nx            = 64
		c             = 1.0
		dx            = 1.0 / nx
		dt            = 0.5 * dx / c // CFL-stable
		stepsPerFrame = 16
	)
	prev := make([]float64, nx)
	cur := make([]float64, nx)
	next := make([]float64, nx)
	// Initial condition: a centered Gaussian pulse at rest.
	for i := range cur {
		x := float64(i) * dx
		cur[i] = math.Exp(-200 * (x - 0.5) * (x - 0.5))
		prev[i] = cur[i]
	}
	r2 := (c * dt / dx) * (c * dt / dx)
	step := 0
	for f := 0; f < frames; f++ {
		for s := 0; s < stepsPerFrame; s++ {
			for i := 1; i < nx-1; i++ {
				next[i] = 2*cur[i] - prev[i] + r2*(cur[i+1]-2*cur[i]+cur[i-1])
			}
			prev, cur, next = cur, next, prev
			step++
		}
		frame := Frame{
			Step:   int64(step),
			Time:   float64(step) * dt,
			Render: renderWave(cur),
			Energy: waveEnergy(cur, prev, dx, dt),
		}
		res, err := inv.Invoke(ctx, "postFrame", wspeer.P("frame", frame))
		if err != nil {
			log.Fatalf("posting frame: %v", err)
		}
		var n int64
		if err := res.Decode("return", &n); err != nil {
			log.Fatalf("decoding ack: %v", err)
		}
		fmt.Printf("simulation: posted frame %d (monitor has %d)\n", f+1, n)
	}
}

// renderWave draws the field as ASCII, standing in for the JPEGs the
// original demo streamed.
func renderWave(u []float64) string {
	glyphs := []rune(" .:-=+*#%@")
	var b strings.Builder
	for _, v := range u {
		level := int(math.Abs(v) * float64(len(glyphs)-1))
		if level >= len(glyphs) {
			level = len(glyphs) - 1
		}
		b.WriteRune(glyphs[level])
	}
	return b.String()
}

func waveEnergy(cur, prev []float64, dx, dt float64) float64 {
	e := 0.0
	for i := 1; i < len(cur)-1; i++ {
		ut := (cur[i] - prev[i]) / dt
		ux := (cur[i+1] - cur[i-1]) / (2 * dx)
		e += 0.5 * (ut*ut + ux*ux) * dx
	}
	return e
}
