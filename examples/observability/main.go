// Command observability exercises the diagnostics egress (DESIGN.md
// §16) end to end: it hosts a peer over real HTTP, drives mixed traffic
// through it — fast calls, deliberate stragglers, injected faults — and
// then walks the places the evidence landed: the Prometheus exposition,
// the flight recorder, the structured log ring and the Chrome trace
// dump, all joined by one trace ID per call.
//
// Run it with:
//
//	go run ./examples/observability
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"
	"time"

	"wspeer"
	"wspeer/internal/engine"
	"wspeer/internal/httpd"
)

func main() {
	ctx := context.Background()

	// Diagnostics on: buffer spans for the trace endpoint, log at info
	// to stdout. Neither is required — the flight recorder and metrics
	// are always on — but both enrich what follows.
	wspeer.EnableTracing(2048)
	wspeer.Telemetry().Log.SetLevel(wspeer.LogInfo)
	wspeer.Telemetry().Log.SetOutput(os.Stdout)

	// One self-contained setup: a registry node plus a peer that is both
	// provider and consumer, services on a real HTTP listener.
	registryHost := httpd.New(engine.New(), httpd.Options{})
	defer registryHost.Close()
	registryURL, err := registryHost.Deploy(wspeer.UDDIServiceDef(wspeer.NewUDDIRegistry()))
	if err != nil {
		log.Fatal(err)
	}
	peer := wspeer.NewPeer()
	binding, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
	if err != nil {
		log.Fatal(err)
	}
	defer binding.Close()
	if err := peer.AttachBinding(binding); err != nil {
		log.Fatal(err)
	}

	dep, err := peer.Server().DeployAndPublish(ctx, wspeer.ServiceDef{
		Name: "Weather",
		Operations: []wspeer.OperationDef{
			{Name: "forecast", ParamNames: []string{"city"},
				Func: func(city string) string { return "sunny in " + city }},
			{Name: "slowForecast", ParamNames: []string{"city"},
				Func: func(city string) string {
					time.Sleep(40 * time.Millisecond) // a straggler the tail sampler must keep
					return "eventually sunny in " + city
				}},
			{Name: "brokenForecast", ParamNames: []string{"city"},
				Func: func(city string) (string, error) {
					return "", errors.New("radar offline") // a fault the recorder must keep
				}},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	base := strings.TrimSuffix(dep.Endpoint, "/services/Weather")
	fmt.Println("peer serving at", base)

	info, err := peer.Client().LocateOne(ctx, wspeer.NameQuery{Name: "Weather"})
	if err != nil {
		log.Fatal(err)
	}
	inv, err := peer.Client().NewInvocation(info)
	if err != nil {
		log.Fatal(err)
	}

	// Mixed traffic: mostly fast successes (sampled one-in-16), a few
	// stragglers (kept as "slow") and a few faults (always kept).
	fmt.Println("\n--- driving traffic: 400 fast, 6 slow, 4 faulted ---")
	for i := 0; i < 400; i++ {
		if _, err := inv.Invoke(ctx, "forecast", wspeer.P("city", "Cardiff")); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if _, err := inv.Invoke(ctx, "slowForecast", wspeer.P("city", "Bergen")); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := inv.Invoke(ctx, "brokenForecast", wspeer.P("city", "Atlantis")); err == nil {
			log.Fatal("brokenForecast should fault")
		}
	}

	// 1. Prometheus: every counter, gauge, histogram and the call table,
	//    scrapeable as-is.
	fmt.Println("\n--- GET", base+wspeer.MetricsPath, "(excerpt) ---")
	for _, line := range strings.Split(fetch(base+wspeer.MetricsPath), "\n") {
		if strings.HasPrefix(line, "wspeer_calls_total") ||
			strings.HasPrefix(line, "wspeer_call_failures_total") ||
			strings.HasPrefix(line, "wspeer_flight_") {
			fmt.Println(line)
		}
	}

	// 2. The flight recorder: ask the peer what went wrong lately.
	fmt.Println("\n--- GET", base+wspeer.FlightPath+"?errors=1&limit=2 ---")
	fmt.Println(fetch(base + wspeer.FlightPath + "?errors=1&limit=2"))

	// The same data is queryable in-process, which is how the pieces
	// join: a failed call's flight record, the warn log line the engine
	// emitted, and the exported spans all share one trace ID.
	failures := wspeer.Telemetry().Flight.Query(wspeer.FlightFilter{ErrorsOnly: true, Limit: 1})
	if len(failures) == 1 {
		f := failures[0]
		fmt.Printf("--- correlating trace %016x ---\n", f.TraceID)
		fmt.Printf("flight record: service=%s dir=%s class=%s err=%q retries=%d\n",
			f.Service, f.Dir, f.ErrClass, f.Err, f.Retries)
		for _, e := range wspeer.Telemetry().Log.Recent(0) {
			if e.TraceID == f.TraceID {
				fmt.Println("log line:     ", e.Format())
			}
		}
		var spans int
		for _, s := range wspeer.Telemetry().TraceRing().Spans() {
			if s.TraceID == f.TraceID {
				spans++
			}
		}
		fmt.Printf("exported spans in that trace: %d (client invoke + server dispatch)\n", spans)
	}

	// 3. Slow calls: the tail sampler kept the stragglers without being
	//    told what "slow" means — the threshold tracks the rolling p99.
	slow := wspeer.Telemetry().Flight.Query(wspeer.FlightFilter{MinLatency: 20 * time.Millisecond})
	fmt.Printf("\nstragglers retained: %d (threshold %s)\n",
		len(slow), wspeer.Telemetry().Flight.Stats().SlowThreshold)

	// 4. The Chrome trace: load this file in https://ui.perfetto.dev.
	traceJSON := fetch(base + wspeer.TracePath)
	out := "wspeer-trace.json"
	if err := os.WriteFile(out, []byte(traceJSON), 0o644); err != nil {
		log.Fatal(err)
	}
	defer os.Remove(out)
	fmt.Printf("\nwrote %s (%d bytes) — load it in https://ui.perfetto.dev or chrome://tracing\n",
		out, len(traceJSON))

	// 5. Health: ready now, 503 once draining.
	fmt.Println("\n--- GET", base+wspeer.HealthPath, "---")
	fmt.Println(fetch(base + wspeer.HealthPath))
}

func fetch(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	return strings.TrimRight(string(body), "\n")
}
