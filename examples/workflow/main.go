// Command workflow recreates the Triana scenario (paper §V): services are
// discovered through a registry, appear as "tools" in a toolbox, and are
// wired together into a Web-service workflow whose stages feed each other.
//
// Three independent text-processing services are hosted by three provider
// peers; the workflow engine locates them by wildcard, builds a pipeline
// (tokenize → stem → count) and pushes a document through it.
//
// Run it with:
//
//	go run ./examples/workflow
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strings"

	"wspeer"
	"wspeer/internal/engine"
	"wspeer/internal/httpd"
)

// toolbox maps discovered service names to ready invocations, the way
// located services "appear as standard tools within a Triana toolbox".
type toolbox map[string]*wspeer.Invocation

func main() {
	ctx := context.Background()

	registryHost := httpd.New(engine.New(), httpd.Options{})
	defer registryHost.Close()
	registryURL, err := registryHost.Deploy(wspeer.UDDIServiceDef(wspeer.NewUDDIRegistry()))
	if err != nil {
		log.Fatal(err)
	}

	// Three provider peers, each hosting one stage.
	for _, svc := range []wspeer.ServiceDef{tokenizeService(), stemService(), countService()} {
		provider := wspeer.NewPeer()
		b, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
		if err != nil {
			log.Fatal(err)
		}
		defer b.Close()
		b.Attach(provider)
		if _, err := provider.Server().DeployAndPublish(ctx, svc); err != nil {
			log.Fatalf("hosting %s: %v", svc.Name, err)
		}
		fmt.Println("hosted stage:", svc.Name)
	}

	// The workflow peer: discover every Text* tool.
	wf := wspeer.NewPeer()
	wfBinding, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
	if err != nil {
		log.Fatal(err)
	}
	defer wfBinding.Close()
	wfBinding.Attach(wf)

	infos, err := wf.Client().Locate(ctx, wspeer.NameQuery{Name: "Text*"})
	if err != nil {
		log.Fatalf("discovery: %v", err)
	}
	tools := toolbox{}
	for _, info := range infos {
		inv, err := wf.Client().NewInvocation(info)
		if err != nil {
			log.Fatal(err)
		}
		tools[info.Name] = inv
		fmt.Printf("toolbox: %s (%s)\n", info.Name, info.Endpoint)
	}
	for _, need := range []string{"TextTokenizer", "TextStemmer", "TextCounter"} {
		if tools[need] == nil {
			log.Fatalf("stage %s not discovered", need)
		}
	}

	// Wire the stages into a workflow: each stage's output becomes the
	// next one's input, exactly like dragging tools onto the Triana
	// scratchpad and connecting them.
	document := `Services services everywhere: a service oriented architecture
	serves services to service consumers, and consuming a served service is
	itself a service.`
	fmt.Println("\nrunning workflow: tokenize -> stem -> count")

	pipe := wspeer.NewWorkflow("textpipe")
	pipe.OnStep(func(e wspeer.WorkflowStepEvent) {
		status := "ok"
		if e.Err != nil {
			status = e.Err.Error()
		}
		fmt.Printf("  step %-10s %s\n", e.Step, status)
	})
	must(pipe.AddStep(wspeer.WorkflowStep{
		Name: "tokenize", Invocation: tools["TextTokenizer"], Operation: "tokenize",
		Inputs: map[string]wspeer.WorkflowSource{"text": wspeer.ConstInput(document)},
	}))
	must(pipe.AddStep(wspeer.WorkflowStep{
		Name: "stem", Invocation: tools["TextStemmer"], Operation: "stem",
		Inputs: map[string]wspeer.WorkflowSource{
			"words": wspeer.StepOutput("tokenize", "return", []string(nil)),
		},
	}))
	must(pipe.AddStep(wspeer.WorkflowStep{
		Name: "count", Invocation: tools["TextCounter"], Operation: "count",
		Inputs: map[string]wspeer.WorkflowSource{
			"words": wspeer.StepOutput("stem", "return", []string(nil)),
			"top":   wspeer.ConstInput(int64(5)),
		},
	}))

	results, err := pipe.Run(ctx)
	if err != nil {
		log.Fatalf("workflow: %v", err)
	}
	var tokens []string
	results.Decode("tokenize", "return", &tokens)
	fmt.Printf("\n  tokenize produced %d tokens\n", len(tokens))
	var counts []WordCount
	if err := results.Decode("count", "return", &counts); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  top words:")
	for _, wc := range counts {
		fmt.Printf("    %-10s %d\n", wc.Word, wc.N)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}

// WordCount is a (word, frequency) pair returned by the counter stage.
type WordCount struct {
	Word string
	N    int64
}

func tokenizeService() wspeer.ServiceDef {
	return wspeer.ServiceDef{
		Name: "TextTokenizer",
		Operations: []wspeer.OperationDef{{
			Name:       "tokenize",
			ParamNames: []string{"text"},
			Doc:        "splits text into lowercase word tokens",
			Func: func(text string) []string {
				var out []string
				for _, w := range strings.FieldsFunc(text, func(r rune) bool {
					return !(r >= 'a' && r <= 'z') && !(r >= 'A' && r <= 'Z')
				}) {
					out = append(out, strings.ToLower(w))
				}
				return out
			},
		}},
	}
}

func stemService() wspeer.ServiceDef {
	suffixes := []string{"ing", "ers", "er", "ed", "es", "s"}
	return wspeer.ServiceDef{
		Name: "TextStemmer",
		Operations: []wspeer.OperationDef{{
			Name:       "stem",
			ParamNames: []string{"words"},
			Doc:        "applies a toy suffix-stripping stemmer",
			Func: func(words []string) []string {
				out := make([]string, len(words))
				for i, w := range words {
					for _, suf := range suffixes {
						if len(w) > len(suf)+2 && strings.HasSuffix(w, suf) {
							w = strings.TrimSuffix(w, suf)
							break
						}
					}
					out[i] = w
				}
				return out
			},
		}},
	}
}

func countService() wspeer.ServiceDef {
	return wspeer.ServiceDef{
		Name: "TextCounter",
		Operations: []wspeer.OperationDef{{
			Name:       "count",
			ParamNames: []string{"words", "top"},
			Doc:        "returns the top-N most frequent words",
			Func: func(words []string, top int64) []WordCount {
				freq := map[string]int64{}
				for _, w := range words {
					freq[w]++
				}
				out := make([]WordCount, 0, len(freq))
				for w, n := range freq {
					out = append(out, WordCount{Word: w, N: n})
				}
				sort.Slice(out, func(i, j int) bool {
					if out[i].N != out[j].N {
						return out[i].N > out[j].N
					}
					return out[i].Word < out[j].Word
				})
				if int64(len(out)) > top {
					out = out[:top]
				}
				return out
			},
		}},
	}
}
