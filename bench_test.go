package wspeer_test

// One benchmark per experiment in DESIGN.md's index (E1-E10). The printed
// tables come from cmd/benchharness; these testing.B benchmarks expose the
// same workloads to `go test -bench`.

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"wspeer"
	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/experiments"
	"wspeer/internal/flow"
	"wspeer/internal/httpd"
	"wspeer/internal/p2ps"
	"wspeer/internal/pipeline"
	"wspeer/internal/query"
	"wspeer/internal/soap"
	"wspeer/internal/transport"
	"wspeer/internal/wsdl"
	"wspeer/internal/xmlutil"
)

func benchEchoDef(name string) wspeer.ServiceDef {
	return wspeer.ServiceDef{
		Name: name,
		Operations: []wspeer.OperationDef{{
			Name:       "echo",
			Func:       func(s string) string { return s },
			ParamNames: []string{"msg"},
		}},
	}
}

// BenchmarkEventPropagation (E1): cost of one event through the interface
// tree to a registered listener.
func BenchmarkEventPropagation(b *testing.B) {
	peer := wspeer.NewPeer()
	var sink int
	peer.AddListener(wspeer.ListenerFuncs{Server: func(e wspeer.ServerMessageEvent) { sink++ }})
	req := &transport.Request{Body: []byte("x")}
	resp := &transport.Response{Body: []byte("y")}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peer.FireServerMessage("Svc", req, resp)
	}
	if sink != b.N {
		b.Fatalf("delivered %d of %d", sink, b.N)
	}
}

// BenchmarkHTTPLifecycle (E2): the full Fig. 3 cycle — deploy, publish,
// locate, invoke, undeploy — over real HTTP and a live registry.
func BenchmarkHTTPLifecycle(b *testing.B) {
	registryHost := httpd.New(engine.New(), httpd.Options{})
	defer registryHost.Close()
	registryURL, err := registryHost.Deploy(wspeer.UDDIServiceDef(wspeer.NewUDDIRegistry()))
	if err != nil {
		b.Fatal(err)
	}
	peer := wspeer.NewPeer()
	binding, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
	if err != nil {
		b.Fatal(err)
	}
	defer binding.Close()
	binding.Attach(peer)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("Echo%d", i)
		if _, err := peer.Server().DeployAndPublish(ctx, benchEchoDef(name)); err != nil {
			b.Fatal(err)
		}
		info, err := peer.Client().LocateOne(ctx, wspeer.NameQuery{Name: name})
		if err != nil {
			b.Fatal(err)
		}
		inv, err := peer.Client().NewInvocation(info)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "x")); err != nil {
			b.Fatal(err)
		}
		if err := peer.Server().Undeploy(ctx, name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHTTPInvoke (E2): steady-state invocation over real HTTP.
func BenchmarkHTTPInvoke(b *testing.B) {
	peer := wspeer.NewPeer()
	binding, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer binding.Close()
	binding.Attach(peer)
	dep, err := peer.Server().Deploy(benchEchoDef("Echo"))
	if err != nil {
		b.Fatal(err)
	}
	inv, err := peer.Client().NewInvocation(&wspeer.ServiceInfo{
		Name: "Echo", Endpoint: dep.Endpoint, Definitions: dep.Definitions,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "x")); err != nil {
			b.Fatal(err)
		}
	}
}

// p2psBenchRig builds a provider+consumer pair on an in-process overlay.
func p2psBenchRig(b *testing.B) (provider, consumer *wspeer.Peer, cleanup func()) {
	b.Helper()
	overlay := p2ps.NewLocalNetwork()
	rdv, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Rendezvous: true})
	if err != nil {
		b.Fatal(err)
	}
	var closers []func()
	closers = append(closers, func() { rdv.Close() })
	mk := func() *wspeer.Peer {
		node, err := p2ps.NewPeer(p2ps.Config{Transport: overlay.NewEndpoint(), Seeds: []string{rdv.Addr()}})
		if err != nil {
			b.Fatal(err)
		}
		closers = append(closers, func() { node.Close() })
		bind, err := wspeer.NewP2PSBinding(wspeer.P2PSOptions{Peer: node, DiscoveryTimeout: 100 * time.Millisecond})
		if err != nil {
			b.Fatal(err)
		}
		p := wspeer.NewPeer()
		bind.Attach(p)
		return p
	}
	provider, consumer = mk(), mk()
	return provider, consumer, func() {
		for _, c := range closers {
			c()
		}
	}
}

func locateP2PS(b *testing.B, consumer *wspeer.Peer, name string) *wspeer.ServiceInfo {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info, err := consumer.Client().LocateOne(context.Background(), wspeer.NameQuery{Name: name})
		if err == nil {
			return info
		}
	}
	b.Fatalf("service %q never became locatable", name)
	return nil
}

// BenchmarkP2PSLifecycle (E3): deploy+publish+undeploy over the P2PS
// binding (locate is excluded here — its latency is the discovery timeout
// by construction; see BenchmarkP2PSInvoke for the data path).
func BenchmarkP2PSLifecycle(b *testing.B) {
	provider, _, cleanup := p2psBenchRig(b)
	defer cleanup()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := fmt.Sprintf("Echo%d", i)
		if _, err := provider.Server().DeployAndPublish(ctx, benchEchoDef(name)); err != nil {
			b.Fatal(err)
		}
		if err := provider.Server().Undeploy(ctx, name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkP2PSInvoke (E3/E4): steady-state request/response over
// unidirectional pipes with WS-Addressing correlation.
func BenchmarkP2PSInvoke(b *testing.B) {
	provider, consumer, cleanup := p2psBenchRig(b)
	defer cleanup()
	ctx := context.Background()
	if _, err := provider.Server().DeployAndPublish(ctx, benchEchoDef("Echo")); err != nil {
		b.Fatal(err)
	}
	info := locateP2PS(b, consumer, "Echo")
	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "x")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeRequestResponse (E4): the figures 5/6 micro-steps —
// advert→EPR serialization and envelope construction are covered by
// BenchmarkStubGeneration-style loops inside the harness; here the whole
// correlated round trip is the unit.
func BenchmarkPipeRequestResponse(b *testing.B) {
	BenchmarkP2PSInvoke(b)
}

// BenchmarkDiscoveryScaling (E5): one in-network query on a 128-peer
// simulated overlay (rendezvous mesh with replicated adverts).
func BenchmarkDiscoveryScaling(b *testing.B) {
	o, err := experiments.BuildOverlay(experiments.OverlayConfig{
		Seed: 42, Providers: 128, Rendezvous: 8, Mode: experiments.ModeMesh,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := o.RunQueries(1, nil); ok != 1 {
			b.Fatal("query failed")
		}
	}
}

// BenchmarkChurnResilience (E6): a full small churn round: build a 32-peer
// overlay, kill a quarter of it, measure 8 queries.
func BenchmarkChurnResilience(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunChurn(int64(i), 32, []float64{0.25}, 8, 1)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 3 {
			b.Fatal("unexpected rows")
		}
	}
}

// BenchmarkSyncVsAsync (E7): both invocation modes against 16 simulated
// slow services.
func BenchmarkSyncVsAsync(b *testing.B) {
	b.Run("sequential-sync", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := experiments.RunSyncVsAsync(int64(i), 16, 500*time.Microsecond)
			if err != nil {
				b.Fatal(err)
			}
			_ = r
		}
	})
}

// BenchmarkStubGeneration (E8): dynamic request construction straight to
// bytes, over pre-parsed definitions.
func BenchmarkStubGeneration(b *testing.B) {
	e := engine.New()
	svc, err := e.Deploy(engine.ServiceDef{
		Name: "Echo",
		Operations: []engine.OperationDef{{
			Name: "echo", Func: func(s string) string { return s }, ParamNames: []string{"msg"},
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defs, err := svc.WSDL(wsdl.TransportHTTP, "http://h/Echo")
	if err != nil {
		b.Fatal(err)
	}
	stub := engine.NewStub(defs, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := stub.BuildRequest("echo", engine.P("msg", "hello")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicVsStatic (E8): the naive per-call WSDL reparse baseline,
// for comparison against BenchmarkStubGeneration.
func BenchmarkDynamicVsStatic(b *testing.B) {
	e := engine.New()
	svc, err := e.Deploy(engine.ServiceDef{
		Name: "Echo",
		Operations: []engine.OperationDef{{
			Name: "echo", Func: func(s string) string { return s }, ParamNames: []string{"msg"},
		}},
	})
	if err != nil {
		b.Fatal(err)
	}
	defs, err := svc.WSDL(wsdl.TransportHTTP, "http://h/Echo")
	if err != nil {
		b.Fatal(err)
	}
	raw, err := defs.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := wsdl.Parse(raw)
		if err != nil {
			b.Fatal(err)
		}
		stub := engine.NewStub(d, nil)
		if _, _, err := stub.BuildRequest("echo", engine.P("msg", "hello")); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLazyDeploy (E9): host creation + lazy listener launch + first
// deployment, per iteration.
func BenchmarkLazyDeploy(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h := httpd.New(engine.New(), httpd.Options{})
		if _, err := h.Deploy(engine.ServiceDef{
			Name: "Echo",
			Operations: []engine.OperationDef{{
				Name: "echo", Func: func(s string) string { return s },
			}},
		}); err != nil {
			b.Fatal(err)
		}
		h.Close()
	}
}

// BenchmarkStatefulService (E10): invocation of an operation bound to a
// live object, over the in-memory transport.
func BenchmarkStatefulService(b *testing.B) {
	type counter struct {
		mu sync.Mutex
		n  int64
	}
	c := &counter{}
	eng := engine.New()
	def := engine.ServiceDef{
		Name: "Counter",
		Operations: []engine.OperationDef{{
			Name: "inc",
			Func: func() int64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				c.n++
				return c.n
			},
		}},
	}
	svc, err := eng.Deploy(def)
	if err != nil {
		b.Fatal(err)
	}
	net := transport.NewInMemNetwork()
	net.Register("mem://h/Counter", eng.Handler("Counter"))
	defs, err := svc.WSDL("urn:mem", "mem://h/Counter")
	if err != nil {
		b.Fatal(err)
	}
	reg := transport.NewRegistry()
	reg.Register(net.Transport())
	stub := engine.NewStub(defs, reg)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stub.Invoke(ctx, "inc"); err != nil {
			b.Fatal(err)
		}
	}
	if c.n != int64(b.N) {
		b.Fatalf("state = %d, want %d", c.n, b.N)
	}
}

// BenchmarkEngineDispatch: the server-side hot path alone (parse +
// dispatch + encode), no transport.
func BenchmarkEngineDispatch(b *testing.B) {
	eng := engine.New()
	if _, err := eng.Deploy(engine.ServiceDef{
		Name: "Echo",
		Operations: []engine.OperationDef{{
			Name: "echo", Func: func(s string) string { return s }, ParamNames: []string{"msg"},
		}},
	}); err != nil {
		b.Fatal(err)
	}
	svc := eng.Service("Echo")
	defs, err := svc.WSDL(wsdl.TransportHTTP, "http://h/Echo")
	if err != nil {
		b.Fatal(err)
	}
	stub := engine.NewStub(defs, nil)
	req, _, err := stub.BuildRequest("echo", engine.P("msg", "hello"))
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := eng.ServeRequest(ctx, "Echo", req)
		if err != nil || resp.Faulted {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueuedListener: event delivery through the decoupling queue.
func BenchmarkQueuedListener(b *testing.B) {
	var sink int64
	var mu sync.Mutex
	inner := core.ListenerFuncs{Server: func(core.ServerMessageEvent) {
		mu.Lock()
		sink++
		mu.Unlock()
	}}
	q := core.NewQueuedListener(inner, 1024)
	defer q.Close()
	peer := core.NewPeer()
	peer.AddListener(q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		peer.FireServerMessage("S", nil, nil)
	}
}

// BenchmarkQueryCompile: compiling a representative rich query expression.
func BenchmarkQueryCompile(b *testing.B) {
	const src = `name like 'Echo*' and (attr(kind) = 'echo' or attr(price) < 0.5) and not attr(deprecated) = 'true'`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := query.Compile(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryEval: evaluating a compiled expression against a subject.
func BenchmarkQueryEval(b *testing.B) {
	e := query.MustCompile(`name like 'Echo*' and attr(kind) = 'echo' and attr(price) < 0.5`)
	s := &query.Subject{
		Name:  "EchoService",
		Attrs: map[string]string{"kind": "echo", "price": "0.25"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !e.Matches(s) {
			b.Fatal("no match")
		}
	}
}

// BenchmarkEnvelopeMarshal: envelope rendering alone through the pooled
// XML writer — the serialization leg of every invocation and dispatch.
func BenchmarkEnvelopeMarshal(b *testing.B) {
	env := soap.NewEnvelope()
	body := xmlutil.NewElement(xmlutil.N("urn:bench", "echo"))
	body.NewChild(xmlutil.N("urn:bench", "msg")).SetText("hello world")
	env.AddBodyElement(body)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if len(env.Marshal()) == 0 {
			b.Fatal("empty envelope")
		}
	}
}

// BenchmarkSOAP12RoundTrip: marshal+parse of a SOAP 1.2 envelope.
func BenchmarkSOAP12RoundTrip(b *testing.B) {
	env := soap.NewEnvelopeV(soap.SOAP12)
	body := xmlutil.NewElement(xmlutil.N("urn:bench", "op"))
	body.NewChild(xmlutil.N("urn:bench", "p")).SetText("value")
	env.AddBodyElement(body)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := soap.Parse(env.Marshal()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkflowRun: a three-stage linear workflow over the in-memory
// transport per iteration.
func BenchmarkWorkflowRun(b *testing.B) {
	peer := core.NewPeer()
	net := transport.NewInMemNetwork()
	reg := transport.NewRegistry()
	reg.Register(net.Transport())
	peer.Client().RegisterInvoker(benchMemInvoker{reg: reg})

	host := func(def engine.ServiceDef) *core.Invocation {
		eng := engine.New()
		svc, err := eng.Deploy(def)
		if err != nil {
			b.Fatal(err)
		}
		addr := "mem://h/" + def.Name
		net.Register(addr, eng.Handler(def.Name))
		defs, err := svc.WSDL(wsdl.TransportHTTP, addr)
		if err != nil {
			b.Fatal(err)
		}
		inv, err := peer.Client().NewInvocation(&core.ServiceInfo{Name: def.Name, Endpoint: addr, Definitions: defs})
		if err != nil {
			b.Fatal(err)
		}
		return inv
	}
	stage := func(name string) engine.ServiceDef {
		return engine.ServiceDef{
			Name: name,
			Operations: []engine.OperationDef{{
				Name: "next", Func: func(n int64) int64 { return n + 1 }, ParamNames: []string{"n"},
			}},
		}
	}
	a, bb, c := host(stage("A")), host(stage("B")), host(stage("C"))
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wf := flow.New("bench")
		wf.AddStep(flow.Step{Name: "a", Invocation: a, Operation: "next",
			Inputs: map[string]flow.Source{"n": flow.Const(int64(0))}})
		wf.AddStep(flow.Step{Name: "b", Invocation: bb, Operation: "next",
			Inputs: map[string]flow.Source{"n": flow.Output("a", "return", int64(0))}})
		wf.AddStep(flow.Step{Name: "c", Invocation: c, Operation: "next",
			Inputs: map[string]flow.Source{"n": flow.Output("b", "return", int64(0))}})
		res, err := wf.Run(ctx)
		if err != nil {
			b.Fatal(err)
		}
		var n int64
		if err := res.Decode("c", "return", &n); err != nil || n != 3 {
			b.Fatalf("n = %d, %v", n, err)
		}
	}
}

type benchMemInvoker struct{ reg *transport.Registry }

func (i benchMemInvoker) Schemes() []string { return []string{"mem"} }
func (i benchMemInvoker) Invoke(ctx context.Context, svc *core.ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	stub := engine.NewStub(svc.Definitions, i.reg)
	stub.EndpointOverride = svc.Endpoint
	return stub.Invoke(ctx, op, params...)
}

// BenchmarkPipelineOverhead: per-call cost of the unified call pipeline.
// "bare" is a direct in-memory transport call; "stack" pushes the same
// call through the full stock interceptor set (Events + CallStats +
// Deadline + Retry), so the delta is the pipeline's overhead.
func BenchmarkPipelineOverhead(b *testing.B) {
	net := transport.NewInMemNetwork()
	net.Register("mem://h/Echo", transport.HandlerFunc(func(ctx context.Context, req *transport.Request) (*transport.Response, error) {
		return &transport.Response{Body: req.Body}, nil
	}))
	tr := net.Transport()
	ctx := context.Background()
	body := []byte("<echo/>")
	terminal := func(c *pipeline.Call) error {
		resp, err := tr.Call(c.Ctx, c.Request)
		if err != nil {
			return err
		}
		c.Response = resp
		return nil
	}

	b.Run("bare", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			req := &transport.Request{Endpoint: "mem://h/Echo", Body: body}
			if _, err := tr.Call(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("stack", func(b *testing.B) {
		stats := pipeline.NewCallStats()
		chain := pipeline.NewChain(
			pipeline.Events(func(c *pipeline.Call) {}),
			stats.Interceptor(),
			pipeline.Deadline(time.Minute),
			pipeline.Retry(pipeline.RetryOptions{}),
		)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c := &pipeline.Call{
				Ctx:     ctx,
				Dir:     pipeline.ClientCall,
				Service: "Echo",
				Request: &transport.Request{Endpoint: "mem://h/Echo", Body: body},
			}
			if err := chain.Run(c, terminal); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		snap := stats.Snapshot()
		if len(snap) != 1 || snap[0].Calls != int64(b.N) || snap[0].Failures != 0 {
			b.Fatalf("stats snapshot: %+v", snap)
		}
		if snap[0].TotalLatency <= 0 || snap[0].Mean() <= 0 {
			b.Fatalf("no latency recorded: %+v", snap[0])
		}
	})
}

// ---------------------------------------------------------------------------
// Throughput benchmarks (E12): resolution cache and bounded scheduler.

// uddiBenchRig publishes one echo service in a live UDDI-over-HTTP
// registry and returns a peer whose locator discovers it.
func uddiBenchRig(b *testing.B) (*wspeer.Peer, func()) {
	b.Helper()
	registryHost := httpd.New(engine.New(), httpd.Options{})
	registryURL, err := registryHost.Deploy(wspeer.UDDIServiceDef(wspeer.NewUDDIRegistry()))
	if err != nil {
		registryHost.Close()
		b.Fatal(err)
	}
	peer := wspeer.NewPeer()
	binding, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{UDDIEndpoint: registryURL})
	if err != nil {
		registryHost.Close()
		b.Fatal(err)
	}
	binding.Attach(peer)
	if _, err := peer.Server().DeployAndPublish(context.Background(), benchEchoDef("Echo")); err != nil {
		binding.Close()
		registryHost.Close()
		b.Fatal(err)
	}
	return peer, func() {
		binding.Close()
		registryHost.Close()
	}
}

// BenchmarkLocateUncached (E12): every resolution is a live UDDI inquiry
// over HTTP — the cost LocateCached amortizes away.
func BenchmarkLocateUncached(b *testing.B) {
	peer, cleanup := uddiBenchRig(b)
	defer cleanup()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		infos, err := peer.Client().Locate(ctx, wspeer.NameQuery{Name: "Echo"})
		if err != nil || len(infos) == 0 {
			b.Fatalf("locate: %v %v", infos, err)
		}
	}
}

// BenchmarkLocateCached (E12): repeated resolution of the same query
// through the per-client resolution cache.
func BenchmarkLocateCached(b *testing.B) {
	peer, cleanup := uddiBenchRig(b)
	defer cleanup()
	ctx := context.Background()
	// Long TTL: this measures the steady-state hit, not refresh churn.
	peer.Client().ConfigureResolutionCache(wspeer.ResolutionCacheOptions{TTL: time.Hour})
	if _, err := peer.Client().LocateCached(ctx, wspeer.NameQuery{Name: "Echo"}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		infos, err := peer.Client().LocateCached(ctx, wspeer.NameQuery{Name: "Echo"})
		if err != nil || len(infos) == 0 {
			b.Fatalf("locate: %v %v", infos, err)
		}
	}
}

// invokeManyRig deploys one HTTP echo service and fans a burst of
// invocation targets at it. serviceTime > 0 adds simulated work per call
// — the latency-bound regime (a remote peer across a network) where a
// concurrent scatter pays off even on one CPU.
func invokeManyRig(b *testing.B, burst int, serviceTime time.Duration) (*wspeer.Peer, []*wspeer.ServiceInfo, func()) {
	b.Helper()
	peer := wspeer.NewPeer()
	binding, err := wspeer.NewHTTPBinding(wspeer.HTTPOptions{})
	if err != nil {
		b.Fatal(err)
	}
	binding.Attach(peer)
	def := benchEchoDef("Echo")
	if serviceTime > 0 {
		def.Operations[0].Func = func(s string) string {
			time.Sleep(serviceTime)
			return s
		}
	}
	dep, err := peer.Server().Deploy(def)
	if err != nil {
		binding.Close()
		b.Fatal(err)
	}
	svcs := make([]*wspeer.ServiceInfo, burst)
	for i := range svcs {
		svcs[i] = &wspeer.ServiceInfo{Name: "Echo", Endpoint: dep.Endpoint, Definitions: dep.Definitions}
	}
	return peer, svcs, func() { binding.Close() }
}

func benchInvokeSequential(b *testing.B, serviceTime time.Duration) {
	peer, svcs, cleanup := invokeManyRig(b, 100, serviceTime)
	defer cleanup()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, svc := range svcs {
			inv, err := peer.Client().NewInvocation(svc)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := inv.Invoke(ctx, "echo", wspeer.P("msg", "x")); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func benchInvokeMany(b *testing.B, serviceTime time.Duration) {
	peer, svcs, cleanup := invokeManyRig(b, 100, serviceTime)
	defer cleanup()
	peer.Client().ConfigureScheduler(wspeer.SchedulerOptions{MaxConcurrent: 32, MaxQueue: 256})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := peer.Client().InvokeMany(ctx, svcs, "echo", []wspeer.Param{wspeer.P("msg", "x")})
		for _, r := range out {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}

// BenchmarkInvokeSequential100 (E12): the baseline a scatter is judged
// against — 100 loopback calls, one at a time, one goroutine.
func BenchmarkInvokeSequential100(b *testing.B) { benchInvokeSequential(b, 0) }

// BenchmarkInvokeMany100 (E12): the same 100 loopback calls as one
// scatter-gather burst on the bounded scheduler. Loopback echo is pure
// CPU, so this measures scheduler overhead, not concurrency win.
func BenchmarkInvokeMany100(b *testing.B) { benchInvokeMany(b, 0) }

// BenchmarkInvokeSequential100Latency (E12): 100 sequential calls against
// a service with 1ms simulated service time — the remote-peer regime.
func BenchmarkInvokeSequential100Latency(b *testing.B) { benchInvokeSequential(b, time.Millisecond) }

// BenchmarkInvokeMany100Latency (E12): the same latency-bound burst
// scattered on the scheduler; waits overlap, so the burst approaches
// burst/MaxConcurrent service times instead of burst of them.
func BenchmarkInvokeMany100Latency(b *testing.B) { benchInvokeMany(b, time.Millisecond) }
