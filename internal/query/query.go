// Package query implements WSPeer's rich service-query language. The
// paper's ServiceQuery is "an abstraction used by WSPeer to allow for
// varying kinds of query. The simplest ServiceQuery queries on the name of
// a service. More complex queries could be constructed from languages such
// as DAML" (§III). This package is that extension point: a small,
// portable predicate language over service metadata that every binding
// can evaluate —
//
//	name like 'Echo*' and attr(kind) = 'echo' and not attr(deprecated) = 'true'
//	attr(price) < 0.5 or (group = 'grid' and name != 'Legacy')
//
// Expressions are compiled once and evaluated against Subjects (a
// service's name, group, owning peer and attributes). The P2PS binding
// ships expressions inside queries for in-network evaluation; the UDDI
// locator evaluates them client-side over registry results.
package query

import (
	"fmt"
	"strconv"
	"strings"
)

// Subject is the metadata an expression is evaluated against.
type Subject struct {
	Name  string
	Group string
	Peer  string
	Attrs map[string]string
}

// Expr is a compiled query expression.
type Expr struct {
	source string
	root   node
}

// Source returns the expression's original text (the wire form).
func (e *Expr) Source() string { return e.source }

// Matches evaluates the expression against a subject.
func (e *Expr) Matches(s *Subject) bool { return e.root.eval(s) }

// Compile parses an expression.
func Compile(source string) (*Expr, error) {
	p := &parser{lex: newLexer(source)}
	p.next()
	root, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("query: unexpected %q at offset %d", p.tok.text, p.tok.pos)
	}
	return &Expr{source: source, root: root}, nil
}

// MustCompile is Compile for expressions known to be valid.
func MustCompile(source string) *Expr {
	e, err := Compile(source)
	if err != nil {
		panic(err)
	}
	return e
}

// ---------------------------------------------------------------------------
// AST

type node interface{ eval(*Subject) bool }

type andNode struct{ l, r node }
type orNode struct{ l, r node }
type notNode struct{ inner node }

func (n andNode) eval(s *Subject) bool { return n.l.eval(s) && n.r.eval(s) }
func (n orNode) eval(s *Subject) bool  { return n.l.eval(s) || n.r.eval(s) }
func (n notNode) eval(s *Subject) bool { return !n.inner.eval(s) }

// field selectors
type fieldKind int

const (
	fieldName fieldKind = iota
	fieldGroup
	fieldPeer
	fieldAttr
)

type cmpNode struct {
	field fieldKind
	attr  string // for fieldAttr
	op    string
	value string
}

func (n cmpNode) eval(s *Subject) bool {
	var actual string
	var present bool
	switch n.field {
	case fieldName:
		actual, present = s.Name, true
	case fieldGroup:
		actual, present = s.Group, true
	case fieldPeer:
		actual, present = s.Peer, true
	case fieldAttr:
		actual, present = s.Attrs[n.attr], s.Attrs != nil
		if _, ok := s.Attrs[n.attr]; !ok {
			present = false
		}
	}
	switch n.op {
	case "=":
		return present && actual == n.value
	case "!=":
		// An absent attribute is "not equal" to any value.
		return !present || actual != n.value
	case "like":
		return present && wildcardMatch(n.value, actual)
	case "contains":
		return present && strings.Contains(actual, n.value)
	case "exists":
		return present
	case ">", "<", ">=", "<=":
		if !present {
			return false
		}
		a, errA := strconv.ParseFloat(actual, 64)
		b, errB := strconv.ParseFloat(n.value, 64)
		if errA != nil || errB != nil {
			return false
		}
		switch n.op {
		case ">":
			return a > b
		case "<":
			return a < b
		case ">=":
			return a >= b
		default:
			return a <= b
		}
	}
	return false
}

// wildcardMatch matches pattern with '*' wildcards against s.
func wildcardMatch(pattern, s string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == s
	}
	if parts[0] != "" {
		if !strings.HasPrefix(s, parts[0]) {
			return false
		}
		s = s[len(parts[0]):]
	}
	last := parts[len(parts)-1]
	if last != "" {
		if !strings.HasSuffix(s, last) {
			return false
		}
		s = s[:len(s)-len(last)]
	}
	for _, frag := range parts[1 : len(parts)-1] {
		if frag == "" {
			continue
		}
		i := strings.Index(s, frag)
		if i < 0 {
			return false
		}
		s = s[i+len(frag):]
	}
	return true
}

// ---------------------------------------------------------------------------
// Lexer

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString
	tokNumber
	tokOp     // = != > < >= <=
	tokLParen // (
	tokRParen // )
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src string
	pos int
}

func newLexer(src string) *lexer { return &lexer{src: src} }

func (l *lexer) lex() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var b strings.Builder
		for l.pos < len(l.src) && l.src[l.pos] != quote {
			b.WriteByte(l.src[l.pos])
			l.pos++
		}
		if l.pos >= len(l.src) {
			return token{}, fmt.Errorf("query: unterminated string at offset %d", start)
		}
		l.pos++
		return token{kind: tokString, text: b.String(), pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokOp, text: "=", pos: start}, nil
	case c == '!' && l.peek(1) == '=':
		l.pos += 2
		return token{kind: tokOp, text: "!=", pos: start}, nil
	case c == '>' || c == '<':
		op := string(c)
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			op += "="
			l.pos++
		}
		return token{kind: tokOp, text: op, pos: start}, nil
	case isDigit(c) || (c == '-' && isDigit(l.peek(1))):
		l.pos++
		for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentChar(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	default:
		return token{}, fmt.Errorf("query: unexpected character %q at offset %d", c, start)
	}
}

func (l *lexer) peek(ahead int) byte {
	if l.pos+ahead < len(l.src) {
		return l.src[l.pos+ahead]
	}
	return 0
}

func isSpace(c byte) bool      { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c|0x20 >= 'a' && c|0x20 <= 'z') }
func isIdentChar(c byte) bool  { return isIdentStart(c) || isDigit(c) || c == '-' || c == '.' }

// ---------------------------------------------------------------------------
// Parser

type parser struct {
	lex *lexer
	tok token
	err error
}

func (p *parser) next() {
	if p.err != nil {
		return
	}
	p.tok, p.err = p.lex.lex()
}

func (p *parser) parseOr() (node, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.err == nil && p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, "or") {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orNode{l: left, r: right}
	}
	return left, p.err
}

func (p *parser) parseAnd() (node, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.err == nil && p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, "and") {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = andNode{l: left, r: right}
	}
	return left, p.err
}

func (p *parser) parseUnary() (node, error) {
	if p.err != nil {
		return nil, p.err
	}
	if p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, "not") {
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notNode{inner: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (node, error) {
	if p.err != nil {
		return nil, p.err
	}
	if p.tok.kind == tokLParen {
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("query: missing ')' at offset %d", p.tok.pos)
		}
		p.next()
		return inner, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (node, error) {
	if p.tok.kind != tokIdent {
		return nil, fmt.Errorf("query: expected a field at offset %d, got %q", p.tok.pos, p.tok.text)
	}
	n := cmpNode{}
	switch strings.ToLower(p.tok.text) {
	case "name":
		n.field = fieldName
	case "group":
		n.field = fieldGroup
	case "peer":
		n.field = fieldPeer
	case "attr":
		n.field = fieldAttr
	default:
		return nil, fmt.Errorf("query: unknown field %q at offset %d (have name, group, peer, attr(...))", p.tok.text, p.tok.pos)
	}
	p.next()
	if n.field == fieldAttr {
		if p.tok.kind != tokLParen {
			return nil, fmt.Errorf("query: attr needs '(name)' at offset %d", p.tok.pos)
		}
		p.next()
		if p.tok.kind != tokIdent && p.tok.kind != tokString {
			return nil, fmt.Errorf("query: attr needs a key at offset %d", p.tok.pos)
		}
		n.attr = p.tok.text
		p.next()
		if p.tok.kind != tokRParen {
			return nil, fmt.Errorf("query: attr missing ')' at offset %d", p.tok.pos)
		}
		p.next()
	}

	// Operator: symbolic, or the keywords like/contains/exists.
	switch {
	case p.tok.kind == tokOp:
		n.op = p.tok.text
		p.next()
	case p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, "like"):
		n.op = "like"
		p.next()
	case p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, "contains"):
		n.op = "contains"
		p.next()
	case p.tok.kind == tokIdent && strings.EqualFold(p.tok.text, "exists"):
		n.op = "exists"
		p.next()
		return n, p.err
	default:
		return nil, fmt.Errorf("query: expected an operator at offset %d, got %q", p.tok.pos, p.tok.text)
	}

	if p.tok.kind != tokString && p.tok.kind != tokNumber && p.tok.kind != tokIdent {
		return nil, fmt.Errorf("query: expected a value at offset %d, got %q", p.tok.pos, p.tok.text)
	}
	n.value = p.tok.text
	p.next()
	return n, p.err
}
