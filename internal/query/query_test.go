package query

import (
	"strings"
	"testing"
	"testing/quick"
)

func subject() *Subject {
	return &Subject{
		Name:  "EchoService",
		Group: "grid",
		Peer:  "peer-1",
		Attrs: map[string]string{
			"kind":    "echo",
			"version": "2",
			"price":   "0.35",
		},
	}
}

func TestExpressions(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{`name = 'EchoService'`, true},
		{`name = 'Other'`, false},
		{`name != 'Other'`, true},
		{`name like 'Echo*'`, true},
		{`name like '*Service'`, true},
		{`name like '*cho*'`, true},
		{`name like 'Z*'`, false},
		{`name contains 'hoSer'`, true},
		{`name contains 'xyz'`, false},
		{`group = 'grid'`, true},
		{`peer = 'peer-1'`, true},
		{`attr(kind) = 'echo'`, true},
		{`attr(kind) = 'file'`, false},
		{`attr(kind) != 'file'`, true},
		{`attr(missing) = 'x'`, false},
		{`attr(missing) != 'x'`, true}, // absent attr is not-equal
		{`attr(kind) exists`, true},
		{`attr(missing) exists`, false},
		{`attr(price) < 0.5`, true},
		{`attr(price) > 0.5`, false},
		{`attr(price) >= 0.35`, true},
		{`attr(price) <= 0.35`, true},
		{`attr(version) > 1`, true},
		{`attr(kind) > 1`, false}, // non-numeric comparison fails closed
		{`name = 'EchoService' and attr(kind) = 'echo'`, true},
		{`name = 'EchoService' and attr(kind) = 'file'`, false},
		{`name = 'Other' or attr(kind) = 'echo'`, true},
		{`not name = 'Other'`, true},
		{`not (name = 'EchoService' or group = 'grid')`, false},
		{`name like 'Echo*' and (attr(price) < 0.5 or attr(version) = '9')`, true},
		{`NAME = 'EchoService' AND attr(kind) = 'echo'`, true}, // case-insensitive keywords
		{`attr("kind") = "echo"`, true},                        // double quotes
	}
	for _, c := range cases {
		e, err := Compile(c.src)
		if err != nil {
			t.Errorf("Compile(%q): %v", c.src, err)
			continue
		}
		if got := e.Matches(subject()); got != c.want {
			t.Errorf("%q = %v, want %v", c.src, got, c.want)
		}
		if e.Source() != c.src {
			t.Errorf("Source() = %q", e.Source())
		}
	}
}

func TestPrecedence(t *testing.T) {
	// and binds tighter than or: a or b and c == a or (b and c).
	e := MustCompile(`name = 'Other' or group = 'grid' and attr(kind) = 'echo'`)
	if !e.Matches(subject()) {
		t.Fatal("precedence: want (grid and echo) to satisfy")
	}
	e = MustCompile(`name = 'EchoService' or group = 'x' and attr(kind) = 'y'`)
	if !e.Matches(subject()) {
		t.Fatal("precedence: left or-arm should satisfy alone")
	}
}

func TestCompileErrors(t *testing.T) {
	bad := []string{
		``,
		`name`,
		`name =`,
		`= 'x'`,
		`bogusfield = 'x'`,
		`attr = 'x'`,
		`attr( = 'x'`,
		`attr(k = 'x'`,
		`name = 'unterminated`,
		`(name = 'x'`,
		`name = 'x' extra`,
		`name ~ 'x'`,
		`name = 'x' and`,
		`not`,
		`name @@ 'x'`,
	}
	for _, src := range bad {
		if _, err := Compile(src); err == nil {
			t.Errorf("Compile(%q): expected error", src)
		}
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustCompile(`=`)
}

func TestNilAttrs(t *testing.T) {
	s := &Subject{Name: "X"}
	if MustCompile(`attr(a) exists`).Matches(s) {
		t.Fatal("exists on nil attrs")
	}
	if !MustCompile(`attr(a) != 'v'`).Matches(s) {
		t.Fatal("!= on nil attrs")
	}
	if !MustCompile(`name = 'X'`).Matches(s) {
		t.Fatal("name on nil attrs")
	}
}

func TestQuickWildcardConsistency(t *testing.T) {
	// Property: `name like '*frag*'` agrees with strings.Contains.
	f := func(frag, name string) bool {
		if strings.ContainsAny(frag, "*'\"\\") || strings.ContainsAny(name, "'\"\\") {
			return true
		}
		e, err := Compile(`name like '*` + frag + `*'`)
		if err != nil {
			return true // frag produced an unparsable literal; fine
		}
		return e.Matches(&Subject{Name: name}) == strings.Contains(name, frag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickNeverPanics(t *testing.T) {
	// Property: arbitrary input never panics the compiler.
	f := func(src string) bool {
		_, _ = Compile(src)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
