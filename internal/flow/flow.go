// Package flow composes located services into executable workflows — the
// capability the Triana environment builds on WSPeer (paper §V): "Users
// can drag these icons onto a scratchpad and wire them together to create
// Web service workflows." A Workflow is a DAG of invocation steps whose
// inputs are constants or other steps' outputs; independent steps run
// concurrently, and each step's completion is observable.
package flow

import (
	"context"
	"fmt"
	"reflect"
	"sync"

	"wspeer/internal/core"
	"wspeer/internal/engine"
)

// Source produces one input value for a step at run time.
type Source interface {
	resolve(r *run) (interface{}, error)
}

type constSource struct{ v interface{} }

func (s constSource) resolve(*run) (interface{}, error) { return s.v, nil }

// Const supplies a fixed input value.
func Const(v interface{}) Source { return constSource{v: v} }

type outputSource struct {
	step  string
	part  string
	proto reflect.Type
}

func (s outputSource) resolve(r *run) (interface{}, error) {
	res, ok := r.result(s.step)
	if !ok {
		return nil, fmt.Errorf("flow: step %q has no result", s.step)
	}
	if res == nil {
		return nil, fmt.Errorf("flow: step %q was one-way and has no outputs", s.step)
	}
	out := reflect.New(s.proto)
	if err := res.Decode(s.part, out.Interface()); err != nil {
		return nil, fmt.Errorf("flow: decoding %s.%s: %w", s.step, s.part, err)
	}
	return out.Elem().Interface(), nil
}

// Output wires a prior step's named result part into this input. proto is
// a value of the expected Go type (its contents are ignored), e.g.
// Output("tokenize", "return", []string(nil)).
func Output(step, part string, proto interface{}) Source {
	return outputSource{step: step, part: part, proto: reflect.TypeOf(proto)}
}

type funcSource struct {
	fn func() (interface{}, error)
}

func (s funcSource) resolve(*run) (interface{}, error) { return s.fn() }

// FromFunc supplies an input computed at run time.
func FromFunc(fn func() (interface{}, error)) Source { return funcSource{fn: fn} }

// Step is one node of the workflow: an operation invoked on a located
// service, with named inputs.
type Step struct {
	// Name identifies the step within the workflow.
	Name string
	// Invocation is the bound target (from Client.NewInvocation).
	Invocation *core.Invocation
	// Operation to invoke.
	Operation string
	// Inputs maps parameter names to sources.
	Inputs map[string]Source
	// After adds explicit ordering constraints beyond data dependencies.
	After []string
}

// dependencies returns the step names this step waits on.
func (s *Step) dependencies() []string {
	var deps []string
	seen := map[string]bool{}
	for _, src := range s.Inputs {
		if o, ok := src.(outputSource); ok && !seen[o.step] {
			seen[o.step] = true
			deps = append(deps, o.step)
		}
	}
	for _, a := range s.After {
		if !seen[a] {
			seen[a] = true
			deps = append(deps, a)
		}
	}
	return deps
}

// Workflow is an executable DAG of steps.
type Workflow struct {
	name  string
	steps map[string]*Step
	order []string

	mu     sync.Mutex
	onStep func(StepEvent)
}

// StepEvent reports one step's completion (or failure).
type StepEvent struct {
	Workflow string
	Step     string
	Err      error
}

// New returns an empty workflow.
func New(name string) *Workflow {
	return &Workflow{name: name, steps: make(map[string]*Step)}
}

// Name returns the workflow's name.
func (w *Workflow) Name() string { return w.name }

// OnStep registers a completion observer.
func (w *Workflow) OnStep(fn func(StepEvent)) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.onStep = fn
}

// AddStep adds a step. Steps may be added in any order; dependencies are
// validated at Run.
func (w *Workflow) AddStep(s Step) error {
	if s.Name == "" {
		return fmt.Errorf("flow: step needs a name")
	}
	if _, dup := w.steps[s.Name]; dup {
		return fmt.Errorf("flow: duplicate step %q", s.Name)
	}
	if s.Invocation == nil {
		return fmt.Errorf("flow: step %q has no invocation", s.Name)
	}
	if s.Operation == "" {
		return fmt.Errorf("flow: step %q has no operation", s.Name)
	}
	cp := s
	w.steps[s.Name] = &cp
	w.order = append(w.order, s.Name)
	return nil
}

// Results holds a completed run's outputs.
type Results struct {
	results map[string]*engine.Result
}

// Result returns a step's invocation result (nil for one-way steps).
func (r *Results) Result(step string) *engine.Result { return r.results[step] }

// Decode extracts a step's named result part into out.
func (r *Results) Decode(step, part string, out interface{}) error {
	res, ok := r.results[step]
	if !ok {
		return fmt.Errorf("flow: no result for step %q", step)
	}
	if res == nil {
		return fmt.Errorf("flow: step %q was one-way", step)
	}
	return res.Decode(part, out)
}

// run is the mutable state of one execution.
type run struct {
	mu      sync.Mutex
	results map[string]*engine.Result
}

// Run executes the workflow: steps start as soon as their dependencies
// complete, independent branches in parallel. The first failure cancels
// the remaining steps. Each step's invocation runs on its client's bounded
// invocation scheduler (core.Client.ConfigureScheduler), so a wide fan-out
// holds at most MaxConcurrent invocations in flight per client and excess
// steps are shed with a *resilience.OverloadError instead of stampeding
// the substrate.
func (w *Workflow) Run(ctx context.Context) (*Results, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	r := &run{results: make(map[string]*engine.Result, len(w.steps))}
	done := make(map[string]chan struct{}, len(w.steps))
	for name := range w.steps {
		done[name] = make(chan struct{})
	}
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	fail := func(step string, err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf("flow: step %q: %w", step, err)
		}
		errMu.Unlock()
		cancel()
	}

	for _, name := range w.order {
		step := w.steps[name]
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(done[step.Name])
			// Wait for dependencies.
			for _, dep := range step.dependencies() {
				select {
				case <-done[dep]:
				case <-ctx.Done():
					return
				}
			}
			if ctx.Err() != nil {
				return
			}
			errMu.Lock()
			failed := firstErr != nil
			errMu.Unlock()
			if failed {
				return
			}
			// Resolve inputs.
			params := make([]engine.Param, 0, len(step.Inputs))
			for pname, src := range step.Inputs {
				v, err := src.resolve(r)
				if err != nil {
					fail(step.Name, err)
					w.fireStep(StepEvent{Workflow: w.name, Step: step.Name, Err: err})
					return
				}
				params = append(params, engine.Param{Name: pname, Value: v})
			}
			// Submit through the client's bounded scheduler rather than
			// invoking inline: the DAG fan-out above decides *when* a step
			// may start, the scheduler decides *how many* may be on the
			// wire at once. The callback fires exactly once — with the
			// invocation's outcome, or with the scheduler's shed error.
			type outcome struct {
				res *engine.Result
				err error
			}
			ch := make(chan outcome, 1)
			step.Invocation.InvokeAsync(ctx, step.Operation, params, func(res *engine.Result, err error) {
				ch <- outcome{res: res, err: err}
			})
			o := <-ch
			res, err := o.res, o.err
			w.fireStep(StepEvent{Workflow: w.name, Step: step.Name, Err: err})
			if err != nil {
				fail(step.Name, err)
				return
			}
			r.mu.Lock()
			r.results[step.Name] = res
			r.mu.Unlock()
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return &Results{results: r.results}, nil
}

func (w *Workflow) fireStep(e StepEvent) {
	w.mu.Lock()
	fn := w.onStep
	w.mu.Unlock()
	if fn != nil {
		fn(e)
	}
}

// validate checks referential integrity and rejects cycles.
func (w *Workflow) validate() error {
	if len(w.steps) == 0 {
		return fmt.Errorf("flow: workflow %q has no steps", w.name)
	}
	for _, name := range w.order {
		for _, dep := range w.steps[name].dependencies() {
			if _, ok := w.steps[dep]; !ok {
				return fmt.Errorf("flow: step %q depends on unknown step %q", name, dep)
			}
		}
	}
	// Cycle detection: Kahn's algorithm.
	indeg := make(map[string]int, len(w.steps))
	dependents := make(map[string][]string, len(w.steps))
	for _, name := range w.order {
		deps := w.steps[name].dependencies()
		indeg[name] = len(deps)
		for _, dep := range deps {
			dependents[dep] = append(dependents[dep], name)
		}
	}
	var queue []string
	for name, d := range indeg {
		if d == 0 {
			queue = append(queue, name)
		}
	}
	visited := 0
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		visited++
		for _, m := range dependents[n] {
			indeg[m]--
			if indeg[m] == 0 {
				queue = append(queue, m)
			}
		}
	}
	if visited != len(w.steps) {
		return fmt.Errorf("flow: workflow %q contains a dependency cycle", w.name)
	}
	return nil
}

// resolve implements the run-side access used by outputSource; it locks
// because parallel branches may read while others write.
func (r *run) result(step string) (*engine.Result, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	res, ok := r.results[step]
	return res, ok
}
