package flow

import (
	"context"
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/resilience"
	"wspeer/internal/transport"
	"wspeer/internal/wsdl"
)

// rig hosts real engine-backed services over the in-memory transport and
// returns a client peer whose invocations hit them.
type rig struct {
	t    *testing.T
	peer *core.Peer
	net  *transport.InMemNetwork
	reg  *transport.Registry
}

func newRig(t *testing.T) *rig {
	t.Helper()
	r := &rig{
		t:    t,
		peer: core.NewPeer(),
		net:  transport.NewInMemNetwork(),
		reg:  transport.NewRegistry(),
	}
	r.reg.Register(r.net.Transport())
	r.peer.Client().RegisterInvoker(memInvoker{reg: r.reg})
	return r
}

type memInvoker struct{ reg *transport.Registry }

func (i memInvoker) Schemes() []string { return []string{"mem"} }
func (i memInvoker) Invoke(ctx context.Context, svc *core.ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	stub := engine.NewStub(svc.Definitions, i.reg)
	stub.EndpointOverride = svc.Endpoint
	return stub.Invoke(ctx, op, params...)
}

// host deploys a service and returns a bound invocation.
func (r *rig) host(def engine.ServiceDef) *core.Invocation {
	r.t.Helper()
	eng := engine.New()
	svc, err := eng.Deploy(def)
	if err != nil {
		r.t.Fatal(err)
	}
	addr := "mem://host/" + def.Name
	r.net.Register(addr, eng.Handler(def.Name))
	defs, err := svc.WSDL(wsdl.TransportHTTP, addr)
	if err != nil {
		r.t.Fatal(err)
	}
	inv, err := r.peer.Client().NewInvocation(&core.ServiceInfo{
		Name: def.Name, Endpoint: addr, Definitions: defs,
	})
	if err != nil {
		r.t.Fatal(err)
	}
	return inv
}

func splitService() engine.ServiceDef {
	return engine.ServiceDef{
		Name: "Split",
		Operations: []engine.OperationDef{{
			Name:       "split",
			Func:       func(text string) []string { return strings.Fields(text) },
			ParamNames: []string{"text"},
		}},
	}
}

func countService() engine.ServiceDef {
	return engine.ServiceDef{
		Name: "Count",
		Operations: []engine.OperationDef{{
			Name:       "count",
			Func:       func(words []string) int64 { return int64(len(words)) },
			ParamNames: []string{"words"},
		}},
	}
}

func upperService() engine.ServiceDef {
	return engine.ServiceDef{
		Name: "Upper",
		Operations: []engine.OperationDef{{
			Name: "upper",
			Func: func(words []string) []string {
				out := make([]string, len(words))
				for i, w := range words {
					out[i] = strings.ToUpper(w)
				}
				return out
			},
			ParamNames: []string{"words"},
		}},
	}
}

func TestLinearPipeline(t *testing.T) {
	r := newRig(t)
	wf := New("pipeline")
	if err := wf.AddStep(Step{
		Name: "split", Invocation: r.host(splitService()), Operation: "split",
		Inputs: map[string]Source{"text": Const("a b c d")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := wf.AddStep(Step{
		Name: "count", Invocation: r.host(countService()), Operation: "count",
		Inputs: map[string]Source{"words": Output("split", "return", []string(nil))},
	}); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var events []string
	wf.OnStep(func(e StepEvent) {
		mu.Lock()
		events = append(events, e.Step)
		mu.Unlock()
	})

	res, err := wf.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := res.Decode("count", "return", &n); err != nil || n != 4 {
		t.Fatalf("count = %d, %v", n, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 || events[0] != "split" || events[1] != "count" {
		t.Fatalf("events = %v", events)
	}
	if wf.Name() != "pipeline" {
		t.Fatal("Name")
	}
}

func TestDiamondRunsBranchesConcurrently(t *testing.T) {
	r := newRig(t)
	// split feeds both count and upper; join counts the uppercased words.
	wf := New("diamond")
	wf.AddStep(Step{
		Name: "split", Invocation: r.host(splitService()), Operation: "split",
		Inputs: map[string]Source{"text": Const("x y z")},
	})
	wf.AddStep(Step{
		Name: "upper", Invocation: r.host(upperService()), Operation: "upper",
		Inputs: map[string]Source{"words": Output("split", "return", []string(nil))},
	})
	wf.AddStep(Step{
		Name: "count", Invocation: r.host(countService()), Operation: "count",
		Inputs: map[string]Source{"words": Output("split", "return", []string(nil))},
	})
	wf.AddStep(Step{
		Name: "countUpper", Invocation: r.host(engine.ServiceDef{
			Name: "Count2",
			Operations: []engine.OperationDef{{
				Name:       "count",
				Func:       func(words []string) int64 { return int64(len(words)) },
				ParamNames: []string{"words"},
			}},
		}), Operation: "count",
		Inputs: map[string]Source{"words": Output("upper", "return", []string(nil))},
	})

	res, err := wf.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var upper []string
	if err := res.Decode("upper", "return", &upper); err != nil {
		t.Fatal(err)
	}
	sort.Strings(upper)
	if strings.Join(upper, "") != "XYZ" {
		t.Fatalf("upper = %v", upper)
	}
	var a, b int64
	res.Decode("count", "return", &a)
	res.Decode("countUpper", "return", &b)
	if a != 3 || b != 3 {
		t.Fatalf("counts = %d, %d", a, b)
	}
}

func TestStepFailureCancelsRun(t *testing.T) {
	r := newRig(t)
	failDef := engine.ServiceDef{
		Name: "Fail",
		Operations: []engine.OperationDef{{
			Name: "boom",
			Func: func() (string, error) { return "", errors.New("step exploded") },
		}},
	}
	wf := New("failing")
	wf.AddStep(Step{
		Name: "boom", Invocation: r.host(failDef), Operation: "boom",
		Inputs: map[string]Source{},
	})
	wf.AddStep(Step{
		Name: "after", Invocation: r.host(countService()), Operation: "count",
		Inputs: map[string]Source{"words": Output("boom", "return", []string(nil))},
	})
	_, err := wf.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "step exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestExplicitOrderingAfter(t *testing.T) {
	r := newRig(t)
	var mu sync.Mutex
	var order []string
	record := func(name string) engine.ServiceDef {
		return engine.ServiceDef{
			Name: name,
			Operations: []engine.OperationDef{{
				Name: "go",
				Func: func() string {
					mu.Lock()
					order = append(order, name)
					mu.Unlock()
					return name
				},
			}},
		}
	}
	wf := New("ordered")
	wf.AddStep(Step{Name: "second", Invocation: r.host(record("B")), Operation: "go",
		Inputs: map[string]Source{}, After: []string{"first"}})
	wf.AddStep(Step{Name: "first", Invocation: r.host(record("A")), Operation: "go",
		Inputs: map[string]Source{}})
	if _, err := wf.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != 2 || order[0] != "A" || order[1] != "B" {
		t.Fatalf("order = %v", order)
	}
}

func TestValidation(t *testing.T) {
	r := newRig(t)
	inv := r.host(countService())

	wf := New("empty")
	if _, err := wf.Run(context.Background()); err == nil {
		t.Fatal("empty workflow ran")
	}

	wf = New("bad")
	if err := wf.AddStep(Step{Name: "", Invocation: inv, Operation: "count"}); err == nil {
		t.Fatal("nameless step accepted")
	}
	if err := wf.AddStep(Step{Name: "x", Operation: "count"}); err == nil {
		t.Fatal("invocation-less step accepted")
	}
	if err := wf.AddStep(Step{Name: "x", Invocation: inv}); err == nil {
		t.Fatal("operation-less step accepted")
	}
	if err := wf.AddStep(Step{Name: "x", Invocation: inv, Operation: "count"}); err != nil {
		t.Fatal(err)
	}
	if err := wf.AddStep(Step{Name: "x", Invocation: inv, Operation: "count"}); err == nil {
		t.Fatal("duplicate step accepted")
	}

	// Unknown dependency.
	wf2 := New("dangling")
	wf2.AddStep(Step{Name: "a", Invocation: inv, Operation: "count",
		Inputs: map[string]Source{"words": Output("ghost", "return", []string(nil))}})
	if _, err := wf2.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Fatalf("dangling dep: %v", err)
	}

	// Cycle.
	wf3 := New("cycle")
	wf3.AddStep(Step{Name: "a", Invocation: inv, Operation: "count",
		Inputs: map[string]Source{}, After: []string{"b"}})
	wf3.AddStep(Step{Name: "b", Invocation: inv, Operation: "count",
		Inputs: map[string]Source{}, After: []string{"a"}})
	if _, err := wf3.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle: %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	r := newRig(t)
	slow := engine.ServiceDef{
		Name: "Slow",
		Operations: []engine.OperationDef{{
			Name: "sleep",
			Func: func(ctx context.Context) (string, error) {
				select {
				case <-time.After(5 * time.Second):
					return "done", nil
				case <-ctx.Done():
					return "", ctx.Err()
				}
			},
		}},
	}
	wf := New("cancelled")
	wf.AddStep(Step{Name: "sleep", Invocation: r.host(slow), Operation: "sleep", Inputs: map[string]Source{}})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := wf.Run(ctx)
	if err == nil {
		t.Fatal("cancelled run succeeded")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("cancellation not honoured promptly")
	}
}

func TestFanOutRespectsSchedulerBound(t *testing.T) {
	r := newRig(t)
	r.peer.Client().ConfigureScheduler(core.SchedulerOptions{MaxConcurrent: 2, MaxQueue: 64})

	var inFlight, peak int64
	var mu sync.Mutex
	gauge := engine.ServiceDef{
		Name: "Gauge",
		Operations: []engine.OperationDef{{
			Name: "tick",
			Func: func() string {
				mu.Lock()
				inFlight++
				if inFlight > peak {
					peak = inFlight
				}
				mu.Unlock()
				time.Sleep(20 * time.Millisecond)
				mu.Lock()
				inFlight--
				mu.Unlock()
				return "ok"
			},
		}},
	}
	inv := r.host(gauge)
	wf := New("wide")
	for _, name := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		wf.AddStep(Step{Name: name, Invocation: inv, Operation: "tick", Inputs: map[string]Source{}})
	}
	if _, err := wf.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if peak > 2 {
		t.Fatalf("peak concurrency = %d, scheduler bound is 2", peak)
	}
	if peak < 1 {
		t.Fatalf("no step ran")
	}
}

func TestFanOutShedsWhenSchedulerSaturated(t *testing.T) {
	r := newRig(t)
	r.peer.Client().ConfigureScheduler(core.SchedulerOptions{MaxConcurrent: 1, MaxQueue: 1})

	// The held step unblocks when the run is cancelled (by the shed
	// error) so Run can drain; a hard block would deadlock wg.Wait.
	block := make(chan struct{})
	slow := engine.ServiceDef{
		Name: "Block",
		Operations: []engine.OperationDef{{
			Name: "hold",
			Func: func(ctx context.Context) (string, error) {
				select {
				case <-block:
					return "ok", nil
				case <-ctx.Done():
					return "", ctx.Err()
				}
			},
		}},
	}
	inv := r.host(slow)
	wf := New("stampede")
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		wf.AddStep(Step{Name: name, Invocation: inv, Operation: "hold", Inputs: map[string]Source{}})
	}
	_, err := wf.Run(context.Background())
	close(block)
	if err == nil {
		t.Fatal("saturated fan-out succeeded")
	}
	if _, ok := resilience.AsOverload(err); !ok {
		t.Fatalf("err = %v, want *resilience.OverloadError", err)
	}
}

func TestFromFuncAndResultAccess(t *testing.T) {
	r := newRig(t)
	wf := New("fn")
	wf.AddStep(Step{
		Name: "count", Invocation: r.host(countService()), Operation: "count",
		Inputs: map[string]Source{"words": FromFunc(func() (interface{}, error) {
			return []string{"a", "b"}, nil
		})},
	})
	res, err := wf.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Result("count") == nil {
		t.Fatal("Result accessor")
	}
	if res.Result("missing") != nil {
		t.Fatal("missing step result")
	}
	if err := res.Decode("missing", "x", new(int64)); err == nil {
		t.Fatal("decode of missing step")
	}
}
