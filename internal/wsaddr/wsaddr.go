// Package wsaddr implements the subset of WS-Addressing (the March 2004
// member submission the paper cites) that WSPeer depends on: endpoint
// references with reference properties, the message-addressing headers
// (To, Action, MessageID, RelatesTo, ReplyTo, FaultTo, From) and their SOAP
// binding.
//
// The P2PS binding of WSPeer leans on this package to make unidirectional
// pipes bidirectional: a consumer serializes the advertisement of its reply
// pipe into the ReplyTo header, and the provider resolves that
// advertisement to send the response back (paper §IV-B, figures 5 and 6).
package wsaddr

import (
	"crypto/rand"
	"fmt"

	"wspeer/internal/soap"
	"wspeer/internal/xmlutil"
)

// Namespace is the WS-Addressing namespace.
const Namespace = "http://schemas.xmlsoap.org/ws/2004/08/addressing"

// Anonymous is the well-known address meaning "reply on the transport's
// back channel" (e.g. the HTTP response).
const Anonymous = Namespace + "/role/anonymous"

// Header element names.
var (
	ToName         = xmlutil.N(Namespace, "To")
	ActionName     = xmlutil.N(Namespace, "Action")
	MessageIDName  = xmlutil.N(Namespace, "MessageID")
	RelatesToName  = xmlutil.N(Namespace, "RelatesTo")
	ReplyToName    = xmlutil.N(Namespace, "ReplyTo")
	FaultToName    = xmlutil.N(Namespace, "FaultTo")
	FromName       = xmlutil.N(Namespace, "From")
	AddressName    = xmlutil.N(Namespace, "Address")
	RefPropsName   = xmlutil.N(Namespace, "ReferenceProperties")
	EPRElementName = xmlutil.N(Namespace, "EndpointReference")
)

// EndpointReference is a WS-Addressing endpoint reference: a mandatory
// address URI plus arbitrary protocol-defined reference properties.
type EndpointReference struct {
	Address             string
	ReferenceProperties []*xmlutil.Element
}

// NewEndpointReference returns an EPR for the address.
func NewEndpointReference(address string) *EndpointReference {
	return &EndpointReference{Address: address}
}

// AddReferenceProperty appends a reference property element.
func (e *EndpointReference) AddReferenceProperty(el *xmlutil.Element) *EndpointReference {
	e.ReferenceProperties = append(e.ReferenceProperties, el)
	return e
}

// ReferenceProperty returns the first reference property with the given
// name, or nil.
func (e *EndpointReference) ReferenceProperty(name xmlutil.Name) *xmlutil.Element {
	for _, p := range e.ReferenceProperties {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Element serializes the EPR as an element with the given name (for example
// wsa:ReplyTo or wsa:EndpointReference).
func (e *EndpointReference) Element(name xmlutil.Name) *xmlutil.Element {
	root := xmlutil.NewElement(name)
	root.NewChild(AddressName).SetText(e.Address)
	if len(e.ReferenceProperties) > 0 {
		props := root.NewChild(RefPropsName)
		for _, p := range e.ReferenceProperties {
			props.AddChild(p.Clone())
		}
	}
	return root
}

// EPRFromElement parses an EPR from its XML form.
func EPRFromElement(el *xmlutil.Element) (*EndpointReference, error) {
	addr := el.Child(AddressName)
	if addr == nil {
		return nil, fmt.Errorf("wsaddr: EndpointReference without Address")
	}
	e := &EndpointReference{Address: addr.TrimmedText()}
	if e.Address == "" {
		return nil, fmt.Errorf("wsaddr: EndpointReference with empty Address")
	}
	if props := el.Child(RefPropsName); props != nil {
		for _, p := range props.Elements() {
			e.ReferenceProperties = append(e.ReferenceProperties, p.Clone())
		}
	}
	return e, nil
}

// MessageHeaders is the set of message-addressing properties carried in a
// SOAP header.
type MessageHeaders struct {
	To        string
	Action    string
	MessageID string
	RelatesTo string
	ReplyTo   *EndpointReference
	FaultTo   *EndpointReference
	From      *EndpointReference

	// RefProps are the destination's reference properties, copied verbatim
	// into the header per the WS-Addressing SOAP binding.
	RefProps []*xmlutil.Element
}

// NewMessageID returns a fresh urn:uuid message identifier.
func NewMessageID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("wsaddr: entropy source failed: " + err.Error())
	}
	// RFC 4122 version 4 variant bits.
	b[6] = (b[6] & 0x0f) | 0x40
	b[8] = (b[8] & 0x3f) | 0x80
	return fmt.Sprintf("urn:uuid:%x-%x-%x-%x-%x", b[0:4], b[4:6], b[6:8], b[8:10], b[10:16])
}

// HeadersFor builds the headers addressing a target EPR with the given
// action: To is the EPR's address and the EPR's reference properties are
// copied into the header block list.
func HeadersFor(target *EndpointReference, action string) *MessageHeaders {
	h := &MessageHeaders{To: target.Address, Action: action, MessageID: NewMessageID()}
	for _, p := range target.ReferenceProperties {
		h.RefProps = append(h.RefProps, p.Clone())
	}
	return h
}

// Apply adds the message-addressing header blocks to a SOAP envelope.
// To and Action are mandatory per the spec; Apply returns an error if
// either is missing.
func (h *MessageHeaders) Apply(env *soap.Envelope) error {
	if h.To == "" {
		return fmt.Errorf("wsaddr: missing To")
	}
	if h.Action == "" {
		return fmt.Errorf("wsaddr: missing Action")
	}
	to := xmlutil.NewElement(ToName).SetText(h.To)
	soap.SetMustUnderstand(to)
	env.AddHeader(to)
	action := xmlutil.NewElement(ActionName).SetText(h.Action)
	soap.SetMustUnderstand(action)
	env.AddHeader(action)
	if h.MessageID != "" {
		env.AddHeader(xmlutil.NewElement(MessageIDName).SetText(h.MessageID))
	}
	if h.RelatesTo != "" {
		env.AddHeader(xmlutil.NewElement(RelatesToName).SetText(h.RelatesTo))
	}
	if h.ReplyTo != nil {
		env.AddHeader(h.ReplyTo.Element(ReplyToName))
	}
	if h.FaultTo != nil {
		env.AddHeader(h.FaultTo.Element(FaultToName))
	}
	if h.From != nil {
		env.AddHeader(h.From.Element(FromName))
	}
	for _, p := range h.RefProps {
		env.AddHeader(p.Clone())
	}
	return nil
}

// FromEnvelope extracts the message-addressing headers from an envelope.
// Header blocks that are not WS-Addressing properties are collected into
// RefProps (they are, by the binding's construction, the destination's
// reference properties or other extensions).
func FromEnvelope(env *soap.Envelope) (*MessageHeaders, error) {
	h := &MessageHeaders{}
	for _, block := range env.Headers() {
		switch block.Name {
		case ToName:
			h.To = block.TrimmedText()
		case ActionName:
			h.Action = block.TrimmedText()
		case MessageIDName:
			h.MessageID = block.TrimmedText()
		case RelatesToName:
			h.RelatesTo = block.TrimmedText()
		case ReplyToName:
			epr, err := EPRFromElement(block)
			if err != nil {
				return nil, fmt.Errorf("wsaddr: ReplyTo: %w", err)
			}
			h.ReplyTo = epr
		case FaultToName:
			epr, err := EPRFromElement(block)
			if err != nil {
				return nil, fmt.Errorf("wsaddr: FaultTo: %w", err)
			}
			h.FaultTo = epr
		case FromName:
			epr, err := EPRFromElement(block)
			if err != nil {
				return nil, fmt.Errorf("wsaddr: From: %w", err)
			}
			h.From = epr
		default:
			h.RefProps = append(h.RefProps, block)
		}
	}
	return h, nil
}

// Reply builds the headers for a response that relates to the request
// headers h: it addresses the request's ReplyTo (copying its reference
// properties) and sets RelatesTo to the request's MessageID. When fault is
// true and the request carries a FaultTo, the reply is addressed there
// instead, per the WS-Addressing fault-delivery rule (FaultTo when
// present, else ReplyTo).
func (h *MessageHeaders) Reply(action string, fault bool) (*MessageHeaders, error) {
	target := h.ReplyTo
	if fault && h.FaultTo != nil {
		target = h.FaultTo
	}
	if target == nil {
		return nil, fmt.Errorf("wsaddr: request carries no ReplyTo")
	}
	r := HeadersFor(target, action)
	r.RelatesTo = h.MessageID
	return r, nil
}
