package wsaddr

import (
	"strings"
	"testing"

	"wspeer/internal/soap"
	"wspeer/internal/xmlutil"
)

const p2psNS = "http://wspeer.dev/p2ps"

func pipeProp(name string) *xmlutil.Element {
	el := xmlutil.NewElement(xmlutil.N(p2psNS, "PipeName"))
	el.SetText(name)
	return el
}

func TestEPRRoundTrip(t *testing.T) {
	epr := NewEndpointReference("p2ps://peer-1/Echo")
	epr.AddReferenceProperty(pipeProp("echoString"))
	el := epr.Element(EPRElementName)
	back, err := EPRFromElement(el)
	if err != nil {
		t.Fatal(err)
	}
	if back.Address != "p2ps://peer-1/Echo" {
		t.Fatalf("address = %q", back.Address)
	}
	if len(back.ReferenceProperties) != 1 || back.ReferenceProperties[0].Text() != "echoString" {
		t.Fatalf("props: %+v", back.ReferenceProperties)
	}
	if back.ReferenceProperty(xmlutil.N(p2psNS, "PipeName")) == nil {
		t.Fatal("ReferenceProperty lookup")
	}
	if back.ReferenceProperty(xmlutil.N(p2psNS, "Other")) != nil {
		t.Fatal("ReferenceProperty false positive")
	}
}

func TestEPRErrors(t *testing.T) {
	if _, err := EPRFromElement(xmlutil.NewElement(EPRElementName)); err == nil {
		t.Fatal("missing Address accepted")
	}
	el := xmlutil.NewElement(EPRElementName)
	el.NewChild(AddressName).SetText("   ")
	if _, err := EPRFromElement(el); err == nil {
		t.Fatal("empty Address accepted")
	}
}

func TestNewMessageID(t *testing.T) {
	a, b := NewMessageID(), NewMessageID()
	if a == b {
		t.Fatal("message IDs must be unique")
	}
	if !strings.HasPrefix(a, "urn:uuid:") || len(a) != len("urn:uuid:")+36 {
		t.Fatalf("format: %q", a)
	}
	// Version and variant nibbles.
	hex := strings.TrimPrefix(a, "urn:uuid:")
	if hex[14] != '4' {
		t.Fatalf("uuid version: %q", hex)
	}
}

func TestApplyAndExtract(t *testing.T) {
	target := NewEndpointReference("p2ps://provider/Echo")
	target.AddReferenceProperty(pipeProp("request"))
	h := HeadersFor(target, "p2ps://provider/Echo#echoString")
	h.ReplyTo = NewEndpointReference("p2ps://consumer")
	h.ReplyTo.AddReferenceProperty(pipeProp("reply-42"))

	env := soap.NewEnvelope()
	env.AddBodyElement(xmlutil.NewElement(xmlutil.N(p2psNS, "echoString")))
	if err := h.Apply(env); err != nil {
		t.Fatal(err)
	}

	// Serialize through bytes, as a real exchange would.
	back, err := soap.Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromEnvelope(back)
	if err != nil {
		t.Fatal(err)
	}
	if got.To != target.Address {
		t.Fatalf("To = %q", got.To)
	}
	if got.Action != "p2ps://provider/Echo#echoString" {
		t.Fatalf("Action = %q", got.Action)
	}
	if got.MessageID == "" {
		t.Fatal("MessageID missing")
	}
	if got.ReplyTo == nil || got.ReplyTo.Address != "p2ps://consumer" {
		t.Fatalf("ReplyTo = %+v", got.ReplyTo)
	}
	if got.ReplyTo.ReferenceProperty(xmlutil.N(p2psNS, "PipeName")).Text() != "reply-42" {
		t.Fatal("ReplyTo reference properties lost")
	}
	// The target's reference properties must have been copied into the
	// header as standalone blocks.
	if len(got.RefProps) != 1 || got.RefProps[0].Text() != "request" {
		t.Fatalf("RefProps: %v", got.RefProps)
	}
	// To and Action must be mustUnderstand per the binding.
	toBlock := back.Header(ToName)
	if toBlock == nil || !soap.MustUnderstand(toBlock) {
		t.Fatal("To must be mustUnderstand")
	}
}

func TestApplyMandatoryFields(t *testing.T) {
	env := soap.NewEnvelope()
	if err := (&MessageHeaders{Action: "a"}).Apply(env); err == nil {
		t.Fatal("missing To accepted")
	}
	if err := (&MessageHeaders{To: "t"}).Apply(env); err == nil {
		t.Fatal("missing Action accepted")
	}
}

func TestReply(t *testing.T) {
	req := &MessageHeaders{
		To:        "p2ps://provider/Echo",
		Action:    "urn:op",
		MessageID: "urn:uuid:req-1",
	}
	if _, err := req.Reply("urn:op:response", false); err == nil {
		t.Fatal("reply without ReplyTo accepted")
	}
	req.ReplyTo = NewEndpointReference("p2ps://consumer")
	req.ReplyTo.AddReferenceProperty(pipeProp("reply"))
	resp, err := req.Reply("urn:op:response", false)
	if err != nil {
		t.Fatal(err)
	}
	if resp.To != "p2ps://consumer" {
		t.Fatalf("reply To = %q", resp.To)
	}
	if resp.RelatesTo != "urn:uuid:req-1" {
		t.Fatalf("RelatesTo = %q", resp.RelatesTo)
	}
	if resp.Action != "urn:op:response" {
		t.Fatalf("Action = %q", resp.Action)
	}
	// Reference properties of the reply EPR become header blocks.
	if len(resp.RefProps) != 1 {
		t.Fatalf("reply RefProps: %v", resp.RefProps)
	}
	if resp.MessageID == "" || resp.MessageID == req.MessageID {
		t.Fatal("reply needs a fresh MessageID")
	}
}

func TestReplyHonorsFaultToForFaults(t *testing.T) {
	req := &MessageHeaders{
		To:        "p2ps://provider/Echo",
		Action:    "urn:op",
		MessageID: "urn:uuid:req-2",
		ReplyTo:   NewEndpointReference("p2ps://consumer/replies"),
		FaultTo:   NewEndpointReference("p2ps://consumer/faults"),
	}
	// Normal replies still follow ReplyTo even when FaultTo is present.
	ok, err := req.Reply("urn:op:response", false)
	if err != nil {
		t.Fatal(err)
	}
	if ok.To != "p2ps://consumer/replies" {
		t.Fatalf("non-fault reply To = %q", ok.To)
	}
	// Faults go to FaultTo when the request carries one.
	flt, err := req.Reply("urn:op:fault", true)
	if err != nil {
		t.Fatal(err)
	}
	if flt.To != "p2ps://consumer/faults" {
		t.Fatalf("fault reply To = %q", flt.To)
	}
	if flt.RelatesTo != "urn:uuid:req-2" {
		t.Fatalf("fault RelatesTo = %q", flt.RelatesTo)
	}
	// Without FaultTo, faults fall back to ReplyTo.
	req.FaultTo = nil
	flt, err = req.Reply("urn:op:fault", true)
	if err != nil {
		t.Fatal(err)
	}
	if flt.To != "p2ps://consumer/replies" {
		t.Fatalf("fault fallback To = %q", flt.To)
	}
}

func TestFaultToAndFrom(t *testing.T) {
	h := &MessageHeaders{
		To:      "urn:to",
		Action:  "urn:act",
		FaultTo: NewEndpointReference("urn:faults"),
		From:    NewEndpointReference("urn:me"),
	}
	env := soap.NewEnvelope()
	if err := h.Apply(env); err != nil {
		t.Fatal(err)
	}
	back, err := soap.Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, err := FromEnvelope(back)
	if err != nil {
		t.Fatal(err)
	}
	if got.FaultTo == nil || got.FaultTo.Address != "urn:faults" {
		t.Fatalf("FaultTo: %+v", got.FaultTo)
	}
	if got.From == nil || got.From.Address != "urn:me" {
		t.Fatalf("From: %+v", got.From)
	}
}

func TestFromEnvelopeBadEPR(t *testing.T) {
	env := soap.NewEnvelope()
	env.AddHeader(xmlutil.NewElement(ReplyToName)) // no Address child
	env.AddBodyElement(xmlutil.NewElement(xmlutil.N(p2psNS, "x")))
	if _, err := FromEnvelope(env); err == nil {
		t.Fatal("malformed ReplyTo accepted")
	}
}
