package wsaddr

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"wspeer/internal/soap"
	"wspeer/internal/xmlutil"
)

// genHeaders builds a pseudo-random but valid header set: To and Action
// always present (mandatory), every other property flipped on or off, EPRs
// with 0..2 reference properties.
func genHeaders(r *rand.Rand) *MessageHeaders {
	epr := func(addr string) *EndpointReference {
		e := NewEndpointReference(addr)
		for i, n := 0, r.Intn(3); i < n; i++ {
			e.AddReferenceProperty(pipeProp(fmt.Sprintf("pipe-%d", r.Intn(1000))))
		}
		return e
	}
	h := &MessageHeaders{
		To:     fmt.Sprintf("p2ps://peer-%d/Svc", r.Intn(100)),
		Action: fmt.Sprintf("urn:svc#op%d", r.Intn(100)),
	}
	if r.Intn(2) == 0 {
		h.MessageID = NewMessageID()
	}
	if r.Intn(2) == 0 {
		h.RelatesTo = NewMessageID()
	}
	switch r.Intn(3) {
	case 0:
		h.ReplyTo = epr(Anonymous)
	case 1:
		h.ReplyTo = epr(fmt.Sprintf("http://127.0.0.1:%d/callback/x", 1024+r.Intn(60000)))
	}
	if r.Intn(3) == 0 {
		h.FaultTo = epr(fmt.Sprintf("p2ps://peer-%d/faults", r.Intn(100)))
	}
	if r.Intn(3) == 0 {
		h.From = epr(fmt.Sprintf("mem://local/peer-%d", r.Intn(100)))
	}
	for i, n := 0, r.Intn(3); i < n; i++ {
		h.RefProps = append(h.RefProps, pipeProp(fmt.Sprintf("ref-%d", r.Intn(1000))))
	}
	return h
}

func sameEPR(t *testing.T, label string, a, b *EndpointReference) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: nil mismatch (%v vs %v)", label, a, b)
	}
	if a == nil {
		return
	}
	if a.Address != b.Address {
		t.Fatalf("%s: address %q != %q", label, a.Address, b.Address)
	}
	if len(a.ReferenceProperties) != len(b.ReferenceProperties) {
		t.Fatalf("%s: %d vs %d reference properties", label, len(a.ReferenceProperties), len(b.ReferenceProperties))
	}
	for i := range a.ReferenceProperties {
		if a.ReferenceProperties[i].Name != b.ReferenceProperties[i].Name ||
			a.ReferenceProperties[i].Text() != b.ReferenceProperties[i].Text() {
			t.Fatalf("%s: reference property %d differs", label, i)
		}
	}
}

func sameHeaders(t *testing.T, want, got *MessageHeaders) {
	t.Helper()
	if got.To != want.To || got.Action != want.Action ||
		got.MessageID != want.MessageID || got.RelatesTo != want.RelatesTo {
		t.Fatalf("scalar properties differ: want %+v got %+v", want, got)
	}
	sameEPR(t, "ReplyTo", want.ReplyTo, got.ReplyTo)
	sameEPR(t, "FaultTo", want.FaultTo, got.FaultTo)
	sameEPR(t, "From", want.From, got.From)
	if len(got.RefProps) != len(want.RefProps) {
		t.Fatalf("RefProps count %d != %d", len(got.RefProps), len(want.RefProps))
	}
	for i := range want.RefProps {
		if got.RefProps[i].Text() != want.RefProps[i].Text() {
			t.Fatalf("RefProps[%d] = %q, want %q", i, got.RefProps[i].Text(), want.RefProps[i].Text())
		}
	}
}

// TestHeaderRoundTripProperty drives random header sets through the three
// envelope wire paths the bindings use — Marshal (the P2PS pipe path),
// MarshalTo through a buffer (the HTTP/stub pooled-writer path), and a
// byte-copied re-parse (the inmem transport, which copies bodies between
// goroutines) — and asserts FromEnvelope recovers exactly what Apply
// stamped, every time.
func TestHeaderRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		want := genHeaders(r)
		env := soap.NewEnvelope()
		env.AddBodyElement(xmlutil.NewElement(xmlutil.N(p2psNS, "payload")))
		if err := want.Apply(env); err != nil {
			t.Fatalf("iter %d: Apply: %v", iter, err)
		}

		// Path 1: Marshal to a fresh byte slice (p2psbind pipe frames).
		wire1 := env.Marshal()
		// Path 2: MarshalTo a writer (httpbind/inmembind via stub.BuildRequest).
		var buf bytes.Buffer
		if err := env.MarshalTo(&buf); err != nil {
			t.Fatalf("iter %d: MarshalTo: %v", iter, err)
		}
		wire2 := buf.Bytes()
		// Path 3: a defensive copy, as the inmem transport hands bodies
		// across goroutines.
		wire3 := append([]byte(nil), wire1...)

		for p, wire := range [][]byte{wire1, wire2, wire3} {
			back, err := soap.Parse(wire)
			if err != nil {
				t.Fatalf("iter %d path %d: Parse: %v", iter, p, err)
			}
			got, err := FromEnvelope(back)
			if err != nil {
				t.Fatalf("iter %d path %d: FromEnvelope: %v", iter, p, err)
			}
			sameHeaders(t, want, got)
		}
	}
}
