package resilience

import (
	"sync"
	"time"

	"wspeer/internal/pipeline"
	"wspeer/internal/telemetry"
)

// Spine instruments for breaker activity: transition counters per target
// state and a gauge of currently-open breakers, maintained for every
// breaker whether or not an OnChange hook is installed.
var (
	mBreakerOpened   = telemetry.Default().Meter.Counter("resilience.breaker.opened")
	mBreakerClosed   = telemetry.Default().Meter.Counter("resilience.breaker.closed")
	mBreakerHalfOpen = telemetry.Default().Meter.Counter("resilience.breaker.halfopen")
	gBreakerOpen     = telemetry.Default().Meter.Gauge("resilience.breaker.open")
)

// BreakerState is a circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: calls flow; outcomes are recorded in the window.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls are refused locally until OpenTimeout elapses.
	BreakerOpen
	// BreakerHalfOpen: a bounded number of probe calls are let through;
	// their outcomes decide between re-closing and re-opening.
	BreakerHalfOpen
)

// String returns "closed", "open" or "half-open".
func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerOptions tunes a Breaker. The zero value means a 16-call window,
// 50% failure threshold with at least 4 samples, a 5-second open period
// and a single closing probe.
type BreakerOptions struct {
	// Window is the sliding window length in calls (default 16). The
	// window is count-based, not time-based, so a given outcome sequence
	// drives the state machine identically regardless of wall-clock —
	// the property the deterministic chaos tests depend on.
	Window int
	// FailureThreshold opens the breaker when failures/samples reaches it
	// (default 0.5).
	FailureThreshold float64
	// MinSamples is the minimum window occupancy before the threshold is
	// consulted (default 4), so one early failure cannot open a cold
	// breaker.
	MinSamples int
	// OpenTimeout is how long an open breaker refuses calls before
	// allowing a half-open probe (default 5s).
	OpenTimeout time.Duration
	// HalfOpenProbes is both the number of concurrent probes admitted in
	// half-open and the number of consecutive probe successes required to
	// close (default 1). Any probe failure re-opens immediately.
	HalfOpenProbes int
	// Now is the clock (default time.Now). Tests inject a fake clock to
	// make open→half-open transitions deterministic.
	Now func() time.Time
	// OnChange observes state transitions. It is called outside the
	// breaker's lock, in transition order per breaker.
	OnChange func(endpoint string, from, to BreakerState)
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Window <= 0 {
		o.Window = 16
	}
	if o.FailureThreshold <= 0 || o.FailureThreshold > 1 {
		o.FailureThreshold = 0.5
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 4
	}
	if o.MinSamples > o.Window {
		o.MinSamples = o.Window
	}
	if o.OpenTimeout <= 0 {
		o.OpenTimeout = 5 * time.Second
	}
	if o.HalfOpenProbes <= 0 {
		o.HalfOpenProbes = 1
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Breaker is a per-endpoint circuit breaker: closed→open on a sliding-
// window failure rate, open→half-open after OpenTimeout, half-open→closed
// on successful probes (→open again on a probe failure). All methods are
// safe for concurrent use.
type Breaker struct {
	endpoint string
	opts     BreakerOptions

	mu       sync.Mutex
	state    BreakerState
	window   []bool // ring buffer of outcomes, true = failure
	head     int
	count    int
	failures int
	openedAt time.Time
	probes   int // in-flight probes while half-open
	probeOK  int // consecutive probe successes while half-open
}

// NewBreaker returns a closed breaker for the endpoint.
func NewBreaker(endpoint string, opts BreakerOptions) *Breaker {
	o := opts.withDefaults()
	return &Breaker{endpoint: endpoint, opts: o, window: make([]bool, o.Window)}
}

// Endpoint returns the endpoint identity the breaker guards.
func (b *Breaker) Endpoint() string { return b.endpoint }

// State returns the current state (open breakers past their timeout still
// report open until an Allow converts them to half-open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Allow reports whether a call may proceed. In half-open it claims a
// probe slot; every true return MUST be balanced by a Record call (or the
// slot leaks until the breaker re-opens).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var fired func()
	ok := false
	switch b.state {
	case BreakerClosed:
		ok = true
	case BreakerOpen:
		if b.opts.Now().Sub(b.openedAt) >= b.opts.OpenTimeout {
			fired = b.transition(BreakerHalfOpen)
			b.probes = 1
			b.probeOK = 0
			ok = true
		}
	case BreakerHalfOpen:
		if b.probes < b.opts.HalfOpenProbes {
			b.probes++
			ok = true
		}
	}
	b.mu.Unlock()
	if fired != nil {
		fired()
	}
	return ok
}

// Record feeds one call outcome into the state machine. success follows
// the package's Classify judgment: application faults are successes,
// transport breakage and timeouts are failures.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	var fired func()
	switch b.state {
	case BreakerClosed:
		b.push(!success)
		if b.count >= b.opts.MinSamples &&
			float64(b.failures) >= b.opts.FailureThreshold*float64(b.count) {
			fired = b.open()
		}
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if success {
			b.probeOK++
			if b.probeOK >= b.opts.HalfOpenProbes {
				fired = b.transition(BreakerClosed)
				b.reset()
			}
		} else {
			fired = b.open()
		}
	case BreakerOpen:
		// A straggler from before the breaker opened; the window was
		// reset at the transition, so there is nothing to attribute.
	}
	b.mu.Unlock()
	if fired != nil {
		fired()
	}
}

// push must be called with b.mu held and b.state == BreakerClosed.
func (b *Breaker) push(failure bool) {
	if b.count == len(b.window) {
		if b.window[b.head] {
			b.failures--
		}
	} else {
		b.count++
	}
	b.window[b.head] = failure
	if failure {
		b.failures++
	}
	b.head = (b.head + 1) % len(b.window)
}

// open must be called with b.mu held.
func (b *Breaker) open() func() {
	fired := b.transition(BreakerOpen)
	b.openedAt = b.opts.Now()
	b.reset()
	return fired
}

// reset must be called with b.mu held.
func (b *Breaker) reset() {
	for i := range b.window {
		b.window[i] = false
	}
	b.head, b.count, b.failures = 0, 0, 0
	b.probes, b.probeOK = 0, 0
}

// transition must be called with b.mu held; the returned closure reports
// the change to the telemetry spine and any OnChange hook, and must be
// invoked after the lock is released.
func (b *Breaker) transition(to BreakerState) func() {
	from := b.state
	b.state = to
	if from == to {
		return nil
	}
	onChange := b.opts.OnChange
	return func() {
		log := telemetry.Default().Log
		switch to {
		case BreakerOpen:
			mBreakerOpened.Inc()
			gBreakerOpen.Add(1)
			log.Warn(nil, "resilience: breaker opened", "endpoint", b.endpoint, "from", from)
		case BreakerHalfOpen:
			mBreakerHalfOpen.Inc()
			log.Info(nil, "resilience: breaker half-open, probing", "endpoint", b.endpoint)
		case BreakerClosed:
			mBreakerClosed.Inc()
			log.Info(nil, "resilience: breaker closed", "endpoint", b.endpoint)
		}
		if from == BreakerOpen {
			gBreakerOpen.Add(-1)
		}
		if onChange != nil {
			onChange(b.endpoint, from, to)
		}
	}
}

// ---------------------------------------------------------------------------
// Group

// Group is the endpoint health registry: a lazily populated set of
// breakers keyed by endpoint identity, sharing one option set. A Group
// hangs off each core Client (health transitions feed the event tree) and
// backs both the failover invoker and the standalone interceptor.
type Group struct {
	opts BreakerOptions
	mu   sync.RWMutex
	m    map[string]*Breaker
}

// NewGroup returns an empty registry; breakers are created on first use.
func NewGroup(opts BreakerOptions) *Group {
	return &Group{opts: opts.withDefaults(), m: make(map[string]*Breaker)}
}

// Breaker returns (creating if needed) the breaker for an endpoint.
func (g *Group) Breaker(endpoint string) *Breaker {
	g.mu.RLock()
	b := g.m[endpoint]
	g.mu.RUnlock()
	if b != nil {
		return b
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if b = g.m[endpoint]; b == nil {
		b = NewBreaker(endpoint, g.opts)
		g.m[endpoint] = b
	}
	return b
}

// Healthy reports whether the endpoint's breaker would admit a call
// without claiming anything (unknown endpoints are healthy).
func (g *Group) Healthy(endpoint string) bool {
	g.mu.RLock()
	b := g.m[endpoint]
	g.mu.RUnlock()
	return b == nil || b.State() != BreakerOpen
}

// Snapshot returns the state of every registered endpoint.
func (g *Group) Snapshot() map[string]BreakerState {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make(map[string]BreakerState, len(g.m))
	for ep, b := range g.m {
		out[ep] = b.State()
	}
	return out
}

// ---------------------------------------------------------------------------
// Pipeline integration

// MetaEndpoint is the pipeline Meta key carrying the call's endpoint
// identity — the key breakers and injectors are addressed by. The core
// Invocation sets it before the chain runs (and per failover attempt);
// fallbacks are the wire request's endpoint, then the service name.
const MetaEndpoint = "resilience.endpoint"

// MetaBreakerHandled marks a call whose breaker bookkeeping is performed
// inside the terminal (the failover invoker records per-attempt outcomes
// itself). The Group interceptor passes such calls through untouched, so
// installing both never double-counts an exchange.
const MetaBreakerHandled = "resilience.breakerHandled"

// EndpointOf resolves the endpoint identity a call is keyed by.
func EndpointOf(c *pipeline.Call) string {
	if ep, _ := c.GetMeta(MetaEndpoint).(string); ep != "" {
		return ep
	}
	if c.Request != nil && c.Request.Endpoint != "" {
		return c.Request.Endpoint
	}
	return c.Service
}

// Interceptor exposes the registry as a pipeline stage: calls to an
// endpoint whose breaker is open are refused with *BreakerOpenError
// before reaching the terminal, and every completed call's outcome is
// recorded under the shared classification. Install it inside Retry so
// retries consult the breaker per attempt.
func (g *Group) Interceptor() pipeline.Interceptor {
	return func(next pipeline.CallFunc) pipeline.CallFunc {
		return func(c *pipeline.Call) error {
			if h, _ := c.GetMeta(MetaBreakerHandled).(bool); h {
				return next(c)
			}
			ep := EndpointOf(c)
			br := g.Breaker(ep)
			if !br.Allow() {
				return &BreakerOpenError{Endpoint: ep}
			}
			err := next(c)
			Observe(br, err)
			return err
		}
	}
}
