package resilience

import (
	"sync"

	"wspeer/internal/telemetry"
)

// Spine instruments for retry budgets, process-wide across buckets.
var (
	mBudgetDraws   = telemetry.Default().Meter.Counter("resilience.budget.draws")
	mBudgetDenied  = telemetry.Default().Meter.Counter("resilience.budget.denied")
	mBudgetCredits = telemetry.Default().Meter.Counter("resilience.budget.credits")
	gBudgetBalance = telemetry.Default().Meter.Gauge("resilience.budget.balance_milli")
)

// BudgetOptions tunes a retry budget.
type BudgetOptions struct {
	// Floor is the initial grant and the bucket's guaranteed minimum
	// capacity in tokens (default 3): even a client with no recent
	// successes can retry a few times, but never storm.
	Floor float64
	// Cap bounds the bucket (default 10).
	Cap float64
	// Ratio is the fraction of a token credited per successful call
	// (default 0.1): sustained retry volume is limited to roughly
	// Ratio × the success rate.
	Ratio float64
}

func (o BudgetOptions) withDefaults() BudgetOptions {
	if o.Floor <= 0 {
		o.Floor = 3
	}
	if o.Cap <= 0 {
		o.Cap = 10
	}
	if o.Cap < o.Floor {
		o.Cap = o.Floor
	}
	if o.Ratio <= 0 {
		o.Ratio = 0.1
	}
	return o
}

// BudgetStats is a point-in-time retry-budget snapshot.
type BudgetStats struct {
	// Balance is the current token balance.
	Balance float64
	// Draws counts granted retransmissions.
	Draws int64
	// Denied counts refused retransmissions.
	Denied int64
}

// RetryBudget is a token bucket that bounds retransmissions to a
// fraction of observed successes — the standard defence against retry
// storms, where synchronized client retries multiply offered load on an
// already-failing server. Each retry or hedge draws one token; each
// success credits Ratio of one back, so sustained retry volume tracks
// the success rate instead of the failure rate. The Floor keeps a small
// reserve so cold clients can still recover from one-off blips.
//
// A RetryBudget is safe for concurrent use and is typically shared by
// every interceptor chain of one client, so retries and hedges spend
// from one pool.
type RetryBudget struct {
	opts BudgetOptions

	mu     sync.Mutex
	tokens float64
	draws  int64
	denied int64
}

// NewRetryBudget returns a budget holding its Floor of tokens.
func NewRetryBudget(opts BudgetOptions) *RetryBudget {
	o := opts.withDefaults()
	return &RetryBudget{opts: o, tokens: o.Floor}
}

// TryDraw spends one token if at least one is available, reporting
// whether the retransmission may proceed.
func (b *RetryBudget) TryDraw() bool {
	b.mu.Lock()
	if b.tokens < 1 {
		b.denied++
		b.mu.Unlock()
		mBudgetDenied.Inc()
		return false
	}
	b.tokens--
	b.draws++
	bal := b.tokens
	b.mu.Unlock()
	mBudgetDraws.Inc()
	gBudgetBalance.Set(int64(bal * 1000))
	return true
}

// Credit rewards one successful call with Ratio of a token, up to Cap.
func (b *RetryBudget) Credit() {
	b.mu.Lock()
	b.tokens += b.opts.Ratio
	if b.tokens > b.opts.Cap {
		b.tokens = b.opts.Cap
	}
	bal := b.tokens
	b.mu.Unlock()
	mBudgetCredits.Inc()
	gBudgetBalance.Set(int64(bal * 1000))
}

// Balance returns the current token balance.
func (b *RetryBudget) Balance() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// Stats returns a point-in-time snapshot of the budget.
func (b *RetryBudget) Stats() BudgetStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BudgetStats{Balance: b.tokens, Draws: b.draws, Denied: b.denied}
}
