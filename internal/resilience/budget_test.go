package resilience

import (
	"context"
	"testing"
	"time"
)

func TestRetryBudgetFloorAndDraws(t *testing.T) {
	b := NewRetryBudget(BudgetOptions{Floor: 2, Cap: 5, Ratio: 0.5})
	if got := b.Balance(); got != 2 {
		t.Fatalf("initial balance = %v, want 2", got)
	}
	if !b.TryDraw() || !b.TryDraw() {
		t.Fatalf("floor tokens should be drawable")
	}
	if b.TryDraw() {
		t.Fatalf("empty budget granted a draw")
	}
	st := b.Stats()
	if st.Draws != 2 || st.Denied != 1 {
		t.Fatalf("stats = %+v, want 2 draws, 1 denied", st)
	}
}

func TestRetryBudgetCreditsFractionUpToCap(t *testing.T) {
	b := NewRetryBudget(BudgetOptions{Floor: 1, Cap: 2, Ratio: 0.5})
	for i := 0; i < 10; i++ {
		b.Credit()
	}
	if got := b.Balance(); got != 2 {
		t.Fatalf("balance = %v, want capped at 2", got)
	}
	// Two whole tokens are spendable, a fractional remainder is not.
	if !b.TryDraw() || !b.TryDraw() {
		t.Fatalf("capped budget should grant 2 draws")
	}
	if b.TryDraw() {
		t.Fatalf("draw granted with balance below 1")
	}
	b.Credit() // 0 + 0.5: still below one token
	if b.TryDraw() {
		t.Fatalf("draw granted with fractional balance")
	}
	b.Credit() // reaches 1.0
	if !b.TryDraw() {
		t.Fatalf("draw refused with a whole token available")
	}
}

func TestRetryBudgetDefaults(t *testing.T) {
	b := NewRetryBudget(BudgetOptions{})
	if got := b.Balance(); got != 3 {
		t.Fatalf("default floor = %v, want 3", got)
	}
}

// drain empties the admission controller's adaptive window by completing
// n dispatches with the given queue wait and service time.
func feedAdmission(a *Admission, n int, wait, service time.Duration) {
	for i := 0; i < n; i++ {
		a.observe(wait, service)
	}
}

func TestAdaptiveAdmissionHalvesUnderCongestion(t *testing.T) {
	a := NewAdmission(AdmissionOptions{
		MaxConcurrent: 16,
		Adaptive:      true,
		MinConcurrent: 2,
		AdjustEvery:   4,
	})
	if got := a.Stats().Limit; got != 16 {
		t.Fatalf("initial limit = %d, want 16", got)
	}
	// Queue waits at 10× the service floor: congested, halve.
	feedAdmission(a, 4, 10*time.Millisecond, time.Millisecond)
	if got := a.Stats().Limit; got != 8 {
		t.Fatalf("limit after congested window = %d, want 8", got)
	}
	feedAdmission(a, 4, 10*time.Millisecond, time.Millisecond)
	feedAdmission(a, 4, 10*time.Millisecond, time.Millisecond)
	feedAdmission(a, 4, 10*time.Millisecond, time.Millisecond)
	if got := a.Stats().Limit; got != 2 {
		t.Fatalf("limit should floor at MinConcurrent=2, got %d", got)
	}
}

func TestAdaptiveAdmissionProbesUpWhenSaturated(t *testing.T) {
	a := NewAdmission(AdmissionOptions{
		MaxConcurrent: 8,
		MaxQueue:      4,
		Adaptive:      true,
		AdjustEvery:   2,
	})
	// Shrink to 4 first.
	feedAdmission(a, 2, 10*time.Millisecond, time.Millisecond)
	if got := a.Stats().Limit; got != 4 {
		t.Fatalf("limit = %d, want 4", got)
	}
	// Saturate the shrunken limit (fill the usable share of the
	// semaphore), then complete uncongested windows: additive increase.
	ctx := context.Background()
	tickets := make([]Ticket, 0, 4)
	for i := 0; i < 4; i++ {
		tk, err := a.Admit(ctx)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	feedAdmission(a, 2, 0, time.Millisecond)
	if got := a.Stats().Limit; got != 5 {
		t.Fatalf("limit after uncongested saturated window = %d, want 5", got)
	}
	for _, tk := range tickets {
		tk.Done()
	}
}

func TestAdaptiveAdmissionEnforcesShrunkenLimit(t *testing.T) {
	a := NewAdmission(AdmissionOptions{
		MaxConcurrent: 8,
		Adaptive:      true,
		AdjustEvery:   2,
	})
	feedAdmission(a, 2, 10*time.Millisecond, time.Millisecond) // limit 8 → 4
	ctx := context.Background()
	var tickets []Ticket
	for i := 0; i < 4; i++ {
		tk, err := a.Admit(ctx)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	// The 5th admit must shed: only 4 of the 8 slots are usable.
	if _, err := a.Admit(ctx); err == nil {
		t.Fatalf("admit beyond shrunken limit succeeded")
	} else if _, ok := AsOverload(err); !ok {
		t.Fatalf("refusal is %T, want *OverloadError", err)
	}
	st := a.Stats()
	if st.InFlight != 4 || st.Limit != 4 {
		t.Fatalf("stats = %+v, want InFlight=4 Limit=4", st)
	}
	for _, tk := range tickets {
		tk.Done()
	}
	if got := a.Stats().InFlight; got != 0 {
		t.Fatalf("in-flight after releases = %d, want 0", got)
	}
}

func TestAdaptiveAdmissionPaysDebtOnRelease(t *testing.T) {
	// AdjustEvery of 4 keeps the ticket releases below (which feed their
	// own samples) from closing another adjustment window mid-test.
	a := NewAdmission(AdmissionOptions{
		MaxConcurrent: 4,
		Adaptive:      true,
		AdjustEvery:   4,
	})
	ctx := context.Background()
	// Fill every slot, then shrink: the limiter cannot park fillers in a
	// full semaphore, so the shrink becomes debt paid by releases.
	var tickets []Ticket
	for i := 0; i < 4; i++ {
		tk, err := a.Admit(ctx)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}
	feedAdmission(a, 4, 10*time.Millisecond, time.Millisecond) // limit 4 → 2
	if got := a.Stats().Limit; got != 2 {
		t.Fatalf("limit = %d, want 2", got)
	}
	// Two releases pay the debt instead of freeing slots...
	tickets[0].Done()
	tickets[1].Done()
	if _, err := a.Admit(ctx); err == nil {
		t.Fatalf("admit succeeded while releases were paying shrink debt")
	}
	// ...after which a third release frees a real slot.
	tickets[2].Done()
	tk, err := a.Admit(ctx)
	if err != nil {
		t.Fatalf("admit after debt paid: %v", err)
	}
	tk.Done()
	tickets[3].Done()
}

func TestAdmissionRetryAfterDerivedFromQueueState(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxConcurrent: 1, MaxQueue: 0, RetryAfter: 7 * time.Second})
	ctx := context.Background()

	// Before any completion the configured constant is advertised.
	tk, err := a.Admit(ctx)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	_, err = a.Admit(ctx)
	o, ok := AsOverload(err)
	if !ok {
		t.Fatalf("expected overload, got %v", err)
	}
	if o.RetryAfter != 7*time.Second {
		t.Fatalf("pre-observation RetryAfter = %v, want the configured 7s", o.RetryAfter)
	}
	tk.Done()

	// Seed the service-time estimate, then shed again: the hint now comes
	// from the observed latency, far below the configured constant.
	feedAdmission(a, 8, 0, 5*time.Millisecond)
	tk, err = a.Admit(ctx)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	defer tk.Done()
	_, err = a.Admit(ctx)
	o, ok = AsOverload(err)
	if !ok {
		t.Fatalf("expected overload, got %v", err)
	}
	if o.RetryAfter >= time.Second || o.RetryAfter <= 0 {
		t.Fatalf("post-observation RetryAfter = %v, want a sub-second queue-derived hint", o.RetryAfter)
	}
	if o.RetryAfterSeconds() != 1 {
		t.Fatalf("RetryAfterSeconds = %d, want rounded up to 1", o.RetryAfterSeconds())
	}
}

func TestAdmissionDrainAdoptsFillers(t *testing.T) {
	a := NewAdmission(AdmissionOptions{
		MaxConcurrent: 4,
		Adaptive:      true,
		AdjustEvery:   2,
	})
	feedAdmission(a, 2, 10*time.Millisecond, time.Millisecond) // limit 4 → 2, fillers parked
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := a.Drain(ctx); err != nil {
		t.Fatalf("drain with only fillers held: %v", err)
	}
	if _, err := a.Admit(context.Background()); err == nil {
		t.Fatalf("admit succeeded on a draining controller")
	}
}

func TestOverloadErrorRetryAfterHint(t *testing.T) {
	e := NewOverloadError("queue full", 3*time.Second, nil)
	if got := e.RetryAfterHint(); got != 3*time.Second {
		t.Fatalf("hint = %v, want 3s", got)
	}
}
