package resilience

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"wspeer/internal/netsim"
	"wspeer/internal/pipeline"
	"wspeer/internal/soap"
	"wspeer/internal/transport"
)

// fakeClock is a manually advanced time source for deterministic
// open→half-open transitions.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Outcome
	}{
		{"nil", nil, Success},
		{"soap fault", soap.NewFault(soap.FaultServer, "boom"), Success},
		{"wrapped fault", fmt.Errorf("x: %w", soap.NewFault(soap.FaultClient, "bad")), Success},
		{"canceled", context.Canceled, Skip},
		{"breaker open", &BreakerOpenError{Endpoint: "http://x"}, Skip},
		{"deadline", context.DeadlineExceeded, Failure},
		{"transport", errors.New("connection refused"), Failure},
		{"injected", fmt.Errorf("%w for endpoint x", ErrInjected), Failure},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("%s: Classify = %v, want %v", c.name, got, c.want)
		}
	}
}

// step is one scripted breaker interaction.
type step struct {
	advance   time.Duration // clock movement before the step
	allow     bool          // expected Allow result
	record    bool          // whether to Record (only when allowed)
	success   bool          // the outcome to record
	wantState BreakerState  // state after the step
}

// TestBreakerStateMachine walks the full state diagram:
// closed→open→half-open→closed, and half-open→open on a probe failure.
func TestBreakerStateMachine(t *testing.T) {
	clock := newFakeClock()
	var transitions []string
	opts := BreakerOptions{
		Window:           4,
		FailureThreshold: 0.5,
		MinSamples:       4,
		OpenTimeout:      100 * time.Millisecond,
		HalfOpenProbes:   1,
		Now:              clock.Now,
		OnChange: func(ep string, from, to BreakerState) {
			transitions = append(transitions, fmt.Sprintf("%s->%s", from, to))
		},
	}
	b := NewBreaker("http://primary", opts)

	script := []step{
		// Three failures among the first three calls: under MinSamples
		// after 2, at threshold on the 4th sample.
		{allow: true, record: true, success: false, wantState: BreakerClosed},
		{allow: true, record: true, success: true, wantState: BreakerClosed},
		{allow: true, record: true, success: false, wantState: BreakerClosed},
		// 4th sample: 3/4 failures ≥ 0.5 → opens.
		{allow: true, record: true, success: false, wantState: BreakerOpen},
		// Open: refused until the timeout elapses.
		{advance: 50 * time.Millisecond, allow: false, wantState: BreakerOpen},
		// Timeout elapsed: half-open, one probe admitted...
		{advance: 50 * time.Millisecond, allow: true, wantState: BreakerHalfOpen},
		// ...and only one: a second concurrent probe is refused.
		{allow: false, wantState: BreakerHalfOpen},
	}
	for i, s := range script {
		if s.advance > 0 {
			clock.Advance(s.advance)
		}
		if got := b.Allow(); got != s.allow {
			t.Fatalf("step %d: Allow = %v, want %v", i, got, s.allow)
		}
		if s.allow && s.record {
			b.Record(s.success)
		}
		if got := b.State(); got != s.wantState {
			t.Fatalf("step %d: state = %v, want %v", i, got, s.wantState)
		}
	}

	// Probe fails → re-open with a fresh timeout.
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("after failed probe: state = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("freshly re-opened breaker admitted a call")
	}

	// Second probe round succeeds → closed, with a clean window.
	clock.Advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("probe not admitted after re-open timeout")
	}
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", got)
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("after successful probe: state = %v, want closed", got)
	}
	// The reset window means one failure cannot re-open it.
	if !b.Allow() {
		t.Fatal("closed breaker refused a call")
	}
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("one failure after reset re-opened the breaker: %v", got)
	}

	want := []string{
		"closed->open",
		"open->half-open",
		"half-open->open",
		"open->half-open",
		"half-open->closed",
	}
	if strings.Join(transitions, ",") != strings.Join(want, ",") {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	b := NewBreaker("ep", BreakerOptions{Window: 4, FailureThreshold: 0.5, MinSamples: 4})
	// Two failures that never share a window (threshold 0.5 of 4 needs two
	// together) must not open the breaker: the first slides out before the
	// second arrives.
	outcomes := []bool{false, true, true, true, false, true}
	for _, ok := range outcomes {
		if !b.Allow() {
			t.Fatal("breaker refused mid-sequence")
		}
		b.Record(ok)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed (failures aged out)", got)
	}
}

func TestGroupInterceptor(t *testing.T) {
	clock := newFakeClock()
	g := NewGroup(BreakerOptions{
		Window: 2, FailureThreshold: 0.5, MinSamples: 2,
		OpenTimeout: time.Minute, Now: clock.Now,
	})
	boom := errors.New("transport down")
	fail := true
	chain := pipeline.NewChain(g.Interceptor())
	call := func() error {
		c := &pipeline.Call{Ctx: context.Background(), Service: "Echo"}
		c.SetMeta(MetaEndpoint, "http://primary")
		return chain.Run(c, func(c *pipeline.Call) error {
			if fail {
				return boom
			}
			return nil
		})
	}
	if err := call(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	if err := call(); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
	// Breaker is open now: terminal must not run.
	var open *BreakerOpenError
	if err := call(); !errors.As(err, &open) || open.Endpoint != "http://primary" {
		t.Fatalf("err = %v, want BreakerOpenError for http://primary", err)
	}
	if !g.Healthy("http://other") {
		t.Fatal("unknown endpoint reported unhealthy")
	}
	if g.Healthy("http://primary") {
		t.Fatal("open endpoint reported healthy")
	}
	// Probe after the timeout heals it.
	clock.Advance(time.Minute)
	fail = false
	if err := call(); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if st := g.Snapshot()["http://primary"]; st != BreakerClosed {
		t.Fatalf("state after probe = %v, want closed", st)
	}
}

func TestGroupInterceptorRespectsHandledFlag(t *testing.T) {
	g := NewGroup(BreakerOptions{Window: 2, FailureThreshold: 0.5, MinSamples: 1})
	chain := pipeline.NewChain(g.Interceptor())
	boom := errors.New("boom")
	for i := 0; i < 5; i++ {
		c := &pipeline.Call{Ctx: context.Background(), Service: "Echo"}
		c.SetMeta(MetaEndpoint, "http://primary")
		c.SetMeta(MetaBreakerHandled, true)
		if err := chain.Run(c, func(c *pipeline.Call) error { return boom }); !errors.Is(err, boom) {
			t.Fatalf("err = %v", err)
		}
	}
	if len(g.Snapshot()) != 0 {
		t.Fatalf("interceptor recorded outcomes despite the handled flag: %v", g.Snapshot())
	}
}

// ---------------------------------------------------------------------------
// Admission

func TestAdmissionShedsBeyondQueue(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxConcurrent: 2, MaxQueue: 0, RetryAfter: 3 * time.Second})
	ctx := context.Background()
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := a.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	err := a.Acquire(ctx)
	o, ok := AsOverload(err)
	if !ok {
		t.Fatalf("err = %v, want OverloadError", err)
	}
	if o.RetryAfterSeconds() != 3 {
		t.Fatalf("RetryAfterSeconds = %d, want 3", o.RetryAfterSeconds())
	}
	a.Release()
	a.Release()
	s := a.Stats()
	if s.InFlight != 0 || s.Admitted != 2 || s.Shed != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestAdmissionQueuedCallRespectsDeadline(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxConcurrent: 1, MaxQueue: 4})
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer a.Release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := a.Acquire(ctx)
	if _, ok := AsOverload(err); !ok {
		t.Fatalf("err = %v, want OverloadError", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want to wrap context.DeadlineExceeded", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("queued call waited %v past its deadline", waited)
	}
	if q := a.Stats().Queued; q != 0 {
		t.Fatalf("queued = %d after expired wait, want 0", q)
	}
}

func TestAdmissionQueueHandsOffSlot(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxConcurrent: 1, MaxQueue: 1})
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- a.Acquire(context.Background()) }()
	// Wait for the queuer to be parked, then free the slot.
	deadline := time.Now().Add(2 * time.Second)
	for a.Stats().Queued == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	a.Release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	a.Release()
}

func TestAdmissionDrain(t *testing.T) {
	a := NewAdmission(AdmissionOptions{MaxConcurrent: 2, MaxQueue: 0})
	if err := a.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- a.Drain(ctx)
	}()
	// New work is shed while draining. Until the flag is visible a probe
	// may still be admitted (release and retry) or collide with Drain over
	// the spare slot ("queue full" — retry).
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		err := a.Acquire(context.Background())
		if err == nil {
			a.Release()
			time.Sleep(time.Millisecond)
			continue
		}
		o, ok := AsOverload(err)
		if !ok {
			t.Fatalf("unexpected acquire error: %v", err)
		}
		if o.Reason == "draining" {
			break
		}
		time.Sleep(time.Millisecond)
	}
	a.Release() // the in-flight dispatch finishes
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestOverloadFaultCarriesRetryAfter(t *testing.T) {
	o := &OverloadError{Reason: "queue full", RetryAfter: 1500 * time.Millisecond}
	f := o.Fault()
	if f.Code != soap.FaultServer {
		t.Fatalf("fault code = %v, want Server", f.Code)
	}
	if f.Detail == nil || f.Detail.TrimmedText() != "2" {
		t.Fatalf("fault detail = %v, want retryAfterSeconds 2", f.Detail)
	}
}

// ---------------------------------------------------------------------------
// Injector

type countTransport struct {
	scheme string
	calls  int
}

func (c *countTransport) Scheme() string { return c.scheme }
func (c *countTransport) Call(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	c.calls++
	return &transport.Response{Body: req.Body}, nil
}

func TestInjectorDeterminism(t *testing.T) {
	run := func() []bool {
		in := NewInjector(7)
		in.SetPlans(FaultPlan{Endpoint: "http://", ErrorRate: 0.4})
		out := make([]bool, 0, 64)
		for i := 0; i < 64; i++ {
			err := in.apply(context.Background(), "http://primary/Echo")
			out = append(out, err != nil)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	faults := 0
	for _, f := range a {
		if f {
			faults++
		}
	}
	if faults == 0 || faults == len(a) {
		t.Fatalf("fault mix = %d/%d, want a genuine mix at rate 0.4", faults, len(a))
	}
}

func TestInjectorTransportAndMatching(t *testing.T) {
	inner := &countTransport{scheme: "http"}
	in := NewInjector(1)
	in.SetPlans(FaultPlan{Endpoint: "http://bad", ErrorRate: 1})
	tr := in.Transport(inner)
	if tr.Scheme() != "http" {
		t.Fatalf("scheme = %q", tr.Scheme())
	}
	_, err := tr.Call(context.Background(), &transport.Request{Endpoint: "http://bad/Echo"})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if inner.calls != 0 {
		t.Fatal("faulted call reached the inner transport")
	}
	// Non-matching endpoints pass through and consume no randomness.
	if _, err := tr.Call(context.Background(), &transport.Request{Endpoint: "http://good/Echo"}); err != nil {
		t.Fatal(err)
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want 1", inner.calls)
	}
	st := in.Stats()
	if st.Calls != 2 || st.Faults != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInjectorHangRespectsContext(t *testing.T) {
	in := NewInjector(1)
	in.SetPlans(FaultPlan{HangRate: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := in.apply(ctx, "http://blackhole")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("hang outlived its context")
	}
}

// TestInjectorNetsimComposition runs injected latency on the simulator's
// virtual clock and injected drops on a simulated link, and checks the
// whole composition reproduces bit-for-bit from the seeds.
func TestInjectorNetsimComposition(t *testing.T) {
	run := func() (delivered, dropped int64, elapsed time.Duration) {
		sim := netsim.New(11)
		in := NewInjector(12, InjectorOptions{AfterFunc: sim.AfterFunc})
		in.SetPlans(FaultPlan{Endpoint: "b", ErrorRate: 0.3, Latency: 5 * time.Millisecond})
		a, err := sim.NewEndpoint("a")
		if err != nil {
			t.Fatal(err)
		}
		bEP, err := sim.NewEndpoint("b")
		if err != nil {
			t.Fatal(err)
		}
		_ = bEP
		sim.SetLink("a", "b", netsim.Link{Latency: time.Millisecond, Fault: in.LinkFault()})
		for i := 0; i < 50; i++ {
			if err := a.Send("b", []byte("m")); err != nil {
				t.Fatal(err)
			}
		}
		sim.Run(0)
		st := sim.Stats()
		return st.Delivered, st.Dropped, sim.Now()
	}
	d1, x1, t1 := run()
	d2, x2, t2 := run()
	if d1 != d2 || x1 != x2 || t1 != t2 {
		t.Fatalf("same seeds diverged: (%d,%d,%v) vs (%d,%d,%v)", d1, x1, t1, d2, x2, t2)
	}
	if x1 == 0 || d1 == 0 {
		t.Fatalf("delivered=%d dropped=%d, want a mix", d1, x1)
	}
}
