// Package resilience is WSPeer's availability layer: the machinery that
// keeps a peer useful when the substrate under one of its bindings
// degrades. The paper's pluggable-binding design (§III) exists precisely
// so an application can keep invoking a service when one environment
// fails — a P2PS client borrowing another binding's components — and this
// package supplies the four mechanisms that make that automatic:
//
//   - per-endpoint circuit breakers (Breaker, Group): a closed→open→
//     half-open state machine over a sliding window of call outcomes,
//     exposed as a pipeline interceptor and keyed by endpoint identity,
//     so a dead endpoint stops burning retries after a few failures;
//
//   - server-side admission control (Admission): a hard concurrency
//     limit with a bounded, deadline-aware wait queue and load shedding,
//     so a saturated host degrades by refusing work (SOAP Server fault,
//     HTTP 503 + Retry-After) instead of falling over;
//
//   - deterministic fault injection (Injector): a transport.Transport
//     wrapper and pipeline interceptor that injects seeded errors,
//     latency and hangs, with a virtual-time seam (netsim.Simulator's
//     AfterFunc satisfies it) so chaos tests reproduce bit-for-bit;
//
//   - failure classification (Observe, FailureOf): one shared judgment
//     of which errors indict an endpoint — transport breakage and
//     timeouts do; application-level SOAP faults and caller cancellation
//     do not — so breakers, failover and health reporting agree.
//
// The cross-binding failover invoker itself lives in internal/core
// (core.Client.NewFailoverInvocation) because it needs the client's
// invoker table; it drives the breakers defined here.
package resilience

import (
	"context"
	"errors"
	"fmt"

	"wspeer/internal/soap"
)

// Outcome is the resilience layer's judgment of one call attempt.
type Outcome int

const (
	// Success: the endpoint answered. Application-level SOAP faults count
	// here — a fault envelope proves the endpoint is alive and parsing.
	Success Outcome = iota
	// Failure: the endpoint is implicated — transport breakage, an
	// injected fault, a timeout, or an overload shed.
	Failure
	// Skip: the attempt says nothing about the endpoint (the caller
	// cancelled, or a breaker refused the call locally).
	Skip
)

// Classify maps a call attempt's error to an Outcome. This is the single
// definition of "endpoint failure" shared by breakers, failover ordering
// and health events:
//
//   - nil and *soap.Fault → Success (the exchange completed; a fault is
//     the application speaking, not the substrate failing). Overload
//     sheds never reach this arm: over HTTP they travel as 503, which
//     the transport surfaces as a Go error.
//   - context.Canceled → Skip (the caller gave up; the endpoint is not
//     implicated, and recording it would open breakers under load).
//   - BreakerOpenError → Skip (a local refusal, not new evidence).
//   - everything else, context.DeadlineExceeded included → Failure (a
//     black-holed endpoint manifests exactly as a timeout).
func Classify(err error) Outcome {
	if err == nil {
		return Success
	}
	var f *soap.Fault
	if errors.As(err, &f) {
		return Success
	}
	if errors.Is(err, context.Canceled) {
		return Skip
	}
	var open *BreakerOpenError
	if errors.As(err, &open) {
		return Skip
	}
	return Failure
}

// Observe records a call attempt's error on a breaker using the shared
// classification; Skip outcomes leave the window untouched.
func Observe(b *Breaker, err error) {
	switch Classify(err) {
	case Success:
		b.Record(true)
	case Failure:
		b.Record(false)
	}
}

// BreakerOpenError is returned when a circuit breaker refuses a call
// without attempting it.
type BreakerOpenError struct {
	// Endpoint whose breaker is open.
	Endpoint string
}

// Error implements error.
func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("resilience: circuit open for endpoint %s", e.Endpoint)
}

// ErrorClass classifies refusals for the telemetry flight recorder.
func (e *BreakerOpenError) ErrorClass() string { return "breaker-open" }
