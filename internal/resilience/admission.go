package resilience

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"
	"time"

	"wspeer/internal/pipeline"
	"wspeer/internal/soap"
	"wspeer/internal/telemetry"
	"wspeer/internal/xmlutil"
)

// Spine instruments for admission control: lifetime admit/shed counters
// and live depth gauges. Process-wide across controllers, like the rest
// of the spine; per-controller figures stay available via Stats.
var (
	mAdmAdmitted = telemetry.Default().Meter.Counter("resilience.admission.admitted")
	mAdmShed     = telemetry.Default().Meter.Counter("resilience.admission.shed")
	gAdmInflight = telemetry.Default().Meter.Gauge("resilience.admission.inflight")
	gAdmQueued   = telemetry.Default().Meter.Gauge("resilience.admission.queued")
)

// AdmissionOptions tunes server-side admission control.
type AdmissionOptions struct {
	// MaxConcurrent is the hard concurrency limit (default 64). The host
	// never has more than this many dispatches in flight.
	MaxConcurrent int
	// MaxQueue is how many callers may wait for a slot beyond the limit
	// (default 0: shed immediately when saturated).
	MaxQueue int
	// QueueTimeout bounds a queued caller's wait independently of its
	// context deadline (default 0: wait as long as the context allows).
	QueueTimeout time.Duration
	// RetryAfter is the backoff advertised to shed callers (default 1s);
	// httpd turns it into an HTTP Retry-After header.
	RetryAfter time.Duration
}

func (o AdmissionOptions) withDefaults() AdmissionOptions {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// OverloadError is returned to a caller the server refused to admit: the
// queue was full, the caller's wait expired, or the host is draining.
// Over the HTTP binding it becomes a SOAP Server fault carried on a 503
// response with a Retry-After header.
type OverloadError struct {
	// Reason is a short human-readable cause ("queue full", "draining",
	// "queue timeout", "deadline expired while queued").
	Reason string
	// RetryAfter is the advertised backoff.
	RetryAfter time.Duration
	cause      error
}

// NewOverloadError builds an overload refusal with an optional wrapped
// cause (a context error for expired queue waits). Shared by server-side
// admission control and the client-side invocation scheduler, so both
// shed with the same error shape.
func NewOverloadError(reason string, retryAfter time.Duration, cause error) *OverloadError {
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &OverloadError{Reason: reason, RetryAfter: retryAfter, cause: cause}
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("resilience: server overloaded (%s), retry after %s", e.Reason, e.RetryAfter)
}

// Unwrap exposes the underlying cause (a context error for expired
// queue waits), so errors.Is(err, context.DeadlineExceeded) still works.
func (e *OverloadError) Unwrap() error { return e.cause }

// FaultNS is the namespace of resilience-layer SOAP fault details.
const FaultNS = "http://wspeer.dev/resilience"

// RetryAfterSeconds is the advertised backoff rounded up to whole
// seconds, never less than 1 — the value httpd puts in the Retry-After
// header and Fault puts in the detail element.
func (e *OverloadError) RetryAfterSeconds() int {
	s := int((e.RetryAfter + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// Fault renders the overload as a SOAP Server fault whose detail carries
// a <retryAfterSeconds> element — the binding-neutral form of HTTP's
// Retry-After header, used by the P2PS binding where there is no status
// line to carry the backoff.
func (e *OverloadError) Fault() *soap.Fault {
	f := soap.NewFault(soap.FaultServer, "%s", e.Error())
	f.Detail = xmlutil.NewElement(xmlutil.N(FaultNS, "retryAfterSeconds")).
		SetText(strconv.Itoa(e.RetryAfterSeconds()))
	return f
}

// AsOverload unwraps err to an *OverloadError if one is in the chain.
func AsOverload(err error) (*OverloadError, bool) {
	var o *OverloadError
	if errors.As(err, &o) {
		return o, true
	}
	return nil, false
}

// AdmissionStats is a point-in-time admission counter snapshot.
type AdmissionStats struct {
	// InFlight is the number of currently admitted dispatches.
	InFlight int
	// Queued is the number of callers currently waiting for a slot.
	Queued int
	// Admitted counts dispatches ever admitted.
	Admitted int64
	// Shed counts callers refused (full queue, expired wait, draining).
	Shed int64
}

// Admission is a server-side admission controller: a semaphore capping
// concurrent dispatches, fronted by a bounded, deadline-aware wait queue.
// Callers past the queue bound — or whose wait outlives QueueTimeout or
// their context deadline — are shed with *OverloadError instead of piling
// onto a saturated host. Drain flips it into shutdown mode: new work is
// shed and Drain returns once in-flight dispatches finish.
type Admission struct {
	opts AdmissionOptions
	sem  chan struct{}

	queued   atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
	draining atomic.Bool
}

// NewAdmission returns an admission controller with no dispatches in
// flight.
func NewAdmission(opts AdmissionOptions) *Admission {
	o := opts.withDefaults()
	return &Admission{opts: o, sem: make(chan struct{}, o.MaxConcurrent)}
}

// Options returns the effective (defaulted) options.
func (a *Admission) Options() AdmissionOptions { return a.opts }

// Acquire claims a dispatch slot, queueing within the configured bounds.
// A nil return MUST be balanced by Release. Non-nil returns are always
// *OverloadError; when a queued wait expires against ctx, the error
// wraps ctx.Err().
func (a *Admission) Acquire(ctx context.Context) error {
	if a.draining.Load() {
		return a.refuse("draining", nil)
	}
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		mAdmAdmitted.Inc()
		gAdmInflight.Add(1)
		return nil
	default:
	}
	// Saturated: join the wait queue if there is room.
	for {
		n := a.queued.Load()
		if n >= int64(a.opts.MaxQueue) {
			return a.refuse("queue full", nil)
		}
		if a.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	gAdmQueued.Add(1)
	defer func() {
		a.queued.Add(-1)
		gAdmQueued.Add(-1)
	}()

	var timeout <-chan time.Time
	if a.opts.QueueTimeout > 0 {
		t := time.NewTimer(a.opts.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case a.sem <- struct{}{}:
		if a.draining.Load() {
			<-a.sem
			return a.refuse("draining", nil)
		}
		a.admitted.Add(1)
		mAdmAdmitted.Inc()
		gAdmInflight.Add(1)
		return nil
	case <-ctx.Done():
		return a.refuse("deadline expired while queued", ctx.Err())
	case <-timeout:
		return a.refuse("queue timeout", nil)
	}
}

// Release returns a slot claimed by a successful Acquire.
func (a *Admission) Release() {
	<-a.sem
	gAdmInflight.Add(-1)
}

func (a *Admission) refuse(reason string, cause error) error {
	a.shed.Add(1)
	mAdmShed.Inc()
	return &OverloadError{Reason: reason, RetryAfter: a.opts.RetryAfter, cause: cause}
}

// Stats returns a point-in-time snapshot of the controller.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		InFlight: len(a.sem),
		Queued:   int(a.queued.Load()),
		Admitted: a.admitted.Load(),
		Shed:     a.shed.Load(),
	}
}

// Drain puts the controller into shutdown mode — all new work is shed —
// and blocks until every in-flight dispatch has released its slot or ctx
// expires. Hosts call it before closing their listeners so accepted work
// finishes cleanly.
func (a *Admission) Drain(ctx context.Context) error {
	a.draining.Store(true)
	// Claiming every slot proves no dispatch is still holding one.
	held := 0
	defer func() {
		for ; held > 0; held-- {
			<-a.sem
		}
	}()
	for i := 0; i < a.opts.MaxConcurrent; i++ {
		select {
		case a.sem <- struct{}{}:
			held++
		case <-ctx.Done():
			return fmt.Errorf("resilience: drain interrupted with %d dispatch(es) in flight: %w",
				a.opts.MaxConcurrent-held, ctx.Err())
		}
	}
	return nil
}

// Interceptor exposes admission control as a server-side pipeline stage
// for hosts that run dispatch through a chain themselves; the engine
// integration (Engine.SetAdmission) is the usual wiring and acquires
// before any interceptor runs.
func (a *Admission) Interceptor() pipeline.Interceptor {
	return func(next pipeline.CallFunc) pipeline.CallFunc {
		return func(c *pipeline.Call) error {
			if err := a.Acquire(c.Ctx); err != nil {
				return err
			}
			defer a.Release()
			return next(c)
		}
	}
}
