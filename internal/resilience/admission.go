package resilience

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"wspeer/internal/pipeline"
	"wspeer/internal/soap"
	"wspeer/internal/telemetry"
	"wspeer/internal/xmlutil"
)

// Spine instruments for admission control: lifetime admit/shed counters
// and live depth gauges. Process-wide across controllers, like the rest
// of the spine; per-controller figures stay available via Stats.
var (
	mAdmAdmitted = telemetry.Default().Meter.Counter("resilience.admission.admitted")
	mAdmShed     = telemetry.Default().Meter.Counter("resilience.admission.shed")
	gAdmInflight = telemetry.Default().Meter.Gauge("resilience.admission.inflight")
	gAdmQueued   = telemetry.Default().Meter.Gauge("resilience.admission.queued")
	gAdmLimit    = telemetry.Default().Meter.Gauge("resilience.admission.limit")
)

// AdmissionOptions tunes server-side admission control.
type AdmissionOptions struct {
	// MaxConcurrent is the hard concurrency limit (default 64). The host
	// never has more than this many dispatches in flight; with Adaptive
	// set it is the upper clamp of the AIMD limit.
	MaxConcurrent int
	// MaxQueue is how many callers may wait for a slot beyond the limit
	// (default 0: shed immediately when saturated).
	MaxQueue int
	// QueueTimeout bounds a queued caller's wait independently of its
	// context deadline (default 0: wait as long as the context allows).
	QueueTimeout time.Duration
	// RetryAfter is the backoff advertised to shed callers before the
	// controller has observed any service latency (default 1s); once
	// completions have been measured the advertised backoff is derived
	// from the live queue state instead. httpd turns it into an HTTP
	// Retry-After header.
	RetryAfter time.Duration
	// Adaptive enables the AIMD concurrency limiter: the effective limit
	// floats between MinConcurrent and MaxConcurrent, halving when queue
	// waits grow past LatencyFactor times the minimum observed service
	// time (the queue is the congestion signal) and creeping up by one
	// per adjustment window while the controller runs saturated.
	Adaptive bool
	// MinConcurrent floors the adaptive limit (default 1).
	MinConcurrent int
	// LatencyFactor is the congestion threshold: an adjustment window
	// whose average queue wait exceeds LatencyFactor × the window's
	// minimum service time triggers multiplicative decrease (default 2).
	LatencyFactor float64
	// AdjustEvery is how many completed dispatches make one AIMD
	// adjustment window (default 16).
	AdjustEvery int
}

func (o AdmissionOptions) withDefaults() AdmissionOptions {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MinConcurrent <= 0 {
		o.MinConcurrent = 1
	}
	if o.MinConcurrent > o.MaxConcurrent {
		o.MinConcurrent = o.MaxConcurrent
	}
	if o.LatencyFactor <= 0 {
		o.LatencyFactor = 2
	}
	if o.AdjustEvery <= 0 {
		o.AdjustEvery = 16
	}
	return o
}

// OverloadError is returned to a caller the server refused to admit: the
// queue was full, the caller's wait expired, or the host is draining.
// Over the HTTP binding it becomes a SOAP Server fault carried on a 503
// response with a Retry-After header.
type OverloadError struct {
	// Reason is a short human-readable cause ("queue full", "draining",
	// "queue timeout", "deadline expired while queued").
	Reason string
	// RetryAfter is the advertised backoff.
	RetryAfter time.Duration
	cause      error
}

// NewOverloadError builds an overload refusal with an optional wrapped
// cause (a context error for expired queue waits). Shared by server-side
// admission control and the client-side invocation scheduler, so both
// shed with the same error shape.
func NewOverloadError(reason string, retryAfter time.Duration, cause error) *OverloadError {
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &OverloadError{Reason: reason, RetryAfter: retryAfter, cause: cause}
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("resilience: server overloaded (%s), retry after %s", e.Reason, e.RetryAfter)
}

// ErrorClass classifies sheds for the telemetry flight recorder.
func (e *OverloadError) ErrorClass() string { return "overload" }

// Unwrap exposes the underlying cause (a context error for expired
// queue waits), so errors.Is(err, context.DeadlineExceeded) still works.
func (e *OverloadError) Unwrap() error { return e.cause }

// RetryAfterHint returns the advertised backoff, satisfying the
// pipeline's RetryAfterHinter so pipeline.Retry floors its next backoff
// on the server's advice.
func (e *OverloadError) RetryAfterHint() time.Duration { return e.RetryAfter }

// FaultNS is the namespace of resilience-layer SOAP fault details.
const FaultNS = "http://wspeer.dev/resilience"

// RetryAfterSeconds is the advertised backoff rounded up to whole
// seconds, never less than 1 — the value httpd puts in the Retry-After
// header and Fault puts in the detail element.
func (e *OverloadError) RetryAfterSeconds() int {
	s := int((e.RetryAfter + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}

// Fault renders the overload as a SOAP Server fault whose detail carries
// a <retryAfterSeconds> element — the binding-neutral form of HTTP's
// Retry-After header, used by the P2PS binding where there is no status
// line to carry the backoff.
func (e *OverloadError) Fault() *soap.Fault {
	f := soap.NewFault(soap.FaultServer, "%s", e.Error())
	f.Detail = xmlutil.NewElement(xmlutil.N(FaultNS, "retryAfterSeconds")).
		SetText(strconv.Itoa(e.RetryAfterSeconds()))
	return f
}

// AsOverload unwraps err to an *OverloadError if one is in the chain.
func AsOverload(err error) (*OverloadError, bool) {
	var o *OverloadError
	if errors.As(err, &o) {
		return o, true
	}
	return nil, false
}

// AdmissionStats is a point-in-time admission counter snapshot.
type AdmissionStats struct {
	// InFlight is the number of currently admitted dispatches.
	InFlight int
	// Queued is the number of callers currently waiting for a slot.
	Queued int
	// Limit is the effective concurrency limit: the AIMD limiter's
	// current value when Adaptive, MaxConcurrent otherwise.
	Limit int
	// Admitted counts dispatches ever admitted.
	Admitted int64
	// Shed counts callers refused (full queue, expired wait, draining).
	Shed int64
}

// Admission is a server-side admission controller: a semaphore capping
// concurrent dispatches, fronted by a bounded, deadline-aware wait queue.
// Callers past the queue bound — or whose wait outlives QueueTimeout or
// their context deadline — are shed with *OverloadError instead of piling
// onto a saturated host. Drain flips it into shutdown mode: new work is
// shed and Drain returns once in-flight dispatches finish.
//
// With Options.Adaptive the effective limit is steered by an AIMD loop
// (see AdmissionOptions); the semaphore keeps MaxConcurrent capacity and
// the limiter parks filler tokens in it to shrink the usable share.
type Admission struct {
	opts AdmissionOptions
	sem  chan struct{}

	queued   atomic.Int64
	admitted atomic.Int64
	shed     atomic.Int64
	draining atomic.Bool

	// amu guards the adaptive state below. limit is the effective
	// concurrency bound; fillers counts tokens parked in sem to shrink
	// usable capacity to limit; debt counts fillers owed but not yet
	// parked because the semaphore was full when the limit dropped
	// (releases pay debt before freeing a slot).
	amu          sync.Mutex
	limit        int
	fillers      int
	debt         int
	window       int
	sumWait      time.Duration
	winMinSvc    time.Duration
	ewmaSvcMicro int64 // EWMA service time in µs; also read via atomic for hints
}

// NewAdmission returns an admission controller with no dispatches in
// flight.
func NewAdmission(opts AdmissionOptions) *Admission {
	o := opts.withDefaults()
	a := &Admission{opts: o, sem: make(chan struct{}, o.MaxConcurrent), limit: o.MaxConcurrent}
	gAdmLimit.Set(int64(a.limit))
	return a
}

// Options returns the effective (defaulted) options.
func (a *Admission) Options() AdmissionOptions { return a.opts }

// Ticket is the receipt for one admitted dispatch. Done releases the slot
// and feeds the dispatch's queue-wait and service-time samples back to
// the adaptive limiter. The zero Ticket is inert.
type Ticket struct {
	a        *Admission
	admitted time.Time
	wait     time.Duration
}

// Done releases the admitted slot, recording the dispatch's service time.
// Call it exactly once per successful Admit.
func (t Ticket) Done() {
	if t.a == nil {
		return
	}
	t.a.release(t.wait, time.Since(t.admitted))
}

// Admit claims a dispatch slot, queueing within the configured bounds,
// and returns a Ticket whose Done releases it. Non-nil errors are always
// *OverloadError; when a queued wait expires against ctx, the error
// wraps ctx.Err().
func (a *Admission) Admit(ctx context.Context) (Ticket, error) {
	wait, err := a.admit(ctx)
	if err != nil {
		return Ticket{}, err
	}
	return Ticket{a: a, admitted: time.Now(), wait: wait}, nil
}

// Acquire claims a dispatch slot, queueing within the configured bounds.
// A nil return MUST be balanced by Release. Unlike Admit it feeds no
// latency samples to the adaptive limiter; hosts should prefer Admit.
func (a *Admission) Acquire(ctx context.Context) error {
	_, err := a.admit(ctx)
	return err
}

// admit is the shared admission path; it returns how long the caller
// waited in the queue (0 on the uncontended fast path).
func (a *Admission) admit(ctx context.Context) (time.Duration, error) {
	if a.draining.Load() {
		return 0, a.refuse(ctx, "draining", nil)
	}
	select {
	case a.sem <- struct{}{}:
		a.admitted.Add(1)
		mAdmAdmitted.Inc()
		gAdmInflight.Add(1)
		return 0, nil
	default:
	}
	// Saturated: join the wait queue if there is room.
	for {
		n := a.queued.Load()
		if n >= int64(a.opts.MaxQueue) {
			return 0, a.refuse(ctx, "queue full", nil)
		}
		if a.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	gAdmQueued.Add(1)
	start := time.Now()
	defer func() {
		a.queued.Add(-1)
		gAdmQueued.Add(-1)
	}()

	var timeout <-chan time.Time
	if a.opts.QueueTimeout > 0 {
		t := time.NewTimer(a.opts.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case a.sem <- struct{}{}:
		if a.draining.Load() {
			<-a.sem
			return 0, a.refuse(ctx, "draining", nil)
		}
		a.admitted.Add(1)
		mAdmAdmitted.Inc()
		gAdmInflight.Add(1)
		return time.Since(start), nil
	case <-ctx.Done():
		return 0, a.refuse(ctx, "deadline expired while queued", ctx.Err())
	case <-timeout:
		return 0, a.refuse(ctx, "queue timeout", nil)
	}
}

// Release returns a slot claimed by a successful Acquire.
func (a *Admission) Release() { a.release(0, 0) }

// release frees a slot, first feeding the dispatch's samples to the
// adaptive loop and paying any filler debt the limiter has accrued.
func (a *Admission) release(wait, service time.Duration) {
	if service > 0 {
		a.observe(wait, service)
	}
	if !a.draining.Load() {
		a.amu.Lock()
		if a.debt > 0 {
			// The limit shrank while the semaphore was full: the freed
			// token stays parked as a filler instead of admitting the
			// next waiter.
			a.debt--
			a.fillers++
			a.amu.Unlock()
			gAdmInflight.Add(-1)
			return
		}
		a.amu.Unlock()
	}
	<-a.sem
	gAdmInflight.Add(-1)
}

// observe feeds one completed dispatch into the latency estimators and,
// when Adaptive, runs the AIMD decision at each window boundary.
func (a *Admission) observe(wait, service time.Duration) {
	if service < time.Microsecond {
		service = time.Microsecond
	}
	a.amu.Lock()
	defer a.amu.Unlock()
	// EWMA service time backs the queue-state Retry-After hint whether or
	// not the limiter is adaptive.
	if a.ewmaSvcMicro == 0 {
		atomic.StoreInt64(&a.ewmaSvcMicro, service.Microseconds())
	} else {
		atomic.StoreInt64(&a.ewmaSvcMicro, a.ewmaSvcMicro+(service.Microseconds()-a.ewmaSvcMicro)/8)
	}
	if !a.opts.Adaptive || a.draining.Load() {
		return
	}
	a.window++
	a.sumWait += wait
	if a.winMinSvc == 0 || service < a.winMinSvc {
		a.winMinSvc = service
	}
	if a.window < a.opts.AdjustEvery {
		return
	}
	avgWait := a.sumWait / time.Duration(a.window)
	minSvc := a.winMinSvc
	a.window, a.sumWait, a.winMinSvc = 0, 0, 0
	switch {
	case avgWait > time.Duration(a.opts.LatencyFactor*float64(minSvc)):
		// Queue waits dwarf the service floor: the queue, not the work,
		// is where callers spend their budget. Halve the limit.
		next := a.limit / 2
		if next < a.opts.MinConcurrent {
			next = a.opts.MinConcurrent
		}
		a.applyLimitLocked(next)
	case a.queued.Load() > 0 || len(a.sem)-a.fillers >= a.limit:
		// Saturated but not congested: probe upward one slot at a time.
		if a.limit < a.opts.MaxConcurrent {
			a.applyLimitLocked(a.limit + 1)
		}
	}
}

// applyLimitLocked moves the effective limit to next by parking or
// unparking filler tokens in the semaphore. Caller holds amu. When the
// semaphore is full (every slot in flight) the shrink is recorded as
// debt, paid as dispatches complete.
func (a *Admission) applyLimitLocked(next int) {
	if next == a.limit {
		return
	}
	target := a.opts.MaxConcurrent - next // fillers (incl. debt) wanted
	for a.fillers+a.debt < target {
		select {
		case a.sem <- struct{}{}:
			a.fillers++
		default:
			a.debt++
		}
	}
	for a.fillers+a.debt > target {
		if a.debt > 0 {
			a.debt--
			continue
		}
		// Fillers are, by the accounting invariant, tokens present in the
		// channel, so this receive never blocks.
		<-a.sem
		a.fillers--
	}
	a.limit = next
	gAdmLimit.Set(int64(next))
}

// retryAfterHint derives the backoff advertised to a shed caller from the
// live queue state: roughly the time the current queue needs to clear at
// the observed service rate. Before any completion has been measured it
// falls back to the configured constant.
func (a *Admission) retryAfterHint() time.Duration {
	ewma := time.Duration(atomic.LoadInt64(&a.ewmaSvcMicro)) * time.Microsecond
	if ewma <= 0 {
		return a.opts.RetryAfter
	}
	a.amu.Lock()
	limit := a.limit
	a.amu.Unlock()
	if limit < 1 {
		limit = 1
	}
	hint := ewma * time.Duration(a.queued.Load()+1) / time.Duration(limit)
	if hint < ewma {
		hint = ewma
	}
	const maxHint = 30 * time.Second
	if hint > maxHint {
		hint = maxHint
	}
	return hint
}

func (a *Admission) refuse(ctx context.Context, reason string, cause error) error {
	a.shed.Add(1)
	mAdmShed.Inc()
	err := &OverloadError{Reason: reason, RetryAfter: a.retryAfterHint(), cause: cause}
	// ctx carries the caller's trace identity when the request arrived
	// with a trace header, so the shed log line joins the caller's trace.
	telemetry.Default().Log.Warn(ctx, "resilience: admission shed request",
		"reason", reason, "retry_after", err.RetryAfter)
	return err
}

// Stats returns a point-in-time snapshot of the controller.
func (a *Admission) Stats() AdmissionStats {
	a.amu.Lock()
	limit := a.limit
	fillers := a.fillers
	a.amu.Unlock()
	inFlight := len(a.sem) - fillers
	if inFlight < 0 {
		inFlight = 0
	}
	return AdmissionStats{
		InFlight: inFlight,
		Queued:   int(a.queued.Load()),
		Limit:    limit,
		Admitted: a.admitted.Load(),
		Shed:     a.shed.Load(),
	}
}

// Drain puts the controller into shutdown mode — all new work is shed —
// and blocks until every in-flight dispatch has released its slot or ctx
// expires. Hosts call it before closing their listeners so accepted work
// finishes cleanly.
func (a *Admission) Drain(ctx context.Context) error {
	a.draining.Store(true)
	// Adopt the limiter's parked fillers as already-held slots and stop
	// the adaptive bookkeeping: from here releases always free real
	// tokens.
	a.amu.Lock()
	held := a.fillers
	a.fillers, a.debt = 0, 0
	a.amu.Unlock()
	// Claiming every slot proves no dispatch is still holding one.
	defer func() {
		for ; held > 0; held-- {
			<-a.sem
		}
	}()
	for held < a.opts.MaxConcurrent {
		select {
		case a.sem <- struct{}{}:
			held++
		case <-ctx.Done():
			return fmt.Errorf("resilience: drain interrupted with %d dispatch(es) in flight: %w",
				a.opts.MaxConcurrent-held, ctx.Err())
		}
	}
	return nil
}

// Interceptor exposes admission control as a server-side pipeline stage
// for hosts that run dispatch through a chain themselves; the engine
// integration (Engine.SetAdmission) is the usual wiring and admits
// before any interceptor runs.
func (a *Admission) Interceptor() pipeline.Interceptor {
	return func(next pipeline.CallFunc) pipeline.CallFunc {
		return func(c *pipeline.Call) error {
			tk, err := a.Admit(c.Ctx)
			if err != nil {
				return err
			}
			defer tk.Done()
			return next(c)
		}
	}
}
