package resilience

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"wspeer/internal/pipeline"
	"wspeer/internal/transport"
)

// ErrInjected is the sentinel wrapped by every injector-produced error,
// so tests can assert errors.Is(err, ErrInjected).
var ErrInjected = errors.New("resilience: injected fault")

// FaultPlan describes the faults to inject for matching endpoints. Rates
// are probabilities in [0,1]; a call can draw both latency and an error.
type FaultPlan struct {
	// Endpoint matches calls whose endpoint identity has this prefix
	// ("" matches every call).
	Endpoint string
	// ErrorRate is the probability the call fails with ErrInjected.
	ErrorRate float64
	// HangRate is the probability the call blocks until its context is
	// done — the black-holed-peer case.
	HangRate float64
	// Latency is added to every matching call.
	Latency time.Duration
	// Jitter adds a uniform random extra delay in [0, Jitter).
	Jitter time.Duration
}

// InjectorOptions configures an Injector.
type InjectorOptions struct {
	// AfterFunc schedules fn after delay d and returns a cancel func. It
	// defaults to real timers (time.AfterFunc); netsim.Simulator.AfterFunc
	// satisfies it, so injected latency can elapse in virtual time.
	AfterFunc func(d time.Duration, fn func()) func()
}

// InjectorStats counts what the injector has done.
type InjectorStats struct {
	// Calls is how many calls were inspected.
	Calls int64
	// Faults is how many calls received an injected error.
	Faults int64
	// Hangs is how many calls were blocked until context cancellation.
	Hangs int64
	// Delayed is how many calls received injected latency.
	Delayed int64
}

// Injector deterministically injects faults into calls: all randomness
// flows from one seeded source, and a given plan set draws a fixed number
// of values per matching call, so the same seed and call sequence
// reproduce the same faults bit-for-bit. It wraps transports (Transport),
// installs as a pipeline interceptor (Interceptor), and plugs into
// netsim links (LinkFault).
type Injector struct {
	after func(d time.Duration, fn func()) func()

	mu    sync.Mutex
	rng   *rand.Rand
	plans []FaultPlan
	stats InjectorStats
}

// NewInjector returns an injector with no plans drawing from the seed.
func NewInjector(seed int64, opts ...InjectorOptions) *Injector {
	in := &Injector{rng: rand.New(rand.NewSource(seed))}
	if len(opts) > 0 && opts[0].AfterFunc != nil {
		in.after = opts[0].AfterFunc
	} else {
		in.after = func(d time.Duration, fn func()) func() {
			t := time.AfterFunc(d, fn)
			return func() { t.Stop() }
		}
	}
	return in
}

// SetPlans replaces the active fault plans. The first plan whose Endpoint
// prefix matches a call decides its faults; calls matching no plan pass
// through without consuming randomness.
func (in *Injector) SetPlans(plans ...FaultPlan) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.plans = append([]FaultPlan(nil), plans...)
}

// Stats returns a snapshot of the injection counters.
func (in *Injector) Stats() InjectorStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// decision is the outcome of one deterministic draw.
type decision struct {
	fail  bool
	hang  bool
	delay time.Duration
}

// decide draws the call's fate. For a given plan configuration every
// matching call consumes the same number of random values regardless of
// outcome, keeping the stream aligned across runs.
func (in *Injector) decide(endpoint string) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.stats.Calls++
	var plan *FaultPlan
	for i := range in.plans {
		if strings.HasPrefix(endpoint, in.plans[i].Endpoint) {
			plan = &in.plans[i]
			break
		}
	}
	if plan == nil {
		return decision{}
	}
	var d decision
	d.fail = in.rng.Float64() < plan.ErrorRate
	d.hang = in.rng.Float64() < plan.HangRate
	d.delay = plan.Latency
	if plan.Jitter > 0 {
		d.delay += time.Duration(in.rng.Int63n(int64(plan.Jitter)))
	}
	if d.fail {
		in.stats.Faults++
	}
	if d.hang {
		in.stats.Hangs++
	}
	if d.delay > 0 {
		in.stats.Delayed++
	}
	return d
}

// apply executes a decision against the call's context: injected latency
// elapses on the configured clock, hangs block until the context is done,
// and failures return an error wrapping ErrInjected.
func (in *Injector) apply(ctx context.Context, endpoint string) error {
	d := in.decide(endpoint)
	if d.delay > 0 {
		elapsed := make(chan struct{})
		cancel := in.after(d.delay, func() { close(elapsed) })
		select {
		case <-elapsed:
		case <-ctx.Done():
			cancel()
			return ctx.Err()
		}
	}
	if d.hang {
		<-ctx.Done()
		return ctx.Err()
	}
	if d.fail {
		return fmt.Errorf("%w for endpoint %s", ErrInjected, endpoint)
	}
	return nil
}

// faultTransport decorates an inner transport with injection.
type faultTransport struct {
	in    *Injector
	inner transport.Transport
}

// Transport wraps a transport so every Call consults the injector before
// touching the wire. Register the wrapped transport in a binding's
// Registry to chaos-test the real client path.
func (in *Injector) Transport(inner transport.Transport) transport.Transport {
	return &faultTransport{in: in, inner: inner}
}

// Scheme implements transport.Transport.
func (t *faultTransport) Scheme() string { return t.inner.Scheme() }

// Call implements transport.Transport.
func (t *faultTransport) Call(ctx context.Context, req *transport.Request) (*transport.Response, error) {
	if err := t.in.apply(ctx, req.Endpoint); err != nil {
		return nil, err
	}
	return t.inner.Call(ctx, req)
}

// Interceptor exposes the injector as a pipeline stage, for faulting
// calls that never reach a wrapped transport (server dispatch, in-memory
// paths). Keyed by the same endpoint identity as the breakers.
func (in *Injector) Interceptor() pipeline.Interceptor {
	return func(next pipeline.CallFunc) pipeline.CallFunc {
		return func(c *pipeline.Call) error {
			if err := in.apply(c.Ctx, EndpointOf(c)); err != nil {
				return err
			}
			return next(c)
		}
	}
}

// LinkFault adapts the injector to netsim's per-link fault hook
// (Link.Fault): injected errors and hangs become message drops — in
// datagram semantics a black-holed message simply never arrives — and
// injected latency becomes extra propagation delay, all on the
// simulator's virtual clock.
func (in *Injector) LinkFault() func(from, to string, data []byte) (drop bool, extra time.Duration) {
	return func(from, to string, data []byte) (bool, time.Duration) {
		d := in.decide(to)
		return d.fail || d.hang, d.delay
	}
}
