package pipeline

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wspeer/internal/transport"
)

// fakeBudget is a test RetryBudget with a fixed number of grantable
// tokens.
type fakeBudget struct {
	mu      sync.Mutex
	tokens  int
	draws   int
	denied  int
	credits int
}

func (b *fakeBudget) TryDraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		b.denied++
		return false
	}
	b.tokens--
	b.draws++
	return true
}

func (b *fakeBudget) Credit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.credits++
}

func (b *fakeBudget) counts() (draws, denied, credits int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.draws, b.denied, b.credits
}

func hedgeCall() *Call {
	return &Call{Ctx: context.Background(), Dir: ClientCall, Service: "svc", Op: "op"}
}

func TestHedgeFastPrimaryNeverHedges(t *testing.T) {
	var attempts atomic.Int32
	fn := Compose(func(c *Call) error {
		attempts.Add(1)
		c.Response = &transport.Response{Body: []byte("primary")}
		return nil
	}, Hedge(HedgeOptions{Threshold: 50 * time.Millisecond, Hedgeable: func(*Call) bool { return true }}))
	c := hedgeCall()
	if err := fn(c); err != nil {
		t.Fatalf("fast primary: %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (no hedge for a fast primary)", got)
	}
	if c.Response == nil || string(c.Response.Body) != "primary" {
		t.Fatalf("winner's response not copied back: %+v", c.Response)
	}
}

func TestHedgeSlowPrimaryRacedAndLoserCancelled(t *testing.T) {
	primaryCancelled := make(chan struct{})
	var attempts atomic.Int32
	fn := Compose(func(c *Call) error {
		n := attempts.Add(1)
		if HedgeAttempt(c) == 0 {
			_ = n
			// The primary hangs until its context is cancelled by the
			// hedge winning.
			<-c.Ctx.Done()
			close(primaryCancelled)
			return c.Ctx.Err()
		}
		c.Response = &transport.Response{Body: []byte("hedge")}
		return nil
	}, Hedge(HedgeOptions{Threshold: 5 * time.Millisecond, Hedgeable: func(*Call) bool { return true }}))
	c := hedgeCall()
	if err := fn(c); err != nil {
		t.Fatalf("hedged call: %v", err)
	}
	if string(c.Response.Body) != "hedge" {
		t.Fatalf("response = %q, want the hedge's", c.Response.Body)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("attempts = %d, want 2", got)
	}
	select {
	case <-primaryCancelled:
	case <-time.After(2 * time.Second):
		t.Fatalf("losing primary was not cancelled")
	}
}

func TestHedgeDeniedByBudget(t *testing.T) {
	budget := &fakeBudget{tokens: 0}
	var attempts atomic.Int32
	fn := Compose(func(c *Call) error {
		attempts.Add(1)
		time.Sleep(30 * time.Millisecond) // slow enough to want a hedge
		c.Response = &transport.Response{Body: []byte("primary")}
		return nil
	}, Hedge(HedgeOptions{
		Threshold: time.Millisecond,
		Budget:    budget,
		Hedgeable: func(*Call) bool { return true },
	}))
	c := hedgeCall()
	if err := fn(c); err != nil {
		t.Fatalf("call: %v", err)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (hedge denied by budget)", got)
	}
	if _, denied, _ := budget.counts(); denied != 1 {
		t.Fatalf("denied = %d, want 1", denied)
	}
}

func TestHedgeFailureLaunchesNextImmediately(t *testing.T) {
	var attempts atomic.Int32
	start := time.Now()
	fn := Compose(func(c *Call) error {
		if attempts.Add(1) == 1 {
			return errors.New("fast failure")
		}
		c.Response = &transport.Response{Body: []byte("second")}
		return nil
	}, Hedge(HedgeOptions{Threshold: 5 * time.Second, Hedgeable: func(*Call) bool { return true }}))
	c := hedgeCall()
	if err := fn(c); err != nil {
		t.Fatalf("call: %v", err)
	}
	// The second attempt must have launched off the failure, not the 5s
	// threshold timer.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("second attempt waited for the timer (%v elapsed)", elapsed)
	}
	if string(c.Response.Body) != "second" {
		t.Fatalf("response = %q, want the second attempt's", c.Response.Body)
	}
}

func TestHedgeAllAttemptsFailReturnsFirstError(t *testing.T) {
	first := errors.New("first error")
	var attempts atomic.Int32
	fn := Compose(func(c *Call) error {
		if attempts.Add(1) == 1 {
			return first
		}
		return errors.New("later error")
	}, Hedge(HedgeOptions{Threshold: time.Millisecond, MaxHedges: 2, Hedgeable: func(*Call) bool { return true }}))
	c := hedgeCall()
	err := fn(c)
	if !errors.Is(err, first) {
		t.Fatalf("err = %v, want the first attempt's error", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (primary + 2 hedges)", got)
	}
}

func TestHedgeSkipsNonHedgeableCalls(t *testing.T) {
	var sawHedgeMeta atomic.Bool
	fn := Compose(func(c *Call) error {
		if _, ok := c.GetMeta(MetaHedgeAttempt).(int); ok {
			sawHedgeMeta.Store(true)
		}
		return nil
	}, Hedge(HedgeOptions{Threshold: time.Millisecond})) // default: idempotent-only
	if err := fn(hedgeCall()); err != nil {
		t.Fatalf("call: %v", err)
	}
	if sawHedgeMeta.Load() {
		t.Fatalf("non-idempotent call went through the hedging path")
	}
}

func TestHedgeAttemptsSeeDistinctIndices(t *testing.T) {
	var mu sync.Mutex
	seen := map[int]bool{}
	fn := Compose(func(c *Call) error {
		mu.Lock()
		seen[HedgeAttempt(c)] = true
		mu.Unlock()
		if HedgeAttempt(c) == 0 {
			<-c.Ctx.Done() // slow primary
			return c.Ctx.Err()
		}
		return nil
	}, Hedge(HedgeOptions{Threshold: time.Millisecond, Hedgeable: func(*Call) bool { return true }}))
	if err := fn(hedgeCall()); err != nil {
		t.Fatalf("call: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !seen[0] || !seen[1] {
		t.Fatalf("attempt indices = %v, want 0 and 1", seen)
	}
}

func TestHedgeCallerCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	released := make(chan struct{})
	fn := Compose(func(c *Call) error {
		<-c.Ctx.Done()
		close(released)
		return c.Ctx.Err()
	}, Hedge(HedgeOptions{Threshold: time.Hour, Hedgeable: func(*Call) bool { return true }}))
	c := hedgeCall()
	c.Ctx = ctx
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if err := fn(c); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatalf("attempt not released after caller cancellation")
	}
}

func TestRetryDrawsFromBudget(t *testing.T) {
	budget := &fakeBudget{tokens: 1}
	fail := errors.New("boom")
	var attempts int
	fn := Compose(func(c *Call) error {
		attempts++
		return fail
	}, Retry(RetryOptions{
		Attempts:  5,
		BaseDelay: time.Microsecond,
		Budget:    budget,
		Retryable: func(*Call, error) bool { return true },
	}))
	err := fn(hedgeCall())
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v", err)
	}
	// One token: the first retry is granted, the second is denied, so the
	// call stops after 2 attempts instead of 5.
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2 (budget-bounded)", attempts)
	}
	if draws, denied, _ := budget.counts(); draws != 1 || denied != 1 {
		t.Fatalf("draws=%d denied=%d, want 1/1", draws, denied)
	}
}

func TestRetryReadsBudgetFromMeta(t *testing.T) {
	budget := &fakeBudget{tokens: 0}
	fail := errors.New("boom")
	var attempts int
	fn := Compose(func(c *Call) error {
		attempts++
		return fail
	}, Retry(RetryOptions{
		Attempts:  3,
		BaseDelay: time.Microsecond,
		Retryable: func(*Call, error) bool { return true },
	}))
	c := hedgeCall()
	c.SetMeta(MetaRetryBudget, RetryBudget(budget))
	if err := fn(c); !errors.Is(err, fail) {
		t.Fatalf("err = %v", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (Meta budget empty)", attempts)
	}
}

func TestRetryCreditsExplicitBudgetOnSuccess(t *testing.T) {
	budget := &fakeBudget{tokens: 5}
	fn := Compose(func(c *Call) error { return nil }, Retry(RetryOptions{Budget: budget}))
	if err := fn(hedgeCall()); err != nil {
		t.Fatalf("call: %v", err)
	}
	if _, _, credits := budget.counts(); credits != 1 {
		t.Fatalf("credits = %d, want 1", credits)
	}
}

// hintedError carries a server-advertised backoff.
type hintedError struct{ hint time.Duration }

func (e *hintedError) Error() string                 { return "overloaded" }
func (e *hintedError) RetryAfterHint() time.Duration { return e.hint }

func TestRetryHonorsRetryAfterHintAsFloor(t *testing.T) {
	var slept []time.Duration
	fail := &hintedError{hint: 700 * time.Millisecond}
	fn := Compose(func(c *Call) error { return fail }, Retry(RetryOptions{
		Attempts:  2,
		BaseDelay: time.Millisecond,
		Jitter:    0, // deterministic delays
		Retryable: func(*Call, error) bool { return true },
		sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}))
	if err := fn(hedgeCall()); !errors.Is(err, error(fail)) {
		t.Fatalf("err = %v", err)
	}
	if len(slept) != 1 || slept[0] != 700*time.Millisecond {
		t.Fatalf("slept = %v, want the server's 700ms floor over the 1ms base", slept)
	}
}

func TestRetryHintBelowBackoffIsIgnored(t *testing.T) {
	var slept []time.Duration
	fail := &hintedError{hint: time.Millisecond}
	fn := Compose(func(c *Call) error { return fail }, Retry(RetryOptions{
		Attempts:  2,
		BaseDelay: 100 * time.Millisecond,
		Jitter:    0,
		Retryable: func(*Call, error) bool { return true },
		sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil
		},
	}))
	if err := fn(hedgeCall()); !errors.Is(err, error(fail)) {
		t.Fatalf("err = %v", err)
	}
	if len(slept) != 1 || slept[0] != 100*time.Millisecond {
		t.Fatalf("slept = %v, want the 100ms backoff to win over a 1ms hint", slept)
	}
}

func TestCallCloneIsolation(t *testing.T) {
	c := hedgeCall()
	c.SetMeta("k", "orig")
	cp := c.Clone(context.Background())
	cp.SetMeta("k", "copy")
	cp.SetMeta("extra", 1)
	if got := c.GetMeta("k"); got != "orig" {
		t.Fatalf("clone mutation leaked into the original: %v", got)
	}
	if got := c.GetMeta("extra"); got != nil {
		t.Fatalf("clone-only key leaked into the original: %v", got)
	}
}
