package pipeline

import (
	"context"
	"time"

	"wspeer/internal/telemetry"
)

var (
	mHedgeLaunched = telemetry.Default().Meter.Counter("pipeline.hedge.launched")
	mHedgeWins     = telemetry.Default().Meter.Counter("pipeline.hedge.wins")
	mHedgeDenied   = telemetry.Default().Meter.Counter("pipeline.hedge.denied")
)

// MetaHedgeAttempt is the Meta key carrying an attempt's index (int,
// 0 for the primary). Terminals that fan attempts across endpoints read
// it with HedgeAttempt to pick a distinct target per attempt.
const MetaHedgeAttempt = "pipeline.hedge.attempt"

// HedgeAttempt returns the call's hedge attempt index: 0 for the primary
// attempt (or any call that never passed through Hedge), 1 for the first
// hedge, and so on.
func HedgeAttempt(c *Call) int {
	v, _ := c.GetMeta(MetaHedgeAttempt).(int)
	return v
}

// MetaHedges is the Meta key counting the hedge attempts a logical call
// launched beyond its primary (int; absent when it never hedged). Hedge
// stamps it on the shared carrier as the race settles; the flight
// recorder reads it back through HedgesLaunched.
const MetaHedges = "pipeline.hedge.count"

// HedgesLaunched returns how many hedge attempts the call launched (0
// for unhedged calls).
func HedgesLaunched(c *Call) int {
	v, _ := c.GetMeta(MetaHedges).(int)
	return v
}

// HedgeOptions tunes the Hedge interceptor.
type HedgeOptions struct {
	// Threshold is how long the primary attempt may run before a hedge is
	// launched (default 50ms). Ignored when ThresholdFunc is set.
	Threshold time.Duration
	// ThresholdFunc, when set, derives the threshold per call — typically
	// from observed tail latency (core seeds it with the service's client
	// p99 from the telemetry call table). A non-positive return falls back
	// to Threshold.
	ThresholdFunc func(c *Call) time.Duration
	// MaxHedges caps the extra attempts beyond the primary (default 1).
	MaxHedges int
	// Budget, when set, gates every hedge launch: a hedge only starts if
	// Budget.TryDraw() grants a token, so hedges and retries spend from
	// the same pool and tail-chasing cannot become a load multiplier. Nil
	// falls back to the call's Meta budget (MetaRetryBudget); with
	// neither, hedges are unbudgeted.
	Budget RetryBudget
	// Hedgeable decides whether a call may hedge at all. The default
	// hedges only calls flagged with MarkIdempotent — a hedge is a
	// retransmission that can execute the operation twice.
	Hedgeable func(c *Call) bool
}

// Hedge returns an interceptor that races a second attempt against a
// slow primary: when the primary has neither succeeded nor failed after
// the threshold, a hedge attempt runs the remainder of the stack on a
// cloned carrier, and the first success wins (losers are cancelled). A
// failed attempt also triggers the next hedge immediately — waiting out
// the threshold after a fast failure would only add latency.
//
// Hedging trades duplicate work for tail latency, so it is bounded
// twice: MaxHedges caps the fan-out and Budget (shared with Retry) caps
// the aggregate retransmission volume. Launches, wins and budget denials
// are visible on the spine as "pipeline.hedge.launched" / ".wins" /
// ".denied".
func Hedge(opts HedgeOptions) Interceptor {
	if opts.Threshold <= 0 {
		opts.Threshold = 50 * time.Millisecond
	}
	if opts.MaxHedges < 1 {
		opts.MaxHedges = 1
	}
	if opts.Hedgeable == nil {
		opts.Hedgeable = Idempotent
	}
	return func(next CallFunc) CallFunc {
		return func(c *Call) error {
			if !opts.Hedgeable(c) {
				return next(c)
			}
			threshold := opts.Threshold
			if opts.ThresholdFunc != nil {
				if d := opts.ThresholdFunc(c); d > 0 {
					threshold = d
				}
			}
			return runHedged(c, next, threshold, opts)
		}
	}
}

// hedgeResult is one attempt's outcome.
type hedgeResult struct {
	call    *Call
	attempt int
	err     error
}

func runHedged(c *Call, next CallFunc, threshold time.Duration, opts HedgeOptions) error {
	base := c.Ctx
	if base == nil {
		base = context.Background()
	}
	budget := callBudget(c, opts.Budget)
	maxAttempts := opts.MaxHedges + 1

	// Every attempt runs on its own clone under its own cancelable child
	// of the caller's context; results funnel into one buffered channel so
	// losers never block on send.
	results := make(chan hedgeResult, maxAttempts)
	cancels := make([]context.CancelFunc, 0, maxAttempts)
	defer func() {
		for _, cancel := range cancels {
			cancel()
		}
	}()

	launch := func(attempt int) {
		ctx, cancel := context.WithCancel(base)
		cancels = append(cancels, cancel)
		cp := c.Clone(ctx)
		cp.SetMeta(MetaHedgeAttempt, attempt)
		if attempt > 0 {
			mHedgeLaunched.Inc()
			c.Span.Annotatef("hedge: launching attempt %d after %s", attempt, threshold)
		}
		go func() {
			err := next(cp)
			results <- hedgeResult{call: cp, attempt: attempt, err: err}
		}()
	}

	// tryLaunch starts the next attempt if the fan-out and budget allow.
	launched := 0
	tryLaunch := func() bool {
		if launched >= maxAttempts {
			return false
		}
		if launched > 0 && budget != nil && !budget.TryDraw() {
			mHedgeDenied.Inc()
			c.Span.Annotate("hedge: budget exhausted, not hedging")
			launched = maxAttempts // no budget now → don't keep asking
			return false
		}
		launch(launched)
		launched++
		return true
	}

	outstanding := 0
	if tryLaunch() { // primary, never budget-gated
		outstanding++
	}

	timer := time.NewTimer(threshold)
	defer timer.Stop()

	finish := func(res hedgeResult) error {
		// Copy the winning attempt's carrier state back onto the shared
		// Call so downstream interceptors and the caller see one coherent
		// outcome regardless of which attempt produced it.
		c.Request = res.call.Request
		c.Response = res.call.Response
		for k, v := range res.call.Meta {
			if k == MetaHedgeAttempt {
				continue
			}
			c.SetMeta(k, v)
		}
		if launched > 1 {
			c.SetMeta(MetaHedges, launched-1)
		}
		if res.err == nil && res.attempt > 0 {
			mHedgeWins.Inc()
			c.Span.Annotatef("hedge: attempt %d won", res.attempt)
		}
		return res.err
	}

	var firstErr *hedgeResult
	for {
		select {
		case <-timer.C:
			// The attempts in flight are slow: race another against them,
			// and rearm so each further threshold can add the next (when
			// MaxHedges allows more than one).
			if tryLaunch() {
				outstanding++
				timer.Reset(threshold)
			}
		case res := <-results:
			if res.err == nil {
				return finish(res)
			}
			outstanding--
			if firstErr == nil {
				firstErr = &res
			}
			// A failure frees capacity: launch the next hedge now rather
			// than waiting out the timer.
			if tryLaunch() {
				outstanding++
			}
			if outstanding == 0 {
				return finish(*firstErr)
			}
		case <-base.Done():
			// The caller gave up; attempts are cancelled by the deferred
			// cancels and their sends land in the buffered channel.
			return base.Err()
		}
	}
}
