package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"wspeer/internal/transport"
)

func TestComposeOrder(t *testing.T) {
	var trace []string
	mark := func(name string) Interceptor {
		return func(next CallFunc) CallFunc {
			return func(c *Call) error {
				trace = append(trace, name+"-before")
				err := next(c)
				trace = append(trace, name+"-after")
				return err
			}
		}
	}
	fn := Compose(func(c *Call) error {
		trace = append(trace, "terminal")
		return nil
	}, mark("a"), mark("b"))
	if err := fn(&Call{Ctx: context.Background()}); err != nil {
		t.Fatal(err)
	}
	want := []string{"a-before", "b-before", "terminal", "b-after", "a-after"}
	if fmt.Sprint(trace) != fmt.Sprint(want) {
		t.Fatalf("trace = %v, want %v", trace, want)
	}
}

func TestChainRunRecordsErr(t *testing.T) {
	ch := NewChain()
	boom := errors.New("boom")
	c := &Call{Ctx: context.Background()}
	if err := ch.Run(c, func(*Call) error { return boom }); err != boom {
		t.Fatalf("err = %v", err)
	}
	if c.Err != boom {
		t.Fatalf("c.Err = %v", c.Err)
	}
}

func TestChainUseDuringRun(t *testing.T) {
	// Use may race with Run: the chain snapshots per call.
	ch := NewChain()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				ch.Use(func(next CallFunc) CallFunc { return next })
			}
		}
	}()
	for i := 0; i < 200; i++ {
		c := &Call{Ctx: context.Background()}
		if err := ch.Run(c, func(*Call) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestDeadlineEnforced(t *testing.T) {
	ic := Deadline(10 * time.Millisecond)
	fn := ic(func(c *Call) error {
		select {
		case <-c.Ctx.Done():
			return c.Ctx.Err()
		case <-time.After(5 * time.Second):
			return nil
		}
	})
	c := &Call{Ctx: context.Background()}
	start := time.Now()
	err := fn(c)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("deadline not enforced promptly")
	}
	if c.Ctx.Err() != nil {
		t.Fatal("original context not restored")
	}
}

func TestDeadlineExpiredBeforeCall(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reached := false
	fn := Deadline(time.Hour)(func(c *Call) error { reached = true; return nil })
	if err := fn(&Call{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if reached {
		t.Fatal("terminal ran under a dead context")
	}
}

func TestDeadlineDisabled(t *testing.T) {
	fn := Deadline(0)(func(c *Call) error {
		if _, ok := c.Ctx.Deadline(); ok {
			t.Fatal("disabled Deadline still set a deadline")
		}
		return nil
	})
	if err := fn(&Call{Ctx: context.Background()}); err != nil {
		t.Fatal(err)
	}
}

// TestRetryRecoversTransientFailure is the acceptance check: a terminal
// failing twice with a transient transport error succeeds on the third
// attempt under Retry.
func TestRetryRecoversTransientFailure(t *testing.T) {
	attempts := 0
	terminal := func(c *Call) error {
		attempts++
		if attempts < 3 {
			return fmt.Errorf("transient: connection reset (attempt %d)", attempts)
		}
		c.Response = &transport.Response{Body: []byte("ok")}
		return nil
	}
	fn := Retry(RetryOptions{
		Attempts:  5,
		BaseDelay: time.Microsecond,
		sleep:     func(context.Context, time.Duration) error { return nil },
	})(terminal)
	c := &Call{Ctx: context.Background()}
	MarkIdempotent(c)
	if err := fn(c); err != nil {
		t.Fatalf("retry did not recover: %v", err)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d", attempts)
	}
	if c.Response == nil || string(c.Response.Body) != "ok" {
		t.Fatalf("response = %+v", c.Response)
	}
}

func TestRetryDefaultPolicyIsIdempotentOnly(t *testing.T) {
	attempts := 0
	fn := Retry(RetryOptions{
		Attempts:  4,
		BaseDelay: time.Microsecond,
		sleep:     func(context.Context, time.Duration) error { return nil },
	})(func(c *Call) error {
		attempts++
		return errors.New("always fails")
	})
	// Unmarked call: no retransmission.
	if err := fn(&Call{Ctx: context.Background()}); err == nil {
		t.Fatal("expected error")
	}
	if attempts != 1 {
		t.Fatalf("non-idempotent call attempted %d times", attempts)
	}
	// Marked call: retried up to Attempts.
	attempts = 0
	c := &Call{Ctx: context.Background()}
	MarkIdempotent(c)
	if err := fn(c); err == nil {
		t.Fatal("expected error")
	}
	if attempts != 4 {
		t.Fatalf("idempotent call attempted %d times", attempts)
	}
}

func TestRetryStopsOnContextErrors(t *testing.T) {
	attempts := 0
	fn := Retry(RetryOptions{
		Attempts:  5,
		BaseDelay: time.Microsecond,
		sleep:     func(context.Context, time.Duration) error { return nil },
	})(func(c *Call) error {
		attempts++
		return context.DeadlineExceeded
	})
	c := &Call{Ctx: context.Background()}
	MarkIdempotent(c)
	if err := fn(c); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry after deadline)", attempts)
	}
}

func TestRetryClearsCarrierBetweenAttempts(t *testing.T) {
	attempts := 0
	fn := Retry(RetryOptions{
		Attempts:  2,
		BaseDelay: time.Microsecond,
		Retryable: func(*Call, error) bool { return true },
		sleep:     func(context.Context, time.Duration) error { return nil },
	})(func(c *Call) error {
		attempts++
		if attempts == 1 {
			c.Response = &transport.Response{Body: []byte("partial")}
			return errors.New("failed after partial response")
		}
		if c.Response != nil {
			t.Error("stale response visible to second attempt")
		}
		return nil
	})
	if err := fn(&Call{Ctx: context.Background()}); err != nil {
		t.Fatal(err)
	}
}

// TestRetrySkipsFirstAttemptWhenCancelled: a call whose context is already
// dead gets no first attempt — the terminal (which may not check the
// context promptly, or at all) must never run.
func TestRetrySkipsFirstAttemptWhenCancelled(t *testing.T) {
	attempts := 0
	fn := Retry(RetryOptions{
		Attempts:  3,
		BaseDelay: time.Microsecond,
		Retryable: func(*Call, error) bool { return true },
		sleep:     func(context.Context, time.Duration) error { return nil },
	})(func(c *Call) error {
		attempts++
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := fn(&Call{Ctx: ctx}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if attempts != 0 {
		t.Fatalf("terminal ran %d times for a pre-cancelled call", attempts)
	}
	// A nil context (bare chain usage) must not panic.
	if err := fn(&Call{}); err != nil {
		t.Fatal(err)
	}
}

func TestEventsObservesOncePerLogicalCall(t *testing.T) {
	var events []error
	ic := Events(func(c *Call) { events = append(events, c.Err) })
	retry := Retry(RetryOptions{
		Attempts:  3,
		BaseDelay: time.Microsecond,
		Retryable: func(*Call, error) bool { return true },
		sleep:     func(context.Context, time.Duration) error { return nil },
	})
	attempts := 0
	fn := Compose(func(c *Call) error {
		attempts++
		if attempts < 2 {
			return errors.New("once")
		}
		return nil
	}, ic, retry) // Events outermost
	if err := fn(&Call{Ctx: context.Background()}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0] != nil {
		t.Fatalf("events = %v", events)
	}
}

func TestCallStatsSnapshot(t *testing.T) {
	stats := NewCallStats()
	fn := stats.Interceptor()(func(c *Call) error {
		if c.Service == "Bad" {
			return errors.New("fail")
		}
		return nil
	})
	for i := 0; i < 5; i++ {
		fn(&Call{Ctx: context.Background(), Service: "Echo", Dir: ClientCall})
	}
	for i := 0; i < 2; i++ {
		fn(&Call{Ctx: context.Background(), Service: "Bad", Dir: ServerDispatch})
	}
	snap := stats.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("rows = %d", len(snap))
	}
	bad, echo := snap[0], snap[1] // sorted by name
	if bad.Service != "Bad" || bad.Calls != 2 || bad.Failures != 2 || bad.Dir != ServerDispatch {
		t.Fatalf("bad row = %+v", bad)
	}
	if echo.Service != "Echo" || echo.Calls != 5 || echo.Failures != 0 {
		t.Fatalf("echo row = %+v", echo)
	}
	var bucketTotal int64
	for _, n := range echo.Buckets {
		bucketTotal += n
	}
	if bucketTotal != echo.Calls {
		t.Fatalf("bucket total %d != calls %d", bucketTotal, echo.Calls)
	}
	if echo.MinLatency < 0 || echo.MaxLatency < echo.MinLatency || echo.TotalLatency < echo.MaxLatency {
		t.Fatalf("latency ordering: %+v", echo)
	}
	if got := stats.Service("Echo", ClientCall); got.Calls != 5 {
		t.Fatalf("Service() = %+v", got)
	}
	if got := stats.Service("Nope", ClientCall); got.Calls != 0 {
		t.Fatalf("unseen Service() = %+v", got)
	}
}

func TestCallStatsConcurrent(t *testing.T) {
	stats := NewCallStats()
	fn := stats.Interceptor()(func(*Call) error { return nil })
	var wg sync.WaitGroup
	const goroutines, per = 8, 250
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				fn(&Call{Ctx: context.Background(), Service: "S", Dir: ClientCall})
			}
		}()
	}
	wg.Wait()
	if got := stats.Service("S", ClientCall).Calls; got != goroutines*per {
		t.Fatalf("calls = %d", got)
	}
}

func TestDirectionString(t *testing.T) {
	if ClientCall.String() != "client" || ServerDispatch.String() != "server" {
		t.Fatal("direction strings")
	}
}

func TestMetaLazyAllocation(t *testing.T) {
	c := &Call{}
	if c.GetMeta("x") != nil {
		t.Fatal("empty meta")
	}
	c.SetMeta("x", 7)
	if c.GetMeta("x") != 7 {
		t.Fatal("meta roundtrip")
	}
}
