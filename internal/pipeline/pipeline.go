// Package pipeline is WSPeer's unified call pipeline: a composable
// interceptor abstraction that wraps both directions of the system's
// messaging — client invocation (core Invocation → scheme-selected
// transport) and server dispatch (httpd/p2ps host → engine dispatch).
//
// The paper describes events fired "either side of being processed by the
// underlying messaging system"; this package is the single seam those
// either-sides hang off. A Call is the binding-agnostic carrier that flows
// through a stack of Interceptors toward a terminal CallFunc (the
// transport on the client side, the messaging engine on the server side).
// Each Interceptor wraps the next stage and may short-circuit, mutate the
// carrier, retry the remainder of the stack, or observe the outcome.
//
// Stock interceptors ship in this package: Deadline (per-call timeout
// enforcement), Retry (idempotent-safe retransmission with exponential
// backoff and jitter), Events (one choke point for client/server message
// events) and CallStats (atomic per-service counters and a latency
// histogram). Layers above install them via core.Client.Use,
// engine.Engine.Use, or a binding's Use method.
package pipeline

import (
	"context"
	"sync"

	"wspeer/internal/telemetry"
	"wspeer/internal/transport"
)

// Direction says which side of the messaging system a Call is on.
type Direction int

const (
	// ClientCall is an outbound invocation: application → transport.
	ClientCall Direction = iota
	// ServerDispatch is an inbound hosted request: host → engine.
	ServerDispatch
)

// String returns "client" or "server".
func (d Direction) String() string {
	if d == ServerDispatch {
		return "server"
	}
	return "client"
}

// Call is the carrier that flows through an interceptor stack. Exactly one
// Call exists per logical exchange; interceptors mutate it in place.
type Call struct {
	// Ctx governs the call. Interceptors may swap in derived contexts
	// (Deadline does) but must restore the original before returning.
	Ctx context.Context
	// Dir is the side of the messaging system this call is on.
	Dir Direction
	// Service is the target (client) or hosted (server) service name.
	Service string
	// Op is the operation name. On the server side it is resolved
	// mid-terminal, so pre-terminal interceptors may see it empty.
	Op string
	// Request is the wire-level request when the stage that produced it
	// has run (terminal stages and wire-aware invokers populate it).
	Request *transport.Request
	// Response is the wire-level response, populated by the terminal.
	Response *transport.Response
	// Meta carries cross-interceptor state, lazily allocated (see SetMeta).
	Meta map[string]interface{}
	// Err is the call's recorded outcome: Chain.Run stores the composed
	// stack's error here before returning, so observers installed outside
	// the error return path (Events) see it.
	Err error
	// Span is the call's telemetry span, set by the layer that opened the
	// call (core for client invocations, engine for server dispatches).
	// It is nil when tracing is disabled; interceptors annotate it
	// without nil checks (Span methods are nil-receiver-safe).
	Span *telemetry.Span
}

// SetMeta stores a cross-interceptor value, allocating Meta on first use.
func (c *Call) SetMeta(key string, value interface{}) {
	if c.Meta == nil {
		c.Meta = make(map[string]interface{}, 4)
	}
	c.Meta[key] = value
}

// GetMeta reads a cross-interceptor value ("" key conventions are the
// installing package's business; nil when absent).
func (c *Call) GetMeta(key string) interface{} {
	if c.Meta == nil {
		return nil
	}
	return c.Meta[key]
}

// Clone returns an independent copy of the call running under ctx: the
// scalar fields are copied, Meta is deep-copied so concurrent attempts
// cannot race on each other's state, and the Span is shared (Span methods
// are concurrency- and nil-safe). Hedge uses it to race attempts of one
// logical call without aliasing the carrier.
func (c *Call) Clone(ctx context.Context) *Call {
	cp := *c
	cp.Ctx = ctx
	if c.Meta != nil {
		cp.Meta = make(map[string]interface{}, len(c.Meta)+1)
		for k, v := range c.Meta {
			cp.Meta[k] = v
		}
	}
	return &cp
}

// CallFunc is one stage of the pipeline: it advances the Call and reports
// the outcome. The terminal CallFunc is the stage that actually moves
// bytes (a transport on the client side, the engine on the server side).
type CallFunc func(c *Call) error

// Interceptor wraps the next stage of the pipeline. Implementations may
// call next zero times (short-circuit), once (the common case), or several
// times (Retry).
type Interceptor func(next CallFunc) CallFunc

// Compose wraps terminal with the interceptors; ics[0] is outermost. With
// ics = [a, b], execution order is a-before, b-before, terminal, b-after,
// a-after.
func Compose(terminal CallFunc, ics ...Interceptor) CallFunc {
	fn := terminal
	for i := len(ics) - 1; i >= 0; i-- {
		fn = ics[i](fn)
	}
	return fn
}

// Chain is a mutable, concurrency-safe interceptor stack. Layers that own
// a pipeline (the client side of a peer, the engine's server side) hold a
// Chain and snapshot it per call, so Use may race with in-flight calls.
type Chain struct {
	mu  sync.RWMutex
	ics []Interceptor
}

// NewChain returns a chain preloaded with the given interceptors.
func NewChain(ics ...Interceptor) *Chain {
	return &Chain{ics: append([]Interceptor(nil), ics...)}
}

// Use appends interceptors to the chain. Earlier-installed interceptors
// run outermost.
func (ch *Chain) Use(ics ...Interceptor) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	ch.ics = append(ch.ics, ics...)
}

// Len reports how many interceptors are installed.
func (ch *Chain) Len() int {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	return len(ch.ics)
}

// Interceptors returns a snapshot of the installed stack.
func (ch *Chain) Interceptors() []Interceptor {
	ch.mu.RLock()
	defer ch.mu.RUnlock()
	return append([]Interceptor(nil), ch.ics...)
}

// Run sends the call through a snapshot of the chain into terminal,
// recording the outcome in c.Err as well as returning it.
func (ch *Chain) Run(c *Call, terminal CallFunc) error {
	ch.mu.RLock()
	var fn CallFunc
	if len(ch.ics) == 0 {
		fn = terminal // fast path: no composition, no copying
		ch.mu.RUnlock()
	} else {
		fn = Compose(terminal, ch.ics...)
		ch.mu.RUnlock()
	}
	err := fn(c)
	c.Err = err
	return err
}
