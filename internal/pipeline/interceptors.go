package pipeline

import (
	"context"
	"errors"
	"math/rand"
	"time"

	"wspeer/internal/telemetry"
)

// Telemetry handles for the stock interceptors, bound once at init so the
// hot path is an atomic add with no registry lookup.
var (
	mDeadlineExpired = telemetry.Default().Meter.Counter("pipeline.deadline.expired")
	mRetryAttempts   = telemetry.Default().Meter.Counter("pipeline.retry.attempts")
	mRetryRetries    = telemetry.Default().Meter.Counter("pipeline.retry.retries")
	mRetryPreCancel  = telemetry.Default().Meter.Counter("pipeline.retry.precancelled")
	mRetryBudgetDeny = telemetry.Default().Meter.Counter("pipeline.retry.budget_denied")
)

// RetryBudget is the retransmission token bucket Retry and Hedge draw
// from. It is an interface here so the pipeline stays free of a
// dependency on the resilience package; resilience.RetryBudget is the
// stock implementation.
type RetryBudget interface {
	// TryDraw spends one token, reporting whether the retransmission may
	// proceed.
	TryDraw() bool
	// Credit rewards one successful call with a fraction of a token.
	Credit()
}

// RetryAfterHinter is implemented by errors that carry the server's
// advertised backoff (resilience.OverloadError, the HTTP transport's
// 503 status error). Retry floors its next delay on the hint so clients
// honor the server's advice instead of hammering it on their own
// schedule.
type RetryAfterHinter interface {
	RetryAfterHint() time.Duration
}

// MetaRetryBudget is the Meta key carrying the call's RetryBudget; core
// sets it from the client's configured budget so every Retry/Hedge stage
// in the chain spends from one pool.
const MetaRetryBudget = "pipeline.retry.budget"

// callBudget resolves the budget a stage should draw from: the
// explicitly configured one, else the carrier's.
func callBudget(c *Call, configured RetryBudget) RetryBudget {
	if configured != nil {
		return configured
	}
	b, _ := c.GetMeta(MetaRetryBudget).(RetryBudget)
	return b
}

// MetaRetries is the Meta key counting retransmissions beyond a call's
// first attempt (int; absent until the first retransmission). Retry
// stamps it, the flight recorder reads it back through RetryCount.
const MetaRetries = "pipeline.retry.count"

// RetryCount returns how many times the call was retransmitted (0 when
// it succeeded or failed on the first attempt).
func RetryCount(c *Call) int {
	v, _ := c.GetMeta(MetaRetries).(int)
	return v
}

// MetaIdempotent is the Meta key that marks a call as safe to retry. The
// stock Retry interceptor's default policy only retransmits calls carrying
// it (see Idempotent); callers that know better supply their own Retryable.
const MetaIdempotent = "pipeline.idempotent"

// MarkIdempotent flags the call as safe to retransmit.
func MarkIdempotent(c *Call) { c.SetMeta(MetaIdempotent, true) }

// Idempotent reports whether the call is flagged safe to retransmit.
func Idempotent(c *Call) bool {
	v, _ := c.GetMeta(MetaIdempotent).(bool)
	return v
}

// Deadline returns an interceptor enforcing a per-call timeout: the
// remainder of the stack runs under a context that expires d after the
// call enters this stage. An already-expired context short-circuits
// without reaching the terminal. Non-positive d disables enforcement.
// Expirations are surfaced through the telemetry spine (the
// "pipeline.deadline.expired" counter) and annotated on the call's span.
func Deadline(d time.Duration) Interceptor {
	return func(next CallFunc) CallFunc {
		return func(c *Call) error {
			if d <= 0 {
				return next(c)
			}
			ctx, cancel := context.WithTimeout(c.Ctx, d)
			defer cancel()
			parent := c.Ctx
			c.Ctx = ctx
			defer func() { c.Ctx = parent }()
			if err := ctx.Err(); err != nil {
				mDeadlineExpired.Inc()
				c.Span.Annotate("deadline: expired before dispatch")
				return err
			}
			err := next(c)
			// Attribute timeout-shaped failures to this stage's deadline
			// so callers see DeadlineExceeded rather than a transport's
			// private wrapping of it.
			if err != nil && ctx.Err() != nil && parent.Err() == nil {
				mDeadlineExpired.Inc()
				c.Span.Annotate("deadline: exceeded")
				return ctx.Err()
			}
			return err
		}
	}
}

// RetryOptions tunes the Retry interceptor. The zero value means 3
// attempts, 10ms base delay, 1s cap, half-width jitter, and the default
// idempotent-only policy.
type RetryOptions struct {
	// Attempts is the total number of tries, including the first
	// (default 3; values below 1 behave as 1).
	Attempts int
	// BaseDelay is the backoff before the first retry (default 10ms);
	// each subsequent retry doubles it up to MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 1s).
	MaxDelay time.Duration
	// Jitter is the fraction of each delay randomized away (0..1,
	// default 0.5): delay' = delay * (1 - Jitter*rand).
	Jitter float64
	// Retryable decides whether a failed attempt is retried. The default
	// retries any error except context cancellation/expiry, and only for
	// calls flagged with MarkIdempotent — retransmitting a non-idempotent
	// operation can execute it twice.
	Retryable func(c *Call, err error) bool
	// Budget, when set, gates every retransmission: a retry only proceeds
	// if Budget.TryDraw() grants a token, and each overall success credits
	// a fraction back. Nil falls back to the budget on the call's Meta
	// (MetaRetryBudget, wired by core); with neither, retries are
	// unbudgeted as before.
	Budget RetryBudget
	// sleep is a test seam; nil means a real timer honoring c.Ctx.
	sleep func(ctx context.Context, d time.Duration) error
}

func defaultRetryable(c *Call, err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return Idempotent(c)
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Retry returns an interceptor that retransmits failed calls with
// exponential backoff and jitter. Between attempts the carrier's Response
// and Err are cleared so each attempt runs the inner stack clean. The
// default policy is idempotent-safe: see RetryOptions.Retryable.
//
// Attempts are visible to callers through the spine: every attempt counts
// on "pipeline.retry.attempts", attempts beyond the first on
// "pipeline.retry.retries", calls refused before their first attempt
// because the context was already cancelled on
// "pipeline.retry.precancelled" (the pre-cancel case was previously
// invisible to every observer), and each retransmission is annotated on
// the call's span.
func Retry(opts RetryOptions) Interceptor {
	if opts.Attempts < 1 {
		opts.Attempts = 3
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 10 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = time.Second
	}
	if opts.Jitter < 0 || opts.Jitter > 1 {
		opts.Jitter = 0.5
	}
	if opts.Retryable == nil {
		opts.Retryable = defaultRetryable
	}
	if opts.sleep == nil {
		opts.sleep = sleepCtx
	}
	return func(next CallFunc) CallFunc {
		return func(c *Call) error {
			// A cancelled call gets no first attempt: the caller has
			// already given up, and the terminal may not check promptly.
			if c.Ctx != nil {
				if err := c.Ctx.Err(); err != nil {
					mRetryPreCancel.Inc()
					c.Span.Annotate("retry: refused, context cancelled before first attempt")
					return err
				}
			}
			budget := callBudget(c, opts.Budget)
			delay := opts.BaseDelay
			var err error
			for attempt := 1; ; attempt++ {
				c.Response = nil
				c.Err = nil
				mRetryAttempts.Inc()
				err = next(c)
				if err == nil {
					if opts.Budget != nil {
						// An explicitly configured budget is owned by this
						// stage, so successes credit here. A Meta-carried
						// budget is credited once per logical call by the
						// layer that installed it (core), not per stage.
						opts.Budget.Credit()
					}
					return nil
				}
				if attempt >= opts.Attempts || !opts.Retryable(c, err) {
					return err
				}
				if budget != nil && !budget.TryDraw() {
					mRetryBudgetDeny.Inc()
					c.Span.Annotate("retry: budget exhausted, not retransmitting")
					return err
				}
				mRetryRetries.Inc()
				// Count of retransmissions beyond the first attempt, read by
				// the flight recorder when the logical call completes. Small
				// ints box without allocating, and this is the cold path.
				c.SetMeta(MetaRetries, attempt)
				if c.Span != nil {
					c.Span.Annotatef("retry: attempt %d failed: %v", attempt, err)
				}
				d := delay
				if opts.Jitter > 0 {
					d -= time.Duration(opts.Jitter * rand.Float64() * float64(delay))
				}
				// Honor a server-advertised backoff (Retry-After on a 503,
				// an overload fault's retryAfterSeconds) as the floor: the
				// server knows its queue better than our schedule does.
				var hinter RetryAfterHinter
				if errors.As(err, &hinter) {
					if hint := hinter.RetryAfterHint(); hint > d {
						d = hint
					}
				}
				if serr := opts.sleep(c.Ctx, d); serr != nil {
					return err // context gave out while backing off
				}
				delay *= 2
				if delay > opts.MaxDelay {
					delay = opts.MaxDelay
				}
			}
		}
	}
}

// Events returns an interceptor that reports every completed call to one
// observer — the single choke point the event tree hangs off. The carrier
// reaches the observer with Err recorded; with Events installed outermost
// (core and the bindings install it first) one event fires per logical
// call regardless of inner retries.
func Events(observe func(c *Call)) Interceptor {
	return func(next CallFunc) CallFunc {
		return func(c *Call) error {
			err := next(c)
			c.Err = err
			observe(c)
			return err
		}
	}
}

// numLatencyBuckets counts the histogram buckets: one per bound plus the
// unbounded overflow bucket. The bounds are the telemetry spine's.
const numLatencyBuckets = telemetry.NumBuckets

// LatencyBucketBounds returns the histogram's upper bounds (the final,
// unbounded bucket is not listed — a Snapshot's Buckets slice has one more
// entry than this). They are the telemetry spine's shared bounds.
func LatencyBucketBounds() []time.Duration {
	return telemetry.BucketBounds()
}

// CallStats measures the calls passing through its interceptor:
// per-service, per-direction counts, failures and a latency histogram.
// One CallStats may be installed on several chains; Snapshot aggregates
// everything it has seen.
//
// Deprecated: CallStats is a thin adapter over telemetry.CallTable, kept
// for API compatibility. The Default telemetry hub already maintains an
// always-on table fed by core invocations and engine dispatches — read it
// with telemetry.Default().Calls (or the facade's Snapshot()) instead of
// installing this interceptor.
type CallStats struct {
	table *telemetry.CallTable
}

// NewCallStats returns an empty recorder.
func NewCallStats() *CallStats {
	return &CallStats{table: telemetry.NewCallTable()}
}

// Interceptor returns the measuring stage. Install it inside Retry to
// count individual attempts, outside to count logical calls.
func (s *CallStats) Interceptor() Interceptor {
	return func(next CallFunc) CallFunc {
		return func(c *Call) error {
			start := time.Now()
			err := next(c)
			s.table.Record(c.Service, c.Dir.String(), time.Since(start), err != nil)
			return err
		}
	}
}

// ServiceSnapshot is one service+direction row of a CallStats snapshot.
type ServiceSnapshot struct {
	Service  string
	Dir      Direction
	Calls    int64
	Failures int64
	// TotalLatency summed over all calls; divide by Calls for the mean.
	TotalLatency time.Duration
	MinLatency   time.Duration
	MaxLatency   time.Duration
	// Buckets counts calls at or under each LatencyBucketBounds entry,
	// plus a final overflow bucket.
	Buckets []int64
}

// Mean returns the average latency (0 with no calls).
func (s ServiceSnapshot) Mean() time.Duration {
	if s.Calls == 0 {
		return 0
	}
	return s.TotalLatency / time.Duration(s.Calls)
}

// directionOf maps a telemetry direction string back onto Direction.
func directionOf(dir string) Direction {
	if dir == telemetry.DirServer {
		return ServerDispatch
	}
	return ClientCall
}

func fromCallSnapshot(row telemetry.CallSnapshot) ServiceSnapshot {
	return ServiceSnapshot{
		Service:      row.Service,
		Dir:          directionOf(row.Dir),
		Calls:        row.Calls,
		Failures:     row.Failures,
		TotalLatency: row.TotalLatency,
		MinLatency:   row.MinLatency,
		MaxLatency:   row.MaxLatency,
		Buckets:      row.Buckets,
	}
}

// Snapshot returns a consistent copy of everything recorded so far,
// ordered by service name then direction.
func (s *CallStats) Snapshot() []ServiceSnapshot {
	rows := s.table.Snapshot()
	out := make([]ServiceSnapshot, len(rows))
	for i, row := range rows {
		out[i] = fromCallSnapshot(row)
	}
	return out
}

// Service returns the snapshot row for one service+direction (zero row
// when the pair has not been seen).
func (s *CallStats) Service(service string, dir Direction) ServiceSnapshot {
	row := fromCallSnapshot(s.table.Service(service, dir.String()))
	row.Service, row.Dir = service, dir
	return row
}
