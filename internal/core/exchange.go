package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"wspeer/internal/engine"
	"wspeer/internal/exchange"
	"wspeer/internal/pipeline"
	"wspeer/internal/resilience"
	"wspeer/internal/soap"
	"wspeer/internal/telemetry"
	"wspeer/internal/transport"
	"wspeer/internal/wsaddr"
)

// Exchange-layer instruments: messages sent per pattern and replies that
// arrived at a reply endpoint but could not be parsed at all.
var (
	mOneWaySent     = telemetry.Default().Meter.Counter("exchange.oneway.sent")
	mCallbackSent   = telemetry.Default().Meter.Counter("exchange.callback.sent")
	mReplyUnparsed  = telemetry.Default().Meter.Counter("exchange.reply.unparsed")
	mReplyDelivered = telemetry.Default().Meter.Counter("exchange.reply.in")
)

// ReplyEndpoint is a live inbound endpoint a client hosts to receive
// decoupled replies: the paper's observation that under WS-Addressing "the
// consumer is itself an addressable endpoint" made concrete. Bindings
// create them (an HTTP callback route, a P2PS input pipe, a mem:// handler)
// and the client stamps their EPR as the ReplyTo of callback invocations.
type ReplyEndpoint interface {
	// EPR is the endpoint reference remote services reply to.
	EPR() *wsaddr.EndpointReference
	// Close tears the endpoint down.
	Close() error
}

// CallbackHoster is an optional Invoker extension: invokers that can host a
// reply endpoint on their substrate implement it, which is what makes
// Invocation.InvokeCallback available for their schemes. The deliver
// function receives each raw inbound reply body; implementations must call
// it from at most one goroutine at a time per endpoint.
type CallbackHoster interface {
	// HostReplyEndpoint creates (or starts) a reply endpoint that feeds
	// inbound messages to deliver.
	HostReplyEndpoint(deliver func(body []byte)) (ReplyEndpoint, error)
}

// ExchangeOptions configures the client side of the message-exchange
// layer.
type ExchangeOptions struct {
	// Table bounds the correlation table behind InvokeCallback.
	Table exchange.TableOptions
	// StampRequestResponse, when set, engages the exchange layer on plain
	// Invoke calls too: each request is stamped with a fresh wsa:MessageID
	// and an anonymous wsa:ReplyTo, making explicit that request/response
	// is just a correlated exchange on the transport back channel. Off by
	// default — unstamped request/response is the zero-overhead fast path.
	StampRequestResponse bool
}

// clientExchange is the Client's lazily-built exchange state: the
// correlation table for pending callbacks and one hosted reply endpoint
// per endpoint scheme.
type clientExchange struct {
	mu        sync.Mutex
	opts      ExchangeOptions
	table     *exchange.Table
	endpoints map[string]ReplyEndpoint // by endpoint URI scheme
}

// ConfigureExchange sets the client's exchange-layer options. Call it
// before the first InvokeCallback: the correlation table is built lazily
// on first use and an existing table keeps its original bounds.
func (c *Client) ConfigureExchange(opts ExchangeOptions) {
	c.exch.mu.Lock()
	defer c.exch.mu.Unlock()
	c.exch.opts = opts
}

// exchangeTable returns the client's correlation table, building it on
// first use. Callers hold no locks.
func (c *Client) exchangeTable() *exchange.Table {
	c.exch.mu.Lock()
	defer c.exch.mu.Unlock()
	if c.exch.table == nil {
		c.exch.table = exchange.NewTable(c.exch.opts.Table)
	}
	return c.exch.table
}

// ExchangeStats snapshots the correlation table's counters (zero-valued
// before the first callback invocation).
func (c *Client) ExchangeStats() exchange.TableStats {
	c.exch.mu.Lock()
	t := c.exch.table
	c.exch.mu.Unlock()
	if t == nil {
		return exchange.TableStats{}
	}
	return t.Stats()
}

// CloseExchange tears down the client's exchange state: every hosted reply
// endpoint is closed and every pending callback fails with
// exchange.ErrClosed. The client remains usable for synchronous
// invocation; a later InvokeCallback builds fresh state.
func (c *Client) CloseExchange() error {
	c.exch.mu.Lock()
	t := c.exch.table
	eps := c.exch.endpoints
	c.exch.table = nil
	c.exch.endpoints = nil
	c.exch.mu.Unlock()
	if t != nil {
		t.Close()
	}
	var firstErr error
	for _, ep := range eps {
		if err := ep.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// replyEndpoint returns the client's hosted reply endpoint for a scheme,
// asking the hoster to create one on first use.
func (c *Client) replyEndpoint(scheme string, h CallbackHoster) (ReplyEndpoint, error) {
	c.exch.mu.Lock()
	defer c.exch.mu.Unlock()
	if ep, ok := c.exch.endpoints[scheme]; ok {
		return ep, nil
	}
	ep, err := h.HostReplyEndpoint(c.handleReply)
	if err != nil {
		return nil, err
	}
	if c.exch.endpoints == nil {
		c.exch.endpoints = make(map[string]ReplyEndpoint)
	}
	c.exch.endpoints[scheme] = ep
	return ep, nil
}

// handleReply is the deliver function every hosted reply endpoint feeds:
// parse the envelope, recover the WS-Addressing headers, and route the
// message to its pending exchange by RelatesTo. Unparseable and
// uncorrelatable messages are counted, never fatal — a reply endpoint is
// reachable from the network and must shrug off junk.
func (c *Client) handleReply(body []byte) {
	mReplyDelivered.Inc()
	env, err := soap.Parse(body)
	if err != nil {
		mReplyUnparsed.Inc()
		return
	}
	hdr, err := wsaddr.FromEnvelope(env)
	if err != nil || hdr.RelatesTo == "" {
		mReplyUnparsed.Inc()
		return
	}
	c.exchangeTable().Resolve(hdr.RelatesTo, &exchange.Message{
		Endpoint:    hdr.To,
		Action:      hdr.Action,
		ContentType: env.Version().ContentType(),
		Body:        body,
		Headers:     hdr,
	})
}

// stampExchange engages the exchange layer on a plain request/response
// invocation when the client opted in via StampRequestResponse.
func (c *Client) stampExchange(pc *pipeline.Call) {
	c.exch.mu.Lock()
	stamp := c.exch.opts.StampRequestResponse
	c.exch.mu.Unlock()
	if !stamp {
		return
	}
	pc.SetMeta(exchange.MetaPattern, exchange.RequestResponse)
	pc.SetMeta(exchange.MetaHeaders, &wsaddr.MessageHeaders{
		MessageID: wsaddr.NewMessageID(),
		ReplyTo:   wsaddr.NewEndpointReference(wsaddr.Anonymous),
	})
}

// recordFlight offers one completed client-side call to the Default
// hub's flight recorder, pulling the retry/hedge/pattern annotations the
// pipeline stamped on the carrier. Sampling happens inside the recorder;
// the sampled-out case allocates nothing, which keeps this safe on the
// gated fast path.
func recordFlight(c *pipeline.Call, span *telemetry.Span, start time.Time, elapsed time.Duration, endpoint string, err error) {
	rec := telemetry.CallRecord{
		Time:     start,
		Service:  c.Service,
		Op:       c.Op,
		Dir:      telemetry.DirClient,
		Endpoint: endpoint,
		Latency:  elapsed,
		Retries:  pipeline.RetryCount(c),
		Hedges:   pipeline.HedgesLaunched(c),
	}
	if p, ok := c.GetMeta(exchange.MetaPattern).(exchange.Pattern); ok {
		rec.Pattern = p.String()
	}
	if span != nil {
		sc := span.Context()
		rec.TraceID, rec.SpanID = sc.TraceID, sc.SpanID
	}
	telemetry.Default().Flight.Record(rec, err)
}

// newExchangeCall builds the pipeline carrier for an exchange-layer
// invocation against the primary target, mirroring Invoke's setup.
func (inv *Invocation) newExchangeCall(span *telemetry.Span, op string) *pipeline.Call {
	primary := inv.targets[0]
	c := &pipeline.Call{Dir: pipeline.ClientCall, Service: primary.svc.Name, Op: op, Span: span}
	c.SetMeta(resilience.MetaEndpoint, primary.svc.Endpoint)
	if budget := inv.client.pipelineBudget(); budget != nil {
		c.SetMeta(pipeline.MetaRetryBudget, budget)
	}
	return c
}

// InvokeOneWay sends the operation as a fire-and-forget message through
// the client pipeline: the call returns once the substrate has accepted
// the message (an HTTP 202, a completed pipe write, a completed in-memory
// dispatch) and no reply is ever decoded. The invocation targets the
// primary endpoint only.
func (inv *Invocation) InvokeOneWay(ctx context.Context, op string, params ...engine.Param) error {
	primary := inv.targets[0]
	span, ctx := telemetry.Default().Tracer.StartSpan(ctx, "client.invoke.oneway")
	span.SetService(primary.svc.Name)
	span.SetOp(op)
	span.SetDir(telemetry.DirClient)
	span.SetEndpoint(primary.svc.Endpoint)
	c := inv.newExchangeCall(span, op)
	c.Ctx = ctx
	c.SetMeta(exchange.MetaPattern, exchange.OneWay)
	c.SetMeta(exchange.MetaHeaders, &wsaddr.MessageHeaders{MessageID: wsaddr.NewMessageID()})
	start := time.Now()
	err := inv.client.chain.Run(c, func(c *pipeline.Call) error {
		_, err := invokeTarget(c, primary, op, params)
		return err
	})
	elapsed := time.Since(start)
	telemetry.Default().Calls.Record(primary.svc.Name, telemetry.DirClient, elapsed, err != nil)
	recordFlight(c, span, start, elapsed, primary.svc.Endpoint, err)
	if span != nil {
		span.SetError(err)
		span.End()
	}
	if err == nil {
		mOneWaySent.Inc()
	}
	return err
}

// PendingReply is the application's handle on a callback invocation: the
// request has been sent with a ReplyTo naming a client-hosted endpoint,
// and the decoupled reply (or an expiry/closure error) completes it.
type PendingReply struct {
	future *exchange.Future
	id     string
}

// MessageID returns the wsa:MessageID the reply will relate to.
func (p *PendingReply) MessageID() string { return p.id }

// Done returns a channel closed when the reply (or an error) is ready.
func (p *PendingReply) Done() <-chan struct{} { return p.future.Done() }

// Wait blocks for the decoupled reply and decodes it. A reply that never
// arrives surfaces as *exchange.ExpiredError once its TTL passes; a fault
// reply surfaces as the *soap.Fault error.
func (p *PendingReply) Wait(ctx context.Context) (*engine.Result, error) {
	msg, err := p.future.Wait(ctx)
	if err != nil {
		return nil, err
	}
	env, err := soap.Parse(msg.Body)
	if err != nil {
		return nil, fmt.Errorf("core: callback reply: %w", err)
	}
	return engine.ResultFromEnvelope(env)
}

// InvokeCallback sends the operation with a wsa:ReplyTo naming a reply
// endpoint this client hosts on the target's substrate, and returns
// immediately with a PendingReply: the provider delivers its response as a
// separate message to that endpoint — a different connection for HTTP, a
// different pipe for P2PS — where it is correlated back by wsa:RelatesTo
// (paper §IV-B, figure 6).
//
// The pending exchange is bounded: it expires after the context deadline
// when one is set, else the configured table TTL, and the correlation
// table sheds registrations beyond its capacity with exchange.ErrTableFull.
// The invoker for the primary target's scheme must implement
// CallbackHoster.
func (inv *Invocation) InvokeCallback(ctx context.Context, op string, params ...engine.Param) (*PendingReply, error) {
	primary := inv.targets[0]
	hoster, ok := primary.invoker.(CallbackHoster)
	if !ok {
		return nil, fmt.Errorf("core: invoker for scheme %q cannot host reply endpoints",
			transport.SchemeOf(primary.svc.Endpoint))
	}
	ep, err := inv.client.replyEndpoint(transport.SchemeOf(primary.svc.Endpoint), hoster)
	if err != nil {
		return nil, fmt.Errorf("core: hosting reply endpoint: %w", err)
	}

	var ttl time.Duration
	if dl, ok := ctx.Deadline(); ok {
		ttl = time.Until(dl)
	}
	msgID := wsaddr.NewMessageID()
	table := inv.client.exchangeTable()
	fut, err := table.Register(msgID, ttl)
	if err != nil {
		return nil, err
	}

	span, ctx := telemetry.Default().Tracer.StartSpan(ctx, "client.invoke.callback")
	span.SetService(primary.svc.Name)
	span.SetOp(op)
	span.SetDir(telemetry.DirClient)
	span.SetEndpoint(primary.svc.Endpoint)
	c := inv.newExchangeCall(span, op)
	c.Ctx = ctx
	c.SetMeta(exchange.MetaPattern, exchange.Callback)
	c.SetMeta(exchange.MetaHeaders, &wsaddr.MessageHeaders{MessageID: msgID, ReplyTo: ep.EPR()})
	start := time.Now()
	err = inv.client.chain.Run(c, func(c *pipeline.Call) error {
		_, err := invokeTarget(c, primary, op, params)
		return err
	})
	elapsed := time.Since(start)
	telemetry.Default().Calls.Record(primary.svc.Name, telemetry.DirClient, elapsed, err != nil)
	recordFlight(c, span, start, elapsed, primary.svc.Endpoint, err)
	if span != nil {
		span.SetError(err)
		span.End()
	}
	if err != nil {
		// The request never left (or the substrate rejected it): no reply
		// can arrive, so withdraw the pending entry rather than letting it
		// sit until expiry.
		table.Cancel(msgID)
		return nil, err
	}
	mCallbackSent.Inc()
	return &PendingReply{future: fut, id: msgID}, nil
}
