package core

import (
	"context"
	"fmt"

	"wspeer/internal/engine"
	"wspeer/internal/pipeline"
	"wspeer/internal/wsdl"
)

// ServiceQuery is the abstraction WSPeer uses "to allow for varying kinds
// of query. The simplest ServiceQuery queries on the name of a service"
// (paper §III). Bindings type-switch on the queries they understand;
// every binding must at minimum handle NameQuery.
type ServiceQuery interface {
	// QueryName returns the service name (pattern) being sought, the
	// lowest common denominator all locators understand.
	QueryName() string
}

// NameQuery is the universal query: a service name pattern plus optional
// attribute constraints for locators with attribute-based search.
type NameQuery struct {
	// Name of the sought service. Locators interpret their native
	// wildcard conventions; a bare name always means an exact match.
	Name string
	// Attrs are attribute constraints, honoured by attribute-capable
	// locators (P2PS) and mapped to category bags by UDDI locators when
	// possible.
	Attrs map[string]string
	// MaxResults bounds the result set (0 = unbounded).
	MaxResults int
}

// QueryName implements ServiceQuery.
func (q NameQuery) QueryName() string { return q.Name }

// ExprQuery is the rich query: a predicate in the internal/query language
// (the paper's "more complex queries could be constructed from languages
// such as DAML" extension point). The P2PS binding evaluates it
// in-network; registry-backed locators evaluate it client-side over their
// results.
type ExprQuery struct {
	// Name optionally pre-filters by name pattern for locators that can
	// only search by name server-side ("" or "*" = all).
	Name string
	// Expr is the predicate source, e.g.
	// "name like 'Echo*' and attr(kind) = 'echo'".
	Expr string
}

// QueryName implements ServiceQuery.
func (q ExprQuery) QueryName() string {
	if q.Name == "" {
		return "*"
	}
	return q.Name
}

// ServiceInfo is WSPeer's homogenised description of a located service.
// "The application code deals with WSPeer data structures, not those that
// are transmitted over the wire, so the application does not have to care
// where or how the service has been located" (paper §III).
type ServiceInfo struct {
	// Name of the service.
	Name string
	// Description is optional human documentation.
	Description string
	// Definitions is the service's parsed WSDL.
	Definitions *wsdl.Definitions
	// Endpoint is the resolved endpoint: an http(s)/httpg URL or a
	// p2ps:// URI. Its scheme selects the Invoker.
	Endpoint string
	// Locator names the component that found the service.
	Locator string
	// Meta carries locator-specific string metadata.
	Meta map[string]string
	// Extra carries binding-private data (e.g. the P2PS service
	// advertisement) between a binding's locator and its invoker.
	Extra interface{}
}

// Deployment describes a service the Server has deployed.
type Deployment struct {
	// Service is the engine-side registration.
	Service *engine.Service
	// Endpoint the service is reachable at.
	Endpoint string
	// Definitions bound to the live endpoint.
	Definitions *wsdl.Definitions
	// Deployer names the component that performed the deployment.
	Deployer string
	// Extra carries binding-private deployment state.
	Extra interface{}
}

// ServiceLocator finds services. Implementations stream each located
// service through the found callback and return when the search is
// exhausted, fails, or ctx is done.
type ServiceLocator interface {
	// Name identifies the locator in events.
	Name() string
	// Locate runs the query.
	Locate(ctx context.Context, q ServiceQuery, found func(*ServiceInfo)) error
}

// ServicePublisher makes a deployed service discoverable.
type ServicePublisher interface {
	// Name identifies the publisher in events.
	Name() string
	// Publish announces the deployment, returning a publisher-specific
	// location (registry key, advert ID, ...).
	Publish(ctx context.Context, dep *Deployment) (location string, err error)
	// Unpublish withdraws a previously returned location.
	Unpublish(ctx context.Context, location string) error
}

// ServiceDeployer exposes an engine service definition at an endpoint.
type ServiceDeployer interface {
	// Name identifies the deployer in events.
	Name() string
	// Deploy registers and exposes the service.
	Deploy(def engine.ServiceDef) (*Deployment, error)
	// Undeploy removes the service.
	Undeploy(service string) error
}

// Invoker carries an invocation to a located service. The Client selects
// an invoker by the endpoint's URI scheme.
type Invoker interface {
	// Schemes lists the endpoint URI schemes this invoker serves.
	Schemes() []string
	// Invoke calls an operation; a nil result with nil error signals a
	// one-way operation.
	Invoke(ctx context.Context, svc *ServiceInfo, op string, params []engine.Param) (*engine.Result, error)
}

// CallInvoker is an optional Invoker extension for wire-aware invokers.
// The client pipeline prefers InvokeCall when available: the invoker runs
// under the carrier's (possibly interceptor-derived) context c.Ctx and
// publishes its wire-level exchange on c.Request/c.Response, so
// interceptors like CallStats and Events see the actual bytes moved by
// the scheme-selected transport.
type CallInvoker interface {
	Invoker
	// InvokeCall behaves like Invoke but reads its context from, and
	// records the exchange on, the pipeline carrier.
	InvokeCall(c *pipeline.Call, svc *ServiceInfo, op string, params []engine.Param) (*engine.Result, error)
}

// ErrNoLocator is returned when a Client has no locator registered.
var ErrNoLocator = fmt.Errorf("core: no ServiceLocator registered")

// ErrNoDeployer is returned when a Server has no deployer registered.
var ErrNoDeployer = fmt.Errorf("core: no ServiceDeployer registered")
