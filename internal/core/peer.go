package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"wspeer/internal/engine"
	"wspeer/internal/pipeline"
	"wspeer/internal/resilience"
	"wspeer/internal/resolve"
	"wspeer/internal/telemetry"
	"wspeer/internal/transport"
)

// Spine counters for the failover walk: attempts actually sent to an
// endpoint, and endpoints skipped because their breaker was open.
var (
	mFailoverAttempts = telemetry.Default().Meter.Counter("core.failover.attempts")
	mFailoverSkips    = telemetry.Default().Meter.Counter("core.failover.skips")
)

// Peer is the root of the WSPeer interface tree (paper Fig. 2). It owns the
// client and server sides and the event bus through which every
// component's activity reaches the application's PeerMessageListeners.
type Peer struct {
	bus    eventBus
	client *Client
	server *Server

	bmu      sync.Mutex
	bindings map[string]Binding // attached via AttachBinding, by name
}

// NewPeer returns a peer with empty client and server sides; bindings
// populate them with locators, publishers, deployers and invokers.
func NewPeer() *Peer {
	p := &Peer{}
	p.client = &Client{peer: p, invokers: make(map[string]Invoker)}
	// ClientMessageEvents fire from the pipeline's Events choke point:
	// installed first, it sits outermost, so later-installed interceptors
	// (Retry in particular) produce one event per logical invocation.
	p.client.chain = pipeline.NewChain(pipeline.Events(func(c *pipeline.Call) {
		res, _ := c.GetMeta(MetaResult).(*engine.Result)
		p.bus.fireClient(ClientMessageEvent{
			Service:   c.Service,
			Operation: c.Op,
			Result:    res,
			Err:       c.Err,
		})
	}))
	p.client.rcache = resolve.New(resolve.Options{})
	p.client.sched = newScheduler(SchedulerOptions{})
	p.client.ConfigureBreakers(resilience.BreakerOptions{})
	p.server = &Server{peer: p, deployments: make(map[string]*Deployment), published: make(map[string][]publication)}
	return p
}

// Client returns the client side of the peer.
func (p *Peer) Client() *Client { return p.client }

// Server returns the server side of the peer.
func (p *Peer) Server() *Server { return p.server }

// AddListener subscribes the application to the peer's events.
func (p *Peer) AddListener(l PeerMessageListener) { p.bus.add(l) }

// RemoveListener unsubscribes a listener; it reports whether the listener
// was registered.
func (p *Peer) RemoveListener(l PeerMessageListener) bool { return p.bus.remove(l) }

// FireServerMessage feeds a raw server-side exchange into the event tree.
// Bindings hook their hosts' observers to this (paper: the application "is
// notified of all requests and responses either side of being processed by
// the underlying messaging system").
func (p *Peer) FireServerMessage(service string, req *transport.Request, resp *transport.Response) {
	p.bus.fireServer(ServerMessageEvent{Service: service, Request: req, Response: resp})
}

// ---------------------------------------------------------------------------
// Client

// Client is the consumer side of the peer: it locates services through its
// registered locators and creates Invocations bound to located services.
type Client struct {
	peer *Peer

	// chain is the client-side call pipeline: every Invocation made
	// through this client flows application → interceptors → invoker →
	// scheme-selected transport. NewPeer preloads it with the Events
	// choke point.
	chain *pipeline.Chain

	mu       sync.RWMutex
	locators []ServiceLocator
	invokers map[string]Invoker      // by endpoint scheme
	breakers *resilience.Group       // endpoint health registry
	rcache   *resolve.Cache          // discovery resolution cache (LocateCached)
	sched    *scheduler              // bounded pool behind InvokeAsync/InvokeMany
	budget   *resilience.RetryBudget // retransmission budget shared by Retry/Hedge

	// exch is the client side of the message-exchange layer (see
	// exchange.go): the callback correlation table and hosted reply
	// endpoints, built lazily so clients that never use the asynchronous
	// patterns pay nothing for them.
	exch clientExchange
}

// Use installs client-side pipeline interceptors (Deadline, Retry,
// CallStats, or custom ones) around every invocation made through this
// client, existing Invocations included. Earlier-installed interceptors
// run outermost.
func (c *Client) Use(ics ...pipeline.Interceptor) { c.chain.Use(ics...) }

// ConfigureBreakers replaces the client's endpoint health registry with
// one built from opts. Breaker state transitions always reach the peer's
// event tree as HealthEvents, composed after any OnChange in opts. Call
// it before invoking: existing breakers (and their accumulated state) are
// discarded.
func (c *Client) ConfigureBreakers(opts resilience.BreakerOptions) {
	user := opts.OnChange
	opts.OnChange = func(ep string, from, to resilience.BreakerState) {
		if user != nil {
			user(ep, from, to)
		}
		// A breaker opening condemns the endpoint: evict it from every
		// cached resolution so LocateCached stops offering it until a
		// live re-discovery (or half-open recovery) brings it back.
		if to == resilience.BreakerOpen {
			c.ResolutionCache().EvictEndpoint(ep)
		}
		c.peer.bus.fireHealth(HealthEvent{Endpoint: ep, From: from.String(), To: to.String()})
	}
	g := resilience.NewGroup(opts)
	c.mu.Lock()
	c.breakers = g
	c.mu.Unlock()
}

// Breakers returns the client's endpoint health registry: one circuit
// breaker per endpoint this client has invoked with failover (or that an
// installed Group interceptor has guarded).
func (c *Client) Breakers() *resilience.Group {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.breakers
}

// Pipeline exposes the client-side interceptor chain.
func (c *Client) Pipeline() *pipeline.Chain { return c.chain }

// ConfigureRetryBudget installs a retransmission budget on the client and
// returns it. Once installed, every invocation carries the budget on its
// pipeline Meta (pipeline.MetaRetryBudget): installed Retry interceptors
// draw a token per retransmission, Hedge draws one per hedge, and each
// logical invocation that succeeds credits a fraction back — so across
// the whole client, retries plus hedges are bounded to a fraction of the
// success rate and cannot storm a struggling server.
func (c *Client) ConfigureRetryBudget(opts resilience.BudgetOptions) *resilience.RetryBudget {
	b := resilience.NewRetryBudget(opts)
	c.mu.Lock()
	c.budget = b
	c.mu.Unlock()
	return b
}

// RetryBudget returns the client's retransmission budget, nil when none
// is configured.
func (c *Client) RetryBudget() *resilience.RetryBudget {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.budget
}

// pipelineBudget adapts the configured budget to the pipeline interface,
// returning a true nil (not a typed nil) when none is configured.
func (c *Client) pipelineBudget() pipeline.RetryBudget {
	c.mu.RLock()
	b := c.budget
	c.mu.RUnlock()
	if b == nil {
		return nil
	}
	return b
}

// AddLocator registers a locator. Multiple locators can coexist — e.g. a
// P2PS peer using the UDDI locator alongside advert discovery (paper §IV:
// "these implementations need not remain self-contained"). Registering a
// locator that is already present is a no-op, so re-attaching a binding
// does not accumulate duplicates.
func (c *Client) AddLocator(l ServiceLocator) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, have := range c.locators {
		if componentEqual(have, l) {
			return
		}
	}
	c.locators = append(c.locators, l)
}

// RemoveLocator removes a previously added locator; it reports whether the
// locator was registered.
func (c *Client) RemoveLocator(l ServiceLocator) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, have := range c.locators {
		if componentEqual(have, l) {
			c.locators = append(c.locators[:i], c.locators[i+1:]...)
			return true
		}
	}
	return false
}

// RegisterInvoker registers an invoker for its endpoint schemes. A scheme
// already served by the same invoker is left untouched (double-attach is a
// no-op); a scheme served by a different invoker is taken over (last
// registered wins).
func (c *Client) RegisterInvoker(inv Invoker) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range inv.Schemes() {
		if componentEqual(c.invokers[s], inv) {
			continue
		}
		c.invokers[s] = inv
	}
}

// UnregisterInvoker removes the invoker from every scheme it still serves;
// it reports whether any scheme was removed. Schemes taken over by a later
// RegisterInvoker are left with their current invoker.
func (c *Client) UnregisterInvoker(inv Invoker) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	removed := false
	for s, have := range c.invokers {
		if componentEqual(have, inv) {
			delete(c.invokers, s)
			removed = true
		}
	}
	return removed
}

// Locators returns the registered locators.
func (c *Client) Locators() []ServiceLocator {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]ServiceLocator(nil), c.locators...)
}

// Locate runs the query against every registered locator concurrently and
// returns all located services. Each find fires a DiscoveryEvent, and a
// final Done event is fired before Locate returns. Locator failures are
// reported as events and in the joined error, but do not suppress results
// from other locators.
func (c *Client) Locate(ctx context.Context, q ServiceQuery) ([]*ServiceInfo, error) {
	var found []*ServiceInfo
	n, err := c.locate(ctx, q, func(info *ServiceInfo) { found = append(found, info) })
	if n == 0 && err != nil {
		return nil, err
	}
	return found, nil
}

// locate is the shared discovery walk behind Locate and LocateAsync: the
// query runs against every registered locator concurrently, each hit is
// delivered to emit as the locator reports it (emit calls are serialized,
// never concurrent), and each hit and failure fires a DiscoveryEvent. It
// returns the number of hits and the joined locator error; the final
// Done event fires before it returns.
func (c *Client) locate(ctx context.Context, q ServiceQuery, emit func(*ServiceInfo)) (int, error) {
	locators := c.Locators()
	if len(locators) == 0 {
		return 0, ErrNoLocator
	}
	var mu sync.Mutex
	var found int
	var errs []error
	var wg sync.WaitGroup
	for _, loc := range locators {
		wg.Add(1)
		go func(loc ServiceLocator) {
			defer wg.Done()
			err := loc.Locate(ctx, q, func(info *ServiceInfo) {
				if info.Locator == "" {
					info.Locator = loc.Name()
				}
				mu.Lock()
				found++
				emit(info)
				mu.Unlock()
				c.peer.bus.fireDiscovery(DiscoveryEvent{Query: q, Service: info, Locator: loc.Name()})
			})
			if err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("%s: %w", loc.Name(), err))
				mu.Unlock()
				c.peer.bus.fireDiscovery(DiscoveryEvent{Query: q, Locator: loc.Name(), Err: err})
			}
		}(loc)
	}
	wg.Wait()
	err := errors.Join(errs...)
	c.peer.bus.fireDiscovery(DiscoveryEvent{Query: q, Done: true, Err: err})
	return found, err
}

// LocateAsync starts a discovery and returns immediately; results arrive
// through the peer's DiscoveryEvents and through the optional callbacks.
// Each hit is streamed to onFound as its locator reports it — the
// event-driven mode the paper describes — not buffered until the whole
// search completes; onFound calls are serialized. onDone receives the
// joined locator error only when nothing was found (matching Locate's
// partial-failure rule), after every onFound has returned.
func (c *Client) LocateAsync(ctx context.Context, q ServiceQuery, onFound func(*ServiceInfo), onDone func(error)) {
	go func() {
		n, err := c.locate(ctx, q, func(info *ServiceInfo) {
			if onFound != nil {
				onFound(info)
			}
		})
		if n > 0 {
			err = nil
		}
		if onDone != nil {
			onDone(err)
		}
	}()
}

// LocateOne returns the first service located for the query.
func (c *Client) LocateOne(ctx context.Context, q ServiceQuery) (*ServiceInfo, error) {
	infos, err := c.Locate(ctx, q)
	if err != nil && len(infos) == 0 {
		return nil, err
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("core: no service found for %q", q.QueryName())
	}
	return infos[0], nil
}

// NewInvocation binds an invocation to a located service, selecting the
// invoker by the endpoint's URI scheme.
func (c *Client) NewInvocation(svc *ServiceInfo) (*Invocation, error) {
	t, err := c.resolveTarget(svc)
	if err != nil {
		return nil, err
	}
	return &Invocation{client: c, targets: []invTarget{t}}, nil
}

// NewFailoverInvocation binds an invocation to several located endpoints
// for one logical service — typically the same service discovered through
// different bindings (an HTTP endpoint and a P2PS pipe address). Targets
// are tried in the given preference order; an endpoint whose circuit
// breaker is open is skipped, and a substrate failure (as judged by
// resilience.Classify) fails over to the next target. Application-level
// SOAP faults and caller cancellation never fail over. Each attempt's
// outcome feeds the endpoint's breaker, so health transitions surface as
// HealthEvents on the peer's event tree.
func (c *Client) NewFailoverInvocation(svcs ...*ServiceInfo) (*Invocation, error) {
	if len(svcs) == 0 {
		return nil, fmt.Errorf("core: failover invocation needs at least one service")
	}
	inv := &Invocation{client: c, targets: make([]invTarget, 0, len(svcs))}
	for _, svc := range svcs {
		t, err := c.resolveTarget(svc)
		if err != nil {
			return nil, err
		}
		inv.targets = append(inv.targets, t)
	}
	return inv, nil
}

// NewHedgedInvocation binds a hedged invocation to one or more located
// endpoints for the same logical service: Invoke races a second attempt
// against a slow primary after the hedge threshold (adaptive from the
// service's observed p99 unless opts fixes it), sending the hedge to the
// next endpoint when several are bound. First success wins; the losing
// attempt is cancelled. Hedges draw from the client's retry budget when
// one is configured (ConfigureRetryBudget), so hedging cannot multiply
// load unboundedly.
func (c *Client) NewHedgedInvocation(opts HedgeOptions, svcs ...*ServiceInfo) (*Invocation, error) {
	if len(svcs) == 0 {
		return nil, fmt.Errorf("core: hedged invocation needs at least one service")
	}
	inv := &Invocation{client: c, targets: make([]invTarget, 0, len(svcs))}
	for _, svc := range svcs {
		t, err := c.resolveTarget(svc)
		if err != nil {
			return nil, err
		}
		inv.targets = append(inv.targets, t)
	}
	if opts.MaxHedges < 1 {
		opts.MaxHedges = 1
	}
	inv.hedge = &hedgePlan{threshold: opts.Threshold, maxHedges: opts.MaxHedges}
	return inv, nil
}

// resolveTarget selects the invoker for a service's endpoint scheme.
func (c *Client) resolveTarget(svc *ServiceInfo) (invTarget, error) {
	if svc == nil || svc.Endpoint == "" {
		return invTarget{}, fmt.Errorf("core: service info has no endpoint")
	}
	scheme := transport.SchemeOf(svc.Endpoint)
	c.mu.RLock()
	inv, ok := c.invokers[scheme]
	c.mu.RUnlock()
	if !ok {
		return invTarget{}, fmt.Errorf("core: no invoker registered for scheme %q (endpoint %s)", scheme, svc.Endpoint)
	}
	return invTarget{svc: svc, invoker: inv}, nil
}

// invTarget pairs one endpoint with its scheme-selected invoker.
type invTarget struct {
	svc     *ServiceInfo
	invoker Invoker
}

// DefaultHedgeThreshold is the hedge latency threshold used before the
// telemetry call table has seen enough traffic to estimate the
// service's tail.
const DefaultHedgeThreshold = 50 * time.Millisecond

// hedgeMinSamples is how many recorded client calls a service needs
// before its observed p99 replaces DefaultHedgeThreshold.
const hedgeMinSamples = 8

// HedgeOptions tunes a hedged invocation (NewHedgedInvocation).
type HedgeOptions struct {
	// Threshold is how long the primary attempt may run before a hedge
	// launches. Zero means adaptive: the service's observed client-side
	// p99 latency from the telemetry call table once hedgeMinSamples
	// calls have been recorded, DefaultHedgeThreshold until then.
	Threshold time.Duration
	// MaxHedges caps extra attempts beyond the primary (default 1, and
	// never more than len(targets)-1 distinct endpoints are useful).
	MaxHedges int
}

// hedgePlan is an Invocation's resolved hedging configuration.
type hedgePlan struct {
	threshold time.Duration // 0 = adaptive from telemetry
	maxHedges int
}

// Invocation is a client-side handle on one located service, or — when
// created with NewFailoverInvocation — on an ordered set of endpoints for
// the same logical service.
type Invocation struct {
	client  *Client
	targets []invTarget // preference order; [0] is the primary
	hedge   *hedgePlan  // non-nil for hedged invocations
}

// Service returns the primary target service.
func (inv *Invocation) Service() *ServiceInfo { return inv.targets[0].svc }

// Endpoints returns the bound endpoints in preference order.
func (inv *Invocation) Endpoints() []string {
	out := make([]string, len(inv.targets))
	for i, t := range inv.targets {
		out[i] = t.svc.Endpoint
	}
	return out
}

// MetaResult is the pipeline Meta key under which the client terminal
// publishes the invocation's decoded *engine.Result for observing
// interceptors (the Events choke point reads it to build
// ClientMessageEvents).
const MetaResult = "core.result"

// Invoke calls an operation synchronously through the client's call
// pipeline; the terminal stage is the scheme-selected invoker (and, for
// wire-aware invokers, the transport its exchange rides on) — or, for
// failover invocations, the target walk described on
// NewFailoverInvocation. The exchange is reported as a ClientMessageEvent
// from the pipeline's Events stage.
func (inv *Invocation) Invoke(ctx context.Context, op string, params ...engine.Param) (*engine.Result, error) {
	primary := inv.targets[0]
	span, ctx := telemetry.Default().Tracer.StartSpan(ctx, "client.invoke")
	span.SetService(primary.svc.Name)
	span.SetOp(op)
	span.SetDir(telemetry.DirClient)
	span.SetEndpoint(primary.svc.Endpoint)
	c := &pipeline.Call{Ctx: ctx, Dir: pipeline.ClientCall, Service: primary.svc.Name, Op: op, Span: span}
	c.SetMeta(resilience.MetaEndpoint, primary.svc.Endpoint)
	budget := inv.client.pipelineBudget()
	if budget != nil {
		c.SetMeta(pipeline.MetaRetryBudget, budget)
	}
	inv.client.stampExchange(c)
	var res *engine.Result
	var err error
	start := time.Now()
	if inv.hedge != nil {
		err = inv.invokeHedged(c, op, params)
		res, _ = c.GetMeta(MetaResult).(*engine.Result)
	} else if len(inv.targets) == 1 {
		err = inv.client.chain.Run(c, func(c *pipeline.Call) error {
			res = nil // a retried attempt must not leak its predecessor's result
			var err error
			res, err = invokeTarget(c, primary, op, params)
			c.SetMeta(MetaResult, res)
			return err
		})
	} else {
		// The failover walk records breaker outcomes per attempt; tell an
		// installed Group interceptor to stand aside.
		c.SetMeta(resilience.MetaBreakerHandled, true)
		err = inv.client.chain.Run(c, func(c *pipeline.Call) error {
			res = nil
			var err error
			res, err = inv.invokeFailover(c, op, params)
			c.SetMeta(MetaResult, res)
			return err
		})
	}
	elapsed := time.Since(start)
	telemetry.Default().Calls.Record(primary.svc.Name, telemetry.DirClient, elapsed, err != nil)
	recordFlight(c, span, start, elapsed, primary.svc.Endpoint, err)
	if span != nil {
		span.SetError(err)
		span.End()
	}
	if err != nil {
		return nil, err
	}
	if budget != nil {
		budget.Credit() // one credit per successful logical invocation
	}
	return res, nil
}

// invokeHedged runs the invocation through the client chain with a Hedge
// stage composed directly over the attempt terminal: a slow primary races
// a hedge against the next endpoint of the resolution, first success
// wins, and the loser is cancelled. Hedges draw from the client's retry
// budget (when configured), so tail-chasing and retries spend from one
// pool.
func (inv *Invocation) invokeHedged(c *pipeline.Call, op string, params []engine.Param) error {
	// Attempts record their own breaker outcomes; tell an installed Group
	// interceptor to stand aside, as the failover walk does.
	c.SetMeta(resilience.MetaBreakerHandled, true)
	plan := *inv.hedge
	hedge := pipeline.Hedge(pipeline.HedgeOptions{
		Threshold: DefaultHedgeThreshold,
		ThresholdFunc: func(pc *pipeline.Call) time.Duration {
			if plan.threshold > 0 {
				return plan.threshold
			}
			return adaptiveHedgeThreshold(pc.Service)
		},
		MaxHedges: plan.maxHedges,
		// The caller opted into hedging when building the invocation, so
		// every call through it may hedge — MarkIdempotent is not also
		// required.
		Hedgeable: func(*pipeline.Call) bool { return true },
	})
	terminal := pipeline.Compose(inv.hedgedAttempt(op, params), hedge)
	return inv.client.chain.Run(c, terminal)
}

// hedgedAttempt is the per-attempt terminal of a hedged invocation:
// attempt n targets the n-th endpoint (mod fan-out) of the resolution, so
// a hedge lands on a different host than the primary it is racing. Each
// attempt feeds its endpoint's breaker; an endpoint with an open breaker
// refuses the attempt, which makes Hedge immediately try the next.
func (inv *Invocation) hedgedAttempt(op string, params []engine.Param) pipeline.CallFunc {
	return func(c *pipeline.Call) error {
		group := inv.client.Breakers()
		t := inv.targets[pipeline.HedgeAttempt(c)%len(inv.targets)]
		br := group.Breaker(t.svc.Endpoint)
		if !br.Allow() {
			if c.Span != nil {
				c.Span.Annotatef("hedge: skipped %s (breaker open)", t.svc.Endpoint)
			}
			return &resilience.BreakerOpenError{Endpoint: t.svc.Endpoint}
		}
		c.SetMeta(resilience.MetaEndpoint, t.svc.Endpoint)
		res, err := invokeTarget(c, t, op, params)
		resilience.Observe(br, err)
		c.SetMeta(MetaResult, res)
		return err
	}
}

// adaptiveHedgeThreshold derives a hedge threshold from the service's
// observed client-side tail latency: its p99 once enough calls have been
// recorded, DefaultHedgeThreshold before that.
func adaptiveHedgeThreshold(service string) time.Duration {
	row := telemetry.Default().Calls.Service(service, telemetry.DirClient)
	if row.Calls >= hedgeMinSamples && row.P99 > 0 {
		return row.P99
	}
	return DefaultHedgeThreshold
}

// invokeTarget performs one attempt against one endpoint.
func invokeTarget(c *pipeline.Call, t invTarget, op string, params []engine.Param) (*engine.Result, error) {
	if ci, ok := t.invoker.(CallInvoker); ok {
		return ci.InvokeCall(c, t.svc, op, params)
	}
	return t.invoker.Invoke(c.Ctx, t.svc, op, params)
}

// invokeFailover walks the targets in preference order: endpoints with an
// open breaker are skipped, substrate failures advance to the next
// target, and every attempt's outcome feeds its endpoint's breaker. The
// returned error is the last attempt's (or last refusal's) when no
// target succeeds.
func (inv *Invocation) invokeFailover(c *pipeline.Call, op string, params []engine.Param) (*engine.Result, error) {
	group := inv.client.Breakers()
	var lastErr error
	for _, t := range inv.targets {
		if ctxErr := c.Ctx.Err(); ctxErr != nil {
			if lastErr == nil {
				lastErr = ctxErr
			}
			break
		}
		br := group.Breaker(t.svc.Endpoint)
		if !br.Allow() {
			mFailoverSkips.Inc()
			if c.Span != nil {
				c.Span.Annotatef("failover: skipped %s (breaker open)", t.svc.Endpoint)
			}
			lastErr = &resilience.BreakerOpenError{Endpoint: t.svc.Endpoint}
			continue
		}
		c.SetMeta(resilience.MetaEndpoint, t.svc.Endpoint)
		c.Request, c.Response = nil, nil
		mFailoverAttempts.Inc()
		res, err := invokeTarget(c, t, op, params)
		resilience.Observe(br, err)
		if err == nil {
			c.Span.SetEndpoint(t.svc.Endpoint)
			return res, nil
		}
		lastErr = err
		if c.Span != nil {
			c.Span.Annotatef("failover: %s failed: %v", t.svc.Endpoint, err)
		}
		if resilience.Classify(err) != resilience.Failure {
			break // an application fault or cancellation: not the substrate's doing
		}
		// A substrate failure demotes the endpoint in every cached
		// resolution, so the next LocateCached-fed failover walk tries
		// healthier endpoints first.
		inv.client.ResolutionCache().DemoteEndpoint(t.svc.Endpoint)
	}
	return nil, lastErr
}

// InvokeAsync calls an operation without blocking; the outcome arrives at
// the callback (which may be nil — events still fire) from another
// goroutine. This is the event-driven mode the paper argues suits
// "P2P style interactions with unreliable nodes".
//
// The call runs on the client's bounded invocation scheduler (see
// ConfigureScheduler) rather than a goroutine per call: a burst of
// submissions holds at most MaxConcurrent invocations in flight, queued
// submissions are shed with a *resilience.OverloadError when the queue
// fills or the context expires while waiting, and the shed outcome
// arrives at the callback like any other error.
func (inv *Invocation) InvokeAsync(ctx context.Context, op string, params []engine.Param, cb func(*engine.Result, error)) {
	inv.client.schedulerRef().submit(ctx,
		func() {
			res, err := inv.Invoke(ctx, op, params...)
			if cb != nil {
				cb(res, err)
			}
		},
		func(err error) {
			if cb != nil {
				cb(nil, err)
			}
		})
}

// ---------------------------------------------------------------------------
// Server

// publication records where a deployment was published so it can be
// withdrawn.
type publication struct {
	publisher ServicePublisher
	location  string
}

// Server is the provider side of the peer: it deploys services through its
// deployer and announces them through its publishers.
type Server struct {
	peer *Peer

	mu          sync.Mutex
	deployer    ServiceDeployer
	publishers  []ServicePublisher
	deployments map[string]*Deployment
	published   map[string][]publication
}

// SetDeployer installs the deployer component, replacing any previous one
// (last attached binding wins).
func (s *Server) SetDeployer(d ServiceDeployer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.deployer = d
}

// RemoveDeployer clears the deployer slot, but only if it still holds d —
// a deployer replaced by a later SetDeployer is not disturbed. It reports
// whether the slot was cleared.
func (s *Server) RemoveDeployer(d ServiceDeployer) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !componentEqual(s.deployer, d) {
		return false
	}
	s.deployer = nil
	return true
}

// AddPublisher registers a publisher. Multiple publishers can coexist
// (e.g. UDDI and P2PS adverts for the same service). Registering a
// publisher that is already present is a no-op, so re-attaching a binding
// does not publish twice.
func (s *Server) AddPublisher(p ServicePublisher) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, have := range s.publishers {
		if componentEqual(have, p) {
			return
		}
	}
	s.publishers = append(s.publishers, p)
}

// RemovePublisher removes a previously added publisher; it reports whether
// the publisher was registered. Services already published through it stay
// published (withdraw them with Undeploy).
func (s *Server) RemovePublisher(p ServicePublisher) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, have := range s.publishers {
		if componentEqual(have, p) {
			s.publishers = append(s.publishers[:i], s.publishers[i+1:]...)
			return true
		}
	}
	return false
}

// Deploy exposes a service definition through the deployer and fires a
// DeploymentMessageEvent.
func (s *Server) Deploy(def engine.ServiceDef) (*Deployment, error) {
	s.mu.Lock()
	d := s.deployer
	s.mu.Unlock()
	if d == nil {
		return nil, ErrNoDeployer
	}
	dep, err := d.Deploy(def)
	if err != nil {
		s.peer.bus.fireDeployment(DeploymentMessageEvent{Service: def.Name, Err: err})
		return nil, err
	}
	if dep.Deployer == "" {
		dep.Deployer = d.Name()
	}
	s.mu.Lock()
	s.deployments[def.Name] = dep
	s.mu.Unlock()
	s.peer.bus.fireDeployment(DeploymentMessageEvent{Service: def.Name, Endpoint: dep.Endpoint})
	return dep, nil
}

// Publish announces a deployment through every registered publisher,
// firing a PublishEvent per publisher. All publishers are attempted; their
// errors are joined.
func (s *Server) Publish(ctx context.Context, dep *Deployment) error {
	s.mu.Lock()
	pubs := append([]ServicePublisher(nil), s.publishers...)
	s.mu.Unlock()
	if len(pubs) == 0 {
		return fmt.Errorf("core: no ServicePublisher registered")
	}
	var errs []error
	name := dep.Service.Name()
	for _, pub := range pubs {
		loc, err := pub.Publish(ctx, dep)
		s.peer.bus.firePublish(PublishEvent{Service: name, Location: loc, Publisher: pub.Name(), Err: err})
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", pub.Name(), err))
			continue
		}
		s.mu.Lock()
		s.published[name] = append(s.published[name], publication{publisher: pub, location: loc})
		s.mu.Unlock()
	}
	return errors.Join(errs...)
}

// DeployAndPublish is the common composite: deploy, then publish
// everywhere.
func (s *Server) DeployAndPublish(ctx context.Context, def engine.ServiceDef) (*Deployment, error) {
	dep, err := s.Deploy(def)
	if err != nil {
		return nil, err
	}
	if err := s.Publish(ctx, dep); err != nil {
		return dep, err
	}
	return dep, nil
}

// Deployment returns a deployment by service name, or nil.
func (s *Server) Deployment(name string) *Deployment {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deployments[name]
}

// Deployments lists deployed service names.
func (s *Server) Deployments() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.deployments))
	for n := range s.deployments {
		out = append(out, n)
	}
	return out
}

// Undeploy withdraws the service from every publisher it was published to
// and removes it from the deployer.
func (s *Server) Undeploy(ctx context.Context, name string) error {
	s.mu.Lock()
	d := s.deployer
	pubs := s.published[name]
	delete(s.published, name)
	_, deployed := s.deployments[name]
	delete(s.deployments, name)
	s.mu.Unlock()
	if !deployed {
		return fmt.Errorf("core: service %q is not deployed", name)
	}
	var errs []error
	for _, p := range pubs {
		if err := p.publisher.Unpublish(ctx, p.location); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", p.publisher.Name(), err))
		}
	}
	if d != nil {
		if err := d.Undeploy(name); err != nil {
			errs = append(errs, err)
		}
	}
	err := errors.Join(errs...)
	s.peer.bus.fireDeployment(DeploymentMessageEvent{Service: name, Undeployed: true, Err: err})
	return err
}
