package core

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"wspeer/internal/engine"
	"wspeer/internal/resolve"
)

// CacheKeyer lets a binding-specific ServiceQuery define its own
// resolution-cache identity. Queries that do not implement it are keyed
// by QueryKey's canonical forms.
type CacheKeyer interface {
	// CacheKey returns a canonical identity string: equal keys mean the
	// queries resolve to the same service set.
	CacheKey() string
}

// QueryKey canonicalizes a ServiceQuery into the resolution cache's
// identity string. Two queries with the same key share a cache line:
// NameQuery keys are order-independent in their attribute constraints,
// ExprQuery keys carry the predicate source verbatim, and any query
// implementing CacheKeyer speaks for itself.
func QueryKey(q ServiceQuery) string {
	switch qq := q.(type) {
	case CacheKeyer:
		return qq.CacheKey()
	case NameQuery:
		var b strings.Builder
		b.WriteString("name|")
		b.WriteString(qq.Name)
		b.WriteString("|max=")
		b.WriteString(strconv.Itoa(qq.MaxResults))
		if len(qq.Attrs) > 0 {
			keys := make([]string, 0, len(qq.Attrs))
			for k := range qq.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				b.WriteString("|")
				b.WriteString(k)
				b.WriteString("=")
				b.WriteString(qq.Attrs[k])
			}
		}
		return b.String()
	case ExprQuery:
		return "expr|" + qq.Name + "|" + qq.Expr
	default:
		return fmt.Sprintf("%T|%v", q, q)
	}
}

// ConfigureResolutionCache replaces the client's resolution cache with
// one built from opts, discarding any cached resolutions. The cache is
// created automatically with defaults (30s TTL, equal stale window, 2s
// negative TTL); call this before relying on LocateCached if different
// horizons are needed.
func (c *Client) ConfigureResolutionCache(opts resolve.Options) {
	cache := resolve.New(opts)
	c.mu.Lock()
	c.rcache = cache
	c.mu.Unlock()
}

// ResolutionCache returns the client's resolution cache — the memoized
// query → located-services map behind LocateCached, with its own
// invalidation (Invalidate, Clear, EvictEndpoint) and Stats.
func (c *Client) ResolutionCache() *resolve.Cache {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.rcache
}

// LocateCached resolves the query through the client's resolution cache:
// repeated lookups for the same query identity (see QueryKey) are served
// from memory instead of fanning out to the locators. A fresh cache line
// answers immediately; a stale one answers immediately while one
// background refresh re-runs the live Locate; an error or empty outcome
// is replayed for the negative TTL; and concurrent misses for the same
// query collapse into a single live Locate. DiscoveryEvents fire only
// when a live Locate actually runs — cache hits are silent.
//
// Invalidation is wired to the resilience layer: an endpoint whose
// circuit breaker opens is evicted from every cached resolution, and an
// endpoint that fails over during a failover invocation is demoted to
// the back of its lines' preference order.
func (c *Client) LocateCached(ctx context.Context, q ServiceQuery) ([]*ServiceInfo, error) {
	entries, err := c.ResolutionCache().Get(ctx, QueryKey(q), func(ctx context.Context) ([]resolve.Entry, error) {
		infos, err := c.Locate(ctx, q)
		if err != nil {
			return nil, err
		}
		es := make([]resolve.Entry, len(infos))
		for i, info := range infos {
			es[i] = resolve.Entry{Endpoint: info.Endpoint, Value: info}
		}
		return es, nil
	})
	if err != nil {
		return nil, err
	}
	infos := make([]*ServiceInfo, len(entries))
	for i, e := range entries {
		infos[i] = e.Value.(*ServiceInfo)
	}
	return infos, nil
}

// NewFailoverInvocationFor is the cached composite the resolution layer
// exists for: resolve the query through the cache and bind a failover
// invocation to every located endpoint in the cache's (health-demoted)
// preference order. Repeated calls for the same query cost a map hit,
// not a discovery fan-out.
func (c *Client) NewFailoverInvocationFor(ctx context.Context, q ServiceQuery) (*Invocation, error) {
	infos, err := c.LocateCached(ctx, q)
	if err != nil {
		return nil, err
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("core: no service found for %q", q.QueryName())
	}
	return c.NewFailoverInvocation(infos...)
}

// NewHedgedInvocationFor resolves the query through the resolution cache
// and binds a hedged invocation across every located endpoint in the
// cache's (health-demoted) preference order: the primary attempt goes to
// the first endpoint and a slow primary is raced by a hedge against the
// next one. See Client.NewHedgedInvocation for the hedging semantics.
func (c *Client) NewHedgedInvocationFor(ctx context.Context, q ServiceQuery, opts HedgeOptions) (*Invocation, error) {
	infos, err := c.LocateCached(ctx, q)
	if err != nil {
		return nil, err
	}
	if len(infos) == 0 {
		return nil, fmt.Errorf("core: no service found for %q", q.QueryName())
	}
	return c.NewHedgedInvocation(opts, infos...)
}

// ---------------------------------------------------------------------------
// Scheduler configuration and scatter-gather invocation

// ConfigureScheduler replaces the client's bounded invocation scheduler
// — the worker pool behind InvokeAsync and InvokeMany — with one built
// from opts. Tasks already queued on the previous scheduler still drain
// through its workers.
func (c *Client) ConfigureScheduler(opts SchedulerOptions) {
	s := newScheduler(opts)
	c.mu.Lock()
	c.sched = s
	c.mu.Unlock()
}

// SchedulerStats returns a point-in-time snapshot of the client's
// invocation scheduler.
func (c *Client) SchedulerStats() SchedulerStats {
	return c.schedulerRef().stats()
}

func (c *Client) schedulerRef() *scheduler {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sched
}

// ManyResult is one endpoint's outcome within an InvokeMany scatter.
type ManyResult struct {
	// Service is the target this slot invoked.
	Service *ServiceInfo
	// Result is the decoded result (nil for one-way operations and on
	// errors).
	Result *engine.Result
	// Err is the invocation error, a *resilience.OverloadError if the
	// scheduler shed the slot, or the target-resolution error if no
	// invoker serves the endpoint's scheme.
	Err error
}

// InvokeMany invokes one operation against every given service
// concurrently — the scatter-gather bulk mode for a cached multi-
// endpoint resolution (LocateCached feeds it directly). Each invocation
// runs on the client's bounded scheduler, so a 1000-endpoint scatter
// holds at most MaxConcurrent invocations in flight; results come back
// in input order, one per target, with per-slot errors rather than a
// first-error abort. It blocks until every slot has an outcome; do not
// call it from inside another scheduled invocation's callback.
func (c *Client) InvokeMany(ctx context.Context, svcs []*ServiceInfo, op string, params []engine.Param) []ManyResult {
	out := make([]ManyResult, len(svcs))
	var wg sync.WaitGroup
	sched := c.schedulerRef()
	for i, svc := range svcs {
		out[i].Service = svc
		inv, err := c.NewInvocation(svc)
		if err != nil {
			out[i].Err = err
			continue
		}
		wg.Add(1)
		slot := &out[i]
		sched.submit(ctx,
			func() {
				defer wg.Done()
				slot.Result, slot.Err = inv.Invoke(ctx, op, params...)
			},
			func(err error) {
				defer wg.Done()
				slot.Err = err
			})
	}
	wg.Wait()
	return out
}
