package core

import (
	"fmt"
	"reflect"
	"sort"

	"wspeer/internal/pipeline"
)

// Components bundles the pluggable parts a binding contributes to a peer —
// the paper's locator, publisher, deployer and invoker components (§III).
// Any field may be empty: a binding without a registry endpoint contributes
// no locator or publisher, and a pure-client composition contributes no
// deployer at all.
//
// Component values must be comparable (small structs or pointers): attach
// and detach bookkeeping identifies a component by equality so that
// repeated attachment is idempotent and detachment removes exactly what
// attachment added.
type Components struct {
	// Deployer exposes service definitions at endpoints. A Server has one
	// deployer slot; attaching a binding with a deployer replaces the slot
	// (last attached wins) and detaching restores it to empty only if the
	// slot still holds this binding's deployer.
	Deployer ServiceDeployer
	// Publishers announce deployments (UDDI records, P2PS adverts, ...).
	Publishers []ServicePublisher
	// Locators find services.
	Locators []ServiceLocator
	// Invokers carry invocations, registered by endpoint scheme.
	Invokers []Invoker
}

// Binding is the contract every substrate binding implements: one
// constructed engine plus the component bundle it wires into peers, with a
// symmetric lifecycle (Attach/Detach/Close). The paper's central claim is
// that "these implementations need not remain self-contained" (§IV) — a
// Binding's Components can be attached wholesale or mixed piecemeal with
// another binding's (see internal/binding.ComposeClient).
type Binding interface {
	// Name identifies the binding ("http", "p2ps", "inmem").
	Name() string
	// Schemes lists the endpoint URI schemes the binding's invokers serve.
	Schemes() []string
	// Components returns the bundle Attach wires into a peer.
	Components() Components
	// Attach wires the components into the peer. Idempotent: re-attaching
	// an already attached peer is a no-op.
	Attach(*Peer) error
	// Detach removes exactly what Attach added, event forwarding included.
	// Detaching a never-attached peer is a no-op.
	Detach(*Peer) error
	// Use installs server-side pipeline interceptors on the binding's
	// engine.
	Use(...pipeline.Interceptor)
	// Close releases the binding's substrate resources (HTTP listener,
	// pipes, in-memory handlers), draining in-flight dispatches first.
	// Close is idempotent.
	Close() error
}

// AttachBinding attaches a binding to the peer and records it by name, so
// DetachBinding and Bindings can manage it later. Attaching the same
// binding twice is a no-op; attaching a different binding under an
// already-registered name is an error.
func (p *Peer) AttachBinding(b Binding) error {
	p.bmu.Lock()
	if prev, ok := p.bindings[b.Name()]; ok {
		p.bmu.Unlock()
		if componentEqual(prev, b) {
			return nil
		}
		return fmt.Errorf("core: a different binding named %q is already attached", b.Name())
	}
	if p.bindings == nil {
		p.bindings = make(map[string]Binding)
	}
	p.bindings[b.Name()] = b
	p.bmu.Unlock()
	if err := b.Attach(p); err != nil {
		p.bmu.Lock()
		delete(p.bindings, b.Name())
		p.bmu.Unlock()
		return fmt.Errorf("core: attaching binding %q: %w", b.Name(), err)
	}
	return nil
}

// DetachBinding detaches a binding, removing the components (and event
// forwarding) its Attach added. Detaching a binding that is not attached
// is a no-op.
func (p *Peer) DetachBinding(b Binding) error {
	p.bmu.Lock()
	delete(p.bindings, b.Name())
	p.bmu.Unlock()
	return b.Detach(p)
}

// Bindings lists the names of the bindings attached through AttachBinding,
// sorted.
func (p *Peer) Bindings() []string {
	p.bmu.Lock()
	defer p.bmu.Unlock()
	out := make([]string, 0, len(p.bindings))
	for n := range p.bindings {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Binding returns an attached binding by name, or nil.
func (p *Peer) Binding(name string) Binding {
	p.bmu.Lock()
	defer p.bmu.Unlock()
	return p.bindings[name]
}

// componentEqual compares two component values by interface equality,
// guarding against uncomparable dynamic types (which would make == panic).
func componentEqual(a, b interface{}) bool {
	if a == nil || b == nil {
		return a == b
	}
	ta := reflect.TypeOf(a)
	if ta != reflect.TypeOf(b) || !ta.Comparable() {
		return false
	}
	return a == b
}
