// Package core implements WSPeer itself: the interface tree rooted at Peer
// with Client and Server sides (paper Fig. 2), the event system through
// which every node's activity propagates up to application-registered
// PeerMessageListeners, the ServiceQuery abstraction, and the pluggable
// locator/publisher/deployer/invoker components that the HTTP/UDDI and
// P2PS bindings implement.
//
// WSPeer "is essentially an asynchronous, event driven system in which
// components subscribe to events and are notified when and if responses
// are returned from remote services" (paper §III); synchronous discovery
// and invocation are layered over the events.
package core

import (
	"sync"

	"wspeer/internal/engine"
	"wspeer/internal/telemetry"
	"wspeer/internal/transport"
)

// Spine counters for the event tree: one per event class fired through a
// peer's bus (fired regardless of whether any listener is registered, so
// the snapshot shows activity even on unobserved peers), plus the events
// a QueuedListener dropped on overflow.
var (
	mEvtDiscovery  = telemetry.Default().Meter.Counter("events.discovery")
	mEvtPublish    = telemetry.Default().Meter.Counter("events.publish")
	mEvtClient     = telemetry.Default().Meter.Counter("events.client")
	mEvtServer     = telemetry.Default().Meter.Counter("events.server")
	mEvtDeployment = telemetry.Default().Meter.Counter("events.deployment")
	mEvtHealth     = telemetry.Default().Meter.Counter("events.health")
	mEvtDropped    = telemetry.Default().Meter.Counter("events.dropped")
)

// DiscoveryEvent reports progress of a service discovery: one event per
// located service, plus a final event with Done set.
type DiscoveryEvent struct {
	Query   ServiceQuery
	Service *ServiceInfo // nil on the final Done event or on errors
	Locator string       // name of the locator component that fired
	Err     error
	Done    bool
}

// PublishEvent reports the outcome of publishing a deployed service.
type PublishEvent struct {
	Service   string
	Location  string // registry key, advert ID, ... (publisher-specific)
	Publisher string
	Err       error
}

// ClientMessageEvent reports a client-side invocation's outcome.
type ClientMessageEvent struct {
	Service   string
	Operation string
	Result    *engine.Result // nil for one-way operations and on errors
	Err       error
}

// ServerMessageEvent reports a raw server-side exchange, fired either side
// of engine processing so applications can observe (or have intercepted)
// every request (paper §III point 2).
type ServerMessageEvent struct {
	Service  string
	Request  *transport.Request
	Response *transport.Response
}

// DeploymentMessageEvent reports a deployment or undeployment.
type DeploymentMessageEvent struct {
	Service    string
	Endpoint   string
	Undeployed bool
	Err        error
}

// HealthEvent reports an endpoint health-state transition observed by the
// client's resilience layer — a circuit breaker moving between closed,
// open and half-open. From/To are resilience.BreakerState strings
// ("closed", "open", "half-open").
type HealthEvent struct {
	Endpoint string
	From     string
	To       string
}

// PeerMessageListener is the application's window onto the interface tree:
// "Each of the interfaces below the Peer fire an event as the result of its
// activities and these events are brought together by the
// PeerMessageListener interface" (paper §III).
type PeerMessageListener interface {
	OnDiscoveryMessage(DiscoveryEvent)
	OnPublishMessage(PublishEvent)
	OnClientMessage(ClientMessageEvent)
	OnServerMessage(ServerMessageEvent)
	OnDeploymentMessage(DeploymentMessageEvent)
	OnHealthMessage(HealthEvent)
}

// ListenerFuncs adapts individual callbacks to PeerMessageListener; nil
// fields ignore that event class.
type ListenerFuncs struct {
	Discovery  func(DiscoveryEvent)
	Publish    func(PublishEvent)
	Client     func(ClientMessageEvent)
	Server     func(ServerMessageEvent)
	Deployment func(DeploymentMessageEvent)
	Health     func(HealthEvent)
}

// OnDiscoveryMessage implements PeerMessageListener.
func (l ListenerFuncs) OnDiscoveryMessage(e DiscoveryEvent) {
	if l.Discovery != nil {
		l.Discovery(e)
	}
}

// OnPublishMessage implements PeerMessageListener.
func (l ListenerFuncs) OnPublishMessage(e PublishEvent) {
	if l.Publish != nil {
		l.Publish(e)
	}
}

// OnClientMessage implements PeerMessageListener.
func (l ListenerFuncs) OnClientMessage(e ClientMessageEvent) {
	if l.Client != nil {
		l.Client(e)
	}
}

// OnServerMessage implements PeerMessageListener.
func (l ListenerFuncs) OnServerMessage(e ServerMessageEvent) {
	if l.Server != nil {
		l.Server(e)
	}
}

// OnDeploymentMessage implements PeerMessageListener.
func (l ListenerFuncs) OnDeploymentMessage(e DeploymentMessageEvent) {
	if l.Deployment != nil {
		l.Deployment(e)
	}
}

// OnHealthMessage implements PeerMessageListener.
func (l ListenerFuncs) OnHealthMessage(e HealthEvent) {
	if l.Health != nil {
		l.Health(e)
	}
}

// eventBus fans events out to the registered listeners. Delivery is
// synchronous and ordered per firing component; listeners that need
// decoupling wrap themselves with NewQueuedListener.
type eventBus struct {
	mu        sync.RWMutex
	listeners []PeerMessageListener
}

func (b *eventBus) add(l PeerMessageListener) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.listeners = append(b.listeners, l)
}

func (b *eventBus) remove(l PeerMessageListener) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i, x := range b.listeners {
		if x == l {
			b.listeners = append(b.listeners[:i], b.listeners[i+1:]...)
			return true
		}
	}
	return false
}

func (b *eventBus) snapshot() []PeerMessageListener {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return append([]PeerMessageListener(nil), b.listeners...)
}

func (b *eventBus) fireDiscovery(e DiscoveryEvent) {
	mEvtDiscovery.Inc()
	for _, l := range b.snapshot() {
		l.OnDiscoveryMessage(e)
	}
}

func (b *eventBus) firePublish(e PublishEvent) {
	mEvtPublish.Inc()
	for _, l := range b.snapshot() {
		l.OnPublishMessage(e)
	}
}

func (b *eventBus) fireClient(e ClientMessageEvent) {
	mEvtClient.Inc()
	for _, l := range b.snapshot() {
		l.OnClientMessage(e)
	}
}

func (b *eventBus) fireServer(e ServerMessageEvent) {
	mEvtServer.Inc()
	for _, l := range b.snapshot() {
		l.OnServerMessage(e)
	}
}

func (b *eventBus) fireDeployment(e DeploymentMessageEvent) {
	mEvtDeployment.Inc()
	for _, l := range b.snapshot() {
		l.OnDeploymentMessage(e)
	}
}

func (b *eventBus) fireHealth(e HealthEvent) {
	mEvtHealth.Inc()
	for _, l := range b.snapshot() {
		l.OnHealthMessage(e)
	}
}

// QueuedListener decouples a slow listener from the firing component: events
// are buffered on a channel and delivered from a dedicated goroutine.
// Events beyond the buffer capacity are dropped and counted.
type QueuedListener struct {
	inner PeerMessageListener
	ch    chan func()
	done  chan struct{}

	mu      sync.Mutex
	dropped int64
	closed  bool
}

// NewQueuedListener wraps inner with an event queue of the given capacity.
// Close must be called to release the delivery goroutine.
func NewQueuedListener(inner PeerMessageListener, capacity int) *QueuedListener {
	if capacity <= 0 {
		capacity = 256
	}
	q := &QueuedListener{
		inner: inner,
		ch:    make(chan func(), capacity),
		done:  make(chan struct{}),
	}
	go func() {
		defer close(q.done)
		for fn := range q.ch {
			fn()
		}
	}()
	return q
}

// Dropped reports how many events overflowed the queue.
func (q *QueuedListener) Dropped() int64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// Close stops delivery after draining queued events.
func (q *QueuedListener) Close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.ch)
	<-q.done
}

func (q *QueuedListener) enqueue(fn func()) {
	q.mu.Lock()
	if q.closed {
		q.dropped++
		mEvtDropped.Inc()
		q.mu.Unlock()
		return
	}
	select {
	case q.ch <- fn:
	default:
		q.dropped++
		mEvtDropped.Inc()
	}
	q.mu.Unlock()
}

// OnDiscoveryMessage implements PeerMessageListener.
func (q *QueuedListener) OnDiscoveryMessage(e DiscoveryEvent) {
	q.enqueue(func() { q.inner.OnDiscoveryMessage(e) })
}

// OnPublishMessage implements PeerMessageListener.
func (q *QueuedListener) OnPublishMessage(e PublishEvent) {
	q.enqueue(func() { q.inner.OnPublishMessage(e) })
}

// OnClientMessage implements PeerMessageListener.
func (q *QueuedListener) OnClientMessage(e ClientMessageEvent) {
	q.enqueue(func() { q.inner.OnClientMessage(e) })
}

// OnServerMessage implements PeerMessageListener.
func (q *QueuedListener) OnServerMessage(e ServerMessageEvent) {
	q.enqueue(func() { q.inner.OnServerMessage(e) })
}

// OnDeploymentMessage implements PeerMessageListener.
func (q *QueuedListener) OnDeploymentMessage(e DeploymentMessageEvent) {
	q.enqueue(func() { q.inner.OnDeploymentMessage(e) })
}

// OnHealthMessage implements PeerMessageListener.
func (q *QueuedListener) OnHealthMessage(e HealthEvent) {
	q.enqueue(func() { q.inner.OnHealthMessage(e) })
}
