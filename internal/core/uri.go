package core

import (
	"fmt"
	"strings"
)

// P2PSScheme is the URI scheme WSPeer defines for P2PS endpoints.
const P2PSScheme = "p2ps"

// P2PSURI is WSPeer's logical endpoint reference for the P2PS binding
// (paper §IV-B):
//
//	p2ps://<peer-id>/<service-name>#<pipe-name>
//
// "The host component is the peer's unique id. The path component
// represents the name of the service advertisement associated with the
// pipe. If there is no service associated with the pipe, the path
// component may be empty. The fragment component represents the pipe
// name." Defining the scheme lets WSPeer "chain separate elements together
// into a single parsable unit".
type P2PSURI struct {
	Peer    string // peer ID (required)
	Service string // service advertisement name (optional)
	Pipe    string // pipe name (optional)
}

// String renders the URI.
func (u P2PSURI) String() string {
	var b strings.Builder
	b.WriteString(P2PSScheme)
	b.WriteString("://")
	b.WriteString(u.Peer)
	if u.Service != "" {
		b.WriteByte('/')
		b.WriteString(u.Service)
	}
	if u.Pipe != "" {
		b.WriteByte('#')
		b.WriteString(u.Pipe)
	}
	return b.String()
}

// WithPipe returns a copy addressing a specific pipe.
func (u P2PSURI) WithPipe(pipe string) P2PSURI {
	u.Pipe = pipe
	return u
}

// ParseP2PSURI parses a p2ps:// URI.
func ParseP2PSURI(s string) (P2PSURI, error) {
	const prefix = P2PSScheme + "://"
	if !strings.HasPrefix(s, prefix) {
		return P2PSURI{}, fmt.Errorf("core: %q is not a p2ps URI", s)
	}
	rest := s[len(prefix):]
	var u P2PSURI
	if i := strings.IndexByte(rest, '#'); i >= 0 {
		u.Pipe = rest[i+1:]
		rest = rest[:i]
	}
	if i := strings.IndexByte(rest, '/'); i >= 0 {
		u.Service = rest[i+1:]
		rest = rest[:i]
	}
	u.Peer = rest
	if u.Peer == "" {
		return P2PSURI{}, fmt.Errorf("core: p2ps URI %q has no peer id", s)
	}
	if strings.ContainsAny(u.Service, "/") {
		return P2PSURI{}, fmt.Errorf("core: p2ps URI %q has a multi-segment path", s)
	}
	return u, nil
}

// IsP2PSURI reports whether s looks like a p2ps:// URI.
func IsP2PSURI(s string) bool {
	return strings.HasPrefix(s, P2PSScheme+"://")
}
