package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// gatedLocator blocks its discovery until the test opens the gate — the
// deterministic stand-in for a slow P2P search.
type gatedLocator struct {
	name    string
	gate    chan struct{}
	results []*ServiceInfo
}

func (g *gatedLocator) Name() string { return g.name }
func (g *gatedLocator) Locate(ctx context.Context, q ServiceQuery, found func(*ServiceInfo)) error {
	select {
	case <-g.gate:
	case <-ctx.Done():
		return ctx.Err()
	}
	for _, r := range g.results {
		found(r)
	}
	return nil
}

// TestLocateAsyncStreams proves hits are delivered as locators report
// them, not buffered until the whole search completes: the slow locator's
// gate only opens after the fast locator's hit has already been streamed
// to onFound. The pre-streaming implementation (results collected, then
// replayed after Locate returned) deadlocks here and times out.
func TestLocateAsyncStreams(t *testing.T) {
	p := NewPeer()
	gate := make(chan struct{})
	p.Client().AddLocator(&fakeLocator{
		name:    "fast",
		results: []*ServiceInfo{{Name: "Echo", Endpoint: "http://fast/Echo"}},
	})
	p.Client().AddLocator(&gatedLocator{
		name:    "slow",
		gate:    gate,
		results: []*ServiceInfo{{Name: "Echo", Endpoint: "p2ps://slow/Echo"}},
	})

	finds := make(chan string, 2)
	done := make(chan error, 1)
	var once sync.Once
	p.Client().LocateAsync(context.Background(), NameQuery{Name: "Echo"},
		func(info *ServiceInfo) {
			finds <- info.Endpoint
			once.Do(func() { close(gate) }) // first streamed hit releases the slow search
		},
		func(err error) { done <- err })

	got := map[string]bool{}
	for i := 0; i < 2; i++ {
		select {
		case ep := <-finds:
			got[ep] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("hit %d never streamed (got %v) — results were buffered", i, got)
		}
	}
	if !got["http://fast/Echo"] || !got["p2ps://slow/Echo"] {
		t.Fatalf("hits = %v", got)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("onDone never fired")
	}
}

// TestLocatorMutationDuringLocate races AddLocator/RemoveLocator against
// live discoveries; run under -race it proves the locator list snapshot
// is safe against concurrent mutation.
func TestLocatorMutationDuringLocate(t *testing.T) {
	p := NewPeer()
	base := &fakeLocator{
		name:    "base",
		delay:   time.Millisecond,
		results: []*ServiceInfo{{Name: "Echo", Endpoint: "http://base/Echo"}},
	}
	p.Client().AddLocator(base)

	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // churn: transient locators come and go mid-search
		defer wg.Done()
		for i := 0; i < 50; i++ {
			l := &fakeLocator{
				name:    fmt.Sprintf("transient-%d", i),
				results: []*ServiceInfo{{Name: "Echo", Endpoint: fmt.Sprintf("http://t%d/Echo", i)}},
			}
			p.Client().AddLocator(l)
			if !p.Client().RemoveLocator(l) {
				t.Error("transient locator not removed")
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			infos, err := p.Client().Locate(ctx, NameQuery{Name: "Echo"})
			if err != nil {
				t.Errorf("locate %d: %v", i, err)
				return
			}
			// The base locator is never removed, so its hit is always there.
			found := false
			for _, info := range infos {
				if info.Endpoint == "http://base/Echo" {
					found = true
				}
			}
			if !found {
				t.Errorf("locate %d lost the stable locator's hit: %v", i, infos)
				return
			}
		}
	}()
	wg.Wait()

	// Removing a never-added locator reports false.
	if p.Client().RemoveLocator(&fakeLocator{name: "ghost"}) {
		t.Fatal("ghost locator removed")
	}
}

// TestLocateOneErrorPaths pins LocateOne's two empty outcomes apart: no
// results with healthy locators is a "no service found" miss, while no
// results because every locator failed surfaces the joined error.
func TestLocateOneErrorPaths(t *testing.T) {
	// Healthy locators, nothing matching.
	p := NewPeer()
	p.Client().AddLocator(&fakeLocator{name: "l", results: []*ServiceInfo{{Name: "Other", Endpoint: "http://o"}}})
	_, err := p.Client().LocateOne(context.Background(), NameQuery{Name: "Echo"})
	if err == nil || err.Error() != `core: no service found for "Echo"` {
		t.Fatalf("miss err = %v", err)
	}

	// Every locator failing: the joined error wins over the miss message.
	p2 := NewPeer()
	errA, errB := errors.New("registry down"), errors.New("pipe broken")
	p2.Client().AddLocator(&fakeLocator{name: "a", err: errA})
	p2.Client().AddLocator(&fakeLocator{name: "b", err: errB})
	_, err = p2.Client().LocateOne(context.Background(), NameQuery{Name: "Echo"})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined err = %v", err)
	}

	// Partial failure with a hit: the hit wins, no error.
	p3 := NewPeer()
	p3.Client().AddLocator(&fakeLocator{name: "a", err: errA})
	p3.Client().AddLocator(&fakeLocator{name: "ok", results: []*ServiceInfo{{Name: "Echo", Endpoint: "http://ok"}}})
	info, err := p3.Client().LocateOne(context.Background(), NameQuery{Name: "Echo"})
	if err != nil || info.Endpoint != "http://ok" {
		t.Fatalf("partial = %+v, %v", info, err)
	}
}
