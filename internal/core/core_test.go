package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"wspeer/internal/engine"
	"wspeer/internal/transport"
)

// ---------------------------------------------------------------------------
// Fakes

type fakeLocator struct {
	name    string
	results []*ServiceInfo
	err     error
	delay   time.Duration
}

func (f *fakeLocator) Name() string { return f.name }
func (f *fakeLocator) Locate(ctx context.Context, q ServiceQuery, found func(*ServiceInfo)) error {
	if f.delay > 0 {
		select {
		case <-time.After(f.delay):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	for _, r := range f.results {
		if q.QueryName() == "" || q.QueryName() == r.Name {
			found(r)
		}
	}
	return f.err
}

type fakeInvoker struct {
	schemes []string
	mu      sync.Mutex
	calls   []string
	result  *engine.Result
	err     error
}

func (f *fakeInvoker) Schemes() []string { return f.schemes }
func (f *fakeInvoker) Invoke(ctx context.Context, svc *ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	f.mu.Lock()
	f.calls = append(f.calls, svc.Endpoint+"!"+op)
	f.mu.Unlock()
	return f.result, f.err
}

type fakeDeployer struct {
	name     string
	err      error
	deployed []string
	removed  []string
}

func (f *fakeDeployer) Name() string { return f.name }
func (f *fakeDeployer) Deploy(def engine.ServiceDef) (*Deployment, error) {
	if f.err != nil {
		return nil, f.err
	}
	f.deployed = append(f.deployed, def.Name)
	return &Deployment{Endpoint: "mem://host/" + def.Name, Service: mustService(def)}, nil
}
func (f *fakeDeployer) Undeploy(name string) error {
	f.removed = append(f.removed, name)
	return nil
}

func mustService(def engine.ServiceDef) *engine.Service {
	e := engine.New()
	svc, err := e.Deploy(def)
	if err != nil {
		panic(err)
	}
	return svc
}

type fakePublisher struct {
	name        string
	err         error
	mu          sync.Mutex
	published   []string
	unpublished []string
}

func (f *fakePublisher) Name() string { return f.name }
func (f *fakePublisher) Publish(ctx context.Context, dep *Deployment) (string, error) {
	if f.err != nil {
		return "", f.err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	loc := f.name + ":" + dep.Service.Name()
	f.published = append(f.published, loc)
	return loc, nil
}
func (f *fakePublisher) Unpublish(ctx context.Context, location string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.unpublished = append(f.unpublished, location)
	return nil
}

type recorder struct {
	mu         sync.Mutex
	discovery  []DiscoveryEvent
	publish    []PublishEvent
	client     []ClientMessageEvent
	server     []ServerMessageEvent
	deployment []DeploymentMessageEvent
	health     []HealthEvent
}

func (r *recorder) OnDiscoveryMessage(e DiscoveryEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.discovery = append(r.discovery, e)
}
func (r *recorder) OnPublishMessage(e PublishEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.publish = append(r.publish, e)
}
func (r *recorder) OnClientMessage(e ClientMessageEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.client = append(r.client, e)
}
func (r *recorder) OnServerMessage(e ServerMessageEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.server = append(r.server, e)
}
func (r *recorder) OnDeploymentMessage(e DeploymentMessageEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.deployment = append(r.deployment, e)
}
func (r *recorder) OnHealthMessage(e HealthEvent) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.health = append(r.health, e)
}

func echoDef() engine.ServiceDef {
	return engine.ServiceDef{
		Name: "Echo",
		Operations: []engine.OperationDef{
			{Name: "echo", Func: func(s string) string { return s }},
		},
	}
}

// ---------------------------------------------------------------------------
// URI tests

func TestP2PSURI(t *testing.T) {
	cases := []struct {
		in   string
		want P2PSURI
		ok   bool
	}{
		{"p2ps://peer-1/Echo#echoString", P2PSURI{Peer: "peer-1", Service: "Echo", Pipe: "echoString"}, true},
		{"p2ps://peer-1/Echo", P2PSURI{Peer: "peer-1", Service: "Echo"}, true},
		{"p2ps://peer-1", P2PSURI{Peer: "peer-1"}, true},
		{"p2ps://peer-1#reply", P2PSURI{Peer: "peer-1", Pipe: "reply"}, true},
		{"http://x/y", P2PSURI{}, false},
		{"p2ps://", P2PSURI{}, false},
		{"p2ps://p/a/b", P2PSURI{}, false},
	}
	for _, c := range cases {
		got, err := ParseP2PSURI(c.in)
		if c.ok != (err == nil) {
			t.Errorf("ParseP2PSURI(%q) err = %v", c.in, err)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseP2PSURI(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if c.ok && got.String() != c.in {
			t.Errorf("String() = %q, want %q", got.String(), c.in)
		}
	}
	if !IsP2PSURI("p2ps://x") || IsP2PSURI("http://x") {
		t.Error("IsP2PSURI")
	}
	u := P2PSURI{Peer: "p", Service: "S"}
	if u.WithPipe("q").Pipe != "q" || u.Pipe != "" {
		t.Error("WithPipe must not mutate the receiver")
	}
}

func TestQuickP2PSURIRoundTrip(t *testing.T) {
	clean := func(s string) string {
		out := []rune{}
		for _, r := range s {
			if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '-' {
				out = append(out, r)
			}
		}
		return string(out)
	}
	f := func(peer, svc, pipe string) bool {
		u := P2PSURI{Peer: "p" + clean(peer), Service: clean(svc), Pipe: clean(pipe)}
		back, err := ParseP2PSURI(u.String())
		return err == nil && back == u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// ---------------------------------------------------------------------------
// Event bus tests

func TestListenerAddRemove(t *testing.T) {
	p := NewPeer()
	rec := &recorder{}
	p.AddListener(rec)
	p.FireServerMessage("S", &transport.Request{}, &transport.Response{})
	if len(rec.server) != 1 || rec.server[0].Service != "S" {
		t.Fatalf("server events: %+v", rec.server)
	}
	if !p.RemoveListener(rec) {
		t.Fatal("remove")
	}
	if p.RemoveListener(rec) {
		t.Fatal("double remove")
	}
	p.FireServerMessage("S", nil, nil)
	if len(rec.server) != 1 {
		t.Fatal("event delivered after removal")
	}
}

func TestListenerFuncsNilSafe(t *testing.T) {
	p := NewPeer()
	var got []string
	p.AddListener(ListenerFuncs{
		Server: func(e ServerMessageEvent) { got = append(got, e.Service) },
	})
	p.FireServerMessage("X", nil, nil)
	// The other four callbacks are nil and must not panic.
	p.bus.fireDiscovery(DiscoveryEvent{})
	p.bus.firePublish(PublishEvent{})
	p.bus.fireClient(ClientMessageEvent{})
	p.bus.fireDeployment(DeploymentMessageEvent{})
	if len(got) != 1 || got[0] != "X" {
		t.Fatalf("got %v", got)
	}
}

func TestQueuedListener(t *testing.T) {
	rec := &recorder{}
	q := NewQueuedListener(rec, 4)
	for i := 0; i < 3; i++ {
		q.OnServerMessage(ServerMessageEvent{Service: fmt.Sprintf("s%d", i)})
	}
	q.Close() // drains before returning
	rec.mu.Lock()
	n := len(rec.server)
	rec.mu.Unlock()
	if n != 3 {
		t.Fatalf("delivered %d", n)
	}
	// After close, events are dropped, not delivered.
	q.OnServerMessage(ServerMessageEvent{})
	if q.Dropped() != 1 {
		t.Fatalf("dropped = %d", q.Dropped())
	}
	q.Close() // idempotent
}

func TestQueuedListenerOverflow(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	slow := ListenerFuncs{Server: func(ServerMessageEvent) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-block
	}}
	q := NewQueuedListener(slow, 2)
	q.OnServerMessage(ServerMessageEvent{}) // picked up by goroutine
	<-started
	q.OnServerMessage(ServerMessageEvent{}) // buffered 1
	q.OnServerMessage(ServerMessageEvent{}) // buffered 2
	q.OnServerMessage(ServerMessageEvent{}) // overflow
	if q.Dropped() == 0 {
		t.Fatal("overflow not counted")
	}
	close(block)
	q.Close()
}

// ---------------------------------------------------------------------------
// Client tests

func TestLocateMergesLocators(t *testing.T) {
	p := NewPeer()
	rec := &recorder{}
	p.AddListener(rec)
	a := &ServiceInfo{Name: "Echo", Endpoint: "http://a"}
	b := &ServiceInfo{Name: "Echo", Endpoint: "p2ps://b/Echo"}
	p.Client().AddLocator(&fakeLocator{name: "uddi", results: []*ServiceInfo{a}})
	p.Client().AddLocator(&fakeLocator{name: "p2ps", results: []*ServiceInfo{b}})

	infos, err := p.Client().Locate(context.Background(), NameQuery{Name: "Echo"})
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("infos = %d", len(infos))
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	var finds, dones int
	for _, e := range rec.discovery {
		if e.Done {
			dones++
		} else if e.Service != nil {
			finds++
			if e.Locator == "" {
				t.Error("event missing locator name")
			}
		}
	}
	if finds != 2 || dones != 1 {
		t.Fatalf("events: %d finds, %d dones", finds, dones)
	}
	// Locator attribution filled in on the info itself.
	for _, info := range infos {
		if info.Locator == "" {
			t.Error("info missing locator attribution")
		}
	}
}

func TestLocatePartialFailure(t *testing.T) {
	p := NewPeer()
	ok := &fakeLocator{name: "good", results: []*ServiceInfo{{Name: "Echo", Endpoint: "http://a"}}}
	bad := &fakeLocator{name: "bad", err: errors.New("registry down")}
	p.Client().AddLocator(ok)
	p.Client().AddLocator(bad)
	infos, err := p.Client().Locate(context.Background(), NameQuery{Name: "Echo"})
	if err != nil {
		t.Fatalf("partial failure should still deliver results: %v", err)
	}
	if len(infos) != 1 {
		t.Fatalf("infos = %d", len(infos))
	}
	// All locators failing surfaces the error.
	p2 := NewPeer()
	p2.Client().AddLocator(bad)
	if _, err := p2.Client().Locate(context.Background(), NameQuery{Name: "Echo"}); err == nil {
		t.Fatal("total failure not reported")
	}
}

func TestLocateNoLocator(t *testing.T) {
	p := NewPeer()
	if _, err := p.Client().Locate(context.Background(), NameQuery{}); !errors.Is(err, ErrNoLocator) {
		t.Fatalf("err = %v", err)
	}
}

func TestLocateOne(t *testing.T) {
	p := NewPeer()
	p.Client().AddLocator(&fakeLocator{name: "l", results: []*ServiceInfo{{Name: "Echo", Endpoint: "http://a"}}})
	info, err := p.Client().LocateOne(context.Background(), NameQuery{Name: "Echo"})
	if err != nil || info.Endpoint != "http://a" {
		t.Fatalf("%+v, %v", info, err)
	}
	if _, err := p.Client().LocateOne(context.Background(), NameQuery{Name: "Missing"}); err == nil {
		t.Fatal("missing service found")
	}
}

func TestLocateAsync(t *testing.T) {
	p := NewPeer()
	p.Client().AddLocator(&fakeLocator{
		name:    "slow",
		delay:   10 * time.Millisecond,
		results: []*ServiceInfo{{Name: "Echo", Endpoint: "http://a"}},
	})
	foundCh := make(chan *ServiceInfo, 1)
	doneCh := make(chan error, 1)
	p.Client().LocateAsync(context.Background(), NameQuery{Name: "Echo"},
		func(info *ServiceInfo) { foundCh <- info },
		func(err error) { doneCh <- err })
	select {
	case info := <-foundCh:
		if info.Name != "Echo" {
			t.Fatalf("info = %+v", info)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("async find never arrived")
	}
	if err := <-doneCh; err != nil {
		t.Fatal(err)
	}
}

func TestInvocationRouting(t *testing.T) {
	p := NewPeer()
	rec := &recorder{}
	p.AddListener(rec)
	httpInv := &fakeInvoker{schemes: []string{"http", "httpg"}}
	p2psInv := &fakeInvoker{schemes: []string{"p2ps"}}
	p.Client().RegisterInvoker(httpInv)
	p.Client().RegisterInvoker(p2psInv)

	inv, err := p.Client().NewInvocation(&ServiceInfo{Name: "Echo", Endpoint: "p2ps://p/Echo"})
	if err != nil {
		t.Fatal(err)
	}
	if inv.Service().Name != "Echo" {
		t.Fatal("Service accessor")
	}
	if _, err := inv.Invoke(context.Background(), "echo", engine.P("msg", "x")); err != nil {
		t.Fatal(err)
	}
	if len(p2psInv.calls) != 1 || len(httpInv.calls) != 0 {
		t.Fatalf("routing: p2ps=%v http=%v", p2psInv.calls, httpInv.calls)
	}
	rec.mu.Lock()
	if len(rec.client) != 1 || rec.client[0].Operation != "echo" {
		t.Fatalf("client events: %+v", rec.client)
	}
	rec.mu.Unlock()

	// httpg routes to the http invoker registration.
	inv2, err := p.Client().NewInvocation(&ServiceInfo{Name: "E", Endpoint: "httpg://h/E"})
	if err != nil {
		t.Fatal(err)
	}
	inv2.Invoke(context.Background(), "op")
	if len(httpInv.calls) != 1 {
		t.Fatal("httpg not routed")
	}

	// Unknown scheme.
	if _, err := p.Client().NewInvocation(&ServiceInfo{Endpoint: "gopher://x"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := p.Client().NewInvocation(nil); err == nil {
		t.Fatal("nil info accepted")
	}
}

func TestInvokeAsync(t *testing.T) {
	p := NewPeer()
	want := errors.New("remote fault")
	p.Client().RegisterInvoker(&fakeInvoker{schemes: []string{"http"}, err: want})
	inv, err := p.Client().NewInvocation(&ServiceInfo{Name: "E", Endpoint: "http://h/E"})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	inv.InvokeAsync(context.Background(), "op", nil, func(_ *engine.Result, err error) { got <- err })
	select {
	case err := <-got:
		if !errors.Is(err, want) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("async callback never fired")
	}
}

// ---------------------------------------------------------------------------
// Server tests

func TestDeployPublishUndeploy(t *testing.T) {
	p := NewPeer()
	rec := &recorder{}
	p.AddListener(rec)
	dep := &fakeDeployer{name: "httpd"}
	pub1 := &fakePublisher{name: "uddi"}
	pub2 := &fakePublisher{name: "p2ps"}
	p.Server().SetDeployer(dep)
	p.Server().AddPublisher(pub1)
	p.Server().AddPublisher(pub2)

	d, err := p.Server().DeployAndPublish(context.Background(), echoDef())
	if err != nil {
		t.Fatal(err)
	}
	if d.Endpoint != "mem://host/Echo" || d.Deployer != "httpd" {
		t.Fatalf("deployment: %+v", d)
	}
	if len(pub1.published) != 1 || len(pub2.published) != 1 {
		t.Fatal("not published everywhere")
	}
	if p.Server().Deployment("Echo") == nil || len(p.Server().Deployments()) != 1 {
		t.Fatal("deployment bookkeeping")
	}
	rec.mu.Lock()
	if len(rec.deployment) != 1 || rec.deployment[0].Endpoint != "mem://host/Echo" {
		t.Fatalf("deployment events: %+v", rec.deployment)
	}
	if len(rec.publish) != 2 {
		t.Fatalf("publish events: %+v", rec.publish)
	}
	rec.mu.Unlock()

	if err := p.Server().Undeploy(context.Background(), "Echo"); err != nil {
		t.Fatal(err)
	}
	if len(pub1.unpublished) != 1 || len(pub2.unpublished) != 1 {
		t.Fatal("not unpublished everywhere")
	}
	if len(dep.removed) != 1 {
		t.Fatal("deployer not asked to undeploy")
	}
	if p.Server().Deployment("Echo") != nil {
		t.Fatal("deployment lingers")
	}
	rec.mu.Lock()
	if len(rec.deployment) != 2 || !rec.deployment[1].Undeployed {
		t.Fatalf("undeploy event: %+v", rec.deployment)
	}
	rec.mu.Unlock()

	if err := p.Server().Undeploy(context.Background(), "Echo"); err == nil {
		t.Fatal("double undeploy accepted")
	}
}

func TestDeployErrors(t *testing.T) {
	p := NewPeer()
	rec := &recorder{}
	p.AddListener(rec)
	if _, err := p.Server().Deploy(echoDef()); !errors.Is(err, ErrNoDeployer) {
		t.Fatalf("err = %v", err)
	}
	want := errors.New("port in use")
	p.Server().SetDeployer(&fakeDeployer{name: "d", err: want})
	if _, err := p.Server().Deploy(echoDef()); !errors.Is(err, want) {
		t.Fatalf("err = %v", err)
	}
	rec.mu.Lock()
	if len(rec.deployment) != 1 || rec.deployment[0].Err == nil {
		t.Fatalf("failure event: %+v", rec.deployment)
	}
	rec.mu.Unlock()
}

func TestPublishErrors(t *testing.T) {
	p := NewPeer()
	p.Server().SetDeployer(&fakeDeployer{name: "d"})
	d, err := p.Server().Deploy(echoDef())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Server().Publish(context.Background(), d); err == nil {
		t.Fatal("publish with no publishers accepted")
	}
	good := &fakePublisher{name: "good"}
	bad := &fakePublisher{name: "bad", err: errors.New("down")}
	p.Server().AddPublisher(good)
	p.Server().AddPublisher(bad)
	if err := p.Server().Publish(context.Background(), d); err == nil {
		t.Fatal("publisher failure not reported")
	}
	// The good publisher still published; undeploy withdraws it.
	if len(good.published) != 1 {
		t.Fatal("good publisher skipped")
	}
	if err := p.Server().Undeploy(context.Background(), "Echo"); err != nil {
		t.Fatal(err)
	}
	if len(good.unpublished) != 1 {
		t.Fatal("good publication not withdrawn")
	}
}

func TestExprQueryName(t *testing.T) {
	if (ExprQuery{}).QueryName() != "*" {
		t.Fatal("empty name should default to wildcard")
	}
	if (ExprQuery{Name: "Echo"}).QueryName() != "Echo" {
		t.Fatal("explicit name lost")
	}
}
