package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wspeer/internal/engine"
	"wspeer/internal/resilience"
)

// blockingInvoker holds every call on a gate so the test controls when
// in-flight invocations complete.
type blockingInvoker struct {
	schemes []string
	gate    chan struct{}
	started chan struct{} // one send per call that begins
	calls   atomic.Int64
}

func (b *blockingInvoker) Schemes() []string { return b.schemes }
func (b *blockingInvoker) Invoke(ctx context.Context, svc *ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	b.calls.Add(1)
	select {
	case b.started <- struct{}{}:
	default:
	}
	<-b.gate
	return &engine.Result{}, nil
}

// TestInvokeManyMidBatchShed pins the per-slot error semantics when the
// scheduler sheds part of a batch: shed slots carry *OverloadError, the
// surviving slots succeed, and the output stays in input order.
func TestInvokeManyMidBatchShed(t *testing.T) {
	p := NewPeer()
	// One worker, one queue slot: the first invocation pins the pool, one
	// more waits, and the rest of the batch is shed.
	p.Client().ConfigureScheduler(SchedulerOptions{MaxConcurrent: 1, MaxQueue: 1})
	inv := &blockingInvoker{
		schemes: []string{"http"},
		gate:    make(chan struct{}),
		started: make(chan struct{}, 1),
	}
	p.Client().RegisterInvoker(inv)

	svcs := make([]*ServiceInfo, 6)
	for i := range svcs {
		svcs[i] = &ServiceInfo{Name: "E", Endpoint: "http://h/E"}
	}

	// Release the gate once the first invocation is in flight, so the
	// batch ends with at least one success and at least one shed slot.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-inv.started
		time.Sleep(20 * time.Millisecond) // let the rest of the batch hit the full pool
		close(inv.gate)
	}()
	out := p.Client().InvokeMany(context.Background(), svcs, "op", nil)
	wg.Wait()

	if len(out) != len(svcs) {
		t.Fatalf("slots = %d, want %d", len(out), len(svcs))
	}
	var ok, shed int
	for i, r := range out {
		if r.Service != svcs[i] {
			t.Fatalf("slot %d out of input order: %+v", i, r.Service)
		}
		switch {
		case r.Err == nil:
			if r.Result == nil {
				t.Fatalf("successful slot %d has no result", i)
			}
			ok++
		default:
			var oe *resilience.OverloadError
			if !errors.As(r.Err, &oe) {
				t.Fatalf("slot %d error = %T %v, want *OverloadError", i, r.Err, r.Err)
			}
			if r.Result != nil {
				t.Fatalf("shed slot %d carries a result", i)
			}
			shed++
		}
	}
	if ok < 1 || shed < 1 {
		t.Fatalf("ok=%d shed=%d, want a mid-batch mix of both", ok, shed)
	}
	if st := p.Client().SchedulerStats(); st.Shed != int64(shed) {
		t.Fatalf("scheduler shed = %d, slots shed = %d", st.Shed, shed)
	}
}

// slowFastInvoker answers slowly on one endpoint and fast on the rest.
type slowFastInvoker struct {
	schemes  []string
	slowEP   string
	slowWait time.Duration
	calls    atomic.Int64
	slow     atomic.Int64
}

func (s *slowFastInvoker) Schemes() []string { return s.schemes }
func (s *slowFastInvoker) Invoke(ctx context.Context, svc *ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	s.calls.Add(1)
	if svc.Endpoint == s.slowEP {
		s.slow.Add(1)
		select {
		case <-time.After(s.slowWait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &engine.Result{}, nil
}

func TestHedgedInvocationWinsOnSecondEndpoint(t *testing.T) {
	p := NewPeer()
	inv := &slowFastInvoker{
		schemes:  []string{"http"},
		slowEP:   "http://slow/E",
		slowWait: 5 * time.Second,
	}
	p.Client().RegisterInvoker(inv)

	hi, err := p.Client().NewHedgedInvocation(HedgeOptions{Threshold: 5 * time.Millisecond},
		&ServiceInfo{Name: "E", Endpoint: "http://slow/E"},
		&ServiceInfo{Name: "E", Endpoint: "http://fast/E"})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := hi.Invoke(context.Background(), "op")
	if err != nil {
		t.Fatalf("hedged invoke: %v", err)
	}
	if res == nil {
		t.Fatalf("no result from hedge winner")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("hedge did not rescue the slow primary (took %v)", elapsed)
	}
	if got := inv.calls.Load(); got != 2 {
		t.Fatalf("calls = %d, want 2 (primary + hedge)", got)
	}
}

func TestHedgedInvocationDeniedWithoutBudgetTokens(t *testing.T) {
	p := NewPeer()
	// A drained budget: floor 1 spent immediately below.
	b := p.Client().ConfigureRetryBudget(resilience.BudgetOptions{Floor: 1, Cap: 1, Ratio: 0.001})
	if !b.TryDraw() {
		t.Fatalf("priming draw failed")
	}
	inv := &slowFastInvoker{
		schemes:  []string{"http"},
		slowEP:   "http://slow/E",
		slowWait: 150 * time.Millisecond,
	}
	p.Client().RegisterInvoker(inv)
	hi, err := p.Client().NewHedgedInvocation(HedgeOptions{Threshold: 5 * time.Millisecond},
		&ServiceInfo{Name: "E", Endpoint: "http://slow/E"},
		&ServiceInfo{Name: "E", Endpoint: "http://fast/E"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hi.Invoke(context.Background(), "op"); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	// With no tokens the hedge may not launch: only the slow primary ran.
	if got := inv.calls.Load(); got != 1 {
		t.Fatalf("calls = %d, want 1 (hedge denied by empty budget)", got)
	}
}

func TestClientBudgetCreditsOnLogicalSuccess(t *testing.T) {
	p := NewPeer()
	b := p.Client().ConfigureRetryBudget(resilience.BudgetOptions{Floor: 1, Cap: 10, Ratio: 0.25})
	p.Client().RegisterInvoker(&fakeInvoker{schemes: []string{"http"}, result: &engine.Result{}})
	ivk, err := p.Client().NewInvocation(&ServiceInfo{Name: "E", Endpoint: "http://h/E"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := ivk.Invoke(context.Background(), "op"); err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
	}
	// Floor 1 + 4 × 0.25 = 2 tokens.
	if got := b.Balance(); got != 2 {
		t.Fatalf("balance = %v, want 2 after four credited successes", got)
	}
}

func TestHedgedInvocationSingleEndpoint(t *testing.T) {
	p := NewPeer()
	p.Client().RegisterInvoker(&fakeInvoker{schemes: []string{"http"}, result: &engine.Result{}})
	hi, err := p.Client().NewHedgedInvocation(HedgeOptions{},
		&ServiceInfo{Name: "E", Endpoint: "http://h/E"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hi.Invoke(context.Background(), "op"); err != nil {
		t.Fatalf("single-endpoint hedged invoke: %v", err)
	}
}
