package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"wspeer/internal/engine"
	"wspeer/internal/pipeline"
	"wspeer/internal/transport"
)

// The tests in this file exist to be run under -race (make check): they
// assert very little beyond "no panic, no deadlock" and instead drive the
// peer's concurrent seams hard — deploy/undeploy racing in-flight
// invocations, and listener churn racing event delivery.

// raceDeployer is a fully mutex-protected ServiceDeployer fake, safe for
// concurrent Deploy/Undeploy from many goroutines.
type raceDeployer struct {
	mu       sync.Mutex
	deployed map[string]bool
}

func (d *raceDeployer) Name() string { return "race" }

func (d *raceDeployer) Deploy(def engine.ServiceDef) (*Deployment, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.deployed == nil {
		d.deployed = make(map[string]bool)
	}
	d.deployed[def.Name] = true
	return &Deployment{Endpoint: "mem://host/" + def.Name, Service: mustService(def)}, nil
}

func (d *raceDeployer) Undeploy(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.deployed[name] {
		return fmt.Errorf("race: %q not deployed", name)
	}
	delete(d.deployed, name)
	return nil
}

// slowInvoker holds every call for a moment so invocations are genuinely
// in flight while deploy/undeploy churn runs.
type slowInvoker struct{}

func (slowInvoker) Schemes() []string { return []string{"mem"} }
func (slowInvoker) Invoke(ctx context.Context, svc *ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	select {
	case <-time.After(100 * time.Microsecond):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return &engine.Result{}, nil
}

func TestConcurrentDeployUndeployWithInFlightInvocations(t *testing.T) {
	p := NewPeer()
	p.Server().SetDeployer(&raceDeployer{})
	p.Server().AddPublisher(&fakePublisher{name: "pub"})
	p.Client().RegisterInvoker(slowInvoker{})
	p.AddListener(&recorder{}) // events must be deliverable throughout

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const (
		churners = 4
		invokers = 4
		rounds   = 50
	)
	var wg sync.WaitGroup

	// Deploy/undeploy churn, each goroutine on its own service name so
	// every undeploy targets a live deployment.
	for g := 0; g < churners; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("Svc%d", g)
			def := engine.ServiceDef{
				Name: name,
				Operations: []engine.OperationDef{
					{Name: "echo", Func: func(s string) string { return s }},
				},
			}
			for i := 0; i < rounds; i++ {
				if _, err := p.Server().DeployAndPublish(ctx, def); err != nil {
					t.Errorf("deploy %s: %v", name, err)
					return
				}
				if err := p.Server().Undeploy(ctx, name); err != nil {
					t.Errorf("undeploy %s: %v", name, err)
					return
				}
			}
		}(g)
	}

	// In-flight invocations (with an interceptor being installed midway,
	// racing the per-call chain snapshot).
	for g := 0; g < invokers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			inv, err := p.Client().NewInvocation(&ServiceInfo{Name: "Target", Endpoint: "mem://host/Target"})
			if err != nil {
				t.Errorf("new invocation: %v", err)
				return
			}
			for i := 0; i < rounds; i++ {
				if i == rounds/2 && g == 0 {
					p.Client().Use(pipeline.Deadline(time.Second))
				}
				if _, err := inv.Invoke(ctx, "echo", engine.P("msg", "x")); err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
			}
		}(g)
	}

	wg.Wait()
}

func TestListenerChurnRacesEventDelivery(t *testing.T) {
	p := NewPeer()
	p.Client().RegisterInvoker(slowInvoker{})

	ctx := context.Background()
	stop := make(chan struct{})
	var churn, wg sync.WaitGroup

	// Listener churn: add and remove recorders while events flow.
	for g := 0; g < 3; g++ {
		churn.Add(1)
		go func() {
			defer churn.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rec := &recorder{}
				p.AddListener(rec)
				p.RemoveListener(rec)
			}
		}()
	}

	// A listener present before any event fires must observe all of them,
	// however hard the churn above races the delivery path.
	rec := &recorder{}
	p.AddListener(rec)

	// Client events from invocations, server events fired directly.
	wg.Add(2)
	go func() {
		defer wg.Done()
		inv, err := p.Client().NewInvocation(&ServiceInfo{Name: "E", Endpoint: "mem://h/E"})
		if err != nil {
			t.Errorf("new invocation: %v", err)
			return
		}
		for i := 0; i < 200; i++ {
			if _, err := inv.Invoke(ctx, "op"); err != nil {
				t.Errorf("invoke: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			p.FireServerMessage("E", &transport.Request{}, &transport.Response{})
		}
	}()

	wg.Wait()
	close(stop)
	churn.Wait()

	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.server) != 200 {
		t.Fatalf("stable listener saw %d/200 server events", len(rec.server))
	}
	if len(rec.client) != 200 {
		t.Fatalf("stable listener saw %d/200 client events", len(rec.client))
	}
}
