package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wspeer/internal/engine"
	"wspeer/internal/resilience"
	"wspeer/internal/resolve"
)

// countLocator counts live Locate fan-outs so tests can prove a cache hit
// never reached discovery.
type countLocator struct {
	name    string
	results []*ServiceInfo
	err     error
	calls   atomic.Int64
}

func (f *countLocator) Name() string { return f.name }
func (f *countLocator) Locate(ctx context.Context, q ServiceQuery, found func(*ServiceInfo)) error {
	f.calls.Add(1)
	for _, r := range f.results {
		if q.QueryName() != "" && q.QueryName() != r.Name {
			continue
		}
		// Each hit is a fresh copy: cached lines must not alias locator
		// state between resolutions.
		info := *r
		found(&info)
	}
	return f.err
}

type keyedQuery struct{ id string }

func (keyedQuery) QueryName() string  { return "keyed" }
func (q keyedQuery) CacheKey() string { return "custom|" + q.id }

func TestQueryKeyCanonicalization(t *testing.T) {
	a := NameQuery{Name: "Echo", MaxResults: 3, Attrs: map[string]string{"ver": "1", "zone": "eu"}}
	b := NameQuery{Name: "Echo", MaxResults: 3, Attrs: map[string]string{"zone": "eu", "ver": "1"}}
	if QueryKey(a) != QueryKey(b) {
		t.Fatalf("attr order changed identity: %q vs %q", QueryKey(a), QueryKey(b))
	}
	if QueryKey(a) == QueryKey(NameQuery{Name: "Echo", MaxResults: 4, Attrs: a.Attrs}) {
		t.Fatal("MaxResults not part of identity")
	}
	if QueryKey(NameQuery{Name: "Echo"}) == QueryKey(ExprQuery{Name: "Echo"}) {
		t.Fatal("query kinds collide")
	}
	if QueryKey(keyedQuery{id: "x"}) != "custom|x" {
		t.Fatalf("CacheKeyer not honored: %q", QueryKey(keyedQuery{id: "x"}))
	}
}

func TestLocateCachedServesFromCache(t *testing.T) {
	p := NewPeer()
	loc := &countLocator{name: "l", results: []*ServiceInfo{
		{Name: "Echo", Endpoint: "http://a/Echo"},
		{Name: "Echo", Endpoint: "p2ps://b/Echo"},
	}}
	p.Client().AddLocator(loc)
	ctx := context.Background()
	q := NameQuery{Name: "Echo"}

	first, err := p.Client().LocateCached(ctx, q)
	if err != nil || len(first) != 2 {
		t.Fatalf("first = %v, %v", first, err)
	}
	for i := 0; i < 10; i++ {
		again, err := p.Client().LocateCached(ctx, q)
		if err != nil || len(again) != 2 {
			t.Fatalf("cached = %v, %v", again, err)
		}
	}
	if n := loc.calls.Load(); n != 1 {
		t.Fatalf("live locates = %d, want 1", n)
	}
	s := p.Client().ResolutionCache().Stats()
	if s.Hits != 10 || s.Misses != 1 {
		t.Fatalf("stats = %+v", s)
	}
	// A different query identity is a separate line.
	p.Client().LocateCached(ctx, NameQuery{Name: "Echo", MaxResults: 1})
	if n := loc.calls.Load(); n != 2 {
		t.Fatalf("distinct query shared a line: %d live locates", n)
	}
}

func TestLocateCachedNegative(t *testing.T) {
	p := NewPeer()
	loc := &countLocator{name: "l", err: errors.New("registry down")}
	p.Client().AddLocator(loc)
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := p.Client().LocateCached(ctx, NameQuery{Name: "Echo"}); err == nil {
			t.Fatal("total locator failure not surfaced")
		}
	}
	if n := loc.calls.Load(); n != 1 {
		t.Fatalf("failed resolution not negative-cached: %d live locates", n)
	}
}

func TestConfigureResolutionCacheResets(t *testing.T) {
	p := NewPeer()
	loc := &countLocator{name: "l", results: []*ServiceInfo{{Name: "Echo", Endpoint: "http://a"}}}
	p.Client().AddLocator(loc)
	ctx := context.Background()
	p.Client().LocateCached(ctx, NameQuery{Name: "Echo"})
	p.Client().ConfigureResolutionCache(resolve.Options{TTL: time.Hour})
	p.Client().LocateCached(ctx, NameQuery{Name: "Echo"})
	if n := loc.calls.Load(); n != 2 {
		t.Fatalf("reconfigure kept old lines: %d live locates", n)
	}
	if ttl := p.Client().ResolutionCache().Options().TTL; ttl != time.Hour {
		t.Fatalf("options not applied: TTL = %v", ttl)
	}
}

func TestNewFailoverInvocationFor(t *testing.T) {
	p := NewPeer()
	p.Client().AddLocator(&countLocator{name: "l", results: []*ServiceInfo{
		{Name: "Echo", Endpoint: "http://a/Echo"},
		{Name: "Echo", Endpoint: "http://b/Echo"},
	}})
	p.Client().RegisterInvoker(&fakeInvoker{schemes: []string{"http"}, result: &engine.Result{}})
	inv, err := p.Client().NewFailoverInvocationFor(context.Background(), NameQuery{Name: "Echo"})
	if err != nil {
		t.Fatal(err)
	}
	if len(inv.targets) != 2 {
		t.Fatalf("targets = %d, want 2", len(inv.targets))
	}
	if _, err := p.Client().NewFailoverInvocationFor(context.Background(), NameQuery{Name: "Missing"}); err == nil {
		t.Fatal("missing service bound")
	}
}

func TestBreakerOpenEvictsCachedEndpoint(t *testing.T) {
	p := NewPeer()
	p.Client().ConfigureBreakers(resilience.BreakerOptions{Window: 4, MinSamples: 2, FailureThreshold: 0.5})
	loc := &countLocator{name: "l", results: []*ServiceInfo{
		{Name: "Echo", Endpoint: "http://bad/Echo"},
		{Name: "Echo", Endpoint: "p2ps://ok/Echo"},
	}}
	p.Client().AddLocator(loc)
	p.Client().RegisterInvoker(&fakeInvoker{schemes: []string{"http"}, err: errors.New("conn refused")})
	p.Client().RegisterInvoker(&fakeInvoker{schemes: []string{"p2ps"}, result: &engine.Result{}})
	ctx := context.Background()
	q := NameQuery{Name: "Echo"}

	infos, err := p.Client().LocateCached(ctx, q)
	if err != nil || len(infos) != 2 {
		t.Fatalf("seed = %v, %v", infos, err)
	}

	// Hammer the bad endpoint until its breaker opens — through the
	// failover walk, which records per-attempt breaker outcomes. The
	// OnChange hook must evict the opened endpoint from the cached
	// resolution.
	inv, err := p.Client().NewFailoverInvocation(infos...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := inv.Invoke(ctx, "op"); err != nil {
			t.Fatalf("failover invoke %d: %v", i, err)
		}
	}
	if st := p.Client().Breakers().Breaker("http://bad/Echo").State(); st != resilience.BreakerOpen {
		t.Fatalf("breaker state = %v, want open", st)
	}
	after, err := p.Client().LocateCached(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range after {
		if info.Endpoint == "http://bad/Echo" {
			t.Fatal("broken endpoint still cached")
		}
	}
	if len(after) != 1 || after[0].Endpoint != "p2ps://ok/Echo" {
		t.Fatalf("surviving line = %v", after)
	}
	if n := loc.calls.Load(); n != 1 {
		t.Fatalf("eviction dropped the whole line: %d live locates", n)
	}
}

func TestFailoverMissDemotesCachedEndpoint(t *testing.T) {
	p := NewPeer()
	loc := &countLocator{name: "l", results: []*ServiceInfo{
		{Name: "Echo", Endpoint: "http://flaky/Echo"},
		{Name: "Echo", Endpoint: "p2ps://steady/Echo"},
	}}
	p.Client().AddLocator(loc)
	p.Client().RegisterInvoker(&fakeInvoker{schemes: []string{"http"}, err: errors.New("conn refused")})
	p.Client().RegisterInvoker(&fakeInvoker{schemes: []string{"p2ps"}, result: &engine.Result{}})
	ctx := context.Background()
	q := NameQuery{Name: "Echo"}

	inv, err := p.Client().NewFailoverInvocationFor(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inv.Invoke(ctx, "op"); err != nil {
		t.Fatalf("failover did not recover: %v", err)
	}
	// The failed-over endpoint is now at the back of the cached line.
	after, err := p.Client().LocateCached(ctx, q)
	if err != nil || len(after) != 2 {
		t.Fatalf("after = %v, %v", after, err)
	}
	if after[0].Endpoint != "p2ps://steady/Echo" || after[1].Endpoint != "http://flaky/Echo" {
		t.Fatalf("order = [%s %s], want steady first", after[0].Endpoint, after[1].Endpoint)
	}
	if n := loc.calls.Load(); n != 1 {
		t.Fatalf("demotion invalidated the line: %d live locates", n)
	}
}

// TestLocateCachedConcurrent drives cached resolution from many
// goroutines while invalidation runs — the -race target for the tentpole
// wiring.
func TestLocateCachedConcurrent(t *testing.T) {
	p := NewPeer()
	p.Client().AddLocator(&countLocator{name: "l", results: []*ServiceInfo{
		{Name: "Echo", Endpoint: "http://a/Echo"},
		{Name: "Echo", Endpoint: "http://b/Echo"},
	}})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				switch i % 3 {
				case 0, 1:
					p.Client().LocateCached(ctx, NameQuery{Name: "Echo"})
				default:
					p.Client().ResolutionCache().DemoteEndpoint("http://a/Echo")
				}
			}
		}()
	}
	wg.Wait()
}
