package core

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"wspeer/internal/resilience"
	"wspeer/internal/telemetry"
)

// Spine instruments for the client-side invocation scheduler: lifetime
// submit/complete/shed counters, live queue-depth and inflight gauges
// (delta-maintained, so concurrent clients sum) and a queue-wait
// histogram.
var (
	mSchedSubmitted = telemetry.Default().Meter.Counter("core.sched.submitted")
	mSchedCompleted = telemetry.Default().Meter.Counter("core.sched.completed")
	mSchedShed      = telemetry.Default().Meter.Counter("core.sched.shed")
	gSchedInflight  = telemetry.Default().Meter.Gauge("core.sched.inflight")
	gSchedQueued    = telemetry.Default().Meter.Gauge("core.sched.queued")
	hSchedWait      = telemetry.Default().Meter.Histogram("core.sched.wait")
)

// SchedulerOptions tunes a client's bounded invocation scheduler — the
// worker pool behind InvokeAsync and InvokeMany. The queue reuses the
// admission-control pattern from the resilience layer (DESIGN.md §10):
// a hard concurrency cap fronted by a bounded, deadline-aware queue that
// sheds with *resilience.OverloadError instead of spawning goroutines
// without bound.
type SchedulerOptions struct {
	// MaxConcurrent is the hard cap on concurrently executing
	// invocations (default 64). The pool never runs more goroutines
	// than this.
	MaxConcurrent int
	// MaxQueue is how many submitted invocations may wait for a worker
	// (default 1024). Submissions past the bound are shed immediately.
	MaxQueue int
	// QueueTimeout bounds how long a queued invocation may wait before
	// being shed, independently of its context deadline (default 0:
	// wait as long as the context allows).
	QueueTimeout time.Duration
	// RetryAfter is the backoff advertised on shed errors (default 1s).
	RetryAfter time.Duration
}

func (o SchedulerOptions) withDefaults() SchedulerOptions {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = 64
	}
	if o.MaxQueue <= 0 {
		o.MaxQueue = 1024
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	return o
}

// SchedulerStats is a point-in-time snapshot of a client's scheduler.
type SchedulerStats struct {
	// InFlight is the number of invocations currently executing.
	InFlight int
	// Queued is the number of invocations waiting for a worker.
	Queued int
	// Submitted counts invocations ever accepted into the queue.
	Submitted int64
	// Completed counts invocations that ran to completion.
	Completed int64
	// Shed counts invocations refused: full queue, expired context or
	// queue-timeout overrun while waiting.
	Shed int64
}

// schedTask is one queued invocation.
type schedTask struct {
	ctx      context.Context
	enqueued time.Time
	run      func()
	reject   func(error)
}

// scheduler is the bounded worker pool every Invocation.InvokeAsync and
// Client.InvokeMany submission runs on. Workers are spawned lazily up to
// MaxConcurrent and exit when the queue drains, so an idle client holds
// no goroutines; a saturated client holds exactly MaxConcurrent.
type scheduler struct {
	opts  SchedulerOptions
	queue chan schedTask

	mu      sync.Mutex
	workers int

	inflight  atomic.Int64
	submitted atomic.Int64
	completed atomic.Int64
	shed      atomic.Int64
}

func newScheduler(opts SchedulerOptions) *scheduler {
	o := opts.withDefaults()
	return &scheduler{opts: o, queue: make(chan schedTask, o.MaxQueue)}
}

// submit enqueues one invocation. run executes on a pool worker; reject
// is called (from its own goroutine) with a *resilience.OverloadError
// when the task is shed instead of run. ctx is consulted while the task
// waits: a context that expires in the queue sheds the task without
// invoking it.
func (s *scheduler) submit(ctx context.Context, run func(), reject func(error)) {
	t := schedTask{ctx: ctx, enqueued: time.Now(), run: run, reject: reject}
	select {
	case s.queue <- t:
		s.submitted.Add(1)
		mSchedSubmitted.Inc()
		gSchedQueued.Add(1)
		s.ensureWorker()
	default:
		s.refuse(t, "scheduler queue full", nil)
	}
}

// ensureWorker spawns a worker if the pool is below its cap. Spawning
// after the enqueue (and under the same lock the exit path re-checks the
// queue under) guarantees no task is left queued with zero workers.
func (s *scheduler) ensureWorker() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.workers >= s.opts.MaxConcurrent {
		return
	}
	s.workers++
	go s.worker()
}

func (s *scheduler) worker() {
	for {
		select {
		case t := <-s.queue:
			gSchedQueued.Add(-1)
			s.runTask(t)
		default:
			// Queue looks empty: re-check under the lock submit's
			// ensureWorker takes, then exit. A task enqueued after this
			// re-check sees the decremented worker count and spawns a
			// replacement.
			s.mu.Lock()
			select {
			case t := <-s.queue:
				s.mu.Unlock()
				gSchedQueued.Add(-1)
				s.runTask(t)
			default:
				s.workers--
				s.mu.Unlock()
				return
			}
		}
	}
}

// runTask executes one dequeued task, shedding it unrun if its wait
// outlived the context deadline or the configured queue timeout.
func (s *scheduler) runTask(t schedTask) {
	wait := time.Since(t.enqueued)
	hSchedWait.Observe(wait)
	if err := t.ctx.Err(); err != nil {
		s.refuse(t, "deadline expired while queued", err)
		return
	}
	if s.opts.QueueTimeout > 0 && wait > s.opts.QueueTimeout {
		s.refuse(t, "queue timeout", nil)
		return
	}
	s.inflight.Add(1)
	gSchedInflight.Add(1)
	t.run()
	gSchedInflight.Add(-1)
	s.inflight.Add(-1)
	s.completed.Add(1)
	mSchedCompleted.Inc()
}

// refuse sheds a task, delivering the overload error off the caller's
// goroutine so a blocking callback cannot stall submit or a worker.
func (s *scheduler) refuse(t schedTask, reason string, cause error) {
	s.shed.Add(1)
	mSchedShed.Inc()
	telemetry.Default().Log.Warn(t.ctx, "core: scheduler shed invocation",
		"reason", reason, "queued", len(s.queue))
	if t.reject != nil {
		err := resilience.NewOverloadError(reason, s.opts.RetryAfter, cause)
		go t.reject(err)
	}
}

func (s *scheduler) stats() SchedulerStats {
	return SchedulerStats{
		InFlight:  int(s.inflight.Load()),
		Queued:    len(s.queue),
		Submitted: s.submitted.Load(),
		Completed: s.completed.Load(),
		Shed:      s.shed.Load(),
	}
}
