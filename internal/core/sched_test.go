package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wspeer/internal/engine"
	"wspeer/internal/resilience"
)

// gaugeInvoker records the peak number of concurrent Invoke calls.
type gaugeInvoker struct {
	schemes []string
	delay   time.Duration
	err     error
	cur     atomic.Int64
	peak    atomic.Int64
	calls   atomic.Int64
}

func (g *gaugeInvoker) Schemes() []string { return g.schemes }
func (g *gaugeInvoker) Invoke(ctx context.Context, svc *ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	c := g.cur.Add(1)
	for {
		p := g.peak.Load()
		if c <= p || g.peak.CompareAndSwap(p, c) {
			break
		}
	}
	if g.delay > 0 {
		time.Sleep(g.delay)
	}
	g.cur.Add(-1)
	g.calls.Add(1)
	return &engine.Result{}, g.err
}

func TestSchedulerBoundsConcurrency(t *testing.T) {
	s := newScheduler(SchedulerOptions{MaxConcurrent: 4, MaxQueue: 256})
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 100; i++ {
		wg.Add(1)
		s.submit(context.Background(),
			func() {
				defer wg.Done()
				c := cur.Add(1)
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
			},
			func(err error) { defer wg.Done(); t.Errorf("shed: %v", err) })
	}
	wg.Wait()
	if p := peak.Load(); p > 4 {
		t.Fatalf("peak concurrency = %d, want <= 4", p)
	}
	st := s.stats()
	if st.Submitted != 100 || st.Completed != 100 || st.Shed != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSchedulerWorkersExitWhenIdle(t *testing.T) {
	s := newScheduler(SchedulerOptions{MaxConcurrent: 8})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		s.submit(context.Background(), func() { wg.Done() }, func(error) { wg.Done() })
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		n := s.workers
		s.mu.Unlock()
		if n == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d workers still alive after drain", n)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSchedulerQueueFullSheds(t *testing.T) {
	s := newScheduler(SchedulerOptions{MaxConcurrent: 1, MaxQueue: 1, RetryAfter: 42 * time.Millisecond})
	gate := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	s.submit(context.Background(), func() { close(started); <-gate; wg.Done() }, nil)
	<-started // the only worker is now pinned

	wg.Add(1)
	s.submit(context.Background(), func() { wg.Done() }, nil) // fills the queue

	shedErr := make(chan error, 1)
	s.submit(context.Background(), func() { t.Error("overflow task ran") }, func(err error) { shedErr <- err })
	select {
	case err := <-shedErr:
		var oe *resilience.OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("err = %T %v", err, err)
		}
		if oe.RetryAfter != 42*time.Millisecond {
			t.Fatalf("retryAfter = %v", oe.RetryAfter)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("overflow submission never shed")
	}
	close(gate)
	wg.Wait()
	if st := s.stats(); st.Shed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSchedulerShedsExpiredContext(t *testing.T) {
	s := newScheduler(SchedulerOptions{MaxConcurrent: 1, MaxQueue: 8})
	gate := make(chan struct{})
	started := make(chan struct{})
	s.submit(context.Background(), func() { close(started); <-gate }, nil)
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expires while the task waits for the pinned worker
	shedErr := make(chan error, 1)
	s.submit(ctx, func() { t.Error("expired task ran") }, func(err error) { shedErr <- err })
	close(gate)
	select {
	case err := <-shedErr:
		var oe *resilience.OverloadError
		if !errors.As(err, &oe) || !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %T %v", err, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("expired task never shed")
	}
}

func TestSchedulerQueueTimeout(t *testing.T) {
	// The 10ms budget is far above an idle handoff (so the pilot task
	// runs) and far below the 100ms the gate pins the worker for (so the
	// queued task is over budget when it is finally dequeued).
	s := newScheduler(SchedulerOptions{MaxConcurrent: 1, MaxQueue: 8, QueueTimeout: 10 * time.Millisecond})
	gate := make(chan struct{})
	started := make(chan struct{})
	s.submit(context.Background(), func() { close(started); <-gate }, nil)
	<-started

	shedErr := make(chan error, 1)
	s.submit(context.Background(), func() { t.Error("timed-out task ran") }, func(err error) { shedErr <- err })
	time.Sleep(100 * time.Millisecond)
	close(gate)
	select {
	case err := <-shedErr:
		var oe *resilience.OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("err = %T %v", err, err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued task never timed out")
	}
}

func TestInvokeAsyncRunsOnScheduler(t *testing.T) {
	p := NewPeer()
	p.Client().ConfigureScheduler(SchedulerOptions{MaxConcurrent: 3})
	inv := &gaugeInvoker{schemes: []string{"http"}, delay: 2 * time.Millisecond}
	p.Client().RegisterInvoker(inv)

	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		ivk, err := p.Client().NewInvocation(&ServiceInfo{Name: "E", Endpoint: "http://h/E"})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		ivk.InvokeAsync(context.Background(), "op", nil, func(*engine.Result, error) { wg.Done() })
	}
	wg.Wait()
	if pk := inv.peak.Load(); pk > 3 {
		t.Fatalf("peak concurrency = %d, want <= 3", pk)
	}
	st := p.Client().SchedulerStats()
	if st.Submitted != 50 || st.Completed != 50 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvokeManyOrderingAndErrors(t *testing.T) {
	p := NewPeer()
	p.Client().RegisterInvoker(&fakeInvoker{schemes: []string{"http"}, result: &engine.Result{}})
	svcs := []*ServiceInfo{
		{Name: "A", Endpoint: "http://a/A"},
		{Name: "B", Endpoint: "gopher://b/B"}, // no invoker for this scheme
		{Name: "C", Endpoint: "http://c/C"},
	}
	out := p.Client().InvokeMany(context.Background(), svcs, "op", nil)
	if len(out) != 3 {
		t.Fatalf("slots = %d", len(out))
	}
	for i, r := range out {
		if r.Service != svcs[i] {
			t.Fatalf("slot %d out of order: %+v", i, r.Service)
		}
	}
	if out[0].Err != nil || out[2].Err != nil {
		t.Fatalf("good slots errored: %v / %v", out[0].Err, out[2].Err)
	}
	if out[1].Err == nil || out[1].Result != nil {
		t.Fatalf("bad-scheme slot = %+v", out[1])
	}
}

// TestInvokeManyBurst is the acceptance check: a 100-call concurrent
// burst completes with goroutines bounded by the scheduler cap.
func TestInvokeManyBurst(t *testing.T) {
	p := NewPeer()
	p.Client().ConfigureScheduler(SchedulerOptions{MaxConcurrent: 8, MaxQueue: 256})
	inv := &gaugeInvoker{schemes: []string{"http"}, delay: time.Millisecond}
	p.Client().RegisterInvoker(inv)

	svcs := make([]*ServiceInfo, 100)
	for i := range svcs {
		svcs[i] = &ServiceInfo{Name: "E", Endpoint: "http://h/E"}
	}
	out := p.Client().InvokeMany(context.Background(), svcs, "op", []engine.Param{engine.P("msg", "x")})
	for i, r := range out {
		if r.Err != nil {
			t.Fatalf("slot %d: %v", i, r.Err)
		}
	}
	if pk := inv.peak.Load(); pk > 8 {
		t.Fatalf("peak concurrency = %d, want <= 8", pk)
	}
	if got := inv.calls.Load(); got != 100 {
		t.Fatalf("invocations = %d", got)
	}
}
