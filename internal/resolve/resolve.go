// Package resolve is WSPeer's discovery resolution cache: the layer that
// takes *repeated* service discovery off the hot path. The paper's P2P
// framing ("P2P style interactions with unreliable nodes") assumes a
// client re-locates services constantly — before failing over, before a
// bulk scatter, after churn — and the mobile-P2P discovery literature
// (Srirama et al.) shows cached/advertised lookup is what makes that
// viable at scale. A live Locate fans out to every registered locator
// (a UDDI registry round trip, a P2PS advert walk with a discovery
// timeout); this cache memoizes the located set per query identity so
// the steady state is a map hit.
//
// The cache is deliberately ignorant of core's types: callers map their
// query to a canonical string key (core.QueryKey) and their located
// services to Entry values, so the package depends only on the telemetry
// spine. Behaviours, in the order a Get consults them:
//
//   - fresh hit: the line is younger than TTL — return it;
//   - stale hit: the line is past TTL but within StaleFor — return it
//     anyway and kick off one background refresh (stale-while-revalidate),
//     so a popular query never blocks on rediscovery;
//   - negative hit: the last lookup errored or found nothing — replay
//     that outcome until NegativeTTL expires, so a missing service does
//     not hammer the locators;
//   - miss: run the lookup, collapsing concurrent identical misses into
//     a single flight whose result every waiter shares.
//
// Invalidation is event-driven, wired by core to the resilience layer:
// an endpoint whose circuit breaker opens is evicted from every cached
// line (EvictEndpoint), and an endpoint that fails over is demoted to
// the back of its lines' preference order (DemoteEndpoint).
package resolve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"wspeer/internal/telemetry"
)

// Spine instruments: lifetime counters across every cache in the process
// (per-cache figures stay available via Stats) and a size gauge that
// caches move by deltas, so concurrent caches sum.
var (
	mHits      = telemetry.Default().Meter.Counter("resolve.cache.hits")
	mMisses    = telemetry.Default().Meter.Counter("resolve.cache.misses")
	mStale     = telemetry.Default().Meter.Counter("resolve.cache.stale")
	mRefreshes = telemetry.Default().Meter.Counter("resolve.cache.refreshes")
	mNegative  = telemetry.Default().Meter.Counter("resolve.cache.negative")
	mCollapsed = telemetry.Default().Meter.Counter("resolve.cache.collapsed")
	mEvictions = telemetry.Default().Meter.Counter("resolve.cache.evictions")
	gSize      = telemetry.Default().Meter.Gauge("resolve.cache.size")
)

// Entry is one located endpoint within a cached resolution: the endpoint
// identity the invalidation hooks key on, plus an opaque value (core
// stores the *ServiceInfo itself). Entries keep the locators' preference
// order; DemoteEndpoint reorders it.
type Entry struct {
	// Endpoint is the located endpoint URI (http://..., p2ps://...).
	Endpoint string
	// Value is the caller's located-service record, opaque to the cache.
	Value interface{}
}

// LookupFunc performs a live resolution on a cache miss or refresh.
type LookupFunc func(ctx context.Context) ([]Entry, error)

// Options tunes a Cache. The zero value means a 30-second TTL, an equal
// stale-while-revalidate window, a 2-second negative TTL and room for
// 1024 query lines.
type Options struct {
	// TTL is how long a resolution is served without question
	// (default 30s).
	TTL time.Duration
	// StaleFor extends a line's life past TTL: within the window the
	// stale set is returned immediately while one background refresh
	// re-resolves it (default: equal to TTL). Zero after defaulting
	// disables serve-stale (<0 forces it off explicitly).
	StaleFor time.Duration
	// NegativeTTL is how long an error or empty resolution is replayed
	// before the locators are consulted again (default 2s).
	NegativeTTL time.Duration
	// MaxEntries bounds the number of cached query lines; the least
	// recently used line is evicted at the bound (default 1024).
	MaxEntries int
	// Now is the clock (default time.Now); tests inject a fake to drive
	// TTL transitions deterministically.
	Now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.TTL <= 0 {
		o.TTL = 30 * time.Second
	}
	if o.StaleFor == 0 {
		o.StaleFor = o.TTL
	}
	if o.StaleFor < 0 {
		o.StaleFor = 0
	}
	if o.NegativeTTL <= 0 {
		o.NegativeTTL = 2 * time.Second
	}
	if o.MaxEntries <= 0 {
		o.MaxEntries = 1024
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	return o
}

// Stats is a point-in-time counter snapshot of one cache.
type Stats struct {
	// Hits counts Gets served from a fresh line.
	Hits int64
	// Misses counts Gets that ran (or joined) a live lookup.
	Misses int64
	// Stale counts Gets served a stale line while a refresh ran.
	Stale int64
	// Refreshes counts background stale-line refreshes started.
	Refreshes int64
	// Negative counts Gets that replayed a cached error/empty outcome.
	Negative int64
	// Collapsed counts Gets that joined another caller's in-flight
	// lookup instead of starting their own.
	Collapsed int64
	// Evictions counts lines dropped: invalidations, endpoint
	// evictions that emptied a line, LRU pressure and expiries.
	Evictions int64
	// Size is the current number of cached query lines.
	Size int
}

// line is one cached resolution.
type line struct {
	entries  []Entry
	err      error // negative line when set (entries nil)
	fetched  time.Time
	lastUsed time.Time
	// refreshing marks an in-progress stale-while-revalidate refresh so
	// concurrent stale hits trigger only one.
	refreshing bool
}

func (l *line) negative() bool { return l.err != nil || len(l.entries) == 0 }

// flight is one in-progress lookup that concurrent identical Gets share.
type flight struct {
	done    chan struct{}
	entries []Entry
	err     error
}

// Cache is a resolution cache mapping query identity → located Entry set.
// All methods are safe for concurrent use.
type Cache struct {
	opts Options

	mu      sync.Mutex
	lines   map[string]*line
	flights map[string]*flight

	hits, misses, stale, refreshes atomic.Int64
	negative, collapsed, evictions atomic.Int64
}

// New returns an empty cache.
func New(opts Options) *Cache {
	return &Cache{
		opts:    opts.withDefaults(),
		lines:   make(map[string]*line),
		flights: make(map[string]*flight),
	}
}

// Options returns the effective (defaulted) options.
func (c *Cache) Options() Options { return c.opts }

// Get resolves key through the cache: a fresh line is returned as is, a
// stale one is returned while a single background refresh re-runs lookup,
// a negative one replays the cached outcome, and a miss runs lookup —
// collapsing concurrent misses for the same key into one flight. The
// returned slice is a copy; the Entry values are shared.
func (c *Cache) Get(ctx context.Context, key string, lookup LookupFunc) ([]Entry, error) {
	now := c.opts.Now()
	c.mu.Lock()
	if l, ok := c.lines[key]; ok {
		age := now.Sub(l.fetched)
		switch {
		case l.negative():
			if age <= c.opts.NegativeTTL {
				l.lastUsed = now
				err := l.err
				c.mu.Unlock()
				c.negative.Add(1)
				mNegative.Inc()
				return nil, err
			}
			c.dropLocked(key) // negative window over: resolve live again
		case age <= c.opts.TTL:
			l.lastUsed = now
			out := append([]Entry(nil), l.entries...)
			c.mu.Unlock()
			c.hits.Add(1)
			mHits.Inc()
			return out, nil
		case age <= c.opts.TTL+c.opts.StaleFor:
			l.lastUsed = now
			out := append([]Entry(nil), l.entries...)
			refresh := !l.refreshing
			if refresh {
				l.refreshing = true
			}
			c.mu.Unlock()
			c.stale.Add(1)
			mStale.Inc()
			if refresh {
				c.refreshes.Add(1)
				mRefreshes.Inc()
				go c.refresh(key, lookup)
			}
			return out, nil
		default:
			c.dropLocked(key) // too stale even to serve
		}
	}

	// Miss: join an existing flight for the key, or lead a new one.
	if fl, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.collapsed.Add(1)
		mCollapsed.Inc()
		select {
		case <-fl.done:
			return append([]Entry(nil), fl.entries...), fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	fl := &flight{done: make(chan struct{})}
	c.flights[key] = fl
	c.mu.Unlock()
	c.misses.Add(1)
	mMisses.Inc()

	fl.entries, fl.err = lookup(ctx)
	close(fl.done)
	c.store(key, fl.entries, fl.err)
	return append([]Entry(nil), fl.entries...), fl.err
}

// refresh re-resolves a stale line in the background. The caller's
// context is not used: the refresh outlives the Get that triggered it.
func (c *Cache) refresh(key string, lookup LookupFunc) {
	entries, err := lookup(context.Background())
	if err != nil {
		// A failed refresh keeps the stale line rather than replacing a
		// known-good (if aging) resolution with an error; the line ages
		// out through the normal TTL+StaleFor horizon.
		c.mu.Lock()
		if l, ok := c.lines[key]; ok {
			l.refreshing = false
		}
		c.mu.Unlock()
		return
	}
	c.store(key, entries, nil)
}

// store installs a lookup outcome as the key's line. Context
// cancellations are not cached: the caller gave up, which says nothing
// about the service.
func (c *Cache) store(key string, entries []Entry, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.flights, key)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		c.dropLocked(key)
		return
	}
	now := c.opts.Now()
	if _, exists := c.lines[key]; !exists {
		gSize.Add(1)
	}
	c.lines[key] = &line{
		entries:  append([]Entry(nil), entries...),
		err:      err,
		fetched:  now,
		lastUsed: now,
	}
	for len(c.lines) > c.opts.MaxEntries {
		if !c.evictOldestLocked(key) {
			break
		}
	}
}

// evictOldestLocked drops the least recently used line other than keep;
// it reports whether a line was evicted.
func (c *Cache) evictOldestLocked(keep string) bool {
	var victim string
	var oldest time.Time
	for k, l := range c.lines {
		if k == keep {
			continue
		}
		if victim == "" || l.lastUsed.Before(oldest) {
			victim, oldest = k, l.lastUsed
		}
	}
	if victim == "" {
		return false
	}
	c.dropLocked(victim)
	return true
}

func (c *Cache) dropLocked(key string) {
	if _, ok := c.lines[key]; ok {
		delete(c.lines, key)
		gSize.Add(-1)
		c.evictions.Add(1)
		mEvictions.Inc()
	}
}

// Invalidate drops the line for one key; the next Get resolves live.
func (c *Cache) Invalidate(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.dropLocked(key)
}

// Clear drops every cached line.
func (c *Cache) Clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k := range c.lines {
		c.dropLocked(k)
	}
}

// EvictEndpoint removes an endpoint from every cached line — the hook
// core wires to circuit-breaker opens, so a line never keeps offering an
// endpoint the resilience layer has condemned. A line left with no
// entries is dropped entirely (the next Get re-resolves); negative lines
// are untouched. It returns the number of lines changed.
func (c *Cache) EvictEndpoint(endpoint string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	changed := 0
	for key, l := range c.lines {
		if l.negative() {
			continue
		}
		kept := l.entries[:0]
		for _, e := range l.entries {
			if e.Endpoint != endpoint {
				kept = append(kept, e)
			}
		}
		if len(kept) == len(l.entries) {
			continue
		}
		changed++
		if len(kept) == 0 {
			c.dropLocked(key)
			continue
		}
		l.entries = kept
	}
	return changed
}

// DemoteEndpoint moves an endpoint to the back of every cached line's
// preference order — the hook core wires to failover misses, so the
// next cached failover invocation tries healthier endpoints first. It
// returns the number of lines reordered.
func (c *Cache) DemoteEndpoint(endpoint string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	changed := 0
	for _, l := range c.lines {
		if l.negative() || len(l.entries) < 2 {
			continue
		}
		var demoted []Entry
		kept := l.entries[:0]
		for _, e := range l.entries {
			if e.Endpoint == endpoint {
				demoted = append(demoted, e)
			} else {
				kept = append(kept, e)
			}
		}
		if len(demoted) == 0 || len(kept) == 0 {
			continue
		}
		l.entries = append(kept, demoted...)
		changed++
	}
	return changed
}

// Len returns the number of cached query lines.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.lines)
}

// Stats returns a point-in-time snapshot of the cache's counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	size := len(c.lines)
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Stale:     c.stale.Load(),
		Refreshes: c.refreshes.Load(),
		Negative:  c.negative.Load(),
		Collapsed: c.collapsed.Load(),
		Evictions: c.evictions.Load(),
		Size:      size,
	}
}
