package resolve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for TTL transitions.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// countingLookup returns a LookupFunc that counts invocations and serves
// the current result/error.
type countingLookup struct {
	mu      sync.Mutex
	calls   int
	entries []Entry
	err     error
}

func (l *countingLookup) fn(ctx context.Context) ([]Entry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.calls++
	return l.entries, l.err
}

func (l *countingLookup) count() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.calls
}

func (l *countingLookup) set(entries []Entry, err error) {
	l.mu.Lock()
	l.entries, l.err = entries, err
	l.mu.Unlock()
}

func entriesOf(endpoints ...string) []Entry {
	out := make([]Entry, len(endpoints))
	for i, ep := range endpoints {
		out[i] = Entry{Endpoint: ep, Value: ep}
	}
	return out
}

func endpoints(es []Entry) []string {
	out := make([]string, len(es))
	for i, e := range es {
		out[i] = e.Endpoint
	}
	return out
}

func TestFreshHitSkipsLookup(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{TTL: 10 * time.Second, Now: clk.Now})
	l := &countingLookup{entries: entriesOf("http://a", "p2ps://b")}
	ctx := context.Background()

	for i := 0; i < 5; i++ {
		got, err := c.Get(ctx, "k", l.fn)
		if err != nil || len(got) != 2 {
			t.Fatalf("get %d: %v %v", i, got, err)
		}
	}
	if l.count() != 1 {
		t.Fatalf("lookups = %d, want 1", l.count())
	}
	s := c.Stats()
	if s.Misses != 1 || s.Hits != 4 || s.Size != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestTTLExpiryReResolves(t *testing.T) {
	clk := newFakeClock()
	// StaleFor < 0 disables serve-stale so expiry forces a live lookup.
	c := New(Options{TTL: 10 * time.Second, StaleFor: -1, Now: clk.Now})
	l := &countingLookup{entries: entriesOf("http://a")}
	ctx := context.Background()

	if _, err := c.Get(ctx, "k", l.fn); err != nil {
		t.Fatal(err)
	}
	clk.Advance(11 * time.Second)
	l.set(entriesOf("http://b"), nil)
	got, err := c.Get(ctx, "k", l.fn)
	if err != nil {
		t.Fatal(err)
	}
	if l.count() != 2 || got[0].Endpoint != "http://b" {
		t.Fatalf("lookups = %d, got %v", l.count(), endpoints(got))
	}
}

func TestStaleWhileRevalidate(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{TTL: 10 * time.Second, StaleFor: 10 * time.Second, Now: clk.Now})
	refreshed := make(chan struct{})
	var once sync.Once
	var calls atomic.Int64
	lookup := func(ctx context.Context) ([]Entry, error) {
		if calls.Add(1) >= 2 {
			defer once.Do(func() { close(refreshed) })
			return entriesOf("http://new"), nil
		}
		return entriesOf("http://old"), nil
	}
	ctx := context.Background()

	if _, err := c.Get(ctx, "k", lookup); err != nil {
		t.Fatal(err)
	}
	clk.Advance(15 * time.Second) // past TTL, within stale window

	// The stale Get answers immediately with the old set...
	got, err := c.Get(ctx, "k", lookup)
	if err != nil || got[0].Endpoint != "http://old" {
		t.Fatalf("stale get = %v, %v", endpoints(got), err)
	}
	// ...while one background refresh replaces the line.
	select {
	case <-refreshed:
	case <-time.After(5 * time.Second):
		t.Fatal("background refresh never ran")
	}
	// The refresh stored asynchronously; poll briefly for the new line.
	deadline := time.Now().Add(5 * time.Second)
	for {
		got, err = c.Get(ctx, "k", lookup)
		if err == nil && len(got) == 1 && got[0].Endpoint == "http://new" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("refreshed line never served: %v, %v", endpoints(got), err)
		}
		time.Sleep(time.Millisecond)
	}
	s := c.Stats()
	if s.Stale == 0 || s.Refreshes != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestFailedRefreshKeepsStaleLine(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{TTL: 10 * time.Second, StaleFor: 10 * time.Second, Now: clk.Now})
	ran := make(chan struct{})
	var once sync.Once
	var calls atomic.Int64
	lookup := func(ctx context.Context) ([]Entry, error) {
		if calls.Add(1) > 1 {
			defer once.Do(func() { close(ran) })
			return nil, errors.New("registry down")
		}
		return entriesOf("http://a"), nil
	}
	ctx := context.Background()
	if _, err := c.Get(ctx, "k", lookup); err != nil {
		t.Fatal(err)
	}
	clk.Advance(15 * time.Second)
	if _, err := c.Get(ctx, "k", lookup); err != nil {
		t.Fatal(err)
	}
	<-ran
	// A failed refresh must not replace the known-good stale line.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		got, err := c.Get(ctx, "k", lookup)
		if err != nil || len(got) != 1 || got[0].Endpoint != "http://a" {
			t.Fatalf("stale line lost after failed refresh: %v, %v", endpoints(got), err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestNegativeCaching(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{TTL: 10 * time.Second, NegativeTTL: 2 * time.Second, Now: clk.Now})
	boom := errors.New("nothing there")
	l := &countingLookup{err: boom}
	ctx := context.Background()

	if _, err := c.Get(ctx, "k", l.fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// Within the negative window the cached outcome is replayed.
	if _, err := c.Get(ctx, "k", l.fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if l.count() != 1 {
		t.Fatalf("lookups = %d, want 1", l.count())
	}
	// Past the window the locators are consulted again.
	clk.Advance(3 * time.Second)
	l.set(entriesOf("http://a"), nil)
	got, err := c.Get(ctx, "k", l.fn)
	if err != nil || len(got) != 1 {
		t.Fatalf("recovered get = %v, %v", endpoints(got), err)
	}
	if l.count() != 2 {
		t.Fatalf("lookups = %d, want 2", l.count())
	}
	if s := c.Stats(); s.Negative != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestEmptyResultIsNegative(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{TTL: 10 * time.Second, NegativeTTL: 2 * time.Second, Now: clk.Now})
	l := &countingLookup{} // no entries, no error
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		got, err := c.Get(ctx, "k", l.fn)
		if err != nil || len(got) != 0 {
			t.Fatalf("get = %v, %v", got, err)
		}
	}
	if l.count() != 1 {
		t.Fatalf("lookups = %d, want 1", l.count())
	}
}

func TestContextErrorsNotCached(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{TTL: 10 * time.Second, Now: clk.Now})
	l := &countingLookup{err: context.Canceled}
	ctx := context.Background()
	if _, err := c.Get(ctx, "k", l.fn); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	l.set(entriesOf("http://a"), nil)
	got, err := c.Get(ctx, "k", l.fn)
	if err != nil || len(got) != 1 {
		t.Fatalf("get after cancellation = %v, %v", endpoints(got), err)
	}
	if l.count() != 2 {
		t.Fatalf("cancellation was cached: lookups = %d", l.count())
	}
}

func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	c := New(Options{})
	var calls atomic.Int64
	gate := make(chan struct{})
	lookup := func(ctx context.Context) ([]Entry, error) {
		calls.Add(1)
		<-gate
		return entriesOf("http://a"), nil
	}
	ctx := context.Background()
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	lens := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := c.Get(ctx, "k", lookup)
			errs[i], lens[i] = err, len(got)
		}(i)
	}
	// Let the flock pile onto the single flight, then release it.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Collapsed < n-1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if got := calls.Load(); got != 1 {
		t.Fatalf("lookups = %d, want 1", got)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil || lens[i] != 1 {
			t.Fatalf("waiter %d: len=%d err=%v", i, lens[i], errs[i])
		}
	}
}

func TestEvictEndpoint(t *testing.T) {
	c := New(Options{})
	ctx := context.Background()
	seed := func(key string, eps ...string) {
		if _, err := c.Get(ctx, key, func(context.Context) ([]Entry, error) {
			return entriesOf(eps...), nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	seed("a", "http://x", "p2ps://y")
	seed("b", "http://x")
	seed("c", "http://z")

	if n := c.EvictEndpoint("http://x"); n != 2 {
		t.Fatalf("changed %d lines, want 2", n)
	}
	// Line a keeps its surviving endpoint; line b (emptied) is dropped.
	got, _ := c.Get(ctx, "a", func(context.Context) ([]Entry, error) {
		t.Fatal("line a should still be cached")
		return nil, nil
	})
	if len(got) != 1 || got[0].Endpoint != "p2ps://y" {
		t.Fatalf("line a = %v", endpoints(got))
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2 (b dropped)", c.Len())
	}
}

func TestDemoteEndpoint(t *testing.T) {
	c := New(Options{})
	ctx := context.Background()
	if _, err := c.Get(ctx, "k", func(context.Context) ([]Entry, error) {
		return entriesOf("http://bad", "http://good", "p2ps://ok"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if n := c.DemoteEndpoint("http://bad"); n != 1 {
		t.Fatalf("changed %d lines, want 1", n)
	}
	got, _ := c.Get(ctx, "k", nil)
	want := []string{"http://good", "p2ps://ok", "http://bad"}
	if fmt.Sprint(endpoints(got)) != fmt.Sprint(want) {
		t.Fatalf("order = %v, want %v", endpoints(got), want)
	}
	// Demoting the only endpoint of a line is a no-op.
	if _, err := c.Get(ctx, "solo", func(context.Context) ([]Entry, error) {
		return entriesOf("http://one"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if n := c.DemoteEndpoint("http://one"); n != 0 {
		t.Fatalf("solo line reordered: %d", n)
	}
}

func TestInvalidateAndClear(t *testing.T) {
	c := New(Options{})
	ctx := context.Background()
	l := &countingLookup{entries: entriesOf("http://a")}
	c.Get(ctx, "k1", l.fn)
	c.Get(ctx, "k2", l.fn)
	c.Invalidate("k1")
	if c.Len() != 1 {
		t.Fatalf("len = %d", c.Len())
	}
	c.Get(ctx, "k1", l.fn)
	if l.count() != 3 {
		t.Fatalf("lookups = %d, want 3", l.count())
	}
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("len = %d after clear", c.Len())
	}
}

func TestMaxEntriesEvictsLRU(t *testing.T) {
	clk := newFakeClock()
	c := New(Options{TTL: time.Hour, MaxEntries: 2, Now: clk.Now})
	ctx := context.Background()
	l := &countingLookup{entries: entriesOf("http://a")}
	c.Get(ctx, "k1", l.fn)
	clk.Advance(time.Second)
	c.Get(ctx, "k2", l.fn)
	clk.Advance(time.Second)
	c.Get(ctx, "k1", l.fn) // touch k1: k2 is now the LRU line
	clk.Advance(time.Second)
	c.Get(ctx, "k3", l.fn) // over capacity: k2 evicted
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	before := l.count()
	c.Get(ctx, "k1", l.fn) // still cached
	if l.count() != before {
		t.Fatal("k1 was evicted, want k2")
	}
	c.Get(ctx, "k2", l.fn) // evicted: re-resolves
	if l.count() != before+1 {
		t.Fatal("k2 survived eviction")
	}
}

func TestGetCopiesEntries(t *testing.T) {
	c := New(Options{})
	ctx := context.Background()
	got, err := c.Get(ctx, "k", func(context.Context) ([]Entry, error) {
		return entriesOf("http://a", "http://b"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got[0] = Entry{Endpoint: "mangled"}
	again, _ := c.Get(ctx, "k", nil)
	if again[0].Endpoint != "http://a" {
		t.Fatal("caller mutation reached the cached line")
	}
}

func TestConcurrentUseRaces(t *testing.T) {
	c := New(Options{TTL: time.Millisecond, StaleFor: time.Millisecond, NegativeTTL: time.Millisecond})
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%5)
				switch i % 4 {
				case 0, 1:
					c.Get(ctx, key, func(context.Context) ([]Entry, error) {
						return entriesOf("http://a", "http://b"), nil
					})
				case 2:
					c.EvictEndpoint("http://a")
				default:
					c.DemoteEndpoint("http://b")
				}
			}
		}(g)
	}
	wg.Wait()
}
