// Package uddi implements a UDDI-style service registry: the centralized
// publish/find substrate of WSPeer's standard (HTTP) binding. It models the
// subset of UDDI the paper's discovery flow needs — businessService records
// with category bags and binding templates, name and category queries with
// UDDI '%' wildcards — and exposes the registry both in-process and as a
// SOAP service hosted by WSPeer's own engine (see service.go), so the
// registry is itself a WSPeer service.
//
// The registry is deliberately a single process with no replication: the
// scalability and churn experiments (DESIGN.md E5/E6) rely on it exhibiting
// the centralized failure and bottleneck characteristics the paper
// attributes to client/server discovery.
package uddi

import (
	"crypto/rand"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// KeyedReference categorizes a service within a taxonomy, as in a UDDI
// categoryBag.
type KeyedReference struct {
	TModelKey string
	KeyName   string
	KeyValue  string
}

// BindingTemplate is one concrete access point for a service.
type BindingTemplate struct {
	BindingKey   string
	AccessPoint  string // endpoint URL
	WSDLLocation string // URL the service description can be fetched from
}

// BusinessService is a registered service record.
type BusinessService struct {
	ServiceKey  string
	Name        string
	Description string
	CategoryBag []KeyedReference
	Bindings    []BindingTemplate
	// WSDLDocument optionally carries the WSDL inline, sparing consumers
	// the second fetch to WSDLLocation.
	WSDLDocument string
}

// FindQuery selects services. Name supports the UDDI '%' wildcard (prefix,
// suffix or substring); all Categories must match for a record to qualify.
type FindQuery struct {
	Name       string
	Categories []KeyedReference
	MaxRows    int32
}

// ErrUnavailable is returned by a registry that has been failed for the
// churn experiments.
var ErrUnavailable = fmt.Errorf("uddi: registry unavailable")

// TModel is a UDDI technical model: a named, reusable concept other
// records reference by key — taxonomies for category bags, or interface
// fingerprints whose OverviewURL points at a WSDL document.
type TModel struct {
	TModelKey   string
	Name        string
	Description string
	OverviewURL string
}

// Registry is an in-process UDDI-style registry. It is safe for concurrent
// use.
type Registry struct {
	mu       sync.RWMutex
	services map[string]*BusinessService
	tmodels  map[string]*TModel

	failed  atomic.Bool
	queries atomic.Int64
	writes  atomic.Int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		services: make(map[string]*BusinessService),
		tmodels:  make(map[string]*TModel),
	}
}

// RegisterTModel stores a tModel, assigning a key if absent, and returns
// the key. Registering an existing key replaces the record.
func (r *Registry) RegisterTModel(tm TModel) (string, error) {
	if r.failed.Load() {
		return "", ErrUnavailable
	}
	if tm.Name == "" {
		return "", fmt.Errorf("uddi: tModel has no name")
	}
	if tm.TModelKey == "" {
		tm.TModelKey = NewKey()
	}
	r.writes.Add(1)
	cp := tm
	r.mu.Lock()
	r.tmodels[cp.TModelKey] = &cp
	r.mu.Unlock()
	return cp.TModelKey, nil
}

// GetTModel returns a tModel by key, or nil.
func (r *Registry) GetTModel(key string) (*TModel, error) {
	if r.failed.Load() {
		return nil, ErrUnavailable
	}
	r.queries.Add(1)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if tm, ok := r.tmodels[key]; ok {
		cp := *tm
		return &cp, nil
	}
	return nil, nil
}

// FindTModels returns tModels whose names match the UDDI '%' pattern.
func (r *Registry) FindTModels(namePattern string) ([]TModel, error) {
	if r.failed.Load() {
		return nil, ErrUnavailable
	}
	r.queries.Add(1)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []TModel
	for _, tm := range r.tmodels {
		if matchName(namePattern, tm.Name) {
			out = append(out, *tm)
		}
	}
	return out, nil
}

// NewKey generates a UDDI-style uuid key.
func NewKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("uddi: entropy source failed: " + err.Error())
	}
	b[6] = (b[6] & 0x0f) | 0x40
	b[8] = (b[8] & 0x3f) | 0x80
	return fmt.Sprintf("uuid:%x-%x-%x-%x-%x", b[0:4], b[4:6], b[6:8], b[8:10], b[10:16])
}

// Publish stores a service record, assigning a ServiceKey if absent, and
// returns the key. Publishing an existing key replaces the record.
func (r *Registry) Publish(svc BusinessService) (string, error) {
	if r.failed.Load() {
		return "", ErrUnavailable
	}
	if svc.Name == "" {
		return "", fmt.Errorf("uddi: service has no name")
	}
	if svc.ServiceKey == "" {
		svc.ServiceKey = NewKey()
	}
	r.writes.Add(1)
	cp := svc
	r.mu.Lock()
	r.services[cp.ServiceKey] = &cp
	r.mu.Unlock()
	return cp.ServiceKey, nil
}

// Unpublish removes a record; it reports whether the key existed.
func (r *Registry) Unpublish(key string) (bool, error) {
	if r.failed.Load() {
		return false, ErrUnavailable
	}
	r.writes.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.services[key]; !ok {
		return false, nil
	}
	delete(r.services, key)
	return true, nil
}

// Get returns the record for a key, or nil.
func (r *Registry) Get(key string) (*BusinessService, error) {
	if r.failed.Load() {
		return nil, ErrUnavailable
	}
	r.queries.Add(1)
	r.mu.RLock()
	defer r.mu.RUnlock()
	if svc, ok := r.services[key]; ok {
		cp := *svc
		return &cp, nil
	}
	return nil, nil
}

// Find returns the records matching the query, in unspecified order,
// truncated to MaxRows when positive.
func (r *Registry) Find(q FindQuery) ([]BusinessService, error) {
	if r.failed.Load() {
		return nil, ErrUnavailable
	}
	r.queries.Add(1)
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []BusinessService
	for _, svc := range r.services {
		if !matchName(q.Name, svc.Name) {
			continue
		}
		if !matchCategories(q.Categories, svc.CategoryBag) {
			continue
		}
		out = append(out, *svc)
		if q.MaxRows > 0 && int32(len(out)) >= q.MaxRows {
			break
		}
	}
	return out, nil
}

// Len reports the number of records.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.services)
}

// SetFailed simulates registry failure (or recovery) for the resilience
// experiments: all operations return ErrUnavailable while failed.
func (r *Registry) SetFailed(failed bool) { r.failed.Store(failed) }

// Stats reports how many queries and writes the registry has served — the
// "load at the hottest node" measurement in the scalability experiment.
func (r *Registry) Stats() (queries, writes int64) {
	return r.queries.Load(), r.writes.Load()
}

// matchName implements UDDI-style name matching: empty pattern matches
// everything; '%' is a multi-character wildcard; otherwise exact match.
func matchName(pattern, name string) bool {
	if pattern == "" || pattern == "%" {
		return true
	}
	if !strings.Contains(pattern, "%") {
		return pattern == name
	}
	parts := strings.Split(pattern, "%")
	// Anchored prefix.
	if parts[0] != "" {
		if !strings.HasPrefix(name, parts[0]) {
			return false
		}
		name = name[len(parts[0]):]
	}
	// Anchored suffix.
	last := parts[len(parts)-1]
	if last != "" {
		if !strings.HasSuffix(name, last) {
			return false
		}
		name = name[:len(name)-len(last)]
	}
	// Interior fragments in order.
	for _, frag := range parts[1 : len(parts)-1] {
		if frag == "" {
			continue
		}
		i := strings.Index(name, frag)
		if i < 0 {
			return false
		}
		name = name[i+len(frag):]
	}
	return true
}

// matchCategories requires every queried reference to appear in the bag
// (matching on TModelKey and KeyValue; KeyName is informational).
func matchCategories(want, have []KeyedReference) bool {
	for _, w := range want {
		found := false
		for _, h := range have {
			if h.TModelKey == w.TModelKey && h.KeyValue == w.KeyValue {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}
