package uddi

import (
	"context"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"wspeer/internal/engine"
	"wspeer/internal/httpd"
	"wspeer/internal/transport"
)

func record(name string, cats ...KeyedReference) BusinessService {
	return BusinessService{
		Name:        name,
		Description: "test record",
		CategoryBag: cats,
		Bindings: []BindingTemplate{{
			AccessPoint:  "http://127.0.0.1:9999/services/" + name,
			WSDLLocation: "http://127.0.0.1:9999/services/" + name + "?wsdl",
		}},
	}
}

func TestPublishFindGet(t *testing.T) {
	r := NewRegistry()
	key, err := r.Publish(record("EchoService"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(key, "uuid:") {
		t.Fatalf("key = %q", key)
	}
	got, err := r.Get(key)
	if err != nil || got == nil || got.Name != "EchoService" {
		t.Fatalf("get: %+v, %v", got, err)
	}
	missing, err := r.Get("uuid:nope")
	if err != nil || missing != nil {
		t.Fatalf("missing get: %+v, %v", missing, err)
	}

	found, err := r.Find(FindQuery{Name: "EchoService"})
	if err != nil || len(found) != 1 {
		t.Fatalf("find exact: %v, %v", found, err)
	}
	none, err := r.Find(FindQuery{Name: "Other"})
	if err != nil || len(none) != 0 {
		t.Fatalf("find miss: %v", none)
	}
	if r.Len() != 1 {
		t.Fatalf("len = %d", r.Len())
	}
}

func TestPublishValidationAndReplace(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Publish(BusinessService{}); err == nil {
		t.Fatal("nameless record accepted")
	}
	key, _ := r.Publish(record("A"))
	rec := record("A-updated")
	rec.ServiceKey = key
	key2, err := r.Publish(rec)
	if err != nil || key2 != key {
		t.Fatalf("replace: %q, %v", key2, err)
	}
	got, _ := r.Get(key)
	if got.Name != "A-updated" {
		t.Fatalf("replace lost: %+v", got)
	}
	if r.Len() != 1 {
		t.Fatal("replace duplicated record")
	}
}

func TestUnpublish(t *testing.T) {
	r := NewRegistry()
	key, _ := r.Publish(record("A"))
	ok, err := r.Unpublish(key)
	if err != nil || !ok {
		t.Fatalf("unpublish: %v %v", ok, err)
	}
	ok, err = r.Unpublish(key)
	if err != nil || ok {
		t.Fatal("double unpublish reported success")
	}
}

func TestWildcardMatching(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"", "anything", true},
		{"%", "anything", true},
		{"Echo", "Echo", true},
		{"Echo", "EchoService", false},
		{"Echo%", "EchoService", true},
		{"Echo%", "MyEcho", false},
		{"%Service", "EchoService", true},
		{"%Service", "ServiceEcho", false},
		{"%cho%", "EchoService", true},
		{"%zzz%", "EchoService", false},
		{"E%S%e", "EchoService", true},
		{"E%X%e", "EchoService", false},
	}
	for _, c := range cases {
		if got := matchName(c.pattern, c.name); got != c.want {
			t.Errorf("matchName(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

func TestQuickWildcardSubstring(t *testing.T) {
	// Property: %frag% matches exactly when frag is a substring.
	f := func(frag, name string) bool {
		if strings.Contains(frag, "%") {
			return true
		}
		return matchName("%"+frag+"%", name) == strings.Contains(name, frag)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCategoryMatching(t *testing.T) {
	r := NewRegistry()
	gridCat := KeyedReference{TModelKey: "uuid:types", KeyName: "kind", KeyValue: "grid"}
	p2pCat := KeyedReference{TModelKey: "uuid:types", KeyName: "kind", KeyValue: "p2p"}
	regionCat := KeyedReference{TModelKey: "uuid:region", KeyValue: "eu"}
	r.Publish(record("GridEcho", gridCat, regionCat))
	r.Publish(record("P2PEcho", p2pCat))

	found, err := r.Find(FindQuery{Categories: []KeyedReference{gridCat}})
	if err != nil || len(found) != 1 || found[0].Name != "GridEcho" {
		t.Fatalf("category find: %v", found)
	}
	// All categories must match.
	found, _ = r.Find(FindQuery{Categories: []KeyedReference{gridCat, p2pCat}})
	if len(found) != 0 {
		t.Fatalf("conjunctive categories: %v", found)
	}
	found, _ = r.Find(FindQuery{Categories: []KeyedReference{gridCat, regionCat}})
	if len(found) != 1 {
		t.Fatalf("multi category: %v", found)
	}
	// Name and category combine.
	found, _ = r.Find(FindQuery{Name: "Grid%", Categories: []KeyedReference{gridCat}})
	if len(found) != 1 {
		t.Fatalf("combined: %v", found)
	}
}

func TestMaxRows(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < 10; i++ {
		r.Publish(record("Svc"))
	}
	found, err := r.Find(FindQuery{Name: "Svc", MaxRows: 3})
	if err != nil || len(found) != 3 {
		t.Fatalf("maxRows: %d, %v", len(found), err)
	}
}

func TestFailureInjection(t *testing.T) {
	r := NewRegistry()
	key, _ := r.Publish(record("A"))
	r.SetFailed(true)
	if _, err := r.Publish(record("B")); err != ErrUnavailable {
		t.Fatalf("publish while failed: %v", err)
	}
	if _, err := r.Find(FindQuery{}); err != ErrUnavailable {
		t.Fatalf("find while failed: %v", err)
	}
	if _, err := r.Get(key); err != ErrUnavailable {
		t.Fatalf("get while failed: %v", err)
	}
	if _, err := r.Unpublish(key); err != ErrUnavailable {
		t.Fatalf("unpublish while failed: %v", err)
	}
	r.SetFailed(false)
	if _, err := r.Get(key); err != nil {
		t.Fatalf("recovery: %v", err)
	}
}

func TestStats(t *testing.T) {
	r := NewRegistry()
	r.Publish(record("A"))
	r.Find(FindQuery{})
	r.Find(FindQuery{})
	q, w := r.Stats()
	if q != 2 || w != 1 {
		t.Fatalf("stats = %d queries, %d writes", q, w)
	}
}

func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key, err := r.Publish(record("Concurrent"))
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := r.Find(FindQuery{Name: "Concurrent"}); err != nil {
				t.Error(err)
			}
			if _, err := r.Get(key); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	if r.Len() != 16 {
		t.Fatalf("len = %d", r.Len())
	}
}

// TestRegistryAsService exercises the full dogfooding loop: the registry
// hosted as a WSPeer SOAP service over real HTTP, driven by the client.
func TestRegistryAsService(t *testing.T) {
	r := NewRegistry()
	host := httpd.New(engine.New(), httpd.Options{})
	defer host.Close()
	endpoint, err := host.Deploy(ServiceDef(r))
	if err != nil {
		t.Fatal(err)
	}

	reg := transport.NewRegistry()
	reg.Register(transport.NewHTTPTransport())
	client, err := NewClient(endpoint, reg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	rec := record("RemoteEcho", KeyedReference{TModelKey: "uuid:types", KeyName: "kind", KeyValue: "demo"})
	rec.WSDLDocument = "<definitions/>"
	key, err := client.Publish(ctx, rec)
	if err != nil {
		t.Fatal(err)
	}
	if key == "" {
		t.Fatal("empty key")
	}

	found, err := client.Find(ctx, FindQuery{Name: "Remote%"})
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].Name != "RemoteEcho" {
		t.Fatalf("remote find: %+v", found)
	}
	if found[0].Bindings[0].AccessPoint == "" || found[0].WSDLDocument != "<definitions/>" {
		t.Fatalf("record fields lost over the wire: %+v", found[0])
	}
	if len(found[0].CategoryBag) != 1 || found[0].CategoryBag[0].KeyValue != "demo" {
		t.Fatalf("category bag lost: %+v", found[0].CategoryBag)
	}

	got, err := client.Get(ctx, key)
	if err != nil || got.Name != "RemoteEcho" {
		t.Fatalf("remote get: %+v, %v", got, err)
	}

	ok, err := client.Unpublish(ctx, key)
	if err != nil || !ok {
		t.Fatalf("remote unpublish: %v %v", ok, err)
	}
	// get on a removed key becomes a SOAP fault.
	if _, err := client.Get(ctx, key); err == nil {
		t.Fatal("get after unpublish succeeded")
	}

	// Failure injection propagates to remote callers as faults.
	r.SetFailed(true)
	if _, err := client.Find(ctx, FindQuery{}); err == nil {
		t.Fatal("failed registry answered")
	}
}

func TestTModelRegistry(t *testing.T) {
	r := NewRegistry()
	if _, err := r.RegisterTModel(TModel{}); err == nil {
		t.Fatal("nameless tModel accepted")
	}
	key, err := r.RegisterTModel(TModel{
		Name:        "wspeer-org:EchoPortType",
		Description: "interface fingerprint",
		OverviewURL: "http://host/services/Echo?wsdl",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(key, "uuid:") {
		t.Fatalf("key = %q", key)
	}
	tm, err := r.GetTModel(key)
	if err != nil || tm == nil || tm.OverviewURL == "" {
		t.Fatalf("get: %+v, %v", tm, err)
	}
	missing, err := r.GetTModel("uuid:none")
	if err != nil || missing != nil {
		t.Fatalf("missing get: %+v", missing)
	}
	found, err := r.FindTModels("wspeer-org:%")
	if err != nil || len(found) != 1 {
		t.Fatalf("find: %v, %v", found, err)
	}
	none, _ := r.FindTModels("other:%")
	if len(none) != 0 {
		t.Fatalf("find false positive: %v", none)
	}
	// Replace by key.
	tm2 := TModel{TModelKey: key, Name: "wspeer-org:EchoPortType", Description: "v2"}
	key2, err := r.RegisterTModel(tm2)
	if err != nil || key2 != key {
		t.Fatal("replace")
	}
	got, _ := r.GetTModel(key)
	if got.Description != "v2" {
		t.Fatal("replace lost")
	}
	// Failure injection covers tModels too.
	r.SetFailed(true)
	if _, err := r.RegisterTModel(TModel{Name: "x"}); err != ErrUnavailable {
		t.Fatal("register while failed")
	}
	if _, err := r.GetTModel(key); err != ErrUnavailable {
		t.Fatal("get while failed")
	}
	if _, err := r.FindTModels("%"); err != ErrUnavailable {
		t.Fatal("find while failed")
	}
}

func TestTModelOverSOAP(t *testing.T) {
	r := NewRegistry()
	host := httpd.New(engine.New(), httpd.Options{})
	defer host.Close()
	endpoint, err := host.Deploy(ServiceDef(r))
	if err != nil {
		t.Fatal(err)
	}
	reg := transport.NewRegistry()
	reg.Register(transport.NewHTTPTransport())
	client, err := NewClient(endpoint, reg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	key, err := client.RegisterTModel(ctx, TModel{
		Name: "acme:CalcPortType", OverviewURL: "http://acme/calc?wsdl",
	})
	if err != nil || key == "" {
		t.Fatalf("remote register: %q, %v", key, err)
	}
	tm, err := client.GetTModel(ctx, key)
	if err != nil || tm.OverviewURL != "http://acme/calc?wsdl" {
		t.Fatalf("remote get: %+v, %v", tm, err)
	}
	found, err := client.FindTModels(ctx, "acme:%")
	if err != nil || len(found) != 1 {
		t.Fatalf("remote find: %v, %v", found, err)
	}
	if _, err := client.GetTModel(ctx, "uuid:none"); err == nil {
		t.Fatal("missing tModel should fault")
	}
}
