package uddi

import (
	"context"
	"fmt"

	"wspeer/internal/engine"
	"wspeer/internal/transport"
	"wspeer/internal/wsdl"
)

// ServiceName is the name under which a registry is exposed as a SOAP
// service.
const ServiceName = "UDDIRegistry"

// Namespace is the target namespace of the registry service.
const Namespace = "http://wspeer.dev/uddi"

// ServiceDef builds the engine service definition exposing the registry
// over SOAP. The registry thereby becomes an ordinary WSPeer-hosted
// service, dogfooding the stack the way the paper's standard
// implementation assumes a network-reachable UDDI node.
func ServiceDef(r *Registry) engine.ServiceDef {
	return engine.ServiceDef{
		Name:      ServiceName,
		Namespace: Namespace,
		Operations: []engine.OperationDef{
			{
				Name:       "publish",
				Func:       func(svc BusinessService) (string, error) { return r.Publish(svc) },
				ParamNames: []string{"service"},
				Doc:        "store a businessService record; returns its serviceKey",
			},
			{
				Name:       "unpublish",
				Func:       func(key string) (bool, error) { return r.Unpublish(key) },
				ParamNames: []string{"serviceKey"},
			},
			{
				Name:       "find",
				Func:       func(q FindQuery) ([]BusinessService, error) { return r.Find(q) },
				ParamNames: []string{"query"},
				Doc:        "find businessService records by name pattern and category bag",
			},
			{
				Name: "get",
				Func: func(key string) (BusinessService, error) {
					svc, err := r.Get(key)
					if err != nil {
						return BusinessService{}, err
					}
					if svc == nil {
						return BusinessService{}, fmt.Errorf("uddi: no service with key %q", key)
					}
					return *svc, nil
				},
				ParamNames: []string{"serviceKey"},
			},
			{
				Name:       "registerTModel",
				Func:       func(tm TModel) (string, error) { return r.RegisterTModel(tm) },
				ParamNames: []string{"tModel"},
				Doc:        "store a technical model; returns its tModelKey",
			},
			{
				Name: "getTModel",
				Func: func(key string) (TModel, error) {
					tm, err := r.GetTModel(key)
					if err != nil {
						return TModel{}, err
					}
					if tm == nil {
						return TModel{}, fmt.Errorf("uddi: no tModel with key %q", key)
					}
					return *tm, nil
				},
				ParamNames: []string{"tModelKey"},
			},
			{
				Name:       "findTModels",
				Func:       func(namePattern string) ([]TModel, error) { return r.FindTModels(namePattern) },
				ParamNames: []string{"namePattern"},
			},
		},
	}
}

// Client invokes a remote registry service.
type Client struct {
	stub *engine.Stub
}

// NewClient returns a client for the registry at endpoint. The registry's
// interface is well known, so the WSDL is constructed locally rather than
// fetched.
func NewClient(endpoint string, reg *transport.Registry) (*Client, error) {
	// Build the canonical definitions against a throwaway engine.
	e := engine.New()
	svc, err := e.Deploy(ServiceDef(NewRegistry()))
	if err != nil {
		return nil, fmt.Errorf("uddi: building client definitions: %w", err)
	}
	transportURI := wsdl.TransportHTTP
	if transport.SchemeOf(endpoint) == "httpg" {
		transportURI = wsdl.TransportHTTPG
	}
	defs, err := svc.WSDL(transportURI, endpoint)
	if err != nil {
		return nil, err
	}
	return &Client{stub: engine.NewStub(defs, reg)}, nil
}

// Publish stores a record remotely and returns its serviceKey.
func (c *Client) Publish(ctx context.Context, svc BusinessService) (string, error) {
	res, err := c.stub.Invoke(ctx, "publish", engine.P("service", svc))
	if err != nil {
		return "", err
	}
	return res.String("return")
}

// Unpublish removes a record remotely.
func (c *Client) Unpublish(ctx context.Context, key string) (bool, error) {
	res, err := c.stub.Invoke(ctx, "unpublish", engine.P("serviceKey", key))
	if err != nil {
		return false, err
	}
	var ok bool
	err = res.Decode("return", &ok)
	return ok, err
}

// Find queries the remote registry.
func (c *Client) Find(ctx context.Context, q FindQuery) ([]BusinessService, error) {
	res, err := c.stub.Invoke(ctx, "find", engine.P("query", q))
	if err != nil {
		return nil, err
	}
	var out []BusinessService
	err = res.Decode("return", &out)
	return out, err
}

// Get fetches one record by key.
func (c *Client) Get(ctx context.Context, key string) (*BusinessService, error) {
	res, err := c.stub.Invoke(ctx, "get", engine.P("serviceKey", key))
	if err != nil {
		return nil, err
	}
	var svc BusinessService
	if err := res.Decode("return", &svc); err != nil {
		return nil, err
	}
	return &svc, nil
}

// RegisterTModel stores a tModel remotely and returns its key.
func (c *Client) RegisterTModel(ctx context.Context, tm TModel) (string, error) {
	res, err := c.stub.Invoke(ctx, "registerTModel", engine.P("tModel", tm))
	if err != nil {
		return "", err
	}
	return res.String("return")
}

// GetTModel fetches a tModel by key.
func (c *Client) GetTModel(ctx context.Context, key string) (*TModel, error) {
	res, err := c.stub.Invoke(ctx, "getTModel", engine.P("tModelKey", key))
	if err != nil {
		return nil, err
	}
	var tm TModel
	if err := res.Decode("return", &tm); err != nil {
		return nil, err
	}
	return &tm, nil
}

// FindTModels queries tModels by name pattern.
func (c *Client) FindTModels(ctx context.Context, namePattern string) ([]TModel, error) {
	res, err := c.stub.Invoke(ctx, "findTModels", engine.P("namePattern", namePattern))
	if err != nil {
		return nil, err
	}
	var out []TModel
	err = res.Decode("return", &out)
	return out, err
}
