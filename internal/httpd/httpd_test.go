package httpd

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"

	"wspeer/internal/engine"
	"wspeer/internal/soap"
	"wspeer/internal/transport"
	"wspeer/internal/wsdl"
)

func echoDef() engine.ServiceDef {
	return engine.ServiceDef{
		Name: "Echo",
		Operations: []engine.OperationDef{
			{Name: "echoString", Func: func(s string) string { return s }, ParamNames: []string{"msg"}},
			{Name: "notify", Func: func(s string) error { return nil }, OneWay: true},
		},
	}
}

func newHost(t *testing.T, opts Options) *Host {
	t.Helper()
	h := New(engine.New(), opts)
	t.Cleanup(func() { h.Close() })
	return h
}

func registry(secret []byte) *transport.Registry {
	reg := transport.NewRegistry()
	reg.Register(transport.NewHTTPTransport())
	if secret != nil {
		reg.Register(transport.NewHTTPGTransport(secret))
	}
	return reg
}

func stubFor(t *testing.T, h *Host, service string, secret []byte) *engine.Stub {
	t.Helper()
	defs, err := h.WSDL(service)
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip the WSDL through bytes like a remote consumer.
	raw, err := defs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := wsdl.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return engine.NewStub(parsed, registry(secret))
}

func TestLazyStart(t *testing.T) {
	h := newHost(t, Options{})
	if h.Started() {
		t.Fatal("server must not start before first deployment")
	}
	if h.Endpoint("Echo") != "" {
		t.Fatal("no endpoint before start")
	}
	endpoint, err := h.Deploy(echoDef())
	if err != nil {
		t.Fatal(err)
	}
	if !h.Started() {
		t.Fatal("server must start on first deployment")
	}
	if !strings.HasPrefix(endpoint, "http://127.0.0.1:") || !strings.HasSuffix(endpoint, "/services/Echo") {
		t.Fatalf("endpoint = %q", endpoint)
	}
}

func TestEndToEndOverRealHTTP(t *testing.T) {
	h := newHost(t, Options{})
	if _, err := h.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	stub := stubFor(t, h, "Echo", nil)
	res, err := stub.Invoke(context.Background(), "echoString", engine.P("msg", "over the wire"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.String("return")
	if err != nil || got != "over the wire" {
		t.Fatalf("echo = %q, %v", got, err)
	}
}

func TestOneWayGets202(t *testing.T) {
	h := newHost(t, Options{})
	if _, err := h.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	stub := stubFor(t, h, "Echo", nil)
	res, err := stub.Invoke(context.Background(), "notify", engine.P("in0", "evt"))
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatal("one-way must not decode a result")
	}
}

func TestWSDLEndpoint(t *testing.T) {
	h := newHost(t, Options{})
	endpoint, err := h.Deploy(echoDef())
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(endpoint + "?wsdl")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	defs, err := wsdl.Parse(body)
	if err != nil {
		t.Fatalf("served WSDL unparseable: %v", err)
	}
	det, err := defs.Detail("echoString")
	if err != nil {
		t.Fatal(err)
	}
	if det.Address != endpoint {
		t.Fatalf("WSDL address %q != live endpoint %q", det.Address, endpoint)
	}
}

func TestServiceListing(t *testing.T) {
	h := newHost(t, Options{})
	if _, err := h.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	base := strings.TrimSuffix(h.Endpoint("Echo"), "Echo")
	resp, err := http.Get(base)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "/services/Echo") {
		t.Fatalf("listing: %s", body)
	}
	// Unknown service: 404.
	resp2, err := http.Get(base + "Nope")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown service status = %d", resp2.StatusCode)
	}
	// GET without ?wsdl on a service: 405.
	resp3, err := http.Get(base + "Echo")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("plain GET status = %d", resp3.StatusCode)
	}
}

func TestInterceptorHandles(t *testing.T) {
	h := newHost(t, Options{})
	if _, err := h.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	var intercepted atomic.Int64
	h.SetInterceptor(func(service string, req *transport.Request) (*transport.Response, bool, error) {
		intercepted.Add(1)
		if strings.Contains(string(req.Body), "hijack") {
			f := soap.NewFault(soap.FaultClient, "handled by application")
			return &transport.Response{Body: soap.NewEnvelope().SetFault(f).Marshal(), Faulted: true}, true, nil
		}
		return nil, false, nil
	})
	stub := stubFor(t, h, "Echo", nil)

	// Passed through to the engine.
	res, err := stub.Invoke(context.Background(), "echoString", engine.P("msg", "normal"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.String("return"); got != "normal" {
		t.Fatalf("pass-through = %q", got)
	}

	// Handled directly by the application.
	_, err = stub.Invoke(context.Background(), "echoString", engine.P("msg", "hijack"))
	var f *soap.Fault
	if !errors.As(err, &f) || f.String != "handled by application" {
		t.Fatalf("intercepted call: %v", err)
	}
	if intercepted.Load() != 2 {
		t.Fatalf("interceptor saw %d requests", intercepted.Load())
	}
}

func TestInterceptorError(t *testing.T) {
	h := newHost(t, Options{})
	if _, err := h.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	h.SetInterceptor(func(string, *transport.Request) (*transport.Response, bool, error) {
		return nil, false, errors.New("interceptor exploded")
	})
	stub := stubFor(t, h, "Echo", nil)
	_, err := stub.Invoke(context.Background(), "echoString", engine.P("msg", "x"))
	var f *soap.Fault
	if !errors.As(err, &f) || !strings.Contains(f.String, "interceptor exploded") {
		t.Fatalf("err = %v", err)
	}
}

func TestObserver(t *testing.T) {
	h := newHost(t, Options{})
	if _, err := h.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	var seen atomic.Int64
	h.SetObserver(func(service string, req *transport.Request, resp *transport.Response) {
		if service == "Echo" && len(req.Body) > 0 && len(resp.Body) > 0 {
			seen.Add(1)
		}
	})
	stub := stubFor(t, h, "Echo", nil)
	if _, err := stub.Invoke(context.Background(), "echoString", engine.P("msg", "x")); err != nil {
		t.Fatal(err)
	}
	if seen.Load() != 1 {
		t.Fatalf("observer saw %d exchanges", seen.Load())
	}
}

func TestHTTPGProfile(t *testing.T) {
	secret := []byte("grid-secret")
	h := newHost(t, Options{Profile: "httpg", Secret: secret})
	endpoint, err := h.Deploy(echoDef())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(endpoint, "httpg://") {
		t.Fatalf("endpoint = %q", endpoint)
	}
	stub := stubFor(t, h, "Echo", secret)
	res, err := stub.Invoke(context.Background(), "echoString", engine.P("msg", "secure"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.String("return"); got != "secure" {
		t.Fatalf("httpg echo = %q", got)
	}

	// A client with the wrong secret is rejected at the transport level.
	bad := stubFor(t, h, "Echo", []byte("wrong"))
	if _, err := bad.Invoke(context.Background(), "echoString", engine.P("msg", "x")); err == nil {
		t.Fatal("wrong secret accepted")
	}
}

func TestUndeployAndClose(t *testing.T) {
	h := newHost(t, Options{})
	endpoint, err := h.Deploy(echoDef())
	if err != nil {
		t.Fatal(err)
	}
	if !h.Undeploy("Echo") {
		t.Fatal("undeploy")
	}
	resp, err := http.Post(endpoint, soap.ContentType, strings.NewReader("<x/>"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("undeployed service status = %d", resp.StatusCode)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Deploy after close must fail.
	if _, err := h.Deploy(echoDef()); err == nil {
		t.Fatal("deploy after close accepted")
	}
}

func TestDeployFailureDoesNotStartServer(t *testing.T) {
	h := newHost(t, Options{})
	if _, err := h.Deploy(engine.ServiceDef{Name: "bad name"}); err == nil {
		t.Fatal("invalid def accepted")
	}
	if h.Started() {
		t.Fatal("server started despite failed deployment")
	}
}

func TestMultipleServicesShareListener(t *testing.T) {
	h := newHost(t, Options{})
	e1, err := h.Deploy(echoDef())
	if err != nil {
		t.Fatal(err)
	}
	def2 := echoDef()
	def2.Name = "Echo2"
	e2, err := h.Deploy(def2)
	if err != nil {
		t.Fatal(err)
	}
	host1 := strings.Split(strings.TrimPrefix(e1, "http://"), "/")[0]
	host2 := strings.Split(strings.TrimPrefix(e2, "http://"), "/")[0]
	if host1 != host2 {
		t.Fatalf("services on different listeners: %q vs %q", e1, e2)
	}
}
