// Package httpd is WSPeer's container-less HTTP hosting environment.
//
// In the traditional model an application is deployed *into* a container
// that owns the request/response lifecycle. WSPeer "reverses the power
// relationship between the deployed component and the environment used for
// deploying and exposing it, in effect allowing the component to become its
// own container" (paper §III). Concretely:
//
//   - No server runs until the application deploys its first service; the
//     listener is launched lazily at that moment.
//   - The application may register an Interceptor that sees every raw
//     request before the messaging engine does and may handle it outright.
//   - The host's own capabilities are deliberately minimal: listing the
//     available services, serving their WSDL, and forwarding requests to
//     the engine.
package httpd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"wspeer/internal/engine"
	"wspeer/internal/resilience"
	"wspeer/internal/soap"
	"wspeer/internal/telemetry"
	"wspeer/internal/transport"
	"wspeer/internal/wsdl"
)

// BasePath is the URL prefix under which services are exposed.
const BasePath = "/services/"

// DebugPath is the URL of the host's telemetry snapshot endpoint: a JSON
// dump of the process-wide spine (counters, gauges, histograms, the
// per-service call table) plus this host's engine and admission stats.
const DebugPath = "/debug/wspeer"

// CallbackPath is the URL prefix under which client-hosted reply endpoints
// (HostCallback) receive decoupled replies.
const CallbackPath = "/callback/"

// Spine counters for hosted HTTP traffic.
var (
	mHostRequests  = telemetry.Default().Meter.Counter("httpd.requests")
	mHostFaults    = telemetry.Default().Meter.Counter("httpd.faults")
	mHostOverloads = telemetry.Default().Meter.Counter("httpd.overloads")
)

// maxRequestBytes bounds request bodies accepted from the network.
const maxRequestBytes = 64 << 20

// Interceptor lets the hosting application handle a raw request before the
// messaging engine sees it. Returning handled=false passes the request on
// unchanged; returning handled=true short-circuits with the given response.
type Interceptor func(service string, req *transport.Request) (resp *transport.Response, handled bool, err error)

// Observer receives raw request/response notifications either side of
// engine processing (the hook the core layer turns into ServerMessageEvents).
//
// Deprecated: the observer seam is kept for API compatibility; it fires
// from the same instrumented point that feeds the telemetry spine. New
// code should attach a telemetry.Sink to the Default tracer (for spans)
// or read the spine's snapshot (for counts) instead.
type Observer func(service string, req *transport.Request, resp *transport.Response)

// Options configures a Host.
type Options struct {
	// ListenAddr is the TCP address to bind when the first service is
	// deployed (default "127.0.0.1:0").
	ListenAddr string
	// Profile selects the endpoint scheme advertised in WSDL: "http"
	// (default) or "httpg" for the authenticated profile.
	Profile string
	// Secret is the shared secret for the httpg profile.
	Secret []byte
	// ShutdownTimeout bounds how long Close waits for in-flight requests
	// to drain before forcing the listener down (default 2s).
	ShutdownTimeout time.Duration
	// Admission, when non-nil, is installed on the engine at construction
	// and drained by Close: requests the controller sheds are answered
	// with a SOAP Server fault on HTTP 503 plus a Retry-After header.
	Admission *resilience.Admission
	// EnablePprof mounts net/http/pprof under PprofPath on the same
	// debug mux. Off by default: profiling endpoints expose more about
	// the process than operational counters do, so the application must
	// opt in.
	EnablePprof bool
}

// Host exposes an engine's services over HTTP without a container.
type Host struct {
	eng  *engine.Engine
	opts Options

	mu          sync.Mutex
	ln          net.Listener
	srv         *http.Server
	started     bool
	closed      bool
	interceptor Interceptor
	observer    Observer
	deployed    map[string]bool
	callbacks   map[string]func(body []byte)
	callbackSeq int64
}

// New returns a host for the engine's services. The HTTP listener is NOT
// started; it launches on the first Deploy.
func New(eng *engine.Engine, opts Options) *Host {
	if opts.ListenAddr == "" {
		opts.ListenAddr = "127.0.0.1:0"
	}
	if opts.Profile == "" {
		opts.Profile = "http"
	}
	if opts.ShutdownTimeout <= 0 {
		opts.ShutdownTimeout = 2 * time.Second
	}
	if opts.Admission != nil {
		eng.SetAdmission(opts.Admission)
	}
	return &Host{eng: eng, opts: opts, deployed: make(map[string]bool)}
}

// SetInterceptor installs the application's raw-request hook. For
// applications that "do not wish to deal with server-side message
// processing" (paper §IV-A) simply never install one.
func (h *Host) SetInterceptor(i Interceptor) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.interceptor = i
}

// SetObserver installs a request/response observer.
func (h *Host) SetObserver(o Observer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.observer = o
}

// Started reports whether the lazy listener is up.
func (h *Host) Started() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.started
}

// Deploy registers the service with the engine and exposes it, launching
// the HTTP server if this is the first deployment. It returns the service's
// endpoint URL.
func (h *Host) Deploy(def engine.ServiceDef) (string, error) {
	if _, err := h.eng.Deploy(def); err != nil {
		return "", err
	}
	if err := h.ensureStarted(); err != nil {
		h.eng.Undeploy(def.Name)
		return "", err
	}
	h.mu.Lock()
	h.deployed[def.Name] = true
	h.mu.Unlock()
	return h.Endpoint(def.Name), nil
}

// Undeploy removes a service from the engine and the host listing. The
// listener keeps running for remaining services.
func (h *Host) Undeploy(name string) bool {
	h.mu.Lock()
	delete(h.deployed, name)
	h.mu.Unlock()
	return h.eng.Undeploy(name)
}

// Endpoint returns the URL a deployed service is reachable at ("" before
// the server has started).
func (h *Host) Endpoint(service string) string {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.ln == nil {
		return ""
	}
	return fmt.Sprintf("%s://%s%s%s", h.opts.Profile, h.ln.Addr().String(), BasePath, service)
}

// WSDL generates the WSDL for a deployed service bound to its live
// endpoint.
func (h *Host) WSDL(service string) (*wsdl.Definitions, error) {
	svc := h.eng.Service(service)
	if svc == nil {
		return nil, fmt.Errorf("httpd: no service %q", service)
	}
	transportURI := wsdl.TransportHTTP
	if h.opts.Profile == "httpg" {
		transportURI = wsdl.TransportHTTPG
	}
	return svc.WSDL(transportURI, h.Endpoint(service))
}

// HostCallback exposes a reply endpoint under CallbackPath: the returned
// URL accepts POSTed reply messages and feeds each body to deliver. This
// is the client half of the callback exchange pattern — a consumer hosts
// one of these, stamps its URL as wsa:ReplyTo, and providers deliver
// responses to it on a fresh connection. It launches the lazy listener if
// no service deployment already has, so a pure consumer can host replies
// without deploying anything. The returned cancel tears the route down.
func (h *Host) HostCallback(deliver func(body []byte)) (url string, cancel func(), err error) {
	if err := h.ensureStarted(); err != nil {
		return "", nil, err
	}
	h.mu.Lock()
	h.callbackSeq++
	id := strconv.FormatInt(h.callbackSeq, 10)
	if h.callbacks == nil {
		h.callbacks = make(map[string]func([]byte))
	}
	h.callbacks[id] = deliver
	url = fmt.Sprintf("%s://%s%s%s", h.opts.Profile, h.ln.Addr().String(), CallbackPath, id)
	h.mu.Unlock()
	return url, func() {
		h.mu.Lock()
		delete(h.callbacks, id)
		h.mu.Unlock()
	}, nil
}

// handleCallback accepts a decoupled reply addressed to a hosted callback
// endpoint. Delivery is acknowledged with 202 Accepted and an empty body:
// the reply to a reply is nothing.
func (h *Host) handleCallback(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, CallbackPath)
	h.mu.Lock()
	deliver := h.callbacks[id]
	h.mu.Unlock()
	if deliver == nil {
		http.NotFound(w, r)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err != nil {
		http.Error(w, "reading reply", http.StatusBadRequest)
		return
	}
	if h.opts.Profile == "httpg" {
		proof := r.Header.Get(transport.HTTPGAuthHeader)
		if !transport.VerifyHTTPG(h.opts.Secret, body, proof) {
			http.Error(w, "httpg authentication failed", http.StatusForbidden)
			return
		}
	}
	deliver(body)
	w.WriteHeader(http.StatusAccepted)
}

// ensureStarted lazily launches the listener.
func (h *Host) ensureStarted() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return fmt.Errorf("httpd: host is closed")
	}
	if h.started {
		return nil
	}
	ln, err := net.Listen("tcp", h.opts.ListenAddr)
	if err != nil {
		return fmt.Errorf("httpd: listen %s: %w", h.opts.ListenAddr, err)
	}
	h.ln = ln
	mux := http.NewServeMux()
	mux.HandleFunc(BasePath, h.handle)
	mux.HandleFunc(CallbackPath, h.handleCallback)
	h.registerDebug(mux)
	mux.HandleFunc("/", h.handleIndex)
	h.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go h.srv.Serve(ln) //nolint:errcheck // Serve always returns on Close
	h.started = true
	return nil
}

// Close shuts the listener down, waiting up to Options.ShutdownTimeout
// for in-flight requests to finish. With an admission controller
// installed the host drains first: new dispatches are shed (503) while
// accepted ones run to completion, then the listener goes down.
func (h *Host) Close() error {
	// Flip the closed flag under the lock but drain outside it, so the
	// health endpoint can report "draining" (and in-flight requests can
	// finish) while Close waits.
	h.mu.Lock()
	h.closed = true
	if !h.started {
		h.mu.Unlock()
		return nil
	}
	h.started = false
	srv := h.srv
	h.mu.Unlock()
	ctx, cancel := context.WithTimeout(context.Background(), h.opts.ShutdownTimeout)
	defer cancel()
	var errs []error
	if h.opts.Admission != nil {
		if err := h.opts.Admission.Drain(ctx); err != nil {
			errs = append(errs, err)
		}
	}
	if err := srv.Shutdown(ctx); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

func (h *Host) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" && r.URL.Path != BasePath {
		http.NotFound(w, r)
		return
	}
	h.mu.Lock()
	names := make([]string, 0, len(h.deployed))
	for n := range h.deployed {
		names = append(names, n)
	}
	h.mu.Unlock()
	sort.Strings(names)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "WSPeer services:")
	for _, n := range names {
		fmt.Fprintf(w, "  %s%s (?wsdl for description)\n", BasePath, n)
	}
}

func (h *Host) handle(w http.ResponseWriter, r *http.Request) {
	service := strings.TrimPrefix(r.URL.Path, BasePath)
	if service == "" {
		h.handleIndex(w, r)
		return
	}
	h.mu.Lock()
	known := h.deployed[service]
	interceptor := h.interceptor
	observer := h.observer
	h.mu.Unlock()
	if !known {
		http.NotFound(w, r)
		return
	}

	if r.Method == http.MethodGet {
		if _, ok := r.URL.Query()["wsdl"]; ok {
			defs, err := h.WSDL(service)
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			data, err := defs.Marshal()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "text/xml; charset=utf-8")
			w.Write(data)
			return
		}
		http.Error(w, "POST SOAP requests here, or GET ?wsdl", http.StatusMethodNotAllowed)
		return
	}
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}

	body, err := io.ReadAll(io.LimitReader(r.Body, maxRequestBytes))
	if err != nil {
		http.Error(w, "reading request", http.StatusBadRequest)
		return
	}
	if h.opts.Profile == "httpg" {
		proof := r.Header.Get(transport.HTTPGAuthHeader)
		if !transport.VerifyHTTPG(h.opts.Secret, body, proof) {
			http.Error(w, "httpg authentication failed", http.StatusForbidden)
			return
		}
	}

	req := &transport.Request{
		Endpoint:    r.URL.String(),
		Action:      strings.Trim(r.Header.Get(transport.SOAPActionHeader), `"`),
		ContentType: r.Header.Get("Content-Type"),
		Body:        body,
	}

	mHostRequests.Inc()
	ctx := r.Context()
	// Adopt the caller's trace, if it sent one, so this dispatch's span
	// links to the client-side invocation span across the wire.
	if sc, ok := telemetry.ParseTraceHeader(r.Header.Get(telemetry.TraceHeader)); ok {
		ctx = telemetry.ContextWithSpanContext(ctx, sc)
	}
	// Adopt the caller's propagated deadline: the engine drops dispatches
	// the caller has already abandoned, and a queued admission wait
	// expires against the caller's budget instead of a local guess.
	if dl, ok := transport.ParseDeadline(r.Header.Get(transport.DeadlineHeader)); ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, dl)
		defer cancel()
	}

	var resp *transport.Response
	handled := false
	if interceptor != nil {
		resp, handled, err = interceptor(service, req)
		if err != nil {
			mHostFaults.Inc()
			telemetry.Default().Log.Warn(ctx, "httpd: interceptor failed request",
				"service", service, "err", err)
			writeFault(w, soap.ServerFault(err))
			return
		}
	}
	if !handled {
		resp, err = h.eng.ServeRequest(ctx, service, req)
		if err != nil {
			if o, ok := resilience.AsOverload(err); ok {
				// Admission already logged the shed with this ctx's trace;
				// only count the HTTP-level outcome here.
				mHostOverloads.Inc()
				writeOverload(w, o)
				return
			}
			mHostFaults.Inc()
			telemetry.Default().Log.Warn(ctx, "httpd: dispatch failed, answering with fault",
				"service", service, "err", err)
			writeFault(w, soap.ServerFault(err))
			return
		}
	}
	if observer != nil {
		observer(service, req, resp)
	}
	if len(resp.Body) == 0 {
		w.WriteHeader(http.StatusAccepted) // one-way
		return
	}
	ct := resp.ContentType
	if ct == "" {
		ct = soap.ContentType
	}
	w.Header().Set("Content-Type", ct)
	if resp.Faulted {
		mHostFaults.Inc()
		w.WriteHeader(http.StatusInternalServerError)
	}
	w.Write(resp.Body)
}

// debugSnapshot is the JSON document served at DebugPath.
type debugSnapshot struct {
	Telemetry telemetry.Snapshot      `json:"telemetry"`
	Engine    engine.Stats            `json:"engine"`
	Admission any                     `json:"admission,omitempty"`
	Overload  overloadDebug           `json:"overload"`
	Flight    telemetry.RecorderStats `json:"flight"`
	Services  []string                `json:"services"`
}

// overloadDebug surfaces the cooperative overload-control state — the
// adaptive admission limit, retry-budget balance, hedge traffic and
// deadline drops — as one section of the debug document, so an operator
// sees the whole control loop without correlating raw spine counters.
type overloadDebug struct {
	AdmissionLimit      int64 `json:"admission_limit"`
	BudgetBalanceMilli  int64 `json:"budget_balance_milli"`
	BudgetDraws         int64 `json:"budget_draws"`
	BudgetDenied        int64 `json:"budget_denied"`
	HedgesLaunched      int64 `json:"hedges_launched"`
	HedgeWins           int64 `json:"hedge_wins"`
	HedgesDenied        int64 `json:"hedges_denied"`
	RetriesBudgetDenied int64 `json:"retries_budget_denied"`
	DeadlinesCarried    int64 `json:"deadlines_carried"`
	DeadlinesDropped    int64 `json:"deadlines_dropped"`
}

func (h *Host) handleDebug(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	names := make([]string, 0, len(h.deployed))
	for n := range h.deployed {
		names = append(names, n)
	}
	h.mu.Unlock()
	sort.Strings(names)
	snap := debugSnapshot{
		Telemetry: telemetry.Default().Snapshot(),
		Engine:    h.eng.Stats(),
		Flight:    telemetry.Default().Flight.Stats(),
		Services:  names,
	}
	snap.Overload = overloadDebug{
		AdmissionLimit:      snap.Telemetry.Gauges["resilience.admission.limit"],
		BudgetBalanceMilli:  snap.Telemetry.Gauges["resilience.budget.balance_milli"],
		BudgetDraws:         snap.Telemetry.Counters["resilience.budget.draws"],
		BudgetDenied:        snap.Telemetry.Counters["resilience.budget.denied"],
		HedgesLaunched:      snap.Telemetry.Counters["pipeline.hedge.launched"],
		HedgeWins:           snap.Telemetry.Counters["pipeline.hedge.wins"],
		HedgesDenied:        snap.Telemetry.Counters["pipeline.hedge.denied"],
		RetriesBudgetDenied: snap.Telemetry.Counters["pipeline.retry.budget_denied"],
		DeadlinesCarried:    snap.Telemetry.Counters["engine.deadline.carried"],
		DeadlinesDropped:    snap.Telemetry.Counters["engine.deadline.dropped"],
	}
	if a := h.eng.Admission(); a != nil {
		stats := a.Stats()
		snap.Admission = stats
		snap.Overload.AdmissionLimit = int64(stats.Limit)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(snap) //nolint:errcheck // best-effort debug output
}

func writeFault(w http.ResponseWriter, f *soap.Fault) {
	env := soap.NewEnvelope().SetFault(f)
	w.Header().Set("Content-Type", soap.ContentType)
	w.WriteHeader(http.StatusInternalServerError)
	// MarshalTo streams through the pooled XML writer straight into the
	// response, skipping the intermediate copy Marshal would make.
	env.MarshalTo(w)
}

// writeOverload answers a shed request: a SOAP Server fault carried on
// 503 Service Unavailable with a Retry-After header, so well-behaved
// clients back off instead of hammering a saturated host.
func writeOverload(w http.ResponseWriter, o *resilience.OverloadError) {
	env := soap.NewEnvelope().SetFault(o.Fault())
	w.Header().Set("Content-Type", soap.ContentType)
	w.Header().Set("Retry-After", strconv.Itoa(o.RetryAfterSeconds()))
	w.WriteHeader(http.StatusServiceUnavailable)
	env.MarshalTo(w)
}
