package httpd

import (
	"context"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"wspeer/internal/engine"
	"wspeer/internal/resilience"
	"wspeer/internal/soap"
)

// gatedDef deploys an operation that parks inside the handler until
// release is closed, reporting the high-water mark of concurrent entries.
func gatedDef(entered chan<- struct{}, release <-chan struct{}, inFlight, peak *atomic.Int64) engine.ServiceDef {
	return engine.ServiceDef{
		Name: "Gated",
		Operations: []engine.OperationDef{{
			Name: "wait",
			Func: func(s string) string {
				n := inFlight.Add(1)
				defer inFlight.Add(-1)
				for {
					old := peak.Load()
					if n <= old || peak.CompareAndSwap(old, n) {
						break
					}
				}
				entered <- struct{}{}
				<-release
				return s
			},
			ParamNames: []string{"msg"},
		}},
	}
}

// TestOverloadShedding saturates an admission-controlled host and checks
// the contract end to end: concurrency never exceeds the limit, and shed
// requests receive HTTP 503 with Retry-After and a SOAP Server fault.
func TestOverloadShedding(t *testing.T) {
	const limit = 3
	adm := resilience.NewAdmission(resilience.AdmissionOptions{
		MaxConcurrent: limit,
		MaxQueue:      0,
		RetryAfter:    2 * time.Second,
	})
	h := newHost(t, Options{Admission: adm})

	entered := make(chan struct{}, limit)
	release := make(chan struct{})
	var inFlight, peak atomic.Int64
	endpoint, err := h.Deploy(gatedDef(entered, release, &inFlight, &peak))
	if err != nil {
		t.Fatal(err)
	}

	// Fill every slot with real invocations...
	stub := stubFor(t, h, "Gated", nil)
	var holders sync.WaitGroup
	holderErrs := make(chan error, limit)
	for i := 0; i < limit; i++ {
		holders.Add(1)
		go func() {
			defer holders.Done()
			_, err := stub.Invoke(context.Background(), "wait", engine.P("msg", "held"))
			holderErrs <- err
		}()
	}
	for i := 0; i < limit; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("holders never reached the handler")
		}
	}

	// ...then burst 4x the limit. Every one of these must be shed at the
	// door: 503, Retry-After, SOAP Server fault in the body.
	const burst = 4 * limit
	var sheds sync.WaitGroup
	type shedResult struct {
		status     int
		retryAfter string
		body       string
	}
	results := make(chan shedResult, burst)
	for i := 0; i < burst; i++ {
		sheds.Add(1)
		go func() {
			defer sheds.Done()
			resp, err := http.Post(endpoint, soap.ContentType, strings.NewReader("<x/>"))
			if err != nil {
				results <- shedResult{status: -1, body: err.Error()}
				return
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			results <- shedResult{resp.StatusCode, resp.Header.Get("Retry-After"), string(body)}
		}()
	}
	sheds.Wait()
	close(results)
	for r := range results {
		if r.status != http.StatusServiceUnavailable {
			t.Fatalf("shed request: status %d, body %q", r.status, r.body)
		}
		if r.retryAfter != "2" {
			t.Fatalf("Retry-After = %q, want \"2\"", r.retryAfter)
		}
		if !strings.Contains(r.body, "Server") || !strings.Contains(r.body, "retryAfterSeconds") {
			t.Fatalf("shed body lacks the Server fault: %s", r.body)
		}
	}

	// The held invocations finish normally once released.
	close(release)
	holders.Wait()
	close(holderErrs)
	for err := range holderErrs {
		if err != nil {
			t.Fatalf("held invocation failed: %v", err)
		}
	}

	if got := peak.Load(); got > limit {
		t.Fatalf("observed %d concurrent dispatches, limit %d", got, limit)
	}
	st := adm.Stats()
	if st.Admitted != limit || st.Shed != burst {
		t.Fatalf("stats = %+v, want %d admitted / %d shed", st, limit, burst)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("counters leaked: %+v", st)
	}
}

// TestOverloadQueueTimeout parks one request in the wait queue and checks
// it is shed with the overload contract when its patience runs out.
func TestOverloadQueueTimeout(t *testing.T) {
	adm := resilience.NewAdmission(resilience.AdmissionOptions{
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueTimeout:  50 * time.Millisecond,
		RetryAfter:    time.Second,
	})
	h := newHost(t, Options{Admission: adm})

	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	var inFlight, peak atomic.Int64
	endpoint, err := h.Deploy(gatedDef(entered, release, &inFlight, &peak))
	if err != nil {
		t.Fatal(err)
	}
	defer close(release)

	stub := stubFor(t, h, "Gated", nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		stub.Invoke(context.Background(), "wait", engine.P("msg", "held"))
	}()
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("holder never reached the handler")
	}

	start := time.Now()
	resp, err := http.Post(endpoint, soap.ContentType, strings.NewReader("<x/>"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if waited := time.Since(start); waited > 5*time.Second {
		t.Fatalf("queued request waited %v past its queue timeout", waited)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatalf("Retry-After = %q", resp.Header.Get("Retry-After"))
	}
}
