package httpd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"wspeer/internal/engine"
	"wspeer/internal/telemetry"
)

// debugBase derives the host's base URL from a deployed service endpoint.
func debugBase(t *testing.T, h *Host) string {
	t.Helper()
	ep := h.Endpoint("Echo")
	if ep == "" {
		t.Fatal("no Echo endpoint; deploy before calling debugBase")
	}
	return strings.TrimSuffix(ep, "/services/Echo")
}

func getBody(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	h := newHost(t, Options{})
	if _, err := h.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	stub := stubFor(t, h, "Echo", nil)
	if _, err := stub.Invoke(context.Background(), "echoString", engine.P("msg", "x")); err != nil {
		t.Fatal(err)
	}

	code, ctype, body := getBody(t, debugBase(t, h)+MetricsPath)
	if code != http.StatusOK {
		t.Fatalf("GET %s = %d", MetricsPath, code)
	}
	if ctype != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("metrics content-type = %q", ctype)
	}
	if !strings.Contains(body, "# TYPE wspeer_") {
		t.Fatalf("no wspeer metric families in exposition:\n%s", body)
	}
	// Minimal format check: every sample line is `name[{labels}] value`.
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		if fields := strings.Fields(line); len(fields) < 2 {
			t.Fatalf("malformed sample line %q", line)
		}
		if !strings.HasPrefix(line, "wspeer_") {
			t.Fatalf("unprefixed metric %q", line)
		}
	}
	// The server dispatch above must be visible in the call table family.
	if !strings.Contains(body, `wspeer_calls_total{service="Echo",dir="server"}`) {
		t.Fatalf("call table family missing:\n%s", body)
	}
}

func TestTraceEndpoint(t *testing.T) {
	ring := telemetry.Default().EnableTracing(128)
	defer telemetry.Default().Tracer.SetSink(nil)
	_ = ring

	h := newHost(t, Options{})
	if _, err := h.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	stub := stubFor(t, h, "Echo", nil)
	if _, err := stub.Invoke(context.Background(), "echoString", engine.P("msg", "traced")); err != nil {
		t.Fatal(err)
	}

	code, ctype, body := getBody(t, debugBase(t, h)+TracePath)
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("GET %s = %d %q", TracePath, code, ctype)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("trace endpoint is not valid JSON: %v", err)
	}
	var sawDispatch bool
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" && ev["cat"] == "server" {
			sawDispatch = true
		}
	}
	if !sawDispatch {
		t.Fatalf("no server dispatch span in trace dump (%d events)", len(doc.TraceEvents))
	}
}

func TestHealthEndpoint(t *testing.T) {
	h := newHost(t, Options{})
	if _, err := h.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	code, ctype, body := getBody(t, debugBase(t, h)+HealthPath)
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("GET %s = %d %q", HealthPath, code, ctype)
	}
	var st healthStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" || !st.Live || !st.Ready || st.Services != 1 {
		t.Fatalf("healthy host reported %+v", st)
	}

	// Flip the host into draining and probe the handler directly: over the
	// wire the listener may already be gone by the time Close returns.
	h.mu.Lock()
	h.closed = true
	h.mu.Unlock()
	rec := httptest.NewRecorder()
	h.handleHealth(rec, httptest.NewRequest(http.MethodGet, HealthPath, nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining host answered %d, want 503", rec.Code)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "draining" || st.Ready || !st.Live {
		t.Fatalf("draining host reported %+v", st)
	}
	h.mu.Lock()
	h.closed = false
	h.mu.Unlock()
}

func TestFlightEndpoint(t *testing.T) {
	h := newHost(t, Options{})
	def := echoDef()
	def.Operations = append(def.Operations, engine.OperationDef{
		Name: "fail", Func: func(s string) (string, error) { return "", errors.New("kaboom") }, ParamNames: []string{"msg"},
	})
	if _, err := h.Deploy(def); err != nil {
		t.Fatal(err)
	}
	stub := stubFor(t, h, "Echo", nil)
	if _, err := stub.Invoke(context.Background(), "echoString", engine.P("msg", "ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := stub.Invoke(context.Background(), "fail", engine.P("msg", "x")); err == nil {
		t.Fatal("fail op should fault")
	}

	base := debugBase(t, h)
	code, ctype, body := getBody(t, base+FlightPath+"?service=Echo&dir=server&errors=1")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("GET %s = %d %q", FlightPath, code, ctype)
	}
	var doc flightDocument
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Stats.Seen == 0 {
		t.Fatal("flight recorder saw nothing")
	}
	var sawFault bool
	for _, r := range doc.Records {
		if r.Service != "Echo" || r.Dir != telemetry.DirServer || r.ErrClass == "" {
			t.Fatalf("filtered query returned non-matching record %+v", r)
		}
		if r.ErrClass == telemetry.ClassFault {
			sawFault = true
		}
	}
	if !sawFault {
		t.Fatalf("faulted dispatch not retained: %+v", doc.Records)
	}

	// Bad query parameters answer 400, not 500 or silence.
	for _, q := range []string{"?trace=zz", "?min_latency=fast", "?limit=-2", "?limit=x"} {
		resp, err := http.Get(base + FlightPath + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET %s%s = %d, want 400", FlightPath, q, resp.StatusCode)
		}
	}
}

func TestPprofOptIn(t *testing.T) {
	off := newHost(t, Options{})
	if _, err := off.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(debugBase(t, off) + PprofPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("pprof reachable without opting in")
	}

	on := newHost(t, Options{EnablePprof: true})
	if _, err := on.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	code, _, body := getBody(t, debugBase(t, on)+PprofPath)
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index with opt-in = %d", code)
	}
}

func TestDebugEndpointsConcurrent(t *testing.T) {
	h := newHost(t, Options{})
	if _, err := h.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	stub := stubFor(t, h, "Echo", nil)
	base := debugBase(t, h)
	paths := []string{DebugPath, MetricsPath, TracePath, HealthPath, FlightPath + "?errors=1"}

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := stub.Invoke(context.Background(), "echoString", engine.P("msg", fmt.Sprint(i))); err != nil {
					t.Errorf("invoke: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < len(paths); g++ {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(base + path)
				if err != nil {
					t.Errorf("GET %s: %v", path, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("GET %s = %d under load", path, resp.StatusCode)
					return
				}
			}
		}(paths[g])
	}
	wg.Wait()
}
