package httpd

// This file is the diagnostics egress for a hosted peer: the
// /debug/wspeer handler family. DebugPath (the JSON snapshot) predates
// it; the rest is the exporter surface — Prometheus text metrics, Chrome
// trace-event JSON, flight-recorder queries, liveness/readiness probes
// and (opt-in) pprof.

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"wspeer/internal/resilience"
	"wspeer/internal/telemetry"
)

// MetricsPath serves the telemetry spine in Prometheus text exposition
// format: every Meter counter, gauge and histogram plus the CallTable as
// labelled families. Point a Prometheus scrape job at it as-is.
const MetricsPath = DebugPath + "/metrics"

// TracePath serves recent spans as Chrome trace-event JSON — load the
// response straight into chrome://tracing or https://ui.perfetto.dev.
// Spans are buffered only while tracing is enabled (telemetry
// Hub.EnableTracing / the facade's EnableTracing); before that the dump
// is an empty, still-loadable trace.
const TracePath = DebugPath + "/trace"

// HealthPath serves liveness/readiness probes as JSON: 200 while the
// host is accepting work, 503 once it is draining toward shutdown or the
// admission queue is saturated. Orchestrators can use it directly as a
// readiness check.
const HealthPath = DebugPath + "/health"

// FlightPath serves the flight recorder: JSON of sampling stats plus the
// retained call records, filterable with query parameters service=, dir=,
// errors=1, trace= (16-digit hex), min_latency= (Go duration) and
// limit=N.
const FlightPath = DebugPath + "/flight"

// PprofPath is the prefix net/http/pprof is mounted under when
// Options.EnablePprof is set (the standard /debug/pprof/ so existing
// tooling's defaults work).
const PprofPath = "/debug/pprof/"

// registerDebug mounts the handler family on the host's mux. Called from
// ensureStarted with the routes the host always serves; pprof is mounted
// only when the application opted in, since profile endpoints expose
// more than operational counters do.
func (h *Host) registerDebug(mux *http.ServeMux) {
	mux.HandleFunc(DebugPath, h.handleDebug)
	mux.HandleFunc(MetricsPath, h.handleMetrics)
	mux.HandleFunc(TracePath, h.handleTrace)
	mux.HandleFunc(HealthPath, h.handleHealth)
	mux.HandleFunc(FlightPath, h.handleFlight)
	if h.opts.EnablePprof {
		mux.HandleFunc(PprofPath, pprof.Index)
		mux.HandleFunc(PprofPath+"cmdline", pprof.Cmdline)
		mux.HandleFunc(PprofPath+"profile", pprof.Profile)
		mux.HandleFunc(PprofPath+"symbol", pprof.Symbol)
		mux.HandleFunc(PprofPath+"trace", pprof.Trace)
	}
}

// handleMetrics renders the Prometheus exposition.
func (h *Host) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.Default().WritePrometheus(w) //nolint:errcheck // best-effort scrape output
}

// handleTrace renders buffered spans as Chrome trace-event JSON.
func (h *Host) handleTrace(w http.ResponseWriter, r *http.Request) {
	var spans []telemetry.SpanData
	if ring := telemetry.Default().TraceRing(); ring != nil {
		spans = ring.Spans()
	}
	w.Header().Set("Content-Type", "application/json")
	telemetry.WriteChromeTrace(w, spans) //nolint:errcheck // best-effort debug output
}

// healthStatus is the JSON document served at HealthPath.
type healthStatus struct {
	// Status is "ok", "draining" or "overloaded".
	Status string `json:"status"`
	// Live is true as long as the process answers at all; Ready is true
	// only while new work would be admitted.
	Live  bool `json:"live"`
	Ready bool `json:"ready"`
	// Services counts deployed services.
	Services int `json:"services"`
	// Admission carries the controller's live state when one is installed.
	Admission *resilience.AdmissionStats `json:"admission,omitempty"`
}

// handleHealth answers liveness/readiness probes. Draining (Close has
// begun) and admission saturation (the concurrency limit is exhausted
// and callers are queueing) both flip readiness off with a 503, which is
// exactly when a load balancer should route around this peer.
func (h *Host) handleHealth(w http.ResponseWriter, r *http.Request) {
	h.mu.Lock()
	draining := h.closed
	services := len(h.deployed)
	h.mu.Unlock()

	st := healthStatus{Status: "ok", Live: true, Ready: true, Services: services}
	if a := h.eng.Admission(); a != nil {
		stats := a.Stats()
		st.Admission = &stats
		if stats.Limit > 0 && stats.InFlight >= stats.Limit && stats.Queued > 0 {
			st.Status, st.Ready = "overloaded", false
		}
	}
	if draining {
		st.Status, st.Ready = "draining", false
	}
	w.Header().Set("Content-Type", "application/json")
	if !st.Ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(st) //nolint:errcheck // best-effort debug output
}

// flightDocument is the JSON document served at FlightPath.
type flightDocument struct {
	Stats   telemetry.RecorderStats `json:"stats"`
	Records []telemetry.CallRecord  `json:"records"`
}

// handleFlight queries the flight recorder.
func (h *Host) handleFlight(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := telemetry.RecordFilter{
		Service: q.Get("service"),
		Dir:     q.Get("dir"),
	}
	switch strings.ToLower(q.Get("errors")) {
	case "1", "true", "yes":
		f.ErrorsOnly = true
	}
	if t := q.Get("trace"); t != "" {
		id, err := strconv.ParseUint(t, 16, 64)
		if err != nil {
			http.Error(w, "bad trace= parameter: want 16 hex digits", http.StatusBadRequest)
			return
		}
		f.TraceID = id
	}
	if m := q.Get("min_latency"); m != "" {
		d, err := time.ParseDuration(m)
		if err != nil {
			http.Error(w, "bad min_latency= parameter: want a Go duration like 250ms", http.StatusBadRequest)
			return
		}
		f.MinLatency = d
	}
	if l := q.Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			http.Error(w, "bad limit= parameter", http.StatusBadRequest)
			return
		}
		f.Limit = n
	}
	flight := telemetry.Default().Flight
	doc := flightDocument{Stats: flight.Stats(), Records: flight.Query(f)}
	if doc.Records == nil {
		doc.Records = []telemetry.CallRecord{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(doc) //nolint:errcheck // best-effort debug output
}
