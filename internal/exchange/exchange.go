// Package exchange is the message-exchange layer that every invocation
// flows through. The paper's core architectural claim (§IV-B, figures 5
// and 6) is that WSPeer is asynchronous at the messaging level: the
// consumer is itself an addressable endpoint and request/response is just
// one exchange pattern layered on correlated one-way messages. This
// package makes that literal with a transport-neutral Message (envelope
// bytes + WS-Addressing headers + transport metadata), the three exchange
// patterns, and a bounded TTL'd correlation table that routes decoupled
// replies back to their futures by RelatesTo.
//
// The synchronous fast path does not pass objects from this package at
// all: when no WS-Addressing headers are in play the client and engine
// skip the exchange layer entirely, byte-for-byte and alloc-for-alloc
// identical to before it existed.
package exchange

import (
	"fmt"

	"wspeer/internal/wsaddr"
)

// Pattern identifies a message exchange pattern.
type Pattern int

const (
	// RequestResponse is the classic blocking round trip: the reply comes
	// back on the transport's back channel (ReplyTo anonymous).
	RequestResponse Pattern = iota
	// OneWay is fire-and-forget: the sender gets a transport-level ack
	// only and never decodes a reply.
	OneWay
	// Callback decouples the reply from the request connection: the
	// client hosts a reply endpoint, stamps ReplyTo to it, and the reply
	// arrives as a separate inbound message correlated by RelatesTo.
	Callback
)

// String names the pattern for telemetry and errors.
func (p Pattern) String() string {
	switch p {
	case RequestResponse:
		return "request-response"
	case OneWay:
		return "one-way"
	case Callback:
		return "callback"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Pipeline Meta keys. The exchange layer rides through the interceptor
// chain (Retry, Hedge, Budget all keep working) by stashing its state on
// the pipeline Call's Meta rather than widening the Call struct.
const (
	// MetaPattern carries the Pattern of the in-flight exchange.
	MetaPattern = "exchange.pattern"
	// MetaHeaders carries the *wsaddr.MessageHeaders the client wants
	// stamped on the outbound envelope (MessageID, ReplyTo; the binding
	// fills To/Action/reference properties from the resolved endpoint).
	MetaHeaders = "exchange.headers"
)

// Message is one transport-neutral message: the serialized envelope plus
// the WS-Addressing properties and transport metadata needed to route it.
type Message struct {
	// Endpoint is the destination URI (scheme selects the transport).
	Endpoint string
	// Action is the SOAPAction / wsa:Action value.
	Action string
	// ContentType of Body (empty means the SOAP 1.1 media type).
	ContentType string
	// Body is the serialized SOAP envelope.
	Body []byte
	// Headers are the parsed WS-Addressing message headers, when known.
	Headers *wsaddr.MessageHeaders
}
