package exchange

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"wspeer/internal/telemetry"
)

// Errors surfaced by the correlation table.
var (
	// ErrTableFull means the table is at capacity and the registration was
	// shed rather than allowed to grow the table without bound.
	ErrTableFull = errors.New("exchange: correlation table full")
	// ErrClosed means the table was closed while the exchange was pending.
	ErrClosed = errors.New("exchange: correlation table closed")
)

// ExpiredError reports that no reply arrived for a message before its
// deadline; the table entry has been reclaimed.
type ExpiredError struct {
	MessageID string
	TTL       time.Duration
}

func (e *ExpiredError) Error() string {
	return fmt.Sprintf("exchange: no reply for %s within %s", e.MessageID, e.TTL)
}

// Outcome classifies what happened to an inbound reply.
type Outcome int

const (
	// Resolved: the reply matched a pending exchange and completed it.
	Resolved Outcome = iota
	// Orphan: the reply relates to nothing this table has ever seen
	// (mis-addressed, or the entry was evicted long ago).
	Orphan
	// Duplicate: the reply relates to an exchange that was already
	// resolved or expired (retransmission).
	Duplicate
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case Resolved:
		return "resolved"
	case Orphan:
		return "orphan"
	case Duplicate:
		return "duplicate"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Future is the client's handle on a pending decoupled reply.
type Future struct {
	done chan struct{}
	mu   sync.Mutex
	msg  *Message
	err  error
}

func newFuture() *Future {
	return &Future{done: make(chan struct{})}
}

func (f *Future) complete(msg *Message, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case <-f.done:
		return // already completed
	default:
	}
	f.msg, f.err = msg, err
	close(f.done)
}

// Done returns a channel closed when the reply (or an error) is ready.
func (f *Future) Done() <-chan struct{} { return f.done }

// Wait blocks until the reply arrives, the exchange expires, or ctx is
// done, whichever is first.
func (f *Future) Wait(ctx context.Context) (*Message, error) {
	select {
	case <-f.done:
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.msg, f.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TableOptions bound the correlation table.
type TableOptions struct {
	// Capacity is the maximum number of pending exchanges (default 4096).
	// Registrations beyond it are shed with ErrTableFull.
	Capacity int
	// TTL is the default per-exchange deadline (default 30s). A zero or
	// negative per-registration ttl falls back to it. Every entry carries
	// a timer, so an exchange whose reply never comes is reclaimed — the
	// table cannot leak.
	TTL time.Duration
	// DedupWindow is how many recently completed MessageIDs are remembered
	// for duplicate-reply detection (default 1024).
	DedupWindow int
}

func (o TableOptions) withDefaults() TableOptions {
	if o.Capacity <= 0 {
		o.Capacity = 4096
	}
	if o.TTL <= 0 {
		o.TTL = 30 * time.Second
	}
	if o.DedupWindow <= 0 {
		o.DedupWindow = 1024
	}
	return o
}

type tableEntry struct {
	f     *Future
	timer *time.Timer
	start time.Time
}

// Table is the bounded, TTL'd correlation table: pending exchanges keyed
// by the request MessageID, resolved by the reply's RelatesTo.
type Table struct {
	opts TableOptions

	mu      sync.Mutex
	entries map[string]*tableEntry
	// recent is a bounded ring of completed MessageIDs so retransmitted
	// replies classify as Duplicate rather than Orphan.
	recent    map[string]struct{}
	recentBuf []string
	recentPos int
	closed    bool

	// Local stats (the telemetry instruments below are process-global and
	// shared across tables).
	resolved, expired, orphans, duplicates, shed int64

	inflightGauge *telemetry.Gauge
	expiredCtr    *telemetry.Counter
	orphanCtr     *telemetry.Counter
	duplicateCtr  *telemetry.Counter
	latencyHist   *telemetry.Histogram
}

// NewTable returns a correlation table with the given bounds.
func NewTable(opts TableOptions) *Table {
	m := telemetry.Default().Meter
	return &Table{
		opts:          opts.withDefaults(),
		entries:       make(map[string]*tableEntry),
		recent:        make(map[string]struct{}),
		inflightGauge: m.Gauge("exchange.inflight"),
		expiredCtr:    m.Counter("exchange.expired"),
		orphanCtr:     m.Counter("exchange.orphan"),
		duplicateCtr:  m.Counter("exchange.duplicate"),
		latencyHist:   m.Histogram("exchange.callback.latency"),
	}
}

// Register adds a pending exchange keyed by messageID and returns its
// Future. ttl caps how long the entry may wait for its reply (0 means the
// table default). Registration is shed with ErrTableFull at capacity.
func (t *Table) Register(messageID string, ttl time.Duration) (*Future, error) {
	if messageID == "" {
		return nil, fmt.Errorf("exchange: register with empty MessageID")
	}
	if ttl <= 0 {
		ttl = t.opts.TTL
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	if _, dup := t.entries[messageID]; dup {
		t.mu.Unlock()
		return nil, fmt.Errorf("exchange: MessageID %s already pending", messageID)
	}
	if len(t.entries) >= t.opts.Capacity {
		t.shed++
		t.mu.Unlock()
		return nil, ErrTableFull
	}
	e := &tableEntry{f: newFuture(), start: time.Now()}
	e.timer = time.AfterFunc(ttl, func() { t.expire(messageID, ttl) })
	t.entries[messageID] = e
	t.inflightGauge.Add(1)
	t.mu.Unlock()
	return e.f, nil
}

// Resolve routes an inbound reply to the pending exchange it relates to.
// The returned Outcome says whether it matched, was a duplicate of an
// already-completed exchange, or relates to nothing known (orphan).
func (t *Table) Resolve(relatesTo string, msg *Message) Outcome {
	t.mu.Lock()
	e, ok := t.entries[relatesTo]
	if !ok {
		if _, dup := t.recent[relatesTo]; dup {
			t.duplicates++
			t.mu.Unlock()
			t.duplicateCtr.Inc()
			telemetry.Default().Log.Info(nil, "exchange: duplicate reply dropped",
				"relates_to", relatesTo)
			return Duplicate
		}
		t.orphans++
		t.mu.Unlock()
		t.orphanCtr.Inc()
		telemetry.Default().Log.Warn(nil, "exchange: orphan reply, no pending exchange",
			"relates_to", relatesTo)
		return Orphan
	}
	delete(t.entries, relatesTo)
	t.remember(relatesTo)
	t.resolved++
	elapsed := time.Since(e.start)
	t.mu.Unlock()

	e.timer.Stop()
	t.inflightGauge.Add(-1)
	t.latencyHist.Observe(elapsed)
	e.f.complete(msg, nil)
	return Resolved
}

// Cancel withdraws a pending exchange without completing its Future —
// the cleanup path when the request failed to send, so no reply can ever
// arrive. It reports whether the entry was still pending.
func (t *Table) Cancel(messageID string) bool {
	t.mu.Lock()
	e, ok := t.entries[messageID]
	if !ok {
		t.mu.Unlock()
		return false
	}
	delete(t.entries, messageID)
	t.remember(messageID)
	t.mu.Unlock()

	e.timer.Stop()
	t.inflightGauge.Add(-1)
	return true
}

// expire reclaims an entry whose reply never arrived (deadline-driven: the
// per-entry timer calls it, so abandoned exchanges cannot accumulate).
func (t *Table) expire(messageID string, ttl time.Duration) {
	t.mu.Lock()
	e, ok := t.entries[messageID]
	if !ok {
		t.mu.Unlock()
		return // resolved concurrently
	}
	delete(t.entries, messageID)
	t.remember(messageID)
	t.expired++
	t.mu.Unlock()

	t.inflightGauge.Add(-1)
	t.expiredCtr.Inc()
	telemetry.Default().Log.Warn(nil, "exchange: pending exchange expired, reply never arrived",
		"message_id", messageID, "ttl", ttl)
	e.f.complete(nil, &ExpiredError{MessageID: messageID, TTL: ttl})
}

// remember records a completed MessageID in the bounded dedup ring.
// Callers hold t.mu.
func (t *Table) remember(id string) {
	if len(t.recentBuf) < t.opts.DedupWindow {
		t.recentBuf = append(t.recentBuf, id)
	} else {
		delete(t.recent, t.recentBuf[t.recentPos])
		t.recentBuf[t.recentPos] = id
		t.recentPos = (t.recentPos + 1) % t.opts.DedupWindow
	}
	t.recent[id] = struct{}{}
}

// Len reports the number of pending exchanges.
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.entries)
}

// Close fails every pending exchange with ErrClosed and rejects future
// registrations.
func (t *Table) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	pending := make([]*tableEntry, 0, len(t.entries))
	for id, e := range t.entries {
		delete(t.entries, id)
		t.remember(id)
		pending = append(pending, e)
	}
	t.mu.Unlock()
	for _, e := range pending {
		e.timer.Stop()
		t.inflightGauge.Add(-1)
		e.f.complete(nil, ErrClosed)
	}
}

// TableStats is a point-in-time snapshot of one table's counters.
type TableStats struct {
	Inflight   int
	Resolved   int64
	Expired    int64
	Orphans    int64
	Duplicates int64
	Shed       int64
}

// Stats snapshots the table's counters.
func (t *Table) Stats() TableStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return TableStats{
		Inflight:   len(t.entries),
		Resolved:   t.resolved,
		Expired:    t.expired,
		Orphans:    t.orphans,
		Duplicates: t.duplicates,
		Shed:       t.shed,
	}
}
