package exchange

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestTableResolveCompletesFuture(t *testing.T) {
	tab := NewTable(TableOptions{})
	f, err := tab.Register("urn:uuid:1", time.Minute)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	want := &Message{Body: []byte("<reply/>"), Action: "a#response"}
	if got := tab.Resolve("urn:uuid:1", want); got != Resolved {
		t.Fatalf("Resolve outcome = %v, want Resolved", got)
	}
	msg, err := f.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if string(msg.Body) != "<reply/>" {
		t.Fatalf("Wait body = %q", msg.Body)
	}
	if tab.Len() != 0 {
		t.Fatalf("table retains %d entries after resolve", tab.Len())
	}
}

func TestTableExpiryReclaimsEntry(t *testing.T) {
	tab := NewTable(TableOptions{TTL: 10 * time.Millisecond})
	f, err := tab.Register("urn:uuid:exp", 0)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	_, err = f.Wait(context.Background())
	var exp *ExpiredError
	if !errors.As(err, &exp) {
		t.Fatalf("Wait error = %v, want ExpiredError", err)
	}
	if exp.MessageID != "urn:uuid:exp" {
		t.Fatalf("ExpiredError.MessageID = %q", exp.MessageID)
	}
	if tab.Len() != 0 {
		t.Fatalf("table retains %d entries after expiry", tab.Len())
	}
	st := tab.Stats()
	if st.Expired != 1 || st.Inflight != 0 {
		t.Fatalf("stats after expiry = %+v", st)
	}
	// A late reply for the expired exchange is a duplicate, not an orphan.
	if got := tab.Resolve("urn:uuid:exp", &Message{}); got != Duplicate {
		t.Fatalf("late reply outcome = %v, want Duplicate", got)
	}
}

func TestTableDuplicateAndOrphanReplies(t *testing.T) {
	tab := NewTable(TableOptions{})
	if _, err := tab.Register("urn:uuid:d", time.Minute); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if got := tab.Resolve("urn:uuid:d", &Message{}); got != Resolved {
		t.Fatalf("first reply = %v, want Resolved", got)
	}
	if got := tab.Resolve("urn:uuid:d", &Message{}); got != Duplicate {
		t.Fatalf("retransmitted reply = %v, want Duplicate", got)
	}
	if got := tab.Resolve("urn:uuid:never-sent", &Message{}); got != Orphan {
		t.Fatalf("unknown reply = %v, want Orphan", got)
	}
	st := tab.Stats()
	if st.Resolved != 1 || st.Duplicates != 1 || st.Orphans != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTableCapacitySheds(t *testing.T) {
	tab := NewTable(TableOptions{Capacity: 2, TTL: time.Minute})
	for i := 0; i < 2; i++ {
		if _, err := tab.Register(fmt.Sprintf("urn:uuid:cap-%d", i), 0); err != nil {
			t.Fatalf("Register %d: %v", i, err)
		}
	}
	if _, err := tab.Register("urn:uuid:cap-2", 0); !errors.Is(err, ErrTableFull) {
		t.Fatalf("Register beyond capacity = %v, want ErrTableFull", err)
	}
	// Resolving one frees a slot.
	tab.Resolve("urn:uuid:cap-0", &Message{})
	if _, err := tab.Register("urn:uuid:cap-2", 0); err != nil {
		t.Fatalf("Register after resolve: %v", err)
	}
}

func TestTableDoesNotLeakUnderChurn(t *testing.T) {
	// Exchanges whose replies never come must all be reclaimed by their
	// timers; the table must end empty.
	tab := NewTable(TableOptions{Capacity: 512, TTL: 5 * time.Millisecond})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id := fmt.Sprintf("urn:uuid:churn-%d-%d", g, i)
				f, err := tab.Register(id, 0)
				if err != nil {
					t.Errorf("Register %s: %v", id, err)
					return
				}
				if i%2 == 0 {
					tab.Resolve(id, &Message{})
				}
				if _, err := f.Wait(context.Background()); err != nil {
					var exp *ExpiredError
					if !errors.As(err, &exp) {
						t.Errorf("Wait %s: %v", id, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	deadline := time.Now().Add(2 * time.Second)
	for tab.Len() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := tab.Len(); n != 0 {
		t.Fatalf("table leaked %d entries", n)
	}
	st := tab.Stats()
	if st.Resolved+st.Expired != 400 {
		t.Fatalf("resolved %d + expired %d != 400", st.Resolved, st.Expired)
	}
}

func TestTableConcurrentResolveExpireRace(t *testing.T) {
	// Resolve and expiry racing on the same entries must complete each
	// future exactly once and never deadlock.
	tab := NewTable(TableOptions{Capacity: 1024, TTL: time.Millisecond})
	var wg sync.WaitGroup
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("urn:uuid:race-%d", i)
		f, err := tab.Register(id, 0)
		if err != nil {
			t.Fatalf("Register: %v", err)
		}
		wg.Add(2)
		go func() {
			defer wg.Done()
			tab.Resolve(id, &Message{})
		}()
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if _, err := f.Wait(ctx); err != nil {
				var exp *ExpiredError
				if !errors.As(err, &exp) {
					t.Errorf("Wait: %v", err)
				}
			}
		}()
	}
	wg.Wait()
}

func TestTableCloseFailsPending(t *testing.T) {
	tab := NewTable(TableOptions{TTL: time.Minute})
	f, err := tab.Register("urn:uuid:closing", 0)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	tab.Close()
	if _, err := f.Wait(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Wait after close = %v, want ErrClosed", err)
	}
	if _, err := tab.Register("urn:uuid:late", 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("Register after close = %v, want ErrClosed", err)
	}
}

func TestFutureWaitHonorsContext(t *testing.T) {
	tab := NewTable(TableOptions{TTL: time.Minute})
	f, err := tab.Register("urn:uuid:ctx", 0)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait = %v, want context.Canceled", err)
	}
	// The entry is still pending (ctx cancel does not unregister).
	if tab.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tab.Len())
	}
	tab.Close()
}

func TestPatternAndOutcomeStrings(t *testing.T) {
	if RequestResponse.String() != "request-response" || OneWay.String() != "one-way" || Callback.String() != "callback" {
		t.Fatal("Pattern.String mismatch")
	}
	if Resolved.String() != "resolved" || Orphan.String() != "orphan" || Duplicate.String() != "duplicate" {
		t.Fatal("Outcome.String mismatch")
	}
}
