package netsim

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestDeliveryAndVirtualTime(t *testing.T) {
	sim := New(1)
	sim.SetDefaultLink(Link{Latency: 10 * time.Millisecond})
	a, err := sim.NewEndpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.NewEndpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	var at time.Duration
	b.SetReceiver(func(from string, data []byte) {
		got = append(got, from+":"+string(data))
		at = sim.Now()
	})
	if err := a.Send("b", []byte("hi")); err != nil {
		t.Fatal(err)
	}
	if n := sim.Run(0); n != 1 {
		t.Fatalf("events = %d", n)
	}
	if len(got) != 1 || got[0] != "sim://a:hi" {
		t.Fatalf("got = %v", got)
	}
	if at != 10*time.Millisecond {
		t.Fatalf("delivery time = %v", at)
	}
	st := sim.Stats()
	if st.Sent != 1 || st.Delivered != 1 || st.Bytes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAddressForms(t *testing.T) {
	sim := New(1)
	a, _ := sim.NewEndpoint("a")
	b, _ := sim.NewEndpoint("b")
	n := 0
	b.SetReceiver(func(string, []byte) { n++ })
	a.Send("sim://b", []byte("x"))
	a.Send("b", []byte("y"))
	sim.Run(0)
	if n != 2 {
		t.Fatalf("delivered = %d", n)
	}
}

func TestDuplicateEndpoint(t *testing.T) {
	sim := New(1)
	if _, err := sim.NewEndpoint("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.NewEndpoint("a"); err == nil {
		t.Fatal("duplicate endpoint accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func(seed int64) []string {
		sim := New(seed)
		sim.SetDefaultLink(Link{Latency: 5 * time.Millisecond, Jitter: 5 * time.Millisecond, Loss: 0.3})
		var log []string
		var mu sync.Mutex
		eps := make([]*Endpoint, 5)
		for i := range eps {
			name := fmt.Sprintf("n%d", i)
			ep, _ := sim.NewEndpoint(name)
			ep.SetReceiver(func(from string, data []byte) {
				mu.Lock()
				log = append(log, fmt.Sprintf("%v %s->%s %s", sim.Now(), from, name, data))
				mu.Unlock()
			})
			eps[i] = ep
		}
		for i := 0; i < 50; i++ {
			eps[i%5].Send(fmt.Sprintf("n%d", (i+1)%5), []byte(fmt.Sprintf("m%d", i)))
		}
		sim.Run(0)
		return log
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %q vs %q", i, a[i], b[i])
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical runs (suspicious)")
	}
}

func TestLoss(t *testing.T) {
	sim := New(7)
	sim.SetDefaultLink(Link{Latency: time.Millisecond, Loss: 1.0})
	a, _ := sim.NewEndpoint("a")
	b, _ := sim.NewEndpoint("b")
	delivered := 0
	b.SetReceiver(func(string, []byte) { delivered++ })
	for i := 0; i < 10; i++ {
		a.Send("b", []byte("x"))
	}
	sim.Run(0)
	if delivered != 0 {
		t.Fatalf("loss=1.0 delivered %d", delivered)
	}
	st := sim.Stats()
	if st.Dropped != 10 || st.Sent != 10 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPerLinkOverride(t *testing.T) {
	sim := New(1)
	sim.SetDefaultLink(Link{Latency: time.Millisecond})
	sim.SetLink("a", "b", Link{Latency: 100 * time.Millisecond})
	a, _ := sim.NewEndpoint("a")
	b, _ := sim.NewEndpoint("b")
	var at time.Duration
	b.SetReceiver(func(string, []byte) { at = sim.Now() })
	a.Send("b", nil)
	sim.Run(0)
	if at != 100*time.Millisecond {
		t.Fatalf("override latency = %v", at)
	}
	// Reverse direction uses the default.
	a.SetReceiver(func(string, []byte) { at = sim.Now() })
	b.Send("a", nil)
	sim.Run(0)
	if at != 101*time.Millisecond {
		t.Fatalf("reverse latency = %v", at)
	}
}

func TestClosedEndpoint(t *testing.T) {
	sim := New(1)
	a, _ := sim.NewEndpoint("a")
	b, _ := sim.NewEndpoint("b")
	delivered := 0
	b.SetReceiver(func(string, []byte) { delivered++ })
	a.Send("b", []byte("1"))
	b.Close()
	if !b.Closed() {
		t.Fatal("Closed flag")
	}
	a.Send("b", []byte("2"))
	sim.Run(0)
	if delivered != 0 {
		t.Fatalf("delivered to closed endpoint: %d", delivered)
	}
	st := sim.Stats()
	if st.Dead != 2 {
		t.Fatalf("dead = %d", st.Dead)
	}
	if err := b.Send("a", nil); err == nil {
		t.Fatal("send on closed endpoint accepted")
	}
}

func TestAfterFuncAndCancel(t *testing.T) {
	sim := New(1)
	fired := []string{}
	sim.AfterFunc(30*time.Millisecond, func() { fired = append(fired, "late") })
	sim.AfterFunc(10*time.Millisecond, func() { fired = append(fired, "early") })
	cancel := sim.AfterFunc(20*time.Millisecond, func() { fired = append(fired, "cancelled") })
	cancel()
	sim.Run(0)
	if len(fired) != 2 || fired[0] != "early" || fired[1] != "late" {
		t.Fatalf("fired = %v", fired)
	}
	if sim.Now() != 30*time.Millisecond {
		t.Fatalf("now = %v", sim.Now())
	}
}

func TestRunFor(t *testing.T) {
	sim := New(1)
	fired := 0
	sim.AfterFunc(10*time.Millisecond, func() { fired++ })
	sim.AfterFunc(50*time.Millisecond, func() { fired++ })
	n := sim.RunFor(20 * time.Millisecond)
	if n != 1 || fired != 1 {
		t.Fatalf("RunFor processed %d, fired %d", n, fired)
	}
	if sim.Now() != 20*time.Millisecond {
		t.Fatalf("clock = %v", sim.Now())
	}
	sim.Run(0)
	if fired != 2 {
		t.Fatalf("remaining timer lost: %d", fired)
	}
}

func TestHottest(t *testing.T) {
	sim := New(1)
	a, _ := sim.NewEndpoint("a")
	sim.NewEndpoint("hub")
	sim.NewEndpoint("c")
	for i := 0; i < 5; i++ {
		a.Send("hub", nil)
	}
	a.Send("c", nil)
	sim.Run(0)
	name, count := sim.Hottest()
	if name != "hub" || count != 5 {
		t.Fatalf("hottest = %s/%d", name, count)
	}
	if sim.Received("c") != 1 {
		t.Fatalf("received(c) = %d", sim.Received("c"))
	}
}

func TestPayloadIsolation(t *testing.T) {
	sim := New(1)
	a, _ := sim.NewEndpoint("a")
	b, _ := sim.NewEndpoint("b")
	var got []byte
	b.SetReceiver(func(_ string, data []byte) { got = data })
	buf := []byte("original")
	a.Send("b", buf)
	buf[0] = 'X'
	sim.Run(0)
	if string(got) != "original" {
		t.Fatalf("payload aliased sender buffer: %q", got)
	}
}

func TestCascadingEvents(t *testing.T) {
	// A receiver that sends in its handler: the relay pattern every P2PS
	// rendezvous uses.
	sim := New(1)
	sim.SetDefaultLink(Link{Latency: time.Millisecond})
	a, _ := sim.NewEndpoint("a")
	relay, _ := sim.NewEndpoint("relay")
	c, _ := sim.NewEndpoint("c")
	relay.SetReceiver(func(_ string, data []byte) {
		relay.Send("c", append(data, '!'))
	})
	var got string
	c.SetReceiver(func(_ string, data []byte) { got = string(data) })
	a.Send("relay", []byte("q"))
	sim.Run(0)
	if got != "q!" {
		t.Fatalf("relay = %q", got)
	}
	if sim.Now() != 2*time.Millisecond {
		t.Fatalf("two hops = %v", sim.Now())
	}
}
