// Package netsim is a deterministic discrete-event network simulator. It
// substitutes for the NS2+AgentJ setup the paper uses to "simulate large
// networks of peers publishing, discovering and invoking Web services in a
// distributed topology" (§IV): the same P2PS protocol code that runs over
// real sockets runs unmodified over simulated endpoints, with virtual time,
// per-link latency/jitter/loss, and message accounting.
//
// The simulator is single-threaded: all deliveries and timers execute on
// the event loop in timestamp order, so a given seed reproduces a run
// bit-for-bit.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Link describes one direction of connectivity between two endpoints.
type Link struct {
	// Latency is the fixed propagation delay.
	Latency time.Duration
	// Jitter adds a uniform random delay in [0, Jitter).
	Jitter time.Duration
	// Loss is the probability in [0,1] that a message is dropped.
	Loss float64
	// Fault, when set, lets a fault injector inspect each message that
	// survived Loss and drop or further delay it (resilience.Injector's
	// LinkFault adapts onto this). It composes after Loss and before
	// Latency/Jitter; drops it requests are counted as Dropped.
	Fault func(from, to string, data []byte) (drop bool, extra time.Duration)
}

// Stats aggregates message accounting for a run.
type Stats struct {
	Sent      int64
	Delivered int64
	Dropped   int64 // lost on the link
	Dead      int64 // addressed to a failed/unknown endpoint
	Bytes     int64
}

// event is a scheduled occurrence: a delivery or a timer.
type event struct {
	at  time.Duration
	seq int64 // tie-break for determinism
	fn  func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Simulator is the event loop, topology and clock.
type Simulator struct {
	mu        sync.Mutex
	rng       *rand.Rand
	now       time.Duration
	seq       int64
	queue     eventQueue
	endpoints map[string]*Endpoint
	defLink   Link
	links     map[[2]string]Link
	stats     Stats
	received  map[string]int64
}

// New returns a simulator seeded for reproducibility. The default link is
// 10ms latency, 2ms jitter, no loss.
func New(seed int64) *Simulator {
	return &Simulator{
		rng:       rand.New(rand.NewSource(seed)),
		endpoints: make(map[string]*Endpoint),
		links:     make(map[[2]string]Link),
		defLink:   Link{Latency: 10 * time.Millisecond, Jitter: 2 * time.Millisecond},
		received:  make(map[string]int64),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// SetDefaultLink sets the link parameters used for pairs without an
// explicit link.
func (s *Simulator) SetDefaultLink(l Link) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.defLink = l
}

// SetLink sets the parameters for messages from a to b (one direction).
func (s *Simulator) SetLink(from, to string, l Link) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.links[[2]string{from, to}] = l
}

// Stats returns a snapshot of the accounting counters.
func (s *Simulator) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Received reports how many messages an endpoint has been delivered.
func (s *Simulator) Received(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.received[name]
}

// ReceivedSnapshot copies the per-endpoint delivery counters, letting
// experiments compute deltas between phases.
func (s *Simulator) ReceivedSnapshot() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, len(s.received))
	for k, v := range s.received {
		out[k] = v
	}
	return out
}

// Hottest returns the endpoint that has received the most messages — the
// bottleneck measurement for the discovery-scaling experiment.
func (s *Simulator) Hottest() (name string, count int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for n, c := range s.received {
		if c > count || (c == count && (name == "" || n < name)) {
			name, count = n, c
		}
	}
	return name, count
}

// schedule must be called with s.mu held.
func (s *Simulator) schedule(delay time.Duration, fn func()) *event {
	s.seq++
	e := &event{at: s.now + delay, seq: s.seq, fn: fn}
	heap.Push(&s.queue, e)
	return e
}

// AfterFunc schedules fn on the event loop after virtual delay d, returning
// a cancel function. It implements the protocol Clock interface.
func (s *Simulator) AfterFunc(d time.Duration, fn func()) func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	cancelled := false
	e := s.schedule(d, func() {
		if !cancelled {
			fn()
		}
	})
	_ = e
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		cancelled = true
	}
}

// Run processes events until the queue is empty or maxEvents have executed
// (0 means no bound). It returns the number of events processed.
func (s *Simulator) Run(maxEvents int) int {
	n := 0
	for {
		s.mu.Lock()
		if len(s.queue) == 0 || (maxEvents > 0 && n >= maxEvents) {
			s.mu.Unlock()
			return n
		}
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		s.mu.Unlock()
		e.fn() // runs without the lock; handlers may send/schedule
		n++
	}
}

// RunFor processes events with timestamps up to the given virtual duration
// from now, advancing the clock to exactly that point.
func (s *Simulator) RunFor(d time.Duration) int {
	s.mu.Lock()
	deadline := s.now + d
	s.mu.Unlock()
	n := 0
	for {
		s.mu.Lock()
		if len(s.queue) == 0 || s.queue[0].at > deadline {
			s.now = deadline
			s.mu.Unlock()
			return n
		}
		e := heap.Pop(&s.queue).(*event)
		s.now = e.at
		s.mu.Unlock()
		e.fn()
		n++
	}
}

// ---------------------------------------------------------------------------
// Endpoints

// Receiver handles a delivered message.
type Receiver func(from string, data []byte)

// Endpoint is a simulated network attachment point.
type Endpoint struct {
	sim    *Simulator
	name   string
	mu     sync.Mutex
	recv   Receiver
	closed bool
}

// NewEndpoint attaches a named endpoint to the simulator.
func (s *Simulator) NewEndpoint(name string) (*Endpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.endpoints[name]; exists {
		return nil, fmt.Errorf("netsim: endpoint %q already exists", name)
	}
	ep := &Endpoint{sim: s, name: name}
	s.endpoints[name] = ep
	return ep, nil
}

// Addr returns the endpoint's address ("sim://name").
func (ep *Endpoint) Addr() string { return "sim://" + ep.name }

// SetReceiver installs the delivery callback.
func (ep *Endpoint) SetReceiver(r func(from string, data []byte)) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.recv = r
}

// Close detaches the endpoint: pending and future messages to it are
// counted as Dead. Closing models node failure for the churn experiments.
func (ep *Endpoint) Close() error {
	ep.mu.Lock()
	ep.closed = true
	ep.mu.Unlock()
	ep.sim.mu.Lock()
	delete(ep.sim.endpoints, ep.name)
	ep.sim.mu.Unlock()
	return nil
}

// Closed reports whether the endpoint has been closed.
func (ep *Endpoint) Closed() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.closed
}

// Send schedules delivery of data to the named endpoint ("sim://x" or
// bare "x"). Sending never blocks; loss and dead destinations are recorded
// in the statistics rather than returned as errors (matching datagram
// semantics).
func (ep *Endpoint) Send(to string, data []byte) error {
	if len(to) > 6 && to[:6] == "sim://" {
		to = to[6:]
	}
	s := ep.sim
	s.mu.Lock()
	defer s.mu.Unlock()
	if ep.closed {
		return fmt.Errorf("netsim: send on closed endpoint %q", ep.name)
	}
	s.stats.Sent++
	s.stats.Bytes += int64(len(data))
	link, ok := s.links[[2]string{ep.name, to}]
	if !ok {
		link = s.defLink
	}
	if link.Loss > 0 && s.rng.Float64() < link.Loss {
		s.stats.Dropped++
		return nil
	}
	delay := link.Latency
	if link.Fault != nil {
		drop, extra := link.Fault(ep.name, to, data)
		if drop {
			s.stats.Dropped++
			return nil
		}
		delay += extra
	}
	if link.Jitter > 0 {
		delay += time.Duration(s.rng.Int63n(int64(link.Jitter)))
	}
	from := ep.name
	payload := append([]byte(nil), data...)
	s.schedule(delay, func() {
		s.mu.Lock()
		dst, alive := s.endpoints[to]
		if alive {
			s.stats.Delivered++
			s.received[to]++
		} else {
			s.stats.Dead++
		}
		s.mu.Unlock()
		if !alive {
			return
		}
		dst.mu.Lock()
		recv := dst.recv
		closed := dst.closed
		dst.mu.Unlock()
		if recv != nil && !closed {
			recv("sim://"+from, payload)
		}
	})
	return nil
}
