package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"wspeer/internal/soap"
	"wspeer/internal/transport"
	"wspeer/internal/wsdl"
	"wspeer/internal/xmlutil"
)

// Coordinates is a typed parameter exercised end to end.
type Coordinates struct {
	Lat float64
	Lon float64
}

func echoDef() ServiceDef {
	return ServiceDef{
		Name: "Echo",
		Operations: []OperationDef{
			{
				Name:       "echoString",
				Func:       func(msg string) string { return msg },
				ParamNames: []string{"msg"},
				Doc:        "echoes its input",
			},
			{
				Name: "add",
				Func: func(ctx context.Context, a, b int64) (int64, error) {
					if ctx == nil {
						return 0, errors.New("no context")
					}
					return a + b, nil
				},
				ParamNames: []string{"a", "b"},
			},
			{
				Name: "locate",
				Func: func(name string) (Coordinates, error) {
					if name == "" {
						return Coordinates{}, errors.New("empty name")
					}
					return Coordinates{Lat: 51.48, Lon: -3.18}, nil
				},
			},
			{
				Name:   "fireAndForget",
				Func:   func(event string) error { return nil },
				OneWay: true,
			},
			{
				Name: "panics",
				Func: func() string { panic("kaboom") },
			},
			{
				Name: "divide",
				Func: func(a, b float64) (float64, float64, error) {
					if b == 0 {
						return 0, 0, soap.NewFault(soap.FaultClient, "division by zero")
					}
					return a / b, 0, nil
				},
				ResultNames: []string{"quotient", "remainder"},
			},
		},
	}
}

// harness wires an engine-backed Echo service to an in-memory network and
// returns a stub built from the generated-and-reparsed WSDL, exactly as a
// remote consumer would see it.
func harness(t *testing.T) (*Engine, *Stub, *transport.InMemNetwork) {
	t.Helper()
	e := New()
	svc, err := e.Deploy(echoDef())
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewInMemNetwork()
	const addr = "mem://host/services/Echo"
	net.Register(addr, e.Handler("Echo"))

	defs, err := svc.WSDL(wsdl.TransportHTTP, addr)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := defs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := wsdl.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	reg := transport.NewRegistry()
	reg.Register(net.Transport())
	return e, NewStub(parsed, reg), net
}

func TestEndToEndEcho(t *testing.T) {
	_, stub, _ := harness(t)
	res, err := stub.Invoke(context.Background(), "echoString", P("msg", "hello wspeer"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.String("return")
	if err != nil || got != "hello wspeer" {
		t.Fatalf("echo = %q, %v", got, err)
	}
}

func TestEndToEndTypedAndContext(t *testing.T) {
	_, stub, _ := harness(t)
	res, err := stub.Invoke(context.Background(), "add", P("a", int64(40)), P("b", int64(2)))
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	if err := res.Decode("return", &sum); err != nil || sum != 42 {
		t.Fatalf("add = %d, %v", sum, err)
	}

	res, err = stub.Invoke(context.Background(), "locate", P("in0", "cardiff"))
	if err != nil {
		t.Fatal(err)
	}
	var c Coordinates
	if err := res.Decode("return", &c); err != nil || c.Lat != 51.48 || c.Lon != -3.18 {
		t.Fatalf("locate = %+v, %v", c, err)
	}
}

func TestEndToEndMultipleResults(t *testing.T) {
	_, stub, _ := harness(t)
	res, err := stub.Invoke(context.Background(), "divide", P("in0", 10.0), P("in1", 4.0))
	if err != nil {
		t.Fatal(err)
	}
	var q, r float64
	if err := res.Decode("quotient", &q); err != nil || q != 2.5 {
		t.Fatalf("quotient = %v, %v", q, err)
	}
	if err := res.Decode("remainder", &r); err != nil || r != 0 {
		t.Fatalf("remainder = %v, %v", r, err)
	}
}

func TestEndToEndFaults(t *testing.T) {
	_, stub, _ := harness(t)

	// Application error becomes a Server fault.
	_, err := stub.Invoke(context.Background(), "locate", P("in0", ""))
	var f *soap.Fault
	if !errors.As(err, &f) || f.Code != soap.FaultServer {
		t.Fatalf("want Server fault, got %v", err)
	}
	if !strings.Contains(f.String, "empty name") {
		t.Fatalf("fault string: %q", f.String)
	}

	// An explicit *soap.Fault passes through with its own code.
	_, err = stub.Invoke(context.Background(), "divide", P("in0", 1.0), P("in1", 0.0))
	if !errors.As(err, &f) || !f.IsClient() {
		t.Fatalf("want Client fault, got %v", err)
	}

	// Panics are contained as Server faults.
	_, err = stub.Invoke(context.Background(), "panics")
	if !errors.As(err, &f) || !strings.Contains(f.String, "kaboom") {
		t.Fatalf("panic fault: %v", err)
	}
}

func TestEndToEndOneWay(t *testing.T) {
	_, stub, net := harness(t)
	res, err := stub.Invoke(context.Background(), "fireAndForget", P("in0", "tick"))
	if err != nil {
		t.Fatal(err)
	}
	if res != nil {
		t.Fatalf("one-way produced a result: %+v", res)
	}
	if net.Calls() != 1 {
		t.Fatalf("calls = %d", net.Calls())
	}
}

func TestDispatchMalformedAndUnknown(t *testing.T) {
	e := New()
	if _, err := e.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	serve := func(body string) *soap.Envelope {
		resp, err := e.ServeRequest(context.Background(), "Echo", &transport.Request{Body: []byte(body)})
		if err != nil {
			t.Fatalf("transport error: %v", err)
		}
		env, err := soap.Parse(resp.Body)
		if err != nil {
			t.Fatalf("unparseable response: %v", err)
		}
		return env
	}

	env := serve("garbage")
	if !env.IsFault() || env.Fault().Code != soap.FaultClient {
		t.Fatalf("garbage: %+v", env.Fault())
	}

	// SOAP 1.2 is understood; an empty 1.2 body is a (1.2) Client fault.
	env = serve(`<env:Envelope xmlns:env="http://www.w3.org/2003/05/soap-envelope"><env:Body/></env:Envelope>`)
	if !env.IsFault() || !env.Fault().IsClient() {
		t.Fatalf("soap12 empty body: %+v", env.Fault())
	}
	if env.Version() != soap.SOAP12 {
		t.Fatalf("response version = %v, want 1.2", env.Version())
	}

	// A genuinely unknown envelope version is a VersionMismatch fault.
	env = serve(`<env:Envelope xmlns:env="urn:future-soap"><env:Body/></env:Envelope>`)
	if !env.IsFault() || env.Fault().Code != soap.FaultVersionMismatch {
		t.Fatalf("unknown version: %+v", env.Fault())
	}

	empty := soap.NewEnvelope()
	empty.AddBodyElement(xmlutil.NewElement(xmlutil.N("urn:x", "noSuchOp")))
	env = serve(string(empty.Marshal()))
	if !env.IsFault() || !strings.Contains(env.Fault().String, "noSuchOp") {
		t.Fatalf("unknown op: %+v", env.Fault())
	}

	// Unknown service.
	resp, err := e.ServeRequest(context.Background(), "Nope", &transport.Request{Body: empty.Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	env, _ = soap.Parse(resp.Body)
	if !env.IsFault() {
		t.Fatal("unknown service must fault")
	}

	// Empty body.
	noBody := soap.NewEnvelope()
	noBody.AddBodyElement(xmlutil.NewElement(xmlutil.N("urn:x", "z")))
	noBody2 := `<soapenv:Envelope xmlns:soapenv="` + soap.Namespace + `"><soapenv:Body/></soapenv:Envelope>`
	env = serve(noBody2)
	if !env.IsFault() {
		t.Fatal("empty body must fault")
	}
}

func TestMustUnderstand(t *testing.T) {
	e := New()
	if _, err := e.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	build := func() *soap.Envelope {
		env := soap.NewEnvelope()
		h := xmlutil.NewElement(xmlutil.N("urn:ext", "Security"))
		soap.SetMustUnderstand(h)
		env.AddHeader(h)
		wrapper := xmlutil.NewElement(xmlutil.N(DefaultNamespacePrefix+"Echo", "echoString"))
		wrapper.NewChild(xmlutil.N(DefaultNamespacePrefix+"Echo", "msg")).SetText("x")
		env.AddBodyElement(wrapper)
		return env
	}
	resp, err := e.ServeRequest(context.Background(), "Echo", &transport.Request{Body: build().Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	env, _ := soap.Parse(resp.Body)
	if !env.IsFault() || env.Fault().Code != soap.FaultMustUnderstand {
		t.Fatalf("want MustUnderstand fault, got %+v", env.Fault())
	}

	// After registering the extension namespace the call succeeds.
	e.Understand("urn:ext")
	resp, err = e.ServeRequest(context.Background(), "Echo", &transport.Request{Body: build().Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	env, _ = soap.Parse(resp.Body)
	if env.IsFault() {
		t.Fatalf("understood header still faulted: %+v", env.Fault())
	}
}

func TestHandlerChains(t *testing.T) {
	e, stub, _ := harness(t)
	var mu sync.Mutex
	var trace []string
	e.AddInHandler(ChainFunc{ChainName: "audit", Func: func(mc *MessageContext) error {
		mu.Lock()
		defer mu.Unlock()
		trace = append(trace, "in:"+mc.Operation)
		mc.Props["seen"] = true
		return nil
	}})
	e.AddInHandler(ChainFunc{ChainName: "second", Func: func(mc *MessageContext) error {
		mu.Lock()
		defer mu.Unlock()
		if mc.Props["seen"] != true {
			t.Error("props not shared along chain")
		}
		trace = append(trace, "in2:"+mc.Operation)
		return nil
	}})
	e.AddOutHandler(ChainFunc{ChainName: "stamp", Func: func(mc *MessageContext) error {
		mu.Lock()
		defer mu.Unlock()
		trace = append(trace, "out:"+mc.Operation)
		mc.Response.AddHeader(xmlutil.NewElement(xmlutil.N("urn:ext", "Stamp")).SetText("v1"))
		return nil
	}})

	res, err := stub.Invoke(context.Background(), "echoString", P("msg", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.String("return"); got != "x" {
		t.Fatalf("echo through chain = %q", got)
	}
	mu.Lock()
	want := []string{"in:echoString", "in2:echoString", "out:echoString"}
	if len(trace) != 3 || trace[0] != want[0] || trace[1] != want[1] || trace[2] != want[2] {
		t.Fatalf("trace = %v", trace)
	}
	mu.Unlock()
}

func TestHandlerChainAbort(t *testing.T) {
	e, stub, _ := harness(t)
	e.AddInHandler(ChainFunc{ChainName: "deny", Func: func(mc *MessageContext) error {
		return errors.New("denied by policy")
	}})
	_, err := stub.Invoke(context.Background(), "echoString", P("msg", "x"))
	var f *soap.Fault
	if !errors.As(err, &f) || !strings.Contains(f.String, "denied by policy") {
		t.Fatalf("chain abort: %v", err)
	}
}

func TestDeployValidation(t *testing.T) {
	e := New()
	bad := []ServiceDef{
		{Name: "has space", Operations: []OperationDef{{Name: "x", Func: func() {}}}},
		{Name: "NoOps"},
		{Name: "BadOpName", Operations: []OperationDef{{Name: "9bad", Func: func() {}}}},
		{Name: "NilFunc", Operations: []OperationDef{{Name: "x"}}},
		{Name: "NotFunc", Operations: []OperationDef{{Name: "x", Func: 42}}},
		{Name: "Variadic", Operations: []OperationDef{{Name: "x", Func: func(a ...string) {}}}},
		{Name: "OneWayResult", Operations: []OperationDef{{Name: "x", Func: func() string { return "" }, OneWay: true}}},
		{Name: "DupOp", Operations: []OperationDef{
			{Name: "x", Func: func() {}}, {Name: "x", Func: func() {}},
		}},
		{Name: "BadParam", Operations: []OperationDef{{Name: "x", Func: func(m map[string]int) {}}}},
		{Name: "DupParams", Operations: []OperationDef{{Name: "x", Func: func(a, b string) {}, ParamNames: []string{"p", "p"}}}},
	}
	for _, def := range bad {
		if _, err := e.Deploy(def); err == nil {
			t.Errorf("Deploy(%s) accepted invalid definition", def.Name)
		}
	}

	if _, err := e.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Deploy(echoDef()); err == nil {
		t.Error("duplicate deployment accepted")
	}
}

func TestUndeployAndListing(t *testing.T) {
	e := New()
	if _, err := e.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	if got := e.Services(); len(got) != 1 || got[0] != "Echo" {
		t.Fatalf("services = %v", got)
	}
	svc := e.Service("Echo")
	if svc == nil || svc.Name() != "Echo" {
		t.Fatal("Service lookup")
	}
	if svc.Namespace() != DefaultNamespacePrefix+"Echo" {
		t.Fatalf("namespace = %q", svc.Namespace())
	}
	ops := svc.Operations()
	if len(ops) != 6 || ops[0] != "echoString" {
		t.Fatalf("ops = %v", ops)
	}
	if !e.Undeploy("Echo") {
		t.Fatal("undeploy failed")
	}
	if e.Undeploy("Echo") {
		t.Fatal("double undeploy succeeded")
	}
	if len(e.Services()) != 0 || e.Service("Echo") != nil {
		t.Fatal("service lingered")
	}
}

// Counter is a stateful object exposed as a service (paper §III point 3).
type Counter struct {
	mu sync.Mutex
	n  int64
}

func (c *Counter) Increment(by int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n += by
	return c.n
}

func (c *Counter) Value() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func TestFromObjectStatefulService(t *testing.T) {
	counter := &Counter{}
	def, err := FromObject("Counter", counter)
	if err != nil {
		t.Fatal(err)
	}
	e := New()
	if _, err := e.Deploy(def); err != nil {
		t.Fatal(err)
	}
	svc := e.Service("Counter")
	net := transport.NewInMemNetwork()
	net.Register("mem://host/Counter", e.Handler("Counter"))
	defs, err := svc.WSDL(wsdl.TransportHTTP, "mem://host/Counter")
	if err != nil {
		t.Fatal(err)
	}
	reg := transport.NewRegistry()
	reg.Register(net.Transport())
	stub := NewStub(defs, reg)

	for i := int64(1); i <= 3; i++ {
		res, err := stub.Invoke(context.Background(), "Increment", P("in0", int64(2)))
		if err != nil {
			t.Fatal(err)
		}
		var v int64
		if err := res.Decode("return", &v); err != nil || v != 2*i {
			t.Fatalf("increment %d = %d, %v", i, v, err)
		}
	}
	// State lives in the object, visible outside the service too.
	if counter.Value() != 6 {
		t.Fatalf("object state = %d", counter.Value())
	}
}

func TestFromObjectErrors(t *testing.T) {
	if _, err := FromObject("X", 42); err == nil {
		t.Fatal("non-struct accepted")
	}
	type empty struct{}
	if _, err := FromObject("X", &empty{}); err == nil {
		t.Fatal("method-less object accepted")
	}
}

func TestWSDLGenerationFromService(t *testing.T) {
	e := New()
	svc, err := e.Deploy(echoDef())
	if err != nil {
		t.Fatal(err)
	}
	defs, err := svc.WSDL(wsdl.TransportHTTP, "http://h/Echo")
	if err != nil {
		t.Fatal(err)
	}
	if err := defs.Validate(); err != nil {
		t.Fatal(err)
	}
	det, err := defs.Detail("echoString")
	if err != nil {
		t.Fatal(err)
	}
	if det.SOAPAction != svc.SOAPAction("echoString") {
		t.Fatalf("action = %q", det.SOAPAction)
	}
	// One-way operation must have no output message.
	det, err = defs.Detail("fireAndForget")
	if err != nil {
		t.Fatal(err)
	}
	if !det.Operation.OneWay() {
		t.Fatal("one-way lost in WSDL")
	}
	// Documentation must survive into the WSDL text.
	raw, _ := defs.Marshal()
	if !strings.Contains(string(raw), "echoes its input") {
		t.Fatal("doc lost")
	}
}

func TestStubErrors(t *testing.T) {
	_, stub, _ := harness(t)
	if _, err := stub.Invoke(context.Background(), "noSuchOp"); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := stub.Invoke(context.Background(), "echoString", Param{Name: "", Value: "x"}); err == nil {
		t.Fatal("unnamed param accepted")
	}
	if _, err := stub.Invoke(context.Background(), "echoString", P("msg", map[int]int{})); err == nil {
		t.Fatal("unencodable param accepted")
	}
	res := &Result{}
	if err := res.Decode("x", nil); err == nil {
		t.Fatal("nil out accepted")
	}
	var s string
	if err := (&Result{}).Decode("x", s); err == nil {
		t.Fatal("non-pointer out accepted")
	}
	var nilRes *Result
	if err := nilRes.Decode("x", &s); err == nil {
		t.Fatal("nil result accepted")
	}
}

func TestStubEndpointOverride(t *testing.T) {
	e := New()
	if _, err := e.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	net := transport.NewInMemNetwork()
	net.Register("mem://elsewhere/Echo", e.Handler("Echo"))
	svc := e.Service("Echo")
	// WSDL advertises an address nothing listens on.
	defs, err := svc.WSDL(wsdl.TransportHTTP, "mem://nowhere/Echo")
	if err != nil {
		t.Fatal(err)
	}
	reg := transport.NewRegistry()
	reg.Register(net.Transport())
	stub := NewStub(defs, reg)
	if _, err := stub.Invoke(context.Background(), "echoString", P("msg", "x")); err == nil {
		t.Fatal("advertised endpoint should be dead")
	}
	stub.EndpointOverride = "mem://elsewhere/Echo"
	if _, err := stub.Invoke(context.Background(), "echoString", P("msg", "x")); err != nil {
		t.Fatalf("override not honoured: %v", err)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	_, stub, _ := harness(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := fmt.Sprintf("m%d", i)
			res, err := stub.Invoke(context.Background(), "echoString", P("msg", msg))
			if err != nil {
				errs <- err
				return
			}
			got, err := res.String("return")
			if err != nil || got != msg {
				errs <- fmt.Errorf("got %q want %q (%v)", got, msg, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestAnalyzeOperationNaming(t *testing.T) {
	op, err := analyzeOperation(OperationDef{
		Name: "op",
		Func: func(a string, b int64) (string, int64) { return a, b },
	})
	if err != nil {
		t.Fatal(err)
	}
	if op.inNames[0] != "in0" || op.inNames[1] != "in1" {
		t.Fatalf("in names: %v", op.inNames)
	}
	if op.outNames[0] != "out0" || op.outNames[1] != "out1" {
		t.Fatalf("out names: %v", op.outNames)
	}
	op, err = analyzeOperation(OperationDef{
		Name: "op",
		Func: func(a string) string { return a },
	})
	if err != nil {
		t.Fatal(err)
	}
	if op.outNames[0] != "return" {
		t.Fatalf("single out name: %v", op.outNames)
	}
	if op.hasCtx || !ncName.MatchString(op.name) {
		t.Fatal("analysis flags")
	}
}

// Gauge is a second stateful object for multi-object services.
type Gauge struct {
	mu sync.Mutex
	v  float64
}

func (g *Gauge) Set(v float64) float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
	return g.v
}

func (g *Gauge) Read() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.v
}

func TestFromObjectsMultipleStatefulObjects(t *testing.T) {
	counter := &Counter{}
	gauge := &Gauge{}
	def, err := FromObjects("Instruments", counter, gauge)
	if err != nil {
		t.Fatal(err)
	}
	if len(def.Operations) != 4 {
		t.Fatalf("ops = %d", len(def.Operations))
	}
	e := New()
	if _, err := e.Deploy(def); err != nil {
		t.Fatal(err)
	}
	net := transport.NewInMemNetwork()
	net.Register("mem://h/Instruments", e.Handler("Instruments"))
	defs, err := e.Service("Instruments").WSDL(wsdl.TransportHTTP, "mem://h/Instruments")
	if err != nil {
		t.Fatal(err)
	}
	reg := transport.NewRegistry()
	reg.Register(net.Transport())
	stub := NewStub(defs, reg)
	ctx := context.Background()

	// Operations dispatch to their respective objects' state.
	if _, err := stub.Invoke(ctx, "Increment", P("in0", int64(3))); err != nil {
		t.Fatal(err)
	}
	if _, err := stub.Invoke(ctx, "Set", P("in0", 2.5)); err != nil {
		t.Fatal(err)
	}
	if counter.Value() != 3 || gauge.Read() != 2.5 {
		t.Fatalf("state routed wrong: counter=%d gauge=%v", counter.Value(), gauge.Read())
	}
	res, err := stub.Invoke(ctx, "Read")
	if err != nil {
		t.Fatal(err)
	}
	var v float64
	if err := res.Decode("return", &v); err != nil || v != 2.5 {
		t.Fatalf("Read = %v, %v", v, err)
	}
}

func TestFromObjectsCollision(t *testing.T) {
	if _, err := FromObjects("X", &Counter{}, &Counter{}); err == nil {
		t.Fatal("method collision accepted")
	}
	if _, err := FromObjects("X"); err == nil {
		t.Fatal("empty object list accepted")
	}
}

func TestSOAP12RequestGetsSOAP12Response(t *testing.T) {
	e := New()
	if _, err := e.Deploy(echoDef()); err != nil {
		t.Fatal(err)
	}
	ns := DefaultNamespacePrefix + "Echo"
	env := soap.NewEnvelopeV(soap.SOAP12)
	wrapper := xmlutil.NewElement(xmlutil.N(ns, "echoString"))
	wrapper.NewChild(xmlutil.N(ns, "msg")).SetText("twelve")
	env.AddBodyElement(wrapper)

	resp, err := e.ServeRequest(context.Background(), "Echo", &transport.Request{Body: env.Marshal()})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp.ContentType, "application/soap+xml") {
		t.Fatalf("content type = %q", resp.ContentType)
	}
	back, err := soap.Parse(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version() != soap.SOAP12 {
		t.Fatalf("response version = %v", back.Version())
	}
	out := back.FirstBodyElement()
	if out == nil || out.Name.Local != "echoStringResponse" {
		t.Fatalf("response body: %s", resp.Body)
	}
	if got := out.ChildLocal("return").Text(); got != "twelve" {
		t.Fatalf("return = %q", got)
	}
}

func TestEngineStats(t *testing.T) {
	e, stub, _ := harness(t)
	ctx := context.Background()
	if _, err := stub.Invoke(ctx, "echoString", P("msg", "x")); err != nil {
		t.Fatal(err)
	}
	if _, err := stub.Invoke(ctx, "fireAndForget", P("in0", "e")); err != nil {
		t.Fatal(err)
	}
	if _, err := stub.Invoke(ctx, "panics"); err == nil {
		t.Fatal("panic op should fault")
	}
	s := e.Stats()
	if s.Requests != 3 || s.OneWay != 1 || s.Faults != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// Property: arbitrary sanitized strings survive a full request/response
// dispatch through real envelope bytes.
func TestQuickDispatchRoundTrip(t *testing.T) {
	_, stub, _ := harness(t)
	ctx := context.Background()
	// Characters XML 1.0 cannot represent (most control characters,
	// surrogates) are outside the domain: encoding/xml drops them, as
	// every SOAP stack must.
	xmlSafe := func(s string) string {
		var b strings.Builder
		for _, r := range strings.ToValidUTF8(s, "") {
			switch {
			case r == '\t' || r == '\n':
				b.WriteRune(r)
			case r < 0x20 || r == '\r': // \r is normalized to \n by parsers
				continue
			case r >= 0xD800 && r <= 0xDFFF:
				continue
			case r == 0xFFFE || r == 0xFFFF:
				continue
			default:
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	f := func(msg string) bool {
		msg = xmlSafe(msg)
		res, err := stub.Invoke(ctx, "echoString", P("msg", msg))
		if err != nil {
			return false
		}
		got, err := res.String("return")
		return err == nil && got == msg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
