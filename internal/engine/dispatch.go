package engine

import (
	"context"
	"fmt"
	"reflect"
	"time"

	"wspeer/internal/exchange"
	"wspeer/internal/pipeline"
	"wspeer/internal/soap"
	"wspeer/internal/telemetry"
	"wspeer/internal/transport"
	"wspeer/internal/wsaddr"
	"wspeer/internal/xmlutil"
)

// Spine counters for dispatch activity, mirroring the engine's own Stats
// so both legacy Stats() and a telemetry Snapshot tell the same story.
var (
	mEngineRequests = telemetry.Default().Meter.Counter("engine.requests")
	mEngineFaults   = telemetry.Default().Meter.Counter("engine.faults")
	mEngineOneWay   = telemetry.Default().Meter.Counter("engine.oneway")

	// Deadline-propagation instruments: dispatches that arrived with a
	// caller deadline attached, and those dropped because that deadline
	// had already passed when the request reached the engine.
	mEngineDeadlineCarried = telemetry.Default().Meter.Counter("engine.deadline.carried")
	mEngineDeadlineDropped = telemetry.Default().Meter.Counter("engine.deadline.dropped")
)

func nameInNS(ns, local string) xmlutil.Name { return xmlutil.N(ns, local) }

// MessageContext flows through the handler chains around a dispatch, the
// way an Axis MessageContext flows through its handler chain. Handlers may
// inspect and modify the envelopes and stash cross-handler state in Props.
type MessageContext struct {
	Ctx       context.Context
	Service   string
	Operation string
	Request   *soap.Envelope
	Response  *soap.Envelope // nil on the in chain
	Props     map[string]interface{}
}

// ChainHandler is one stage of the in or out pipeline. Returning an error
// aborts processing; if the error is a *soap.Fault it is returned to the
// caller verbatim.
type ChainHandler interface {
	Name() string
	Handle(mc *MessageContext) error
}

// ChainFunc adapts a function to ChainHandler.
type ChainFunc struct {
	ChainName string
	Func      func(mc *MessageContext) error
}

// Name implements ChainHandler.
func (c ChainFunc) Name() string { return c.ChainName }

// Handle implements ChainHandler.
func (c ChainFunc) Handle(mc *MessageContext) error { return c.Func(mc) }

// AddInHandler appends a handler to the inbound chain (runs after parsing,
// before dispatch). The handler executes as a pipeline interceptor ahead
// of the operation; the ChainHandler API is a thin adapter over the
// unified call pipeline (see inHandlerInterceptor).
func (e *Engine) AddInHandler(h ChainHandler) {
	e.chainMu.Lock()
	defer e.chainMu.Unlock()
	e.inChain = append(e.inChain, h)
	e.recompose()
}

// AddOutHandler appends a handler to the outbound chain (runs after the
// operation, before serialization), adapted onto the pipeline like
// AddInHandler.
func (e *Engine) AddOutHandler(h ChainHandler) {
	e.chainMu.Lock()
	defer e.chainMu.Unlock()
	e.outChain = append(e.outChain, h)
	e.recompose()
}

func (e *Engine) chains() (in, out []ChainHandler) {
	e.chainMu.RLock()
	defer e.chainMu.RUnlock()
	return append([]ChainHandler(nil), e.inChain...), append([]ChainHandler(nil), e.outChain...)
}

// recompose rebuilds the adapted interceptor chain. Caller holds chainMu.
// In-handlers wrap ahead of the operation terminal; out-handlers run while
// the stack unwinds (innermost first), so they are composed in reverse to
// preserve registration order.
func (e *Engine) recompose() {
	ics := make([]pipeline.Interceptor, 0, len(e.inChain)+len(e.outChain))
	for _, h := range e.inChain {
		ics = append(ics, inHandlerInterceptor(h))
	}
	for i := len(e.outChain) - 1; i >= 0; i-- {
		ics = append(ics, outHandlerInterceptor(e.outChain[i]))
	}
	e.composed = ics
}

// composedChain snapshots the pre-adapted handler interceptors.
func (e *Engine) composedChain() []pipeline.Interceptor {
	e.chainMu.RLock()
	defer e.chainMu.RUnlock()
	return e.composed
}

// MetaMessageContext is the pipeline Meta key under which dispatch
// publishes its MessageContext, giving wire-level interceptors access to
// the parsed envelopes after the terminal has run.
const MetaMessageContext = "engine.messageContext"

// MessageContextOf extracts the dispatch MessageContext from a pipeline
// call (nil before dispatch has reached the service).
func MessageContextOf(c *pipeline.Call) *MessageContext {
	mc, _ := c.GetMeta(MetaMessageContext).(*MessageContext)
	return mc
}

// inHandlerInterceptor adapts an inbound ChainHandler onto the pipeline:
// the handler runs before the next stage, and its error aborts processing
// exactly as the pre-pipeline chain runner did.
func inHandlerInterceptor(h ChainHandler) pipeline.Interceptor {
	return func(next pipeline.CallFunc) pipeline.CallFunc {
		return func(c *pipeline.Call) error {
			if err := h.Handle(MessageContextOf(c)); err != nil {
				return soap.ServerFault(fmt.Errorf("in handler %q: %w", h.Name(), err))
			}
			return next(c)
		}
	}
}

// outHandlerInterceptor adapts an outbound ChainHandler onto the
// pipeline: the handler runs after the operation has produced a response
// envelope (never for one-way operations or faults).
func outHandlerInterceptor(h ChainHandler) pipeline.Interceptor {
	return func(next pipeline.CallFunc) pipeline.CallFunc {
		return func(c *pipeline.Call) error {
			if err := next(c); err != nil {
				return err
			}
			mc := MessageContextOf(c)
			if mc == nil || mc.Response == nil {
				return nil // one-way: nothing for the out chain to see
			}
			if err := h.Handle(mc); err != nil {
				return soap.ServerFault(fmt.Errorf("out handler %q: %w", h.Name(), err))
			}
			return nil
		}
	}
}

// Handler returns the transport-facing handler for one deployed service.
func (e *Engine) Handler(serviceName string) transport.Handler {
	return transport.HandlerFunc(func(ctx context.Context, req *transport.Request) (*transport.Response, error) {
		return e.ServeRequest(ctx, serviceName, req)
	})
}

// ServeRequest processes one SOAP request for the named service through
// the server pipeline: interceptors installed with Use wrap the parse /
// handler-chain / dispatch terminal. SOAP-level problems are returned as
// fault envelopes with a nil error; only transport-level breakage — or an
// interceptor refusing the call — yields a Go error. One-way requests
// produce an empty response.
func (e *Engine) ServeRequest(ctx context.Context, serviceName string, req *transport.Request) (*transport.Response, error) {
	// A caller deadline — propagated across the wire by the hosts, or
	// native on the in-memory substrate — that has already passed means
	// the caller is gone: drop the request before admission and dispatch
	// spend anything on an answer nobody is waiting for.
	if dl, ok := ctx.Deadline(); ok {
		mEngineDeadlineCarried.Inc()
		if !dl.After(time.Now()) {
			mEngineDeadlineDropped.Inc()
			return nil, fmt.Errorf("engine: dropped request for %q, caller deadline already expired: %w",
				serviceName, context.DeadlineExceeded)
		}
	}
	if a := e.admission.Load(); a != nil {
		// Admission gates the whole dispatch — interceptors included — so
		// a shed request costs nothing but the refusal. The ticket feeds
		// queue-wait and service-latency samples back to the controller,
		// which the adaptive limiter steers by.
		tk, err := a.Admit(ctx)
		if err != nil {
			return nil, err
		}
		defer tk.Done()
	}
	span, ctx := telemetry.Default().Tracer.StartSpan(ctx, "server.dispatch")
	span.SetService(serviceName)
	span.SetDir(telemetry.DirServer)
	c := &pipeline.Call{
		Ctx:     ctx,
		Dir:     pipeline.ServerDispatch,
		Service: serviceName,
		Request: req,
		Span:    span,
	}
	start := time.Now()
	err := e.pipe.Run(c, e.serveCall)
	elapsed := time.Since(start)
	faulted := c.Response != nil && c.Response.Faulted
	telemetry.Default().Calls.Record(serviceName, telemetry.DirServer, elapsed, err != nil || faulted)
	rec := telemetry.CallRecord{
		Time:    start,
		Service: serviceName,
		Op:      c.Op,
		Dir:     telemetry.DirServer,
		Latency: elapsed,
	}
	if faulted && err == nil {
		// A fault envelope is a failed call even though the pipeline
		// returned cleanly; classify it ourselves so the recorder keeps it.
		rec.ErrClass = telemetry.ClassFault
	}
	if p, ok := c.GetMeta(exchange.MetaPattern).(exchange.Pattern); ok {
		rec.Pattern = p.String()
	}
	if span != nil {
		sc := span.Context()
		rec.TraceID, rec.SpanID = sc.TraceID, sc.SpanID
	}
	telemetry.Default().Flight.Record(rec, err)
	if span != nil {
		span.SetOp(c.Op) // resolved mid-terminal, so read it after the run
		span.SetError(err)
		if err == nil && c.Response != nil && c.Response.Faulted {
			span.Annotate("dispatch: answered with fault envelope")
		}
		span.End()
	}
	if err != nil {
		return nil, err
	}
	return c.Response, nil
}

// serveCall is the server pipeline's terminal: parse, run the handler
// chains and the operation, encode. It fills c.Response (faults included)
// and reserves the error return for the pipeline above it.
//
// Requests carrying WS-Addressing headers get exchange-pattern treatment:
// a non-anonymous ReplyTo (FaultTo for faults) whose scheme has a
// registered ReplySender receives the response as a separate outbound
// message — the back channel carries only the transport-level ack — and
// in-band replies are stamped with RelatesTo so the caller can correlate.
// Requests without headers take exactly the pre-exchange path.
func (e *Engine) serveCall(c *pipeline.Call) error {
	e.nRequests.Add(1)
	mEngineRequests.Inc()
	env, fault := e.parseAndCheck(c.Request)
	version := soap.SOAP11
	if env != nil {
		version = env.Version() // answer in the caller's SOAP version
	}
	// Parse addressing headers only when header blocks exist at all, so
	// the plain synchronous path pays nothing for the exchange layer.
	var hdr *wsaddr.MessageHeaders
	if fault == nil && len(env.Headers()) > 0 {
		var err error
		if hdr, err = wsaddr.FromEnvelope(env); err != nil {
			hdr = nil
			fault = soap.NewFault(soap.FaultClient, "invalid addressing headers: %s", err)
		}
	}
	var respEnv *soap.Envelope
	var oneWay bool
	if fault == nil {
		respEnv, fault = e.dispatch(c, env)
		oneWay = fault == nil && respEnv == nil
	}
	if oneWay {
		e.nOneWay.Add(1)
		mEngineOneWay.Inc()
		c.SetMeta(exchange.MetaPattern, exchange.OneWay)
		c.Response = &transport.Response{}
		return nil
	}
	if fault != nil {
		e.nFaults.Add(1)
		mEngineFaults.Inc()
		// c.Ctx carries the dispatch span's identity, so this line joins
		// the same trace as the span and the flight record.
		telemetry.Default().Log.Warn(c.Ctx, "engine: dispatch answered with fault",
			"service", c.Service, "op", c.Op, "code", fault.Code.Local, "fault", fault.String)
		respEnv = soap.NewEnvelopeV(version).SetFault(fault)
	}
	if target := replyTarget(hdr, respEnv.IsFault()); target != nil && target.Address != wsaddr.Anonymous {
		if sender := e.replySender(transport.SchemeOf(target.Address)); sender != nil {
			if e.sendDecoupledReply(c.Ctx, hdr, target, respEnv, sender) == nil {
				// Reply delivered out-of-band: the request connection gets
				// only the transport-level ack (hosts answer 202 Accepted).
				c.SetMeta(exchange.MetaPattern, exchange.Callback)
				c.Response = &transport.Response{}
				return nil
			}
			// Delivery failed (counted in exchange.reply.failed): fall back
			// to the back channel so the response is not lost outright.
		}
	}
	if hdr != nil && hdr.MessageID != "" && respEnv.Header(wsaddr.RelatesToName) == nil {
		respEnv.AddHeader(xmlutil.NewElement(wsaddr.RelatesToName).SetText(hdr.MessageID))
	}
	c.Response = &transport.Response{
		ContentType: version.ContentType(),
		Body:        respEnv.Marshal(),
		Faulted:     respEnv.IsFault(),
	}
	return nil
}

func (e *Engine) parseAndCheck(req *transport.Request) (*soap.Envelope, *soap.Fault) {
	env, err := soap.Parse(req.Body)
	if err != nil {
		if _, ok := err.(*soap.VersionMismatchError); ok {
			return nil, soap.NewFault(soap.FaultVersionMismatch, "%s", err)
		}
		return nil, soap.NewFault(soap.FaultClient, "malformed envelope: %s", err)
	}
	// mustUnderstand processing: WS-Addressing headers are understood
	// natively; anything else must have been registered via Understand.
	for _, h := range env.Headers() {
		if !soap.MustUnderstand(h) {
			continue
		}
		if h.Name.Space == wsaddr.Namespace {
			continue
		}
		if !e.understands(h.Name.Space) {
			return nil, soap.NewFault(soap.FaultMustUnderstand,
				"header %s not understood", h.Name)
		}
	}
	return env, nil
}

// dispatch runs the handler chains and the operation as an envelope-level
// pipeline over the same Call carrier: in-handlers wrap ahead of the
// operation terminal, out-handlers behind it, both in registration order.
// A nil, nil return means the operation was one-way and produced no
// response.
func (e *Engine) dispatch(c *pipeline.Call, env *soap.Envelope) (*soap.Envelope, *soap.Fault) {
	serviceName := c.Service
	svc := e.Service(serviceName)
	if svc == nil {
		return nil, soap.NewFault(soap.FaultClient, "no such service %q", serviceName)
	}
	body := env.FirstBodyElement()
	if body == nil {
		return nil, soap.NewFault(soap.FaultClient, "request has an empty Body")
	}
	op, ok := svc.ops[body.Name.Local]
	if !ok {
		return nil, soap.NewFault(soap.FaultClient, "service %q has no operation %q", serviceName, body.Name.Local)
	}
	c.Op = op.name

	mc := &MessageContext{
		Ctx:       c.Ctx,
		Service:   serviceName,
		Operation: op.name,
		Request:   env,
		Props:     make(map[string]interface{}),
	}
	c.SetMeta(MetaMessageContext, mc)

	ics := e.composedChain()

	terminal := func(pc *pipeline.Call) error {
		results, fault := invoke(mc.Ctx, svc, op, body)
		if fault != nil {
			return fault
		}
		if op.oneWay {
			return nil
		}
		respEnv := soap.NewEnvelopeV(env.Version())
		wrapper := xmlutil.NewElement(xmlutil.N(svc.namespace, op.respName))
		for i, rv := range results {
			if err := op.outEncs[i](wrapper, svc.namespace, op.outNames[i], rv); err != nil {
				return soap.ServerFault(fmt.Errorf("encoding result %q: %w", op.outNames[i], err))
			}
		}
		respEnv.AddBodyElement(wrapper)
		mc.Response = respEnv
		return nil
	}

	if err := pipeline.Compose(terminal, ics...)(c); err != nil {
		return nil, soap.ServerFault(err)
	}
	return mc.Response, nil
}

// invoke decodes parameters, calls the operation function (recovering
// panics into Server faults) and returns the non-error results.
func invoke(ctx context.Context, svc *Service, op *opInfo, wrapper *xmlutil.Element) (results []reflect.Value, fault *soap.Fault) {
	args := make([]reflect.Value, 0, len(op.inTypes)+1)
	if op.hasCtx {
		args = append(args, reflect.ValueOf(ctx))
	}
	for i := range op.inTypes {
		v, err := op.inDecs[i](wrapper, svc.namespace, op.inNames[i])
		if err != nil {
			return nil, soap.NewFault(soap.FaultClient, "parameter %q: %s", op.inNames[i], err)
		}
		args = append(args, v)
	}

	defer func() {
		if r := recover(); r != nil {
			results = nil
			fault = soap.NewFault(soap.FaultServer, "operation %s panicked: %v", op.name, r)
		}
	}()
	rets := op.fn.Call(args)

	if op.hasErr {
		if errv := rets[len(rets)-1]; !errv.IsNil() {
			return nil, soap.ServerFault(errv.Interface().(error))
		}
		rets = rets[:len(rets)-1]
	}
	return rets, nil
}
