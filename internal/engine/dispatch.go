package engine

import (
	"context"
	"fmt"
	"reflect"

	"wspeer/internal/soap"
	"wspeer/internal/transport"
	"wspeer/internal/wsaddr"
	"wspeer/internal/xmlutil"
	"wspeer/internal/xsd"
)

func nameInNS(ns, local string) xmlutil.Name { return xmlutil.N(ns, local) }

// MessageContext flows through the handler chains around a dispatch, the
// way an Axis MessageContext flows through its handler chain. Handlers may
// inspect and modify the envelopes and stash cross-handler state in Props.
type MessageContext struct {
	Ctx       context.Context
	Service   string
	Operation string
	Request   *soap.Envelope
	Response  *soap.Envelope // nil on the in chain
	Props     map[string]interface{}
}

// ChainHandler is one stage of the in or out pipeline. Returning an error
// aborts processing; if the error is a *soap.Fault it is returned to the
// caller verbatim.
type ChainHandler interface {
	Name() string
	Handle(mc *MessageContext) error
}

// ChainFunc adapts a function to ChainHandler.
type ChainFunc struct {
	ChainName string
	Func      func(mc *MessageContext) error
}

// Name implements ChainHandler.
func (c ChainFunc) Name() string { return c.ChainName }

// Handle implements ChainHandler.
func (c ChainFunc) Handle(mc *MessageContext) error { return c.Func(mc) }

// AddInHandler appends a handler to the inbound chain (runs after parsing,
// before dispatch).
func (e *Engine) AddInHandler(h ChainHandler) {
	e.chainMu.Lock()
	defer e.chainMu.Unlock()
	e.inChain = append(e.inChain, h)
}

// AddOutHandler appends a handler to the outbound chain (runs after the
// operation, before serialization).
func (e *Engine) AddOutHandler(h ChainHandler) {
	e.chainMu.Lock()
	defer e.chainMu.Unlock()
	e.outChain = append(e.outChain, h)
}

func (e *Engine) chains() (in, out []ChainHandler) {
	e.chainMu.RLock()
	defer e.chainMu.RUnlock()
	return append([]ChainHandler(nil), e.inChain...), append([]ChainHandler(nil), e.outChain...)
}

// Handler returns the transport-facing handler for one deployed service.
func (e *Engine) Handler(serviceName string) transport.Handler {
	return transport.HandlerFunc(func(ctx context.Context, req *transport.Request) (*transport.Response, error) {
		return e.ServeRequest(ctx, serviceName, req)
	})
}

// ServeRequest processes one SOAP request for the named service. SOAP-level
// problems are returned as fault envelopes with a nil error; only
// transport-level breakage yields a Go error. One-way requests produce an
// empty response.
func (e *Engine) ServeRequest(ctx context.Context, serviceName string, req *transport.Request) (*transport.Response, error) {
	e.nRequests.Add(1)
	env, fault := e.parseAndCheck(req)
	version := soap.SOAP11
	if env != nil {
		version = env.Version() // answer in the caller's SOAP version
	}
	var respEnv *soap.Envelope
	var oneWay bool
	if fault == nil {
		respEnv, fault = e.dispatch(ctx, serviceName, env)
		oneWay = fault == nil && respEnv == nil
	}
	if oneWay {
		e.nOneWay.Add(1)
		return &transport.Response{}, nil
	}
	if fault != nil {
		e.nFaults.Add(1)
		respEnv = soap.NewEnvelopeV(version).SetFault(fault)
	}
	return &transport.Response{
		ContentType: version.ContentType(),
		Body:        respEnv.Marshal(),
		Faulted:     respEnv.IsFault(),
	}, nil
}

func (e *Engine) parseAndCheck(req *transport.Request) (*soap.Envelope, *soap.Fault) {
	env, err := soap.Parse(req.Body)
	if err != nil {
		if _, ok := err.(*soap.VersionMismatchError); ok {
			return nil, soap.NewFault(soap.FaultVersionMismatch, "%s", err)
		}
		return nil, soap.NewFault(soap.FaultClient, "malformed envelope: %s", err)
	}
	// mustUnderstand processing: WS-Addressing headers are understood
	// natively; anything else must have been registered via Understand.
	for _, h := range env.Headers() {
		if !soap.MustUnderstand(h) {
			continue
		}
		if h.Name.Space == wsaddr.Namespace {
			continue
		}
		if !e.understands(h.Name.Space) {
			return nil, soap.NewFault(soap.FaultMustUnderstand,
				"header %s not understood", h.Name)
		}
	}
	return env, nil
}

// dispatch runs the chains and the operation. A nil, nil return means the
// operation was one-way and produced no response.
func (e *Engine) dispatch(ctx context.Context, serviceName string, env *soap.Envelope) (*soap.Envelope, *soap.Fault) {
	svc := e.Service(serviceName)
	if svc == nil {
		return nil, soap.NewFault(soap.FaultClient, "no such service %q", serviceName)
	}
	body := env.FirstBodyElement()
	if body == nil {
		return nil, soap.NewFault(soap.FaultClient, "request has an empty Body")
	}
	op, ok := svc.ops[body.Name.Local]
	if !ok {
		return nil, soap.NewFault(soap.FaultClient, "service %q has no operation %q", serviceName, body.Name.Local)
	}

	mc := &MessageContext{
		Ctx:       ctx,
		Service:   serviceName,
		Operation: op.name,
		Request:   env,
		Props:     make(map[string]interface{}),
	}
	in, out := e.chains()
	for _, h := range in {
		if err := h.Handle(mc); err != nil {
			return nil, soap.ServerFault(fmt.Errorf("in handler %q: %w", h.Name(), err))
		}
	}

	results, fault := invoke(mc.Ctx, svc, op, body)
	if fault != nil {
		return nil, fault
	}
	if op.oneWay {
		return nil, nil
	}

	respEnv := soap.NewEnvelopeV(env.Version())
	wrapper := xmlutil.NewElement(xmlutil.N(svc.namespace, op.name+"Response"))
	for i, rv := range results {
		if err := xsd.AppendValue(wrapper, svc.namespace, op.outNames[i], rv); err != nil {
			return nil, soap.ServerFault(fmt.Errorf("encoding result %q: %w", op.outNames[i], err))
		}
	}
	respEnv.AddBodyElement(wrapper)

	mc.Response = respEnv
	for _, h := range out {
		if err := h.Handle(mc); err != nil {
			return nil, soap.ServerFault(fmt.Errorf("out handler %q: %w", h.Name(), err))
		}
	}
	return mc.Response, nil
}

// invoke decodes parameters, calls the operation function (recovering
// panics into Server faults) and returns the non-error results.
func invoke(ctx context.Context, svc *Service, op *opInfo, wrapper *xmlutil.Element) (results []reflect.Value, fault *soap.Fault) {
	args := make([]reflect.Value, 0, len(op.inTypes)+1)
	if op.hasCtx {
		args = append(args, reflect.ValueOf(ctx))
	}
	for i, t := range op.inTypes {
		v, err := xsd.ExtractValue(wrapper, svc.namespace, op.inNames[i], t)
		if err != nil {
			return nil, soap.NewFault(soap.FaultClient, "parameter %q: %s", op.inNames[i], err)
		}
		args = append(args, v)
	}

	defer func() {
		if r := recover(); r != nil {
			results = nil
			fault = soap.NewFault(soap.FaultServer, "operation %s panicked: %v", op.name, r)
		}
	}()
	rets := op.fn.Call(args)

	if op.hasErr {
		if errv := rets[len(rets)-1]; !errv.IsNil() {
			return nil, soap.ServerFault(errv.Interface().(error))
		}
		rets = rets[:len(rets)-1]
	}
	return rets, nil
}
