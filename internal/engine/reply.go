package engine

import (
	"context"
	"fmt"

	"wspeer/internal/exchange"
	"wspeer/internal/soap"
	"wspeer/internal/telemetry"
	"wspeer/internal/wsaddr"
)

// Decoupled-reply instruments: replies the engine delivered as separate
// outbound messages (honoring a non-anonymous ReplyTo/FaultTo) and
// deliveries that failed and fell back to the transport back channel.
var (
	mExchangeReplyOut    = telemetry.Default().Meter.Counter("exchange.reply.out")
	mExchangeReplyFailed = telemetry.Default().Meter.Counter("exchange.reply.failed")
)

// ReplySender delivers one reply message as a separate outbound message to
// a non-anonymous reply endpoint. Bindings register one per URI scheme
// they can address: the HTTP binding posts over its transport registry,
// the P2PS binding resolves the EPR's pipe advertisement and writes the
// reply down a fresh pipe, the in-memory binding hands the message to the
// registered handler. The EPR is passed alongside the flattened message
// because some bindings (P2PS) route by its reference properties, not by
// the address URI alone.
type ReplySender interface {
	SendReply(ctx context.Context, to *wsaddr.EndpointReference, msg *exchange.Message) error
}

// ReplySenderFunc adapts a function to ReplySender.
type ReplySenderFunc func(ctx context.Context, to *wsaddr.EndpointReference, msg *exchange.Message) error

// SendReply calls f.
func (f ReplySenderFunc) SendReply(ctx context.Context, to *wsaddr.EndpointReference, msg *exchange.Message) error {
	return f(ctx, to, msg)
}

// RegisterReplySender makes the engine able to deliver decoupled replies
// to endpoints of the given URI scheme. Registering for a scheme replaces
// any previous sender.
func (e *Engine) RegisterReplySender(scheme string, s ReplySender) {
	e.replyMu.Lock()
	defer e.replyMu.Unlock()
	if e.replySenders == nil {
		e.replySenders = make(map[string]ReplySender)
	}
	e.replySenders[scheme] = s
}

// UnregisterReplySender removes the sender for a scheme.
func (e *Engine) UnregisterReplySender(scheme string) {
	e.replyMu.Lock()
	defer e.replyMu.Unlock()
	delete(e.replySenders, scheme)
}

// replySender returns the sender for a scheme, or nil.
func (e *Engine) replySender(scheme string) ReplySender {
	e.replyMu.RLock()
	defer e.replyMu.RUnlock()
	return e.replySenders[scheme]
}

// replyTarget picks where a reply should be delivered per WS-Addressing:
// faults prefer FaultTo when the request carried one, everything else
// follows ReplyTo.
func replyTarget(h *wsaddr.MessageHeaders, fault bool) *wsaddr.EndpointReference {
	if h == nil {
		return nil
	}
	if fault && h.FaultTo != nil {
		return h.FaultTo
	}
	return h.ReplyTo
}

// sendDecoupledReply stamps the WS-Addressing reply headers (RelatesTo =
// request MessageID, To = the reply endpoint) onto respEnv and hands it to
// the sender as a separate outbound message. On failure the caller falls
// back to the transport back channel.
func (e *Engine) sendDecoupledReply(ctx context.Context, req *wsaddr.MessageHeaders, target *wsaddr.EndpointReference, respEnv *soap.Envelope, sender ReplySender) error {
	fault := respEnv.IsFault()
	action := req.Action + "#response"
	if fault {
		action = req.Action + "#fault"
	}
	rh, err := req.Reply(action, fault)
	if err != nil {
		return err
	}
	if err := rh.Apply(respEnv); err != nil {
		return fmt.Errorf("engine: stamping reply headers: %w", err)
	}
	msg := &exchange.Message{
		Endpoint:    target.Address,
		Action:      action,
		ContentType: respEnv.Version().ContentType(),
		Body:        respEnv.Marshal(),
		Headers:     rh,
	}
	if err := sender.SendReply(ctx, target, msg); err != nil {
		mExchangeReplyFailed.Inc()
		telemetry.Default().Log.Warn(ctx, "engine: decoupled reply delivery failed, falling back to back channel",
			"endpoint", target.Address, "action", action, "err", err)
		return err
	}
	mExchangeReplyOut.Inc()
	return nil
}
