package engine

import (
	"context"
	"fmt"
	"reflect"
	"sync"

	"wspeer/internal/soap"
	"wspeer/internal/transport"
	"wspeer/internal/wsdl"
	"wspeer/internal/xmlutil"
	"wspeer/internal/xsd"
)

// Stub is a dynamic client-side proxy for a service described by WSDL.
// Where Axis generates Java source for stubs and compiles it, WSPeer
// "generat[es] stubs directly to bytes, bypassing source generation and
// compilation" (paper §IV-A): a Stub serializes each call straight to a
// SOAP envelope using the parsed definitions, with no intermediate code
// generation step.
type Stub struct {
	defs *wsdl.Definitions
	reg  *transport.Registry

	// EndpointOverride, when non-empty, replaces the WSDL port address.
	// Locators use it to point a stub at a freshly resolved endpoint.
	EndpointOverride string

	// plans caches the per-operation invocation plan (operation name →
	// *opPlan) so repeated Invoke calls on one stub skip even the
	// Definitions-level detail lookup. Stubs must not be copied by value.
	plans sync.Map
}

// opPlan is the precompiled client-side invocation plan for one operation:
// everything Invoke needs that is derivable from the WSDL alone, resolved
// once. The embedded OperationDetail is shared and immutable.
type opPlan struct {
	det *wsdl.OperationDetail
}

// NewStub builds a stub over parsed definitions and a transport registry.
func NewStub(defs *wsdl.Definitions, reg *transport.Registry) *Stub {
	return &Stub{defs: defs, reg: reg}
}

// planFor resolves (and memoizes) the invocation plan for an operation.
// The underlying wsdl.Definitions cache makes this cheap even for
// short-lived stubs; the stub-local map removes the remaining lookup for
// long-lived ones.
func (s *Stub) planFor(op string) (*opPlan, error) {
	if p, ok := s.plans.Load(op); ok {
		return p.(*opPlan), nil
	}
	det, err := s.defs.Detail(op)
	if err != nil {
		return nil, err
	}
	p, _ := s.plans.LoadOrStore(op, &opPlan{det: det})
	return p.(*opPlan), nil
}

// Definitions returns the stub's WSDL.
func (s *Stub) Definitions() *wsdl.Definitions { return s.defs }

// Param is one named input value for a dynamic invocation.
type Param struct {
	Name  string
	Value interface{}
}

// P is shorthand for constructing a Param.
func P(name string, value interface{}) Param { return Param{Name: name, Value: value} }

// PrepareEnvelope builds the request envelope for an operation. Bindings
// that add their own headers (the P2PS binding's WS-Addressing blocks) call
// this and then transmit the envelope themselves.
func (s *Stub) PrepareEnvelope(op string, params ...Param) (*soap.Envelope, *wsdl.OperationDetail, error) {
	plan, err := s.planFor(op)
	if err != nil {
		return nil, nil, err
	}
	det := plan.det
	env := soap.NewEnvelope()
	wrapper := xmlutil.NewElement(det.Input)
	ns := det.Input.Space
	for _, p := range params {
		if p.Name == "" {
			return nil, nil, fmt.Errorf("engine: parameter of %s has no name", op)
		}
		if p.Value == nil {
			continue // omitted optional
		}
		if err := xsd.AppendValue(wrapper, ns, p.Name, reflect.ValueOf(p.Value)); err != nil {
			return nil, nil, fmt.Errorf("engine: encoding parameter %q: %w", p.Name, err)
		}
	}
	env.AddBodyElement(wrapper)
	return env, det, nil
}

// BuildRequest serializes an operation call to a transport request.
func (s *Stub) BuildRequest(op string, params ...Param) (*transport.Request, *wsdl.OperationDetail, error) {
	env, det, err := s.PrepareEnvelope(op, params...)
	if err != nil {
		return nil, nil, err
	}
	endpoint := det.Address
	if s.EndpointOverride != "" {
		endpoint = s.EndpointOverride
	}
	return &transport.Request{
		Endpoint:    endpoint,
		Action:      det.SOAPAction,
		ContentType: soap.ContentType,
		Body:        env.Marshal(),
	}, det, nil
}

// Result is the decoded-on-demand response of an invocation.
type Result struct {
	// Wrapper is the response wrapper element (e.g. <EchoResponse>).
	Wrapper *xmlutil.Element
	ns      string
}

// Decode extracts the named result part into out, which must be a non-nil
// pointer of the expected Go type.
func (r *Result) Decode(name string, out interface{}) error {
	if r == nil || r.Wrapper == nil {
		return fmt.Errorf("engine: no result to decode")
	}
	pv := reflect.ValueOf(out)
	if pv.Kind() != reflect.Ptr || pv.IsNil() {
		return fmt.Errorf("engine: Decode needs a non-nil pointer, got %T", out)
	}
	v, err := xsd.ExtractValue(r.Wrapper, r.ns, name, pv.Type().Elem())
	if err != nil {
		return err
	}
	pv.Elem().Set(v)
	return nil
}

// String extracts a string-typed result part.
func (r *Result) String(name string) (string, error) {
	var out string
	err := r.Decode(name, &out)
	return out, err
}

// Invoke performs a synchronous invocation of the operation. A SOAP fault
// from the provider is returned as a *soap.Fault error. One-way operations
// return (nil, nil) on success.
func (s *Stub) Invoke(ctx context.Context, op string, params ...Param) (*Result, error) {
	req, det, err := s.BuildRequest(op, params...)
	if err != nil {
		return nil, err
	}
	resp, err := s.reg.Call(ctx, req)
	if err != nil {
		return nil, err
	}
	if det.Operation.OneWay() {
		return nil, nil
	}
	return DecodeResponse(resp.Body, det)
}

// DecodeResponse interprets a response body against an operation's detail.
func DecodeResponse(body []byte, det *wsdl.OperationDetail) (*Result, error) {
	env, err := soap.Parse(body)
	if err != nil {
		return nil, fmt.Errorf("engine: response: %w", err)
	}
	return DecodeResponseEnvelope(env, det)
}

// ResultFromEnvelope wraps a response envelope as a Result without an
// operation detail — the decoupled-reply path, where the callback message
// arrives on its own connection and is matched to the request by
// RelatesTo rather than by the invocation that produced it. A fault
// envelope is returned as the *soap.Fault error.
func ResultFromEnvelope(env *soap.Envelope) (*Result, error) {
	if env.IsFault() {
		return nil, env.Fault()
	}
	wrapper := env.FirstBodyElement()
	if wrapper == nil {
		return nil, fmt.Errorf("engine: reply has an empty body")
	}
	return &Result{Wrapper: wrapper, ns: wrapper.Name.Space}, nil
}

// DecodeResponseEnvelope interprets an already-parsed response envelope.
func DecodeResponseEnvelope(env *soap.Envelope, det *wsdl.OperationDetail) (*Result, error) {
	if env.IsFault() {
		return nil, env.Fault()
	}
	wrapper := env.FirstBodyElement()
	if wrapper == nil {
		return nil, fmt.Errorf("engine: response for %s has an empty body", det.Operation.Name)
	}
	if wrapper.Name.Local != det.Output.Local {
		return nil, fmt.Errorf("engine: response wrapper is %s, want %s", wrapper.Name, det.Output)
	}
	return &Result{Wrapper: wrapper, ns: det.Output.Space}, nil
}
