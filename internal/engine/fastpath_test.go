package engine

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"wspeer/internal/transport"
	"wspeer/internal/wsdl"
)

// fastpathRig deploys an echo service over the in-memory transport and
// returns its shared Definitions plus a ready registry.
func fastpathRig(t *testing.T) (*wsdl.Definitions, *transport.Registry) {
	t.Helper()
	eng := New()
	svc, err := eng.Deploy(ServiceDef{
		Name: "Echo",
		Operations: []OperationDef{{
			Name: "echo", Func: func(s string) string { return s }, ParamNames: []string{"msg"},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	net := transport.NewInMemNetwork()
	net.Register("mem://h/Echo", eng.Handler("Echo"))
	defs, err := svc.WSDL("urn:mem", "mem://h/Echo")
	if err != nil {
		t.Fatal(err)
	}
	reg := transport.NewRegistry()
	reg.Register(net.Transport())
	return defs, reg
}

// TestConcurrentStubInvokeSharedDefinitions drives Invoke from many
// goroutines — some sharing one Stub, some with a private Stub over the
// same shared Definitions — under the race detector. This covers the
// stub-level plan map and the Definitions-level detail cache on their
// concurrent first touch.
func TestConcurrentStubInvokeSharedDefinitions(t *testing.T) {
	defs, reg := fastpathRig(t)
	shared := NewStub(defs, reg)
	ctx := context.Background()
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			stub := shared
			if g%2 == 0 {
				stub = NewStub(defs, reg) // fresh stub, shared Definitions
			}
			for i := 0; i < 50; i++ {
				res, err := stub.Invoke(ctx, "echo", P("msg", "hello"))
				if err != nil {
					t.Error(err)
					return
				}
				got, err := res.String("return")
				if err != nil || got != "hello" {
					t.Errorf("echo = %q, %v", got, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestGoldenEnvelopeColdVsWarm pins byte-identical serialization across
// the caches: a request built on a cold plan cache, one built warm, and
// one built over freshly re-parsed Definitions must all produce the same
// bytes.
func TestGoldenEnvelopeColdVsWarm(t *testing.T) {
	defs, _ := fastpathRig(t)

	cold := NewStub(defs, nil)
	req1, _, err := cold.BuildRequest("echo", P("msg", "golden & <value>"))
	if err != nil {
		t.Fatal(err)
	}
	// Warm: same stub, plan and detail now cached.
	req2, _, err := cold.BuildRequest("echo", P("msg", "golden & <value>"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(req1.Body, req2.Body) {
		t.Fatalf("cold vs warm differ:\n%s\nvs\n%s", req1.Body, req2.Body)
	}

	// Uncached: round-trip the WSDL so every cache starts empty.
	raw, err := defs.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := wsdl.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	req3, _, err := NewStub(fresh, nil).BuildRequest("echo", P("msg", "golden & <value>"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(req1.Body, req3.Body) {
		t.Fatalf("cached vs fresh-definitions differ:\n%s\nvs\n%s", req1.Body, req3.Body)
	}

	const golden = `<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"` +
		` xmlns:ns1="http://wspeer.dev/services/Echo">` +
		`<soapenv:Body>` +
		`<ns1:echo>` +
		`<ns1:msg>golden &amp; &lt;value&gt;</ns1:msg>` +
		`</ns1:echo>` +
		`</soapenv:Body>` +
		`</soapenv:Envelope>`
	if string(req1.Body) != golden {
		t.Fatalf("envelope drifted from golden form:\n got: %s\nwant: %s", req1.Body, golden)
	}
}
