// Package engine is WSPeer's SOAP messaging engine — the role Apache Axis
// plays in the paper's Java implementation. It registers services backed by
// plain Go functions or stateful objects, dispatches incoming SOAP
// envelopes to them reflectively, generates their WSDL descriptions, runs
// configurable in/out handler chains, and builds dynamic client stubs
// "directly to bytes, bypassing source generation and compilation"
// (paper §IV-A).
package engine

import (
	"context"
	"fmt"
	"reflect"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"

	"wspeer/internal/pipeline"
	"wspeer/internal/resilience"
	"wspeer/internal/wsdl"
	"wspeer/internal/xsd"
)

// DefaultNamespacePrefix is used to derive a target namespace for services
// that do not specify one: DefaultNamespacePrefix + service name.
const DefaultNamespacePrefix = "http://wspeer.dev/services/"

var ctxType = reflect.TypeOf((*context.Context)(nil)).Elem()
var errType = reflect.TypeOf((*error)(nil)).Elem()

// OperationDef declares one operation of a service definition.
type OperationDef struct {
	// Name of the operation; must be a valid XML NCName.
	Name string
	// Func implements the operation. Its signature is
	//   func([ctx context.Context,] in1 T1, ... inN TN) ([out1 R1, ... outM RM][, err error])
	// Method values bound to live objects are the paper's "stateful object
	// exposed as a service" mechanism.
	Func interface{}
	// ParamNames optionally names the inputs (default in0, in1, ...).
	ParamNames []string
	// ResultNames optionally names the outputs (default "return", or
	// out0.. for multiple outputs).
	ResultNames []string
	// OneWay marks the operation as input-only: no response envelope is
	// produced and the function may not return non-error results.
	OneWay bool
	// Doc is optional human documentation copied into the WSDL.
	Doc string
}

// ServiceDef declares a deployable service.
type ServiceDef struct {
	// Name of the service; must be a valid XML NCName.
	Name string
	// Namespace is the target namespace (defaulted from the name).
	Namespace string
	// Operations of the service.
	Operations []OperationDef
}

// Service is a registered, invokable service.
type Service struct {
	name      string
	namespace string
	ops       map[string]*opInfo
	opOrder   []string
	schema    *xsd.Schema
}

type opInfo struct {
	name     string
	fn       reflect.Value
	hasCtx   bool
	hasErr   bool
	oneWay   bool
	doc      string
	inTypes  []reflect.Type
	inNames  []string
	outTypes []reflect.Type
	outNames []string

	// Precompiled dispatch plan: per-parameter decoders and per-result
	// encoders (compiled once at analysis time, see internal/xsd plan
	// cache) and the response wrapper's local name, so the hot dispatch
	// path does no reflection walks or string concatenation.
	inDecs   []xsd.Decoder
	outEncs  []xsd.Encoder
	respName string
}

// Name returns the service name.
func (s *Service) Name() string { return s.name }

// Namespace returns the service target namespace.
func (s *Service) Namespace() string { return s.namespace }

// Operations lists the operation names in registration order.
func (s *Service) Operations() []string {
	return append([]string(nil), s.opOrder...)
}

// ncName validates XML NCNames loosely (ASCII subset, which is all this
// system generates).
var ncName = regexp.MustCompile(`^[A-Za-z_][A-Za-z0-9._-]*$`)

// Engine owns the set of deployed services and the handler chains.
type Engine struct {
	mu       sync.RWMutex
	services map[string]*Service
	order    []string

	chainMu  sync.RWMutex
	inChain  []ChainHandler
	outChain []ChainHandler
	// composed is the handler chains pre-adapted onto pipeline
	// interceptors, rebuilt on registration (not per dispatch). The slice
	// is replaced wholesale under chainMu, so readers may use a snapshot
	// without copying.
	composed []pipeline.Interceptor

	// pipe is the server-side call pipeline every hosted request flows
	// through: host → interceptors → parse/chains/dispatch (see
	// ServeRequest). The ChainHandler lists above are adapted onto the
	// same abstraction at the envelope level inside dispatch.
	pipe *pipeline.Chain

	understoodMu sync.RWMutex
	understood   map[string]bool

	// replySenders route decoupled replies (non-anonymous wsa:ReplyTo /
	// wsa:FaultTo) by the reply endpoint's URI scheme; bindings register
	// theirs via RegisterReplySender.
	replyMu      sync.RWMutex
	replySenders map[string]ReplySender

	// admission, when set, gates every ServeRequest — from any host the
	// engine is attached to — behind server-side admission control.
	admission atomic.Pointer[resilience.Admission]

	nRequests atomic.Int64
	nFaults   atomic.Int64
	nOneWay   atomic.Int64
}

// Stats counts an engine's dispatch activity.
type Stats struct {
	// Requests served (including those answered with faults).
	Requests int64
	// Faults returned (parse errors, unknown operations, application
	// errors, panics).
	Faults int64
	// OneWay requests accepted without a response.
	OneWay int64
}

// Stats returns a snapshot of the engine's dispatch counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Requests: e.nRequests.Load(),
		Faults:   e.nFaults.Load(),
		OneWay:   e.nOneWay.Load(),
	}
}

// New returns an engine with no services and empty chains.
func New() *Engine {
	return &Engine{
		services:   make(map[string]*Service),
		understood: make(map[string]bool),
		pipe:       pipeline.NewChain(),
	}
}

// Use installs server-side pipeline interceptors around request
// processing: every ServeRequest — from any host the engine is attached
// to — flows through them before parsing and dispatch. Earlier-installed
// interceptors run outermost. This is the wire-level seam; for
// envelope-level processing use AddInHandler/AddOutHandler.
func (e *Engine) Use(ics ...pipeline.Interceptor) { e.pipe.Use(ics...) }

// Pipeline exposes the engine's server-side interceptor chain.
func (e *Engine) Pipeline() *pipeline.Chain { return e.pipe }

// SetAdmission installs (or, with nil, removes) server-side admission
// control: every ServeRequest first claims a dispatch slot and callers
// the controller sheds get a *resilience.OverloadError instead of
// processing — which hosts translate to their binding's overload signal
// (HTTP 503 + Retry-After, a P2PS fault message). Safe to call with
// requests in flight.
func (e *Engine) SetAdmission(a *resilience.Admission) { e.admission.Store(a) }

// Admission returns the installed admission controller, or nil.
func (e *Engine) Admission() *resilience.Admission { return e.admission.Load() }

// Deploy registers a service definition, making it invokable.
func (e *Engine) Deploy(def ServiceDef) (*Service, error) {
	if !ncName.MatchString(def.Name) {
		return nil, fmt.Errorf("engine: invalid service name %q", def.Name)
	}
	if len(def.Operations) == 0 {
		return nil, fmt.Errorf("engine: service %q has no operations", def.Name)
	}
	ns := def.Namespace
	if ns == "" {
		ns = DefaultNamespacePrefix + def.Name
	}
	svc := &Service{
		name:      def.Name,
		namespace: ns,
		ops:       make(map[string]*opInfo, len(def.Operations)),
		schema:    xsd.NewSchema(ns),
	}
	for _, od := range def.Operations {
		op, err := analyzeOperation(od)
		if err != nil {
			return nil, fmt.Errorf("engine: service %q: %w", def.Name, err)
		}
		if _, dup := svc.ops[op.name]; dup {
			return nil, fmt.Errorf("engine: service %q: duplicate operation %q", def.Name, op.name)
		}
		// Declare the request and response wrapper elements.
		inFields := make([]xsd.Field, len(op.inTypes))
		for i, t := range op.inTypes {
			inFields[i] = xsd.Field{Name: op.inNames[i], Type: t}
		}
		if err := svc.schema.AddElement(op.name, inFields); err != nil {
			return nil, fmt.Errorf("engine: service %q operation %q: %w", def.Name, op.name, err)
		}
		if !op.oneWay {
			outFields := make([]xsd.Field, len(op.outTypes))
			for i, t := range op.outTypes {
				outFields[i] = xsd.Field{Name: op.outNames[i], Type: t}
			}
			if err := svc.schema.AddElement(op.name+"Response", outFields); err != nil {
				return nil, fmt.Errorf("engine: service %q operation %q: %w", def.Name, op.name, err)
			}
		}
		svc.ops[op.name] = op
		svc.opOrder = append(svc.opOrder, op.name)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	if _, exists := e.services[def.Name]; exists {
		return nil, fmt.Errorf("engine: service %q already deployed", def.Name)
	}
	e.services[def.Name] = svc
	e.order = append(e.order, def.Name)
	return svc, nil
}

// Undeploy removes a service; it reports whether the service existed.
func (e *Engine) Undeploy(name string) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.services[name]; !ok {
		return false
	}
	delete(e.services, name)
	for i, n := range e.order {
		if n == name {
			e.order = append(e.order[:i], e.order[i+1:]...)
			break
		}
	}
	return true
}

// Service returns a deployed service by name, or nil.
func (e *Engine) Service(name string) *Service {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.services[name]
}

// Services lists deployed service names in deployment order.
func (e *Engine) Services() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return append([]string(nil), e.order...)
}

// Understand marks a header namespace as understood for the purpose of
// SOAP mustUnderstand processing. WS-Addressing is understood by default
// (see dispatch.go).
func (e *Engine) Understand(namespace string) {
	e.understoodMu.Lock()
	defer e.understoodMu.Unlock()
	e.understood[namespace] = true
}

func (e *Engine) understands(namespace string) bool {
	e.understoodMu.RLock()
	defer e.understoodMu.RUnlock()
	return e.understood[namespace]
}

// analyzeOperation reflects over an operation's function signature.
func analyzeOperation(od OperationDef) (*opInfo, error) {
	if !ncName.MatchString(od.Name) {
		return nil, fmt.Errorf("invalid operation name %q", od.Name)
	}
	if od.Func == nil {
		return nil, fmt.Errorf("operation %q has no function", od.Name)
	}
	fv := reflect.ValueOf(od.Func)
	ft := fv.Type()
	if ft.Kind() != reflect.Func {
		return nil, fmt.Errorf("operation %q: %T is not a function", od.Name, od.Func)
	}
	if ft.IsVariadic() {
		return nil, fmt.Errorf("operation %q: variadic functions are not supported", od.Name)
	}
	op := &opInfo{name: od.Name, fn: fv, oneWay: od.OneWay, doc: od.Doc}

	start := 0
	if ft.NumIn() > 0 && isContextType(ft.In(0)) {
		op.hasCtx = true
		start = 1
	}
	for i := start; i < ft.NumIn(); i++ {
		op.inTypes = append(op.inTypes, ft.In(i))
	}
	op.inNames = make([]string, len(op.inTypes))
	for i := range op.inNames {
		if i < len(od.ParamNames) && od.ParamNames[i] != "" {
			op.inNames[i] = od.ParamNames[i]
		} else {
			op.inNames[i] = fmt.Sprintf("in%d", i)
		}
	}

	nOut := ft.NumOut()
	if nOut > 0 && ft.Out(nOut-1) == errType {
		op.hasErr = true
		nOut--
	}
	for i := 0; i < nOut; i++ {
		op.outTypes = append(op.outTypes, ft.Out(i))
	}
	if od.OneWay && len(op.outTypes) > 0 {
		return nil, fmt.Errorf("operation %q: one-way operations may only return an error", od.Name)
	}
	op.outNames = make([]string, len(op.outTypes))
	for i := range op.outNames {
		switch {
		case i < len(od.ResultNames) && od.ResultNames[i] != "":
			op.outNames[i] = od.ResultNames[i]
		case len(op.outTypes) == 1:
			op.outNames[i] = "return"
		default:
			op.outNames[i] = fmt.Sprintf("out%d", i)
		}
	}
	if err := uniqueNames(op.inNames); err != nil {
		return nil, fmt.Errorf("operation %q inputs: %w", od.Name, err)
	}
	if err := uniqueNames(op.outNames); err != nil {
		return nil, fmt.Errorf("operation %q outputs: %w", od.Name, err)
	}

	// Compile the dispatch plan while we hold the types: decoding and
	// encoding closures are resolved once here instead of per request.
	op.inDecs = make([]xsd.Decoder, len(op.inTypes))
	for i, t := range op.inTypes {
		op.inDecs[i] = xsd.DecoderForType(t)
	}
	op.outEncs = make([]xsd.Encoder, len(op.outTypes))
	for i, t := range op.outTypes {
		op.outEncs[i] = xsd.EncoderForType(t)
	}
	op.respName = op.name + "Response"
	return op, nil
}

func uniqueNames(names []string) error {
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			return fmt.Errorf("duplicate part name %q", n)
		}
		seen[n] = true
	}
	return nil
}

func isContextType(t reflect.Type) bool { return t == ctxType }

// ---------------------------------------------------------------------------
// Stateful object services

// FromObject builds a ServiceDef exposing every exported method of obj as
// an operation, implementing the paper's "service as an interface to a
// stateful object": the object's in-memory state persists across
// invocations. Methods with unsupported signatures are reported as errors.
func FromObject(name string, obj interface{}) (ServiceDef, error) {
	ops, err := OperationsFromObject(obj)
	if err != nil {
		return ServiceDef{}, err
	}
	return ServiceDef{Name: name, Operations: ops}, nil
}

// OperationsFromObject reflects the exported methods of one object into
// operation definitions, sorted by name.
func OperationsFromObject(obj interface{}) ([]OperationDef, error) {
	v := reflect.ValueOf(obj)
	t := v.Type()
	if t.Kind() != reflect.Ptr && t.Kind() != reflect.Interface && t.Kind() != reflect.Struct {
		return nil, fmt.Errorf("engine: need a struct or pointer, got %T", obj)
	}
	var names []string
	for i := 0; i < t.NumMethod(); i++ {
		names = append(names, t.Method(i).Name)
	}
	sort.Strings(names)
	var ops []OperationDef
	for _, mn := range names {
		m := v.MethodByName(mn)
		ops = append(ops, OperationDef{Name: mn, Func: m.Interface()})
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("engine: %T exposes no exported methods", obj)
	}
	return ops, nil
}

// FromObjects builds a ServiceDef whose operations are drawn from several
// live objects — the paper's "each operation given to the service can map
// to a different stateful object in memory, allowing a service to be an
// interface to multiple objects" (§III point 3). Method-name collisions
// across objects are an error.
func FromObjects(name string, objects ...interface{}) (ServiceDef, error) {
	if len(objects) == 0 {
		return ServiceDef{}, fmt.Errorf("engine: FromObjects needs at least one object")
	}
	def := ServiceDef{Name: name}
	seen := map[string]string{}
	for _, obj := range objects {
		ops, err := OperationsFromObject(obj)
		if err != nil {
			return ServiceDef{}, err
		}
		for _, op := range ops {
			if prev, dup := seen[op.Name]; dup {
				return ServiceDef{}, fmt.Errorf("engine: operation %q provided by both %s and %T", op.Name, prev, obj)
			}
			seen[op.Name] = fmt.Sprintf("%T", obj)
			def.Operations = append(def.Operations, op)
		}
	}
	return def, nil
}

// ---------------------------------------------------------------------------
// WSDL generation

// WSDL builds the service's WSDL definitions bound to the given transport
// URI and endpoint address (paper: "deploying a service involves taking a
// code source [and] generating a service interface description from it").
func (s *Service) WSDL(transportURI, address string) (*wsdl.Definitions, error) {
	d := &wsdl.Definitions{
		Name:            s.name,
		TargetNamespace: s.namespace,
		Schema:          s.schema,
	}
	pt := &wsdl.PortType{Name: s.name + "PortType"}
	binding := &wsdl.Binding{
		Name:      s.name + "Binding",
		PortType:  pt.Name,
		Transport: transportURI,
	}
	for _, opName := range s.opOrder {
		op := s.ops[opName]
		inMsg := op.name + "RequestMsg"
		d.Messages = append(d.Messages, &wsdl.Message{
			Name:  inMsg,
			Parts: []wsdl.Part{{Name: "parameters", Element: nameInNS(s.namespace, op.name)}},
		})
		wop := &wsdl.Operation{Name: op.name, Input: inMsg, Doc: op.doc}
		if !op.oneWay {
			outMsg := op.name + "ResponseMsg"
			d.Messages = append(d.Messages, &wsdl.Message{
				Name:  outMsg,
				Parts: []wsdl.Part{{Name: "parameters", Element: nameInNS(s.namespace, op.name+"Response")}},
			})
			wop.Output = outMsg
		}
		pt.Operations = append(pt.Operations, wop)
		binding.Operations = append(binding.Operations, wsdl.BindingOperation{
			Name:       op.name,
			SOAPAction: s.SOAPAction(op.name),
		})
	}
	d.PortTypes = []*wsdl.PortType{pt}
	d.Bindings = []*wsdl.Binding{binding}
	d.Services = []*wsdl.Service{{
		Name: s.name,
		Ports: []wsdl.Port{{
			Name:    s.name + "Port",
			Binding: binding.Name,
			Address: address,
		}},
	}}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("engine: generated WSDL invalid: %w", err)
	}
	return d, nil
}

// SOAPAction returns the action URI for one of the service's operations.
func (s *Service) SOAPAction(op string) string { return s.namespace + "#" + op }
