package p2ps

import (
	"encoding/base64"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"wspeer/internal/query"
	"wspeer/internal/xmlutil"
)

// Wire message types.
const (
	msgAttach          = "attach"
	msgAttachResponse  = "attachResponse"
	msgPublish         = "publish"
	msgUnpublish       = "unpublish"
	msgQuery           = "query"
	msgQueryResponse   = "queryResponse"
	msgResolve         = "resolve"
	msgResolveResponse = "resolveResponse"
	msgData            = "data"
)

// message is the P2PS wire unit. Everything peers exchange — adverts,
// queries, resolutions and pipe data — travels as one of these, serialized
// as XML.
type message struct {
	Type  string
	From  PeerID
	Addr  string // sender's transport address
	Group string
	TTL   int
	Hops  int

	QueryID      string
	Name         string // query pattern / unpublish advert ID / misc
	Expr         string // rich query expression (package query)
	Attrs        map[string]string
	PeerAdv      *PeerAdvertisement
	ServiceAdv   *ServiceAdvertisement
	PipeID       string
	Data         []byte
	RdvAddrs     []string // rendezvous gossip
	TargetPeer   PeerID
	ResolvedAddr string
}

var messageName = xmlutil.N(Namespace, "Message")

func (m *message) encode() []byte {
	el := xmlutil.NewElement(messageName)
	el.SetAttr(xmlutil.N("", "type"), m.Type)
	el.SetAttr(xmlutil.N("", "from"), string(m.From))
	el.SetAttr(xmlutil.N("", "addr"), m.Addr)
	if m.Group != "" {
		el.SetAttr(xmlutil.N("", "group"), m.Group)
	}
	if m.TTL != 0 {
		el.SetAttr(xmlutil.N("", "ttl"), strconv.Itoa(m.TTL))
	}
	if m.Hops != 0 {
		el.SetAttr(xmlutil.N("", "hops"), strconv.Itoa(m.Hops))
	}
	if m.QueryID != "" {
		el.SetAttr(xmlutil.N("", "queryId"), m.QueryID)
	}
	if m.Name != "" {
		el.NewChild(xmlutil.N(Namespace, "Name")).SetText(m.Name)
	}
	if m.Expr != "" {
		el.NewChild(xmlutil.N(Namespace, "Expr")).SetText(m.Expr)
	}
	if len(m.Attrs) > 0 {
		attrs := el.NewChild(xmlutil.N(Namespace, "QueryAttributes"))
		keys := make([]string, 0, len(m.Attrs))
		for k := range m.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			a := attrs.NewChild(xmlutil.N(Namespace, "Attribute"))
			a.SetAttr(xmlutil.N("", "name"), k)
			a.SetText(m.Attrs[k])
		}
	}
	if m.PeerAdv != nil {
		el.AddChild(m.PeerAdv.Element())
	}
	if m.ServiceAdv != nil {
		el.AddChild(m.ServiceAdv.Element())
	}
	if m.PipeID != "" {
		el.NewChild(xmlutil.N(Namespace, "Pipe")).SetText(m.PipeID)
	}
	if m.Data != nil {
		el.NewChild(xmlutil.N(Namespace, "Data")).SetText(base64.StdEncoding.EncodeToString(m.Data))
	}
	for _, addr := range m.RdvAddrs {
		el.NewChild(xmlutil.N(Namespace, "RendezvousAddr")).SetText(addr)
	}
	if m.TargetPeer != "" {
		el.NewChild(xmlutil.N(Namespace, "TargetPeer")).SetText(string(m.TargetPeer))
	}
	if m.ResolvedAddr != "" {
		el.NewChild(xmlutil.N(Namespace, "ResolvedAddr")).SetText(m.ResolvedAddr)
	}
	return xmlutil.Marshal(el)
}

func decodeMessage(data []byte) (*message, error) {
	el, err := xmlutil.ParseBytes(data)
	if err != nil {
		return nil, fmt.Errorf("p2ps: message: %w", err)
	}
	if el.Name != messageName {
		return nil, fmt.Errorf("p2ps: unexpected document element %v", el.Name)
	}
	m := &message{}
	m.Type, _ = el.Attr(xmlutil.N("", "type"))
	if m.Type == "" {
		return nil, fmt.Errorf("p2ps: message without type")
	}
	from, _ := el.Attr(xmlutil.N("", "from"))
	m.From = PeerID(from)
	m.Addr, _ = el.Attr(xmlutil.N("", "addr"))
	m.Group, _ = el.Attr(xmlutil.N("", "group"))
	if v, ok := el.Attr(xmlutil.N("", "ttl")); ok {
		if m.TTL, err = strconv.Atoi(v); err != nil {
			return nil, fmt.Errorf("p2ps: bad ttl %q", v)
		}
	}
	if v, ok := el.Attr(xmlutil.N("", "hops")); ok {
		if m.Hops, err = strconv.Atoi(v); err != nil {
			return nil, fmt.Errorf("p2ps: bad hops %q", v)
		}
	}
	m.QueryID, _ = el.Attr(xmlutil.N("", "queryId"))
	if c := el.Child(xmlutil.N(Namespace, "Name")); c != nil {
		m.Name = c.TrimmedText()
	}
	if c := el.Child(xmlutil.N(Namespace, "Expr")); c != nil {
		m.Expr = c.TrimmedText()
	}
	if attrs := el.Child(xmlutil.N(Namespace, "QueryAttributes")); attrs != nil {
		m.Attrs = make(map[string]string)
		for _, a := range attrs.Children(xmlutil.N(Namespace, "Attribute")) {
			name, _ := a.Attr(xmlutil.N("", "name"))
			if name != "" {
				m.Attrs[name] = a.TrimmedText()
			}
		}
	}
	if pel := el.Child(peerAdvName); pel != nil {
		if m.PeerAdv, err = PeerAdvertisementFromElement(pel); err != nil {
			return nil, err
		}
	}
	if sel := el.Child(serviceAdvName); sel != nil {
		if m.ServiceAdv, err = ServiceAdvertisementFromElement(sel); err != nil {
			return nil, err
		}
	}
	if c := el.Child(xmlutil.N(Namespace, "Pipe")); c != nil {
		m.PipeID = c.TrimmedText()
	}
	if c := el.Child(xmlutil.N(Namespace, "Data")); c != nil {
		m.Data, err = base64.StdEncoding.DecodeString(strings.TrimSpace(c.Text()))
		if err != nil {
			return nil, fmt.Errorf("p2ps: bad data payload: %w", err)
		}
	}
	for _, c := range el.Children(xmlutil.N(Namespace, "RendezvousAddr")) {
		m.RdvAddrs = append(m.RdvAddrs, c.TrimmedText())
	}
	if c := el.Child(xmlutil.N(Namespace, "TargetPeer")); c != nil {
		m.TargetPeer = PeerID(c.TrimmedText())
	}
	if c := el.Child(xmlutil.N(Namespace, "ResolvedAddr")); c != nil {
		m.ResolvedAddr = c.TrimmedText()
	}
	return m, nil
}

// Query selects service advertisements by name pattern and attributes:
// the attribute-based search the paper contrasts with DHT key lookup. An
// optional Expr adds the rich predicate language (package query) — the
// paper's "more complex queries" extension point — evaluated in-network
// by every peer the query reaches.
type Query struct {
	// Name matches the advertised service name. "*" (or empty) matches
	// any name; a trailing "*" matches a prefix; otherwise exact.
	Name string
	// Attrs must all be present with equal values in the advert.
	Attrs map[string]string
	// Group restricts matching to adverts published in that group
	// ("" matches any group).
	Group string
	// Expr is a rich predicate in the package query language, combined
	// (AND) with the other constraints. A malformed expression matches
	// nothing.
	Expr string

	compiled *query.Expr
}

// Prepare compiles the query's expression (if any); it is called once per
// received query so Matches doesn't re-parse per advert.
func (q *Query) Prepare() error {
	if q.Expr == "" || q.compiled != nil {
		return nil
	}
	e, err := query.Compile(q.Expr)
	if err != nil {
		return err
	}
	q.compiled = e
	return nil
}

// Matches reports whether an advert satisfies the query.
func (q Query) Matches(adv *ServiceAdvertisement) bool {
	if q.Group != "" && adv.Group != "" && q.Group != adv.Group {
		return false
	}
	switch {
	case q.Name == "" || q.Name == "*":
		// any
	case strings.HasSuffix(q.Name, "*"):
		if !strings.HasPrefix(adv.Name, strings.TrimSuffix(q.Name, "*")) {
			return false
		}
	default:
		if adv.Name != q.Name {
			return false
		}
	}
	for k, v := range q.Attrs {
		if adv.Attrs[k] != v {
			return false
		}
	}
	if q.Expr != "" {
		e := q.compiled
		if e == nil {
			var err error
			if e, err = query.Compile(q.Expr); err != nil {
				return false // fail closed on malformed expressions
			}
		}
		return e.Matches(&query.Subject{
			Name:  adv.Name,
			Group: adv.Group,
			Peer:  string(adv.Peer),
			Attrs: adv.Attrs,
		})
	}
	return true
}
