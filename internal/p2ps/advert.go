package p2ps

import (
	"fmt"
	"sort"

	"wspeer/internal/xmlutil"
)

// PipeAdvertisement advertises one pipe: "essentially a named endpoint —
// although the endpoint is logical and requires an EndpointResolver to turn
// it into a physical address" (paper §IV-B).
type PipeAdvertisement struct {
	ID   string // unique pipe ID
	Name string // human name within its service
	Peer PeerID // owning peer
}

// ServiceAdvertisement advertises a service as a collection of named pipes.
// WSPeer's extension adds a definition pipe "from which the service
// definition (WSDL in our case) can be retrieved", plus free-form
// attributes enabling the attribute-based search P2PS favours over DHT
// key lookup.
type ServiceAdvertisement struct {
	ID             string
	Name           string
	Peer           PeerID
	Group          string
	Pipes          []PipeAdvertisement
	DefinitionPipe *PipeAdvertisement
	Attrs          map[string]string
}

// PeerAdvertisement announces a peer and how to reach it.
type PeerAdvertisement struct {
	ID         PeerID
	Name       string
	Addr       string
	Group      string
	Rendezvous bool
}

// Pipe returns the service's pipe with the given name, or nil.
func (s *ServiceAdvertisement) Pipe(name string) *PipeAdvertisement {
	for i := range s.Pipes {
		if s.Pipes[i].Name == name {
			return &s.Pipes[i]
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// XML serialization

var (
	pipeAdvName    = xmlutil.N(Namespace, "PipeAdvertisement")
	serviceAdvName = xmlutil.N(Namespace, "ServiceAdvertisement")
	peerAdvName    = xmlutil.N(Namespace, "PeerAdvertisement")
)

// Element serializes the pipe advertisement.
func (p *PipeAdvertisement) Element() *xmlutil.Element {
	el := xmlutil.NewElement(pipeAdvName)
	el.NewChild(xmlutil.N(Namespace, "Id")).SetText(p.ID)
	el.NewChild(xmlutil.N(Namespace, "Name")).SetText(p.Name)
	el.NewChild(xmlutil.N(Namespace, "Peer")).SetText(string(p.Peer))
	return el
}

// PipeAdvertisementFromElement parses a pipe advertisement.
func PipeAdvertisementFromElement(el *xmlutil.Element) (*PipeAdvertisement, error) {
	if el.Name != pipeAdvName {
		return nil, fmt.Errorf("p2ps: element %v is not a PipeAdvertisement", el.Name)
	}
	p := &PipeAdvertisement{}
	if c := el.Child(xmlutil.N(Namespace, "Id")); c != nil {
		p.ID = c.TrimmedText()
	}
	if c := el.Child(xmlutil.N(Namespace, "Name")); c != nil {
		p.Name = c.TrimmedText()
	}
	if c := el.Child(xmlutil.N(Namespace, "Peer")); c != nil {
		p.Peer = PeerID(c.TrimmedText())
	}
	if p.ID == "" {
		return nil, fmt.Errorf("p2ps: PipeAdvertisement without Id")
	}
	return p, nil
}

// Element serializes the service advertisement.
func (s *ServiceAdvertisement) Element() *xmlutil.Element {
	el := xmlutil.NewElement(serviceAdvName)
	el.NewChild(xmlutil.N(Namespace, "Id")).SetText(s.ID)
	el.NewChild(xmlutil.N(Namespace, "Name")).SetText(s.Name)
	el.NewChild(xmlutil.N(Namespace, "Peer")).SetText(string(s.Peer))
	if s.Group != "" {
		el.NewChild(xmlutil.N(Namespace, "Group")).SetText(s.Group)
	}
	for i := range s.Pipes {
		el.AddChild(s.Pipes[i].Element())
	}
	if s.DefinitionPipe != nil {
		def := el.NewChild(xmlutil.N(Namespace, "Definition"))
		def.AddChild(s.DefinitionPipe.Element())
	}
	if len(s.Attrs) > 0 {
		attrs := el.NewChild(xmlutil.N(Namespace, "Attributes"))
		keys := make([]string, 0, len(s.Attrs))
		for k := range s.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			a := attrs.NewChild(xmlutil.N(Namespace, "Attribute"))
			a.SetAttr(xmlutil.N("", "name"), k)
			a.SetText(s.Attrs[k])
		}
	}
	return el
}

// ServiceAdvertisementFromElement parses a service advertisement.
func ServiceAdvertisementFromElement(el *xmlutil.Element) (*ServiceAdvertisement, error) {
	if el.Name != serviceAdvName {
		return nil, fmt.Errorf("p2ps: element %v is not a ServiceAdvertisement", el.Name)
	}
	s := &ServiceAdvertisement{}
	if c := el.Child(xmlutil.N(Namespace, "Id")); c != nil {
		s.ID = c.TrimmedText()
	}
	if c := el.Child(xmlutil.N(Namespace, "Name")); c != nil {
		s.Name = c.TrimmedText()
	}
	if c := el.Child(xmlutil.N(Namespace, "Peer")); c != nil {
		s.Peer = PeerID(c.TrimmedText())
	}
	if c := el.Child(xmlutil.N(Namespace, "Group")); c != nil {
		s.Group = c.TrimmedText()
	}
	for _, pel := range el.Children(pipeAdvName) {
		p, err := PipeAdvertisementFromElement(pel)
		if err != nil {
			return nil, err
		}
		s.Pipes = append(s.Pipes, *p)
	}
	if def := el.Child(xmlutil.N(Namespace, "Definition")); def != nil {
		if pel := def.Child(pipeAdvName); pel != nil {
			p, err := PipeAdvertisementFromElement(pel)
			if err != nil {
				return nil, err
			}
			s.DefinitionPipe = p
		}
	}
	if attrs := el.Child(xmlutil.N(Namespace, "Attributes")); attrs != nil {
		s.Attrs = make(map[string]string)
		for _, a := range attrs.Children(xmlutil.N(Namespace, "Attribute")) {
			name, _ := a.Attr(xmlutil.N("", "name"))
			if name != "" {
				s.Attrs[name] = a.TrimmedText()
			}
		}
	}
	if s.ID == "" || s.Name == "" {
		return nil, fmt.Errorf("p2ps: ServiceAdvertisement missing Id or Name")
	}
	return s, nil
}

// Element serializes the peer advertisement.
func (p *PeerAdvertisement) Element() *xmlutil.Element {
	el := xmlutil.NewElement(peerAdvName)
	el.NewChild(xmlutil.N(Namespace, "Id")).SetText(string(p.ID))
	el.NewChild(xmlutil.N(Namespace, "Name")).SetText(p.Name)
	el.NewChild(xmlutil.N(Namespace, "Addr")).SetText(p.Addr)
	el.NewChild(xmlutil.N(Namespace, "Group")).SetText(p.Group)
	if p.Rendezvous {
		el.NewChild(xmlutil.N(Namespace, "Rendezvous")).SetText("true")
	}
	return el
}

// PeerAdvertisementFromElement parses a peer advertisement.
func PeerAdvertisementFromElement(el *xmlutil.Element) (*PeerAdvertisement, error) {
	if el.Name != peerAdvName {
		return nil, fmt.Errorf("p2ps: element %v is not a PeerAdvertisement", el.Name)
	}
	p := &PeerAdvertisement{}
	if c := el.Child(xmlutil.N(Namespace, "Id")); c != nil {
		p.ID = PeerID(c.TrimmedText())
	}
	if c := el.Child(xmlutil.N(Namespace, "Name")); c != nil {
		p.Name = c.TrimmedText()
	}
	if c := el.Child(xmlutil.N(Namespace, "Addr")); c != nil {
		p.Addr = c.TrimmedText()
	}
	if c := el.Child(xmlutil.N(Namespace, "Group")); c != nil {
		p.Group = c.TrimmedText()
	}
	if c := el.Child(xmlutil.N(Namespace, "Rendezvous")); c != nil {
		p.Rendezvous = c.TrimmedText() == "true"
	}
	if p.ID == "" {
		return nil, fmt.Errorf("p2ps: PeerAdvertisement without Id")
	}
	return p, nil
}
