package p2ps

import (
	"testing"
	"time"
)

func TestLocalNetworkEndToEnd(t *testing.T) {
	net := NewLocalNetwork()
	mk := func(rendezvous bool, seeds ...string) *Peer {
		t.Helper()
		p, err := NewPeer(Config{Transport: net.NewEndpoint(), Rendezvous: rendezvous, Seeds: seeds})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}
	rdv := mk(true)
	provider := mk(false, rdv.Addr())
	consumer := mk(false, rdv.Addr())

	in, err := provider.CreateInputPipe("req")
	if err != nil {
		t.Fatal(err)
	}
	delivered := make(chan []byte, 1)
	in.AddListener(func(_ PeerID, data []byte) { delivered <- data })
	if _, err := provider.PublishService(&ServiceAdvertisement{
		Name:  "LocalEcho",
		Pipes: []PipeAdvertisement{*in.Advertisement()},
	}); err != nil {
		t.Fatal(err)
	}

	var adv *ServiceAdvertisement
	for attempt := 0; attempt < 50 && adv == nil; attempt++ {
		adv = consumer.DiscoverOne(Query{Name: "LocalEcho"}, 50*time.Millisecond)
	}
	if adv == nil {
		t.Fatal("local discovery failed")
	}
	out, err := consumer.OpenOutputPipe(adv.Pipe("req"))
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Send([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-delivered:
		if string(data) != "ping" {
			t.Fatalf("data = %q", data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipe data never arrived")
	}
}

func TestLocalEndpointClosed(t *testing.T) {
	net := NewLocalNetwork()
	ep := net.NewEndpoint()
	other := net.NewEndpoint()
	if err := ep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ep.Close(); err != nil {
		t.Fatal("double close should be nil")
	}
	if err := ep.Send(other.Addr(), []byte("x")); err == nil {
		t.Fatal("send on closed endpoint accepted")
	}
	// Sending to a closed endpoint is a silent drop.
	if err := other.Send(ep.Addr(), []byte("x")); err != nil {
		t.Fatal(err)
	}
}
