package p2ps

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// LocalNetwork is a real-time, in-process transport: endpoints deliver
// datagrams to each other through goroutines with no simulated latency.
// It backs the single-process examples and the latency-free benchmark
// baselines; use internal/netsim when virtual time or loss models are
// needed.
type LocalNetwork struct {
	mu    sync.RWMutex
	nodes map[string]*LocalEndpoint
	next  atomic.Int64
}

// NewLocalNetwork returns an empty local network.
func NewLocalNetwork() *LocalNetwork {
	return &LocalNetwork{nodes: make(map[string]*LocalEndpoint)}
}

// NewEndpoint attaches a new endpoint to the network.
func (n *LocalNetwork) NewEndpoint() *LocalEndpoint {
	name := fmt.Sprintf("local://%d", n.next.Add(1))
	ep := &LocalEndpoint{net: n, addr: name}
	n.mu.Lock()
	n.nodes[name] = ep
	n.mu.Unlock()
	return ep
}

// LocalEndpoint is one attachment point on a LocalNetwork.
type LocalEndpoint struct {
	net  *LocalNetwork
	addr string

	mu     sync.Mutex
	recv   func(from string, data []byte)
	closed bool
	wg     sync.WaitGroup
}

// Addr implements Transport.
func (ep *LocalEndpoint) Addr() string { return ep.addr }

// SetReceiver implements Transport.
func (ep *LocalEndpoint) SetReceiver(fn func(from string, data []byte)) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	ep.recv = fn
}

// Close implements Transport.
func (ep *LocalEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	ep.mu.Unlock()
	ep.net.mu.Lock()
	delete(ep.net.nodes, ep.addr)
	ep.net.mu.Unlock()
	ep.wg.Wait()
	return nil
}

// Send implements Transport: datagram semantics, delivered asynchronously.
func (ep *LocalEndpoint) Send(to string, data []byte) error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return fmt.Errorf("p2ps: send on closed endpoint")
	}
	ep.wg.Add(1)
	ep.mu.Unlock()

	ep.net.mu.RLock()
	dst := ep.net.nodes[to]
	ep.net.mu.RUnlock()
	if dst == nil {
		ep.wg.Done()
		return nil // unreachable: datagram drop
	}
	payload := append([]byte(nil), data...)
	from := ep.addr
	go func() {
		defer ep.wg.Done()
		dst.mu.Lock()
		recv := dst.recv
		closed := dst.closed
		dst.mu.Unlock()
		if recv != nil && !closed {
			recv(from, payload)
		}
	}()
	return nil
}
