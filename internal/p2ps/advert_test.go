package p2ps

import (
	"testing"
	"testing/quick"

	"wspeer/internal/xmlutil"
)

func TestPipeAdvertRoundTrip(t *testing.T) {
	in := &PipeAdvertisement{ID: NewPipeID(), Name: "echoString", Peer: "peer-1"}
	out, err := PipeAdvertisementFromElement(in.Element())
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
	// Through real bytes.
	el, err := xmlutil.ParseBytes(xmlutil.Marshal(in.Element()))
	if err != nil {
		t.Fatal(err)
	}
	out, err = PipeAdvertisementFromElement(el)
	if err != nil || *out != *in {
		t.Fatalf("bytes round trip: %+v, %v", out, err)
	}
}

func TestPipeAdvertErrors(t *testing.T) {
	if _, err := PipeAdvertisementFromElement(xmlutil.NewElement(xmlutil.N(Namespace, "Wrong"))); err == nil {
		t.Fatal("wrong element accepted")
	}
	empty := (&PipeAdvertisement{Name: "x", Peer: "p"}).Element()
	if _, err := PipeAdvertisementFromElement(empty); err == nil {
		t.Fatal("missing Id accepted")
	}
}

func TestServiceAdvertRoundTrip(t *testing.T) {
	in := &ServiceAdvertisement{
		ID:    NewAdvertID(),
		Name:  "Echo",
		Peer:  "peer-9",
		Group: "grid",
		Pipes: []PipeAdvertisement{
			{ID: "pipe-1", Name: "echoString", Peer: "peer-9"},
			{ID: "pipe-2", Name: "echoBytes", Peer: "peer-9"},
		},
		DefinitionPipe: &PipeAdvertisement{ID: "pipe-def", Name: "definition", Peer: "peer-9"},
		Attrs:          map[string]string{"kind": "echo", "version": "1"},
	}
	el, err := xmlutil.ParseBytes(xmlutil.Marshal(in.Element()))
	if err != nil {
		t.Fatal(err)
	}
	out, err := ServiceAdvertisementFromElement(el)
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Name != in.Name || out.Peer != in.Peer || out.Group != in.Group {
		t.Fatalf("scalar fields: %+v", out)
	}
	if len(out.Pipes) != 2 || out.Pipes[1] != in.Pipes[1] {
		t.Fatalf("pipes: %+v", out.Pipes)
	}
	if out.DefinitionPipe == nil || *out.DefinitionPipe != *in.DefinitionPipe {
		t.Fatalf("definition pipe: %+v", out.DefinitionPipe)
	}
	if len(out.Attrs) != 2 || out.Attrs["kind"] != "echo" {
		t.Fatalf("attrs: %+v", out.Attrs)
	}
	if out.Pipe("echoBytes") == nil || out.Pipe("nope") != nil {
		t.Fatal("Pipe lookup")
	}
}

func TestServiceAdvertErrors(t *testing.T) {
	noName := &ServiceAdvertisement{ID: "adv-1"}
	if _, err := ServiceAdvertisementFromElement(noName.Element()); err == nil {
		t.Fatal("missing Name accepted")
	}
}

func TestPeerAdvertRoundTrip(t *testing.T) {
	in := &PeerAdvertisement{ID: "peer-7", Name: "rdv-A", Addr: "sim://a", Group: "g1", Rendezvous: true}
	el, err := xmlutil.ParseBytes(xmlutil.Marshal(in.Element()))
	if err != nil {
		t.Fatal(err)
	}
	out, err := PeerAdvertisementFromElement(el)
	if err != nil || *out != *in {
		t.Fatalf("round trip: %+v, %v", out, err)
	}
	in.Rendezvous = false
	out, err = PeerAdvertisementFromElement(in.Element())
	if err != nil || out.Rendezvous {
		t.Fatal("rendezvous=false lost")
	}
}

func TestQueryMatches(t *testing.T) {
	adv := &ServiceAdvertisement{
		ID: "a", Name: "EchoService", Group: "grid",
		Attrs: map[string]string{"kind": "echo", "v": "2"},
	}
	cases := []struct {
		q    Query
		want bool
	}{
		{Query{}, true},
		{Query{Name: "*"}, true},
		{Query{Name: "EchoService"}, true},
		{Query{Name: "Echo"}, false},
		{Query{Name: "Echo*"}, true},
		{Query{Name: "Zcho*"}, false},
		{Query{Group: "grid"}, true},
		{Query{Group: "other"}, false},
		{Query{Attrs: map[string]string{"kind": "echo"}}, true},
		{Query{Attrs: map[string]string{"kind": "other"}}, false},
		{Query{Attrs: map[string]string{"kind": "echo", "v": "2"}}, true},
		{Query{Attrs: map[string]string{"kind": "echo", "missing": "x"}}, false},
		{Query{Name: "Echo*", Group: "grid", Attrs: map[string]string{"v": "2"}}, true},
	}
	for i, c := range cases {
		if got := c.q.Matches(adv); got != c.want {
			t.Errorf("case %d: Matches(%+v) = %v, want %v", i, c.q, got, c.want)
		}
	}
	// Advert without a group matches any group constraint.
	groupless := &ServiceAdvertisement{ID: "b", Name: "X"}
	if !(Query{Group: "g"}).Matches(groupless) {
		t.Error("groupless advert should match")
	}
}

func TestMessageRoundTrips(t *testing.T) {
	msgs := []*message{
		{Type: msgAttach, From: "p1", Addr: "sim://a", Group: "g",
			PeerAdv: &PeerAdvertisement{ID: "p1", Addr: "sim://a", Group: "g", Rendezvous: true}},
		{Type: msgAttachResponse, From: "p2", Addr: "sim://b",
			PeerAdv:  &PeerAdvertisement{ID: "p2", Addr: "sim://b"},
			RdvAddrs: []string{"sim://r1", "sim://r2"}},
		{Type: msgPublish, From: "p1", Addr: "sim://a",
			ServiceAdv: &ServiceAdvertisement{ID: "adv-1", Name: "Echo", Peer: "p1"}},
		{Type: msgUnpublish, From: "p1", Addr: "sim://a", Name: "adv-1"},
		{Type: msgQuery, From: "p1", Addr: "sim://a", Group: "g", TTL: 5, Hops: 2,
			QueryID: "q-1", Name: "Echo*", Attrs: map[string]string{"kind": "echo"}},
		{Type: msgQueryResponse, From: "p2", Addr: "sim://b", QueryID: "q-1", Hops: 3,
			ServiceAdv:   &ServiceAdvertisement{ID: "adv-1", Name: "Echo", Peer: "p1"},
			ResolvedAddr: "sim://a"},
		{Type: msgResolve, From: "p1", Addr: "sim://a", QueryID: "r-1", TTL: 4, TargetPeer: "p9"},
		{Type: msgResolveResponse, From: "p2", Addr: "sim://b", QueryID: "r-1",
			TargetPeer: "p9", ResolvedAddr: "sim://z"},
		{Type: msgData, From: "p1", Addr: "sim://a", PipeID: "pipe-1",
			Data: []byte{0, 1, 2, 0xff, '<', '&'}},
	}
	for _, in := range msgs {
		out, err := decodeMessage(in.encode())
		if err != nil {
			t.Fatalf("%s: %v", in.Type, err)
		}
		if out.Type != in.Type || out.From != in.From || out.Addr != in.Addr ||
			out.Group != in.Group || out.TTL != in.TTL || out.Hops != in.Hops ||
			out.QueryID != in.QueryID || out.Name != in.Name ||
			out.TargetPeer != in.TargetPeer || out.ResolvedAddr != in.ResolvedAddr ||
			out.PipeID != in.PipeID {
			t.Fatalf("%s: scalars differ:\nin  %+v\nout %+v", in.Type, in, out)
		}
		if in.Data != nil {
			if string(out.Data) != string(in.Data) {
				t.Fatalf("%s: data differs", in.Type)
			}
		}
		if len(in.Attrs) != len(out.Attrs) {
			t.Fatalf("%s: attrs differ", in.Type)
		}
		if len(in.RdvAddrs) != len(out.RdvAddrs) {
			t.Fatalf("%s: rdv addrs differ", in.Type)
		}
		if (in.PeerAdv == nil) != (out.PeerAdv == nil) || (in.ServiceAdv == nil) != (out.ServiceAdv == nil) {
			t.Fatalf("%s: adverts differ", in.Type)
		}
	}
}

func TestMessageDecodeErrors(t *testing.T) {
	if _, err := decodeMessage([]byte("not xml")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := decodeMessage([]byte("<x/>")); err == nil {
		t.Fatal("wrong root accepted")
	}
	noType := xmlutil.NewElement(messageName)
	if _, err := decodeMessage(xmlutil.Marshal(noType)); err == nil {
		t.Fatal("missing type accepted")
	}
	badTTL := xmlutil.NewElement(messageName)
	badTTL.SetAttr(xmlutil.N("", "type"), "query")
	badTTL.SetAttr(xmlutil.N("", "ttl"), "zz")
	if _, err := decodeMessage(xmlutil.Marshal(badTTL)); err == nil {
		t.Fatal("bad ttl accepted")
	}
}

func TestQuickDataPayloadRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		in := &message{Type: msgData, From: "p", Addr: "a", PipeID: "x", Data: data}
		out, err := decodeMessage(in.encode())
		if err != nil {
			return false
		}
		if len(out.Data) != len(data) {
			return false
		}
		for i := range data {
			if out.Data[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAdvertCache(t *testing.T) {
	c := NewAdvertCache(3)
	a1 := &ServiceAdvertisement{ID: "1", Name: "A", Peer: "p1"}
	a2 := &ServiceAdvertisement{ID: "2", Name: "B", Peer: "p1"}
	a3 := &ServiceAdvertisement{ID: "3", Name: "C", Peer: "p2"}
	if !c.Put(a1) || !c.Put(a2) || !c.Put(a3) {
		t.Fatal("puts")
	}
	if c.Put(a1) {
		t.Fatal("duplicate put reported new")
	}
	if c.Len() != 3 {
		t.Fatalf("len = %d", c.Len())
	}
	// Eviction of the oldest on overflow.
	c.Put(&ServiceAdvertisement{ID: "4", Name: "D", Peer: "p2"})
	if c.Len() != 3 || c.Get("1") != nil || c.Get("4") == nil {
		t.Fatal("eviction")
	}
	// Match in insertion order.
	got := c.Match(Query{})
	if len(got) != 3 || got[0].ID != "2" {
		t.Fatalf("match order: %v", got)
	}
	if len(c.Match(Query{Name: "C"})) != 1 {
		t.Fatal("name match")
	}
	if !c.Remove("2") || c.Remove("2") {
		t.Fatal("remove")
	}
	if n := c.RemoveByPeer("p2"); n != 2 {
		t.Fatalf("removeByPeer = %d", n)
	}
	if c.Len() != 0 {
		t.Fatalf("len after removals = %d", c.Len())
	}
	if c.Put(nil) || c.Put(&ServiceAdvertisement{}) {
		t.Fatal("nil/empty put accepted")
	}
}

func TestIDGenerators(t *testing.T) {
	if NewPeerID() == NewPeerID() {
		t.Fatal("peer IDs collide")
	}
	if NewPipeID() == NewPipeID() || NewAdvertID() == NewAdvertID() {
		t.Fatal("IDs collide")
	}
}
