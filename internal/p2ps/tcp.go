package p2ps

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// maxFrame bounds a single P2PS datagram over TCP.
const maxFrame = 16 << 20

// Timeouts keeping a black-holed peer from wedging a pipe: dials and
// frame writes are bounded, and once a frame header arrives its body must
// follow promptly. Waiting for the next header is NOT bounded — an idle
// but healthy pipe stays up indefinitely.
const (
	dialTimeout  = 5 * time.Second
	writeTimeout = 10 * time.Second
	frameTimeout = 30 * time.Second
)

// TCPTransport carries P2PS datagrams over TCP with length-prefixed frames.
// Connections are opened on demand per destination and reused; incoming
// connections are read until EOF. It satisfies the Transport interface for
// real (non-simulated) deployments, addressed as "tcp://host:port".
type TCPTransport struct {
	ln net.Listener

	mu       sync.Mutex
	recv     func(from string, data []byte)
	conns    map[string]net.Conn // outbound, keyed by destination
	accepted map[net.Conn]bool   // inbound
	closed   bool
	wg       sync.WaitGroup
}

// NewTCPTransport listens on addr ("127.0.0.1:0" for an ephemeral port).
func NewTCPTransport(addr string) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("p2ps: tcp listen: %w", err)
	}
	t := &TCPTransport{ln: ln, conns: make(map[string]net.Conn), accepted: make(map[net.Conn]bool)}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the transport address ("tcp://host:port").
func (t *TCPTransport) Addr() string { return "tcp://" + t.ln.Addr().String() }

// SetReceiver implements Transport.
func (t *TCPTransport) SetReceiver(fn func(from string, data []byte)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.recv = fn
}

// Close implements Transport.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[string]net.Conn{}
	inbound := t.accepted
	t.accepted = map[net.Conn]bool{}
	t.mu.Unlock()
	err := t.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	for c := range inbound {
		c.Close()
	}
	t.wg.Wait()
	return err
}

// Send implements Transport: datagram semantics over a cached stream.
func (t *TCPTransport) Send(to string, data []byte) error {
	if len(to) > 6 && to[:6] == "tcp://" {
		to = to[6:]
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("p2ps: send on closed transport")
	}
	conn, ok := t.conns[to]
	t.mu.Unlock()
	if !ok {
		var err error
		conn, err = (&net.Dialer{Timeout: dialTimeout}).Dial("tcp", to)
		if err != nil {
			return nil // unreachable destination: datagram drop
		}
		t.mu.Lock()
		if existing, raced := t.conns[to]; raced {
			conn.Close()
			conn = existing
		} else {
			t.conns[to] = conn
		}
		t.mu.Unlock()
	}
	conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	if err := writeFrame(conn, data); err != nil {
		// Connection went bad: forget it. The datagram is lost.
		t.mu.Lock()
		if t.conns[to] == conn {
			delete(t.conns, to)
		}
		t.mu.Unlock()
		conn.Close()
	}
	return nil
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.accepted[conn] = true
		t.mu.Unlock()
		t.wg.Add(1)
		go t.readLoop(conn)
	}
}

func (t *TCPTransport) readLoop(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.accepted, conn)
		t.mu.Unlock()
	}()
	from := "tcp://" + conn.RemoteAddr().String()
	for {
		data, err := readFrame(conn)
		if err != nil {
			return
		}
		t.mu.Lock()
		recv := t.recv
		closed := t.closed
		t.mu.Unlock()
		if closed {
			return
		}
		if recv != nil {
			recv(from, data)
		}
	}
}

func writeFrame(w io.Writer, data []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(data)
	return err
}

func readFrame(conn net.Conn) ([]byte, error) {
	// Waiting for the next frame is unbounded: idle pipes are legitimate.
	conn.SetReadDeadline(time.Time{})
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("p2ps: frame of %d bytes exceeds limit", n)
	}
	// A started frame must finish promptly; a peer that goes silent
	// mid-frame would otherwise hold this read loop hostage forever.
	conn.SetReadDeadline(time.Now().Add(frameTimeout))
	data := make([]byte, n)
	if _, err := io.ReadFull(conn, data); err != nil {
		return nil, err
	}
	return data, nil
}
