package p2ps

import "sync"

// AdvertCache holds service advertisements a peer has learned about. Every
// peer keeps one ("When a peer receives a query it checks its local cache
// to see if it has a match"); rendezvous peers additionally fill theirs
// with everything published through them. The cache is bounded: when full,
// the oldest advert is evicted.
type AdvertCache struct {
	mu    sync.RWMutex
	max   int
	byID  map[string]*ServiceAdvertisement
	order []string
}

// DefaultCacheSize bounds a cache when no explicit capacity is given.
const DefaultCacheSize = 4096

// NewAdvertCache returns a cache holding at most max adverts (max<=0 means
// DefaultCacheSize).
func NewAdvertCache(max int) *AdvertCache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &AdvertCache{max: max, byID: make(map[string]*ServiceAdvertisement)}
}

// Put stores (or refreshes) an advert. It reports whether the advert was
// new to the cache.
func (c *AdvertCache) Put(adv *ServiceAdvertisement) bool {
	if adv == nil || adv.ID == "" {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.byID[adv.ID]; exists {
		c.byID[adv.ID] = adv
		return false
	}
	if len(c.order) >= c.max {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.byID, oldest)
	}
	c.byID[adv.ID] = adv
	c.order = append(c.order, adv.ID)
	return true
}

// Get returns the advert with the given ID, or nil.
func (c *AdvertCache) Get(id string) *ServiceAdvertisement {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.byID[id]
}

// Remove deletes an advert; it reports whether it was present.
func (c *AdvertCache) Remove(id string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byID[id]; !ok {
		return false
	}
	delete(c.byID, id)
	for i, oid := range c.order {
		if oid == id {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	return true
}

// RemoveByPeer deletes all adverts owned by a peer and returns how many
// were removed (used when a peer detaches).
func (c *AdvertCache) RemoveByPeer(peer PeerID) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	kept := c.order[:0]
	for _, id := range c.order {
		if adv := c.byID[id]; adv != nil && adv.Peer == peer {
			delete(c.byID, id)
			n++
			continue
		}
		kept = append(kept, id)
	}
	c.order = kept
	return n
}

// Match returns every cached advert satisfying the query.
func (c *AdvertCache) Match(q Query) []*ServiceAdvertisement {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*ServiceAdvertisement
	for _, id := range c.order {
		if adv := c.byID[id]; adv != nil && q.Matches(adv) {
			out = append(out, adv)
		}
	}
	return out
}

// Len reports the number of cached adverts.
func (c *AdvertCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.byID)
}
