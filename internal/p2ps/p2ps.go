// Package p2ps implements Peer-to-Peer Simplified (P2PS), the P2P framework
// WSPeer's second binding runs over (paper §IV-B, citing Wang 2004). It
// provides everything that section depends on:
//
//   - peers identified by logical IDs rather than physical addresses;
//   - XML advertisements describing peers, pipes and services;
//   - unidirectional pipes with listener-based delivery;
//   - endpoint resolvers that turn logical pipe endpoints into transport
//     addresses;
//   - group-scoped broadcast discovery with advert caches; and
//   - rendezvous peers that cache advertisements and propagate queries to
//     other rendezvous peers, disseminating them across groups.
//
// The protocol logic is transport-agnostic and time-agnostic: it speaks
// through the Transport interface and schedules timeouts through the Clock
// interface, so the same peer code runs over TCP in real deployments and
// over the internal/netsim discrete-event simulator in the large-network
// experiments.
package p2ps

import (
	"crypto/rand"
	"fmt"
	"time"
)

// Namespace is the XML namespace of P2PS adverts and wire messages.
const Namespace = "http://wspeer.dev/p2ps"

// PeerID is a peer's logical identity.
type PeerID string

// NewPeerID generates a random 128-bit peer ID.
func NewPeerID() PeerID {
	return PeerID("peer-" + randomHex(16))
}

// NewPipeID generates a random pipe ID.
func NewPipeID() string {
	return "pipe-" + randomHex(12)
}

// NewAdvertID generates a random advertisement ID.
func NewAdvertID() string {
	return "adv-" + randomHex(12)
}

func randomHex(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic("p2ps: entropy source failed: " + err.Error())
	}
	return fmt.Sprintf("%x", b)
}

// Transport is the wire a peer is attached to. netsim endpoints and the TCP
// transport in this package both satisfy it.
type Transport interface {
	// Addr is this endpoint's transport address.
	Addr() string
	// Send transmits data to another transport address. Datagram
	// semantics: delivery is not guaranteed and no error is returned for
	// lost messages.
	Send(to string, data []byte) error
	// SetReceiver installs the delivery callback.
	SetReceiver(fn func(from string, data []byte))
	// Close detaches the endpoint.
	Close() error
}

// Clock schedules timeouts. netsim.Simulator provides a virtual-time
// implementation; RealClock wraps the runtime timer.
type Clock interface {
	// AfterFunc runs fn after d; the returned function cancels it.
	AfterFunc(d time.Duration, fn func()) (cancel func())
}

type realClock struct{}

// AfterFunc implements Clock using real timers.
func (realClock) AfterFunc(d time.Duration, fn func()) func() {
	t := time.AfterFunc(d, fn)
	return func() { t.Stop() }
}

// RealClock is the wall-clock Clock for live deployments.
var RealClock Clock = realClock{}

// EndpointResolver resolves a peer's logical ID to a transport address.
// The paper: "P2PS uses an EndpointResolver interface to represent a
// service that is capable of resolving certain endpoints."
type EndpointResolver interface {
	ResolveEndpoint(peer PeerID) (addr string, ok bool)
}
