package p2ps

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Config configures a peer.
type Config struct {
	// Name is a human-readable label.
	Name string
	// Group is the peer group ("default" when empty). Rendezvous peers
	// disseminate queries across groups; matching respects the query's
	// group constraint.
	Group string
	// Rendezvous makes this peer cache advertisements and propagate
	// queries to other rendezvous peers.
	Rendezvous bool
	// Transport attaches the peer to a network (required).
	Transport Transport
	// Clock schedules timeouts (RealClock when nil).
	Clock Clock
	// QueryTTL bounds query propagation across rendezvous hops (default 5).
	QueryTTL int
	// CacheSize bounds the advert cache.
	CacheSize int
	// DisableCache turns the rendezvous advert cache off: queries are
	// flooded to attached peers instead of answered from the cache. This
	// is the ablation knob for the discovery experiments.
	DisableCache bool
	// ReplicateAdverts makes a rendezvous forward adverts published by
	// its attached peers one hop to every other rendezvous it knows,
	// replicating the directory across the mesh. Queries are then
	// answerable at any entry rendezvous without propagation, spreading
	// query load across the mesh.
	ReplicateAdverts bool
	// AdvertTTL makes cached remote adverts expire after this lease
	// unless refreshed by a republish (0 = never expire). Leases are what
	// let the network forget services whose providers silently died.
	AdvertTTL time.Duration
	// RepublishInterval makes the peer push its local adverts to its home
	// rendezvous periodically, refreshing their leases (0 = publish
	// once). Note: in virtual-time simulations a republishing peer keeps
	// the event queue non-empty; drive such simulations with RunFor.
	RepublishInterval time.Duration
	// Seeds are transport addresses of rendezvous peers to attach to.
	Seeds []string
}

// PeerStats counts a peer's protocol activity.
type PeerStats struct {
	MessagesReceived int64
	MessagesSent     int64
	QueriesServed    int64 // queries answered with at least one match
	QueriesForwarded int64
	ResponsesSent    int64
	DataDelivered    int64
	DataDropped      int64 // data for unknown/closed pipes
}

// Peer is a P2PS peer: it publishes and discovers advertisements, owns
// pipes, and (when configured as a rendezvous) caches adverts and
// propagates queries.
type Peer struct {
	id        PeerID
	cfg       Config
	transport Transport
	clock     Clock

	mu           sync.Mutex
	localAdverts map[string]*ServiceAdvertisement
	cache        *AdvertCache
	pipes        map[string]*InputPipe
	knownPeers   map[PeerID]string // peer ID -> transport address
	children     map[PeerID]string // attached edge peers (rendezvous only)
	rdvAddrs     map[string]bool   // other rendezvous
	discoveries  map[string]*Discovery
	resolves     map[string]*ResolveOp
	seenQueries  map[string]bool
	seenOrder    []string
	leaseCancels map[string]func() // advert ID -> expiry-timer cancel
	closed       bool

	msgsIn       atomic.Int64
	msgsOut      atomic.Int64
	queriesSrv   atomic.Int64
	queriesFwd   atomic.Int64
	responsesOut atomic.Int64
	dataOK       atomic.Int64
	dataDrop     atomic.Int64
}

const seenQueryCap = 8192

// NewPeer creates a peer on the transport and announces it to the
// configured seed rendezvous.
func NewPeer(cfg Config) (*Peer, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("p2ps: config needs a Transport")
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock
	}
	if cfg.Group == "" {
		cfg.Group = "default"
	}
	if cfg.QueryTTL <= 0 {
		cfg.QueryTTL = 5
	}
	p := &Peer{
		id:           NewPeerID(),
		cfg:          cfg,
		transport:    cfg.Transport,
		clock:        cfg.Clock,
		localAdverts: make(map[string]*ServiceAdvertisement),
		cache:        NewAdvertCache(cfg.CacheSize),
		pipes:        make(map[string]*InputPipe),
		knownPeers:   make(map[PeerID]string),
		children:     make(map[PeerID]string),
		rdvAddrs:     make(map[string]bool),
		discoveries:  make(map[string]*Discovery),
		resolves:     make(map[string]*ResolveOp),
		seenQueries:  make(map[string]bool),
		leaseCancels: make(map[string]func()),
	}
	for _, s := range cfg.Seeds {
		if s != "" && s != p.transport.Addr() {
			p.rdvAddrs[s] = true
		}
	}
	p.transport.SetReceiver(p.onReceive)
	// Announce ourselves to the seeds.
	adv := p.Advertisement()
	for _, seed := range cfg.Seeds {
		p.send(seed, &message{
			Type:    msgAttach,
			From:    p.id,
			Addr:    p.transport.Addr(),
			Group:   cfg.Group,
			PeerAdv: adv,
		})
	}
	if cfg.RepublishInterval > 0 {
		p.scheduleRepublish()
	}
	return p, nil
}

// scheduleRepublish refreshes the peer's advert leases periodically.
func (p *Peer) scheduleRepublish() {
	p.clock.AfterFunc(p.cfg.RepublishInterval, func() {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return
		}
		adverts := make([]*ServiceAdvertisement, 0, len(p.localAdverts))
		for _, adv := range p.localAdverts {
			adverts = append(adverts, adv)
		}
		p.mu.Unlock()
		targets := p.seedTargets()
		for _, adv := range adverts {
			m := &message{
				Type:       msgPublish,
				From:       p.id,
				Addr:       p.transport.Addr(),
				Group:      adv.Group,
				ServiceAdv: adv,
			}
			for _, t := range targets {
				p.send(t, m)
			}
			if p.cfg.Rendezvous && !p.cfg.DisableCache {
				p.cacheWithLease(adv)
			}
		}
		p.scheduleRepublish()
	})
}

// cacheWithLease stores an advert and (re)arms its expiry timer.
func (p *Peer) cacheWithLease(adv *ServiceAdvertisement) {
	p.cache.Put(adv)
	if p.cfg.AdvertTTL <= 0 {
		return
	}
	id := adv.ID
	p.mu.Lock()
	if cancel := p.leaseCancels[id]; cancel != nil {
		cancel()
	}
	p.leaseCancels[id] = p.clock.AfterFunc(p.cfg.AdvertTTL, func() {
		p.cache.Remove(id)
		p.mu.Lock()
		delete(p.leaseCancels, id)
		p.mu.Unlock()
	})
	p.mu.Unlock()
}

// ID returns the peer's logical identity.
func (p *Peer) ID() PeerID { return p.id }

// Addr returns the peer's transport address.
func (p *Peer) Addr() string { return p.transport.Addr() }

// Group returns the peer's group name.
func (p *Peer) Group() string { return p.cfg.Group }

// IsRendezvous reports whether the peer acts as a rendezvous.
func (p *Peer) IsRendezvous() bool { return p.cfg.Rendezvous }

// Advertisement returns the peer's own PeerAdvertisement.
func (p *Peer) Advertisement() *PeerAdvertisement {
	return &PeerAdvertisement{
		ID:         p.id,
		Name:       p.cfg.Name,
		Addr:       p.transport.Addr(),
		Group:      p.cfg.Group,
		Rendezvous: p.cfg.Rendezvous,
	}
}

// Stats returns a snapshot of the peer's counters.
func (p *Peer) Stats() PeerStats {
	return PeerStats{
		MessagesReceived: p.msgsIn.Load(),
		MessagesSent:     p.msgsOut.Load(),
		QueriesServed:    p.queriesSrv.Load(),
		QueriesForwarded: p.queriesFwd.Load(),
		ResponsesSent:    p.responsesOut.Load(),
		DataDelivered:    p.dataOK.Load(),
		DataDropped:      p.dataDrop.Load(),
	}
}

// CacheLen reports how many remote adverts the peer has cached.
func (p *Peer) CacheLen() int { return p.cache.Len() }

// Close detaches the peer from the network.
func (p *Peer) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	return p.transport.Close()
}

func (p *Peer) send(to string, m *message) {
	p.msgsOut.Add(1)
	_ = p.transport.Send(to, m.encode()) // datagram semantics: drop errors
}

// ---------------------------------------------------------------------------
// Pipes

// CreateInputPipe allocates a named input pipe and returns it. Its
// advertisement can be published in a ServiceAdvertisement or serialized
// into a WS-Addressing ReplyTo header.
func (p *Peer) CreateInputPipe(name string) (*InputPipe, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, fmt.Errorf("p2ps: peer is closed")
	}
	pipe := &InputPipe{
		peer: p,
		adv:  PipeAdvertisement{ID: NewPipeID(), Name: name, Peer: p.id},
	}
	p.pipes[pipe.adv.ID] = pipe
	return pipe, nil
}

func (p *Peer) removePipe(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.pipes, id)
}

// OpenOutputPipe resolves a pipe advertisement to an output pipe using the
// peer's endpoint knowledge. Use ResolvePeer first if the owning peer's
// address is not yet known.
func (p *Peer) OpenOutputPipe(adv *PipeAdvertisement) (*OutputPipe, error) {
	addr, ok := p.ResolveEndpoint(adv.Peer)
	if !ok {
		return nil, fmt.Errorf("p2ps: cannot resolve peer %s (run ResolvePeer or discover its services first)", adv.Peer)
	}
	return &OutputPipe{peer: p, adv: *adv, addr: addr}, nil
}

// ResolveEndpoint implements EndpointResolver from local knowledge.
func (p *Peer) ResolveEndpoint(peer PeerID) (string, bool) {
	if peer == p.id {
		return p.transport.Addr(), true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	addr, ok := p.knownPeers[peer]
	return addr, ok
}

// ---------------------------------------------------------------------------
// Publish

// PublishService stores the advert locally and pushes it to the peer's
// rendezvous, which cache it for in-network discovery. Missing IDs and
// owner fields are filled in. The stored advert is returned.
func (p *Peer) PublishService(adv *ServiceAdvertisement) (*ServiceAdvertisement, error) {
	if adv.Name == "" {
		return nil, fmt.Errorf("p2ps: service advertisement needs a Name")
	}
	cp := *adv
	if cp.ID == "" {
		cp.ID = NewAdvertID()
	}
	if cp.Peer == "" {
		cp.Peer = p.id
	}
	if cp.Group == "" {
		cp.Group = p.cfg.Group
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, fmt.Errorf("p2ps: peer is closed")
	}
	p.localAdverts[cp.ID] = &cp
	p.mu.Unlock()
	targets := p.seedTargets()

	m := &message{
		Type:       msgPublish,
		From:       p.id,
		Addr:       p.transport.Addr(),
		Group:      cp.Group,
		ServiceAdv: &cp,
	}
	for _, t := range targets {
		p.send(t, m)
	}
	// A rendezvous also answers for its own services from its cache.
	if p.cfg.Rendezvous && !p.cfg.DisableCache {
		p.cacheWithLease(&cp)
	}
	return &cp, nil
}

// UnpublishService withdraws a local advert by ID.
func (p *Peer) UnpublishService(id string) bool {
	p.mu.Lock()
	_, ok := p.localAdverts[id]
	delete(p.localAdverts, id)
	p.mu.Unlock()
	targets := p.seedTargets()
	if !ok {
		return false
	}
	p.cache.Remove(id)
	m := &message{Type: msgUnpublish, From: p.id, Addr: p.transport.Addr(), Name: id}
	for _, t := range targets {
		p.send(t, m)
	}
	return true
}

// LocalAdverts returns the peer's own published adverts.
func (p *Peer) LocalAdverts() []*ServiceAdvertisement {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*ServiceAdvertisement, 0, len(p.localAdverts))
	for _, adv := range p.localAdverts {
		out = append(out, adv)
	}
	return out
}

// rdvTargetsLocked returns the rendezvous mesh addresses to propagate to,
// excluding one address (the sender a message came from). Callers hold p.mu.
func (p *Peer) rdvTargetsLocked(except string) []string {
	out := make([]string, 0, len(p.rdvAddrs))
	for a := range p.rdvAddrs {
		if a != except && a != p.transport.Addr() {
			out = append(out, a)
		}
	}
	return out
}

// originTargetsLocked returns where this peer enters queries and
// resolutions into the network: a rendezvous uses its whole mesh, an edge
// peer its home rendezvous. Callers hold p.mu.
func (p *Peer) originTargetsLocked() []string {
	if p.cfg.Rendezvous {
		return p.rdvTargetsLocked("")
	}
	return p.seedTargets()
}

// seedTargets returns the peer's home rendezvous: where it publishes
// adverts and enters queries into the network. Edge peers talk only to
// their seeds; the rendezvous mesh handles wider dissemination.
func (p *Peer) seedTargets() []string {
	out := make([]string, 0, len(p.cfg.Seeds))
	for _, a := range p.cfg.Seeds {
		if a != "" && a != p.transport.Addr() {
			out = append(out, a)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Discovery

// Discovery is an in-progress query: matches accumulate as responses
// arrive, and Done is closed when the timeout elapses or Cancel is called.
type Discovery struct {
	ID string

	mu      sync.Mutex
	matches []*ServiceAdvertisement
	seen    map[string]bool
	hops    map[string]int
	onMatch []func(*ServiceAdvertisement)
	done    chan struct{}
	closed  bool
	cancel  func()
}

// Hops returns how many rendezvous hops the query travelled before the
// advert's responder answered (0 for local and first-hop matches).
func (d *Discovery) Hops(advertID string) (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h, ok := d.hops[advertID]
	return h, ok
}

// MeanHops averages the hop counts over all matches.
func (d *Discovery) MeanHops() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.matches) == 0 {
		return 0
	}
	total := 0
	for _, adv := range d.matches {
		total += d.hops[adv.ID]
	}
	return float64(total) / float64(len(d.matches))
}

// Matches returns the adverts discovered so far.
func (d *Discovery) Matches() []*ServiceAdvertisement {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*ServiceAdvertisement(nil), d.matches...)
}

// OnMatch registers a callback invoked for every new match (including
// matches already received, replayed synchronously).
func (d *Discovery) OnMatch(fn func(*ServiceAdvertisement)) {
	d.mu.Lock()
	existing := append([]*ServiceAdvertisement(nil), d.matches...)
	d.onMatch = append(d.onMatch, fn)
	d.mu.Unlock()
	for _, adv := range existing {
		fn(adv)
	}
}

// Done is closed when the discovery finishes.
func (d *Discovery) Done() <-chan struct{} { return d.done }

// Cancel finishes the discovery immediately.
func (d *Discovery) Cancel() { d.finish() }

func (d *Discovery) finish() {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return
	}
	d.closed = true
	cancel := d.cancel
	d.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	close(d.done)
}

// setCancel installs the timeout-cancel function; if the discovery already
// finished (the timer fired before the assignment), the timer is cancelled
// immediately instead.
func (d *Discovery) setCancel(fn func()) {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		fn()
		return
	}
	d.cancel = fn
	d.mu.Unlock()
}

func (d *Discovery) add(adv *ServiceAdvertisement) { d.addWithHops(adv, 0) }

func (d *Discovery) addWithHops(adv *ServiceAdvertisement, hops int) {
	d.mu.Lock()
	if d.closed || d.seen[adv.ID] {
		d.mu.Unlock()
		return
	}
	d.seen[adv.ID] = true
	d.hops[adv.ID] = hops
	d.matches = append(d.matches, adv)
	fns := append([]func(*ServiceAdvertisement){}, d.onMatch...)
	d.mu.Unlock()
	for _, fn := range fns {
		fn(adv)
	}
}

// Discover broadcasts a query and returns a handle accumulating responses
// until the timeout. Local adverts and the local cache are matched
// immediately.
func (p *Peer) Discover(q Query, timeout time.Duration) *Discovery {
	_ = q.Prepare() // compile once; malformed expressions match nothing
	d := &Discovery{
		ID:   "q-" + randomHex(8),
		seen: make(map[string]bool),
		hops: make(map[string]int),
		done: make(chan struct{}),
	}
	d.setCancel(p.clock.AfterFunc(timeout, d.finish))

	p.mu.Lock()
	p.discoveries[d.ID] = d
	p.markQuerySeenLocked(d.ID)
	var local []*ServiceAdvertisement
	for _, adv := range p.localAdverts {
		if q.Matches(adv) {
			local = append(local, adv)
		}
	}
	targets := p.originTargetsLocked()
	p.mu.Unlock()

	for _, adv := range local {
		d.add(adv)
	}
	for _, adv := range p.cache.Match(q) {
		d.add(adv)
	}

	m := &message{
		Type:    msgQuery,
		From:    p.id,
		Addr:    p.transport.Addr(),
		Group:   q.Group,
		TTL:     p.cfg.QueryTTL,
		QueryID: d.ID,
		Name:    q.Name,
		Expr:    q.Expr,
		Attrs:   q.Attrs,
	}
	for _, t := range targets {
		p.send(t, m)
	}

	// Reap the handle when done so the map does not grow unboundedly.
	go func() {
		<-d.done
		p.mu.Lock()
		delete(p.discoveries, d.ID)
		p.mu.Unlock()
	}()
	return d
}

// DiscoverOne is a convenience wrapper returning the first match within the
// timeout, or nil.
func (p *Peer) DiscoverOne(q Query, timeout time.Duration) *ServiceAdvertisement {
	d := p.Discover(q, timeout)
	first := make(chan *ServiceAdvertisement, 1)
	d.OnMatch(func(adv *ServiceAdvertisement) {
		select {
		case first <- adv:
			d.Cancel()
		default:
		}
	})
	select {
	case adv := <-first:
		return adv
	case <-d.Done():
		select {
		case adv := <-first:
			return adv
		default:
		}
		if m := d.Matches(); len(m) > 0 {
			return m[0]
		}
		return nil
	}
}

func (p *Peer) markQuerySeenLocked(id string) bool {
	if p.seenQueries[id] {
		return false
	}
	p.seenQueries[id] = true
	p.seenOrder = append(p.seenOrder, id)
	if len(p.seenOrder) > seenQueryCap {
		old := p.seenOrder[0]
		p.seenOrder = p.seenOrder[1:]
		delete(p.seenQueries, old)
	}
	return true
}

// ---------------------------------------------------------------------------
// Resolution

// ResolveOp is an in-progress endpoint resolution.
type ResolveOp struct {
	Target PeerID

	mu     sync.Mutex
	addr   string
	ok     bool
	done   chan struct{}
	closed bool
	cancel func()
}

// Done is closed when the resolution finishes (successfully or not).
func (r *ResolveOp) Done() <-chan struct{} { return r.done }

// Result returns the resolved address, valid once Done is closed.
func (r *ResolveOp) Result() (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.addr, r.ok
}

func (r *ResolveOp) resolve(addr string) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.addr, r.ok, r.closed = addr, true, true
	cancel := r.cancel
	r.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	close(r.done)
}

func (r *ResolveOp) expire() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.done)
}

// setCancel installs the timeout-cancel function; if the resolution
// already finished, the timer is cancelled immediately instead.
func (r *ResolveOp) setCancel(fn func()) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		fn()
		return
	}
	r.cancel = fn
	r.mu.Unlock()
}

// ResolvePeer resolves a peer ID to a transport address, asking the
// rendezvous network if it is not locally known.
func (p *Peer) ResolvePeer(target PeerID, timeout time.Duration) *ResolveOp {
	op := &ResolveOp{Target: target, done: make(chan struct{})}
	if addr, ok := p.ResolveEndpoint(target); ok {
		op.resolve(addr)
		return op
	}
	qid := "r-" + randomHex(8)
	op.setCancel(p.clock.AfterFunc(timeout, op.expire))
	p.mu.Lock()
	p.resolves[qid] = op
	targets := p.originTargetsLocked()
	p.mu.Unlock()
	m := &message{
		Type:       msgResolve,
		From:       p.id,
		Addr:       p.transport.Addr(),
		TTL:        p.cfg.QueryTTL,
		QueryID:    qid,
		TargetPeer: target,
	}
	for _, t := range targets {
		p.send(t, m)
	}
	go func() {
		<-op.done
		p.mu.Lock()
		delete(p.resolves, qid)
		p.mu.Unlock()
	}()
	return op
}

// ---------------------------------------------------------------------------
// Message handling

func (p *Peer) onReceive(from string, data []byte) {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return
	}
	m, err := decodeMessage(data)
	if err != nil {
		return // malformed datagrams are dropped
	}
	p.msgsIn.Add(1)
	switch m.Type {
	case msgAttach:
		p.handleAttach(m)
	case msgAttachResponse:
		p.handleAttachResponse(m)
	case msgPublish:
		p.handlePublish(m)
	case msgUnpublish:
		p.handleUnpublish(m)
	case msgQuery:
		p.handleQuery(from, m)
	case msgQueryResponse:
		p.handleQueryResponse(m)
	case msgResolve:
		p.handleResolve(m)
	case msgResolveResponse:
		p.handleResolveResponse(m)
	case msgData:
		p.handleData(m)
	}
}

func (p *Peer) learnPeerLocked(id PeerID, addr string) {
	if id != "" && addr != "" && id != p.id {
		p.knownPeers[id] = addr
	}
}

func (p *Peer) handleAttach(m *message) {
	p.mu.Lock()
	p.learnPeerLocked(m.From, m.Addr)
	if m.PeerAdv != nil && m.PeerAdv.Rendezvous {
		if m.Addr != p.transport.Addr() {
			p.rdvAddrs[m.Addr] = true
		}
	} else {
		p.children[m.From] = m.Addr
	}
	gossip := p.rdvTargetsLocked(m.Addr)
	p.mu.Unlock()
	p.send(m.Addr, &message{
		Type:     msgAttachResponse,
		From:     p.id,
		Addr:     p.transport.Addr(),
		Group:    p.cfg.Group,
		PeerAdv:  p.Advertisement(),
		RdvAddrs: gossip,
	})
}

func (p *Peer) handleAttachResponse(m *message) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.learnPeerLocked(m.From, m.Addr)
	if m.PeerAdv != nil && m.PeerAdv.Rendezvous && m.Addr != p.transport.Addr() {
		p.rdvAddrs[m.Addr] = true
	}
	for _, a := range m.RdvAddrs {
		if a != "" && a != p.transport.Addr() {
			p.rdvAddrs[a] = true
		}
	}
}

func (p *Peer) handlePublish(m *message) {
	if m.ServiceAdv == nil {
		return
	}
	p.mu.Lock()
	p.learnPeerLocked(m.From, m.Addr)
	p.learnPeerLocked(m.ServiceAdv.Peer, m.Addr)
	var fwd []string
	if p.cfg.Rendezvous && p.cfg.ReplicateAdverts && !p.cfg.DisableCache && m.Hops == 0 {
		// Replicate the directory entry one hop across the mesh; a
		// non-zero hop count marks a replica that must not re-propagate.
		fwd = p.rdvTargetsLocked(m.Addr)
	}
	p.mu.Unlock()
	if p.cfg.Rendezvous && !p.cfg.DisableCache {
		p.cacheWithLease(m.ServiceAdv)
	}
	if len(fwd) > 0 {
		replica := *m
		replica.Hops = m.Hops + 1
		for _, t := range fwd {
			p.send(t, &replica)
		}
	}
}

func (p *Peer) handleUnpublish(m *message) {
	if m.Name == "" {
		return
	}
	removed := p.cache.Remove(m.Name)
	p.mu.Lock()
	if cancel := p.leaseCancels[m.Name]; cancel != nil {
		cancel()
		delete(p.leaseCancels, m.Name)
	}
	p.mu.Unlock()
	if !removed || !p.cfg.Rendezvous || !p.cfg.ReplicateAdverts || m.Hops != 0 {
		return
	}
	p.mu.Lock()
	fwd := p.rdvTargetsLocked(m.Addr)
	p.mu.Unlock()
	replica := *m
	replica.Hops = 1
	for _, t := range fwd {
		p.send(t, &replica)
	}
}

func (p *Peer) handleQuery(sender string, m *message) {
	p.mu.Lock()
	if !p.markQuerySeenLocked(m.QueryID) {
		p.mu.Unlock()
		return // propagation loop or duplicate
	}
	p.learnPeerLocked(m.From, m.Addr)
	q := Query{Name: m.Name, Attrs: m.Attrs, Group: m.Group, Expr: m.Expr}
	_ = q.Prepare() // malformed expressions simply match nothing
	var matches []*ServiceAdvertisement
	for _, adv := range p.localAdverts {
		if q.Matches(adv) {
			matches = append(matches, adv)
		}
	}
	p.mu.Unlock()

	if !p.cfg.DisableCache {
		for _, adv := range p.cache.Match(q) {
			dup := false
			for _, m2 := range matches {
				if m2.ID == adv.ID {
					dup = true
					break
				}
			}
			if !dup {
				matches = append(matches, adv)
			}
		}
	}

	if len(matches) > 0 {
		p.queriesSrv.Add(1)
	}
	for _, adv := range matches {
		resolved := ""
		if adv.Peer == p.id {
			resolved = p.transport.Addr()
		} else if addr, ok := p.ResolveEndpoint(adv.Peer); ok {
			resolved = addr
		}
		p.responsesOut.Add(1)
		p.send(m.Addr, &message{
			Type:         msgQueryResponse,
			From:         p.id,
			Addr:         p.transport.Addr(),
			QueryID:      m.QueryID,
			Hops:         m.Hops,
			ServiceAdv:   adv,
			ResolvedAddr: resolved,
		})
	}

	// Propagate across the rendezvous mesh while TTL remains.
	if p.cfg.Rendezvous && m.TTL > 1 {
		fwd := *m
		fwd.TTL = m.TTL - 1
		fwd.Hops = m.Hops + 1
		p.mu.Lock()
		targets := p.rdvTargetsLocked(sender)
		var flood []string
		if p.cfg.DisableCache {
			for id, addr := range p.children {
				if id != m.From && addr != sender {
					flood = append(flood, addr)
				}
			}
		}
		p.mu.Unlock()
		for _, t := range targets {
			p.queriesFwd.Add(1)
			p.send(t, &fwd)
		}
		for _, t := range flood {
			p.queriesFwd.Add(1)
			p.send(t, &fwd)
		}
	}
}

func (p *Peer) handleQueryResponse(m *message) {
	if m.ServiceAdv == nil {
		return
	}
	p.mu.Lock()
	p.learnPeerLocked(m.From, m.Addr)
	if m.ResolvedAddr != "" {
		p.learnPeerLocked(m.ServiceAdv.Peer, m.ResolvedAddr)
	}
	d := p.discoveries[m.QueryID]
	p.mu.Unlock()
	if d != nil {
		d.addWithHops(m.ServiceAdv, m.Hops)
	}
}

func (p *Peer) handleResolve(m *message) {
	p.mu.Lock()
	if !p.markQuerySeenLocked(m.QueryID) {
		p.mu.Unlock()
		return
	}
	p.learnPeerLocked(m.From, m.Addr)
	p.mu.Unlock()

	var resolved string
	if m.TargetPeer == p.id {
		resolved = p.transport.Addr()
	} else if addr, ok := p.ResolveEndpoint(m.TargetPeer); ok {
		resolved = addr
	}
	if resolved != "" {
		p.send(m.Addr, &message{
			Type:         msgResolveResponse,
			From:         p.id,
			Addr:         p.transport.Addr(),
			QueryID:      m.QueryID,
			TargetPeer:   m.TargetPeer,
			ResolvedAddr: resolved,
		})
		return
	}
	if p.cfg.Rendezvous && m.TTL > 1 {
		fwd := *m
		fwd.TTL = m.TTL - 1
		fwd.Hops = m.Hops + 1
		p.mu.Lock()
		targets := p.rdvTargetsLocked("")
		p.mu.Unlock()
		for _, t := range targets {
			p.send(t, &fwd)
		}
	}
}

func (p *Peer) handleResolveResponse(m *message) {
	p.mu.Lock()
	p.learnPeerLocked(m.From, m.Addr)
	p.learnPeerLocked(m.TargetPeer, m.ResolvedAddr)
	op := p.resolves[m.QueryID]
	p.mu.Unlock()
	if op != nil && m.ResolvedAddr != "" {
		op.resolve(m.ResolvedAddr)
	}
}

func (p *Peer) handleData(m *message) {
	p.mu.Lock()
	p.learnPeerLocked(m.From, m.Addr)
	pipe := p.pipes[m.PipeID]
	p.mu.Unlock()
	if pipe == nil {
		p.dataDrop.Add(1)
		return
	}
	p.dataOK.Add(1)
	pipe.deliver(m.From, m.Data)
}
