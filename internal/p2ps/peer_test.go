package p2ps

import (
	"fmt"
	"testing"
	"time"

	"wspeer/internal/netsim"
)

// rig is a simulated overlay for protocol tests.
type rig struct {
	t   *testing.T
	sim *netsim.Simulator
	n   int
}

func newRig(t *testing.T, seed int64) *rig {
	t.Helper()
	sim := netsim.New(seed)
	sim.SetDefaultLink(netsim.Link{Latency: 5 * time.Millisecond})
	return &rig{t: t, sim: sim}
}

func (r *rig) peer(cfg Config) *Peer {
	r.t.Helper()
	r.n++
	ep, err := r.sim.NewEndpoint(fmt.Sprintf("n%d", r.n))
	if err != nil {
		r.t.Fatal(err)
	}
	cfg.Transport = ep
	cfg.Clock = r.sim
	p, err := NewPeer(cfg)
	if err != nil {
		r.t.Fatal(err)
	}
	return p
}

// settle processes all outstanding events.
func (r *rig) settle() { r.sim.Run(0) }

func TestNewPeerValidation(t *testing.T) {
	if _, err := NewPeer(Config{}); err == nil {
		t.Fatal("missing transport accepted")
	}
}

func TestAttachAndGossip(t *testing.T) {
	r := newRig(t, 1)
	rdv1 := r.peer(Config{Name: "rdv1", Rendezvous: true})
	rdv2 := r.peer(Config{Name: "rdv2", Rendezvous: true, Seeds: []string{rdv1.Addr()}})
	r.settle()
	// Edge attaches to rdv2 only; gossip should teach it about rdv1.
	edge := r.peer(Config{Name: "edge", Seeds: []string{rdv2.Addr()}})
	r.settle()

	if _, ok := edge.ResolveEndpoint(rdv2.ID()); !ok {
		t.Fatal("edge did not learn rdv2's address")
	}
	edge.mu.Lock()
	nRdv := len(edge.rdvAddrs)
	edge.mu.Unlock()
	if nRdv != 2 {
		t.Fatalf("edge knows %d rendezvous, want 2 (seed + gossip)", nRdv)
	}
	if !rdv2.IsRendezvous() || edge.IsRendezvous() {
		t.Fatal("rendezvous flags")
	}
	// rdv1 learned about rdv2 through the attach.
	rdv1.mu.Lock()
	n1 := len(rdv1.rdvAddrs)
	rdv1.mu.Unlock()
	if n1 != 1 {
		t.Fatalf("rdv1 knows %d rendezvous, want 1", n1)
	}
}

func TestPublishAndCachedDiscovery(t *testing.T) {
	r := newRig(t, 2)
	rdv := r.peer(Config{Name: "rdv", Rendezvous: true})
	provider := r.peer(Config{Name: "prov", Seeds: []string{rdv.Addr()}})
	consumer := r.peer(Config{Name: "cons", Seeds: []string{rdv.Addr()}})
	r.settle()

	adv, err := provider.PublishService(&ServiceAdvertisement{
		Name:  "EchoService",
		Attrs: map[string]string{"kind": "echo"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if adv.ID == "" || adv.Peer != provider.ID() || adv.Group != "default" {
		t.Fatalf("publish fill-in: %+v", adv)
	}
	r.settle()
	if rdv.CacheLen() != 1 {
		t.Fatalf("rendezvous cache = %d", rdv.CacheLen())
	}

	d := consumer.Discover(Query{Name: "EchoService"}, time.Second)
	r.settle()
	select {
	case <-d.Done():
	default:
		t.Fatal("discovery not finished after timeout event")
	}
	matches := d.Matches()
	if len(matches) != 1 || matches[0].ID != adv.ID {
		t.Fatalf("matches = %+v", matches)
	}
	// The response taught the consumer the provider's address.
	if addr, ok := consumer.ResolveEndpoint(provider.ID()); !ok || addr != provider.Addr() {
		t.Fatalf("provider addr = %q, %v", addr, ok)
	}
	if rdv.Stats().QueriesServed != 1 {
		t.Fatalf("rdv stats: %+v", rdv.Stats())
	}
}

func TestDiscoveryAcrossRendezvousMesh(t *testing.T) {
	r := newRig(t, 3)
	rdv1 := r.peer(Config{Name: "rdv1", Rendezvous: true})
	rdv2 := r.peer(Config{Name: "rdv2", Rendezvous: true, Seeds: []string{rdv1.Addr()}})
	rdv3 := r.peer(Config{Name: "rdv3", Rendezvous: true, Seeds: []string{rdv2.Addr()}})
	r.settle()
	provider := r.peer(Config{Seeds: []string{rdv3.Addr()}})
	consumer := r.peer(Config{Seeds: []string{rdv1.Addr()}})
	r.settle()

	if _, err := provider.PublishService(&ServiceAdvertisement{Name: "FarService"}); err != nil {
		t.Fatal(err)
	}
	r.settle()

	d := consumer.Discover(Query{Name: "FarService"}, time.Second)
	r.settle()
	if len(d.Matches()) != 1 {
		t.Fatalf("cross-mesh discovery found %d", len(d.Matches()))
	}
}

func TestQueryTTLLimitsPropagation(t *testing.T) {
	r := newRig(t, 4)
	// Chain of 4 rendezvous; TTL 2 lets a query reach only the second.
	rdvs := make([]*Peer, 4)
	var prev string
	for i := range rdvs {
		seeds := []string{}
		if prev != "" {
			seeds = append(seeds, prev)
		}
		rdvs[i] = r.peer(Config{Name: fmt.Sprintf("rdv%d", i), Rendezvous: true, Seeds: seeds})
		r.settle()
		prev = rdvs[i].Addr()
	}
	// Neutralize gossip shortcuts: the chain must stay a chain for this
	// test, so attach each rendezvous knowing only its predecessor.
	// (Gossip may have added more links; measure what actually happens.)
	provider := r.peer(Config{Seeds: []string{rdvs[3].Addr()}})
	consumer := r.peer(Config{Seeds: []string{rdvs[0].Addr()}, QueryTTL: 1})
	r.settle()
	if _, err := provider.PublishService(&ServiceAdvertisement{Name: "Deep"}); err != nil {
		t.Fatal(err)
	}
	r.settle()

	// TTL 1: the query reaches rdv0 and is not forwarded.
	d := consumer.Discover(Query{Name: "Deep"}, time.Second)
	r.settle()
	if len(d.Matches()) != 0 {
		t.Fatalf("TTL-1 query should not reach a cache 4 hops away, got %d", len(d.Matches()))
	}
	if rdvs[0].Stats().QueriesForwarded != 0 {
		t.Fatalf("rdv0 forwarded despite TTL: %+v", rdvs[0].Stats())
	}
}

func TestQueryLoopSuppression(t *testing.T) {
	r := newRig(t, 5)
	// Triangle of rendezvous.
	a := r.peer(Config{Name: "a", Rendezvous: true})
	b := r.peer(Config{Name: "b", Rendezvous: true, Seeds: []string{a.Addr()}})
	c := r.peer(Config{Name: "c", Rendezvous: true, Seeds: []string{a.Addr(), b.Addr()}})
	r.settle()
	provider := r.peer(Config{Seeds: []string{c.Addr()}})
	consumer := r.peer(Config{Seeds: []string{a.Addr()}})
	r.settle()
	if _, err := provider.PublishService(&ServiceAdvertisement{Name: "Tri"}); err != nil {
		t.Fatal(err)
	}
	r.settle()

	d := consumer.Discover(Query{Name: "Tri"}, time.Second)
	n := r.sim.Run(0)
	if len(d.Matches()) != 1 {
		t.Fatalf("matches = %d", len(d.Matches()))
	}
	// Loop suppression keeps the event count finite and small.
	if n > 100 {
		t.Fatalf("suspiciously many events for a triangle: %d", n)
	}
}

func TestLocalMatchIsImmediate(t *testing.T) {
	r := newRig(t, 6)
	p := r.peer(Config{})
	if _, err := p.PublishService(&ServiceAdvertisement{Name: "Mine"}); err != nil {
		t.Fatal(err)
	}
	d := p.Discover(Query{Name: "Mine"}, time.Second)
	// No sim.Run needed: local adverts match synchronously.
	if len(d.Matches()) != 1 {
		t.Fatalf("local match = %d", len(d.Matches()))
	}
}

func TestDiscoverOne(t *testing.T) {
	r := newRig(t, 7)
	rdv := r.peer(Config{Rendezvous: true})
	provider := r.peer(Config{Seeds: []string{rdv.Addr()}})
	consumer := r.peer(Config{Seeds: []string{rdv.Addr()}})
	r.settle()
	provider.PublishService(&ServiceAdvertisement{Name: "One"})
	r.settle()

	got := make(chan *ServiceAdvertisement, 1)
	go func() { got <- consumer.DiscoverOne(Query{Name: "One"}, time.Second) }()
	// Drive the sim until the goroutine observes a match or timeout.
	deadline := time.After(5 * time.Second)
	for {
		r.settle()
		select {
		case adv := <-got:
			if adv == nil || adv.Name != "One" {
				t.Fatalf("DiscoverOne = %+v", adv)
			}
			return
		case <-deadline:
			t.Fatal("DiscoverOne never returned")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestUnpublish(t *testing.T) {
	r := newRig(t, 8)
	rdv := r.peer(Config{Rendezvous: true})
	provider := r.peer(Config{Seeds: []string{rdv.Addr()}})
	consumer := r.peer(Config{Seeds: []string{rdv.Addr()}})
	r.settle()
	adv, _ := provider.PublishService(&ServiceAdvertisement{Name: "Gone"})
	r.settle()
	if !provider.UnpublishService(adv.ID) {
		t.Fatal("unpublish")
	}
	if provider.UnpublishService(adv.ID) {
		t.Fatal("double unpublish")
	}
	r.settle()
	if rdv.CacheLen() != 0 {
		t.Fatalf("advert lingers in rendezvous cache: %d", rdv.CacheLen())
	}
	d := consumer.Discover(Query{Name: "Gone"}, time.Second)
	r.settle()
	if len(d.Matches()) != 0 {
		t.Fatal("unpublished service still discoverable")
	}
	if len(provider.LocalAdverts()) != 0 {
		t.Fatal("local advert lingers")
	}
}

func TestPipesEndToEnd(t *testing.T) {
	r := newRig(t, 9)
	rdv := r.peer(Config{Rendezvous: true})
	provider := r.peer(Config{Seeds: []string{rdv.Addr()}})
	consumer := r.peer(Config{Seeds: []string{rdv.Addr()}})
	r.settle()

	// Provider: input pipe advertised within a service.
	in, err := provider.CreateInputPipe("requests")
	if err != nil {
		t.Fatal(err)
	}
	var gotData []byte
	var gotFrom PeerID
	in.AddListener(func(from PeerID, data []byte) { gotFrom, gotData = from, data })
	provider.PublishService(&ServiceAdvertisement{
		Name:  "PipeService",
		Pipes: []PipeAdvertisement{*in.Advertisement()},
	})
	r.settle()

	// Consumer: discover, open output pipe, send.
	d := consumer.Discover(Query{Name: "PipeService"}, time.Second)
	r.settle()
	matches := d.Matches()
	if len(matches) != 1 {
		t.Fatalf("matches = %d", len(matches))
	}
	pipeAdv := matches[0].Pipe("requests")
	if pipeAdv == nil {
		t.Fatal("pipe advert missing from service advert")
	}
	out, err := consumer.OpenOutputPipe(pipeAdv)
	if err != nil {
		t.Fatal(err)
	}
	if out.RemoteAddr() != provider.Addr() {
		t.Fatalf("resolved addr = %q", out.RemoteAddr())
	}
	if err := out.Send([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	r.settle()
	if string(gotData) != "payload" || gotFrom != consumer.ID() {
		t.Fatalf("delivery: %q from %s", gotData, gotFrom)
	}
	if provider.Stats().DataDelivered != 1 {
		t.Fatalf("stats: %+v", provider.Stats())
	}

	// Closed pipes drop data.
	in.Close()
	out.Send([]byte("late"))
	r.settle()
	if provider.Stats().DataDropped != 1 {
		t.Fatalf("drop stats: %+v", provider.Stats())
	}
}

func TestOpenOutputPipeUnresolved(t *testing.T) {
	r := newRig(t, 10)
	p := r.peer(Config{})
	_, err := p.OpenOutputPipe(&PipeAdvertisement{ID: "x", Name: "n", Peer: "peer-unknown"})
	if err == nil {
		t.Fatal("unresolvable pipe accepted")
	}
	// Own pipes resolve to self.
	in, _ := p.CreateInputPipe("self")
	out, err := p.OpenOutputPipe(in.Advertisement())
	if err != nil || out.RemoteAddr() != p.Addr() {
		t.Fatalf("self pipe: %v", err)
	}
}

func TestResolvePeer(t *testing.T) {
	r := newRig(t, 11)
	rdv := r.peer(Config{Rendezvous: true})
	target := r.peer(Config{Seeds: []string{rdv.Addr()}})
	asker := r.peer(Config{Seeds: []string{rdv.Addr()}})
	r.settle()

	op := asker.ResolvePeer(target.ID(), time.Second)
	r.settle()
	select {
	case <-op.Done():
	default:
		t.Fatal("resolve did not finish")
	}
	addr, ok := op.Result()
	if !ok || addr != target.Addr() {
		t.Fatalf("resolved = %q, %v", addr, ok)
	}

	// Unknown peers expire without a result.
	op = asker.ResolvePeer(PeerID("peer-nonexistent"), time.Second)
	r.settle()
	if _, ok := op.Result(); ok {
		t.Fatal("resolved a nonexistent peer")
	}

	// Already-known peers resolve immediately.
	op = asker.ResolvePeer(target.ID(), time.Second)
	if _, ok := op.Result(); !ok {
		t.Fatal("cached resolution not immediate")
	}
}

func TestFloodModeWithoutCache(t *testing.T) {
	r := newRig(t, 12)
	rdv := r.peer(Config{Rendezvous: true, DisableCache: true})
	provider := r.peer(Config{Seeds: []string{rdv.Addr()}})
	consumer := r.peer(Config{Seeds: []string{rdv.Addr()}})
	r.settle()
	provider.PublishService(&ServiceAdvertisement{Name: "Flooded"})
	r.settle()
	if rdv.CacheLen() != 0 {
		t.Fatal("cache-disabled rendezvous cached anyway")
	}

	d := consumer.Discover(Query{Name: "Flooded"}, time.Second)
	r.settle()
	if len(d.Matches()) != 1 {
		t.Fatalf("flood discovery = %d", len(d.Matches()))
	}
	// The provider itself answered.
	if provider.Stats().QueriesServed != 1 {
		t.Fatalf("provider stats: %+v", provider.Stats())
	}
}

func TestGroupScoping(t *testing.T) {
	r := newRig(t, 13)
	rdv := r.peer(Config{Rendezvous: true})
	gridProv := r.peer(Config{Group: "grid", Seeds: []string{rdv.Addr()}})
	p2pProv := r.peer(Config{Group: "p2p", Seeds: []string{rdv.Addr()}})
	consumer := r.peer(Config{Group: "grid", Seeds: []string{rdv.Addr()}})
	r.settle()
	gridProv.PublishService(&ServiceAdvertisement{Name: "Svc"})
	p2pProv.PublishService(&ServiceAdvertisement{Name: "Svc"})
	r.settle()

	d := consumer.Discover(Query{Name: "Svc", Group: "grid"}, time.Second)
	r.settle()
	matches := d.Matches()
	if len(matches) != 1 || matches[0].Group != "grid" {
		t.Fatalf("group-scoped matches = %+v", matches)
	}
	// Ungrouped query sees both (dissemination across groups).
	d = consumer.Discover(Query{Name: "Svc"}, time.Second)
	r.settle()
	if len(d.Matches()) != 2 {
		t.Fatalf("ungrouped matches = %d", len(d.Matches()))
	}
}

func TestDiscoveryCancel(t *testing.T) {
	r := newRig(t, 14)
	p := r.peer(Config{})
	d := p.Discover(Query{Name: "X"}, time.Hour)
	d.Cancel()
	select {
	case <-d.Done():
	default:
		t.Fatal("cancel did not close Done")
	}
	d.Cancel() // idempotent
}

func TestOnMatchReplay(t *testing.T) {
	r := newRig(t, 15)
	p := r.peer(Config{})
	p.PublishService(&ServiceAdvertisement{Name: "Replay"})
	d := p.Discover(Query{Name: "Replay"}, time.Second)
	var got []*ServiceAdvertisement
	d.OnMatch(func(adv *ServiceAdvertisement) { got = append(got, adv) })
	if len(got) != 1 {
		t.Fatalf("late OnMatch not replayed: %d", len(got))
	}
}

func TestClosedPeerRefusesWork(t *testing.T) {
	r := newRig(t, 16)
	p := r.peer(Config{})
	p.Close()
	if _, err := p.CreateInputPipe("x"); err == nil {
		t.Fatal("pipe on closed peer")
	}
	if _, err := p.PublishService(&ServiceAdvertisement{Name: "x"}); err == nil {
		t.Fatal("publish on closed peer")
	}
}

func TestPublishValidation(t *testing.T) {
	r := newRig(t, 17)
	p := r.peer(Config{})
	if _, err := p.PublishService(&ServiceAdvertisement{}); err == nil {
		t.Fatal("nameless advert accepted")
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	// The same protocol over real TCP and the real clock.
	mk := func(seeds ...string) (*Peer, func()) {
		tr, err := NewTCPTransport("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Transport: tr, Seeds: seeds}
		if len(seeds) == 0 {
			cfg.Rendezvous = true
		}
		p, err := NewPeer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return p, func() { p.Close() }
	}
	rdv, closeRdv := mk()
	defer closeRdv()
	provider, closeProv := mk(rdv.Addr())
	defer closeProv()
	consumer, closeCons := mk(rdv.Addr())
	defer closeCons()

	in, err := provider.CreateInputPipe("req")
	if err != nil {
		t.Fatal(err)
	}
	delivered := make(chan []byte, 1)
	in.AddListener(func(_ PeerID, data []byte) { delivered <- data })
	if _, err := provider.PublishService(&ServiceAdvertisement{
		Name:  "TCPEcho",
		Pipes: []PipeAdvertisement{*in.Advertisement()},
	}); err != nil {
		t.Fatal(err)
	}

	// Give publish a moment to land, then discover with a real deadline.
	var adv *ServiceAdvertisement
	for attempt := 0; attempt < 20 && adv == nil; attempt++ {
		adv = consumer.DiscoverOne(Query{Name: "TCPEcho"}, 250*time.Millisecond)
	}
	if adv == nil {
		t.Fatal("TCP discovery failed")
	}
	out, err := consumer.OpenOutputPipe(adv.Pipe("req"))
	if err != nil {
		t.Fatal(err)
	}
	if err := out.Send([]byte("over tcp")); err != nil {
		t.Fatal(err)
	}
	select {
	case data := <-delivered:
		if string(data) != "over tcp" {
			t.Fatalf("data = %q", data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipe data never arrived over TCP")
	}
}

func TestAdvertLeaseExpiry(t *testing.T) {
	r := newRig(t, 20)
	// Rendezvous with a 500ms lease on cached adverts.
	ep, err := r.sim.NewEndpoint("rdv-lease")
	if err != nil {
		t.Fatal(err)
	}
	rdv, err := NewPeer(Config{
		Rendezvous: true, Transport: ep, Clock: r.sim,
		AdvertTTL: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	provider := r.peer(Config{Seeds: []string{rdv.Addr()}})
	consumer := r.peer(Config{Seeds: []string{rdv.Addr()}})
	// Time-bounded runs: a full settle would also fire the lease expiry.
	r.sim.RunFor(50 * time.Millisecond)

	if _, err := provider.PublishService(&ServiceAdvertisement{Name: "Leased"}); err != nil {
		t.Fatal(err)
	}
	r.sim.RunFor(100 * time.Millisecond)
	if rdv.CacheLen() != 1 {
		t.Fatalf("cache = %d", rdv.CacheLen())
	}

	// Before the lease expires the service is discoverable.
	d := consumer.Discover(Query{Name: "Leased"}, 100*time.Millisecond)
	r.sim.RunFor(200 * time.Millisecond)
	if len(d.Matches()) != 1 {
		t.Fatal("not discoverable before expiry")
	}

	// After the lease expires (no republish) the advert is gone.
	r.sim.RunFor(time.Second)
	if rdv.CacheLen() != 0 {
		t.Fatalf("advert outlived its lease: cache = %d", rdv.CacheLen())
	}
	d = consumer.Discover(Query{Name: "Leased"}, 100*time.Millisecond)
	r.sim.RunFor(200 * time.Millisecond)
	if len(d.Matches()) != 0 {
		t.Fatal("expired advert still discoverable")
	}
}

func TestRepublishRefreshesLease(t *testing.T) {
	r := newRig(t, 21)
	ep, err := r.sim.NewEndpoint("rdv-lease2")
	if err != nil {
		t.Fatal(err)
	}
	rdv, err := NewPeer(Config{
		Rendezvous: true, Transport: ep, Clock: r.sim,
		AdvertTTL: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Publisher refreshes its adverts every 200ms, well inside the lease.
	ep2, err := r.sim.NewEndpoint("prov-lease2")
	if err != nil {
		t.Fatal(err)
	}
	provider, err := NewPeer(Config{
		Transport: ep2, Clock: r.sim,
		Seeds:             []string{rdv.Addr()},
		RepublishInterval: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.sim.RunFor(50 * time.Millisecond)
	if _, err := provider.PublishService(&ServiceAdvertisement{Name: "Refreshed"}); err != nil {
		t.Fatal(err)
	}
	// Run several lease periods: the advert must persist because of the
	// republish heartbeats.
	r.sim.RunFor(3 * time.Second)
	if rdv.CacheLen() != 1 {
		t.Fatalf("republished advert was dropped: cache = %d", rdv.CacheLen())
	}
	// Stop the provider: heartbeats cease, the lease runs out.
	provider.Close()
	r.sim.RunFor(3 * time.Second)
	if rdv.CacheLen() != 0 {
		t.Fatalf("dead provider's advert survived: cache = %d", rdv.CacheLen())
	}
}

func TestUnpublishCancelsLease(t *testing.T) {
	r := newRig(t, 22)
	ep, err := r.sim.NewEndpoint("rdv-lease3")
	if err != nil {
		t.Fatal(err)
	}
	rdv, err := NewPeer(Config{
		Rendezvous: true, Transport: ep, Clock: r.sim,
		AdvertTTL: time.Hour, // would outlive the test if leaked
	})
	if err != nil {
		t.Fatal(err)
	}
	provider := r.peer(Config{Seeds: []string{rdv.Addr()}})
	r.settle()
	adv, err := provider.PublishService(&ServiceAdvertisement{Name: "Gone"})
	if err != nil {
		t.Fatal(err)
	}
	r.settle()
	provider.UnpublishService(adv.ID)
	r.settle()
	if rdv.CacheLen() != 0 {
		t.Fatal("unpublish left the advert cached")
	}
	rdv.mu.Lock()
	leaks := len(rdv.leaseCancels)
	rdv.mu.Unlock()
	if leaks != 0 {
		t.Fatalf("%d lease timers leaked", leaks)
	}
}

func TestExprQueryDiscovery(t *testing.T) {
	r := newRig(t, 23)
	rdv := r.peer(Config{Rendezvous: true})
	provider := r.peer(Config{Seeds: []string{rdv.Addr()}})
	consumer := r.peer(Config{Seeds: []string{rdv.Addr()}})
	r.settle()
	provider.PublishService(&ServiceAdvertisement{
		Name:  "Market-A",
		Attrs: map[string]string{"kind": "market", "price": "0.4"},
	})
	provider.PublishService(&ServiceAdvertisement{
		Name:  "Market-B",
		Attrs: map[string]string{"kind": "market", "price": "2.0"},
	})
	r.settle()

	d := consumer.Discover(Query{Expr: `attr(kind) = 'market' and attr(price) < 1`}, time.Second)
	r.settle()
	matches := d.Matches()
	if len(matches) != 1 || matches[0].Name != "Market-A" {
		t.Fatalf("expr matches = %+v", matches)
	}

	// Name pattern and expression combine (AND).
	d = consumer.Discover(Query{Name: "Market-B", Expr: `attr(kind) = 'market'`}, time.Second)
	r.settle()
	if len(d.Matches()) != 1 || d.Matches()[0].Name != "Market-B" {
		t.Fatalf("combined matches = %+v", d.Matches())
	}

	// Malformed expressions fail closed: no matches, no crash.
	d = consumer.Discover(Query{Expr: `=`}, time.Second)
	r.settle()
	if len(d.Matches()) != 0 {
		t.Fatal("malformed expression matched")
	}
}
