package p2ps

import (
	"fmt"
	"sync"
)

// PipeListener is notified when data arrives on an input pipe ("The data is
// retrieved from a pipe by adding an entity as listener to the pipe").
type PipeListener func(from PeerID, data []byte)

// InputPipe receives data addressed to one of this peer's pipe IDs. Pipes
// are unidirectional: an InputPipe only receives.
type InputPipe struct {
	peer *Peer
	adv  PipeAdvertisement

	mu        sync.Mutex
	listeners []PipeListener
	closed    bool
}

// Advertisement returns a copy of the pipe's advertisement, suitable for
// publishing or serializing into a WS-Addressing EndpointReference.
func (p *InputPipe) Advertisement() *PipeAdvertisement {
	adv := p.adv
	return &adv
}

// ID returns the pipe's unique ID.
func (p *InputPipe) ID() string { return p.adv.ID }

// Name returns the pipe's name.
func (p *InputPipe) Name() string { return p.adv.Name }

// AddListener registers a delivery callback.
func (p *InputPipe) AddListener(l PipeListener) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.listeners = append(p.listeners, l)
}

// Close detaches the pipe from its peer; subsequent data for it is dropped.
func (p *InputPipe) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	p.peer.removePipe(p.adv.ID)
}

// deliver fans data out to the listeners.
func (p *InputPipe) deliver(from PeerID, data []byte) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	ls := append([]PipeListener(nil), p.listeners...)
	p.mu.Unlock()
	for _, l := range ls {
		l(from, data)
	}
}

// OutputPipe sends data to a remote peer's input pipe. It is created by
// resolving a PipeAdvertisement to a transport address.
type OutputPipe struct {
	peer *Peer
	adv  PipeAdvertisement
	addr string
}

// Advertisement returns a copy of the advertisement this pipe was opened
// from.
func (o *OutputPipe) Advertisement() *PipeAdvertisement {
	adv := o.adv
	return &adv
}

// RemoteAddr returns the resolved transport address of the owning peer.
func (o *OutputPipe) RemoteAddr() string { return o.addr }

// Send transmits data down the pipe.
func (o *OutputPipe) Send(data []byte) error {
	if o.addr == "" {
		return fmt.Errorf("p2ps: output pipe %q is unresolved", o.adv.ID)
	}
	m := &message{
		Type:   msgData,
		From:   o.peer.ID(),
		Addr:   o.peer.Addr(),
		Group:  o.peer.Group(),
		PipeID: o.adv.ID,
		Data:   data,
	}
	return o.peer.transport.Send(o.addr, m.encode())
}
