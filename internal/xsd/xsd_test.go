package xsd

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestSimpleTypeFor(t *testing.T) {
	cases := []struct {
		v    interface{}
		want string
		ok   bool
	}{
		{"", "string", true},
		{true, "boolean", true},
		{int(0), "long", true},
		{int64(0), "long", true},
		{int32(0), "int", true},
		{int16(0), "short", true},
		{int8(0), "byte", true},
		{uint(0), "unsignedLong", true},
		{uint32(0), "unsignedInt", true},
		{float32(0), "float", true},
		{float64(0), "double", true},
		{time.Time{}, "dateTime", true},
		{[]byte(nil), "base64Binary", true},
		{struct{}{}, "", false},
		{map[string]int{}, "", false},
	}
	for _, c := range cases {
		n, ok := SimpleTypeFor(reflect.TypeOf(c.v))
		if ok != c.ok || (ok && n.Local != c.want) {
			t.Errorf("SimpleTypeFor(%T) = %v,%v want %q,%v", c.v, n, ok, c.want, c.ok)
		}
		if ok && n.Space != Namespace {
			t.Errorf("SimpleTypeFor(%T) namespace = %q", c.v, n.Space)
		}
	}
}

func roundTripSimple(t *testing.T, v interface{}) interface{} {
	t.Helper()
	rv := reflect.ValueOf(v)
	s, err := EncodeSimple(rv)
	if err != nil {
		t.Fatalf("encode %T: %v", v, err)
	}
	back, err := DecodeSimple(s, rv.Type())
	if err != nil {
		t.Fatalf("decode %q into %T: %v", s, v, err)
	}
	return back.Interface()
}

func TestSimpleRoundTrips(t *testing.T) {
	if got := roundTripSimple(t, "héllo <world>"); got != "héllo <world>" {
		t.Errorf("string: %v", got)
	}
	if got := roundTripSimple(t, int64(-42)); got != int64(-42) {
		t.Errorf("int64: %v", got)
	}
	if got := roundTripSimple(t, uint16(65535)); got != uint16(65535) {
		t.Errorf("uint16: %v", got)
	}
	if got := roundTripSimple(t, 3.14159); got != 3.14159 {
		t.Errorf("float64: %v", got)
	}
	if got := roundTripSimple(t, true); got != true {
		t.Errorf("bool: %v", got)
	}
	ts := time.Date(2005, 4, 4, 12, 30, 0, 123456789, time.UTC)
	if got := roundTripSimple(t, ts); !got.(time.Time).Equal(ts) {
		t.Errorf("time: %v", got)
	}
	b := []byte{0, 1, 2, 255}
	if got := roundTripSimple(t, b); !reflect.DeepEqual(got, b) {
		t.Errorf("bytes: %v", got)
	}
}

func TestBooleanLexicalForms(t *testing.T) {
	boolT := reflect.TypeOf(true)
	for _, s := range []string{"true", "1"} {
		v, err := DecodeSimple(s, boolT)
		if err != nil || !v.Bool() {
			t.Errorf("decode %q: %v %v", s, v, err)
		}
	}
	for _, s := range []string{"false", "0"} {
		v, err := DecodeSimple(s, boolT)
		if err != nil || v.Bool() {
			t.Errorf("decode %q: %v %v", s, v, err)
		}
	}
	if _, err := DecodeSimple("TRUE", boolT); err == nil {
		t.Error("TRUE is not a valid xsd boolean")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		s string
		t reflect.Type
	}{
		{"abc", reflect.TypeOf(0)},
		{"-1", reflect.TypeOf(uint(0))},
		{"1e999", reflect.TypeOf(float64(0))},
		{"300", reflect.TypeOf(int8(0))},
		{"not-a-date", reflect.TypeOf(time.Time{})},
		{"!!!", reflect.TypeOf([]byte(nil))},
		{"x", reflect.TypeOf(map[string]int{})},
	}
	for _, c := range cases {
		if _, err := DecodeSimple(c.s, c.t); err == nil {
			t.Errorf("DecodeSimple(%q, %v): expected error", c.s, c.t)
		}
	}
}

func TestQuickIntRoundTrip(t *testing.T) {
	f := func(n int64) bool {
		s, err := EncodeSimple(reflect.ValueOf(n))
		if err != nil {
			return false
		}
		v, err := DecodeSimple(s, reflect.TypeOf(n))
		return err == nil && v.Int() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFloatRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true // NaN != NaN; lexical round trip still works but skip
		}
		s, err := EncodeSimple(reflect.ValueOf(x))
		if err != nil {
			return false
		}
		v, err := DecodeSimple(s, reflect.TypeOf(x))
		return err == nil && v.Float() == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		s, err := EncodeSimple(reflect.ValueOf(b))
		if err != nil {
			return false
		}
		v, err := DecodeSimple(s, reflect.TypeOf(b))
		if err != nil {
			return false
		}
		got := v.Bytes()
		if len(got) != len(b) {
			return false
		}
		for i := range b {
			if got[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
