package xsd

import (
	"reflect"
	"strings"

	"wspeer/internal/xmlutil"
)

// Marshalling follows document/literal conventions with
// elementFormDefault="qualified": every element representing a value or a
// struct field lives in the schema's target namespace. A nil pointer field
// is omitted (minOccurs="0"); a slice field repeats its element
// (maxOccurs="unbounded").
//
// Both directions run through compiled per-type plans (see plan.go): the
// reflect.Type is walked once, and every subsequent call uses the cached
// closure tree.

// fieldName returns the element local name for a struct field, honouring a
// leading name in the `xml` struct tag. It reports skip=true for fields
// excluded from marshalling.
func fieldName(f reflect.StructField) (name string, skip bool) {
	if f.PkgPath != "" { // unexported
		return "", true
	}
	tag := f.Tag.Get("xml")
	if tag == "-" {
		return "", true
	}
	if tag != "" {
		if i := strings.IndexByte(tag, ','); i >= 0 {
			tag = tag[:i]
		}
		if tag != "" {
			return tag, false
		}
	}
	return f.Name, false
}

// AppendValue appends the XML representation of v to parent as one or more
// child elements named {ns}name, using the compiled plan for v's type.
func AppendValue(parent *xmlutil.Element, ns, name string, v reflect.Value) error {
	return EncoderForType(v.Type())(parent, ns, name, v)
}

// ExtractValue decodes the child element(s) of parent named {ns}name into a
// new Go value of type t, using the compiled plan for t. Missing optional
// values yield zero values (nil for pointers and slices).
func ExtractValue(parent *xmlutil.Element, ns, name string, t reflect.Type) (reflect.Value, error) {
	return DecoderForType(t)(parent, ns, name)
}

// lexicalText extracts the element text to decode: strings keep their
// whitespace exactly (it is significant in XML); other simple types use the
// whitespace-collapsed lexical form.
func lexicalText(el *xmlutil.Element, t reflect.Type) string {
	if t.Kind() == reflect.String {
		return el.Text()
	}
	return el.TrimmedText()
}

// childAnyNS finds a child by exact name, falling back to a local-name match
// so that lenient peers (and hand-written envelopes) interoperate.
func childAnyNS(parent *xmlutil.Element, qn xmlutil.Name) *xmlutil.Element {
	if el := parent.Child(qn); el != nil {
		return el
	}
	return parent.ChildLocal(qn.Local)
}

func childrenAnyNS(parent *xmlutil.Element, qn xmlutil.Name) []*xmlutil.Element {
	els := parent.Children(qn)
	if len(els) > 0 {
		return els
	}
	var out []*xmlutil.Element
	for _, el := range parent.Elements() {
		if el.Name.Local == qn.Local {
			out = append(out, el)
		}
	}
	return out
}
