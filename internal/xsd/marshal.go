package xsd

import (
	"fmt"
	"reflect"
	"strings"

	"wspeer/internal/xmlutil"
)

// Marshalling follows document/literal conventions with
// elementFormDefault="qualified": every element representing a value or a
// struct field lives in the schema's target namespace. A nil pointer field
// is omitted (minOccurs="0"); a slice field repeats its element
// (maxOccurs="unbounded").

// fieldName returns the element local name for a struct field, honouring a
// leading name in the `xml` struct tag. It reports skip=true for fields
// excluded from marshalling.
func fieldName(f reflect.StructField) (name string, skip bool) {
	if f.PkgPath != "" { // unexported
		return "", true
	}
	tag := f.Tag.Get("xml")
	if tag == "-" {
		return "", true
	}
	if tag != "" {
		if i := strings.IndexByte(tag, ','); i >= 0 {
			tag = tag[:i]
		}
		if tag != "" {
			return tag, false
		}
	}
	return f.Name, false
}

// AppendValue appends the XML representation of v to parent as one or more
// child elements named {ns}name.
func AppendValue(parent *xmlutil.Element, ns, name string, v reflect.Value) error {
	t := v.Type()

	// []byte is a simple type, not a repeated element.
	if t == bytesType || t == timeType {
		s, err := EncodeSimple(v)
		if err != nil {
			return err
		}
		parent.NewChild(xmlutil.N(ns, name)).SetText(s)
		return nil
	}

	switch t.Kind() {
	case reflect.Ptr:
		if v.IsNil() {
			return nil // minOccurs="0"
		}
		return AppendValue(parent, ns, name, v.Elem())

	case reflect.Interface:
		if v.IsNil() {
			return nil
		}
		return AppendValue(parent, ns, name, v.Elem())

	case reflect.Slice, reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := AppendValue(parent, ns, name, v.Index(i)); err != nil {
				return fmt.Errorf("xsd: element %d of %s: %w", i, name, err)
			}
		}
		return nil

	case reflect.Struct:
		el := parent.NewChild(xmlutil.N(ns, name))
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			fn, skip := fieldName(f)
			if skip {
				continue
			}
			if err := AppendValue(el, ns, fn, v.Field(i)); err != nil {
				return fmt.Errorf("xsd: field %s.%s: %w", t.Name(), f.Name, err)
			}
		}
		return nil

	case reflect.Map, reflect.Chan, reflect.Func, reflect.UnsafePointer, reflect.Complex64, reflect.Complex128:
		return fmt.Errorf("xsd: unsupported Go type %s", t)

	default:
		s, err := EncodeSimple(v)
		if err != nil {
			return err
		}
		parent.NewChild(xmlutil.N(ns, name)).SetText(s)
		return nil
	}
}

// ExtractValue decodes the child element(s) of parent named {ns}name into a
// new Go value of type t. Missing optional values yield zero values (nil for
// pointers and slices).
func ExtractValue(parent *xmlutil.Element, ns, name string, t reflect.Type) (reflect.Value, error) {
	qn := xmlutil.N(ns, name)

	if t == bytesType || t == timeType {
		el := childAnyNS(parent, qn)
		if el == nil {
			return reflect.Zero(t), nil
		}
		return DecodeSimple(el.TrimmedText(), t)
	}

	switch t.Kind() {
	case reflect.Ptr:
		if childAnyNS(parent, qn) == nil {
			return reflect.Zero(t), nil
		}
		inner, err := ExtractValue(parent, ns, name, t.Elem())
		if err != nil {
			return reflect.Value{}, err
		}
		p := reflect.New(t.Elem())
		p.Elem().Set(inner)
		return p, nil

	case reflect.Slice:
		els := childrenAnyNS(parent, qn)
		out := reflect.MakeSlice(t, 0, len(els))
		for i, el := range els {
			item, err := decodeElement(el, ns, t.Elem())
			if err != nil {
				return reflect.Value{}, fmt.Errorf("xsd: element %d of %s: %w", i, name, err)
			}
			out = reflect.Append(out, item)
		}
		return out, nil

	case reflect.Struct:
		el := childAnyNS(parent, qn)
		if el == nil {
			return reflect.Zero(t), nil
		}
		return decodeElement(el, ns, t)

	default:
		el := childAnyNS(parent, qn)
		if el == nil {
			return reflect.Zero(t), nil
		}
		return decodeElement(el, ns, t)
	}
}

// lexicalText extracts the element text to decode: strings keep their
// whitespace exactly (it is significant in XML); other simple types use the
// whitespace-collapsed lexical form.
func lexicalText(el *xmlutil.Element, t reflect.Type) string {
	if t.Kind() == reflect.String {
		return el.Text()
	}
	return el.TrimmedText()
}

// decodeElement decodes a single element that directly represents a value of
// type t (the element is already located).
func decodeElement(el *xmlutil.Element, ns string, t reflect.Type) (reflect.Value, error) {
	if t == bytesType || t == timeType {
		return DecodeSimple(el.TrimmedText(), t)
	}
	switch t.Kind() {
	case reflect.Ptr:
		inner, err := decodeElement(el, ns, t.Elem())
		if err != nil {
			return reflect.Value{}, err
		}
		p := reflect.New(t.Elem())
		p.Elem().Set(inner)
		return p, nil
	case reflect.Struct:
		v := reflect.New(t).Elem()
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			fn, skip := fieldName(f)
			if skip {
				continue
			}
			fv, err := ExtractValue(el, ns, fn, f.Type)
			if err != nil {
				return reflect.Value{}, fmt.Errorf("xsd: field %s.%s: %w", t.Name(), f.Name, err)
			}
			v.Field(i).Set(fv)
		}
		return v, nil
	case reflect.Slice, reflect.Array:
		return reflect.Value{}, fmt.Errorf("xsd: nested slices are not supported (wrap the inner slice in a struct)")
	default:
		return DecodeSimple(lexicalText(el, t), t)
	}
}

// childAnyNS finds a child by exact name, falling back to a local-name match
// so that lenient peers (and hand-written envelopes) interoperate.
func childAnyNS(parent *xmlutil.Element, qn xmlutil.Name) *xmlutil.Element {
	if el := parent.Child(qn); el != nil {
		return el
	}
	return parent.ChildLocal(qn.Local)
}

func childrenAnyNS(parent *xmlutil.Element, qn xmlutil.Name) []*xmlutil.Element {
	els := parent.Children(qn)
	if len(els) > 0 {
		return els
	}
	var out []*xmlutil.Element
	for _, el := range parent.Elements() {
		if el.Name.Local == qn.Local {
			out = append(out, el)
		}
	}
	return out
}
