package xsd

// Compiled type plans. AppendValue and ExtractValue used to re-walk a Go
// type with package reflect on every call — per message, per parameter.
// This file compiles each reflect.Type once into a closure tree (an
// Encoder or Decoder) that is cached in a sync.Map, the same strategy
// encoding/json uses: struct tags are parsed once, field offsets and
// sub-plans are captured at compile time, and the per-call work reduces to
// direct closure invocations.
//
// Invariants:
//   - Compiled plans are immutable and safely shared by any number of
//     goroutines.
//   - Concurrent (and recursive) first-touch compilation of a type is
//     safe: a placeholder that blocks until the real plan is published is
//     installed in the cache while building, so self-referential types
//     terminate and racing goroutines wait instead of duplicating work.
//   - Plans are keyed by reflect.Type only; the target namespace and
//     element name stay per-call parameters, so one plan serves every
//     service.

import (
	"fmt"
	"reflect"
	"sync"

	"wspeer/internal/xmlutil"
)

// Encoder appends the XML representation of a value of the compiled type
// to parent as zero or more child elements named {ns}name.
type Encoder func(parent *xmlutil.Element, ns, name string, v reflect.Value) error

// Decoder extracts the child element(s) of parent named {ns}name into a
// new Go value of the compiled type. Missing optional values yield zero
// values (nil for pointers and slices).
type Decoder func(parent *xmlutil.Element, ns, name string) (reflect.Value, error)

// elemDecoder decodes one already-located element into a value of the
// compiled type (the counterpart of the old decodeElement).
type elemDecoder func(el *xmlutil.Element, ns string) (reflect.Value, error)

var (
	encoderCache     sync.Map // reflect.Type -> Encoder
	decoderCache     sync.Map // reflect.Type -> Decoder
	elemDecoderCache sync.Map // reflect.Type -> elemDecoder
)

// EncoderForType returns the compiled encoder for t, building and caching
// it on first use. The returned Encoder is safe for concurrent use.
func EncoderForType(t reflect.Type) Encoder {
	if f, ok := encoderCache.Load(t); ok {
		return f.(Encoder)
	}
	var (
		wg sync.WaitGroup
		fn Encoder
	)
	wg.Add(1)
	placeholder := Encoder(func(parent *xmlutil.Element, ns, name string, v reflect.Value) error {
		wg.Wait()
		return fn(parent, ns, name, v)
	})
	if actual, loaded := encoderCache.LoadOrStore(t, placeholder); loaded {
		return actual.(Encoder)
	}
	fn = buildEncoder(t)
	wg.Done()
	encoderCache.Store(t, fn)
	return fn
}

// DecoderForType returns the compiled decoder for t, building and caching
// it on first use. The returned Decoder is safe for concurrent use.
func DecoderForType(t reflect.Type) Decoder {
	if f, ok := decoderCache.Load(t); ok {
		return f.(Decoder)
	}
	var (
		wg sync.WaitGroup
		fn Decoder
	)
	wg.Add(1)
	placeholder := Decoder(func(parent *xmlutil.Element, ns, name string) (reflect.Value, error) {
		wg.Wait()
		return fn(parent, ns, name)
	})
	if actual, loaded := decoderCache.LoadOrStore(t, placeholder); loaded {
		return actual.(Decoder)
	}
	fn = buildDecoder(t)
	wg.Done()
	decoderCache.Store(t, fn)
	return fn
}

func elemDecoderFor(t reflect.Type) elemDecoder {
	if f, ok := elemDecoderCache.Load(t); ok {
		return f.(elemDecoder)
	}
	var (
		wg sync.WaitGroup
		fn elemDecoder
	)
	wg.Add(1)
	placeholder := elemDecoder(func(el *xmlutil.Element, ns string) (reflect.Value, error) {
		wg.Wait()
		return fn(el, ns)
	})
	if actual, loaded := elemDecoderCache.LoadOrStore(t, placeholder); loaded {
		return actual.(elemDecoder)
	}
	fn = buildElemDecoder(t)
	wg.Done()
	elemDecoderCache.Store(t, fn)
	return fn
}

// ---------------------------------------------------------------------------
// Encoder compilation

// structFieldPlan is one marshallable field of a compiled struct type.
type structFieldPlan struct {
	elemName string // XML element local name (tag-aware)
	goName   string // Go field name, for error messages
	index    int
}

type encFieldPlan struct {
	structFieldPlan
	enc Encoder
}

func encodeSimpleElement(parent *xmlutil.Element, ns, name string, v reflect.Value) error {
	s, err := EncodeSimple(v)
	if err != nil {
		return err
	}
	parent.NewChild(xmlutil.N(ns, name)).SetText(s)
	return nil
}

func buildEncoder(t reflect.Type) Encoder {
	// []byte and time.Time are simple types, not repeated/struct elements.
	if t == bytesType || t == timeType {
		return encodeSimpleElement
	}

	switch t.Kind() {
	case reflect.Ptr:
		elem := EncoderForType(t.Elem())
		return func(parent *xmlutil.Element, ns, name string, v reflect.Value) error {
			if v.IsNil() {
				return nil // minOccurs="0"
			}
			return elem(parent, ns, name, v.Elem())
		}

	case reflect.Interface:
		// The dynamic type is only known per value; resolve its plan at
		// call time (cache hit after the first value of each type).
		return func(parent *xmlutil.Element, ns, name string, v reflect.Value) error {
			if v.IsNil() {
				return nil
			}
			iv := v.Elem()
			return EncoderForType(iv.Type())(parent, ns, name, iv)
		}

	case reflect.Slice, reflect.Array:
		elem := EncoderForType(t.Elem())
		return func(parent *xmlutil.Element, ns, name string, v reflect.Value) error {
			for i := 0; i < v.Len(); i++ {
				if err := elem(parent, ns, name, v.Index(i)); err != nil {
					return fmt.Errorf("xsd: element %d of %s: %w", i, name, err)
				}
			}
			return nil
		}

	case reflect.Struct:
		fields := make([]encFieldPlan, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			fn, skip := fieldName(f)
			if skip {
				continue
			}
			fields = append(fields, encFieldPlan{
				structFieldPlan: structFieldPlan{elemName: fn, goName: f.Name, index: i},
				enc:             EncoderForType(f.Type),
			})
		}
		typeName := t.Name()
		return func(parent *xmlutil.Element, ns, name string, v reflect.Value) error {
			el := parent.NewChild(xmlutil.N(ns, name))
			for i := range fields {
				fp := &fields[i]
				if err := fp.enc(el, ns, fp.elemName, v.Field(fp.index)); err != nil {
					return fmt.Errorf("xsd: field %s.%s: %w", typeName, fp.goName, err)
				}
			}
			return nil
		}

	case reflect.Map, reflect.Chan, reflect.Func, reflect.UnsafePointer, reflect.Complex64, reflect.Complex128:
		return func(*xmlutil.Element, string, string, reflect.Value) error {
			return fmt.Errorf("xsd: unsupported Go type %s", t)
		}

	default:
		return encodeSimpleElement
	}
}

// ---------------------------------------------------------------------------
// Decoder compilation

func buildDecoder(t reflect.Type) Decoder {
	if t == bytesType || t == timeType {
		return func(parent *xmlutil.Element, ns, name string) (reflect.Value, error) {
			el := childAnyNS(parent, xmlutil.N(ns, name))
			if el == nil {
				return reflect.Zero(t), nil
			}
			return DecodeSimple(el.TrimmedText(), t)
		}
	}

	switch t.Kind() {
	case reflect.Ptr:
		inner := DecoderForType(t.Elem())
		elemType := t.Elem()
		return func(parent *xmlutil.Element, ns, name string) (reflect.Value, error) {
			if childAnyNS(parent, xmlutil.N(ns, name)) == nil {
				return reflect.Zero(t), nil
			}
			iv, err := inner(parent, ns, name)
			if err != nil {
				return reflect.Value{}, err
			}
			p := reflect.New(elemType)
			p.Elem().Set(iv)
			return p, nil
		}

	case reflect.Slice:
		elemDec := elemDecoderFor(t.Elem())
		return func(parent *xmlutil.Element, ns, name string) (reflect.Value, error) {
			els := childrenAnyNS(parent, xmlutil.N(ns, name))
			out := reflect.MakeSlice(t, 0, len(els))
			for i, el := range els {
				item, err := elemDec(el, ns)
				if err != nil {
					return reflect.Value{}, fmt.Errorf("xsd: element %d of %s: %w", i, name, err)
				}
				out = reflect.Append(out, item)
			}
			return out, nil
		}

	default: // structs and simple kinds share the locate-then-decode shape
		elemDec := elemDecoderFor(t)
		return func(parent *xmlutil.Element, ns, name string) (reflect.Value, error) {
			el := childAnyNS(parent, xmlutil.N(ns, name))
			if el == nil {
				return reflect.Zero(t), nil
			}
			return elemDec(el, ns)
		}
	}
}

type decFieldPlan struct {
	structFieldPlan
	dec Decoder
}

func buildElemDecoder(t reflect.Type) elemDecoder {
	if t == bytesType || t == timeType {
		return func(el *xmlutil.Element, ns string) (reflect.Value, error) {
			return DecodeSimple(el.TrimmedText(), t)
		}
	}

	switch t.Kind() {
	case reflect.Ptr:
		inner := elemDecoderFor(t.Elem())
		elemType := t.Elem()
		return func(el *xmlutil.Element, ns string) (reflect.Value, error) {
			iv, err := inner(el, ns)
			if err != nil {
				return reflect.Value{}, err
			}
			p := reflect.New(elemType)
			p.Elem().Set(iv)
			return p, nil
		}

	case reflect.Struct:
		fields := make([]decFieldPlan, 0, t.NumField())
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			fn, skip := fieldName(f)
			if skip {
				continue
			}
			fields = append(fields, decFieldPlan{
				structFieldPlan: structFieldPlan{elemName: fn, goName: f.Name, index: i},
				dec:             DecoderForType(f.Type),
			})
		}
		typeName := t.Name()
		return func(el *xmlutil.Element, ns string) (reflect.Value, error) {
			v := reflect.New(t).Elem()
			for i := range fields {
				fp := &fields[i]
				fv, err := fp.dec(el, ns, fp.elemName)
				if err != nil {
					return reflect.Value{}, fmt.Errorf("xsd: field %s.%s: %w", typeName, fp.goName, err)
				}
				v.Field(fp.index).Set(fv)
			}
			return v, nil
		}

	case reflect.Slice, reflect.Array:
		return func(*xmlutil.Element, string) (reflect.Value, error) {
			return reflect.Value{}, fmt.Errorf("xsd: nested slices are not supported (wrap the inner slice in a struct)")
		}

	default:
		return func(el *xmlutil.Element, ns string) (reflect.Value, error) {
			return DecodeSimple(lexicalText(el, t), t)
		}
	}
}
