package xsd

import (
	"reflect"
	"sync"
	"testing"

	"wspeer/internal/xmlutil"
)

// TestPlanCacheConcurrentFirstTouch hammers the compiled-codec caches
// from many goroutines with the same fresh types, under the race
// detector: compilation must happen observably once and every caller
// must get a working codec (the placeholder pattern must not deadlock or
// return a half-built plan).
func TestPlanCacheConcurrentFirstTouch(t *testing.T) {
	type leaf struct {
		S string
		N int64
	}
	type node struct {
		L    leaf
		Tags []string
		Next *node // self-referential: compiles through the placeholder
	}
	in := node{
		L:    leaf{S: "hello", N: 42},
		Tags: []string{"a", "b"},
		Next: &node{L: leaf{S: "inner", N: 7}},
	}
	const ns = "urn:t"
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			parent := xmlutil.NewElement(xmlutil.N(ns, "wrap"))
			if err := AppendValue(parent, ns, "v", reflect.ValueOf(in)); err != nil {
				t.Error(err)
				return
			}
			got, err := ExtractValue(parent, ns, "v", reflect.TypeOf(in))
			if err != nil {
				t.Error(err)
				return
			}
			out := got.Interface().(node)
			if out.L.S != "hello" || out.Next == nil || out.Next.L.N != 7 || len(out.Tags) != 2 {
				t.Errorf("round trip mangled: %+v", out)
			}
		}()
	}
	wg.Wait()
}

// TestPlanCacheDistinctTypesConcurrent compiles many distinct types at
// once so first-touch compilation itself races against other builds.
func TestPlanCacheDistinctTypesConcurrent(t *testing.T) {
	types := []interface{}{
		struct{ A string }{"x"},
		struct{ B int32 }{5},
		struct{ C []bool }{[]bool{true}},
		struct{ D *string }{},
		struct {
			E float64
			F struct{ G string }
		}{},
	}
	const ns = "urn:t"
	var wg sync.WaitGroup
	for _, v := range types {
		for g := 0; g < 4; g++ {
			wg.Add(1)
			go func(v interface{}) {
				defer wg.Done()
				parent := xmlutil.NewElement(xmlutil.N(ns, "wrap"))
				if err := AppendValue(parent, ns, "v", reflect.ValueOf(v)); err != nil {
					t.Error(err)
					return
				}
				if _, err := ExtractValue(parent, ns, "v", reflect.TypeOf(v)); err != nil {
					t.Error(err)
				}
			}(v)
		}
	}
	wg.Wait()
}
