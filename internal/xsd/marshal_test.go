package xsd

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"wspeer/internal/xmlutil"
)

const tns = "http://example.org/service"

type Address struct {
	Street string
	City   string
	Zip    *string
}

type Person struct {
	Name    string
	Age     int32
	Emails  []string
	Home    Address
	Work    *Address
	Tags    []Address
	Joined  time.Time
	Photo   []byte
	private string // must be skipped
	Skipped string `xml:"-"`
	Renamed string `xml:"alias"`
}

func marshalOne(t *testing.T, name string, v interface{}) *xmlutil.Element {
	t.Helper()
	parent := xmlutil.NewElement(xmlutil.N(tns, "wrapper"))
	if err := AppendValue(parent, tns, name, reflect.ValueOf(v)); err != nil {
		t.Fatalf("AppendValue: %v", err)
	}
	return parent
}

func TestMarshalSimpleField(t *testing.T) {
	parent := marshalOne(t, "msg", "hello")
	el := parent.Child(xmlutil.N(tns, "msg"))
	if el == nil || el.Text() != "hello" {
		t.Fatalf("bad marshal: %s", xmlutil.Marshal(parent))
	}
}

func TestMarshalSliceRepeats(t *testing.T) {
	parent := marshalOne(t, "n", []int64{1, 2, 3})
	els := parent.Children(xmlutil.N(tns, "n"))
	if len(els) != 3 || els[1].Text() != "2" {
		t.Fatalf("slice marshal: %s", xmlutil.Marshal(parent))
	}
}

func TestMarshalNilPointerOmitted(t *testing.T) {
	var p *Address
	parent := marshalOne(t, "addr", p)
	if len(parent.Elements()) != 0 {
		t.Fatalf("nil pointer must be omitted: %s", xmlutil.Marshal(parent))
	}
}

func TestMarshalUnsupported(t *testing.T) {
	parent := xmlutil.NewElement(xmlutil.N(tns, "w"))
	if err := AppendValue(parent, tns, "m", reflect.ValueOf(map[string]int{"a": 1})); err == nil {
		t.Fatal("maps must be rejected")
	}
	if err := AppendValue(parent, tns, "c", reflect.ValueOf(make(chan int))); err == nil {
		t.Fatal("channels must be rejected")
	}
}

func personFixture() Person {
	zip := "CF24"
	return Person{
		Name:    "Ada",
		Age:     36,
		Emails:  []string{"ada@example.org", "a@b.c"},
		Home:    Address{Street: "1 Queen St", City: "Cardiff", Zip: &zip},
		Work:    &Address{Street: "5 Park Pl", City: "Cardiff"},
		Tags:    []Address{{City: "x"}, {City: "y"}},
		Joined:  time.Date(2004, 11, 6, 9, 0, 0, 0, time.UTC),
		Photo:   []byte{1, 2, 3},
		Renamed: "r",
	}
}

func TestStructRoundTrip(t *testing.T) {
	in := personFixture()
	parent := marshalOne(t, "person", in)

	// Unexported and xml:"-" fields must not appear.
	out := string(xmlutil.Marshal(parent))
	if strings.Contains(out, "private") || strings.Contains(out, "Skipped") {
		t.Fatalf("excluded fields leaked: %s", out)
	}
	if !strings.Contains(out, "alias") {
		t.Fatalf("renamed field missing: %s", out)
	}

	got, err := ExtractValue(parent, tns, "person", reflect.TypeOf(Person{}))
	if err != nil {
		t.Fatalf("ExtractValue: %v", err)
	}
	gp := got.Interface().(Person)
	if gp.Name != in.Name || gp.Age != in.Age {
		t.Fatalf("scalars: %+v", gp)
	}
	if !reflect.DeepEqual(gp.Emails, in.Emails) {
		t.Fatalf("emails: %v", gp.Emails)
	}
	if gp.Home.Zip == nil || *gp.Home.Zip != "CF24" {
		t.Fatalf("nested pointer: %+v", gp.Home)
	}
	if gp.Work == nil || gp.Work.Street != "5 Park Pl" {
		t.Fatalf("pointer struct: %+v", gp.Work)
	}
	if len(gp.Tags) != 2 || gp.Tags[1].City != "y" {
		t.Fatalf("struct slice: %+v", gp.Tags)
	}
	if !gp.Joined.Equal(in.Joined) {
		t.Fatalf("time: %v", gp.Joined)
	}
	if !reflect.DeepEqual(gp.Photo, in.Photo) {
		t.Fatalf("photo: %v", gp.Photo)
	}
	if gp.Renamed != "r" {
		t.Fatalf("renamed: %q", gp.Renamed)
	}
}

func TestExtractMissingOptional(t *testing.T) {
	parent := xmlutil.NewElement(xmlutil.N(tns, "w"))
	v, err := ExtractValue(parent, tns, "x", reflect.TypeOf((*Address)(nil)))
	if err != nil || !v.IsNil() {
		t.Fatalf("missing pointer: %v %v", v, err)
	}
	sv, err := ExtractValue(parent, tns, "x", reflect.TypeOf([]string{}))
	if err != nil || sv.Len() != 0 {
		t.Fatalf("missing slice: %v %v", sv, err)
	}
	iv, err := ExtractValue(parent, tns, "x", reflect.TypeOf(0))
	if err != nil || iv.Int() != 0 {
		t.Fatalf("missing scalar should zero: %v %v", iv, err)
	}
}

func TestExtractLenientNamespace(t *testing.T) {
	// A peer that sends unqualified children should still be understood.
	parent := xmlutil.NewElement(xmlutil.N(tns, "w"))
	parent.NewChild(xmlutil.N("", "msg")).SetText("hi")
	v, err := ExtractValue(parent, tns, "msg", reflect.TypeOf(""))
	if err != nil || v.String() != "hi" {
		t.Fatalf("lenient: %v %v", v, err)
	}
}

func TestNestedSliceRejected(t *testing.T) {
	parent := xmlutil.NewElement(xmlutil.N(tns, "w"))
	parent.NewChild(xmlutil.N(tns, "x"))
	if _, err := ExtractValue(parent, tns, "x", reflect.TypeOf([][]string{})); err == nil {
		t.Fatal("nested slices must be rejected on decode")
	}
}

func TestQuickStructRoundTrip(t *testing.T) {
	type Pair struct {
		K string
		V int64
	}
	// Restrict inputs to characters XML 1.0 can represent: encoding/xml
	// drops the rest, as every SOAP stack must.
	xmlSafe := func(s string) string {
		var b strings.Builder
		for _, r := range strings.ToValidUTF8(s, "") {
			switch {
			case r == '\t' || r == '\n':
				b.WriteRune(r)
			case r < 0x20 || r == '\r':
				continue
			case r >= 0xD800 && r <= 0xDFFF:
				continue
			case r == 0xFFFE || r == 0xFFFF:
				continue
			default:
				b.WriteRune(r)
			}
		}
		return b.String()
	}
	f := func(k string, v int64) bool {
		k = xmlSafe(k)
		in := Pair{K: k, V: v}
		parent := xmlutil.NewElement(xmlutil.N(tns, "w"))
		if err := AppendValue(parent, tns, "p", reflect.ValueOf(in)); err != nil {
			return false
		}
		// Serialize through real XML bytes to catch escaping issues.
		back, err := xmlutil.ParseBytes(xmlutil.Marshal(parent))
		if err != nil {
			return false
		}
		got, err := ExtractValue(back, tns, "p", reflect.TypeOf(Pair{}))
		if err != nil {
			return false
		}
		return got.Interface().(Pair) == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestStringWhitespacePreserved(t *testing.T) {
	// Whitespace inside string values is significant and must round-trip;
	// numeric values tolerate surrounding whitespace.
	parent := xmlutil.NewElement(xmlutil.N(tns, "w"))
	const msg = "  leading and trailing  \n\tkept "
	if err := AppendValue(parent, tns, "s", reflect.ValueOf(msg)); err != nil {
		t.Fatal(err)
	}
	back, err := xmlutil.ParseBytes(xmlutil.Marshal(parent))
	if err != nil {
		t.Fatal(err)
	}
	v, err := ExtractValue(back, tns, "s", reflect.TypeOf(""))
	if err != nil || v.String() != msg {
		t.Fatalf("string whitespace: %q, %v", v.String(), err)
	}

	// Numbers decode despite pretty-printed whitespace around them.
	numEl := xmlutil.NewElement(xmlutil.N(tns, "w"))
	numEl.NewChild(xmlutil.N(tns, "n")).SetText("\n    42\n  ")
	nv, err := ExtractValue(numEl, tns, "n", reflect.TypeOf(int64(0)))
	if err != nil || nv.Int() != 42 {
		t.Fatalf("number with whitespace: %v, %v", nv, err)
	}
}
