// Package xsd implements the XML-Schema subset needed by the SOAP engine
// and the WSDL generator: the built-in simple types, lexical encoding and
// decoding of Go values, document/literal marshalling of Go values to
// element trees, and generation of schema complexType definitions from Go
// struct types.
package xsd

import (
	"encoding/base64"
	"fmt"
	"reflect"
	"strconv"
	"time"

	"wspeer/internal/xmlutil"
)

// Namespace is the XML-Schema namespace.
const Namespace = "http://www.w3.org/2001/XMLSchema"

// XSINamespace is the schema-instance namespace (xsi:type, xsi:nil).
const XSINamespace = "http://www.w3.org/2001/XMLSchema-instance"

// Built-in simple type names.
var (
	String       = xmlutil.N(Namespace, "string")
	Boolean      = xmlutil.N(Namespace, "boolean")
	Int          = xmlutil.N(Namespace, "int")
	Long         = xmlutil.N(Namespace, "long")
	Short        = xmlutil.N(Namespace, "short")
	Byte         = xmlutil.N(Namespace, "byte")
	UnsignedInt  = xmlutil.N(Namespace, "unsignedInt")
	UnsignedLong = xmlutil.N(Namespace, "unsignedLong")
	Float        = xmlutil.N(Namespace, "float")
	Double       = xmlutil.N(Namespace, "double")
	DateTime     = xmlutil.N(Namespace, "dateTime")
	Base64Binary = xmlutil.N(Namespace, "base64Binary")
	AnyType      = xmlutil.N(Namespace, "anyType")
	AnyURI       = xmlutil.N(Namespace, "anyURI")
	QNameType    = xmlutil.N(Namespace, "QName")
)

var timeType = reflect.TypeOf(time.Time{})
var bytesType = reflect.TypeOf([]byte(nil))

// SimpleTypeFor returns the built-in XSD type for a Go type, and whether the
// Go type maps to a simple type at all.
func SimpleTypeFor(t reflect.Type) (xmlutil.Name, bool) {
	if t == timeType {
		return DateTime, true
	}
	if t == bytesType {
		return Base64Binary, true
	}
	switch t.Kind() {
	case reflect.String:
		return String, true
	case reflect.Bool:
		return Boolean, true
	case reflect.Int, reflect.Int64:
		return Long, true
	case reflect.Int32:
		return Int, true
	case reflect.Int16:
		return Short, true
	case reflect.Int8:
		return Byte, true
	case reflect.Uint, reflect.Uint64:
		return UnsignedLong, true
	case reflect.Uint8, reflect.Uint16, reflect.Uint32:
		return UnsignedInt, true
	case reflect.Float32:
		return Float, true
	case reflect.Float64:
		return Double, true
	}
	return xmlutil.Name{}, false
}

// EncodeSimple renders a simple-typed Go value in its XSD lexical form.
func EncodeSimple(v reflect.Value) (string, error) {
	t := v.Type()
	if t == timeType {
		return v.Interface().(time.Time).UTC().Format(time.RFC3339Nano), nil
	}
	if t == bytesType {
		return base64.StdEncoding.EncodeToString(v.Bytes()), nil
	}
	switch t.Kind() {
	case reflect.String:
		return v.String(), nil
	case reflect.Bool:
		return strconv.FormatBool(v.Bool()), nil
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return strconv.FormatInt(v.Int(), 10), nil
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return strconv.FormatUint(v.Uint(), 10), nil
	case reflect.Float32:
		return strconv.FormatFloat(v.Float(), 'g', -1, 32), nil
	case reflect.Float64:
		return strconv.FormatFloat(v.Float(), 'g', -1, 64), nil
	}
	return "", fmt.Errorf("xsd: cannot encode %s as a simple type", t)
}

// DecodeSimple parses an XSD lexical form into a new Go value of type t.
func DecodeSimple(s string, t reflect.Type) (reflect.Value, error) {
	if t == timeType {
		// Accept RFC3339 with or without sub-second precision.
		ts, err := time.Parse(time.RFC3339Nano, s)
		if err != nil {
			return reflect.Value{}, fmt.Errorf("xsd: bad dateTime %q: %w", s, err)
		}
		return reflect.ValueOf(ts), nil
	}
	if t == bytesType {
		b, err := base64.StdEncoding.DecodeString(s)
		if err != nil {
			return reflect.Value{}, fmt.Errorf("xsd: bad base64Binary: %w", err)
		}
		return reflect.ValueOf(b), nil
	}
	v := reflect.New(t).Elem()
	switch t.Kind() {
	case reflect.String:
		v.SetString(s)
	case reflect.Bool:
		// XSD allows 1/0 as well as true/false.
		switch s {
		case "true", "1":
			v.SetBool(true)
		case "false", "0":
			v.SetBool(false)
		default:
			return reflect.Value{}, fmt.Errorf("xsd: bad boolean %q", s)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n, err := strconv.ParseInt(s, 10, bitSize(t.Kind()))
		if err != nil {
			return reflect.Value{}, fmt.Errorf("xsd: bad integer %q: %w", s, err)
		}
		v.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		n, err := strconv.ParseUint(s, 10, bitSize(t.Kind()))
		if err != nil {
			return reflect.Value{}, fmt.Errorf("xsd: bad unsigned integer %q: %w", s, err)
		}
		v.SetUint(n)
	case reflect.Float32, reflect.Float64:
		n, err := strconv.ParseFloat(s, bitSize(t.Kind()))
		if err != nil {
			return reflect.Value{}, fmt.Errorf("xsd: bad float %q: %w", s, err)
		}
		v.SetFloat(n)
	default:
		return reflect.Value{}, fmt.Errorf("xsd: cannot decode into %s", t)
	}
	return v, nil
}

func bitSize(k reflect.Kind) int {
	switch k {
	case reflect.Int8, reflect.Uint8:
		return 8
	case reflect.Int16, reflect.Uint16:
		return 16
	case reflect.Int32, reflect.Uint32, reflect.Float32:
		return 32
	default:
		return 64
	}
}
