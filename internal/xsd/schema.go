package xsd

import (
	"fmt"
	"reflect"
	"sort"

	"wspeer/internal/xmlutil"
)

// Schema accumulates element and complex-type declarations for one target
// namespace and renders them as an <xsd:schema> element suitable for
// embedding in a WSDL <types> section.
//
// The generator is driven by Go types: struct types become named
// complexTypes, and operation wrappers (request/response elements) are
// declared with AddElement.
type Schema struct {
	TargetNamespace string

	elements []wrapperElement
	types    map[string]reflect.Type // complexType name -> Go struct type
}

// Field is one named, typed member of a wrapper element's sequence.
type Field struct {
	Name string
	Type reflect.Type
}

type wrapperElement struct {
	name   string
	fields []Field
}

// NewSchema returns an empty schema for the target namespace.
func NewSchema(targetNamespace string) *Schema {
	return &Schema{
		TargetNamespace: targetNamespace,
		types:           make(map[string]reflect.Type),
	}
}

// AddElement declares a top-level element with an anonymous complexType
// whose sequence holds the given fields, registering any struct types the
// fields reference. This is how operation request/response wrappers are
// declared.
func (s *Schema) AddElement(name string, fields []Field) error {
	for _, f := range fields {
		if err := s.registerType(f.Type); err != nil {
			return fmt.Errorf("xsd: element %s, field %s: %w", name, f.Name, err)
		}
	}
	s.elements = append(s.elements, wrapperElement{name: name, fields: fields})
	return nil
}

// HasElement reports whether a top-level element with the name is declared.
func (s *Schema) HasElement(name string) bool {
	for _, e := range s.elements {
		if e.name == name {
			return true
		}
	}
	return false
}

// registerType walks a Go type, registering every named struct type it
// reaches as a complexType.
func (s *Schema) registerType(t reflect.Type) error {
	if t == timeType || t == bytesType {
		return nil
	}
	switch t.Kind() {
	case reflect.Ptr, reflect.Slice, reflect.Array:
		return s.registerType(t.Elem())
	case reflect.Struct:
		name := t.Name()
		if name == "" {
			return fmt.Errorf("anonymous struct types cannot be mapped to a named complexType")
		}
		if existing, ok := s.types[name]; ok {
			if existing != t {
				return fmt.Errorf("two distinct Go types both map to complexType %q (%v and %v)", name, existing, t)
			}
			return nil
		}
		s.types[name] = t
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if _, skip := fieldName(f); skip {
				continue
			}
			if err := s.registerType(f.Type); err != nil {
				return fmt.Errorf("field %s: %w", f.Name, err)
			}
		}
		return nil
	case reflect.Map, reflect.Chan, reflect.Func, reflect.Interface,
		reflect.UnsafePointer, reflect.Complex64, reflect.Complex128:
		return fmt.Errorf("unsupported Go type %s", t)
	default:
		if _, ok := SimpleTypeFor(t); !ok {
			return fmt.Errorf("unsupported Go type %s", t)
		}
		return nil
	}
}

// typeRef returns the QName to put in a type="" attribute for t, plus the
// occurrence constraints implied by the Go type.
func (s *Schema) typeRef(t reflect.Type) (ref xmlutil.Name, minOccurs, maxOccurs string, err error) {
	minOccurs, maxOccurs = "1", "1"
	if t == timeType || t == bytesType {
		n, _ := SimpleTypeFor(t)
		return n, minOccurs, maxOccurs, nil
	}
	switch t.Kind() {
	case reflect.Ptr:
		ref, _, _, err = s.typeRef(t.Elem())
		return ref, "0", "1", err
	case reflect.Slice, reflect.Array:
		ref, _, _, err = s.typeRef(t.Elem())
		return ref, "0", "unbounded", err
	case reflect.Struct:
		return xmlutil.N(s.TargetNamespace, t.Name()), minOccurs, maxOccurs, nil
	default:
		n, ok := SimpleTypeFor(t)
		if !ok {
			return xmlutil.Name{}, "", "", fmt.Errorf("xsd: unsupported Go type %s", t)
		}
		return n, minOccurs, maxOccurs, nil
	}
}

// Element renders the schema.
func (s *Schema) Element() (*xmlutil.Element, error) {
	root := xmlutil.NewElement(xmlutil.N(Namespace, "schema"))
	root.SetAttr(xmlutil.N("", "targetNamespace"), s.TargetNamespace)
	root.SetAttr(xmlutil.N("", "elementFormDefault"), "qualified")
	root.DeclarePrefix("tns", s.TargetNamespace)
	root.DeclarePrefix("xsd", Namespace)

	for _, we := range s.elements {
		el := root.NewChild(xmlutil.N(Namespace, "element"))
		el.SetAttr(xmlutil.N("", "name"), we.name)
		ct := el.NewChild(xmlutil.N(Namespace, "complexType"))
		if err := s.sequence(ct, we.fields); err != nil {
			return nil, err
		}
	}

	names := make([]string, 0, len(s.types))
	for n := range s.types {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		t := s.types[name]
		ct := root.NewChild(xmlutil.N(Namespace, "complexType"))
		ct.SetAttr(xmlutil.N("", "name"), name)
		var fields []Field
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			fn, skip := fieldName(f)
			if skip {
				continue
			}
			fields = append(fields, Field{Name: fn, Type: f.Type})
		}
		if err := s.sequence(ct, fields); err != nil {
			return nil, err
		}
	}
	return root, nil
}

func (s *Schema) sequence(parent *xmlutil.Element, fields []Field) error {
	seq := parent.NewChild(xmlutil.N(Namespace, "sequence"))
	for _, f := range fields {
		ref, minOcc, maxOcc, err := s.typeRef(f.Type)
		if err != nil {
			return err
		}
		el := seq.NewChild(xmlutil.N(Namespace, "element"))
		el.SetAttr(xmlutil.N("", "name"), f.Name)
		el.SetAttr(xmlutil.N("", "type"), xmlutil.QNameValue(parent, ref))
		if minOcc != "1" {
			el.SetAttr(xmlutil.N("", "minOccurs"), minOcc)
		}
		if maxOcc != "1" {
			el.SetAttr(xmlutil.N("", "maxOccurs"), maxOcc)
		}
	}
	return nil
}
