package xsd

import (
	"reflect"
	"strings"
	"testing"

	"wspeer/internal/xmlutil"
)

func TestSchemaGeneration(t *testing.T) {
	s := NewSchema(tns)
	err := s.AddElement("Echo", []Field{
		{Name: "msg", Type: reflect.TypeOf("")},
		{Name: "times", Type: reflect.TypeOf(int32(0))},
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.AddElement("Register", []Field{
		{Name: "who", Type: reflect.TypeOf(Person{})},
	})
	if err != nil {
		t.Fatal(err)
	}

	el, err := s.Element()
	if err != nil {
		t.Fatal(err)
	}
	if el.Name != xmlutil.N(Namespace, "schema") {
		t.Fatalf("root = %v", el.Name)
	}
	if v, _ := el.Attr(xmlutil.N("", "targetNamespace")); v != tns {
		t.Fatalf("targetNamespace = %q", v)
	}
	if v, _ := el.Attr(xmlutil.N("", "elementFormDefault")); v != "qualified" {
		t.Fatalf("elementFormDefault = %q", v)
	}

	// Wrapper element Echo with two sequence members.
	var echo *xmlutil.Element
	for _, e := range el.Children(xmlutil.N(Namespace, "element")) {
		if n, _ := e.Attr(xmlutil.N("", "name")); n == "Echo" {
			echo = e
		}
	}
	if echo == nil {
		t.Fatal("Echo element missing")
	}
	seq := echo.Child(xmlutil.N(Namespace, "complexType")).Child(xmlutil.N(Namespace, "sequence"))
	members := seq.Children(xmlutil.N(Namespace, "element"))
	if len(members) != 2 {
		t.Fatalf("Echo members = %d", len(members))
	}
	typ, _ := members[0].Attr(xmlutil.N("", "type"))
	qn, err := members[0].ResolveQName(typ)
	if err != nil || qn != String {
		t.Fatalf("msg type = %v (%v)", qn, err)
	}

	// Person (and transitively Address) must appear as named complexTypes.
	found := map[string]bool{}
	for _, ct := range el.Children(xmlutil.N(Namespace, "complexType")) {
		n, _ := ct.Attr(xmlutil.N("", "name"))
		found[n] = true
	}
	if !found["Person"] || !found["Address"] {
		t.Fatalf("complexTypes = %v", found)
	}

	// Output must be well-formed, parseable XML.
	out := xmlutil.Marshal(el)
	if _, err := xmlutil.ParseBytes(out); err != nil {
		t.Fatalf("schema not well-formed: %v\n%s", err, out)
	}
}

func TestSchemaOccursConstraints(t *testing.T) {
	type Box struct {
		Required string
		Optional *string
		Many     []int64
	}
	s := NewSchema(tns)
	if err := s.AddElement("Put", []Field{{Name: "box", Type: reflect.TypeOf(Box{})}}); err != nil {
		t.Fatal(err)
	}
	el, err := s.Element()
	if err != nil {
		t.Fatal(err)
	}
	var box *xmlutil.Element
	for _, ct := range el.Children(xmlutil.N(Namespace, "complexType")) {
		if n, _ := ct.Attr(xmlutil.N("", "name")); n == "Box" {
			box = ct
		}
	}
	if box == nil {
		t.Fatal("Box complexType missing")
	}
	byName := map[string]*xmlutil.Element{}
	for _, m := range box.Child(xmlutil.N(Namespace, "sequence")).Children(xmlutil.N(Namespace, "element")) {
		n, _ := m.Attr(xmlutil.N("", "name"))
		byName[n] = m
	}
	if _, ok := byName["Required"].Attr(xmlutil.N("", "minOccurs")); ok {
		t.Error("Required should not carry minOccurs")
	}
	if v, _ := byName["Optional"].Attr(xmlutil.N("", "minOccurs")); v != "0" {
		t.Errorf("Optional minOccurs = %q", v)
	}
	if v, _ := byName["Many"].Attr(xmlutil.N("", "maxOccurs")); v != "unbounded" {
		t.Errorf("Many maxOccurs = %q", v)
	}
}

func TestSchemaRejectsAnonymousAndDuplicate(t *testing.T) {
	s := NewSchema(tns)
	anon := struct{ X int }{}
	if err := s.AddElement("Bad", []Field{{Name: "a", Type: reflect.TypeOf(anon)}}); err == nil {
		t.Fatal("anonymous struct must be rejected")
	}
	if err := s.AddElement("Bad2", []Field{{Name: "m", Type: reflect.TypeOf(map[int]int{})}}); err == nil {
		t.Fatal("map must be rejected")
	}
}

func TestSchemaDuplicateTypeNameCollision(t *testing.T) {
	s := NewSchema(tns)
	if err := s.AddElement("A", []Field{{Name: "p", Type: reflect.TypeOf(Person{})}}); err != nil {
		t.Fatal(err)
	}
	// Re-registering the same type is fine.
	if err := s.AddElement("B", []Field{{Name: "p", Type: reflect.TypeOf(Person{})}}); err != nil {
		t.Fatal(err)
	}
	if !s.HasElement("A") || !s.HasElement("B") || s.HasElement("C") {
		t.Fatal("HasElement bookkeeping wrong")
	}
}

func TestSchemaDeterministicOutput(t *testing.T) {
	build := func() string {
		s := NewSchema(tns)
		_ = s.AddElement("Op", []Field{{Name: "p", Type: reflect.TypeOf(Person{})}})
		el, _ := s.Element()
		return string(xmlutil.Marshal(el))
	}
	a, b := build(), build()
	if a != b {
		t.Fatal("schema output must be deterministic")
	}
	if !strings.Contains(a, "complexType") {
		t.Fatal("unexpected schema output")
	}
}
