// Package soap implements the SOAP 1.1 envelope model used for every
// message exchanged by WSPeer: envelope construction and parsing, header
// blocks with mustUnderstand/actor semantics, and faults that round-trip as
// Go errors.
package soap

import (
	"fmt"
	"io"

	"wspeer/internal/xmlutil"
)

// Namespace is the SOAP 1.1 envelope namespace.
const Namespace = "http://schemas.xmlsoap.org/soap/envelope/"

// ContentType is the media type of SOAP 1.1 messages over HTTP.
const ContentType = "text/xml; charset=utf-8"

// ActorNext is the well-known actor URI addressing the first node that
// processes the message.
const ActorNext = "http://schemas.xmlsoap.org/soap/actor/next"

// Standard SOAP 1.1 fault codes.
var (
	FaultVersionMismatch = xmlutil.N(Namespace, "VersionMismatch")
	FaultMustUnderstand  = xmlutil.N(Namespace, "MustUnderstand")
	FaultClient          = xmlutil.N(Namespace, "Client")
	FaultServer          = xmlutil.N(Namespace, "Server")
)

// Envelope is a SOAP message: an ordered list of header blocks and either a
// list of body elements or a fault. Envelopes carry their SOAP version
// (1.1 by default); responses should be built with the request's version.
type Envelope struct {
	version Version
	headers []*xmlutil.Element
	body    []*xmlutil.Element
	fault   *Fault
}

// NewEnvelope returns an empty SOAP 1.1 envelope.
func NewEnvelope() *Envelope { return &Envelope{} }

// NewEnvelopeV returns an empty envelope of the given version.
func NewEnvelopeV(v Version) *Envelope { return &Envelope{version: v} }

// Version returns the envelope's SOAP version.
func (e *Envelope) Version() Version { return e.version }

// AddHeader appends a header block.
func (e *Envelope) AddHeader(block *xmlutil.Element) *Envelope {
	e.headers = append(e.headers, block)
	return e
}

// Headers returns the header blocks in order.
func (e *Envelope) Headers() []*xmlutil.Element { return e.headers }

// Header returns the first header block with the given name, or nil.
func (e *Envelope) Header(name xmlutil.Name) *xmlutil.Element {
	for _, h := range e.headers {
		if h.Name == name {
			return h
		}
	}
	return nil
}

// AddBodyElement appends a body child. It panics if the envelope already
// carries a fault, which is a programming error.
func (e *Envelope) AddBodyElement(el *xmlutil.Element) *Envelope {
	if e.fault != nil {
		panic("soap: cannot add body elements to a fault envelope")
	}
	e.body = append(e.body, el)
	return e
}

// Body returns the body elements in order (nil for fault envelopes).
func (e *Envelope) Body() []*xmlutil.Element { return e.body }

// FirstBodyElement returns the first body element, or nil.
func (e *Envelope) FirstBodyElement() *xmlutil.Element {
	if len(e.body) == 0 {
		return nil
	}
	return e.body[0]
}

// SetFault makes the envelope a fault message, discarding body elements.
func (e *Envelope) SetFault(f *Fault) *Envelope {
	e.fault = f
	e.body = nil
	return e
}

// Fault returns the envelope's fault, or nil.
func (e *Envelope) Fault() *Fault { return e.fault }

// IsFault reports whether the envelope carries a fault.
func (e *Envelope) IsFault() bool { return e.fault != nil }

// SetMustUnderstand marks a header block with soapenv:mustUnderstand="1".
// The attribute is written in the 1.1 namespace and normalized to the
// envelope's version at render time.
func SetMustUnderstand(block *xmlutil.Element) {
	block.SetAttr(xmlutil.N(Namespace, "mustUnderstand"), "1")
}

// MustUnderstand reports whether a header block requires understanding,
// in either SOAP version's vocabulary.
func MustUnderstand(block *xmlutil.Element) bool {
	if v, ok := block.Attr(xmlutil.N(Namespace, "mustUnderstand")); ok {
		return v == "1" || v == "true"
	}
	v, ok := block.Attr(xmlutil.N(Namespace12, "mustUnderstand"))
	return ok && (v == "1" || v == "true")
}

// SetActor targets a header block at a specific actor URI.
func SetActor(block *xmlutil.Element, actor string) {
	block.SetAttr(xmlutil.N(Namespace, "actor"), actor)
}

// Actor returns a header block's actor URI ("" when absent).
func Actor(block *xmlutil.Element) string {
	v, _ := block.Attr(xmlutil.N(Namespace, "actor"))
	return v
}

// Element renders the envelope as an element tree in its version's
// namespace. Header attributes expressed in the other version's vocabulary
// (mustUnderstand, actor/role) are normalized.
func (e *Envelope) Element() *xmlutil.Element {
	ns := e.version.Namespace()
	root := xmlutil.NewElement(xmlutil.N(ns, "Envelope"))
	root.DeclarePrefix("soapenv", ns)
	if len(e.headers) > 0 {
		hdr := root.NewChild(xmlutil.N(ns, "Header"))
		for _, h := range e.headers {
			hc := h.Clone()
			normalizeHeaderAttrs(hc, e.version)
			hdr.AddChild(hc)
		}
	}
	body := root.NewChild(xmlutil.N(ns, "Body"))
	if e.fault != nil {
		if e.version == SOAP12 {
			body.AddChild(e.fault.element12())
		} else {
			body.AddChild(e.fault.element())
		}
	} else {
		for _, b := range e.body {
			body.AddChild(b.Clone())
		}
	}
	return root
}

// normalizeHeaderAttrs rewrites version-scoped header attributes into the
// target version's vocabulary.
func normalizeHeaderAttrs(block *xmlutil.Element, v Version) {
	from, to := Namespace12, Namespace
	actorFrom, actorTo := "role", "actor"
	if v == SOAP12 {
		from, to = Namespace, Namespace12
		actorFrom, actorTo = "actor", "role"
	}
	if val, ok := block.Attr(xmlutil.N(from, "mustUnderstand")); ok {
		block.Attrs = removeAttr(block.Attrs, xmlutil.N(from, "mustUnderstand"))
		block.SetAttr(xmlutil.N(to, "mustUnderstand"), val)
	}
	if val, ok := block.Attr(xmlutil.N(from, actorFrom)); ok {
		block.Attrs = removeAttr(block.Attrs, xmlutil.N(from, actorFrom))
		block.SetAttr(xmlutil.N(to, actorTo), val)
	}
}

func removeAttr(attrs []xmlutil.Attr, name xmlutil.Name) []xmlutil.Attr {
	out := attrs[:0]
	for _, a := range attrs {
		if a.Name != name {
			out = append(out, a)
		}
	}
	return out
}

// render builds a transient element tree for serialization. Unlike
// Element(), parentless header and body elements are adopted into the tree
// directly — no deep clone — which is safe because the tree lives only for
// the duration of one marshal call; the returned cleanup detaches them
// again, restoring their parentless state. Elements that already live in
// another tree, or headers that need version normalization, are cloned as
// before.
func (e *Envelope) render() (root *xmlutil.Element, cleanup func()) {
	ns := e.version.Namespace()
	root = xmlutil.NewElement(xmlutil.N(ns, "Envelope"))
	root.DeclarePrefix("soapenv", ns)
	var hdr, body *xmlutil.Element
	if len(e.headers) > 0 {
		hdr = root.NewChild(xmlutil.N(ns, "Header"))
		for _, h := range e.headers {
			if h.Parent() != nil || headerNeedsNormalize(h, e.version) {
				hc := h.Clone()
				normalizeHeaderAttrs(hc, e.version)
				hdr.AddChild(hc)
			} else {
				hdr.AddChild(h)
			}
		}
	}
	body = root.NewChild(xmlutil.N(ns, "Body"))
	if e.fault != nil {
		if e.version == SOAP12 {
			body.AddChild(e.fault.element12())
		} else {
			body.AddChild(e.fault.element())
		}
	} else {
		for _, b := range e.body {
			if b.Parent() != nil {
				body.AddChild(b.Clone())
			} else {
				body.AddChild(b)
			}
		}
	}
	return root, func() {
		// Detach everything from the transient tree. Cloned children are
		// garbage anyway; shared ones return to their parentless state.
		if hdr != nil {
			hdr.DetachChildren()
		}
		body.DetachChildren()
	}
}

// headerNeedsNormalize reports whether a header block carries attributes in
// the other SOAP version's vocabulary that Element()/render() would rewrite.
func headerNeedsNormalize(block *xmlutil.Element, v Version) bool {
	from, actorFrom := Namespace12, "role"
	if v == SOAP12 {
		from, actorFrom = Namespace, "actor"
	}
	if _, ok := block.Attr(xmlutil.N(from, "mustUnderstand")); ok {
		return true
	}
	_, ok := block.Attr(xmlutil.N(from, actorFrom))
	return ok
}

// Marshal serializes the envelope to bytes. The serialization path is
// pooled and clone-free: building the wire form of an envelope allocates
// only the returned byte slice (see render and xmlutil.Marshal).
func (e *Envelope) Marshal() []byte {
	root, cleanup := e.render()
	out := xmlutil.Marshal(root)
	cleanup()
	return out
}

// MarshalTo serializes the envelope directly to w with no intermediate
// byte-slice copy — the streaming counterpart of Marshal for response
// writers and sockets.
func (e *Envelope) MarshalTo(w io.Writer) error {
	root, cleanup := e.render()
	err := xmlutil.MarshalTo(w, root)
	cleanup()
	return err
}

// Parse reads a SOAP 1.1 envelope from bytes.
func Parse(data []byte) (*Envelope, error) {
	root, err := xmlutil.ParseBytes(data)
	if err != nil {
		return nil, fmt.Errorf("soap: %w", err)
	}
	return FromElement(root)
}

// FromElement interprets an already-parsed element tree as an envelope of
// either SOAP version.
func FromElement(root *xmlutil.Element) (*Envelope, error) {
	var version Version
	switch root.Name {
	case xmlutil.N(Namespace, "Envelope"):
		version = SOAP11
	case xmlutil.N(Namespace12, "Envelope"):
		version = SOAP12
	default:
		if root.Name.Local == "Envelope" {
			return nil, &VersionMismatchError{Got: root.Name.Space}
		}
		return nil, fmt.Errorf("soap: document element is %v, not Envelope", root.Name)
	}
	ns := version.Namespace()
	env := NewEnvelopeV(version)
	if hdr := root.Child(xmlutil.N(ns, "Header")); hdr != nil {
		env.headers = append(env.headers, hdr.Elements()...)
	}
	body := root.Child(xmlutil.N(ns, "Body"))
	if body == nil {
		return nil, fmt.Errorf("soap: envelope has no Body")
	}
	if f := body.Child(xmlutil.N(ns, "Fault")); f != nil {
		var fault *Fault
		var err error
		if version == SOAP12 {
			fault, err = faultFromElement12(f)
		} else {
			fault, err = faultFromElement(f)
		}
		if err != nil {
			return nil, err
		}
		env.fault = fault
		return env, nil
	}
	env.body = body.Elements()
	return env, nil
}

// VersionMismatchError reports an envelope in an unsupported SOAP version's
// namespace.
type VersionMismatchError struct{ Got string }

// Error implements the error interface.
func (e *VersionMismatchError) Error() string {
	return fmt.Sprintf("soap: unsupported envelope namespace %q (SOAP 1.1 and 1.2 are supported)", e.Got)
}

// ---------------------------------------------------------------------------
// Faults

// Fault is a SOAP 1.1 fault. It implements error so engine and application
// code can return it directly.
type Fault struct {
	Code   xmlutil.Name // e.g. FaultServer
	String string       // human-readable explanation
	Actor  string       // optional URI of the faulting node
	Detail *xmlutil.Element
}

// NewFault constructs a fault with the given code and message.
func NewFault(code xmlutil.Name, format string, args ...interface{}) *Fault {
	return &Fault{Code: code, String: fmt.Sprintf(format, args...)}
}

// ServerFault wraps an application error as a Server fault.
func ServerFault(err error) *Fault {
	if f, ok := err.(*Fault); ok {
		return f
	}
	return NewFault(FaultServer, "%s", err.Error())
}

// Error implements the error interface.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault [%s]: %s", f.Code.Local, f.String)
}

// ErrorClass classifies faults for the telemetry flight recorder.
func (f *Fault) ErrorClass() string { return "fault" }

// IsClient reports whether the fault blames the sender.
func (f *Fault) IsClient() bool { return f.Code == FaultClient }

func (f *Fault) element() *xmlutil.Element {
	el := xmlutil.NewElement(xmlutil.N(Namespace, "Fault"))
	// Per SOAP 1.1 the fault sub-elements are unqualified; faultcode holds
	// a QName value.
	code := el.NewChild(xmlutil.N("", "faultcode"))
	code.SetText(xmlutil.QNameValue(el, f.Code))
	el.NewChild(xmlutil.N("", "faultstring")).SetText(f.String)
	if f.Actor != "" {
		el.NewChild(xmlutil.N("", "faultactor")).SetText(f.Actor)
	}
	if f.Detail != nil {
		el.NewChild(xmlutil.N("", "detail")).AddChild(f.Detail.Clone())
	}
	return el
}

func faultFromElement(el *xmlutil.Element) (*Fault, error) {
	f := &Fault{}
	if c := el.ChildLocal("faultcode"); c != nil {
		qn, err := c.ResolveQName(c.TrimmedText())
		if err != nil {
			// Tolerate unresolvable prefixes from sloppy peers: keep local.
			qn = xmlutil.N("", c.TrimmedText())
		}
		f.Code = qn
	}
	if s := el.ChildLocal("faultstring"); s != nil {
		f.String = s.TrimmedText()
	}
	if a := el.ChildLocal("faultactor"); a != nil {
		f.Actor = a.TrimmedText()
	}
	if d := el.ChildLocal("detail"); d != nil {
		if kids := d.Elements(); len(kids) > 0 {
			f.Detail = kids[0]
		}
	}
	return f, nil
}
