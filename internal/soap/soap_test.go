package soap

import (
	"errors"
	"strings"
	"testing"

	"wspeer/internal/xmlutil"
)

const appNS = "http://example.org/app"

func TestEnvelopeRoundTrip(t *testing.T) {
	env := NewEnvelope()
	hdr := xmlutil.NewElement(xmlutil.N(appNS, "TraceID")).SetText("abc-123")
	SetMustUnderstand(hdr)
	SetActor(hdr, ActorNext)
	env.AddHeader(hdr)
	body := xmlutil.NewElement(xmlutil.N(appNS, "Echo"))
	body.NewChild(xmlutil.N(appNS, "msg")).SetText("hello")
	env.AddBodyElement(body)

	data := env.Marshal()
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, data)
	}
	if back.IsFault() {
		t.Fatal("unexpected fault")
	}
	h := back.Header(xmlutil.N(appNS, "TraceID"))
	if h == nil || h.Text() != "abc-123" {
		t.Fatalf("header lost: %s", data)
	}
	if !MustUnderstand(h) {
		t.Fatal("mustUnderstand lost")
	}
	if Actor(h) != ActorNext {
		t.Fatalf("actor = %q", Actor(h))
	}
	b := back.FirstBodyElement()
	if b == nil || b.Name != xmlutil.N(appNS, "Echo") {
		t.Fatalf("body lost: %s", data)
	}
	if got := b.Child(xmlutil.N(appNS, "msg")).Text(); got != "hello" {
		t.Fatalf("body content: %q", got)
	}
}

func TestEnvelopeWithoutHeaders(t *testing.T) {
	env := NewEnvelope()
	env.AddBodyElement(xmlutil.NewElement(xmlutil.N(appNS, "Ping")))
	data := string(env.Marshal())
	if strings.Contains(data, "Header") {
		t.Fatalf("empty Header element should be omitted: %s", data)
	}
	back, err := Parse([]byte(data))
	if err != nil || len(back.Headers()) != 0 {
		t.Fatalf("parse: %v", err)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	detail := xmlutil.NewElement(xmlutil.N(appNS, "Cause")).SetText("db down")
	f := NewFault(FaultServer, "backend unavailable: %s", "db")
	f.Actor = "urn:node-7"
	f.Detail = detail
	env := NewEnvelope().SetFault(f)

	data := env.Marshal()
	back, err := Parse(data)
	if err != nil {
		t.Fatalf("parse fault: %v\n%s", err, data)
	}
	if !back.IsFault() {
		t.Fatalf("fault not detected: %s", data)
	}
	bf := back.Fault()
	if bf.Code != FaultServer {
		t.Fatalf("code = %v", bf.Code)
	}
	if bf.String != "backend unavailable: db" {
		t.Fatalf("string = %q", bf.String)
	}
	if bf.Actor != "urn:node-7" {
		t.Fatalf("actor = %q", bf.Actor)
	}
	if bf.Detail == nil || bf.Detail.Name != xmlutil.N(appNS, "Cause") {
		t.Fatalf("detail = %v", bf.Detail)
	}
	if !strings.Contains(bf.Error(), "backend unavailable") {
		t.Fatalf("Error() = %q", bf.Error())
	}
}

func TestFaultIsError(t *testing.T) {
	var err error = NewFault(FaultClient, "bad request")
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatal("fault must satisfy error")
	}
	if !f.IsClient() {
		t.Fatal("IsClient")
	}
	if NewFault(FaultServer, "x").IsClient() {
		t.Fatal("server fault is not client")
	}
}

func TestServerFaultWrapping(t *testing.T) {
	plain := errors.New("boom")
	f := ServerFault(plain)
	if f.Code != FaultServer || f.String != "boom" {
		t.Fatalf("wrap: %+v", f)
	}
	orig := NewFault(FaultClient, "keep me")
	if ServerFault(orig) != orig {
		t.Fatal("existing faults must pass through unchanged")
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse([]byte("<not-an-envelope/>")); err == nil {
		t.Fatal("non-envelope accepted")
	}
	if _, err := Parse([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	// Envelope without a Body.
	noBody := `<soapenv:Envelope xmlns:soapenv="` + Namespace + `"/>`
	if _, err := Parse([]byte(noBody)); err == nil {
		t.Fatal("missing Body accepted")
	}
}

func TestVersionMismatch(t *testing.T) {
	unknown := `<env:Envelope xmlns:env="urn:future-soap"><env:Body/></env:Envelope>`
	_, err := Parse([]byte(unknown))
	var vm *VersionMismatchError
	if !errors.As(err, &vm) {
		t.Fatalf("want VersionMismatchError, got %v", err)
	}
	if !strings.Contains(vm.Error(), "future-soap") {
		t.Fatalf("message: %v", vm)
	}
}

func TestAddBodyToFaultPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	env := NewEnvelope().SetFault(NewFault(FaultServer, "x"))
	env.AddBodyElement(xmlutil.NewElement(xmlutil.N(appNS, "X")))
}

func TestMultipleBodyElements(t *testing.T) {
	env := NewEnvelope()
	env.AddBodyElement(xmlutil.NewElement(xmlutil.N(appNS, "A")))
	env.AddBodyElement(xmlutil.NewElement(xmlutil.N(appNS, "B")))
	back, err := Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Body()) != 2 {
		t.Fatalf("body count = %d", len(back.Body()))
	}
	if back.Body()[1].Name.Local != "B" {
		t.Fatal("body order lost")
	}
}

func TestHeaderLookupMiss(t *testing.T) {
	env := NewEnvelope()
	if env.Header(xmlutil.N(appNS, "Nope")) != nil {
		t.Fatal("lookup on empty headers")
	}
	if env.FirstBodyElement() != nil {
		t.Fatal("empty body")
	}
}

func TestParsedFaultWithUnresolvablePrefix(t *testing.T) {
	// A peer may emit a faultcode with a prefix it forgot to declare.
	raw := `<soapenv:Envelope xmlns:soapenv="` + Namespace + `"><soapenv:Body>
	  <soapenv:Fault><faultcode>undeclared:Server</faultcode><faultstring>x</faultstring></soapenv:Fault>
	</soapenv:Body></soapenv:Envelope>`
	env, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !env.IsFault() || env.Fault().Code.Local != "undeclared:Server" {
		t.Fatalf("lenient faultcode handling: %+v", env.Fault())
	}
}

func TestEnvelopeElementIsolation(t *testing.T) {
	// Mutating the rendered tree must not corrupt the envelope.
	body := xmlutil.NewElement(xmlutil.N(appNS, "Op"))
	env := NewEnvelope().AddBodyElement(body)
	el := env.Element()
	el.Find(xmlutil.N(appNS, "Op")).SetText("mutated")
	if body.Text() == "mutated" {
		t.Fatal("Element must deep-copy body blocks")
	}
}
