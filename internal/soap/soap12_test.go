package soap

import (
	"strings"
	"testing"

	"wspeer/internal/xmlutil"
)

func TestVersionProperties(t *testing.T) {
	if SOAP11.Namespace() != Namespace || SOAP12.Namespace() != Namespace12 {
		t.Fatal("namespaces")
	}
	if !strings.HasPrefix(SOAP11.ContentType(), "text/xml") {
		t.Fatal("1.1 content type")
	}
	if !strings.HasPrefix(SOAP12.ContentType(), "application/soap+xml") {
		t.Fatal("1.2 content type")
	}
	if SOAP11.String() == SOAP12.String() {
		t.Fatal("String")
	}
}

func TestSOAP12EnvelopeRoundTrip(t *testing.T) {
	env := NewEnvelopeV(SOAP12)
	hdr := xmlutil.NewElement(xmlutil.N(appNS, "TraceID")).SetText("t-1")
	SetMustUnderstand(hdr) // written in 1.1 vocabulary, normalized at render
	env.AddHeader(hdr)
	body := xmlutil.NewElement(xmlutil.N(appNS, "Echo"))
	body.NewChild(xmlutil.N(appNS, "msg")).SetText("hi")
	env.AddBodyElement(body)

	data := env.Marshal()
	if !strings.Contains(string(data), Namespace12) {
		t.Fatalf("not serialized in 1.2 namespace:\n%s", data)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Version() != SOAP12 {
		t.Fatalf("version = %v", back.Version())
	}
	h := back.Header(xmlutil.N(appNS, "TraceID"))
	if h == nil {
		t.Fatal("header lost")
	}
	// The mustUnderstand attribute must be in the 1.2 namespace on the
	// wire, and MustUnderstand must still see it.
	if _, ok := h.Attr(xmlutil.N(Namespace12, "mustUnderstand")); !ok {
		t.Fatalf("mustUnderstand not normalized to 1.2: %s", data)
	}
	if !MustUnderstand(h) {
		t.Fatal("MustUnderstand does not read 1.2 attribute")
	}
	if back.FirstBodyElement().Name != xmlutil.N(appNS, "Echo") {
		t.Fatal("body lost")
	}
}

func TestSOAP12ActorRoleNormalization(t *testing.T) {
	env := NewEnvelopeV(SOAP12)
	hdr := xmlutil.NewElement(xmlutil.N(appNS, "H"))
	SetActor(hdr, "urn:some-role")
	env.AddHeader(hdr)
	env.AddBodyElement(xmlutil.NewElement(xmlutil.N(appNS, "X")))
	back, err := Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	h := back.Header(xmlutil.N(appNS, "H"))
	if v, ok := h.Attr(xmlutil.N(Namespace12, "role")); !ok || v != "urn:some-role" {
		t.Fatalf("actor not renamed to role: %v", h.Attrs)
	}
}

func TestSOAP12FaultRoundTrip(t *testing.T) {
	f := NewFault(FaultClient, "bad input")
	f.Actor = "urn:node"
	f.Detail = xmlutil.NewElement(xmlutil.N(appNS, "Why")).SetText("because")
	env := NewEnvelopeV(SOAP12).SetFault(f)
	data := env.Marshal()
	if !strings.Contains(string(data), "Sender") {
		t.Fatalf("1.2 fault must use Sender:\n%s", data)
	}
	back, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsFault() || back.Version() != SOAP12 {
		t.Fatalf("fault lost: %+v", back)
	}
	bf := back.Fault()
	// The code canonicalizes back to the 1.1 vocabulary.
	if bf.Code != FaultClient {
		t.Fatalf("code = %v", bf.Code)
	}
	if bf.String != "bad input" || bf.Actor != "urn:node" {
		t.Fatalf("fields: %+v", bf)
	}
	if bf.Detail == nil || bf.Detail.Text() != "because" {
		t.Fatalf("detail: %+v", bf.Detail)
	}
}

func TestSOAP12ServerFaultMapsToReceiver(t *testing.T) {
	env := NewEnvelopeV(SOAP12).SetFault(NewFault(FaultServer, "boom"))
	data := string(env.Marshal())
	if !strings.Contains(data, "Receiver") {
		t.Fatalf("Server must render as Receiver:\n%s", data)
	}
	back, err := Parse([]byte(data))
	if err != nil || back.Fault().Code != FaultServer {
		t.Fatalf("round trip: %v %+v", err, back.Fault())
	}
}

func TestSOAP12CustomFaultCode(t *testing.T) {
	// Non-standard codes keep their local name across versions.
	env := NewEnvelopeV(SOAP12).SetFault(NewFault(FaultMustUnderstand, "x"))
	back, err := Parse(env.Marshal())
	if err != nil || back.Fault().Code != FaultMustUnderstand {
		t.Fatalf("round trip: %v %+v", err, back.Fault())
	}
}

func TestSOAP12FaultWithoutCodeRejected(t *testing.T) {
	raw := `<env:Envelope xmlns:env="` + Namespace12 + `"><env:Body><env:Fault>
	  <env:Reason><env:Text>oops</env:Text></env:Reason>
	</env:Fault></env:Body></env:Envelope>`
	if _, err := Parse([]byte(raw)); err == nil {
		t.Fatal("1.2 fault without Code accepted")
	}
}

func TestCrossVersionIsolation(t *testing.T) {
	// A 1.1 envelope does not accidentally pick up 1.2 structure and vice
	// versa.
	env11 := NewEnvelope()
	env11.AddBodyElement(xmlutil.NewElement(xmlutil.N(appNS, "A")))
	if strings.Contains(string(env11.Marshal()), Namespace12) {
		t.Fatal("1.1 envelope leaked 1.2 namespace")
	}
	env12 := NewEnvelopeV(SOAP12)
	env12.AddBodyElement(xmlutil.NewElement(xmlutil.N(appNS, "A")))
	out := string(env12.Marshal())
	if strings.Contains(out, `"`+Namespace+`"`) {
		t.Fatalf("1.2 envelope leaked 1.1 namespace:\n%s", out)
	}
}
