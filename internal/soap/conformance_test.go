package soap

import (
	"testing"

	"wspeer/internal/xmlutil"
)

// Conformance fixtures: envelopes as other 2004-era stacks put them on the
// wire. The engine must parse all of these.

func TestAxisStyleEnvelope(t *testing.T) {
	// Axis 1.x: soapenv prefix, xsi/xsd declarations on the root, an
	// xsi:type attribute on the parameter.
	raw := `<?xml version="1.0" encoding="UTF-8"?>
<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/"
    xmlns:xsd="http://www.w3.org/2001/XMLSchema"
    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance">
  <soapenv:Body>
    <echo xmlns="http://example.org/axis/EchoService">
      <in0 xsi:type="xsd:string">hello axis</in0>
    </echo>
  </soapenv:Body>
</soapenv:Envelope>`
	env, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	body := env.FirstBodyElement()
	if body == nil || body.Name != xmlutil.N("http://example.org/axis/EchoService", "echo") {
		t.Fatalf("body = %v", body)
	}
	in0 := body.ChildLocal("in0")
	if in0 == nil || in0.Text() != "hello axis" {
		t.Fatalf("in0 = %v", in0)
	}
	// The xsi:type attribute must survive as an ordinary attribute.
	if v, ok := in0.Attr(xmlutil.N("http://www.w3.org/2001/XMLSchema-instance", "type")); !ok || v == "" {
		t.Fatal("xsi:type lost")
	}
}

func TestDotNetStyleEnvelope(t *testing.T) {
	// .NET asmx: soap prefix, default namespace on the wrapper.
	raw := `<?xml version="1.0" encoding="utf-8"?>
<soap:Envelope xmlns:soap="http://schemas.xmlsoap.org/soap/envelope/"
    xmlns:xsi="http://www.w3.org/2001/XMLSchema-instance"
    xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <soap:Body>
    <Add xmlns="http://tempuri.org/">
      <a>19</a>
      <b>23</b>
    </Add>
  </soap:Body>
</soap:Envelope>`
	env, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	add := env.FirstBodyElement()
	if add.Name != xmlutil.N("http://tempuri.org/", "Add") {
		t.Fatalf("wrapper = %v", add.Name)
	}
	if add.ChildLocal("a").Text() != "19" || add.ChildLocal("b").Text() != "23" {
		t.Fatal("parameters lost")
	}
}

func TestAxisStyleFault(t *testing.T) {
	// Axis fault with namespaced detail and a stack-trace-ish element.
	raw := `<soapenv:Envelope xmlns:soapenv="http://schemas.xmlsoap.org/soap/envelope/">
 <soapenv:Body>
  <soapenv:Fault>
   <faultcode>soapenv:Server.userException</faultcode>
   <faultstring>java.rmi.RemoteException: boom</faultstring>
   <detail>
    <ns1:exceptionName xmlns:ns1="http://xml.apache.org/axis/">java.rmi.RemoteException</ns1:exceptionName>
   </detail>
  </soapenv:Fault>
 </soapenv:Body>
</soapenv:Envelope>`
	env, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !env.IsFault() {
		t.Fatal("fault not detected")
	}
	f := env.Fault()
	// Dotted subcodes keep their full local part.
	if f.Code.Local != "Server.userException" || f.Code.Space != Namespace {
		t.Fatalf("code = %v", f.Code)
	}
	if f.Detail == nil || f.Detail.Name.Local != "exceptionName" {
		t.Fatalf("detail = %v", f.Detail)
	}
}

func TestWhitespaceHeavyEnvelope(t *testing.T) {
	// Pretty-printed documents with indentation everywhere must parse to
	// the same logical structure.
	raw := "<soapenv:Envelope xmlns:soapenv=\"" + Namespace + "\">\n\t\n  <soapenv:Header>\n    " +
		"<t:Trace xmlns:t=\"urn:t\">  abc  </t:Trace>\n  </soapenv:Header>\n" +
		"  <soapenv:Body>\n    <op xmlns=\"urn:svc\">\n      <p>  v  </p>\n    </op>\n  </soapenv:Body>\n" +
		"</soapenv:Envelope>"
	env, err := Parse([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Headers()) != 1 {
		t.Fatalf("headers = %d", len(env.Headers()))
	}
	if env.Headers()[0].TrimmedText() != "abc" {
		t.Fatalf("header text = %q", env.Headers()[0].Text())
	}
	p := env.FirstBodyElement().ChildLocal("p")
	if p.TrimmedText() != "v" {
		t.Fatalf("param text = %q", p.Text())
	}
}

func TestUTF8Payloads(t *testing.T) {
	env := NewEnvelope()
	body := xmlutil.NewElement(xmlutil.N("urn:i18n", "echo"))
	const text = "héllo wörld — 日本語 — ελληνικά — 🜛"
	body.NewChild(xmlutil.N("urn:i18n", "msg")).SetText(text)
	env.AddBodyElement(body)
	back, err := Parse(env.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got := back.FirstBodyElement().ChildLocal("msg").Text(); got != text {
		t.Fatalf("utf8 round trip: %q", got)
	}
}
