package soap

import (
	"fmt"

	"wspeer/internal/xmlutil"
)

// Namespace12 is the SOAP 1.2 envelope namespace.
const Namespace12 = "http://www.w3.org/2003/05/soap-envelope"

// ContentType12 is the SOAP 1.2 media type.
const ContentType12 = "application/soap+xml; charset=utf-8"

// Version selects the envelope serialization.
type Version int

// Supported SOAP versions.
const (
	SOAP11 Version = iota
	SOAP12
)

// Namespace returns the version's envelope namespace.
func (v Version) Namespace() string {
	if v == SOAP12 {
		return Namespace12
	}
	return Namespace
}

// ContentType returns the version's media type.
func (v Version) ContentType() string {
	if v == SOAP12 {
		return ContentType12
	}
	return ContentType
}

// String implements fmt.Stringer.
func (v Version) String() string {
	if v == SOAP12 {
		return "SOAP 1.2"
	}
	return "SOAP 1.1"
}

// Fault code mapping: the Fault struct stores the canonical (1.1
// namespace) code; SOAP 1.2 renames Client/Server to Sender/Receiver.
func faultCode12(code xmlutil.Name) xmlutil.Name {
	switch code {
	case FaultClient:
		return xmlutil.N(Namespace12, "Sender")
	case FaultServer:
		return xmlutil.N(Namespace12, "Receiver")
	default:
		return xmlutil.N(Namespace12, code.Local)
	}
}

func canonicalFaultCode(code xmlutil.Name) xmlutil.Name {
	if code.Space != Namespace12 {
		return code
	}
	switch code.Local {
	case "Sender":
		return FaultClient
	case "Receiver":
		return FaultServer
	default:
		return xmlutil.N(Namespace, code.Local)
	}
}

// element12 renders a SOAP 1.2 fault.
func (f *Fault) element12() *xmlutil.Element {
	el := xmlutil.NewElement(xmlutil.N(Namespace12, "Fault"))
	code := el.NewChild(xmlutil.N(Namespace12, "Code"))
	val := code.NewChild(xmlutil.N(Namespace12, "Value"))
	val.SetText(xmlutil.QNameValue(el, faultCode12(f.Code)))
	reason := el.NewChild(xmlutil.N(Namespace12, "Reason"))
	text := reason.NewChild(xmlutil.N(Namespace12, "Text"))
	text.SetAttr(xmlutil.N("http://www.w3.org/XML/1998/namespace", "lang"), "en")
	text.SetText(f.String)
	if f.Actor != "" {
		el.NewChild(xmlutil.N(Namespace12, "Role")).SetText(f.Actor)
	}
	if f.Detail != nil {
		el.NewChild(xmlutil.N(Namespace12, "Detail")).AddChild(f.Detail.Clone())
	}
	return el
}

func faultFromElement12(el *xmlutil.Element) (*Fault, error) {
	f := &Fault{}
	if code := el.Child(xmlutil.N(Namespace12, "Code")); code != nil {
		if val := code.Child(xmlutil.N(Namespace12, "Value")); val != nil {
			qn, err := val.ResolveQName(val.TrimmedText())
			if err != nil {
				qn = xmlutil.N(Namespace12, val.TrimmedText())
			}
			f.Code = canonicalFaultCode(qn)
		}
	}
	if reason := el.Child(xmlutil.N(Namespace12, "Reason")); reason != nil {
		if text := reason.Child(xmlutil.N(Namespace12, "Text")); text != nil {
			f.String = text.TrimmedText()
		}
	}
	if role := el.Child(xmlutil.N(Namespace12, "Role")); role != nil {
		f.Actor = role.TrimmedText()
	}
	if detail := el.Child(xmlutil.N(Namespace12, "Detail")); detail != nil {
		if kids := detail.Elements(); len(kids) > 0 {
			f.Detail = kids[0]
		}
	}
	if f.Code.IsZero() {
		return nil, fmt.Errorf("soap: 1.2 fault without a Code")
	}
	return f, nil
}
