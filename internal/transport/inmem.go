package transport

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"wspeer/internal/telemetry"
)

// mInmemCalls mirrors every network's Calls counter onto the spine, so
// one snapshot covers process-local traffic alongside the wire transports.
var mInmemCalls = telemetry.Default().Meter.Counter("transport.inmem.calls")

// InMemNetwork is a process-local transport: endpoints of the form
// mem://<host>/<path> are served by handlers registered on the network.
// It backs unit tests, the single-process examples and the latency-free
// baseline in the benchmarks.
type InMemNetwork struct {
	mu       sync.RWMutex
	handlers map[string]Handler // key: endpoint without scheme

	calls atomic.Int64
}

// NewInMemNetwork returns an empty in-memory network.
func NewInMemNetwork() *InMemNetwork {
	return &InMemNetwork{handlers: make(map[string]Handler)}
}

// Register binds a handler to an endpoint ("mem://host/path" or
// "host/path"). It replaces any previous handler at that endpoint.
func (n *InMemNetwork) Register(endpoint string, h Handler) {
	key := strings.TrimPrefix(endpoint, "mem://")
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[key] = h
}

// Unregister removes the handler for the endpoint.
func (n *InMemNetwork) Unregister(endpoint string) {
	key := strings.TrimPrefix(endpoint, "mem://")
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.handlers, key)
}

// Calls reports how many requests the network has carried.
func (n *InMemNetwork) Calls() int64 { return n.calls.Load() }

// Transport returns the client side of the network.
func (n *InMemNetwork) Transport() Transport { return (*inMemTransport)(n) }

type inMemTransport InMemNetwork

// Scheme implements Transport.
func (t *inMemTransport) Scheme() string { return "mem" }

// Post implements Poster. Delivery is the ack: the handler runs to
// completion (so its effects are observable, mirroring a completed wire
// write plus server accept) but its response is discarded.
func (t *inMemTransport) Post(ctx context.Context, req *Request) error {
	_, err := t.Call(ctx, req)
	return err
}

// Call implements Transport. The caller's context — deadline included —
// reaches the handler directly, so the in-memory substrate propagates
// deadlines natively with no wire encoding (the wire transports carry
// DeadlineHeader / the SOAP deadline header instead).
func (t *inMemTransport) Call(ctx context.Context, req *Request) (*Response, error) {
	n := (*InMemNetwork)(t)
	key := strings.TrimPrefix(req.Endpoint, "mem://")
	n.mu.RLock()
	h, ok := n.handlers[key]
	n.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport/mem: no handler at %q", req.Endpoint)
	}
	n.calls.Add(1)
	mInmemCalls.Inc()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Copy the body so handler and caller cannot alias each other's bytes.
	cp := *req
	cp.Body = append([]byte(nil), req.Body...)

	// Serve in a goroutine so the caller observes ctx expiry even while
	// the handler is still running — the behaviour a real network
	// transport gives for free. The channel is buffered so an abandoned
	// handler can finish and exit without a receiver.
	type callResult struct {
		resp *Response
		err  error
	}
	done := make(chan callResult, 1)
	go func() {
		resp, err := h.Serve(ctx, &cp)
		done <- callResult{resp, err}
	}()

	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case res := <-done:
		if res.err != nil {
			return nil, res.err
		}
		if res.resp == nil {
			return &Response{}, nil
		}
		out := *res.resp
		out.Body = append([]byte(nil), res.resp.Body...)
		return &out, nil
	}
}
