// Package transport defines WSPeer's pluggable transport layer. The paper
// treats transports as "incidental to the environment the Web service is
// deployed into"; this package makes that literal: invocations are routed
// to a Transport chosen by the endpoint URI's scheme, and new transports
// can be registered without touching application code.
//
// Three transports ship with the system: plain HTTP, HTTPG (an
// authenticated HTTP profile standing in for Globus's HTTPG), and an
// in-memory transport for tests and single-process overlays. The P2PS
// binding supplies its own pipe-based transport in internal/binding.
package transport

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Request is a transport-neutral SOAP request.
type Request struct {
	// Endpoint is the destination URI; its scheme selects the transport.
	Endpoint string
	// Action is the SOAPAction value.
	Action string
	// ContentType of Body (defaults to the SOAP 1.1 media type).
	ContentType string
	// Body is the serialized SOAP envelope.
	Body []byte
}

// Response is a transport-neutral SOAP response. A SOAP fault travels as a
// normal Response (possibly flagged by Faulted); transport-level failures
// are returned as Go errors instead.
type Response struct {
	ContentType string
	Body        []byte
	// Faulted indicates the transport-level signal that the body carries a
	// fault (HTTP 500 for the HTTP binding). Parsers should still inspect
	// the body; this flag is advisory.
	Faulted bool
}

// Transport moves one request to an endpoint and returns the response.
// One-way messages get a nil/empty Response.
type Transport interface {
	// Scheme is the URI scheme this transport serves ("http", "httpg", ...).
	Scheme() string
	// Call performs a request/response exchange.
	Call(ctx context.Context, req *Request) (*Response, error)
}

// Poster is the optional one-way side of a transport: Post delivers the
// request and returns once the transport has accepted it (the
// transport-level ack — an HTTP 2xx, a completed pipe write), without
// waiting for or decoding any application reply. Transports that do not
// implement it fall back to Call with the response discarded.
type Poster interface {
	Post(ctx context.Context, req *Request) error
}

// Handler is the server side of a transport: it consumes a request and
// produces a response. Implementations are the messaging engine or raw
// application interceptors.
type Handler interface {
	Serve(ctx context.Context, req *Request) (*Response, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, req *Request) (*Response, error)

// Serve calls f.
func (f HandlerFunc) Serve(ctx context.Context, req *Request) (*Response, error) {
	return f(ctx, req)
}

// Registry maps URI schemes to transports. The zero value is unusable; use
// NewRegistry.
type Registry struct {
	mu         sync.RWMutex
	transports map[string]Transport
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{transports: make(map[string]Transport)}
}

// Register adds (or replaces) a transport under its scheme.
func (r *Registry) Register(t Transport) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.transports[t.Scheme()] = t
}

// Lookup returns the transport for a scheme.
func (r *Registry) Lookup(scheme string) (Transport, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	t, ok := r.transports[scheme]
	return t, ok
}

// Schemes lists the registered schemes, sorted.
func (r *Registry) Schemes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.transports))
	for s := range r.transports {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Call routes the request to the transport selected by the endpoint scheme.
func (r *Registry) Call(ctx context.Context, req *Request) (*Response, error) {
	scheme := SchemeOf(req.Endpoint)
	if scheme == "" {
		return nil, fmt.Errorf("transport: endpoint %q has no scheme", req.Endpoint)
	}
	t, ok := r.Lookup(scheme)
	if !ok {
		return nil, fmt.Errorf("transport: no transport registered for scheme %q (have %v)", scheme, r.Schemes())
	}
	return t.Call(ctx, req)
}

// Post routes the request one-way to the transport selected by the
// endpoint scheme: delivery is acknowledged at the transport level only.
// Transports without a native Post are driven through Call with the
// response discarded.
func (r *Registry) Post(ctx context.Context, req *Request) error {
	scheme := SchemeOf(req.Endpoint)
	if scheme == "" {
		return fmt.Errorf("transport: endpoint %q has no scheme", req.Endpoint)
	}
	t, ok := r.Lookup(scheme)
	if !ok {
		return fmt.Errorf("transport: no transport registered for scheme %q (have %v)", scheme, r.Schemes())
	}
	if p, ok := t.(Poster); ok {
		return p.Post(ctx, req)
	}
	_, err := t.Call(ctx, req)
	return err
}

// SchemeOf extracts the URI scheme of an endpoint ("" if malformed).
func SchemeOf(endpoint string) string {
	i := strings.Index(endpoint, "://")
	if i <= 0 {
		return ""
	}
	return strings.ToLower(endpoint[:i])
}
