package transport

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"wspeer/internal/soap"
	"wspeer/internal/telemetry"
)

// Spine counters for the HTTP transport family (http and httpg share the
// same POST path).
var (
	mHTTPPosts  = telemetry.Default().Meter.Counter("transport.http.posts")
	mHTTPErrors = telemetry.Default().Meter.Counter("transport.http.errors")
)

// maxResponseBytes bounds response bodies read from the network.
const maxResponseBytes = 64 << 20

// SOAPActionHeader is the HTTP request header carrying the SOAPAction.
const SOAPActionHeader = "SOAPAction"

// sharedHTTPTransport is the tuned connection pool every HTTP-family
// transport shares by default. SOAP invocation is many small POSTs to few
// hosts, so connection reuse dominates: keep-alives on, a deep per-host
// idle pool (the default of 2 collapses under concurrent invocations and
// forces fresh TCP handshakes), and a generous idle timeout so
// steady-state traffic never reconnects.
var sharedHTTPTransport = &http.Transport{
	Proxy: http.ProxyFromEnvironment,
	DialContext: (&net.Dialer{
		Timeout:   10 * time.Second,
		KeepAlive: 30 * time.Second,
	}).DialContext,
	MaxIdleConns:          256,
	MaxIdleConnsPerHost:   32,
	IdleConnTimeout:       90 * time.Second,
	TLSHandshakeTimeout:   10 * time.Second,
	ExpectContinueTimeout: 1 * time.Second,
}

// SharedHTTPTransport exposes the tuned shared connection pool so hosts,
// bindings and tools issuing their own HTTP requests reuse the same
// keep-alive connections as the invocation path.
func SharedHTTPTransport() *http.Transport { return sharedHTTPTransport }

// respBufPool recycles response-read buffers: bodies are accumulated into
// a pooled buffer (reusing its grown capacity across calls) and then
// copied out at exact size, so the per-call garbage is one right-sized
// slice instead of every intermediate growth step.
var respBufPool = sync.Pool{
	New: func() interface{} { return new(bytes.Buffer) },
}

// maxPooledRespBuf bounds the buffer capacity the pool retains.
const maxPooledRespBuf = 1 << 20

func readBody(r io.Reader) ([]byte, error) {
	buf := respBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	// Return the buffer on every exit — success, read error, or panic in
	// ReadFrom — so an error path can never leak it from the pool.
	defer func() {
		if buf.Cap() <= maxPooledRespBuf {
			respBufPool.Put(buf)
		}
	}()
	if _, err := buf.ReadFrom(io.LimitReader(r, maxResponseBytes)); err != nil {
		return nil, err
	}
	body := make([]byte, buf.Len())
	copy(body, buf.Bytes())
	return body, nil
}

// HTTPTransport carries SOAP 1.1 over HTTP POST.
type HTTPTransport struct {
	// Client is the underlying HTTP client. Defaults to a client with a
	// 30-second timeout over the shared tuned connection pool.
	Client *http.Client
}

// NewHTTPTransport returns an HTTP transport with sane defaults:
// a 30-second overall timeout and the shared keep-alive connection pool.
func NewHTTPTransport() *HTTPTransport {
	return &HTTPTransport{Client: &http.Client{
		Timeout:   30 * time.Second,
		Transport: sharedHTTPTransport,
	}}
}

// Scheme implements Transport.
func (t *HTTPTransport) Scheme() string { return "http" }

// Call implements Transport.
func (t *HTTPTransport) Call(ctx context.Context, req *Request) (*Response, error) {
	return t.post(ctx, req.Endpoint, req, nil)
}

// Post implements Poster: the message is delivered and the HTTP status is
// the only acknowledgement — any response body (a host answering a one-way
// message with 202 Accepted carries none anyway) is discarded unread by
// the SOAP layer.
func (t *HTTPTransport) Post(ctx context.Context, req *Request) error {
	_, err := t.post(ctx, req.Endpoint, req, nil)
	return err
}

func (t *HTTPTransport) post(ctx context.Context, url string, req *Request, decorate func(*http.Request)) (*Response, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(req.Body))
	if err != nil {
		return nil, fmt.Errorf("transport/http: %w", err)
	}
	ct := req.ContentType
	if ct == "" {
		ct = soap.ContentType
	}
	hr.Header.Set("Content-Type", ct)
	// SOAP 1.1 requires the SOAPAction header, quoted.
	hr.Header.Set(SOAPActionHeader, `"`+req.Action+`"`)
	// Propagate the caller's trace across the wire so the server-side
	// dispatch span links to the client invocation span.
	if sc, ok := telemetry.SpanContextFromContext(ctx); ok {
		hr.Header.Set(telemetry.TraceHeader, telemetry.FormatTraceHeader(sc))
	}
	// Propagate the caller's deadline so the server can drop work the
	// caller has already abandoned (see deadline.go).
	if dl, ok := ctx.Deadline(); ok {
		hr.Header.Set(DeadlineHeader, FormatDeadline(dl))
	}
	if decorate != nil {
		decorate(hr)
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	mHTTPPosts.Inc()
	resp, err := client.Do(hr)
	if err != nil {
		mHTTPErrors.Inc()
		return nil, fmt.Errorf("transport/http: POST %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := readBody(resp.Body)
	if err != nil {
		mHTTPErrors.Inc()
		return nil, fmt.Errorf("transport/http: reading response: %w", err)
	}
	switch {
	case resp.StatusCode == http.StatusOK,
		resp.StatusCode == http.StatusAccepted,
		resp.StatusCode == http.StatusNoContent:
		return &Response{ContentType: resp.Header.Get("Content-Type"), Body: body}, nil
	case resp.StatusCode == http.StatusInternalServerError && looksLikeXML(body):
		// Per the SOAP/HTTP binding a fault travels as a 500 with an
		// envelope body. Hand it up for envelope-level handling.
		return &Response{ContentType: resp.Header.Get("Content-Type"), Body: body, Faulted: true}, nil
	default:
		mHTTPErrors.Inc()
		return nil, &StatusError{
			URL:        url,
			Code:       resp.StatusCode,
			Status:     resp.Status,
			RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
		}
	}
}

// StatusError is an HTTP exchange that completed with a status the SOAP
// binding has no mapping for — most importantly 503 Service Unavailable
// from an overloaded host. When the response carried a Retry-After header
// its value is preserved, and RetryAfterHint surfaces it to backoff logic
// (pipeline.Retry floors its next delay on it).
type StatusError struct {
	// URL is the POSTed endpoint.
	URL string
	// Code is the HTTP status code.
	Code int
	// Status is the full status line ("503 Service Unavailable").
	Status string
	// RetryAfter is the server-advertised backoff (0 when absent).
	RetryAfter time.Duration
}

// Error implements error, keeping the historical "unexpected status"
// message shape.
func (e *StatusError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("transport/http: POST %s: unexpected status %s (retry after %s)", e.URL, e.Status, e.RetryAfter)
	}
	return fmt.Sprintf("transport/http: POST %s: unexpected status %s", e.URL, e.Status)
}

// RetryAfterHint returns the server-advertised backoff, satisfying the
// pipeline's RetryAfterHinter without a package dependency.
func (e *StatusError) RetryAfterHint() time.Duration { return e.RetryAfter }

// parseRetryAfter reads a Retry-After header's delay-seconds form (the
// form WSPeer hosts emit). The HTTP-date form is ignored.
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func looksLikeXML(b []byte) bool {
	return bytes.HasPrefix(bytes.TrimSpace(b), []byte("<"))
}

// ---------------------------------------------------------------------------
// HTTPG: the authenticated HTTP profile.
//
// The paper supports HTTPG, "the transport used by Globus for authenticated
// communication". The Globus GSI stack is proprietary to that toolkit; what
// matters architecturally is that a second, credentialed transport coexists
// with plain HTTP behind the same Invocation. HTTPG here authenticates each
// request with an HMAC-SHA256 over the body using a shared secret, which
// exercises the same code paths (scheme-based routing, decorated requests,
// server-side verification) as a full GSI implementation would.

// HTTPGAuthHeader carries the request's authentication proof.
const HTTPGAuthHeader = "X-WSPeer-HTTPG-Auth"

// HTTPGTransport is an authenticated HTTP transport for httpg:// endpoints.
type HTTPGTransport struct {
	HTTPTransport
	Secret []byte
}

// NewHTTPGTransport returns an HTTPG transport using the shared secret.
// It reuses the same tuned keep-alive connection pool as plain HTTP.
func NewHTTPGTransport(secret []byte) *HTTPGTransport {
	return &HTTPGTransport{
		HTTPTransport: *NewHTTPTransport(),
		Secret:        secret,
	}
}

// Scheme implements Transport.
func (t *HTTPGTransport) Scheme() string { return "httpg" }

// Call implements Transport. The httpg:// endpoint is rewritten to http://
// on the wire with the authentication header attached.
func (t *HTTPGTransport) Call(ctx context.Context, req *Request) (*Response, error) {
	url := "http://" + strings.TrimPrefix(req.Endpoint, "httpg://")
	mac := SignHTTPG(t.Secret, req.Body)
	return t.post(ctx, url, req, func(hr *http.Request) {
		hr.Header.Set(HTTPGAuthHeader, mac)
	})
}

// Post implements Poster with the same URL rewrite and authentication
// proof as Call.
func (t *HTTPGTransport) Post(ctx context.Context, req *Request) error {
	_, err := t.Call(ctx, req)
	return err
}

// SignHTTPG computes the authentication proof for a request body.
func SignHTTPG(secret, body []byte) string {
	m := hmac.New(sha256.New, secret)
	m.Write(body)
	return hex.EncodeToString(m.Sum(nil))
}

// VerifyHTTPG checks an authentication proof. It is used by the server-side
// HTTP host for services deployed with the httpg profile.
func VerifyHTTPG(secret, body []byte, proof string) bool {
	want := SignHTTPG(secret, body)
	return hmac.Equal([]byte(want), []byte(proof))
}
