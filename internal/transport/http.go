package transport

import (
	"bytes"
	"context"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"wspeer/internal/soap"
)

// maxResponseBytes bounds response bodies read from the network.
const maxResponseBytes = 64 << 20

// SOAPActionHeader is the HTTP request header carrying the SOAPAction.
const SOAPActionHeader = "SOAPAction"

// HTTPTransport carries SOAP 1.1 over HTTP POST.
type HTTPTransport struct {
	// Client is the underlying HTTP client. Defaults to a client with a
	// 30-second timeout.
	Client *http.Client
}

// NewHTTPTransport returns an HTTP transport with sane defaults.
func NewHTTPTransport() *HTTPTransport {
	return &HTTPTransport{Client: &http.Client{Timeout: 30 * time.Second}}
}

// Scheme implements Transport.
func (t *HTTPTransport) Scheme() string { return "http" }

// Call implements Transport.
func (t *HTTPTransport) Call(ctx context.Context, req *Request) (*Response, error) {
	return t.post(ctx, req.Endpoint, req, nil)
}

func (t *HTTPTransport) post(ctx context.Context, url string, req *Request, decorate func(*http.Request)) (*Response, error) {
	hr, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(req.Body))
	if err != nil {
		return nil, fmt.Errorf("transport/http: %w", err)
	}
	ct := req.ContentType
	if ct == "" {
		ct = soap.ContentType
	}
	hr.Header.Set("Content-Type", ct)
	// SOAP 1.1 requires the SOAPAction header, quoted.
	hr.Header.Set(SOAPActionHeader, `"`+req.Action+`"`)
	if decorate != nil {
		decorate(hr)
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(hr)
	if err != nil {
		return nil, fmt.Errorf("transport/http: POST %s: %w", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResponseBytes))
	if err != nil {
		return nil, fmt.Errorf("transport/http: reading response: %w", err)
	}
	switch {
	case resp.StatusCode == http.StatusOK,
		resp.StatusCode == http.StatusAccepted,
		resp.StatusCode == http.StatusNoContent:
		return &Response{ContentType: resp.Header.Get("Content-Type"), Body: body}, nil
	case resp.StatusCode == http.StatusInternalServerError && looksLikeXML(body):
		// Per the SOAP/HTTP binding a fault travels as a 500 with an
		// envelope body. Hand it up for envelope-level handling.
		return &Response{ContentType: resp.Header.Get("Content-Type"), Body: body, Faulted: true}, nil
	default:
		return nil, fmt.Errorf("transport/http: POST %s: unexpected status %s", url, resp.Status)
	}
}

func looksLikeXML(b []byte) bool {
	s := strings.TrimSpace(string(b))
	return strings.HasPrefix(s, "<")
}

// ---------------------------------------------------------------------------
// HTTPG: the authenticated HTTP profile.
//
// The paper supports HTTPG, "the transport used by Globus for authenticated
// communication". The Globus GSI stack is proprietary to that toolkit; what
// matters architecturally is that a second, credentialed transport coexists
// with plain HTTP behind the same Invocation. HTTPG here authenticates each
// request with an HMAC-SHA256 over the body using a shared secret, which
// exercises the same code paths (scheme-based routing, decorated requests,
// server-side verification) as a full GSI implementation would.

// HTTPGAuthHeader carries the request's authentication proof.
const HTTPGAuthHeader = "X-WSPeer-HTTPG-Auth"

// HTTPGTransport is an authenticated HTTP transport for httpg:// endpoints.
type HTTPGTransport struct {
	HTTPTransport
	Secret []byte
}

// NewHTTPGTransport returns an HTTPG transport using the shared secret.
func NewHTTPGTransport(secret []byte) *HTTPGTransport {
	return &HTTPGTransport{
		HTTPTransport: HTTPTransport{Client: &http.Client{Timeout: 30 * time.Second}},
		Secret:        secret,
	}
}

// Scheme implements Transport.
func (t *HTTPGTransport) Scheme() string { return "httpg" }

// Call implements Transport. The httpg:// endpoint is rewritten to http://
// on the wire with the authentication header attached.
func (t *HTTPGTransport) Call(ctx context.Context, req *Request) (*Response, error) {
	url := "http://" + strings.TrimPrefix(req.Endpoint, "httpg://")
	mac := SignHTTPG(t.Secret, req.Body)
	return t.post(ctx, url, req, func(hr *http.Request) {
		hr.Header.Set(HTTPGAuthHeader, mac)
	})
}

// SignHTTPG computes the authentication proof for a request body.
func SignHTTPG(secret, body []byte) string {
	m := hmac.New(sha256.New, secret)
	m.Write(body)
	return hex.EncodeToString(m.Sum(nil))
}

// VerifyHTTPG checks an authentication proof. It is used by the server-side
// HTTP host for services deployed with the httpg profile.
func VerifyHTTPG(secret, body []byte, proof string) bool {
	want := SignHTTPG(secret, body)
	return hmac.Equal([]byte(want), []byte(proof))
}
