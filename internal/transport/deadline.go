package transport

import (
	"strconv"
	"strings"
	"time"
)

// Deadline propagation (DESIGN.md §14). A client invocation whose context
// carries a deadline stamps it on the wire — as an HTTP header on the
// HTTP-family transports, as a (non-mustUnderstand) SOAP header element on
// envelope-substrate bindings like P2PS, and natively through the shared
// context on the in-memory transport. Server hosts parse it back into the
// dispatch context, so the engine can drop work the caller has already
// given up on and the admission queue expires entries against the
// *caller's* deadline rather than a local guess.
//
// The wire format is the absolute deadline in microseconds since the Unix
// epoch, in decimal. An absolute instant (rather than a relative budget)
// survives multi-hop forwarding without each hop re-subtracting its local
// processing time; microsecond resolution matches the precision of the
// latency spine.

// DeadlineHeader is the HTTP request header carrying the caller's absolute
// deadline (microseconds since the Unix epoch, decimal), alongside the
// trace context in telemetry.TraceHeader.
const DeadlineHeader = "X-Wspeer-Deadline"

// DeadlineNS is the namespace of the SOAP header element that carries the
// deadline on envelope-substrate bindings (P2PS), where there is no HTTP
// header to ride on. The element is never flagged mustUnderstand: a
// provider that predates deadline propagation simply ignores it.
const DeadlineNS = "http://wspeer.dev/deadline"

// DeadlineElement is the local name of the SOAP deadline header element;
// its text content is FormatDeadline's form.
const DeadlineElement = "Deadline"

// FormatDeadline renders an absolute deadline for the wire.
func FormatDeadline(t time.Time) string {
	return strconv.FormatInt(t.UnixMicro(), 10)
}

// ParseDeadline parses a wire-format deadline. It reports false for an
// empty, malformed or non-positive value — the caller simply proceeds
// without a propagated deadline, so garbage on the header can never turn
// into a rejected request.
func ParseDeadline(s string) (time.Time, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return time.Time{}, false
	}
	us, err := strconv.ParseInt(s, 10, 64)
	if err != nil || us <= 0 {
		return time.Time{}, false
	}
	return time.UnixMicro(us), true
}
