package transport

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wspeer/internal/soap"
)

func TestSchemeOf(t *testing.T) {
	cases := map[string]string{
		"http://x/y":    "http",
		"HTTPG://x":     "httpg",
		"mem://a/b":     "mem",
		"p2ps://id/svc": "p2ps",
		"no-scheme":     "",
		"://x":          "",
		"":              "",
	}
	for in, want := range cases {
		if got := SchemeOf(in); got != want {
			t.Errorf("SchemeOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRegistryRouting(t *testing.T) {
	reg := NewRegistry()
	net := NewInMemNetwork()
	reg.Register(net.Transport())
	net.Register("mem://svc/echo", HandlerFunc(func(ctx context.Context, req *Request) (*Response, error) {
		return &Response{Body: append([]byte("pong:"), req.Body...)}, nil
	}))

	resp, err := reg.Call(context.Background(), &Request{Endpoint: "mem://svc/echo", Body: []byte("ping")})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "pong:ping" {
		t.Fatalf("body = %q", resp.Body)
	}

	if _, err := reg.Call(context.Background(), &Request{Endpoint: "gopher://x"}); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	if _, err := reg.Call(context.Background(), &Request{Endpoint: "junk"}); err == nil {
		t.Fatal("schemeless endpoint accepted")
	}
	if got := reg.Schemes(); len(got) != 1 || got[0] != "mem" {
		t.Fatalf("schemes = %v", got)
	}
}

func TestInMemUnknownEndpointAndUnregister(t *testing.T) {
	net := NewInMemNetwork()
	tr := net.Transport()
	if _, err := tr.Call(context.Background(), &Request{Endpoint: "mem://nope"}); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	net.Register("mem://a", HandlerFunc(func(context.Context, *Request) (*Response, error) {
		return &Response{}, nil
	}))
	if _, err := tr.Call(context.Background(), &Request{Endpoint: "mem://a"}); err != nil {
		t.Fatal(err)
	}
	net.Unregister("mem://a")
	if _, err := tr.Call(context.Background(), &Request{Endpoint: "mem://a"}); err == nil {
		t.Fatal("unregistered endpoint still served")
	}
	if net.Calls() != 1 {
		t.Fatalf("calls = %d", net.Calls())
	}
}

func TestInMemContextCancelled(t *testing.T) {
	net := NewInMemNetwork()
	net.Register("mem://a", HandlerFunc(func(context.Context, *Request) (*Response, error) {
		return &Response{}, nil
	}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := net.Transport().Call(ctx, &Request{Endpoint: "mem://a"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
}

func TestInMemBodyIsolation(t *testing.T) {
	net := NewInMemNetwork()
	var served []byte
	net.Register("mem://a", HandlerFunc(func(_ context.Context, req *Request) (*Response, error) {
		served = req.Body
		return &Response{Body: []byte("resp")}, nil
	}))
	body := []byte("orig")
	resp, err := net.Transport().Call(context.Background(), &Request{Endpoint: "mem://a", Body: body})
	if err != nil {
		t.Fatal(err)
	}
	body[0] = 'X'
	if string(served) != "orig" {
		t.Fatal("handler saw caller's mutation")
	}
	resp.Body[0] = 'Y'
	// If the handler retains its response buffer, the caller's copy must be
	// unaffected; nothing to assert directly here beyond no panic, but the
	// copy above guarantees isolation by construction.
}

func TestInMemConcurrentAccess(t *testing.T) {
	net := NewInMemNetwork()
	tr := net.Transport()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			net.Register("mem://a", HandlerFunc(func(context.Context, *Request) (*Response, error) {
				return &Response{}, nil
			}))
		}()
		go func() {
			defer wg.Done()
			_, _ = tr.Call(context.Background(), &Request{Endpoint: "mem://a"})
		}()
	}
	wg.Wait()
}

func TestHTTPTransport(t *testing.T) {
	var gotAction, gotCT string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotAction = r.Header.Get(SOAPActionHeader)
		gotCT = r.Header.Get("Content-Type")
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", soap.ContentType)
		w.Write(append([]byte("ok:"), body...))
	}))
	defer srv.Close()

	tr := NewHTTPTransport()
	resp, err := tr.Call(context.Background(), &Request{
		Endpoint: srv.URL,
		Action:   "urn:echo",
		Body:     []byte("<x/>"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "ok:<x/>" {
		t.Fatalf("body = %q", resp.Body)
	}
	if gotAction != `"urn:echo"` {
		t.Fatalf("SOAPAction = %q (must be quoted)", gotAction)
	}
	if !strings.HasPrefix(gotCT, "text/xml") {
		t.Fatalf("content type = %q", gotCT)
	}
}

func TestHTTPTransportFault500(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
		w.Write([]byte(`<soapenv:Envelope xmlns:soapenv="` + soap.Namespace + `"><soapenv:Body><soapenv:Fault><faultcode>soapenv:Server</faultcode><faultstring>bad</faultstring></soapenv:Fault></soapenv:Body></soapenv:Envelope>`))
	}))
	defer srv.Close()
	resp, err := NewHTTPTransport().Call(context.Background(), &Request{Endpoint: srv.URL})
	if err != nil {
		t.Fatalf("500-with-envelope must surface as a response: %v", err)
	}
	if !resp.Faulted {
		t.Fatal("Faulted flag not set")
	}
	env, err := soap.Parse(resp.Body)
	if err != nil || !env.IsFault() {
		t.Fatalf("fault body: %v", err)
	}
}

func TestHTTPTransportHardErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNotFound)
	}))
	defer srv.Close()
	if _, err := NewHTTPTransport().Call(context.Background(), &Request{Endpoint: srv.URL}); err == nil {
		t.Fatal("404 accepted")
	}
	// Connection refused.
	if _, err := NewHTTPTransport().Call(context.Background(), &Request{Endpoint: "http://127.0.0.1:1/x"}); err == nil {
		t.Fatal("refused connection accepted")
	}
}

func TestHTTPTransportContextTimeout(t *testing.T) {
	block := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-block
	}))
	defer srv.Close()
	defer close(block)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := NewHTTPTransport().Call(ctx, &Request{Endpoint: srv.URL}); err == nil {
		t.Fatal("timeout not honoured")
	}
}

func TestHTTPGAuth(t *testing.T) {
	secret := []byte("shared-secret")
	var authOK bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		authOK = VerifyHTTPG(secret, body, r.Header.Get(HTTPGAuthHeader))
		if !authOK {
			w.WriteHeader(http.StatusForbidden)
			return
		}
		w.Write([]byte("secure"))
	}))
	defer srv.Close()

	endpoint := "httpg://" + strings.TrimPrefix(srv.URL, "http://")
	tr := NewHTTPGTransport(secret)
	if tr.Scheme() != "httpg" {
		t.Fatal("scheme")
	}
	resp, err := tr.Call(context.Background(), &Request{Endpoint: endpoint, Body: []byte("payload")})
	if err != nil {
		t.Fatal(err)
	}
	if !authOK || string(resp.Body) != "secure" {
		t.Fatalf("auth failed: %v %q", authOK, resp.Body)
	}

	// Wrong secret must be rejected by the server.
	bad := NewHTTPGTransport([]byte("wrong"))
	if _, err := bad.Call(context.Background(), &Request{Endpoint: endpoint, Body: []byte("payload")}); err == nil {
		t.Fatal("wrong secret accepted")
	}
}

func TestVerifyHTTPG(t *testing.T) {
	secret := []byte("s")
	proof := SignHTTPG(secret, []byte("b"))
	if !VerifyHTTPG(secret, []byte("b"), proof) {
		t.Fatal("valid proof rejected")
	}
	if VerifyHTTPG(secret, []byte("tampered"), proof) {
		t.Fatal("tampered body accepted")
	}
	if VerifyHTTPG([]byte("other"), []byte("b"), proof) {
		t.Fatal("wrong key accepted")
	}
}
