package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic count. Methods are safe on
// a nil receiver so optional instrumentation degrades to a no-op.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (negative n is ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if c != nil && n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value that may move both ways.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is an atomic latency histogram over the spine's shared bucket
// bounds (BucketBounds plus an overflow bucket).
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	minNS   atomic.Int64 // math.MaxInt64 until the first observation
	maxNS   atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

func newHistogram() *Histogram {
	h := &Histogram{}
	h.minNS.Store(math.MaxInt64)
	return h
}

// Observe records one duration. Lock-free: a handful of atomic ops.
func (h *Histogram) Observe(elapsed time.Duration) {
	if h == nil {
		return
	}
	if elapsed < 0 {
		elapsed = 0
	}
	ns := elapsed.Nanoseconds()
	h.count.Add(1)
	h.sumNS.Add(ns)
	casMin(&h.minNS, ns)
	casMax(&h.maxNS, ns)
	h.buckets[bucketFor(elapsed)].Add(1)
}

// HistogramSnapshot is a point-in-time copy of a histogram, with p50/p99
// estimated by linear interpolation within the containing bucket.
type HistogramSnapshot struct {
	Count int64         `json:"count"`
	Sum   time.Duration `json:"sum_ns"`
	Min   time.Duration `json:"min_ns"`
	Max   time.Duration `json:"max_ns"`
	// Buckets counts observations at or under each BucketBounds entry,
	// plus a final overflow bucket.
	Buckets []int64       `json:"buckets"`
	P50     time.Duration `json:"p50_ns"`
	P99     time.Duration `json:"p99_ns"`
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile estimates an arbitrary quantile (0..1) from the buckets.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	return bucketQuantile(s.Buckets, q, s.Min, s.Max)
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     time.Duration(h.sumNS.Load()),
		Max:     time.Duration(h.maxNS.Load()),
		Buckets: make([]int64, NumBuckets),
	}
	if min := h.minNS.Load(); min != math.MaxInt64 {
		s.Min = time.Duration(min)
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.P50 = s.Quantile(0.50)
	s.P99 = s.Quantile(0.99)
	return s
}

func casMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func casMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Meter is a named instrument registry. Lookup is a read-locked map hit;
// instrumented packages call Counter/Gauge/Histogram once at init and
// keep the returned handle, so steady-state recording never touches the
// registry at all.
type Meter struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewMeter returns an empty registry.
func NewMeter() *Meter {
	return &Meter{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter.
func (m *Meter) Counter(name string) *Counter {
	m.mu.RLock()
	c := m.counters[name]
	m.mu.RUnlock()
	if c != nil {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c = m.counters[name]; c == nil {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge.
func (m *Meter) Gauge(name string) *Gauge {
	m.mu.RLock()
	g := m.gauges[name]
	m.mu.RUnlock()
	if g != nil {
		return g
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if g = m.gauges[name]; g == nil {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram.
func (m *Meter) Histogram(name string) *Histogram {
	m.mu.RLock()
	h := m.hists[name]
	m.mu.RUnlock()
	if h != nil {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h = m.hists[name]; h == nil {
		h = newHistogram()
		m.hists[name] = h
	}
	return h
}

// snapshot copies every instrument's current value.
func (m *Meter) snapshot() (counters, gauges map[string]int64, hists map[string]HistogramSnapshot) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	counters = make(map[string]int64, len(m.counters))
	for name, c := range m.counters {
		counters[name] = c.Value()
	}
	gauges = make(map[string]int64, len(m.gauges))
	for name, g := range m.gauges {
		gauges[name] = g.Value()
	}
	hists = make(map[string]HistogramSnapshot, len(m.hists))
	for name, h := range m.hists {
		hists[name] = h.Snapshot()
	}
	return counters, gauges, hists
}
