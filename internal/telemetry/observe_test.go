package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- flight recorder ---

func TestRecorderKeepsAllErrors(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 64})
	for i := 0; i < 50; i++ {
		r.Record(CallRecord{Service: "Echo", Dir: DirClient, Latency: time.Millisecond}, errors.New("boom"))
	}
	recs := r.Snapshot()
	if len(recs) != 50 {
		t.Fatalf("kept %d error records, want all 50", len(recs))
	}
	for _, rec := range recs {
		if rec.Reason != KeepError {
			t.Fatalf("error record kept with reason %q, want %q", rec.Reason, KeepError)
		}
		if rec.Err != "boom" || rec.ErrClass != ClassError {
			t.Fatalf("record error fields = (%q, %q), want (boom, error)", rec.Err, rec.ErrClass)
		}
	}
	st := r.Stats()
	if st.Seen != 50 || st.Kept != 50 || st.Dropped != 0 {
		t.Fatalf("stats = %+v, want seen=kept=50 dropped=0", st)
	}
}

func TestRecorderKeepsPreclassifiedFaults(t *testing.T) {
	// A server dispatch that answered with a fault envelope has err == nil
	// but a caller-stamped ErrClass; it must count as a failure.
	r := NewRecorder(RecorderOptions{Capacity: 8})
	r.Record(CallRecord{Service: "Echo", Dir: DirServer, ErrClass: ClassFault}, nil)
	recs := r.Query(RecordFilter{ErrorsOnly: true})
	if len(recs) != 1 || recs[0].Reason != KeepError {
		t.Fatalf("preclassified fault not kept as error: %+v", recs)
	}
}

func TestRecorderSamplesSuccesses(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 4096, SuccessOneIn: 16})
	const total = 4000
	for i := 0; i < total; i++ {
		r.Record(CallRecord{Service: "Echo", Dir: DirClient, Latency: time.Millisecond}, nil)
	}
	st := r.Stats()
	if st.Seen != total {
		t.Fatalf("seen = %d, want %d", st.Seen, total)
	}
	// Roughly 1/16 kept: allow a generous band around 250.
	if st.Kept < 100 || st.Kept > 600 {
		t.Fatalf("kept %d of %d uniform successes, want roughly 1 in 16", st.Kept, total)
	}
	for _, rec := range r.Snapshot() {
		if rec.Reason != KeepSampled && rec.Reason != KeepSlow {
			t.Fatalf("success kept with reason %q", rec.Reason)
		}
	}
}

func TestRecorderSuccessOneInOneKeepsEverything(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 128, SuccessOneIn: 1})
	for i := 0; i < 100; i++ {
		r.Record(CallRecord{Service: "Echo", Dir: DirClient}, nil)
	}
	if st := r.Stats(); st.Kept != 100 {
		t.Fatalf("kept = %d with SuccessOneIn=1, want 100", st.Kept)
	}
}

func TestRecorderKeepsSlowCalls(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 4096, SuccessOneIn: 1 << 30})
	// Feed enough fast calls to trigger a p99 recalculation, then a
	// straggler far beyond the threshold.
	for i := 0; i < slowRecalcEvery; i++ {
		r.Record(CallRecord{Service: "Echo", Dir: DirClient, Latency: 50 * time.Microsecond}, nil)
	}
	if r.Stats().SlowThreshold <= 0 {
		t.Fatalf("slow threshold not established after %d calls", slowRecalcEvery)
	}
	r.Record(CallRecord{Service: "Echo", Dir: DirClient, Latency: 5 * time.Second}, nil)
	recs := r.Query(RecordFilter{MinLatency: time.Second})
	if len(recs) != 1 || recs[0].Reason != KeepSlow {
		t.Fatalf("straggler not kept as slow: %+v", recs)
	}
}

func TestRecorderQueryFilters(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 64, SuccessOneIn: 1})
	r.Record(CallRecord{Service: "A", Dir: DirClient, TraceID: 0xabc, Latency: time.Millisecond}, nil)
	r.Record(CallRecord{Service: "B", Dir: DirServer, TraceID: 0xdef, Latency: 10 * time.Millisecond}, errors.New("x"))
	r.Record(CallRecord{Service: "A", Dir: DirServer, TraceID: 0xabc, Latency: 100 * time.Millisecond}, nil)

	if got := r.Query(RecordFilter{Service: "A"}); len(got) != 2 {
		t.Fatalf("service filter: got %d, want 2", len(got))
	}
	if got := r.Query(RecordFilter{Dir: DirServer}); len(got) != 2 {
		t.Fatalf("dir filter: got %d, want 2", len(got))
	}
	if got := r.Query(RecordFilter{ErrorsOnly: true}); len(got) != 1 || got[0].Service != "B" {
		t.Fatalf("errors filter: got %+v", got)
	}
	if got := r.Query(RecordFilter{TraceID: 0xabc}); len(got) != 2 {
		t.Fatalf("trace filter: got %d, want 2", len(got))
	}
	if got := r.Query(RecordFilter{MinLatency: 50 * time.Millisecond}); len(got) != 1 {
		t.Fatalf("latency filter: got %d, want 1", len(got))
	}
	if got := r.Query(RecordFilter{Limit: 2}); len(got) != 2 || got[1].Latency != 100*time.Millisecond {
		t.Fatalf("limit filter should keep the most recent 2: %+v", got)
	}
}

func TestRecorderRingWraps(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 4, SuccessOneIn: 1})
	for i := 0; i < 10; i++ {
		r.Record(CallRecord{Service: "Echo", Dir: DirClient, Latency: time.Duration(i)}, nil)
	}
	recs := r.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want capacity 4", len(recs))
	}
	for i, rec := range recs {
		if rec.Latency != time.Duration(6+i) {
			t.Fatalf("wrapped ring out of order: %+v", recs)
		}
	}
}

func TestRecorderSchemeDerivation(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 8, SuccessOneIn: 1})
	r.Record(CallRecord{Service: "A", Dir: DirClient, Endpoint: "httpg://h:1/svc"}, nil)
	r.Record(CallRecord{Service: "A", Dir: DirClient, Endpoint: "no-scheme"}, nil)
	recs := r.Snapshot()
	if recs[0].Scheme != "httpg" || recs[1].Scheme != "" {
		t.Fatalf("scheme derivation: %q, %q", recs[0].Scheme, recs[1].Scheme)
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.Record(CallRecord{}, nil) // must not panic
	if r.Stats() != (RecorderStats{}) || r.Snapshot() != nil {
		t.Fatal("nil recorder should be inert")
	}
}

func TestRecorderSampledOutAllocsFree(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 64, SuccessOneIn: 1 << 30})
	rec := CallRecord{Service: "Echo", Dir: DirClient, Latency: time.Millisecond}
	// Warm the threshold machinery first.
	for i := 0; i < slowRecalcEvery; i++ {
		r.Record(rec, nil)
	}
	allocs := testing.AllocsPerRun(200, func() { r.Record(rec, nil) })
	if allocs != 0 {
		t.Fatalf("sampled-out Record allocates %.1f per call, want 0", allocs)
	}
}

func TestClassifyError(t *testing.T) {
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{context.DeadlineExceeded, ClassTimeout},
		{fmt.Errorf("rpc: %w", context.DeadlineExceeded), ClassTimeout},
		{context.Canceled, ClassCancel},
		{classed{"overload"}, ClassOverload},
		{fmt.Errorf("wrap: %w", classed{"breaker-open"}), ClassBreakerOpen},
		{errors.New("plain"), ClassError},
	}
	for _, c := range cases {
		if got := ClassifyError(c.err); got != c.want {
			t.Errorf("ClassifyError(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

type classed struct{ class string }

func (c classed) Error() string      { return c.class }
func (c classed) ErrorClass() string { return c.class }

// --- logger ---

func TestLoggerLevelGate(t *testing.T) {
	l := NewLogger()
	l.Info(nil, "below default level")
	l.Warn(nil, "at level")
	if got := l.Recent(0); len(got) != 1 || got[0].Msg != "at level" {
		t.Fatalf("default Warn level should drop Info: %+v", got)
	}
	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Fatal("Enabled(Debug) false after SetLevel(Debug)")
	}
	l.Debug(nil, "now visible")
	if got := l.Recent(0); len(got) != 2 {
		t.Fatalf("debug entry not recorded after SetLevel: %+v", got)
	}
	l.SetLevel(LevelOff)
	l.Error(nil, "silenced")
	if got := l.Recent(0); len(got) != 2 {
		t.Fatal("LevelOff should silence Error")
	}
}

func TestLoggerStampsTraceFromContext(t *testing.T) {
	l := NewLogger()
	sc := SpanContext{TraceID: 0x1122334455667788, SpanID: 0x99aabbccddeeff00}
	ctx := ContextWithSpanContext(context.Background(), sc)
	l.Warn(ctx, "correlated")
	got := l.Recent(1)
	if len(got) != 1 || got[0].TraceID != sc.TraceID || got[0].SpanID != sc.SpanID {
		t.Fatalf("trace identity not stamped: %+v", got)
	}
	line := got[0].Format()
	if !strings.Contains(line, "trace=1122334455667788") || !strings.Contains(line, "span=99aabbccddeeff00") {
		t.Fatalf("formatted line missing hex ids: %s", line)
	}
}

func TestLoggerFormat(t *testing.T) {
	e := LogEntry{
		Time:  time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC),
		Level: LevelWarn,
		Msg:   "breaker opened",
		KV:    []interface{}{"endpoint", "http://h:1/svc", "fails", 3, "window", 250 * time.Millisecond, "err", errors.New("dial refused")},
	}
	got := e.Format()
	want := `ts=2026-08-08T12:00:00.000Z level=warn msg="breaker opened" endpoint=http://h:1/svc fails=3 window=250ms err="dial refused"`
	if got != want {
		t.Fatalf("Format:\n got %s\nwant %s", got, want)
	}
}

func TestLoggerSinkAndRing(t *testing.T) {
	l := NewLogger()
	var buf bytes.Buffer
	l.SetOutput(&buf)
	l.Warn(nil, "to sink", "k", "v")
	if !strings.Contains(buf.String(), `msg="to sink" k=v`) {
		t.Fatalf("sink output: %q", buf.String())
	}
	l.SetOutput(nil)
	l.Warn(nil, "ring only")
	if strings.Contains(buf.String(), "ring only") {
		t.Fatal("detached sink still receiving")
	}
	if got := l.Recent(1); len(got) != 1 || got[0].Msg != "ring only" {
		t.Fatalf("ring should retain sink-less entries: %+v", got)
	}
}

func TestLoggerRingWraps(t *testing.T) {
	l := NewLogger()
	for i := 0; i < loggerRingCap+10; i++ {
		l.Warn(nil, "entry", "i", i)
	}
	got := l.Recent(0)
	if len(got) != loggerRingCap {
		t.Fatalf("ring holds %d, want %d", len(got), loggerRingCap)
	}
	if got[0].KV[1].(int) != 10 || got[len(got)-1].KV[1].(int) != loggerRingCap+9 {
		t.Fatalf("wrapped ring out of order: first=%v last=%v", got[0].KV, got[len(got)-1].KV)
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Warn(nil, "into the void")
	l.SetLevel(LevelDebug)
	if l.Recent(0) != nil || l.Enabled(LevelError) {
		t.Fatal("nil logger should be inert")
	}
}

// --- exporters ---

func TestWritePrometheusDeterministicAndParseable(t *testing.T) {
	h := New()
	h.Meter.Counter("b.second").Add(2)
	h.Meter.Counter("a.first").Inc()
	h.Meter.Gauge("q.depth").Add(5)
	h.Meter.Histogram("rt.latency").Observe(3 * time.Millisecond)
	h.Calls.Record("Echo", DirClient, time.Millisecond, false)
	h.Calls.Record("Echo", DirServer, 2*time.Millisecond, true)
	h.Flight.Record(CallRecord{Service: "Echo", Dir: DirClient}, nil)

	var one, two bytes.Buffer
	if err := h.WritePrometheus(&one); err != nil {
		t.Fatal(err)
	}
	if err := h.WritePrometheus(&two); err != nil {
		t.Fatal(err)
	}
	if one.String() != two.String() {
		t.Fatalf("consecutive renders differ:\n%s\n---\n%s", one.String(), two.String())
	}

	checkPrometheusText(t, one.String())

	for _, want := range []string{
		"wspeer_a_first_total 1",
		"wspeer_b_second_total 2",
		"wspeer_q_depth 5",
		"# TYPE wspeer_rt_latency_seconds histogram",
		`wspeer_calls_total{service="Echo",dir="client"} 1`,
		`wspeer_call_failures_total{service="Echo",dir="server"} 1`,
		`wspeer_call_latency_seconds_bucket{service="Echo",dir="client",le="+Inf"} 1`,
		"wspeer_flight_seen_total 1",
	} {
		if !strings.Contains(one.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, one.String())
		}
	}
	// Counter families must be sorted by name.
	if strings.Index(one.String(), "wspeer_a_first_total") > strings.Index(one.String(), "wspeer_b_second_total") {
		t.Error("counter families not sorted by name")
	}
}

// checkPrometheusText validates the subset of the text exposition format
// the exporter emits: TYPE lines naming a known kind, then samples shaped
// `name{labels} value` whose name matches the Prometheus grammar.
func checkPrometheusText(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	for ln, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric kind %q", ln+1, parts[3])
			}
			typed[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i > 0 {
			name = line[:i]
		}
		for i := 0; i < len(name); i++ {
			c := name[i]
			ok := c == '_' || c == ':' ||
				(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
				(i > 0 && c >= '0' && c <= '9')
			if !ok {
				t.Fatalf("line %d: invalid metric name %q", ln+1, name)
			}
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			t.Fatalf("line %d: sample without value: %q", ln+1, line)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[name]; !ok {
			if _, ok := typed[base]; !ok {
				t.Fatalf("line %d: sample %q has no TYPE line", ln+1, name)
			}
		}
	}
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	h := New()
	h.Meter.Counter("z.last").Inc()
	h.Meter.Counter("a.first").Inc()
	h.Calls.Record("B", DirClient, time.Millisecond, false)
	h.Calls.Record("A", DirServer, time.Millisecond, false)
	one, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	two, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(one, two) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n---\n%s", one, two)
	}
	// Call table sorted by service then dir.
	snap := h.Snapshot()
	if snap.Calls[0].Service != "A" || snap.Calls[1].Service != "B" {
		t.Fatalf("call table not sorted: %+v", snap.Calls)
	}
}

func TestSpanRing(t *testing.T) {
	r := NewSpanRing(4)
	for i := 0; i < 10; i++ {
		r.OnSpanEnd(SpanData{SpanID: uint64(i + 1)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	spans := r.Spans()
	for i, d := range spans {
		if d.SpanID != uint64(7+i) {
			t.Fatalf("ring out of order: %+v", spans)
		}
	}
}

func TestWriteChromeTrace(t *testing.T) {
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	spans := []SpanData{
		{Name: "invoke", TraceID: 1, SpanID: 2, Service: "Echo", Op: "echo", Dir: "client",
			Start: base, End: base.Add(3 * time.Millisecond),
			Annotations: []Annotation{{Time: base.Add(time.Millisecond), Msg: "retry 1"}}},
		{Name: "dispatch", TraceID: 1, SpanID: 3, ParentID: 2, Dir: "server",
			Start: base.Add(time.Millisecond), End: base.Add(2 * time.Millisecond), Err: "boom"},
		{Name: "other", TraceID: 9, SpanID: 4, Start: base, End: base.Add(time.Millisecond)},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
		Unit        string                   `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.Unit != "ms" {
		t.Fatalf("displayTimeUnit = %q", doc.Unit)
	}
	// 2 thread_name metadata + 3 X spans + 1 instant annotation.
	var meta, complete, instant int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			complete++
			if ev["dur"].(float64) <= 0 {
				t.Fatalf("complete event without duration: %+v", ev)
			}
		case "i":
			instant++
		default:
			t.Fatalf("unexpected phase %v", ev["ph"])
		}
	}
	if meta != 2 || complete != 3 || instant != 1 {
		t.Fatalf("event mix M=%d X=%d i=%d, want 2/3/1", meta, complete, instant)
	}
	// Spans of one trace share a tid; the other trace gets its own.
	tids := map[float64]bool{}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" {
			tids[ev["tid"].(float64)] = true
		}
	}
	if len(tids) != 2 {
		t.Fatalf("trace rows = %d, want 2", len(tids))
	}
	// Empty input still renders a loadable document.
	buf.Reset()
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents":[]`) {
		t.Fatalf("empty trace not loadable: %s", buf.String())
	}
}

func TestEnableTracingInstallsRing(t *testing.T) {
	h := New()
	if h.TraceRing() != nil {
		t.Fatal("ring present before EnableTracing")
	}
	ring := h.EnableTracing(8)
	if h.TraceRing() != ring {
		t.Fatal("TraceRing does not return the installed ring")
	}
	span, _ := h.Tracer.StartSpan(context.Background(), "op")
	span.End()
	if ring.Len() != 1 {
		t.Fatalf("ring did not receive ended span: len=%d", ring.Len())
	}
}

func TestLoggerConcurrent(t *testing.T) {
	l := NewLogger()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				l.Warn(nil, "spin", "g", g, "i", i)
				l.Recent(4)
			}
		}(g)
	}
	wg.Wait()
	if got := l.Recent(0); len(got) != loggerRingCap {
		t.Fatalf("after concurrent writes ring holds %d, want %d", len(got), loggerRingCap)
	}
}

func TestRecorderConcurrent(t *testing.T) {
	r := NewRecorder(RecorderOptions{Capacity: 128})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				var err error
				if i%7 == 0 {
					err = errors.New("boom")
				}
				r.Record(CallRecord{Service: "Echo", Dir: DirClient, Latency: time.Duration(i) * time.Microsecond}, err)
				if i%100 == 0 {
					r.Query(RecordFilter{ErrorsOnly: true})
					r.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	if st := r.Stats(); st.Seen != 4000 || st.Kept+st.Dropped != st.Seen {
		t.Fatalf("stats inconsistent after concurrent load: %+v", st)
	}
}
