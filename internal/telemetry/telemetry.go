// Package telemetry is WSPeer's observation spine: one zero-dependency
// layer every other package emits its operational signals through. Before
// it existed the repo observed itself through four disconnected
// mechanisms — pipeline.CallStats counters, the httpd Observer hook,
// resilience breaker OnChange callbacks and the core event-listener tree.
// Those all survive as thin adapters, but the data now originates here.
//
// Three primitives make up the spine:
//
//   - Tracer: per-call spans with parent/child linkage across client
//     invocation → transport → server dispatch. Tracing is off until a
//     Sink is attached; with no sink, StartSpan returns a nil *Span and
//     every Span method is nil-receiver-safe, so the disabled hot path
//     costs one atomic load and zero allocations.
//   - Meter: a named registry of counters, gauges and latency histograms.
//     Instruments are atomic; instrumented packages pre-fetch their
//     handles at init, so the hot path is lock-free and allocation-free.
//   - CallTable: per-(service, direction) call accounting — counts,
//     failures and a latency histogram — always on, recorded by the core
//     client and the engine's server terminal.
//
// The process-wide Hub is Default(); isolated hubs (New) exist for tests.
package telemetry

import (
	"sync/atomic"
	"time"
)

// Hub bundles the spine's primitives. Layers emit through the Default
// hub; tests that need isolation construct their own with New.
type Hub struct {
	// Tracer produces spans (disabled until a sink is attached).
	Tracer *Tracer
	// Meter is the named instrument registry.
	Meter *Meter
	// Calls is the always-on per-service call table.
	Calls *CallTable
	// Flight is the always-on flight recorder of completed calls.
	Flight *Recorder
	// Log is the spine's structured leveled logger.
	Log *Logger

	// traceRing remembers the ring installed by EnableTracing so the
	// trace endpoint can find recent spans.
	traceRing atomic.Pointer[SpanRing]
}

// New returns an isolated hub (no sink attached, empty registries, a
// default-sampled flight recorder and a Warn-level logger with no
// external sink).
func New() *Hub {
	return &Hub{
		Tracer: NewTracer(),
		Meter:  NewMeter(),
		Calls:  NewCallTable(),
		Flight: NewRecorder(RecorderOptions{}),
		Log:    NewLogger(),
	}
}

// EnableTracing attaches a bounded SpanRing as the tracer's sink and
// remembers it so /debug/wspeer/trace can serve recent spans. capacity
// <= 0 takes the SpanRing default. Calling it again replaces the ring;
// SetSink with a custom sink leaves the remembered ring stale, so prefer
// one mechanism per process.
func (h *Hub) EnableTracing(capacity int) *SpanRing {
	ring := NewSpanRing(capacity)
	h.traceRing.Store(ring)
	h.Tracer.SetSink(ring)
	return ring
}

// TraceRing returns the ring installed by EnableTracing (nil before the
// first call).
func (h *Hub) TraceRing() *SpanRing { return h.traceRing.Load() }

// std is the process-wide hub every layer's package-level instrument
// handles bind to.
var std = New()

// Default returns the process-wide hub.
func Default() *Hub { return std }

// Snapshot is a point-in-time copy of a hub's state, shaped for JSON
// (httpd's /debug/wspeer endpoint and benchharness emit it verbatim).
type Snapshot struct {
	// Counters maps counter name to its current value.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps gauge name to its current value.
	Gauges map[string]int64 `json:"gauges,omitempty"`
	// Histograms maps histogram name to its bucketed snapshot.
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Calls is the call table, ordered by service then direction.
	Calls []CallSnapshot `json:"calls"`
}

// Snapshot returns a consistent-enough point-in-time copy of the hub:
// each instrument is read atomically (the set is read under the registry
// locks), though instruments updated concurrently may be captured at
// slightly different instants.
func (h *Hub) Snapshot() Snapshot {
	counters, gauges, hists := h.Meter.snapshot()
	return Snapshot{
		Counters:   counters,
		Gauges:     gauges,
		Histograms: hists,
		Calls:      h.Calls.Snapshot(),
	}
}

// Directions recorded in the CallTable and stamped on spans. They match
// pipeline.Direction.String(), keeping the two layers aligned without an
// import in either direction.
const (
	// DirClient marks outbound invocations (application → transport).
	DirClient = "client"
	// DirServer marks inbound dispatches (host → engine).
	DirServer = "server"
)

// latencyBuckets are the upper bounds of every latency histogram in the
// spine (the CallTable's and the Meter's); the final bucket is unbounded.
// They mirror the bounds pipeline.CallStats has always used, so historic
// snapshots remain comparable.
var latencyBuckets = [...]time.Duration{
	100 * time.Microsecond,
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// NumBuckets counts histogram buckets: one per bound plus the unbounded
// overflow bucket.
const NumBuckets = len(latencyBuckets) + 1

// BucketBounds returns the histogram upper bounds (the final, unbounded
// bucket is not listed — bucket slices have one more entry than this).
func BucketBounds() []time.Duration {
	return append([]time.Duration(nil), latencyBuckets[:]...)
}

// bucketFor returns the histogram bucket index for an elapsed duration.
func bucketFor(elapsed time.Duration) int {
	for i, ub := range latencyBuckets {
		if elapsed <= ub {
			return i
		}
	}
	return len(latencyBuckets)
}

// bucketQuantile estimates the q-quantile (0..1) from bucket counts by
// linear interpolation within the containing bucket, clamped to the
// observed [min, max] range. A zero-count histogram yields 0.
func bucketQuantile(buckets []int64, q float64, min, max time.Duration) time.Duration {
	var total int64
	for _, c := range buckets {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range buckets {
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) < rank {
			continue
		}
		lower := time.Duration(0)
		if i > 0 {
			lower = latencyBuckets[i-1]
		}
		upper := max
		if i < len(latencyBuckets) && latencyBuckets[i] < upper {
			upper = latencyBuckets[i]
		}
		if lower < min {
			lower = min
		}
		if upper < lower {
			upper = lower
		}
		frac := 0.0
		if c > 0 {
			frac = (rank - float64(prev)) / float64(c)
		}
		if frac < 0 {
			frac = 0
		}
		return lower + time.Duration(frac*float64(upper-lower))
	}
	return max
}
