package telemetry

import "sync"

// Sink receives ended spans. Implementations must be safe for concurrent
// use; OnSpanEnd runs on whatever goroutine ended the span, so it should
// return quickly (queue or drop under load rather than block dispatch).
type Sink interface {
	OnSpanEnd(SpanData)
}

// SinkFunc adapts a function to Sink.
type SinkFunc func(SpanData)

// OnSpanEnd implements Sink.
func (f SinkFunc) OnSpanEnd(d SpanData) { f(d) }

// Collector is a bounded in-memory Sink for tests and debugging: spans
// accumulate in end order until the capacity is reached, after which new
// spans are dropped (and counted).
type Collector struct {
	mu      sync.Mutex
	spans   []SpanData
	cap     int
	dropped int64
}

// NewCollector returns a collector retaining up to capacity spans
// (default 4096 for capacity <= 0).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Collector{cap: capacity}
}

// OnSpanEnd implements Sink.
func (c *Collector) OnSpanEnd(d SpanData) {
	c.mu.Lock()
	if len(c.spans) < c.cap {
		c.spans = append(c.spans, d)
	} else {
		c.dropped++
	}
	c.mu.Unlock()
}

// Spans returns a copy of everything collected, in end order.
func (c *Collector) Spans() []SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]SpanData(nil), c.spans...)
}

// ByService returns collected spans for one service, in end order.
func (c *Collector) ByService(service string) []SpanData {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []SpanData
	for _, d := range c.spans {
		if d.Service == service {
			out = append(out, d)
		}
	}
	return out
}

// Len reports how many spans are retained.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.spans)
}

// Dropped reports how many spans overflowed the capacity.
func (c *Collector) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Reset discards collected spans and the drop count.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.spans = nil
	c.dropped = 0
	c.mu.Unlock()
}
