package telemetry

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// CallRecord is one completed call as kept by the flight Recorder: enough
// to answer "what did this peer just do and why was it slow?" without a
// debugger attached. Records are plain values — the recorder preallocates
// its ring, so keeping one copies a struct and allocates nothing.
type CallRecord struct {
	// Time is when the call started.
	Time time.Time `json:"time"`
	// Service and Op name the work; Dir is DirClient or DirServer.
	Service string `json:"service"`
	Op      string `json:"op,omitempty"`
	Dir     string `json:"dir"`
	// Endpoint is the address the call used (client side); Scheme is its
	// transport scheme, derived by the recorder when left empty.
	Endpoint string `json:"endpoint,omitempty"`
	Scheme   string `json:"scheme,omitempty"`
	// Pattern is the message-exchange pattern ("request-response",
	// "one-way", "callback"); empty means request-response.
	Pattern string `json:"pattern,omitempty"`
	// Latency is the call's total elapsed time.
	Latency time.Duration `json:"latency_ns"`
	// Err is the error text ("" on success); ErrClass is its coarse
	// classification — see ClassifyError.
	Err      string `json:"err,omitempty"`
	ErrClass string `json:"err_class,omitempty"`
	// TraceID/SpanID correlate the record with exported spans and log
	// lines (zero when tracing was disabled for the call).
	TraceID uint64 `json:"trace_id,omitempty"`
	SpanID  uint64 `json:"span_id,omitempty"`
	// Retries counts retransmissions beyond the first attempt; Hedges
	// counts speculative attempts launched beyond the primary. Both are
	// pulled from pipeline Meta by the recording layer.
	Retries int `json:"retries,omitempty"`
	Hedges  int `json:"hedges,omitempty"`
	// Reason says why the tail sampler kept this record: "error", "slow"
	// or "sampled".
	Reason string `json:"reason,omitempty"`
}

// Sampling reasons stamped on kept records. Static strings: stamping them
// never allocates.
const (
	// KeepError marks records kept because the call failed.
	KeepError = "error"
	// KeepSlow marks records kept because latency crossed the recorder's
	// rolling slow threshold (the bucket bound above the p99).
	KeepSlow = "slow"
	// KeepSampled marks success records kept by probabilistic sampling.
	KeepSampled = "sampled"
)

// Error classes stamped on failed records (static strings). ErrorClasser
// implementors may add their own; "overload" (admission sheds) and
// "breaker-open" (circuit refusals) come from resilience, "fault" from
// soap.
const (
	ClassTimeout     = "timeout"
	ClassCancel      = "cancel"
	ClassFault       = "fault"
	ClassOverload    = "overload"
	ClassBreakerOpen = "breaker-open"
	ClassError       = "error"
)

// ErrorClasser lets error types declare their own flight-recorder class
// without telemetry importing them. resilience's overload and breaker
// errors and soap faults implement it.
type ErrorClasser interface {
	ErrorClass() string
}

// ClassifyError maps an error to its coarse flight-recorder class:
// context errors to "timeout"/"cancel", ErrorClasser implementors to
// whatever they declare, everything else to "error". A nil error is "".
func ClassifyError(err error) string {
	if err == nil {
		return ""
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return ClassTimeout
	}
	if errors.Is(err, context.Canceled) {
		return ClassCancel
	}
	var ec ErrorClasser
	if errors.As(err, &ec) {
		return ec.ErrorClass()
	}
	return ClassError
}

// RecorderOptions tune a flight recorder.
type RecorderOptions struct {
	// Capacity bounds the ring (default 1024).
	Capacity int
	// SuccessOneIn keeps roughly one in N unremarkable successes
	// (default 16; 1 keeps everything, 0 takes the default).
	SuccessOneIn int
}

// RecorderStats summarise a recorder's sampling behaviour.
type RecorderStats struct {
	// Seen counts every call offered to the recorder.
	Seen int64 `json:"seen"`
	// Kept counts records written to the ring; Dropped = Seen - Kept.
	Kept    int64 `json:"kept"`
	Dropped int64 `json:"dropped"`
	// SlowThreshold is the current "slow" latency cutoff (the bound of
	// the bucket holding the rolling p99; zero until enough calls have
	// been observed).
	SlowThreshold time.Duration `json:"slow_threshold_ns"`
	// Capacity is the ring size.
	Capacity int `json:"capacity"`
}

// Recorder is the always-on flight recorder: a bounded ring of completed
// CallRecords with a tail-sampling policy — errors are always kept, calls
// slower than the rolling p99 are always kept, and unremarkable successes
// are kept one-in-N. The sampling decision is made before anything is
// allocated, so the common sampled-out case costs a few atomic ops and
// zero allocations; kept records are copied into preallocated slots under
// a mutex held for the copy alone.
type Recorder struct {
	successOneIn uint64

	seen    atomic.Int64
	kept    atomic.Int64
	dropped atomic.Int64
	rng     atomic.Uint64

	// Rolling latency distribution feeding the "slow" threshold: the
	// spine's shared buckets, recomputed every slowRecalcEvery calls and
	// cached in slowNS.
	buckets [NumBuckets]atomic.Int64
	maxNS   atomic.Int64
	slowNS  atomic.Int64

	mu    sync.Mutex
	ring  []CallRecord
	next  int
	total uint64 // lifetime writes, to find the ring's oldest slot
}

// slowRecalcEvery is how many observations pass between recomputations of
// the rolling p99 threshold.
const slowRecalcEvery = 256

// NewRecorder returns a flight recorder with the given options.
func NewRecorder(opts RecorderOptions) *Recorder {
	if opts.Capacity <= 0 {
		opts.Capacity = 1024
	}
	if opts.SuccessOneIn <= 0 {
		opts.SuccessOneIn = 16
	}
	r := &Recorder{
		successOneIn: uint64(opts.SuccessOneIn),
		ring:         make([]CallRecord, opts.Capacity),
	}
	r.rng.Store(0x9e3779b97f4a7c15)
	return r
}

// Record offers one completed call. rec carries everything but the error
// fields and keep reason; err (which may be nil even for failures the
// caller classifies itself via rec.ErrClass, e.g. fault envelopes) is
// only rendered to text if the record is kept. Safe for concurrent use;
// allocation-free when the call is sampled out, and allocation-free for
// kept calls whose error text is already materialised.
func (r *Recorder) Record(rec CallRecord, err error) {
	if r == nil {
		return
	}
	n := r.seen.Add(1)
	ns := rec.Latency.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	casMax(&r.maxNS, ns)
	r.buckets[bucketFor(rec.Latency)].Add(1)
	if n%slowRecalcEvery == 0 {
		r.recalcSlow()
	}

	failed := err != nil || rec.ErrClass != ""
	switch {
	case failed:
		rec.Reason = KeepError
	case r.isSlow(ns):
		rec.Reason = KeepSlow
	case r.sampleIn():
		rec.Reason = KeepSampled
	default:
		r.dropped.Add(1)
		return
	}
	if rec.ErrClass == "" {
		rec.ErrClass = ClassifyError(err)
	}
	if rec.Err == "" && err != nil {
		rec.Err = err.Error()
	}
	if rec.Scheme == "" && rec.Endpoint != "" {
		rec.Scheme = schemeOf(rec.Endpoint)
	}
	r.kept.Add(1)
	r.mu.Lock()
	r.ring[r.next] = rec
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	r.total++
	r.mu.Unlock()
}

// isSlow reports whether ns crosses the cached slow threshold. Zero
// threshold (not enough data yet) keeps nothing as "slow". Strictly
// greater: traffic sitting exactly on the threshold is the common case,
// not a straggler.
func (r *Recorder) isSlow(ns int64) bool {
	slow := r.slowNS.Load()
	return slow > 0 && ns > slow
}

// sampleIn rolls the success sampler: true for roughly one in
// successOneIn calls. xorshift over an atomic word — racy interleavings
// only perturb the sequence, which is fine for sampling.
func (r *Recorder) sampleIn() bool {
	if r.successOneIn <= 1 {
		return true
	}
	x := r.rng.Load()
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rng.Store(x)
	return x%r.successOneIn == 0
}

// recalcSlow re-estimates the slow threshold: the upper bound of the
// bucket holding the p99 of everything observed so far (the observed max
// for the unbounded bucket). Using the bucket bound rather than an
// interpolated p99 keeps the threshold robust when traffic is
// near-uniform — interpolation would land just below the common latency
// and classify nearly every call as slow.
func (r *Recorder) recalcSlow() {
	var total int64
	var counts [NumBuckets]int64
	for i := range r.buckets {
		counts[i] = r.buckets[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return
	}
	rank := int64(0.99 * float64(total))
	var cum int64
	for i, c := range counts {
		cum += c
		if cum <= rank {
			continue
		}
		if i < len(latencyBuckets) {
			r.slowNS.Store(latencyBuckets[i].Nanoseconds())
		} else {
			r.slowNS.Store(r.maxNS.Load())
		}
		return
	}
}

// Stats returns the recorder's sampling counters.
func (r *Recorder) Stats() RecorderStats {
	if r == nil {
		return RecorderStats{}
	}
	return RecorderStats{
		Seen:          r.seen.Load(),
		Kept:          r.kept.Load(),
		Dropped:       r.dropped.Load(),
		SlowThreshold: time.Duration(r.slowNS.Load()),
		Capacity:      len(r.ring),
	}
}

// Snapshot returns every retained record, oldest first.
func (r *Recorder) Snapshot() []CallRecord {
	return r.Query(RecordFilter{})
}

// RecordFilter selects flight records. Zero values match everything.
type RecordFilter struct {
	// Service and Dir match exactly when non-empty.
	Service string `json:"service,omitempty"`
	Dir     string `json:"dir,omitempty"`
	// ErrorsOnly keeps only failed calls.
	ErrorsOnly bool `json:"errors_only,omitempty"`
	// TraceID matches records from one trace.
	TraceID uint64 `json:"trace_id,omitempty"`
	// MinLatency drops faster calls.
	MinLatency time.Duration `json:"min_latency_ns,omitempty"`
	// Limit keeps only the most recent N matches (0 = all).
	Limit int `json:"limit,omitempty"`
}

// matches reports whether rec passes the filter.
func (f RecordFilter) matches(rec *CallRecord) bool {
	if f.Service != "" && rec.Service != f.Service {
		return false
	}
	if f.Dir != "" && rec.Dir != f.Dir {
		return false
	}
	if f.ErrorsOnly && rec.ErrClass == "" {
		return false
	}
	if f.TraceID != 0 && rec.TraceID != f.TraceID {
		return false
	}
	if f.MinLatency > 0 && rec.Latency < f.MinLatency {
		return false
	}
	return true
}

// Query returns retained records matching the filter, oldest first.
func (r *Recorder) Query(f RecordFilter) []CallRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	n := len(r.ring)
	filled := int(r.total)
	if filled > n {
		filled = n
	}
	// Oldest slot: next when the ring has wrapped, 0 before that.
	start := 0
	if r.total > uint64(n) {
		start = r.next
	}
	out := make([]CallRecord, 0, filled)
	for i := 0; i < filled; i++ {
		rec := &r.ring[(start+i)%n]
		if f.matches(rec) {
			out = append(out, *rec)
		}
	}
	r.mu.Unlock()
	if f.Limit > 0 && len(out) > f.Limit {
		out = out[len(out)-f.Limit:]
	}
	return out
}

// schemeOf extracts the lowercase transport scheme from an endpoint URL
// ("" when there is none). Mirrors transport.SchemeOf without the import;
// already-lowercase schemes come back as a substring, no allocation.
func schemeOf(endpoint string) string {
	i := strings.Index(endpoint, "://")
	if i <= 0 {
		return ""
	}
	return strings.ToLower(endpoint[:i])
}
