package telemetry

import (
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

// Log levels, least to most severe. LevelOff disables everything.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	LevelOff
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return "off"
	}
}

// LogEntry is one structured log event: a message, alternating key/value
// pairs, and the trace/span identity stamped from the caller's context.
type LogEntry struct {
	Time    time.Time     `json:"time"`
	Level   Level         `json:"level"`
	Msg     string        `json:"msg"`
	TraceID uint64        `json:"trace_id,omitempty"`
	SpanID  uint64        `json:"span_id,omitempty"`
	KV      []interface{} `json:"kv,omitempty"`
}

// LogSink receives emitted entries. Implementations must be safe for
// concurrent use and should return quickly — WriteLog runs on the logging
// goroutine.
type LogSink interface {
	WriteLog(LogEntry)
}

// logSinkHolder boxes a LogSink for atomic.Pointer.
type logSinkHolder struct{ s LogSink }

// Logger is the spine's zero-dependency structured leveled logger.
// Entries carry key-value pairs and are auto-stamped with the trace/span
// identity found in the caller's context, so a log line joins back to the
// span and flight record for the same call. The level is atomic (cheap to
// check, safe to flip at runtime); output goes to a pluggable sink.
//
// Every emitted entry is also retained in a small bounded ring, sink or
// no sink, so recent warnings are queryable in-process (Recent) and over
// /debug/wspeer even when nothing is tailing stderr. By default no
// external sink is attached: a library should not write to a process's
// stderr uninvited. SetOutput(os.Stderr) opts in.
type Logger struct {
	level atomic.Int32
	sink  atomic.Pointer[logSinkHolder]

	mu    sync.Mutex
	ring  []LogEntry
	next  int
	total uint64
}

// loggerRingCap bounds the in-memory recent-entry ring.
const loggerRingCap = 256

// NewLogger returns a logger at LevelWarn with no external sink.
func NewLogger() *Logger {
	l := &Logger{ring: make([]LogEntry, loggerRingCap)}
	l.level.Store(int32(LevelWarn))
	return l
}

// SetLevel sets the minimum emitted level.
func (l *Logger) SetLevel(v Level) {
	if l != nil {
		l.level.Store(int32(v))
	}
}

// Level returns the current minimum level.
func (l *Logger) Level() Level {
	if l == nil {
		return LevelOff
	}
	return Level(l.level.Load())
}

// Enabled reports whether entries at v would be emitted. Callers passing
// expensive arguments should guard with it.
func (l *Logger) Enabled(v Level) bool {
	return l != nil && v >= Level(l.level.Load()) && v < LevelOff
}

// SetSink attaches (nil detaches) the external sink and returns the
// previous one.
func (l *Logger) SetSink(s LogSink) LogSink {
	if l == nil {
		return nil
	}
	var h *logSinkHolder
	if s != nil {
		h = &logSinkHolder{s: s}
	}
	old := l.sink.Swap(h)
	if old == nil {
		return nil
	}
	return old.s
}

// SetOutput attaches a sink rendering each entry as one logfmt line on w
// (nil detaches). Returns the previous sink.
func (l *Logger) SetOutput(w io.Writer) LogSink {
	if w == nil {
		return l.SetSink(nil)
	}
	return l.SetSink(&writerSink{w: w})
}

// writerSink renders entries as logfmt lines on an io.Writer, serialised
// by a mutex so concurrent lines don't interleave.
type writerSink struct {
	mu sync.Mutex
	w  io.Writer
}

// WriteLog implements LogSink.
func (s *writerSink) WriteLog(e LogEntry) {
	line := e.Format()
	s.mu.Lock()
	io.WriteString(s.w, line)
	io.WriteString(s.w, "\n")
	s.mu.Unlock()
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(ctx context.Context, msg string, kv ...interface{}) {
	l.log(ctx, LevelDebug, msg, kv)
}

// Info logs at LevelInfo.
func (l *Logger) Info(ctx context.Context, msg string, kv ...interface{}) {
	l.log(ctx, LevelInfo, msg, kv)
}

// Warn logs at LevelWarn.
func (l *Logger) Warn(ctx context.Context, msg string, kv ...interface{}) {
	l.log(ctx, LevelWarn, msg, kv)
}

// Error logs at LevelError.
func (l *Logger) Error(ctx context.Context, msg string, kv ...interface{}) {
	l.log(ctx, LevelError, msg, kv)
}

func (l *Logger) log(ctx context.Context, v Level, msg string, kv []interface{}) {
	if !l.Enabled(v) {
		return
	}
	e := LogEntry{Time: time.Now(), Level: v, Msg: msg, KV: kv}
	if sc, ok := SpanContextFromContext(ctx); ok {
		e.TraceID, e.SpanID = sc.TraceID, sc.SpanID
	}
	l.mu.Lock()
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
	}
	l.total++
	l.mu.Unlock()
	if h := l.sink.Load(); h != nil {
		h.s.WriteLog(e)
	}
}

// Recent returns up to max retained entries (0 = all), oldest first.
func (l *Logger) Recent(max int) []LogEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	n := len(l.ring)
	filled := int(l.total)
	if filled > n {
		filled = n
	}
	start := 0
	if l.total > uint64(n) {
		start = l.next
	}
	out := make([]LogEntry, 0, filled)
	for i := 0; i < filled; i++ {
		out = append(out, l.ring[(start+i)%n])
	}
	l.mu.Unlock()
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Format renders the entry as one logfmt line:
//
//	ts=2026-08-08T12:00:00.000Z level=warn msg="breaker opened" trace=... key=value
func (e LogEntry) Format() string {
	var b strings.Builder
	b.Grow(96 + 16*len(e.KV))
	b.WriteString("ts=")
	b.WriteString(e.Time.UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(e.Level.String())
	b.WriteString(" msg=")
	b.WriteString(logfmtValue(e.Msg))
	if e.TraceID != 0 {
		b.WriteString(" trace=")
		writeHex16(&b, e.TraceID)
		b.WriteString(" span=")
		writeHex16(&b, e.SpanID)
	}
	for i := 0; i+1 < len(e.KV); i += 2 {
		b.WriteString(" ")
		b.WriteString(logfmtKey(e.KV[i]))
		b.WriteString("=")
		b.WriteString(logfmtValue(e.KV[i+1]))
	}
	if len(e.KV)%2 == 1 {
		b.WriteString(" _odd=")
		b.WriteString(logfmtValue(e.KV[len(e.KV)-1]))
	}
	return b.String()
}

// writeHex16 writes v as 16 lowercase hex digits.
func writeHex16(b *strings.Builder, v uint64) {
	const digits = "0123456789abcdef"
	for shift := 60; shift >= 0; shift -= 4 {
		b.WriteByte(digits[(v>>uint(shift))&0xf])
	}
}

// logfmtKey renders a KV key (expected string; anything else is
// stringified with the unsafe characters replaced).
func logfmtKey(k interface{}) string {
	s, ok := k.(string)
	if !ok {
		s = fmt.Sprint(k)
	}
	if strings.ContainsAny(s, " =\"\n") {
		s = strings.Map(func(r rune) rune {
			switch r {
			case ' ', '=', '"', '\n':
				return '_'
			}
			return r
		}, s)
	}
	return s
}

// logfmtValue renders a KV value, quoting when it contains spaces,
// quotes or equals signs.
func logfmtValue(v interface{}) string {
	var s string
	switch t := v.(type) {
	case string:
		s = t
	case error:
		if t == nil {
			s = ""
		} else {
			s = t.Error()
		}
	case int:
		return strconv.Itoa(t)
	case int64:
		return strconv.FormatInt(t, 10)
	case uint64:
		return strconv.FormatUint(t, 10)
	case bool:
		return strconv.FormatBool(t)
	case time.Duration:
		return t.String()
	case float64:
		return strconv.FormatFloat(t, 'g', -1, 64)
	case fmt.Stringer:
		s = t.String()
	default:
		s = fmt.Sprint(v)
	}
	if s == "" {
		return `""`
	}
	if !strings.ContainsAny(s, " =\"\n") {
		return s
	}
	return strconv.Quote(s)
}
