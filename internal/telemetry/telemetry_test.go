package telemetry

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	m := NewMeter()
	c := m.Counter("a")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if m.Counter("a") != c {
		t.Fatal("Counter not memoized by name")
	}
	g := m.Gauge("g")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}

	// Nil instruments are inert, not panics.
	var nc *Counter
	nc.Inc()
	nc.Add(1)
	if nc.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var ng *Gauge
	ng.Set(1)
	ng.Add(1)
	if ng.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var nh *Histogram
	nh.Observe(time.Second)
	if nh.Snapshot().Count != 0 {
		t.Fatal("nil histogram observed something")
	}
}

func TestHistogramSnapshot(t *testing.T) {
	m := NewMeter()
	h := m.Histogram("lat")
	for i := 0; i < 50; i++ {
		h.Observe(500 * time.Microsecond) // bucket 1 (<= 1ms)
	}
	for i := 0; i < 50; i++ {
		h.Observe(50 * time.Millisecond) // bucket 3 (<= 100ms)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 500*time.Microsecond || s.Max != 50*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.Buckets[1] != 50 || s.Buckets[3] != 50 {
		t.Fatalf("buckets = %v", s.Buckets)
	}
	if s.P50 < 500*time.Microsecond || s.P50 > time.Millisecond {
		t.Fatalf("p50 = %v, want within (0.5ms, 1ms]", s.P50)
	}
	if s.P99 < 10*time.Millisecond || s.P99 > 50*time.Millisecond {
		t.Fatalf("p99 = %v, want within (10ms, 50ms]", s.P99)
	}
	if mean := s.Mean(); mean <= 0 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestCallTable(t *testing.T) {
	tab := NewCallTable()
	tab.Record("Echo", DirClient, 2*time.Millisecond, false)
	tab.Record("Echo", DirClient, 4*time.Millisecond, true)
	tab.Record("Echo", DirServer, time.Millisecond, false)
	tab.Record("Other", DirClient, time.Second, false)

	snap := tab.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("rows = %d", len(snap))
	}
	// Ordered by service, then direction.
	if snap[0].Service != "Echo" || snap[0].Dir != DirClient ||
		snap[1].Service != "Echo" || snap[1].Dir != DirServer ||
		snap[2].Service != "Other" {
		t.Fatalf("order = %+v", snap)
	}
	row := tab.Service("Echo", DirClient)
	if row.Calls != 2 || row.Failures != 1 {
		t.Fatalf("row = %+v", row)
	}
	if row.MinLatency != 2*time.Millisecond || row.MaxLatency != 4*time.Millisecond {
		t.Fatalf("min/max = %v/%v", row.MinLatency, row.MaxLatency)
	}
	if row.MeanLatency != 3*time.Millisecond {
		t.Fatalf("mean = %v", row.MeanLatency)
	}
	empty := tab.Service("Nope", DirServer)
	if empty.Calls != 0 || len(empty.Buckets) != NumBuckets {
		t.Fatalf("empty row = %+v", empty)
	}
}

func TestTracerDisabledIsNil(t *testing.T) {
	tr := NewTracer()
	sp, ctx := tr.StartSpan(context.Background(), "x")
	if sp != nil {
		t.Fatal("disabled tracer returned a span")
	}
	if _, ok := SpanContextFromContext(ctx); ok {
		t.Fatal("disabled tracer polluted the context")
	}
	// All span methods are nil-safe.
	sp.SetService("s")
	sp.SetOp("o")
	sp.SetEndpoint("e")
	sp.SetDir(DirClient)
	sp.SetError(errors.New("x"))
	sp.Annotate("note")
	sp.Annotatef("note %d", 1)
	sp.End()
	if sp.Context() != (SpanContext{}) {
		t.Fatal("nil span has an identity")
	}
}

func TestTracerSpanLinkageAndSink(t *testing.T) {
	tr := NewTracer()
	col := NewCollector(16)
	if prev := tr.SetSink(col); prev != nil {
		t.Fatal("fresh tracer had a sink")
	}
	defer tr.SetSink(nil)

	parent, ctx := tr.StartSpan(context.Background(), "client.invoke")
	parent.SetService("Echo")
	parent.SetDir(DirClient)
	child, _ := tr.StartSpan(ctx, "server.dispatch")
	child.SetService("Echo")
	child.SetDir(DirServer)
	child.SetOp("echo")
	child.End()
	parent.SetError(errors.New("boom"))
	parent.End()
	parent.End() // double End is a no-op

	spans := col.Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	srv, cli := spans[0], spans[1]
	if srv.Name != "server.dispatch" || cli.Name != "client.invoke" {
		t.Fatalf("end order: %q then %q", srv.Name, cli.Name)
	}
	if srv.TraceID != cli.TraceID {
		t.Fatal("child did not inherit the trace")
	}
	if srv.ParentID != cli.SpanID {
		t.Fatalf("parent link: child.parent=%d, parent.span=%d", srv.ParentID, cli.SpanID)
	}
	if cli.Err != "boom" || srv.Err != "" {
		t.Fatalf("errors: %q / %q", cli.Err, srv.Err)
	}
	if srv.Op != "echo" || srv.Dir != DirServer {
		t.Fatalf("attrs: %+v", srv)
	}
	if got := col.ByService("Echo"); len(got) != 2 {
		t.Fatalf("ByService = %d", len(got))
	}
}

func TestTraceHeaderRoundTrip(t *testing.T) {
	sc := SpanContext{TraceID: 0xdeadbeef, SpanID: 42}
	got, ok := ParseTraceHeader(FormatTraceHeader(sc))
	if !ok || got != sc {
		t.Fatalf("round trip = %+v, %v", got, ok)
	}
	for _, bad := range []string{"", "zzz", "123", "12-zz", "0-0", "-", "10-0"} {
		if _, ok := ParseTraceHeader(bad); ok {
			t.Fatalf("parsed garbage %q", bad)
		}
	}
}

func TestContextPropagation(t *testing.T) {
	sc := SpanContext{TraceID: 7, SpanID: 9}
	ctx := ContextWithSpanContext(context.Background(), sc)
	got, ok := SpanContextFromContext(ctx)
	if !ok || got != sc {
		t.Fatalf("got %+v, %v", got, ok)
	}
	if _, ok := SpanContextFromContext(context.Background()); ok {
		t.Fatal("empty context carried a span")
	}
	if _, ok := SpanContextFromContext(nil); ok { //nolint:staticcheck // nil-safety is the contract under test
		t.Fatal("nil context carried a span")
	}
}

func TestCollectorBounds(t *testing.T) {
	col := NewCollector(2)
	for i := 0; i < 5; i++ {
		col.OnSpanEnd(SpanData{Name: "s"})
	}
	if col.Len() != 2 || col.Dropped() != 3 {
		t.Fatalf("len=%d dropped=%d", col.Len(), col.Dropped())
	}
	col.Reset()
	if col.Len() != 0 || col.Dropped() != 0 {
		t.Fatal("reset did not clear")
	}
}

// TestMeterRegistryConcurrent hammers the registry's get-or-create path
// and the instruments from many goroutines while snapshots are taken —
// the -race gate for the spine's hot path.
func TestMeterRegistryConcurrent(t *testing.T) {
	hub := New()
	const workers = 16
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				hub.Meter.Counter("shared.counter").Inc()
				hub.Meter.Counter(fmt.Sprintf("own.%d", w%4)).Inc()
				hub.Meter.Gauge("shared.gauge").Add(1)
				hub.Meter.Histogram("shared.hist").Observe(time.Duration(i) * time.Microsecond)
				hub.Calls.Record("Svc", DirClient, time.Millisecond, i%7 == 0)
				hub.Calls.Record("Svc", DirServer, time.Millisecond, false)
			}
		}(w)
	}
	// Concurrent readers.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = hub.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(stop)
	readers.Wait()

	total := workers * perWorker
	if got := hub.Meter.Counter("shared.counter").Value(); got != int64(total) {
		t.Fatalf("shared counter = %d, want %d", got, total)
	}
	if got := hub.Meter.Histogram("shared.hist").Snapshot().Count; got != int64(total) {
		t.Fatalf("histogram count = %d, want %d", got, total)
	}
	if got := hub.Calls.Service("Svc", DirClient).Calls; got != int64(total) {
		t.Fatalf("client calls = %d, want %d", got, total)
	}
	if got := hub.Calls.Service("Svc", DirServer).Calls; got != int64(total) {
		t.Fatalf("server calls = %d, want %d", got, total)
	}
}

// TestDisabledTelemetryAllocs is the bench-compare guard in unit-test
// form: with no sink attached, the per-call spine work — a disabled
// StartSpan, counter increments and a CallTable record — must not
// allocate at all.
func TestDisabledTelemetryAllocs(t *testing.T) {
	hub := New()
	ctx := context.Background()
	ctr := hub.Meter.Counter("x")
	hist := hub.Meter.Histogram("h")
	hub.Calls.Record("Echo", DirClient, time.Millisecond, false) // create the row
	allocs := testing.AllocsPerRun(1000, func() {
		sp, c2 := hub.Tracer.StartSpan(ctx, "client.invoke")
		sp.SetService("Echo")
		sp.SetError(nil)
		sp.End()
		if c2 != ctx {
			t.Fatal("disabled StartSpan derived a context")
		}
		ctr.Inc()
		hist.Observe(time.Millisecond)
		hub.Calls.Record("Echo", DirClient, time.Millisecond, false)
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocates %.1f per op, want 0", allocs)
	}
}

func TestHubSnapshotShape(t *testing.T) {
	hub := New()
	hub.Meter.Counter("c").Add(3)
	hub.Meter.Gauge("g").Set(-2)
	hub.Meter.Histogram("h").Observe(time.Millisecond)
	hub.Calls.Record("Echo", DirServer, time.Millisecond, false)
	s := hub.Snapshot()
	if s.Counters["c"] != 3 || s.Gauges["g"] != -2 {
		t.Fatalf("snapshot = %+v", s)
	}
	if s.Histograms["h"].Count != 1 {
		t.Fatalf("hist = %+v", s.Histograms["h"])
	}
	if len(s.Calls) != 1 || s.Calls[0].Service != "Echo" {
		t.Fatalf("calls = %+v", s.Calls)
	}
}

func TestBucketBounds(t *testing.T) {
	bounds := BucketBounds()
	if len(bounds)+1 != NumBuckets {
		t.Fatalf("bounds = %d, NumBuckets = %d", len(bounds), NumBuckets)
	}
	if bucketFor(0) != 0 || bucketFor(time.Hour) != len(bounds) {
		t.Fatal("bucketFor endpoints wrong")
	}
	for i, ub := range bounds {
		if bucketFor(ub) != i {
			t.Fatalf("bucketFor(%v) = %d, want %d", ub, bucketFor(ub), i)
		}
	}
}
