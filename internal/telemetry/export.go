package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the spine's egress: standard-format renderings of what the
// hub already knows. WritePrometheus emits the Meter and CallTable in
// Prometheus text exposition format (one scrape of /debug/wspeer/metrics);
// WriteChromeTrace renders spans as Chrome trace-event JSON loadable in
// chrome://tracing or Perfetto; SpanRing is the bounded buffer the trace
// endpoint serves from.

// promPrefix namespaces every exported metric.
const promPrefix = "wspeer_"

// WritePrometheus renders the hub's instruments in Prometheus text
// exposition format (version 0.0.4). Metric families are sorted by name,
// so consecutive scrapes of an idle hub are byte-identical. Counters gain
// the conventional _total suffix, latency histograms are exported as
// cumulative le-bucketed histograms in seconds, and the CallTable becomes
// three families labelled by {service, dir}.
func (h *Hub) WritePrometheus(w io.Writer) error {
	counters, gauges, hists := h.Meter.snapshot()
	bw := &errWriter{w: w}

	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name) + "_total"
		fmt.Fprintf(bw, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name])
	}

	names = names[:0]
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n%s %d\n", pn, pn, gauges[name])
	}

	names = names[:0]
	for name := range hists {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		writePromHistogram(bw, promName(name)+"_seconds", "", hists[name])
	}

	calls := h.Calls.Snapshot()
	if len(calls) > 0 {
		fmt.Fprintf(bw, "# TYPE %scalls_total counter\n", promPrefix)
		for _, c := range calls {
			fmt.Fprintf(bw, "%scalls_total{service=%q,dir=%q} %d\n", promPrefix, c.Service, c.Dir, c.Calls)
		}
		fmt.Fprintf(bw, "# TYPE %scall_failures_total counter\n", promPrefix)
		for _, c := range calls {
			fmt.Fprintf(bw, "%scall_failures_total{service=%q,dir=%q} %d\n", promPrefix, c.Service, c.Dir, c.Failures)
		}
		fmt.Fprintf(bw, "# TYPE %scall_latency_seconds histogram\n", promPrefix)
		for _, c := range calls {
			labels := fmt.Sprintf("service=%q,dir=%q", c.Service, c.Dir)
			writePromHistogram(bw, promPrefix+"call_latency_seconds", labels, HistogramSnapshot{
				Count:   c.Calls,
				Sum:     c.TotalLatency,
				Buckets: c.Buckets,
			})
		}
	}

	if h.Flight != nil {
		st := h.Flight.Stats()
		fmt.Fprintf(bw, "# TYPE %sflight_seen_total counter\n%sflight_seen_total %d\n", promPrefix, promPrefix, st.Seen)
		fmt.Fprintf(bw, "# TYPE %sflight_kept_total counter\n%sflight_kept_total %d\n", promPrefix, promPrefix, st.Kept)
		fmt.Fprintf(bw, "# TYPE %sflight_slow_threshold_seconds gauge\n%sflight_slow_threshold_seconds %s\n",
			promPrefix, promPrefix, promSeconds(st.SlowThreshold))
	}
	return bw.err
}

// writePromHistogram emits one histogram family: cumulative le buckets in
// seconds, then _sum and _count. The TYPE line is emitted only for the
// unlabelled form (labelled families share a TYPE line written by the
// caller).
func writePromHistogram(w io.Writer, name, labels string, s HistogramSnapshot) {
	if labels == "" {
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	}
	bounds := BucketBounds()
	var cum int64
	for i, b := range s.Buckets {
		cum += b
		le := "+Inf"
		if i < len(bounds) {
			le = promSeconds(bounds[i])
		}
		if labels != "" {
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels, le, cum)
		} else {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, promSeconds(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, s.Count)
}

// promSeconds renders a duration as seconds with enough precision for
// sub-microsecond latencies.
func promSeconds(d time.Duration) string {
	return fmt.Sprintf("%g", d.Seconds())
}

// promName mangles a spine instrument name ("core.sched.wait") into a
// Prometheus metric name ("wspeer_core_sched_wait").
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(promPrefix) + len(name))
	b.WriteString(promPrefix)
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// errWriter latches the first write error so exposition code can stay
// fmt.Fprintf-shaped.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) Write(p []byte) (int, error) {
	if e.err != nil {
		return len(p), nil
	}
	n, err := e.w.Write(p)
	if err != nil {
		e.err = err
	}
	return n, err
}

// SpanRing is a bounded ring Sink retaining the most recent spans — the
// buffer behind /debug/wspeer/trace. Unlike Collector (which stops
// accepting at capacity, for deterministic tests), a SpanRing keeps the
// newest spans and evicts the oldest.
type SpanRing struct {
	mu    sync.Mutex
	ring  []SpanData
	next  int
	total uint64
}

// NewSpanRing returns a ring retaining up to capacity spans (default
// 2048 for capacity <= 0).
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = 2048
	}
	return &SpanRing{ring: make([]SpanData, capacity)}
}

// OnSpanEnd implements Sink.
func (r *SpanRing) OnSpanEnd(d SpanData) {
	r.mu.Lock()
	r.ring[r.next] = d
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
	}
	r.total++
	r.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (r *SpanRing) Spans() []SpanData {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := len(r.ring)
	filled := int(r.total)
	if filled > n {
		filled = n
	}
	start := 0
	if r.total > uint64(n) {
		start = r.next
	}
	out := make([]SpanData, 0, filled)
	for i := 0; i < filled; i++ {
		out = append(out, r.ring[(start+i)%n])
	}
	return out
}

// Len reports how many spans are retained.
func (r *SpanRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.total > uint64(len(r.ring)) {
		return len(r.ring)
	}
	return int(r.total)
}

// chromeTraceEvent is one entry in the Chrome trace-event format's
// traceEvents array (the subset Perfetto and chrome://tracing read).
type chromeTraceEvent struct {
	Name  string                 `json:"name"`
	Cat   string                 `json:"cat,omitempty"`
	Phase string                 `json:"ph"`
	TS    float64                `json:"ts"`
	Dur   float64                `json:"dur,omitempty"`
	PID   int                    `json:"pid"`
	TID   int                    `json:"tid"`
	Scope string                 `json:"s,omitempty"`
	Args  map[string]interface{} `json:"args,omitempty"`
}

// chromeTraceFile is the JSON-object form of the trace-event format.
type chromeTraceFile struct {
	TraceEvents     []chromeTraceEvent `json:"traceEvents"`
	DisplayTimeUnit string             `json:"displayTimeUnit"`
}

// WriteChromeTrace renders spans as Chrome trace-event JSON, loadable in
// chrome://tracing and Perfetto. Each trace gets its own tid row (named
// by a thread_name metadata event), spans become complete ("X") events,
// and span annotations become instant ("i") events on the same row.
func WriteChromeTrace(w io.Writer, spans []SpanData) error {
	tids := map[uint64]int{}
	out := chromeTraceFile{DisplayTimeUnit: "ms", TraceEvents: []chromeTraceEvent{}}
	for _, d := range spans {
		tid, ok := tids[d.TraceID]
		if !ok {
			tid = len(tids) + 1
			tids[d.TraceID] = tid
			out.TraceEvents = append(out.TraceEvents, chromeTraceEvent{
				Name:  "thread_name",
				Phase: "M",
				PID:   1,
				TID:   tid,
				Args:  map[string]interface{}{"name": fmt.Sprintf("trace %016x", d.TraceID)},
			})
		}
		cat := d.Dir
		if cat == "" {
			cat = "span"
		}
		args := map[string]interface{}{
			"trace_id": fmt.Sprintf("%016x", d.TraceID),
			"span_id":  fmt.Sprintf("%016x", d.SpanID),
		}
		if d.ParentID != 0 {
			args["parent_id"] = fmt.Sprintf("%016x", d.ParentID)
		}
		if d.Service != "" {
			args["service"] = d.Service
		}
		if d.Op != "" {
			args["op"] = d.Op
		}
		if d.Endpoint != "" {
			args["endpoint"] = d.Endpoint
		}
		if d.Err != "" {
			args["err"] = d.Err
		}
		out.TraceEvents = append(out.TraceEvents, chromeTraceEvent{
			Name:  d.Name,
			Cat:   cat,
			Phase: "X",
			TS:    float64(d.Start.UnixNano()) / 1e3,
			Dur:   float64(d.Duration().Nanoseconds()) / 1e3,
			PID:   1,
			TID:   tid,
			Args:  args,
		})
		for _, a := range d.Annotations {
			out.TraceEvents = append(out.TraceEvents, chromeTraceEvent{
				Name:  a.Msg,
				Cat:   cat,
				Phase: "i",
				TS:    float64(a.Time.UnixNano()) / 1e3,
				PID:   1,
				TID:   tid,
				Scope: "t",
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
