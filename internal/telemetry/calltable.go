package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// CallTable is the spine's per-(service, direction) call ledger: counts,
// failures and a latency histogram per row. Rows are atomic, so Record is
// lock-free after a row's first call (a read-locked map hit plus a few
// atomic adds — the always-on cost the fast-path benchmarks gate at zero
// allocations).
//
// The Default hub's table is fed by the core client (one row per invoked
// service, direction "client") and the engine's server terminal (one row
// per dispatched service, direction "server"); pipeline.CallStats is a
// deprecated adapter over a private instance of this type.
type CallTable struct {
	mu   sync.RWMutex
	rows map[callKey]*callRow
}

type callKey struct {
	service string
	dir     string
}

type callRow struct {
	calls    atomic.Int64
	failures atomic.Int64
	totalNS  atomic.Int64
	minNS    atomic.Int64 // math.MaxInt64 until the first call
	maxNS    atomic.Int64
	buckets  [NumBuckets]atomic.Int64
}

func newCallRow() *callRow {
	r := &callRow{}
	r.minNS.Store(math.MaxInt64)
	return r
}

// NewCallTable returns an empty table.
func NewCallTable() *CallTable {
	return &CallTable{rows: make(map[callKey]*callRow)}
}

// Record adds one completed call. dir is DirClient or DirServer.
func (t *CallTable) Record(service, dir string, elapsed time.Duration, failed bool) {
	if t == nil {
		return
	}
	if elapsed < 0 {
		elapsed = 0
	}
	r := t.row(service, dir)
	r.calls.Add(1)
	if failed {
		r.failures.Add(1)
	}
	ns := elapsed.Nanoseconds()
	r.totalNS.Add(ns)
	casMin(&r.minNS, ns)
	casMax(&r.maxNS, ns)
	r.buckets[bucketFor(elapsed)].Add(1)
}

func (t *CallTable) row(service, dir string) *callRow {
	k := callKey{service: service, dir: dir}
	t.mu.RLock()
	r := t.rows[k]
	t.mu.RUnlock()
	if r != nil {
		return r
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r = t.rows[k]; r == nil {
		r = newCallRow()
		t.rows[k] = r
	}
	return r
}

// CallSnapshot is one service+direction row of a CallTable snapshot.
// MeanLatency, P50 and P99 are computed at snapshot time so the JSON form
// carries them without the reader re-deriving buckets.
type CallSnapshot struct {
	Service  string `json:"service"`
	Dir      string `json:"dir"`
	Calls    int64  `json:"calls"`
	Failures int64  `json:"failures"`
	// TotalLatency summed over all calls.
	TotalLatency time.Duration `json:"total_ns"`
	MinLatency   time.Duration `json:"min_ns"`
	MaxLatency   time.Duration `json:"max_ns"`
	MeanLatency  time.Duration `json:"mean_ns"`
	P50          time.Duration `json:"p50_ns"`
	P99          time.Duration `json:"p99_ns"`
	// Buckets counts calls at or under each BucketBounds entry, plus a
	// final overflow bucket.
	Buckets []int64 `json:"buckets"`
}

// Quantile estimates an arbitrary latency quantile (0..1) for the row.
func (s CallSnapshot) Quantile(q float64) time.Duration {
	return bucketQuantile(s.Buckets, q, s.MinLatency, s.MaxLatency)
}

func (r *callRow) snapshot(k callKey) CallSnapshot {
	s := CallSnapshot{
		Service:      k.service,
		Dir:          k.dir,
		Calls:        r.calls.Load(),
		Failures:     r.failures.Load(),
		TotalLatency: time.Duration(r.totalNS.Load()),
		MaxLatency:   time.Duration(r.maxNS.Load()),
		Buckets:      make([]int64, NumBuckets),
	}
	if min := r.minNS.Load(); min != math.MaxInt64 {
		s.MinLatency = time.Duration(min)
	}
	for i := range r.buckets {
		s.Buckets[i] = r.buckets[i].Load()
	}
	if s.Calls > 0 {
		s.MeanLatency = s.TotalLatency / time.Duration(s.Calls)
	}
	s.P50 = s.Quantile(0.50)
	s.P99 = s.Quantile(0.99)
	return s
}

// Snapshot copies every row, ordered by service name then direction.
func (t *CallTable) Snapshot() []CallSnapshot {
	t.mu.RLock()
	keys := make([]callKey, 0, len(t.rows))
	rows := make([]*callRow, 0, len(t.rows))
	for k, r := range t.rows {
		keys = append(keys, k)
		rows = append(rows, r)
	}
	t.mu.RUnlock()
	out := make([]CallSnapshot, len(rows))
	for i, r := range rows {
		out[i] = r.snapshot(keys[i])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Service != out[j].Service {
			return out[i].Service < out[j].Service
		}
		return out[i].Dir < out[j].Dir
	})
	return out
}

// Service returns the snapshot row for one service+direction (a zero row
// when the pair has not been seen).
func (t *CallTable) Service(service, dir string) CallSnapshot {
	k := callKey{service: service, dir: dir}
	t.mu.RLock()
	r := t.rows[k]
	t.mu.RUnlock()
	if r == nil {
		return CallSnapshot{Service: service, Dir: dir, Buckets: make([]int64, NumBuckets)}
	}
	return r.snapshot(k)
}
