package telemetry

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP request header carrying trace context between a
// client invocation and the server dispatch it causes. The value is
// FormatTraceHeader's "traceID-spanID" form; transports only attach it
// when the outgoing context actually carries a span, so untraced traffic
// is byte-identical to pre-telemetry traffic. The spelling is canonical
// MIME form — net/http's Header.Get canonicalises its argument and
// allocates a converted copy per call for any other casing, which would
// put an allocation on every server request, traced or not.
const TraceHeader = "X-Wspeer-Trace"

// SpanContext is the propagated identity of a span: enough for a child
// started in another process (or another layer) to link back to it.
type SpanContext struct {
	TraceID uint64
	SpanID  uint64
}

// spanCtxKey carries a SpanContext in a context.Context.
type spanCtxKey struct{}

// ContextWithSpanContext returns a context carrying the given propagated
// span identity — what a server host calls after extracting TraceHeader,
// so the dispatch span it starts links to the remote client span.
func ContextWithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, sc)
}

// SpanContextFromContext extracts the propagated span identity, if any.
func SpanContextFromContext(ctx context.Context) (SpanContext, bool) {
	if ctx == nil {
		return SpanContext{}, false
	}
	sc, ok := ctx.Value(spanCtxKey{}).(SpanContext)
	return sc, ok
}

// FormatTraceHeader renders a SpanContext for the wire.
func FormatTraceHeader(sc SpanContext) string {
	return fmt.Sprintf("%016x-%016x", sc.TraceID, sc.SpanID)
}

// ParseTraceHeader parses FormatTraceHeader's form; ok is false for
// anything malformed (the caller then just starts a fresh trace).
func ParseTraceHeader(s string) (SpanContext, bool) {
	t, p, found := strings.Cut(s, "-")
	if !found {
		return SpanContext{}, false
	}
	traceID, err := strconv.ParseUint(t, 16, 64)
	if err != nil {
		return SpanContext{}, false
	}
	spanID, err := strconv.ParseUint(p, 16, 64)
	if err != nil || traceID == 0 || spanID == 0 {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: traceID, SpanID: spanID}, true
}

// Tracer hands out spans. It is disabled — StartSpan returns a nil span
// and allocates nothing — until a Sink is attached with SetSink.
type Tracer struct {
	sink atomic.Pointer[sinkHolder]
	ids  atomic.Uint64
}

// sinkHolder boxes the Sink interface so it can live in an
// atomic.Pointer (interfaces themselves are two words).
type sinkHolder struct{ s Sink }

// NewTracer returns a disabled tracer.
func NewTracer() *Tracer { return &Tracer{} }

// SetSink attaches (or, with nil, detaches) the tracer's sink and returns
// the previous one so tests can restore it. Spans already started keep
// delivering to whatever sink is attached when they End.
func (t *Tracer) SetSink(s Sink) Sink {
	var h *sinkHolder
	if s != nil {
		h = &sinkHolder{s: s}
	}
	old := t.sink.Swap(h)
	if old == nil {
		return nil
	}
	return old.s
}

// Enabled reports whether a sink is attached.
func (t *Tracer) Enabled() bool { return t.sink.Load() != nil }

// StartSpan begins a span. With no sink attached it returns (nil, ctx)
// untouched — the zero-cost disabled path; every *Span method is safe on
// the nil result. With a sink, the span links to any SpanContext already
// in ctx (a parent span in this process, or a remote parent extracted
// from TraceHeader) and the returned context carries the new span's
// identity for children and transports.
func (t *Tracer) StartSpan(ctx context.Context, name string) (*Span, context.Context) {
	if t.sink.Load() == nil {
		return nil, ctx
	}
	sp := &Span{tracer: t, name: name, start: time.Now(), spanID: t.ids.Add(1)}
	if parent, ok := SpanContextFromContext(ctx); ok {
		sp.traceID, sp.parentID = parent.TraceID, parent.SpanID
	} else {
		sp.traceID = t.ids.Add(1)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return sp, ContextWithSpanContext(ctx, SpanContext{TraceID: sp.traceID, SpanID: sp.spanID})
}

// Annotation is one timestamped note on a span.
type Annotation struct {
	Time time.Time `json:"time"`
	Msg  string    `json:"msg"`
}

// Span is one timed unit of work. All methods are safe on a nil receiver
// (the disabled-tracer case) and safe for concurrent use.
type Span struct {
	tracer   *Tracer
	name     string
	traceID  uint64
	spanID   uint64
	parentID uint64
	start    time.Time

	mu          sync.Mutex
	ended       bool
	service     string
	op          string
	endpoint    string
	dir         string
	err         error
	annotations []Annotation
}

// Context returns the span's propagable identity (zero for nil spans).
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.traceID, SpanID: s.spanID}
}

// SetService records the service the span works on behalf of.
func (s *Span) SetService(service string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.service = service
	s.mu.Unlock()
}

// SetOp records the operation name (servers resolve it mid-dispatch).
func (s *Span) SetOp(op string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.op = op
	s.mu.Unlock()
}

// SetEndpoint records the endpoint the span addressed.
func (s *Span) SetEndpoint(endpoint string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.endpoint = endpoint
	s.mu.Unlock()
}

// SetDir records the span's side of the messaging system (DirClient or
// DirServer).
func (s *Span) SetDir(dir string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.dir = dir
	s.mu.Unlock()
}

// SetError records the span's outcome; a nil error clears it.
func (s *Span) SetError(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

// Annotate appends a timestamped note.
func (s *Span) Annotate(msg string) {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	s.annotations = append(s.annotations, Annotation{Time: now, Msg: msg})
	s.mu.Unlock()
}

// Annotatef appends a formatted timestamped note. Callers on hot paths
// should guard with `if span != nil` so the arguments are not boxed for a
// disabled tracer.
func (s *Span) Annotatef(format string, args ...interface{}) {
	if s == nil {
		return
	}
	s.Annotate(fmt.Sprintf(format, args...))
}

// End completes the span and delivers it to the tracer's sink. Second and
// later Ends are no-ops, as is End on a nil span.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	data := SpanData{
		Name:     s.name,
		TraceID:  s.traceID,
		SpanID:   s.spanID,
		ParentID: s.parentID,
		Service:  s.service,
		Op:       s.op,
		Endpoint: s.endpoint,
		Dir:      s.dir,
		Start:    s.start,
		End:      end,
	}
	if s.err != nil {
		data.Err = s.err.Error()
	}
	if len(s.annotations) > 0 {
		data.Annotations = append([]Annotation(nil), s.annotations...)
	}
	s.mu.Unlock()
	if h := s.tracer.sink.Load(); h != nil {
		h.s.OnSpanEnd(data)
	}
}

// SpanData is the immutable record of an ended span, as delivered to
// sinks.
type SpanData struct {
	Name        string       `json:"name"`
	TraceID     uint64       `json:"trace_id"`
	SpanID      uint64       `json:"span_id"`
	ParentID    uint64       `json:"parent_id,omitempty"`
	Service     string       `json:"service,omitempty"`
	Op          string       `json:"op,omitempty"`
	Endpoint    string       `json:"endpoint,omitempty"`
	Dir         string       `json:"dir,omitempty"`
	Start       time.Time    `json:"start"`
	End         time.Time    `json:"end"`
	Err         string       `json:"err,omitempty"`
	Annotations []Annotation `json:"annotations,omitempty"`
}

// Duration returns the span's elapsed time.
func (d SpanData) Duration() time.Duration { return d.End.Sub(d.Start) }
