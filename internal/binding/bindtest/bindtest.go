// Package bindtest is the shared conformance suite for substrate bindings:
// one battery of lifecycle tests — deploy → publish → locate → invoke →
// fault → detach → close — that every binding (httpbind, p2psbind,
// inmembind, and any future substrate) must pass identically. A binding's
// test package supplies a World describing how to stand its substrate up;
// Run does the rest, so the contract is enforced by construction rather
// than by parallel hand-written suites drifting apart.
package bindtest

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/soap"
	"wspeer/internal/telemetry"
	"wspeer/internal/transport"
)

// Fabric is one instance of a binding's substrate (an overlay, a registry,
// an in-memory network): peers minted from the same fabric can discover
// and reach each other.
type Fabric struct {
	// NewPeer returns a fresh peer with a fresh binding of the world's
	// kind attached (via AttachBinding). The binding must be usable until
	// the test ends; substrate teardown belongs in t.Cleanup.
	NewPeer func(t *testing.T) (*core.Peer, core.Binding)
}

// World describes a binding kind to the conformance suite.
type World struct {
	// NewFabric stands up an isolated substrate instance. Each subtest
	// gets its own fabric, so no state leaks between them.
	NewFabric func(t *testing.T) *Fabric
	// LocateDeadline bounds how long the suite retries discovery before
	// declaring a service unlocatable (default 10s; raise it for
	// substrates with slow advert propagation).
	LocateDeadline time.Duration
}

// Run applies the conformance suite to a binding kind.
func Run(t *testing.T, w World) {
	if w.LocateDeadline <= 0 {
		w.LocateDeadline = 10 * time.Second
	}
	t.Run("Lifecycle", func(t *testing.T) { testLifecycle(t, w) })
	t.Run("AttachIdempotent", func(t *testing.T) { testAttachIdempotent(t, w) })
	t.Run("DetachRemovesComponents", func(t *testing.T) { testDetachRemovesComponents(t, w) })
	t.Run("CloseDrainsInFlight", func(t *testing.T) { testCloseDrainsInFlight(t, w) })
	t.Run("TelemetrySequence", func(t *testing.T) { testTelemetrySequence(t, w) })
}

// testTelemetrySequence pins the telemetry contract every substrate must
// honour identically: one round-trip invocation produces exactly one
// server.dispatch span and one client.invoke span (ending in that order),
// both carrying the service and operation, plus one client row and one
// server row in the spine's call table. Parent/child linkage is asserted
// only when the substrate propagated the trace context (bindings whose
// server side cannot carry the caller's context emit an unparented
// dispatch span — the sequence itself must still be identical).
func testTelemetrySequence(t *testing.T, w World) {
	fab := w.NewFabric(t)
	provider, _ := fab.NewPeer(t)
	consumer, _ := fab.NewPeer(t)
	ctx := context.Background()

	col := telemetry.NewCollector(0)
	prev := telemetry.Default().Tracer.SetSink(col)
	t.Cleanup(func() { telemetry.Default().Tracer.SetSink(prev) })

	const svcName = "TelemetryConformance"
	table := telemetry.Default().Calls
	clientBefore := table.Service(svcName, telemetry.DirClient).Calls
	serverBefore := table.Service(svcName, telemetry.DirServer).Calls

	if _, err := provider.Server().DeployAndPublish(ctx, conformanceDef(svcName)); err != nil {
		t.Fatal(err)
	}
	info := locateWithRetry(t, w, consumer, svcName)
	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := inv.Invoke(ctx, "echoString", engine.P("msg", "tele")); err != nil {
		t.Fatal(err)
	} else if got, _ := res.String("return"); got != "echo:tele" {
		t.Fatalf("echoString = %q", got)
	}

	spans := col.ByService(svcName)
	if len(spans) != 2 {
		t.Fatalf("round trip produced %d spans for %s, want 2 (server.dispatch, client.invoke): %+v",
			len(spans), svcName, spans)
	}
	srv, cli := spans[0], spans[1]
	if srv.Name != "server.dispatch" || cli.Name != "client.invoke" {
		t.Fatalf("span sequence = [%s, %s], want [server.dispatch, client.invoke]", srv.Name, cli.Name)
	}
	for _, d := range []telemetry.SpanData{srv, cli} {
		if d.Op != "echoString" {
			t.Fatalf("%s span Op = %q, want echoString", d.Name, d.Op)
		}
		if d.Err != "" {
			t.Fatalf("%s span recorded error %q on a successful call", d.Name, d.Err)
		}
		if d.Duration() <= 0 {
			t.Fatalf("%s span has non-positive duration", d.Name)
		}
	}
	if srv.Dir != telemetry.DirServer || cli.Dir != telemetry.DirClient {
		t.Fatalf("span directions = %q/%q, want server/client", srv.Dir, cli.Dir)
	}
	if cli.Endpoint == "" {
		t.Fatal("client span does not record the endpoint")
	}
	if srv.ParentID != 0 {
		// The substrate propagated the trace: dispatch must be the
		// invocation's child within one trace.
		if srv.TraceID != cli.TraceID || srv.ParentID != cli.SpanID {
			t.Fatalf("propagated trace is not linked: server (trace %x, parent %x), client (trace %x, span %x)",
				srv.TraceID, srv.ParentID, cli.TraceID, cli.SpanID)
		}
	}

	if got := table.Service(svcName, telemetry.DirClient).Calls - clientBefore; got != 1 {
		t.Fatalf("call table client row grew by %d, want 1", got)
	}
	if got := table.Service(svcName, telemetry.DirServer).Calls - serverBefore; got != 1 {
		t.Fatalf("call table server row grew by %d, want 1", got)
	}
}

// conformanceDef is the service every binding hosts for the suite: a
// round-trip echo, a faulting operation, a slow operation (for drain
// tests) and a one-way notification.
func conformanceDef(name string) engine.ServiceDef {
	return engine.ServiceDef{
		Name: name,
		Operations: []engine.OperationDef{
			{Name: "echoString", Func: func(s string) string { return "echo:" + s }, ParamNames: []string{"msg"}},
			{Name: "fail", Func: func() (string, error) { return "", errors.New("intentional") }},
			{Name: "slow", Func: func(s string) string {
				time.Sleep(150 * time.Millisecond)
				return "slow:" + s
			}, ParamNames: []string{"msg"}},
			{Name: "notify", Func: func(s string) error { return nil }, OneWay: true},
		},
	}
}

// locateWithRetry tolerates advert/record propagation latency.
func locateWithRetry(t *testing.T, w World, p *core.Peer, name string) *core.ServiceInfo {
	t.Helper()
	deadline := time.Now().Add(w.LocateDeadline)
	for time.Now().Before(deadline) {
		info, err := p.Client().LocateOne(context.Background(), core.NameQuery{Name: name})
		if err == nil {
			return info
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("service %q never became locatable", name)
	return nil
}

func testLifecycle(t *testing.T, w World) {
	fab := w.NewFabric(t)
	provider, pb := fab.NewPeer(t)
	consumer, _ := fab.NewPeer(t)
	ctx := context.Background()

	dep, err := provider.Server().DeployAndPublish(ctx, conformanceDef("Conformance"))
	if err != nil {
		t.Fatal(err)
	}
	scheme := transport.SchemeOf(dep.Endpoint)
	if !containsString(pb.Schemes(), scheme) {
		t.Fatalf("deployed endpoint %q has scheme %q, not among binding schemes %v",
			dep.Endpoint, scheme, pb.Schemes())
	}

	info := locateWithRetry(t, w, consumer, "Conformance")
	if info.Definitions == nil || info.Definitions.Operation("echoString") == nil {
		t.Fatal("locator did not deliver usable definitions")
	}
	if info.Locator == "" {
		t.Fatal("located info does not name its locator")
	}

	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inv.Invoke(ctx, "echoString", engine.P("msg", "conf"))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := res.String("return"); err != nil || got != "echo:conf" {
		t.Fatalf("echoString = %q, %v", got, err)
	}

	// Faults travel as SOAP faults, whatever the substrate.
	_, err = inv.Invoke(ctx, "fail")
	var f *soap.Fault
	if !errors.As(err, &f) || !strings.Contains(f.String, "intentional") {
		t.Fatalf("fault did not round-trip: %v", err)
	}

	// One-way operations return no result and no error.
	if res, err := inv.Invoke(ctx, "notify", engine.P("msg", "fire-and-forget")); err != nil || res != nil {
		t.Fatalf("one-way = %v, %v", res, err)
	}

	// Undeploy unpublishes everywhere; the service stops being locatable.
	if err := provider.Server().Undeploy(ctx, "Conformance"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(w.LocateDeadline)
	for {
		_, err := consumer.Client().LocateOne(ctx, core.NameQuery{Name: "Conformance"})
		if err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service still locatable after Undeploy")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func testAttachIdempotent(t *testing.T, w World) {
	fab := w.NewFabric(t)
	p, b := fab.NewPeer(t)

	locators := len(p.Client().Locators())
	names := len(p.Bindings())

	// Re-attaching — directly or through the peer — must not accumulate
	// components or registrations.
	if err := b.Attach(p); err != nil {
		t.Fatal(err)
	}
	if err := p.AttachBinding(b); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Client().Locators()); got != locators {
		t.Fatalf("locators after re-attach = %d, want %d", got, locators)
	}
	if got := len(p.Bindings()); got != names {
		t.Fatalf("bindings after re-attach = %d, want %d", got, names)
	}
	if p.Binding(b.Name()) == nil {
		t.Fatalf("binding %q not registered on peer", b.Name())
	}
}

func testDetachRemovesComponents(t *testing.T, w World) {
	fab := w.NewFabric(t)
	p, b := fab.NewPeer(t)
	ctx := context.Background()

	if err := p.DetachBinding(b); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Bindings()); got != 0 {
		t.Fatalf("bindings after detach = %d", got)
	}
	if got := len(p.Client().Locators()); got != 0 {
		t.Fatalf("locators after detach = %d", got)
	}
	if _, err := p.Server().Deploy(conformanceDef("Detached")); !errors.Is(err, core.ErrNoDeployer) {
		t.Fatalf("deploy after detach = %v, want ErrNoDeployer", err)
	}
	endpoint := b.Schemes()[0] + "://nowhere/Detached"
	if _, err := p.Client().NewInvocation(&core.ServiceInfo{Name: "Detached", Endpoint: endpoint}); err == nil {
		t.Fatalf("invoker for scheme %q survived detach", b.Schemes()[0])
	}

	// Re-attach restores full function.
	if err := p.AttachBinding(b); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Server().DeployAndPublish(ctx, conformanceDef("Reattached")); err != nil {
		t.Fatalf("deploy after re-attach: %v", err)
	}
	info := locateWithRetry(t, w, p, "Reattached")
	inv, err := p.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	if res, err := inv.Invoke(ctx, "echoString", engine.P("msg", "back")); err != nil {
		t.Fatal(err)
	} else if got, _ := res.String("return"); got != "echo:back" {
		t.Fatalf("invoke after re-attach = %q", got)
	}
}

func testCloseDrainsInFlight(t *testing.T, w World) {
	fab := w.NewFabric(t)
	provider, pb := fab.NewPeer(t)
	consumer, _ := fab.NewPeer(t)
	ctx := context.Background()

	if _, err := provider.Server().DeployAndPublish(ctx, conformanceDef("Draining")); err != nil {
		t.Fatal(err)
	}
	info := locateWithRetry(t, w, consumer, "Draining")
	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}

	type outcome struct {
		got string
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := inv.Invoke(ctx, "slow", engine.P("msg", "drain"))
		if err != nil {
			done <- outcome{err: err}
			return
		}
		got, err := res.String("return")
		done <- outcome{got: got, err: err}
	}()

	// Close while the slow call is in flight: the binding must drain it,
	// not sever it.
	time.Sleep(50 * time.Millisecond)
	if err := pb.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	select {
	case o := <-done:
		if o.err != nil || o.got != "slow:drain" {
			t.Fatalf("in-flight invoke after close = %q, %v", o.got, o.err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("in-flight invoke never completed")
	}

	// Close is idempotent.
	if err := pb.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
