// Package binding is the seam between WSPeer's substrate-neutral core and
// its substrate bindings (httpbind, p2psbind, inmembind). The paper's
// central architectural claim (§III/§IV) is that the locator, publisher,
// deployer and invoker components are pluggable and mixable — "a P2PS
// client could use the UDDI enabled ServiceLocator defined in the standard
// implementation". This package makes that claim structural:
//
//   - core.Binding (aliased here) is the contract every substrate
//     implements: Name, Schemes, Components, Attach/Detach, Use, Close;
//   - Base carries the attach/detach choreography every binding used to
//     copy-paste: wire the component bundle into the peer, forward the
//     engine pipeline's server-side exchanges as ServerMessageEvents,
//     undo exactly that on detach — idempotently in both directions;
//   - Registry keys live bindings by name and endpoint scheme, so hosts
//     can route "which binding serves p2ps://…?" without hard-coding;
//   - ComposeClient builds a peer from explicitly mixed parts (a UDDI
//     locator with a P2PS invoker, a P2PS locator with an HTTP invoker).
//
// A new substrate implements Components once, embeds *Base, and inherits
// the full lifecycle — the conformance suite in bindtest then applies the
// same deploy → publish → locate → invoke → fault → close contract to it
// that the shipped bindings satisfy.
package binding

import (
	"fmt"
	"sync"
	"sync/atomic"

	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/pipeline"
)

// Binding is the substrate-binding contract (defined in core so the peer
// can manage attached bindings without importing this package).
type Binding = core.Binding

// Components is the pluggable-component bundle a binding contributes.
type Components = core.Components

// Base implements the generic half of the Binding contract — everything
// except construction and Close, which remain substrate-specific. Concrete
// bindings embed *Base and gain idempotent Attach/Detach, engine-pipeline
// event forwarding and interceptor installation for free.
type Base struct {
	name    string
	schemes []string
	eng     *engine.Engine
	comps   Components

	mu       sync.Mutex
	attached map[*core.Peer]bool

	// target is the peer server-side exchanges are forwarded to as
	// ServerMessageEvents. The last attached peer wins; detaching it stops
	// forwarding. The forwarding interceptor itself is installed once per
	// Base at construction, so repeated attach/detach cycles never stack
	// duplicate interceptors on the engine.
	target atomic.Pointer[core.Peer]
}

// NewBase wires the shared choreography for a binding: name and schemes
// identify it, eng is the engine hosting its services, and comps is the
// component bundle Attach installs. NewBase installs the Events choke
// point on the engine pipeline that turns every hosted exchange into a
// ServerMessageEvent on the attached peer.
func NewBase(name string, schemes []string, eng *engine.Engine, comps Components) *Base {
	b := &Base{
		name:     name,
		schemes:  append([]string(nil), schemes...),
		eng:      eng,
		comps:    comps,
		attached: make(map[*core.Peer]bool),
	}
	eng.Use(pipeline.Events(func(c *pipeline.Call) {
		if p := b.target.Load(); p != nil {
			p.FireServerMessage(c.Service, c.Request, c.Response)
		}
	}))
	return b
}

// Name implements Binding.
func (b *Base) Name() string { return b.name }

// Schemes implements Binding.
func (b *Base) Schemes() []string { return append([]string(nil), b.schemes...) }

// Components implements Binding.
func (b *Base) Components() Components { return b.comps }

// Engine exposes the underlying messaging engine.
func (b *Base) Engine() *engine.Engine { return b.eng }

// Attach implements Binding: the component bundle is wired into the peer —
// deployer and publishers on the server side, locators and invokers on the
// client side — and the peer becomes the target of the binding's
// ServerMessageEvents. Attach is idempotent: a peer that is already
// attached is left exactly as it is.
func (b *Base) Attach(p *core.Peer) error {
	b.mu.Lock()
	if b.attached[p] {
		b.mu.Unlock()
		return nil
	}
	b.attached[p] = true
	b.mu.Unlock()

	c := b.comps
	if c.Deployer != nil {
		p.Server().SetDeployer(c.Deployer)
	}
	for _, pub := range c.Publishers {
		p.Server().AddPublisher(pub)
	}
	for _, l := range c.Locators {
		p.Client().AddLocator(l)
	}
	for _, inv := range c.Invokers {
		p.Client().RegisterInvoker(inv)
	}
	b.target.Store(p)
	return nil
}

// Detach implements Binding: it removes from the peer exactly what Attach
// added — components and event forwarding — and nothing else. Components a
// later binding took over (a replaced deployer, a re-registered scheme)
// are left with their current owner. Detaching a peer that was never
// attached is a no-op.
func (b *Base) Detach(p *core.Peer) error {
	b.mu.Lock()
	if !b.attached[p] {
		b.mu.Unlock()
		return nil
	}
	delete(b.attached, p)
	b.mu.Unlock()

	c := b.comps
	if c.Deployer != nil {
		p.Server().RemoveDeployer(c.Deployer)
	}
	for _, pub := range c.Publishers {
		p.Server().RemovePublisher(pub)
	}
	for _, l := range c.Locators {
		p.Client().RemoveLocator(l)
	}
	for _, inv := range c.Invokers {
		p.Client().UnregisterInvoker(inv)
	}
	b.target.CompareAndSwap(p, nil)
	return nil
}

// Use implements Binding: interceptors are installed on the binding's
// engine pipeline, so every hosted request — whichever host feeds the
// engine — flows through them. Client-side interceptors belong on the
// peer's Client (core.Client.Use).
func (b *Base) Use(ics ...pipeline.Interceptor) { b.eng.Use(ics...) }

// ---------------------------------------------------------------------------
// Registry

// Registry keys live bindings by name and by endpoint scheme — the lookup
// a multi-substrate host needs to answer "which binding serves this
// endpoint?" without hard-coding the substrate set.
type Registry struct {
	mu       sync.Mutex
	byName   map[string]Binding
	byScheme map[string]Binding
	order    []string
}

// NewRegistry returns an empty binding registry.
func NewRegistry() *Registry {
	return &Registry{
		byName:   make(map[string]Binding),
		byScheme: make(map[string]Binding),
	}
}

// Register adds a binding, claiming its name and every scheme it serves.
// A name or scheme already claimed by another binding is an error and
// leaves the registry unchanged.
func (r *Registry) Register(b Binding) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[b.Name()]; dup {
		return fmt.Errorf("binding: name %q already registered", b.Name())
	}
	schemes := b.Schemes()
	for _, s := range schemes {
		if prev, dup := r.byScheme[s]; dup {
			return fmt.Errorf("binding: scheme %q already served by %q", s, prev.Name())
		}
	}
	r.byName[b.Name()] = b
	for _, s := range schemes {
		r.byScheme[s] = b
	}
	r.order = append(r.order, b.Name())
	return nil
}

// Deregister removes a binding by name, releasing its schemes; it returns
// the removed binding (nil if the name was unknown).
func (r *Registry) Deregister(name string) Binding {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.byName[name]
	if !ok {
		return nil
	}
	delete(r.byName, name)
	for s, owner := range r.byScheme {
		if owner == b {
			delete(r.byScheme, s)
		}
	}
	for i, n := range r.order {
		if n == name {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	return b
}

// ByName returns the binding registered under name, or nil.
func (r *Registry) ByName(name string) Binding {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byName[name]
}

// ByScheme returns the binding serving an endpoint scheme, or nil.
func (r *Registry) ByScheme(scheme string) Binding {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byScheme[scheme]
}

// Names lists registered binding names in registration order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.order...)
}

// bindings snapshots the registered bindings in registration order.
func (r *Registry) bindings() []Binding {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Binding, 0, len(r.order))
	for _, n := range r.order {
		out = append(out, r.byName[n])
	}
	return out
}

// AttachAll attaches every registered binding to the peer, in registration
// order. The first error aborts the walk.
func (r *Registry) AttachAll(p *core.Peer) error {
	for _, b := range r.bindings() {
		if err := p.AttachBinding(b); err != nil {
			return err
		}
	}
	return nil
}

// DetachAll detaches every registered binding from the peer; errors are
// collected, not short-circuited.
func (r *Registry) DetachAll(p *core.Peer) error {
	var errs []error
	for _, b := range r.bindings() {
		if err := p.DetachBinding(b); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", b.Name(), err))
		}
	}
	return joinErrors(errs)
}

// Close closes every registered binding (registration order) and empties
// the registry; errors are collected, not short-circuited.
func (r *Registry) Close() error {
	var errs []error
	for _, b := range r.bindings() {
		if err := b.Close(); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", b.Name(), err))
		}
		r.Deregister(b.Name())
	}
	return joinErrors(errs)
}

func joinErrors(errs []error) error {
	switch len(errs) {
	case 0:
		return nil
	case 1:
		return errs[0]
	default:
		return fmt.Errorf("binding: %d errors, first: %w", len(errs), errs[0])
	}
}

// ---------------------------------------------------------------------------
// Composition

// ComposeClient builds a peer whose client side is assembled from an
// explicitly mixed component bundle — the paper's "P2PS client using the
// UDDI locator" made first-class. The parts are wired exactly as a
// binding's Attach would wire them, but drawn from any mix of donors:
//
//	mixed, _ := binding.ComposeClient(binding.Components{
//	    Locators: []core.ServiceLocator{httpB.Locator()},   // find via UDDI
//	    Invokers: []core.Invoker{p2psB.Invoker()},          // call over pipes
//	})
//
// Server-side parts (Deployer, Publishers) may be included for mixed
// providers. At least one locator or invoker is required — a client with
// neither cannot do anything.
func ComposeClient(parts Components) (*core.Peer, error) {
	if len(parts.Locators) == 0 && len(parts.Invokers) == 0 {
		return nil, fmt.Errorf("binding: composition needs at least one locator or invoker")
	}
	p := core.NewPeer()
	if parts.Deployer != nil {
		p.Server().SetDeployer(parts.Deployer)
	}
	for _, pub := range parts.Publishers {
		p.Server().AddPublisher(pub)
	}
	for _, l := range parts.Locators {
		p.Client().AddLocator(l)
	}
	for _, inv := range parts.Invokers {
		p.Client().RegisterInvoker(inv)
	}
	return p, nil
}
