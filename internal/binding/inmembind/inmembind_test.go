package inmembind

import (
	"context"
	"testing"

	"wspeer/internal/binding/bindtest"
	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/transport"
	"wspeer/internal/wsdl"
)

// TestConformance runs the shared binding conformance suite against the
// in-memory binding: each fabric is one shared network plus one shared
// directory, the binding's analogue of a common overlay and registry.
func TestConformance(t *testing.T) {
	bindtest.Run(t, bindtest.World{
		NewFabric: func(t *testing.T) *bindtest.Fabric {
			net := transport.NewInMemNetwork()
			dir := NewDirectory()
			return &bindtest.Fabric{
				NewPeer: func(t *testing.T) (*core.Peer, core.Binding) {
					t.Helper()
					b, err := New(Options{Network: net, Directory: dir})
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { b.Close() })
					p := core.NewPeer()
					if err := p.AttachBinding(b); err != nil {
						t.Fatal(err)
					}
					return p, b
				},
			}
		},
	})
}

func TestDirectoryQueries(t *testing.T) {
	dir := NewDirectory()
	defs := &wsdl.Definitions{Name: "Echo"}
	id := dir.Publish(Record{Name: "Echo", Endpoint: "mem://a/Echo", Definitions: defs,
		Attrs: map[string]string{"kind": "echo"}})
	dir.Publish(Record{Name: "EchoPlus", Endpoint: "mem://a/EchoPlus", Definitions: defs,
		Attrs: map[string]string{"kind": "plus"}})
	dir.Publish(Record{Name: "Other", Endpoint: "mem://a/Other", Definitions: defs})

	cases := []struct {
		q    core.ServiceQuery
		want int
	}{
		{core.NameQuery{Name: "Echo"}, 1},
		{core.NameQuery{Name: "Echo*"}, 2},
		{core.NameQuery{Name: "*"}, 3},
		{core.NameQuery{Name: ""}, 3},
		{core.NameQuery{Name: "*Plus"}, 1},
		{core.NameQuery{Name: "Echo*", Attrs: map[string]string{"kind": "plus"}}, 1},
		{core.NameQuery{Name: "Echo*", Attrs: map[string]string{"kind": "nope"}}, 0},
		{core.NameQuery{Name: "*", MaxResults: 2}, 2},
		{core.ExprQuery{Expr: "name like 'Echo*' and attr(kind) = 'echo'"}, 1},
	}
	for _, c := range cases {
		got, err := dir.find(c.q)
		if err != nil {
			t.Fatalf("find(%+v): %v", c.q, err)
		}
		if len(got) != c.want {
			t.Errorf("find(%+v) = %d records, want %d", c.q, len(got), c.want)
		}
	}
	if _, err := dir.find(core.ExprQuery{Expr: "name like ("}); err == nil {
		t.Error("bad expression should error")
	}

	if !dir.Unpublish(id) || dir.Unpublish(id) {
		t.Error("unpublish should succeed once")
	}
	if dir.Len() != 2 {
		t.Errorf("len = %d", dir.Len())
	}
}

func TestForeignPublishCarriesEndpoint(t *testing.T) {
	// A record published for another binding's deployment keeps its
	// foreign endpoint, so the scheme routes invocation elsewhere.
	dir := NewDirectory()
	b, err := New(Options{Directory: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	p := core.NewPeer()
	if err := p.AttachBinding(b); err != nil {
		t.Fatal(err)
	}
	svcName := "Remote"
	eng := b.Engine()
	if _, err := eng.Deploy(engine.ServiceDef{
		Name: svcName,
		Operations: []engine.OperationDef{
			{Name: "ping", Func: func(s string) string { return s }, ParamNames: []string{"msg"}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	svc := eng.Service(svcName)
	defs, err := svc.WSDL(wsdl.TransportHTTP, "http://example.org/Remote")
	if err != nil {
		t.Fatal(err)
	}
	dep := &core.Deployment{Service: svc, Endpoint: "http://example.org/Remote", Definitions: defs, Deployer: "httpd"}
	loc, err := b.Publisher().Publish(context.Background(), dep)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Publisher().Unpublish(context.Background(), loc)

	info, err := p.Client().LocateOne(context.Background(), core.NameQuery{Name: svcName})
	if err != nil {
		t.Fatal(err)
	}
	if transport.SchemeOf(info.Endpoint) != "http" {
		t.Fatalf("foreign endpoint = %q", info.Endpoint)
	}
}
