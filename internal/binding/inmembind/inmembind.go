// Package inmembind is the third substrate binding: services are hosted on
// the process-local in-memory network (transport.InMemNetwork), published
// to a shared in-process Directory, located by querying it, and invoked
// over the mem:// transport. It exists for two reasons: fast deterministic
// tests of binding-generic code, and as the proof that the binding
// abstraction holds — it implements exactly the same contract (and passes
// the same conformance suite) as the HTTP and P2PS bindings.
package inmembind

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"wspeer/internal/binding"
	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/pipeline"
	"wspeer/internal/resilience"
	"wspeer/internal/soap"
	"wspeer/internal/transport"
	"wspeer/internal/wsaddr"
	"wspeer/internal/wsdl"
)

// Options configures the in-memory binding.
type Options struct {
	// Engine hosts the services (a fresh engine when nil).
	Engine *engine.Engine
	// Network carries invocations. Share one network between provider and
	// consumer bindings so mem:// endpoints resolve (a fresh, private
	// network when nil).
	Network *transport.InMemNetwork
	// Directory is the shared registry analogue. Share one directory so
	// publications are visible across bindings (a fresh one when nil).
	Directory *Directory
	// Host names this binding's endpoint authority: services deploy at
	// mem://<host>/<service> (a unique generated name when empty).
	Host string
}

// hostSeq generates distinct default host names within the process.
var hostSeq atomic.Int64

// callbackSeq generates distinct reply-endpoint paths within the process.
var callbackSeq atomic.Int64

// Binding bundles the in-memory implementation's components. The generic
// attach/detach choreography and event forwarding come from the embedded
// binding.Base.
type Binding struct {
	*binding.Base
	net  *transport.InMemNetwork
	dir  *Directory
	host string
	reg  *transport.Registry

	mu       sync.Mutex
	deployed map[string]string // service -> endpoint
	attrs    map[string]map[string]string
	closed   bool

	// inflight counts dispatches in progress so Close can drain them.
	inflight sync.WaitGroup
}

// New builds the binding.
func New(opts Options) (*Binding, error) {
	if opts.Engine == nil {
		opts.Engine = engine.New()
	}
	if opts.Network == nil {
		opts.Network = transport.NewInMemNetwork()
	}
	if opts.Directory == nil {
		opts.Directory = NewDirectory()
	}
	if opts.Host == "" {
		opts.Host = fmt.Sprintf("peer-%d", hostSeq.Add(1))
	}
	reg := transport.NewRegistry()
	reg.Register(opts.Network.Transport())
	b := &Binding{
		net:      opts.Network,
		dir:      opts.Directory,
		host:     opts.Host,
		reg:      reg,
		deployed: make(map[string]string),
		attrs:    make(map[string]map[string]string),
	}
	b.Base = binding.NewBase("inmem", []string{"mem"}, opts.Engine, binding.Components{
		Deployer:   b.Deployer(),
		Publishers: []core.ServicePublisher{b.Publisher()},
		Locators:   []core.ServiceLocator{b.Locator()},
		Invokers:   []core.Invoker{b.Invoker()},
	})
	// Decoupled replies to mem:// reply endpoints go back out through the
	// same network; other schemes need their binding's sender registered on
	// this engine (see Engine.RegisterReplySender).
	opts.Engine.RegisterReplySender("mem", b.ReplySender())
	return b, nil
}

// ReplySender delivers decoupled replies over the binding's in-memory
// network. Register it on another binding's engine to let that substrate
// answer requests whose ReplyTo is a mem:// endpoint.
func (b *Binding) ReplySender() engine.ReplySender {
	return binding.PostReplySender(b.reg)
}

// Network exposes the in-memory network the binding serves on.
func (b *Binding) Network() *transport.InMemNetwork { return b.net }

// Directory exposes the binding's service directory.
func (b *Binding) Directory() *Directory { return b.dir }

// Registry exposes the client transport registry.
func (b *Binding) Registry() *transport.Registry { return b.reg }

// enter marks a dispatch in flight; it reports false once the binding has
// been closed.
func (b *Binding) enter() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return false
	}
	b.inflight.Add(1)
	return true
}

// Close unregisters every deployed endpoint from the network, undeploys
// the services from the engine and drains in-flight dispatches. Close is
// idempotent.
func (b *Binding) Close() error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil
	}
	b.closed = true
	deployed := b.deployed
	b.deployed = make(map[string]string)
	b.mu.Unlock()

	for name, endpoint := range deployed {
		b.net.Unregister(endpoint)
		b.Engine().Undeploy(name)
	}
	b.inflight.Wait()
	return nil
}

// ---------------------------------------------------------------------------
// Deployer

type deployer struct{ b *Binding }

// Deployer returns the in-memory deployer.
func (b *Binding) Deployer() core.ServiceDeployer { return deployer{b} }

// Name implements core.ServiceDeployer.
func (d deployer) Name() string { return "inmem" }

// Deploy implements core.ServiceDeployer: the service is registered on the
// in-memory network at mem://<host>/<service>.
func (d deployer) Deploy(def engine.ServiceDef) (*core.Deployment, error) {
	b := d.b
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, fmt.Errorf("inmembind: binding is closed")
	}
	b.mu.Unlock()
	svc, err := b.Engine().Deploy(def)
	if err != nil {
		return nil, err
	}
	endpoint := "mem://" + b.host + "/" + def.Name
	defs, err := svc.WSDL(wsdl.TransportInMem, endpoint)
	if err != nil {
		b.Engine().Undeploy(def.Name)
		return nil, err
	}
	b.net.Register(endpoint, transport.HandlerFunc(func(ctx context.Context, req *transport.Request) (*transport.Response, error) {
		if !b.enter() {
			return nil, fmt.Errorf("inmembind: binding is closed")
		}
		defer b.inflight.Done()
		resp, err := b.Engine().ServeRequest(ctx, def.Name, req)
		if err != nil {
			f := soap.ServerFault(err)
			if o, ok := resilience.AsOverload(err); ok {
				f = o.Fault()
			}
			return &transport.Response{
				ContentType: soap.ContentType,
				Body:        soap.NewEnvelope().SetFault(f).Marshal(),
				Faulted:     true,
			}, nil
		}
		return resp, nil
	}))
	b.mu.Lock()
	b.deployed[def.Name] = endpoint
	b.mu.Unlock()
	return &core.Deployment{
		Service:     svc,
		Endpoint:    endpoint,
		Definitions: defs,
		Deployer:    "inmem",
	}, nil
}

// Undeploy implements core.ServiceDeployer.
func (d deployer) Undeploy(service string) error {
	b := d.b
	b.mu.Lock()
	endpoint, ok := b.deployed[service]
	delete(b.deployed, service)
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("inmembind: service %q not deployed", service)
	}
	b.net.Unregister(endpoint)
	if !b.Engine().Undeploy(service) {
		return fmt.Errorf("inmembind: engine had no service %q", service)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Publisher

type publisher struct{ b *Binding }

// Publisher returns the directory publisher.
func (b *Binding) Publisher() core.ServicePublisher { return publisher{b} }

// Name implements core.ServicePublisher.
func (p publisher) Name() string { return "inmem" }

// SetAttrs attaches attributes to a service's directory record when it is
// published (the analogue of P2PS advert attributes and UDDI categories).
// Call it before Publish.
func (b *Binding) SetAttrs(service string, attrs map[string]string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.attrs[service] = attrs
}

// Publish implements core.ServicePublisher. Foreign deployments (made by
// another binding's deployer) publish as-is: the record simply carries
// their endpoint and definitions, whatever the scheme.
func (p publisher) Publish(ctx context.Context, dep *core.Deployment) (string, error) {
	b := p.b
	name := dep.Service.Name()
	attrs := map[string]string{"binding": "wspeer-inmem"}
	b.mu.Lock()
	for k, v := range b.attrs[name] {
		attrs[k] = v
	}
	b.mu.Unlock()
	return b.dir.Publish(Record{
		Name:        name,
		Description: "WSPeer-hosted service",
		Endpoint:    dep.Endpoint,
		Definitions: dep.Definitions,
		Attrs:       attrs,
	}), nil
}

// Unpublish implements core.ServicePublisher.
func (p publisher) Unpublish(ctx context.Context, location string) error {
	if !p.b.dir.Unpublish(location) {
		return fmt.Errorf("inmembind: directory had no record %q", location)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Locator

type locator struct{ b *Binding }

// Locator returns the directory locator.
func (b *Binding) Locator() core.ServiceLocator { return locator{b} }

// Name implements core.ServiceLocator.
func (l locator) Name() string { return "inmem" }

// Locate implements core.ServiceLocator.
func (l locator) Locate(ctx context.Context, q core.ServiceQuery, foundFn func(*core.ServiceInfo)) error {
	matches, err := l.b.dir.find(q)
	if err != nil {
		return err
	}
	for _, m := range matches {
		if err := ctx.Err(); err != nil {
			return err
		}
		foundFn(&core.ServiceInfo{
			Name:        m.rec.Name,
			Description: m.rec.Description,
			Definitions: m.rec.Definitions,
			Endpoint:    m.rec.Endpoint,
			Locator:     "inmem",
			Meta:        map[string]string{"recordID": m.id},
		})
	}
	return nil
}

// ---------------------------------------------------------------------------
// Invoker

type invoker struct{ b *Binding }

// Invoker returns the mem:// invoker.
func (b *Binding) Invoker() core.Invoker { return invoker{b} }

// Schemes implements core.Invoker.
func (i invoker) Schemes() []string { return []string{"mem"} }

// Invoke implements core.Invoker using a dynamic stub over the located
// service's definitions.
func (i invoker) Invoke(ctx context.Context, svc *core.ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	if svc.Definitions == nil {
		return nil, fmt.Errorf("inmembind: service %q has no definitions", svc.Name)
	}
	stub := engine.NewStub(svc.Definitions, i.b.reg)
	stub.EndpointOverride = svc.Endpoint
	return stub.Invoke(ctx, op, params...)
}

// InvokeCall implements core.CallInvoker: the same exchange with the
// wire-level request and response published on the pipeline carrier.
func (i invoker) InvokeCall(c *pipeline.Call, svc *core.ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	if svc.Definitions == nil {
		return nil, fmt.Errorf("inmembind: service %q has no definitions", svc.Name)
	}
	if hdr := binding.ExchangeHeaders(c); hdr != nil {
		return binding.InvokeExchange(c, i.b.reg, svc, op, params, hdr)
	}
	stub := engine.NewStub(svc.Definitions, i.b.reg)
	stub.EndpointOverride = svc.Endpoint
	req, det, err := stub.BuildRequest(op, params...)
	if err != nil {
		return nil, err
	}
	c.Request = req
	resp, err := i.b.reg.Call(c.Ctx, req)
	if err != nil {
		return nil, err
	}
	c.Response = resp
	if det.Operation.OneWay() {
		return nil, nil
	}
	return engine.DecodeResponse(resp.Body, det)
}

// memReplyEndpoint is a reply handler registered on the in-memory network.
type memReplyEndpoint struct {
	epr   *wsaddr.EndpointReference
	net   *transport.InMemNetwork
	where string
}

// EPR implements core.ReplyEndpoint.
func (e *memReplyEndpoint) EPR() *wsaddr.EndpointReference { return e.epr }

// Close implements core.ReplyEndpoint.
func (e *memReplyEndpoint) Close() error {
	e.net.Unregister(e.where)
	return nil
}

// HostReplyEndpoint implements core.CallbackHoster: the reply endpoint is
// a fresh mem:// handler on the binding's network that feeds each inbound
// body to deliver and acknowledges with an empty response.
func (i invoker) HostReplyEndpoint(deliver func(body []byte)) (core.ReplyEndpoint, error) {
	b := i.b
	endpoint := fmt.Sprintf("mem://%s/callback-%d", b.host, callbackSeq.Add(1))
	b.net.Register(endpoint, transport.HandlerFunc(func(ctx context.Context, req *transport.Request) (*transport.Response, error) {
		deliver(req.Body)
		return &transport.Response{}, nil
	}))
	return &memReplyEndpoint{
		epr:   wsaddr.NewEndpointReference(endpoint),
		net:   b.net,
		where: endpoint,
	}, nil
}
