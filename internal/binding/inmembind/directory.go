package inmembind

import (
	"fmt"
	"strings"
	"sync"

	"wspeer/internal/core"
	"wspeer/internal/query"
	"wspeer/internal/wsdl"
)

// Record is one published service in a Directory.
type Record struct {
	// Name of the service.
	Name string
	// Description is optional human documentation.
	Description string
	// Endpoint the service is reachable at (mem://... for services the
	// inmem deployer hosted; any scheme for foreign deployments).
	Endpoint string
	// Definitions is the service's WSDL.
	Definitions *wsdl.Definitions
	// Attrs feed attribute and expression queries.
	Attrs map[string]string
}

// Directory is the inmem binding's registry: a process-local, thread-safe
// store of service records. Provider and consumer bindings share one
// Directory the way HTTP peers share a UDDI registry — passing the same
// instance to both Options is what makes publication visible.
type Directory struct {
	mu      sync.Mutex
	records map[string]*Record
	nextID  int
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{records: make(map[string]*Record)}
}

// Publish stores a record and returns its location key.
func (d *Directory) Publish(rec Record) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.nextID++
	id := fmt.Sprintf("inmem:%d", d.nextID)
	cp := rec
	cp.Attrs = copyAttrs(rec.Attrs)
	d.records[id] = &cp
	return id
}

// Unpublish removes a record by location key, reporting whether it existed.
func (d *Directory) Unpublish(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.records[id]
	delete(d.records, id)
	return ok
}

// Len reports how many records the directory holds.
func (d *Directory) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.records)
}

// found is one directory match: the record plus its location key.
type found struct {
	id  string
	rec Record
}

// find evaluates a core query over the directory. NameQuery matches name
// pattern ('*' wildcards) plus attribute subset; ExprQuery compiles the
// predicate and evaluates it over each record's name and attributes; any
// other query matches by name pattern alone.
func (d *Directory) find(q core.ServiceQuery) ([]found, error) {
	var (
		attrs map[string]string
		expr  *query.Expr
		limit int
	)
	pattern := q.QueryName()
	switch qq := q.(type) {
	case core.NameQuery:
		attrs = qq.Attrs
		limit = qq.MaxResults
	case core.ExprQuery:
		var err error
		if expr, err = query.Compile(qq.Expr); err != nil {
			return nil, fmt.Errorf("inmembind: %w", err)
		}
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []found
	for id, rec := range d.records {
		if !nameMatch(pattern, rec.Name) {
			continue
		}
		if !attrsSubset(attrs, rec.Attrs) {
			continue
		}
		if expr != nil && !expr.Matches(&query.Subject{Name: rec.Name, Attrs: rec.Attrs}) {
			continue
		}
		out = append(out, found{id: id, rec: *rec})
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out, nil
}

// nameMatch matches a pattern with '*' multi-character wildcards; an empty
// pattern matches everything, a bare name means exact match.
func nameMatch(pattern, name string) bool {
	if pattern == "" || pattern == "*" {
		return true
	}
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == name
	}
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	rest := name[len(parts[0]):]
	for _, part := range parts[1 : len(parts)-1] {
		idx := strings.Index(rest, part)
		if idx < 0 {
			return false
		}
		rest = rest[idx+len(part):]
	}
	return strings.HasSuffix(rest, parts[len(parts)-1])
}

// attrsSubset reports whether every wanted attribute is present with the
// wanted value.
func attrsSubset(want, have map[string]string) bool {
	for k, v := range want {
		if have[k] != v {
			return false
		}
	}
	return true
}

func copyAttrs(m map[string]string) map[string]string {
	if m == nil {
		return nil
	}
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
