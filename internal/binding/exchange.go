package binding

import (
	"context"

	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/exchange"
	"wspeer/internal/pipeline"
	"wspeer/internal/soap"
	"wspeer/internal/transport"
	"wspeer/internal/wsaddr"
)

// ExchangeHeaders reads the WS-Addressing headers the exchange layer
// stashed on a pipeline carrier, nil when the call is a plain synchronous
// invocation (the fast path: one map lookup, no allocation).
func ExchangeHeaders(c *pipeline.Call) *wsaddr.MessageHeaders {
	hdr, _ := c.GetMeta(exchange.MetaHeaders).(*wsaddr.MessageHeaders)
	return hdr
}

// InvokeExchange carries one exchange-layer invocation over a transport
// registry: the request envelope is stamped with the caller's
// WS-Addressing headers (To/Action filled in from the resolved endpoint)
// and sent according to the exchange pattern on the carrier — one-way and
// callback sends return after the transport-level ack with no reply
// decoded, request/response round-trips on the back channel as usual.
// Registry-backed invokers (HTTP, in-memory) share this path; the P2PS
// binding has its own pipe-level equivalent.
func InvokeExchange(c *pipeline.Call, reg *transport.Registry, svc *core.ServiceInfo, op string, params []engine.Param, hdr *wsaddr.MessageHeaders) (*engine.Result, error) {
	stub := engine.NewStub(svc.Definitions, reg)
	env, det, err := stub.PrepareEnvelope(op, params...)
	if err != nil {
		return nil, err
	}
	endpoint := det.Address
	if svc.Endpoint != "" {
		endpoint = svc.Endpoint
	}
	// Copy the headers: hedged or retried attempts share one Meta value and
	// must not see each other's To/Action.
	h := *hdr
	h.To = endpoint
	h.Action = det.SOAPAction
	if h.MessageID == "" {
		h.MessageID = wsaddr.NewMessageID()
	}
	if err := h.Apply(env); err != nil {
		return nil, err
	}
	req := &transport.Request{
		Endpoint:    endpoint,
		Action:      det.SOAPAction,
		ContentType: soap.ContentType,
		Body:        env.Marshal(),
	}
	c.Request = req
	if p, _ := c.GetMeta(exchange.MetaPattern).(exchange.Pattern); p == exchange.OneWay || p == exchange.Callback {
		if err := reg.Post(c.Ctx, req); err != nil {
			return nil, err
		}
		c.Response = &transport.Response{}
		return nil, nil
	}
	resp, err := reg.Call(c.Ctx, req)
	if err != nil {
		return nil, err
	}
	c.Response = resp
	if det.Operation.OneWay() {
		return nil, nil
	}
	return engine.DecodeResponse(resp.Body, det)
}

// PostReplySender adapts a transport registry to engine.ReplySender:
// decoupled replies are delivered by posting the flattened message to the
// reply EPR's address over the scheme-selected transport.
func PostReplySender(reg *transport.Registry) engine.ReplySender {
	return engine.ReplySenderFunc(func(ctx context.Context, to *wsaddr.EndpointReference, msg *exchange.Message) error {
		return reg.Post(ctx, &transport.Request{
			Endpoint:    msg.Endpoint,
			Action:      msg.Action,
			ContentType: msg.ContentType,
			Body:        msg.Body,
		})
	})
}
