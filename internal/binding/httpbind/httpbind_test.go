package httpbind

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/httpd"
	"wspeer/internal/uddi"
)

// startRegistry hosts a UDDI registry as a WSPeer service over real HTTP
// and returns its endpoint plus the in-process registry for assertions.
func startRegistry(t *testing.T) (string, *uddi.Registry) {
	t.Helper()
	reg := uddi.NewRegistry()
	host := httpd.New(engine.New(), httpd.Options{})
	t.Cleanup(func() { host.Close() })
	endpoint, err := host.Deploy(uddi.ServiceDef(reg))
	if err != nil {
		t.Fatal(err)
	}
	return endpoint, reg
}

func echoDef() engine.ServiceDef {
	return engine.ServiceDef{
		Name: "Echo",
		Operations: []engine.OperationDef{
			{Name: "echoString", Func: func(s string) string { return "echo:" + s }, ParamNames: []string{"msg"}},
		},
	}
}

func newBoundPeer(t *testing.T, uddiEndpoint string) (*core.Peer, *Binding) {
	t.Helper()
	b, err := New(Options{UDDIEndpoint: uddiEndpoint})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	p := core.NewPeer()
	b.Attach(p)
	return p, b
}

// TestFigure3Lifecycle runs the paper's Fig. 3 end to end: deploy →
// publish (UDDI) → locate (UDDI) → invoke (HTTP), between two distinct
// peers over real sockets.
func TestFigure3Lifecycle(t *testing.T) {
	uddiEndpoint, registry := startRegistry(t)
	providerPeer, _ := newBoundPeer(t, uddiEndpoint)
	consumerPeer, _ := newBoundPeer(t, uddiEndpoint)
	ctx := context.Background()

	// Track events on the provider side.
	var mu sync.Mutex
	var events []string
	providerPeer.AddListener(core.ListenerFuncs{
		Deployment: func(e core.DeploymentMessageEvent) {
			mu.Lock()
			events = append(events, "deploy")
			mu.Unlock()
		},
		Publish: func(e core.PublishEvent) {
			mu.Lock()
			events = append(events, "publish:"+e.Publisher)
			mu.Unlock()
		},
		Server: func(e core.ServerMessageEvent) {
			mu.Lock()
			events = append(events, "server")
			mu.Unlock()
		},
	})

	dep, err := providerPeer.Server().DeployAndPublish(ctx, echoDef())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dep.Endpoint, "http://") {
		t.Fatalf("endpoint = %q", dep.Endpoint)
	}
	if registry.Len() != 1 {
		t.Fatalf("registry records = %d", registry.Len())
	}

	// Consumer: locate through UDDI.
	info, err := consumerPeer.Client().LocateOne(ctx, core.NameQuery{Name: "Echo"})
	if err != nil {
		t.Fatal(err)
	}
	if info.Endpoint != dep.Endpoint {
		t.Fatalf("located endpoint %q != deployed %q", info.Endpoint, dep.Endpoint)
	}
	if info.Definitions == nil || info.Definitions.Operation("echoString") == nil {
		t.Fatal("definitions not delivered by locator")
	}

	// Consumer: invoke over HTTP.
	inv, err := consumerPeer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inv.Invoke(ctx, "echoString", engine.P("msg", "fig3"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := res.String("return")
	if err != nil || got != "echo:fig3" {
		t.Fatalf("invoke = %q, %v", got, err)
	}

	mu.Lock()
	joined := strings.Join(events, ",")
	mu.Unlock()
	if !strings.Contains(joined, "deploy") || !strings.Contains(joined, "publish:uddi") || !strings.Contains(joined, "server") {
		t.Fatalf("events = %s", joined)
	}

	// Undeploy withdraws the registry record.
	if err := providerPeer.Server().Undeploy(ctx, "Echo"); err != nil {
		t.Fatal(err)
	}
	if registry.Len() != 0 {
		t.Fatalf("registry records after undeploy = %d", registry.Len())
	}
	if _, err := consumerPeer.Client().LocateOne(ctx, core.NameQuery{Name: "Echo"}); err == nil {
		t.Fatal("undeployed service still locatable")
	}
}

func TestLocatorWildcardsAndCategories(t *testing.T) {
	uddiEndpoint, _ := startRegistry(t)
	providerPeer, _ := newBoundPeer(t, uddiEndpoint)
	consumerPeer, _ := newBoundPeer(t, uddiEndpoint)
	ctx := context.Background()
	if _, err := providerPeer.Server().DeployAndPublish(ctx, echoDef()); err != nil {
		t.Fatal(err)
	}

	// '*' wildcard translation.
	infos, err := consumerPeer.Client().Locate(ctx, core.NameQuery{Name: "Ec*"})
	if err != nil || len(infos) != 1 {
		t.Fatalf("wildcard: %v, %v", infos, err)
	}

	// Binding-specific UDDIQuery with the category the publisher applies.
	infos, err = consumerPeer.Client().Locate(ctx, UDDIQuery{
		Name: "%",
		Categories: []uddi.KeyedReference{{
			TModelKey: CategoryTModel, KeyValue: "wspeer-http",
		}},
	})
	if err != nil || len(infos) != 1 {
		t.Fatalf("category query: %v, %v", infos, err)
	}
	// A non-matching category excludes the record.
	infos, _ = consumerPeer.Client().Locate(ctx, UDDIQuery{
		Name:       "%",
		Categories: []uddi.KeyedReference{{TModelKey: CategoryTModel, KeyValue: "other"}},
	})
	if len(infos) != 0 {
		t.Fatalf("category mismatch returned %d", len(infos))
	}
}

func TestLocatorFetchesWSDLFromLocation(t *testing.T) {
	uddiEndpoint, registry := startRegistry(t)
	providerPeer, providerBinding := newBoundPeer(t, uddiEndpoint)
	consumerPeer, _ := newBoundPeer(t, uddiEndpoint)
	ctx := context.Background()

	dep, err := providerPeer.Server().Deploy(echoDef())
	if err != nil {
		t.Fatal(err)
	}
	_ = providerBinding
	// Publish manually WITHOUT the inline WSDL, forcing the ?wsdl fetch.
	if _, err := registry.Publish(uddi.BusinessService{
		Name: "Echo",
		Bindings: []uddi.BindingTemplate{{
			AccessPoint:  dep.Endpoint,
			WSDLLocation: dep.Endpoint + "?wsdl",
		}},
	}); err != nil {
		t.Fatal(err)
	}

	info, err := consumerPeer.Client().LocateOne(ctx, core.NameQuery{Name: "Echo"})
	if err != nil {
		t.Fatal(err)
	}
	if info.Definitions == nil {
		t.Fatal("WSDL fetch failed")
	}
	inv, err := consumerPeer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inv.Invoke(ctx, "echoString", engine.P("msg", "x"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.String("return"); got != "echo:x" {
		t.Fatalf("via fetched WSDL: %q", got)
	}
}

func TestHTTPGBindingEndToEnd(t *testing.T) {
	uddiEndpoint, _ := startRegistry(t)
	secret := []byte("grid-credentials")
	mk := func() *core.Peer {
		b, err := New(Options{UDDIEndpoint: uddiEndpoint, Profile: "httpg", Secret: secret})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { b.Close() })
		p := core.NewPeer()
		b.Attach(p)
		return p
	}
	provider, consumer := mk(), mk()
	ctx := context.Background()
	dep, err := provider.Server().DeployAndPublish(ctx, echoDef())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dep.Endpoint, "httpg://") {
		t.Fatalf("endpoint = %q", dep.Endpoint)
	}
	info, err := consumer.Client().LocateOne(ctx, core.NameQuery{Name: "Echo"})
	if err != nil {
		t.Fatal(err)
	}
	inv, err := consumer.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inv.Invoke(ctx, "echoString", engine.P("msg", "secure"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.String("return"); got != "echo:secure" {
		t.Fatalf("httpg invoke = %q", got)
	}
}

func TestBindingWithoutUDDI(t *testing.T) {
	b, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	p := core.NewPeer()
	b.Attach(p)
	// No locator registered.
	if _, err := p.Client().Locate(context.Background(), core.NameQuery{Name: "X"}); err != core.ErrNoLocator {
		t.Fatalf("err = %v", err)
	}
	// Hosting and direct invocation still work.
	dep, err := p.Server().Deploy(echoDef())
	if err != nil {
		t.Fatal(err)
	}
	info := &core.ServiceInfo{Name: "Echo", Endpoint: dep.Endpoint, Definitions: dep.Definitions}
	inv, err := p.Client().NewInvocation(info)
	if err != nil {
		t.Fatal(err)
	}
	res, err := inv.Invoke(context.Background(), "echoString", engine.P("msg", "direct"))
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.String("return"); got != "echo:direct" {
		t.Fatalf("direct = %q", got)
	}
}

func TestInvokerRequiresDefinitions(t *testing.T) {
	b, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	inv := b.Invoker()
	if _, err := inv.Invoke(context.Background(), &core.ServiceInfo{Name: "X", Endpoint: "http://x"}, "op", nil); err == nil {
		t.Fatal("missing definitions accepted")
	}
}

func TestFetchWSDLErrors(t *testing.T) {
	if _, err := FetchWSDL(context.Background(), "http://127.0.0.1:1/nope"); err == nil {
		t.Fatal("unreachable URL accepted")
	}
}

func TestDeployerUndeployUnknown(t *testing.T) {
	b, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Deployer().Undeploy("Nope"); err == nil {
		t.Fatal("unknown service undeploy accepted")
	}
}

func TestRegistryFailurePropagates(t *testing.T) {
	uddiEndpoint, registry := startRegistry(t)
	peer, _ := newBoundPeer(t, uddiEndpoint)
	registry.SetFailed(true)
	if _, err := peer.Client().Locate(context.Background(), core.NameQuery{Name: "X"}); err == nil {
		t.Fatal("failed registry not surfaced")
	}
	// Publishing against the failed registry also errors (deploy succeeds,
	// publish fails).
	_, err := peer.Server().DeployAndPublish(context.Background(), echoDef())
	if err == nil {
		t.Fatal("publish against failed registry succeeded")
	}
}

func TestExprQueryOverUDDI(t *testing.T) {
	uddiEndpoint, _ := startRegistry(t)
	providerPeer, providerBinding := newBoundPeer(t, uddiEndpoint)
	consumerPeer, _ := newBoundPeer(t, uddiEndpoint)
	ctx := context.Background()

	// Two services with different categories.
	providerBinding.SetCategories("Echo", []uddi.KeyedReference{
		{TModelKey: "uuid:attrs", KeyName: "kind", KeyValue: "echo"},
		{TModelKey: "uuid:attrs", KeyName: "price", KeyValue: "0.25"},
	})
	if _, err := providerPeer.Server().DeployAndPublish(ctx, echoDef()); err != nil {
		t.Fatal(err)
	}
	def2 := echoDef()
	def2.Name = "Expensive"
	providerBinding.SetCategories("Expensive", []uddi.KeyedReference{
		{TModelKey: "uuid:attrs", KeyName: "kind", KeyValue: "echo"},
		{TModelKey: "uuid:attrs", KeyName: "price", KeyValue: "9.99"},
	})
	if _, err := providerPeer.Server().DeployAndPublish(ctx, def2); err != nil {
		t.Fatal(err)
	}

	// Rich predicate: only the cheap echo service qualifies.
	infos, err := consumerPeer.Client().Locate(ctx, core.ExprQuery{
		Expr: `attr(kind) = 'echo' and attr(price) < 1`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "Echo" {
		t.Fatalf("expr query: %+v", infos)
	}

	// Malformed expressions surface as errors.
	if _, err := consumerPeer.Client().Locate(ctx, core.ExprQuery{Expr: `=`}); err == nil {
		t.Fatal("malformed expression accepted")
	}
}

func TestFetchWSDLResolvesImports(t *testing.T) {
	// A service document that imports its interface from a second URL.
	const tns2 = "urn:split-http"
	interfaceDoc := `<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
	  xmlns:tns="` + tns2 + `" xmlns:ws="http://schemas.xmlsoap.org/wsdl/soap/"
	  targetNamespace="` + tns2 + `">
	  <wsdl:message name="PingIn"><wsdl:part name="p" element="tns:ping"/></wsdl:message>
	  <wsdl:portType name="PingPT">
	    <wsdl:operation name="ping"><wsdl:input message="tns:PingIn"/></wsdl:operation>
	  </wsdl:portType>
	  <wsdl:binding name="PingB" type="tns:PingPT">
	    <ws:binding style="document" transport="http://schemas.xmlsoap.org/soap/http"/>
	    <wsdl:operation name="ping">
	      <ws:operation soapAction="urn:ping"/>
	      <wsdl:input><ws:body use="literal"/></wsdl:input>
	    </wsdl:operation>
	  </wsdl:binding>
	</wsdl:definitions>`

	mux := http.NewServeMux()
	srv := httptest.NewServer(mux)
	defer srv.Close()
	serviceDoc := `<wsdl:definitions xmlns:wsdl="http://schemas.xmlsoap.org/wsdl/"
	  xmlns:tns="` + tns2 + `" xmlns:ws="http://schemas.xmlsoap.org/wsdl/soap/"
	  targetNamespace="` + tns2 + `">
	  <wsdl:import namespace="` + tns2 + `" location="` + srv.URL + `/interface.wsdl"/>
	  <wsdl:service name="PingSvc">
	    <wsdl:port name="P" binding="tns:PingB"><ws:address location="http://host/ping"/></wsdl:port>
	  </wsdl:service>
	</wsdl:definitions>`
	mux.HandleFunc("/service.wsdl", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(serviceDoc))
	})
	mux.HandleFunc("/interface.wsdl", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(interfaceDoc))
	})

	defs, err := FetchWSDL(context.Background(), srv.URL+"/service.wsdl")
	if err != nil {
		t.Fatal(err)
	}
	det, err := defs.Detail("ping")
	if err != nil {
		t.Fatal(err)
	}
	if det.Address != "http://host/ping" || det.SOAPAction != "urn:ping" {
		t.Fatalf("detail: %+v", det)
	}
}
