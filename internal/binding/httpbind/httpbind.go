// Package httpbind is WSPeer's standard implementation (paper §IV-A,
// Fig. 3): services are hosted by the container-less HTTP server, described
// by WSDL served at ?wsdl, published to a UDDI-style registry, located by
// querying that registry, and invoked over HTTP (or the authenticated HTTPG
// profile) using dynamically generated stubs.
package httpbind

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"wspeer/internal/binding"
	"wspeer/internal/core"
	"wspeer/internal/engine"
	"wspeer/internal/httpd"
	"wspeer/internal/pipeline"
	"wspeer/internal/query"
	"wspeer/internal/resilience"
	"wspeer/internal/transport"
	"wspeer/internal/uddi"
	"wspeer/internal/wsaddr"
	"wspeer/internal/wsdl"
)

// Options configures the standard binding.
type Options struct {
	// Engine hosts the services (a fresh engine when nil).
	Engine *engine.Engine
	// ListenAddr for the lazy HTTP host (default 127.0.0.1:0).
	ListenAddr string
	// Profile is "http" (default) or "httpg".
	Profile string
	// Secret for the httpg profile.
	Secret []byte
	// UDDIEndpoint is the registry service's endpoint URL. When empty the
	// binding provides no locator/publisher, only hosting and invocation.
	UDDIEndpoint string
	// Registry supplies the client-side transports (a registry with HTTP —
	// and HTTPG when Secret is set — when nil).
	Registry *transport.Registry
	// ShutdownTimeout bounds how long closing the HTTP host waits for
	// in-flight requests (default 2s; see httpd.Options).
	ShutdownTimeout time.Duration
	// Admission, when non-nil, installs server-side admission control on
	// the engine: shed requests are answered with a SOAP Server fault on
	// HTTP 503 + Retry-After, and closing the binding drains in-flight
	// dispatches first (see httpd.Options.Admission).
	Admission *resilience.Admission
	// EnablePprof mounts net/http/pprof on the host's debug mux (see
	// httpd.Options.EnablePprof). Off by default.
	EnablePprof bool
}

// Binding bundles the standard implementation's components. The generic
// attach/detach choreography and event forwarding come from the embedded
// binding.Base; only the HTTP/UDDI substrate specifics live here.
type Binding struct {
	*binding.Base
	host *httpd.Host
	reg  *transport.Registry
	udc  *uddi.Client

	mu         sync.Mutex
	categories map[string][]uddi.KeyedReference
}

// New builds the binding. The HTTP host starts lazily on first deployment.
func New(opts Options) (*Binding, error) {
	if opts.Engine == nil {
		opts.Engine = engine.New()
	}
	if opts.Registry == nil {
		opts.Registry = transport.NewRegistry()
		opts.Registry.Register(transport.NewHTTPTransport())
		if len(opts.Secret) > 0 {
			opts.Registry.Register(transport.NewHTTPGTransport(opts.Secret))
		}
	}
	b := &Binding{
		reg: opts.Registry,
		host: httpd.New(opts.Engine, httpd.Options{
			ListenAddr:      opts.ListenAddr,
			Profile:         opts.Profile,
			Secret:          opts.Secret,
			ShutdownTimeout: opts.ShutdownTimeout,
			Admission:       opts.Admission,
			EnablePprof:     opts.EnablePprof,
		}),
		categories: make(map[string][]uddi.KeyedReference),
	}
	if opts.UDDIEndpoint != "" {
		udc, err := uddi.NewClient(opts.UDDIEndpoint, opts.Registry)
		if err != nil {
			return nil, err
		}
		b.udc = udc
	}
	comps := binding.Components{
		Deployer: b.Deployer(),
		Invokers: []core.Invoker{b.Invoker()},
	}
	if b.udc != nil {
		comps.Publishers = []core.ServicePublisher{b.Publisher()}
		comps.Locators = []core.ServiceLocator{b.Locator()}
	}
	b.Base = binding.NewBase("http", []string{"http", "httpg", "mem"}, opts.Engine, comps)
	// The engine can deliver decoupled replies (non-anonymous wsa:ReplyTo)
	// to any endpoint this binding's registry can reach. Cross-substrate
	// replies (an HTTP request with a P2PS ReplyTo) need the other
	// binding's sender registered too — see Engine.RegisterReplySender.
	sender := b.ReplySender()
	for _, scheme := range []string{"http", "httpg", "mem"} {
		opts.Engine.RegisterReplySender(scheme, sender)
	}
	return b, nil
}

// ReplySender delivers decoupled replies by POSTing them over the
// binding's transport registry. It is registered on the binding's own
// engine at construction; register it on another binding's engine to let
// that substrate answer requests whose ReplyTo is an HTTP(G) endpoint.
func (b *Binding) ReplySender() engine.ReplySender {
	return binding.PostReplySender(b.reg)
}

// Host exposes the underlying container-less host (for interceptors).
func (b *Binding) Host() *httpd.Host { return b.host }

// Registry exposes the client transport registry.
func (b *Binding) Registry() *transport.Registry { return b.reg }

// Close shuts the HTTP host down, draining in-flight requests.
func (b *Binding) Close() error { return b.host.Close() }

// ---------------------------------------------------------------------------
// Deployer

type deployer struct{ b *Binding }

// Deployer returns the container-less HTTP deployer.
func (b *Binding) Deployer() core.ServiceDeployer { return deployer{b} }

// Name implements core.ServiceDeployer.
func (d deployer) Name() string { return "httpd" }

// Deploy implements core.ServiceDeployer.
func (d deployer) Deploy(def engine.ServiceDef) (*core.Deployment, error) {
	endpoint, err := d.b.host.Deploy(def)
	if err != nil {
		return nil, err
	}
	defs, err := d.b.host.WSDL(def.Name)
	if err != nil {
		d.b.host.Undeploy(def.Name)
		return nil, err
	}
	return &core.Deployment{
		Service:     d.b.Engine().Service(def.Name),
		Endpoint:    endpoint,
		Definitions: defs,
		Deployer:    "httpd",
	}, nil
}

// Undeploy implements core.ServiceDeployer.
func (d deployer) Undeploy(service string) error {
	if !d.b.host.Undeploy(service) {
		return fmt.Errorf("httpbind: service %q not deployed", service)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Publisher

type publisher struct{ b *Binding }

// Publisher returns the UDDI publisher (requires a UDDI endpoint).
func (b *Binding) Publisher() core.ServicePublisher { return publisher{b} }

// Name implements core.ServicePublisher.
func (p publisher) Name() string { return "uddi" }

// SetCategories attaches extra category-bag entries to a service's
// registry record when it is published (the UDDI analogue of the P2PS
// binding's advert attributes). Call it before Publish.
func (b *Binding) SetCategories(service string, cats []uddi.KeyedReference) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.categories[service] = cats
}

// Publish implements core.ServicePublisher: the deployment is stored as a
// businessService with its endpoint, WSDL location, and the WSDL inlined.
func (p publisher) Publish(ctx context.Context, dep *core.Deployment) (string, error) {
	if p.b.udc == nil {
		return "", fmt.Errorf("httpbind: no UDDI registry configured")
	}
	raw, err := dep.Definitions.Marshal()
	if err != nil {
		return "", err
	}
	name := dep.Service.Name()
	bag := []uddi.KeyedReference{{
		TModelKey: CategoryTModel,
		KeyName:   "binding",
		KeyValue:  "wspeer-http",
	}}
	p.b.mu.Lock()
	bag = append(bag, p.b.categories[name]...)
	p.b.mu.Unlock()
	rec := uddi.BusinessService{
		Name:        name,
		Description: "WSPeer-hosted service",
		Bindings: []uddi.BindingTemplate{{
			AccessPoint:  dep.Endpoint,
			WSDLLocation: dep.Endpoint + "?wsdl",
		}},
		CategoryBag:  bag,
		WSDLDocument: string(raw),
	}
	return p.b.udc.Publish(ctx, rec)
}

// Unpublish implements core.ServicePublisher.
func (p publisher) Unpublish(ctx context.Context, location string) error {
	ok, err := p.b.udc.Unpublish(ctx, location)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("httpbind: registry had no record %q", location)
	}
	return nil
}

// CategoryTModel is the taxonomy key the binding categorizes services
// under.
const CategoryTModel = "uuid:wspeer-binding"

// ---------------------------------------------------------------------------
// Locator

// UDDIQuery is the binding-specific query carrying UDDI category
// constraints alongside the name pattern ("This implementation of the
// ServiceQuery understands UDDI specific categories to search within",
// paper §IV-A).
type UDDIQuery struct {
	// Name pattern with UDDI '%' wildcards ('*' is translated).
	Name string
	// Categories all must match.
	Categories []uddi.KeyedReference
	// MaxRows bounds the result set.
	MaxRows int32
}

// QueryName implements core.ServiceQuery.
func (q UDDIQuery) QueryName() string { return q.Name }

// CacheKey implements core.CacheKeyer: the resolution-cache identity is
// the name pattern, the row bound and the category constraints in
// canonical (sorted) order, so equivalent queries share a cache line.
func (q UDDIQuery) CacheKey() string {
	cats := make([]string, 0, len(q.Categories))
	for _, kr := range q.Categories {
		cats = append(cats, kr.TModelKey+"\x00"+kr.KeyName+"\x00"+kr.KeyValue)
	}
	sort.Strings(cats)
	return fmt.Sprintf("uddi|%s|max=%d|%s", q.Name, q.MaxRows, strings.Join(cats, "\x01"))
}

type locator struct{ b *Binding }

// Locator returns the UDDI locator (requires a UDDI endpoint).
func (b *Binding) Locator() core.ServiceLocator { return locator{b} }

// Name implements core.ServiceLocator.
func (l locator) Name() string { return "uddi" }

// Locate implements core.ServiceLocator.
func (l locator) Locate(ctx context.Context, q core.ServiceQuery, found func(*core.ServiceInfo)) error {
	if l.b.udc == nil {
		return fmt.Errorf("httpbind: no UDDI registry configured")
	}
	fq := uddi.FindQuery{}
	var expr *query.Expr
	switch qq := q.(type) {
	case UDDIQuery:
		fq.Name = strings.ReplaceAll(qq.Name, "*", "%")
		fq.Categories = qq.Categories
		fq.MaxRows = qq.MaxRows
	case core.NameQuery:
		fq.Name = strings.ReplaceAll(qq.Name, "*", "%")
		fq.MaxRows = int32(qq.MaxResults)
		for k, v := range qq.Attrs {
			fq.Categories = append(fq.Categories, uddi.KeyedReference{
				TModelKey: "uuid:attr:" + k, KeyName: k, KeyValue: v,
			})
		}
	case core.ExprQuery:
		// The registry only searches by name; the rich predicate is
		// evaluated client-side over its results.
		fq.Name = strings.ReplaceAll(qq.QueryName(), "*", "%")
		var err error
		if expr, err = query.Compile(qq.Expr); err != nil {
			return fmt.Errorf("httpbind: %w", err)
		}
	default:
		fq.Name = strings.ReplaceAll(q.QueryName(), "*", "%")
	}
	records, err := l.b.udc.Find(ctx, fq)
	if err != nil {
		return err
	}
	var firstErr error
	for _, rec := range records {
		if expr != nil && !expr.Matches(recordSubject(rec)) {
			continue
		}
		info, err := l.infoFromRecord(ctx, rec)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("httpbind: record %q: %w", rec.Name, err)
			}
			continue
		}
		found(info)
	}
	return firstErr
}

// recordSubject maps a registry record onto the query language's subject:
// the category bag doubles as the attribute set (KeyName -> KeyValue).
func recordSubject(rec uddi.BusinessService) *query.Subject {
	attrs := make(map[string]string, len(rec.CategoryBag))
	for _, kr := range rec.CategoryBag {
		if kr.KeyName != "" {
			attrs[kr.KeyName] = kr.KeyValue
		}
	}
	return &query.Subject{Name: rec.Name, Attrs: attrs}
}

func (l locator) infoFromRecord(ctx context.Context, rec uddi.BusinessService) (*core.ServiceInfo, error) {
	if len(rec.Bindings) == 0 {
		return nil, fmt.Errorf("no binding templates")
	}
	bt := rec.Bindings[0]
	var defs *wsdl.Definitions
	var err error
	if rec.WSDLDocument != "" {
		defs, err = wsdl.Parse([]byte(rec.WSDLDocument))
	} else if bt.WSDLLocation != "" {
		defs, err = FetchWSDL(ctx, bt.WSDLLocation)
	} else {
		return nil, fmt.Errorf("record has neither inline WSDL nor a WSDL location")
	}
	if err != nil {
		return nil, err
	}
	return &core.ServiceInfo{
		Name:        rec.Name,
		Description: rec.Description,
		Definitions: defs,
		Endpoint:    bt.AccessPoint,
		Locator:     "uddi",
		Meta:        map[string]string{"serviceKey": rec.ServiceKey},
	}, nil
}

// FetchWSDL retrieves and parses a WSDL document from a URL (the paper's
// "searching for WSDL files" path when the registry does not inline the
// document), resolving any wsdl:import references over HTTP.
func FetchWSDL(ctx context.Context, url string) (*wsdl.Definitions, error) {
	data, err := httpGet(ctx, url)
	if err != nil {
		return nil, err
	}
	defs, err := wsdl.Parse(data)
	if err != nil {
		return nil, err
	}
	if len(defs.Imports) > 0 {
		if err := defs.ResolveImports(ctx, httpGet); err != nil {
			return nil, err
		}
	}
	return defs, nil
}

func httpGet(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Timeout: 15 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("httpbind: GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(io.LimitReader(resp.Body, 16<<20))
}

// ---------------------------------------------------------------------------
// Invoker

type invoker struct{ b *Binding }

// Invoker returns the HTTP/HTTPG invoker.
func (b *Binding) Invoker() core.Invoker { return invoker{b} }

// Schemes implements core.Invoker.
func (i invoker) Schemes() []string { return []string{"http", "httpg", "mem"} }

// Invoke implements core.Invoker using a dynamic stub over the located
// service's definitions.
func (i invoker) Invoke(ctx context.Context, svc *core.ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	if svc.Definitions == nil {
		return nil, fmt.Errorf("httpbind: service %q has no definitions", svc.Name)
	}
	stub := engine.NewStub(svc.Definitions, i.b.reg)
	stub.EndpointOverride = svc.Endpoint
	return stub.Invoke(ctx, op, params...)
}

// InvokeCall implements core.CallInvoker: the same dynamic-stub exchange,
// but with the serialized request and raw response published on the
// pipeline carrier so client interceptors see the wire-level messages and
// the terminal stage is visibly the scheme-selected transport.
func (i invoker) InvokeCall(c *pipeline.Call, svc *core.ServiceInfo, op string, params []engine.Param) (*engine.Result, error) {
	if svc.Definitions == nil {
		return nil, fmt.Errorf("httpbind: service %q has no definitions", svc.Name)
	}
	if hdr := binding.ExchangeHeaders(c); hdr != nil {
		return binding.InvokeExchange(c, i.b.reg, svc, op, params, hdr)
	}
	stub := engine.NewStub(svc.Definitions, i.b.reg)
	stub.EndpointOverride = svc.Endpoint
	req, det, err := stub.BuildRequest(op, params...)
	if err != nil {
		return nil, err
	}
	c.Request = req
	resp, err := i.b.reg.Call(c.Ctx, req)
	if err != nil {
		return nil, err
	}
	c.Response = resp
	if det.Operation.OneWay() {
		return nil, nil
	}
	return engine.DecodeResponse(resp.Body, det)
}

// httpReplyEndpoint is a hosted callback route on the binding's HTTP host.
type httpReplyEndpoint struct {
	epr    *wsaddr.EndpointReference
	cancel func()
}

// EPR implements core.ReplyEndpoint.
func (e *httpReplyEndpoint) EPR() *wsaddr.EndpointReference { return e.epr }

// Close implements core.ReplyEndpoint.
func (e *httpReplyEndpoint) Close() error { e.cancel(); return nil }

// HostReplyEndpoint implements core.CallbackHoster: the client-side reply
// endpoint is a callback route on the binding's container-less HTTP host,
// which launches its lazy listener if no deployment already has — so a
// pure consumer becomes addressable the moment it first invokes with the
// callback pattern.
func (i invoker) HostReplyEndpoint(deliver func(body []byte)) (core.ReplyEndpoint, error) {
	url, cancel, err := i.b.host.HostCallback(deliver)
	if err != nil {
		return nil, err
	}
	return &httpReplyEndpoint{epr: wsaddr.NewEndpointReference(url), cancel: cancel}, nil
}
