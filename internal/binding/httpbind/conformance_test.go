package httpbind

import (
	"testing"

	"wspeer/internal/binding/bindtest"
	"wspeer/internal/core"
)

// TestConformance runs the shared binding conformance suite against the
// HTTP/UDDI binding over real sockets: each fabric is one fresh UDDI
// registry, and every peer is a fresh binding pointed at it.
func TestConformance(t *testing.T) {
	bindtest.Run(t, bindtest.World{
		NewFabric: func(t *testing.T) *bindtest.Fabric {
			uddiEndpoint, _ := startRegistry(t)
			return &bindtest.Fabric{
				NewPeer: func(t *testing.T) (*core.Peer, core.Binding) {
					t.Helper()
					b, err := New(Options{UDDIEndpoint: uddiEndpoint})
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { b.Close() })
					p := core.NewPeer()
					if err := p.AttachBinding(b); err != nil {
						t.Fatal(err)
					}
					return p, b
				},
			}
		},
	})
}
